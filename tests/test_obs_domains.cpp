// Cross-domain observability: every domain VM — CVM (communication),
// MGridVM (microgrid), 2SVM hub (smart spaces, split deployment) and a
// CrowdDevice (crowdsensing) — produces a request trace with one span
// per layer its submissions cross, and mints process-unique request ids.
#include <gtest/gtest.h>

#include <set>

#include "domains/comm/cvm.hpp"
#include "domains/comm/handcrafted_broker.hpp"
#include "domains/crowd/fleet.hpp"
#include "domains/mgrid/baseline.hpp"
#include "domains/mgrid/mgridvm.hpp"
#include "domains/smartspace/ssvm.hpp"

namespace mdsm {
namespace {

// One span per layer crossing, nested, all closed by the time the
// submission returns.
void expect_full_pipeline(const obs::Trace& trace, bool has_broker) {
  EXPECT_TRUE(trace.all_closed()) << trace.to_text();
  EXPECT_EQ(trace.count("ui.submit"), 1u) << trace.to_text();
  EXPECT_EQ(trace.count("synthesis.submit"), 1u);
  EXPECT_EQ(trace.count("controller.script"), 1u);
  EXPECT_GE(trace.count("controller.signal"), 1u);
  if (has_broker) EXPECT_GE(trace.count("broker.call"), 1u);
  const obs::Span* ui = trace.find("ui.submit");
  const obs::Span* synthesis = trace.find("synthesis.submit");
  const obs::Span* script = trace.find("controller.script");
  ASSERT_TRUE(ui && synthesis && script);
  EXPECT_EQ(ui->parent, 0u);
  EXPECT_EQ(synthesis->parent, ui->id);
  EXPECT_EQ(script->parent, synthesis->id);
  for (const obs::Span& span : trace.spans()) {
    EXPECT_TRUE(span.closed);
    EXPECT_LE(span.start, span.end);  // monotonic, even on a SimClock
  }
}

TEST(DomainObservability, AllFourVmsTraceTheirPipelines) {
  std::set<std::uint64_t> request_ids;

  {  // CVM — communication, full platform on a SimClock.
    auto cvm = comm::make_cvm();
    ASSERT_TRUE(cvm.ok()) << cvm.status().to_string();
    obs::RequestContext request = (*cvm)->platform->make_context();
    auto script = (*cvm)->platform->submit_model_text(R"(
model call conforms cml
object Connection c1 {
  state = active
  child participants Participant a { address = "a@h" }
  child participants Participant b { address = "b@h" }
  child media Medium voice { kind = audio }
}
)",
                                                      request);
    ASSERT_TRUE(script.ok()) << script.status().to_string();
    expect_full_pipeline(request.trace(), /*has_broker=*/true);
    EXPECT_GT(
        (*cvm)->platform->metrics().snapshot().counter_value("broker.calls"),
        0u);
    request_ids.insert(request.id());
  }

  {  // MGridVM — microgrid, full platform.
    auto vm = mgrid::make_mgridvm();
    ASSERT_TRUE(vm.ok()) << vm.status().to_string();
    obs::RequestContext request = (*vm)->platform->make_context();
    auto script = (*vm)->platform->submit_model_text(R"(
model home conforms mgridml
object Microgrid grid {
  mode = normal
  child devices Generator solar { capacity_kw = 5.0 renewable = true running = true setpoint_kw = 3.0 }
  child devices Load house { demand_kw = 2.0 critical = true }
}
)",
                                                     request);
    ASSERT_TRUE(script.ok()) << script.status().to_string();
    expect_full_pipeline(request.trace(), /*has_broker=*/true);
    request_ids.insert(request.id());
  }

  {  // 2SVM hub — split deployment: top three layers, no broker of its
     // own (commands leave as kSend messages).
    auto space = smartspace::make_smart_space();
    space->add_object("lamp", "light");
    obs::RequestContext request = space->hub->make_context();
    auto script = space->hub->submit_model_text(R"(
model m conforms ssml
object SmartSpace room {
  child objects SmartObject lamp { kind = light power = true }
}
)",
                                                request);
    ASSERT_TRUE(script.ok()) << script.status().to_string();
    space->pump();
    expect_full_pipeline(request.trace(), /*has_broker=*/false);
    EXPECT_EQ(request.trace().count("broker.call"), 0u);
    EXPECT_TRUE(space->nodes.at("lamp")->device().power);
    request_ids.insert(request.id());
  }

  {  // CrowdDevice — all four layers on the device.
    auto fleet = crowd::make_fleet();
    auto& device = fleet->add_device("d1", 7);
    obs::RequestContext request = device.make_context();
    auto script = device.submit_model_text(R"(
model q conforms csml
object SensingQuery t { sensor = temperature period_s = 10 }
)",
                                           request);
    ASSERT_TRUE(script.ok()) << script.status().to_string();
    expect_full_pipeline(request.trace(), /*has_broker=*/true);
    request_ids.insert(request.id());
  }

  // Request ids are process-unique across VMs and domains.
  EXPECT_EQ(request_ids.size(), 4u);
}

TEST(DomainObservability, HandcraftedBaselinesTraceBrokerCalls) {
  // The Exp-1/Exp-2 baselines accept a context on the same BrokerApi.
  auto ncb = comm::make_handcrafted_ncb();
  obs::RequestContext request;
  broker::Call create;
  create.name = "ncb.session.create";
  create.args["id"] = model::Value(std::string("s1"));
  ASSERT_TRUE(ncb->broker.call(create, request).ok());
  EXPECT_EQ(request.trace().count("broker.call"), 1u);
  EXPECT_EQ(request.trace().find("broker.call")->detail,
            "ncb.session.create");

  auto mg = mgrid::make_handcrafted_mgrid();
  obs::RequestContext mg_request;
  broker::Call provision;
  provision.name = "mgv.gen.provision";
  provision.args["id"] = model::Value(std::string("g1"));
  provision.args["capacity"] = model::Value(4.0);
  provision.args["renewable"] = model::Value(true);
  ASSERT_TRUE(mg->broker.call(provision, mg_request).ok());
  EXPECT_EQ(mg_request.trace().count("broker.call"), 1u);
  // The legacy one-argument overload still works (runs against noop()).
  broker::Call start;
  start.name = "mgv.gen.start";
  start.args["id"] = model::Value(std::string("g1"));
  ASSERT_TRUE(mg->broker.call(start).ok());
}

}  // namespace
}  // namespace mdsm
