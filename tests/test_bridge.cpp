// Tests for the cross-platform interoperability bridge: a microgrid
// emergency (MGridVM event) opens an operator call on the CVM — two
// domain-specific platforms cooperating without knowing each other.
#include <gtest/gtest.h>

#include "core/bridge.hpp"
#include "domains/comm/cvm.hpp"
#include "domains/mgrid/mgridvm.hpp"

namespace mdsm::core {
namespace {

using model::Value;

struct BridgeFixture : ::testing::Test {
  Result<std::unique_ptr<comm::Cvm>> cvm = comm::make_cvm();
  Result<std::unique_ptr<mgrid::MGridVm>> mgridvm = mgrid::make_mgridvm();
  PlatformBridge bridge{"grid-to-comm"};

  void SetUp() override {
    ASSERT_TRUE(cvm.ok()) << cvm.status().to_string();
    ASSERT_TRUE(mgridvm.ok()) << mgridvm.status().to_string();
  }
};

TEST_F(BridgeFixture, GridEmergencyOpensOperatorCall) {
  // Rule: on a power imbalance in the microgrid, create an operator
  // session in the communication platform.
  PlatformBridge::Rule rule;
  rule.source_topic = "resource.imbalance";
  rule.target_command = "ncb.session.create";
  rule.args = {{"id", Value("grid-emergency")}};
  ASSERT_TRUE(
      bridge.connect(*(*mgridvm)->platform, *(*cvm)->platform, rule).ok());

  // Drive the microgrid into imbalance via a model (no shedding
  // resources configured, so the imbalance stands).
  ASSERT_TRUE((*mgridvm)
                  ->platform
                  ->submit_model_text(R"(
model overload conforms mgridml
object Microgrid grid {
  child devices Generator g { capacity_kw = 2.0 running = true setpoint_kw = 1.0 }
  child devices Load big { demand_kw = 5.0 critical = true }
}
)")
                  .ok());
  EXPECT_EQ(bridge.forwarded(), 1u);
  EXPECT_EQ(bridge.failed(), 0u);
  // The CVM really created the session.
  EXPECT_NE((*cvm)->service.find_session("grid-emergency"), nullptr);
  ASSERT_FALSE(bridge.log().empty());
  EXPECT_NE(bridge.log()[0].find("resource.imbalance"), std::string::npos);
}

TEST_F(BridgeFixture, PayloadAndTopicTemplatesResolve) {
  PlatformBridge::Rule rule;
  rule.source_topic = "resource.imbalance";
  rule.target_command = "ncb.session.create";
  // Session id carries the source topic — template resolution check.
  rule.args = {{"id", Value("$topic")}};
  ASSERT_TRUE(
      bridge.connect(*(*mgridvm)->platform, *(*cvm)->platform, rule).ok());
  (*mgridvm)->platform->bus().publish("resource.imbalance", "test",
                                      Value(-3.0));
  EXPECT_EQ(bridge.forwarded(), 1u);
  EXPECT_NE((*cvm)->service.find_session("resource.imbalance"), nullptr);
}

TEST_F(BridgeFixture, ContextTemplateReadsSourcePlatform) {
  (*mgridvm)->platform->context().set("site.name", Value("plant-7"));
  PlatformBridge::Rule rule;
  rule.source_topic = "alarm";
  rule.target_command = "ncb.session.create";
  rule.args = {{"id", Value("$ctx:site.name")}};
  ASSERT_TRUE(
      bridge.connect(*(*mgridvm)->platform, *(*cvm)->platform, rule).ok());
  (*mgridvm)->platform->bus().publish("alarm", "test");
  EXPECT_NE((*cvm)->service.find_session("plant-7"), nullptr);
}

TEST_F(BridgeFixture, FailedTargetCommandIsCountedNotFatal) {
  PlatformBridge::Rule rule;
  rule.source_topic = "alarm";
  rule.target_command = "no.such.command";
  ASSERT_TRUE(
      bridge.connect(*(*mgridvm)->platform, *(*cvm)->platform, rule).ok());
  (*mgridvm)->platform->bus().publish("alarm", "test");
  EXPECT_EQ(bridge.forwarded(), 0u);
  EXPECT_EQ(bridge.failed(), 1u);
  EXPECT_NE(bridge.log()[0].find("FAILED"), std::string::npos);
}

TEST_F(BridgeFixture, RuleValidation) {
  PlatformBridge::Rule rule;
  rule.source_topic = "";
  rule.target_command = "x";
  EXPECT_EQ(bridge.connect(*(*mgridvm)->platform, *(*cvm)->platform, rule)
                .code(),
            ErrorCode::kInvalidArgument);
  rule.source_topic = "t";
  EXPECT_EQ(bridge
                .connect(*(*mgridvm)->platform, *(*mgridvm)->platform, rule)
                .code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(bridge.rule_count(), 0u);
}

TEST_F(BridgeFixture, BridgeDestructionUnsubscribes) {
  {
    PlatformBridge scoped("scoped");
    PlatformBridge::Rule rule;
    rule.source_topic = "alarm";
    rule.target_command = "ncb.session.create";
    rule.args = {{"id", Value("scoped-session")}};
    ASSERT_TRUE(
        scoped.connect(*(*mgridvm)->platform, *(*cvm)->platform, rule).ok());
  }
  (*mgridvm)->platform->bus().publish("alarm", "test");
  EXPECT_EQ((*cvm)->service.find_session("scoped-session"), nullptr);
}

}  // namespace
}  // namespace mdsm::core
