// Randomized property sweeps over the model facility and the weaver:
// serialize⇄parse round-trips, diff/apply inverse, weave identity — the
// algebraic invariants every layer of the platform silently relies on.
#include <gtest/gtest.h>

#include <random>

#include "model/diff.hpp"
#include "model/text_format.hpp"
#include "model_fixtures.hpp"
#include "synthesis/weaver.hpp"

namespace mdsm::model {
namespace {

using testing::make_test_metamodel;

/// Deterministic random model over the shared test metamodel.
Model random_model(const MetamodelPtr& mm, unsigned seed,
                   const std::string& prefix = "r") {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> sessions(1, 3);
  std::uniform_int_distribution<int> children(0, 4);
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_real_distribution<double> bandwidth(0.0, 10.0);
  const char* states[] = {"idle", "open", "closed"};
  const char* kinds[] = {"audio", "video", "file"};
  Model model("rand" + std::to_string(seed), mm);
  int uid = 0;
  int session_count = sessions(rng);
  for (int s = 0; s < session_count; ++s) {
    std::string sid = prefix + "s" + std::to_string(s);
    model.create("Session", sid);
    model.set_attribute(sid, "state", Value(states[seed % 3]));
    if (coin(rng) == 1) {
      model.set_attribute(sid, "bandwidth", Value(bandwidth(rng)));
    }
    if (coin(rng) == 1) {
      ValueList tags;
      for (int t = 0; t <= coin(rng); ++t) {
        tags.push_back(Value("tag" + std::to_string(t)));
      }
      model.set_attribute(sid, "tags", Value(std::move(tags)));
    }
    int participant_count = children(rng);
    std::vector<std::string> participant_ids;
    for (int p = 0; p < participant_count; ++p) {
      std::string pid = prefix + "p" + std::to_string(uid++);
      model.create_child(sid, "participants", "Participant", pid);
      model.set_attribute(pid, "address", Value(pid + "@host"));
      if (coin(rng) == 1) {
        model.set_attribute(pid, "priority",
                            Value(static_cast<std::int64_t>(p)));
      }
      participant_ids.push_back(pid);
    }
    int media_count = children(rng) / 2;
    for (int m = 0; m < media_count; ++m) {
      std::string mid = prefix + "m" + std::to_string(uid++);
      const char* cls = coin(rng) == 1 ? "StreamMedia" : "Media";
      model.create_child(sid, "media", cls, mid);
      model.set_attribute(mid, "kind", Value(kinds[uid % 3]));
      if (coin(rng) == 1) model.set_attribute(mid, "live", Value(true));
    }
    if (!participant_ids.empty() && coin(rng) == 1) {
      model.add_reference(sid, "initiator", participant_ids.front());
    }
  }
  EXPECT_TRUE(model.validate().ok());
  return model;
}

class ModelProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(ModelProperty, SerializeParseRoundTrip) {
  MetamodelPtr mm = make_test_metamodel();
  Model original = random_model(mm, GetParam());
  std::string text = serialize_model(original);
  auto reparsed = parse_model(text, mm);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().to_string() << "\n" << text;
  EXPECT_TRUE(diff(original, *reparsed).empty()) << text;
  // Serialization is a fixed point.
  EXPECT_EQ(serialize_model(*reparsed), text);
}

TEST_P(ModelProperty, DiffApplyIsInverse) {
  MetamodelPtr mm = make_test_metamodel();
  Model a = random_model(mm, GetParam(), "a");
  Model b = random_model(mm, GetParam() * 31 + 7, "b");
  ChangeList forward = diff(a, b);
  Model replay = a.clone();
  Status applied = model::apply(forward, replay);
  ASSERT_TRUE(applied.ok()) << applied.to_string() << "\n"
                            << summarize(forward);
  EXPECT_TRUE(diff(replay, b).empty()) << summarize(diff(replay, b));
  // And the reverse direction.
  ChangeList backward = diff(b, a);
  Model back = b.clone();
  ASSERT_TRUE(model::apply(backward, back).ok());
  EXPECT_TRUE(diff(back, a).empty());
}

TEST_P(ModelProperty, DiffIsEmptyOnlyForEquivalentModels) {
  MetamodelPtr mm = make_test_metamodel();
  Model a = random_model(mm, GetParam(), "a");
  EXPECT_TRUE(diff(a, a).empty());
  Model mutated = a.clone();
  // Any mutation must surface in the diff.
  auto all_sessions = mutated.objects_of("Session");
  ASSERT_FALSE(all_sessions.empty());
  mutated.set_attribute(all_sessions[0]->id(), "label", Value("changed"));
  EXPECT_FALSE(diff(a, mutated).empty());
}

TEST_P(ModelProperty, WeaveIdentityAndDisjointUnion) {
  MetamodelPtr mm = make_test_metamodel();
  Model a = random_model(mm, GetParam(), "a");
  // weave({a}) ≡ a
  auto identity = synthesis::weave({&a});
  ASSERT_TRUE(identity.ok()) << identity.status().to_string();
  EXPECT_TRUE(diff(a, *identity).empty());
  // Disjoint concerns (different id prefixes) weave to their union.
  Model b = random_model(mm, GetParam() + 1000, "b");
  auto unioned = synthesis::weave({&a, &b});
  ASSERT_TRUE(unioned.ok()) << unioned.status().to_string();
  EXPECT_EQ(unioned->size(), a.size() + b.size());
  EXPECT_TRUE(unioned->validate().ok());
}

TEST_P(ModelProperty, CloneIsDeepEquivalentAndIndependent) {
  MetamodelPtr mm = make_test_metamodel();
  Model a = random_model(mm, GetParam(), "a");
  Model copy = a.clone();
  EXPECT_TRUE(diff(a, copy).empty());
  auto roots = copy.roots();
  ASSERT_FALSE(roots.empty());
  copy.remove(roots[0]->id());
  EXPECT_FALSE(diff(a, copy).empty());
  EXPECT_TRUE(a.validate().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelProperty,
                         ::testing::Range(1u, 16u));

}  // namespace
}  // namespace mdsm::model
