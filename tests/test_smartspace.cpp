// Smart-space domain tests: the split 2SVM deployment — hub (top three
// layers) dispatching over the simulated network to object nodes (bottom
// two layers), including installed scripts triggered by async events.
#include <gtest/gtest.h>

#include "domains/smartspace/ssvm.hpp"

namespace mdsm::smartspace {
namespace {

using model::Value;
using model::ValueList;

TEST(WireProtocol, ArgsRoundTrip) {
  broker::Args args{{"a", Value(1)}, {"b", Value("x")}, {"c", Value(true)}};
  broker::Args decoded = decode_args(encode_args(args));
  EXPECT_EQ(decoded, args);
  // Garbage payloads decode to empty args rather than crashing.
  EXPECT_TRUE(decode_args(Value("not-a-list")).empty());
  EXPECT_TRUE(decode_args(Value(ValueList{Value(1)})).empty());
}

TEST(SmartObjectNode, LocalStackDrivesDevice) {
  SimClock clock;
  net::Network network(clock);
  SmartObjectNode node("lamp", "light", network);
  EXPECT_FALSE(node.device().power);
  auto result = node.controller().execute_command(
      {"so.power", {{"value", Value(true)}}});
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_TRUE(node.device().power);
  ASSERT_TRUE(node.controller()
                  .execute_command({"so.level", {{"value", Value(70)}}})
                  .ok());
  EXPECT_EQ(node.device().level, 70);
}

struct SpaceFixture : ::testing::Test {
  std::unique_ptr<SmartSpace> space = make_smart_space();

  void SetUp() override {
    space->add_object("lamp", "light");
    space->add_object("thermo", "thermostat");
  }
};

TEST_F(SpaceFixture, ModelDrivesRemoteObjects) {
  auto script = space->hub->submit_model_text(R"(
model livingroom conforms ssml
object SmartSpace room {
  name = "living"
  child objects SmartObject lamp { kind = light power = true level = 80 }
  child objects SmartObject thermo { kind = thermostat level = 21 }
}
)");
  ASSERT_TRUE(script.ok()) << script.status().to_string();
  space->pump();  // deliver hub → object messages
  EXPECT_TRUE(space->nodes.at("lamp")->device().power);
  EXPECT_EQ(space->nodes.at("lamp")->device().level, 80);
  EXPECT_EQ(space->nodes.at("thermo")->device().level, 21);
  EXPECT_EQ(space->hub->registered_objects().size(), 2u);
}

TEST_F(SpaceFixture, ModelUpdatePropagates) {
  ASSERT_TRUE(space->hub
                  ->submit_model_text(R"(
model livingroom conforms ssml
object SmartSpace room {
  child objects SmartObject lamp { kind = light power = true level = 80 }
}
)")
                  .ok());
  space->pump();
  ASSERT_TRUE(space->hub
                  ->submit_model_text(R"(
model livingroom conforms ssml
object SmartSpace room {
  child objects SmartObject lamp { kind = light power = false level = 80 }
}
)")
                  .ok());
  space->pump();
  EXPECT_FALSE(space->nodes.at("lamp")->device().power);
}

TEST_F(SpaceFixture, InstalledScriptRunsOnAsyncEvent) {
  // An app: when a user enters, set the lamp to 100.
  auto script = space->hub->submit_model_text(R"(
model evening conforms ssml
object SmartSpace room {
  child objects SmartObject lamp { kind = light }
  child apps UbiquitousApp welcome {
    trigger = "user.entered"
    command = set-level
    level = 100
    targets -> lamp
  }
}
)");
  ASSERT_TRUE(script.ok()) << script.status().to_string();
  space->pump();  // install delivered
  SmartObjectNode& lamp = *space->nodes.at("lamp");
  EXPECT_EQ(lamp.installed_scripts(), 1u);
  EXPECT_EQ(lamp.device().level, 0);  // installed, NOT executed yet
  lamp.raise_event("user.entered");   // async trigger
  EXPECT_EQ(lamp.device().level, 100);
  EXPECT_TRUE(lamp.device().power);
  // The script stays installed: a second event re-runs it.
  (void)lamp.controller().execute_command({"so.level",
                                           {{"value", Value(10)}}});
  lamp.raise_event("user.entered");
  EXPECT_EQ(lamp.device().level, 100);
}

TEST_F(SpaceFixture, PowerOffScriptAndMultipleTargets) {
  space->add_object("speaker", "speaker");
  ASSERT_TRUE(space->hub
                  ->submit_model_text(R"(
model night conforms ssml
object SmartSpace room {
  child objects SmartObject lamp { kind = light power = true }
  child objects SmartObject speaker { kind = speaker power = true }
  child apps UbiquitousApp goodnight {
    trigger = "user.sleeping"
    command = power-off
    targets -> lamp, speaker
  }
}
)")
                  .ok());
  space->pump();
  EXPECT_TRUE(space->nodes.at("lamp")->device().power);
  EXPECT_EQ(space->nodes.at("lamp")->installed_scripts(), 1u);
  EXPECT_EQ(space->nodes.at("speaker")->installed_scripts(), 1u);
  space->nodes.at("lamp")->raise_event("user.sleeping");
  space->nodes.at("speaker")->raise_event("user.sleeping");
  EXPECT_FALSE(space->nodes.at("lamp")->device().power);
  EXPECT_FALSE(space->nodes.at("speaker")->device().power);
}

TEST_F(SpaceFixture, HubHasNoBrokerResources) {
  // The hub's null broker proves the split: no resource adapter exists
  // on the central node and no resource command was ever issued there.
  ASSERT_TRUE(space->hub
                  ->submit_model_text(R"(
model m conforms ssml
object SmartSpace room {
  child objects SmartObject lamp { kind = light power = true }
}
)")
                  .ok());
  space->pump();
  EXPECT_EQ(space->hub->controller().stats().errors, 0u);
  // Work happened on the object's broker, not the hub's.
  EXPECT_GT(space->nodes.at("lamp")->broker().trace().size(), 0u);
}

}  // namespace
}  // namespace mdsm::smartspace
