// Networked ingress front-end (PR 7): wire codec, pattern router and
// middleware chain units, plus end-to-end split deployments — a client
// endpoint submitting application models to an IngressServer over the
// simulated network, with the PR-5 overload contract propagating across
// the wire as typed refusal replies.
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/platform.hpp"
#include "ingress/ingress_client.hpp"
#include "ingress/ingress_server.hpp"
#include "ingress/middleware.hpp"
#include "ingress/router.hpp"
#include "ingress/wire.hpp"
#include "net/network.hpp"
#include "soak_fixtures.hpp"

namespace mdsm {
namespace {

// ---- wire codec -----------------------------------------------------------

TEST(Wire, RequestRoundTrip) {
  ingress::wire::Request request;
  request.request_id = 42;
  request.text = "model m conforms testlang\n";
  request.auth = "secret";
  request.deadline_us = 1500;
  request.high_priority = true;
  auto decoded = ingress::wire::decode_request(
      ingress::wire::encode_request(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded.value().request_id, 42u);
  EXPECT_EQ(decoded.value().text, request.text);
  EXPECT_EQ(decoded.value().auth, "secret");
  EXPECT_EQ(decoded.value().deadline_us, 1500);
  EXPECT_TRUE(decoded.value().high_priority);
}

TEST(Wire, ReplyRoundTrip) {
  ingress::wire::Reply reply;
  reply.request_id = 7;
  reply.code = ErrorCode::kUnavailable;
  reply.refusal = "overload";
  reply.message = "queue full";
  reply.commands = 3;
  auto decoded =
      ingress::wire::decode_reply(ingress::wire::encode_reply(reply));
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded.value().request_id, 7u);
  EXPECT_EQ(decoded.value().code, ErrorCode::kUnavailable);
  EXPECT_EQ(decoded.value().refusal, "overload");
  EXPECT_EQ(decoded.value().message, "queue full");
  EXPECT_EQ(decoded.value().commands, 3);
}

TEST(Wire, DecodeRejectsMalformedPayloads) {
  EXPECT_FALSE(ingress::wire::decode_request(model::Value("garbage")).ok());
  EXPECT_FALSE(ingress::wire::decode_reply(model::Value(7.0)).ok());
  EXPECT_FALSE(ingress::wire::decode_request(model::Value()).ok());
}

TEST(Wire, RefusalTaxonomyIsStable) {
  using ingress::wire::classify_refusal;
  EXPECT_EQ(classify_refusal(Timeout("x")), "deadline");
  EXPECT_EQ(classify_refusal(Unavailable("x")), "overload");
  EXPECT_EQ(classify_refusal(FailedPrecondition("x")), "not-running");
  EXPECT_EQ(classify_refusal(InvalidArgument("x")), "malformed");
  EXPECT_EQ(classify_refusal(ParseError("x")), "malformed");
  EXPECT_EQ(classify_refusal(ConformanceError("x")), "conformance");
  EXPECT_EQ(classify_refusal(NotFound("x")), "no-route");
  EXPECT_EQ(classify_refusal(ExecutionError("x")), "execution");
  EXPECT_EQ(classify_refusal(Internal("x")), "error");
}

// ---- router ---------------------------------------------------------------

TEST(Router, BindsCapturesAndPrefersLiterals) {
  ingress::Router router;
  std::string hit;
  auto handler = [&hit](std::string name) {
    return [&hit, name](const net::Message&, const ingress::RouteParams&) {
      hit = name;
    };
  };
  ASSERT_TRUE(router.add("submit/{dsml}/{session}", handler("generic")).ok());
  ASSERT_TRUE(router.add("submit/cml/{session}", handler("cml")).ok());

  auto generic = router.route("submit/testlang/s1");
  ASSERT_TRUE(generic.has_value());
  EXPECT_EQ(generic->pattern, "submit/{dsml}/{session}");
  EXPECT_EQ(generic->params.get("dsml"), "testlang");
  EXPECT_EQ(generic->params.get("session"), "s1");

  // The more literal pattern wins for its own prefix.
  auto specific = router.route("submit/cml/s2");
  ASSERT_TRUE(specific.has_value());
  EXPECT_EQ(specific->pattern, "submit/cml/{session}");
  EXPECT_EQ(specific->params.get("session"), "s2");

  EXPECT_FALSE(router.route("submit/testlang").has_value());
  EXPECT_FALSE(router.route("other/testlang/s1").has_value());
  // An empty segment cannot bind a capture.
  EXPECT_FALSE(router.route("submit//s1").has_value());
}

TEST(Router, RejectsDuplicateAndUnnamedPatterns) {
  ingress::Router router;
  auto noop = [](const net::Message&, const ingress::RouteParams&) {};
  ASSERT_TRUE(router.add("a/{x}", noop).ok());
  EXPECT_EQ(router.add("a/{x}", noop).code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(router.add("a/{}", noop).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(router.add("", noop).code(), ErrorCode::kInvalidArgument);
}

// ---- middleware chain -----------------------------------------------------

TEST(MiddlewareChain, RunsInOrderAndShortCircuits) {
  ingress::MiddlewareChain chain;
  std::vector<std::string> ran;
  chain.add("first", [&ran](ingress::IngressContext&) {
    ran.push_back("first");
    return Status::Ok();
  });
  chain.add("second", [&ran](ingress::IngressContext& context) {
    ran.push_back("second");
    context.refusal = "unauthenticated";
    return FailedPrecondition("nope");
  });
  chain.add("third", [&ran](ingress::IngressContext&) {
    ran.push_back("third");
    return Status::Ok();
  });

  ingress::IngressContext context;
  Status status = chain.run(context);
  EXPECT_EQ(status.code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(context.refusal, "unauthenticated");
  EXPECT_EQ(ran, (std::vector<std::string>{"first", "second"}));
  EXPECT_EQ(chain.names(),
            (std::vector<std::string>{"first", "second", "third"}));
}

TEST(MiddlewareChain, FillsRefusalSlugFromStatusWhenUntyped) {
  ingress::MiddlewareChain chain;
  chain.add("gate",
            [](ingress::IngressContext&) { return Unavailable("busy"); });
  ingress::IngressContext context;
  EXPECT_EQ(chain.run(context).code(), ErrorCode::kUnavailable);
  EXPECT_EQ(context.refusal, "overload");
}

// ---- split deployment over the simulated network --------------------------

net::NetworkConfig quiet_network() {
  net::NetworkConfig config;
  config.base_latency = std::chrono::microseconds(100);
  config.jitter = std::chrono::microseconds(0);
  config.drop_rate = 0.0;
  return config;
}

/// A full split deployment: platform + network + server + client. The
/// platform runs its real-time staged pipeline; the network runs on its
/// own SimClock that run_until_idle advances.
struct SplitDeployment {
  model::MetamodelPtr dsml;
  SimClock clock;
  std::unique_ptr<core::Platform> platform;
  soak::CountingAdapter* svc = nullptr;
  std::unique_ptr<net::Network> network;
  std::unique_ptr<ingress::IngressServer> server;
  std::unique_ptr<ingress::IngressClient> client;

  /// Deliver requests, pump replies, deliver replies, repeat until
  /// `done` (or ~10s of wall time — the pipeline runs in real time).
  bool drive_until(const std::function<bool()>& done) {
    const auto wall_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < wall_deadline) {
      network->run_until_idle();
      server->pump();
      network->run_until_idle();
      if (done()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return done();
  }

  /// Orderly teardown: drain the platform first so no completion
  /// callback can reach a destroyed server, then unwind outside-in.
  void shutdown() {
    if (platform != nullptr) {
      EXPECT_TRUE(platform->stop().ok());
    }
    client.reset();
    server.reset();
    network.reset();
    platform.reset();
  }
};

std::unique_ptr<SplitDeployment> make_split_deployment(
    std::string_view extra_attrs = "", unsigned pipeline_threads = 2,
    net::NetworkConfig network_config = quiet_network(),
    ingress::IngressClientOptions client_options = {}) {
  auto out = std::make_unique<SplitDeployment>();
  out->dsml = model::testing::make_test_metamodel();

  std::string text(soak::kSoakMiddlewareModel);
  const std::string anchor = "domain = \"testing\"";
  text.insert(text.find(anchor) + anchor.size(),
              "\n  " + std::string(extra_attrs));

  core::PlatformConfig config;
  config.dsml = out->dsml;
  config.pipeline_threads = pipeline_threads;
  auto assembled = core::Platform::assemble_from_text(text, config);
  if (!assembled.ok()) return nullptr;
  out->platform = std::move(assembled.value());
  auto svc = std::make_unique<soak::CountingAdapter>("svc");
  out->svc = svc.get();
  if (!out->platform->add_resource_adapter(std::move(svc)).ok()) return nullptr;
  if (!out->platform->start().ok()) return nullptr;

  out->network = std::make_unique<net::Network>(out->clock, network_config);
  ingress::IngressServerOptions server_options;
  server_options.manual_reply_loop = true;  // tests pump() deterministically
  auto server = ingress::IngressServer::attach(*out->platform, *out->network,
                                               server_options);
  if (!server.ok()) return nullptr;
  out->server = std::move(server.value());
  auto client = ingress::IngressClient::attach(
      *out->network, out->server->endpoint_name(), std::move(client_options));
  if (!client.ok()) return nullptr;
  out->client = std::move(client.value());
  return out;
}

/// Exactly-once callback ledger shared by the load tests.
struct Ledger {
  std::mutex mutex;
  std::map<std::uint64_t, int> fired;  ///< request id → callback count
  std::map<std::string, int> refusals; ///< slug → count ("" = success)

  ingress::IngressClient::Callback recorder() {
    return [this](const ingress::RemoteOutcome& outcome) {
      std::lock_guard lock(mutex);
      ++fired[outcome.request_id];
      ++refusals[outcome.refusal];
    };
  }
  int total() {
    std::lock_guard lock(mutex);
    int sum = 0;
    for (auto& [id, count] : fired) sum += count;
    return sum;
  }
};

TEST(IngressE2E, SubmitCompletesOverTheWire) {
  auto deployment = make_split_deployment();
  ASSERT_NE(deployment, nullptr);

  std::optional<ingress::RemoteOutcome> outcome;
  auto submitted = deployment->client->submit(
      "testlang", "s1", soak::open_session_text("s1"),
      [&outcome](const ingress::RemoteOutcome& result) { outcome = result; });
  ASSERT_TRUE(submitted.ok()) << submitted.status().to_string();
  EXPECT_EQ(submitted.value(), 1u);

  ASSERT_TRUE(deployment->drive_until([&] { return outcome.has_value(); }));
  EXPECT_TRUE(outcome->status.ok()) << outcome->status.to_string();
  EXPECT_EQ(outcome->refusal, "");
  EXPECT_GT(outcome->commands, 0);
  EXPECT_GE(deployment->svc->executed(), 1u);

  // The cross-wire identity landed on the request context: the platform
  // correlates its span tree with the remote sender's request id.
  auto context = deployment->platform->last_async_context();
  ASSERT_NE(context, nullptr);
  EXPECT_EQ(context->remote_id(), "client#1");
  EXPECT_EQ(context->attribute("ingress.session"), "s1");

  const ingress::IngressServer::Stats stats = deployment->server->stats();
  EXPECT_EQ(stats.received, 1u);
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.completed_ok, 1u);
  EXPECT_EQ(stats.replies, 1u);
  EXPECT_EQ(deployment->client->stats().resolved_ok, 1u);
  deployment->shutdown();
}

TEST(IngressE2E, WrongDsmlAndUnknownQueryAreTypedRefusals) {
  auto deployment = make_split_deployment();
  ASSERT_NE(deployment, nullptr);

  std::optional<ingress::RemoteOutcome> wrong_dsml;
  ASSERT_TRUE(deployment->client
                  ->submit("otherlang", "s1", "model x conforms otherlang\n",
                           [&](const ingress::RemoteOutcome& r) {
                             wrong_dsml = r;
                           })
                  .ok());
  ASSERT_TRUE(deployment->drive_until([&] { return wrong_dsml.has_value(); }));
  EXPECT_EQ(wrong_dsml->status.code(), ErrorCode::kNotFound);
  EXPECT_EQ(wrong_dsml->refusal, "wrong-dsml");

  std::optional<ingress::RemoteOutcome> unknown;
  ASSERT_TRUE(deployment->client
                  ->query("bogus",
                          [&](const ingress::RemoteOutcome& r) { unknown = r; })
                  .ok());
  ASSERT_TRUE(deployment->drive_until([&] { return unknown.has_value(); }));
  EXPECT_EQ(unknown->status.code(), ErrorCode::kNotFound);
  EXPECT_EQ(unknown->refusal, "no-route");
  deployment->shutdown();
}

TEST(IngressE2E, MalformedAndUnroutedMessagesAreRefusedNotDropped) {
  auto deployment = make_split_deployment();
  ASSERT_NE(deployment, nullptr);

  auto raw = deployment->network->create_endpoint("raw");
  ASSERT_TRUE(raw.ok());
  std::vector<ingress::wire::Reply> replies;
  raw.value()->set_handler([&](const net::Message& message) {
    auto reply = ingress::wire::decode_reply(message.payload);
    ASSERT_TRUE(reply.ok());
    replies.push_back(reply.value());
  });

  // Garbage payload on a valid submit topic → "malformed".
  raw.value()->send(deployment->server->endpoint_name(),
                    "submit/testlang/s1", model::Value("garbage"));
  // Valid payload on a topic no route matches → "no-route", with the
  // request id recovered best-effort for correlation.
  ingress::wire::Request request;
  request.request_id = 99;
  raw.value()->send(deployment->server->endpoint_name(), "weird/topic",
                    ingress::wire::encode_request(request));
  ASSERT_TRUE(deployment->drive_until([&] { return replies.size() == 2; }));

  EXPECT_EQ(replies[0].refusal, "malformed");
  EXPECT_EQ(replies[0].code, ErrorCode::kInvalidArgument);
  EXPECT_EQ(replies[1].refusal, "no-route");
  EXPECT_EQ(replies[1].request_id, 99u);

  const ingress::IngressServer::Stats stats = deployment->server->stats();
  EXPECT_EQ(stats.malformed, 1u);
  EXPECT_EQ(stats.unrouted, 1u);
  deployment->shutdown();
}

TEST(IngressE2E, AuthTokenFromModelGatesSubmissions) {
  auto deployment = make_split_deployment("ingress_auth = \"sesame\"");
  ASSERT_NE(deployment, nullptr);
  // The client is attached without a token: refused.
  std::optional<ingress::RemoteOutcome> denied;
  ASSERT_TRUE(deployment->client
                  ->submit("testlang", "s1", soak::open_session_text("s1"),
                           [&](const ingress::RemoteOutcome& r) { denied = r; })
                  .ok());
  ASSERT_TRUE(deployment->drive_until([&] { return denied.has_value(); }));
  EXPECT_EQ(denied->status.code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(denied->refusal, "unauthenticated");

  // A second client carrying the model's token gets through.
  ingress::IngressClientOptions options;
  options.endpoint = "trusted";
  options.auth = "sesame";
  auto trusted = ingress::IngressClient::attach(
      *deployment->network, deployment->server->endpoint_name(), options);
  ASSERT_TRUE(trusted.ok());
  std::optional<ingress::RemoteOutcome> accepted;
  ASSERT_TRUE(trusted.value()
                  ->submit("testlang", "s2", soak::open_session_text("s2"),
                           [&](const ingress::RemoteOutcome& r) {
                             accepted = r;
                           })
                  .ok());
  ASSERT_TRUE(deployment->drive_until([&] { return accepted.has_value(); }));
  EXPECT_TRUE(accepted->status.ok()) << accepted->status.to_string();
  trusted.value().reset();
  deployment->shutdown();
}

TEST(IngressE2E, QueryReturnsRuntimeModelAndMetrics) {
  auto deployment = make_split_deployment();
  ASSERT_NE(deployment, nullptr);

  std::optional<ingress::RemoteOutcome> submitted;
  ASSERT_TRUE(deployment->client
                  ->submit("testlang", "s1", soak::open_session_text("s1"),
                           [&](const ingress::RemoteOutcome& r) {
                             submitted = r;
                           })
                  .ok());
  ASSERT_TRUE(deployment->drive_until([&] { return submitted.has_value(); }));

  std::optional<ingress::RemoteOutcome> runtime_model;
  ASSERT_TRUE(deployment->client
                  ->query("runtime-model",
                          [&](const ingress::RemoteOutcome& r) {
                            runtime_model = r;
                          })
                  .ok());
  ASSERT_TRUE(
      deployment->drive_until([&] { return runtime_model.has_value(); }));
  EXPECT_TRUE(runtime_model->status.ok());
  // The session the submit created is visible in the round-tripped model.
  EXPECT_NE(runtime_model->payload.find("s1"), std::string::npos);

  std::optional<ingress::RemoteOutcome> metrics;
  ASSERT_TRUE(deployment->client
                  ->query("metrics",
                          [&](const ingress::RemoteOutcome& r) { metrics = r; })
                  .ok());
  ASSERT_TRUE(deployment->drive_until([&] { return metrics.has_value(); }));
  EXPECT_TRUE(metrics->status.ok());
  EXPECT_NE(metrics->payload.find("ingress.received"), std::string::npos);
  deployment->shutdown();
}

// Satellite 4: the overload contract crosses the wire. 10x the pipeline's
// capacity is thrown at a tightly bounded platform; every submission
// resolves exactly once at the client — success or typed refusal — and
// the door refusals surface as "overload".
TEST(IngressE2E, OverloadRefusalsPropagateAsTypedRepliesUnderLoad) {
  auto deployment = make_split_deployment(
      "queue_capacity = 2\n  overflow_policy = reject",
      /*pipeline_threads=*/1);
  ASSERT_NE(deployment, nullptr);

  Ledger ledger;
  constexpr int kSubmissions = 100;
  for (int i = 0; i < kSubmissions; ++i) {
    auto submitted = deployment->client->submit(
        "testlang", "s" + std::to_string(i),
        soak::open_session_text("s" + std::to_string(i)), ledger.recorder());
    ASSERT_TRUE(submitted.ok()) << submitted.status().to_string();
  }

  ASSERT_TRUE(
      deployment->drive_until([&] { return ledger.total() == kSubmissions; }));

  // Exactly-once: every request id fired its callback exactly one time.
  {
    std::lock_guard lock(ledger.mutex);
    EXPECT_EQ(ledger.fired.size(), static_cast<std::size_t>(kSubmissions));
    for (const auto& [id, count] : ledger.fired) {
      EXPECT_EQ(count, 1) << "request " << id;
    }
    // The bounded queue + single worker cannot swallow 100 instant
    // arrivals: some were refused at the door, some completed.
    EXPECT_GT(ledger.refusals["overload"], 0);
    EXPECT_GT(ledger.refusals[""], 0);
  }

  const ingress::IngressServer::Stats stats = deployment->server->stats();
  EXPECT_EQ(stats.received, static_cast<std::uint64_t>(kSubmissions));
  EXPECT_EQ(stats.accepted + stats.refused,
            static_cast<std::uint64_t>(kSubmissions));
  EXPECT_GT(stats.refused, 0u);
  const ingress::IngressClient::Stats client_stats =
      deployment->client->stats();
  EXPECT_EQ(client_stats.resolved_ok + client_stats.refused,
            static_cast<std::uint64_t>(kSubmissions));
  EXPECT_EQ(deployment->platform->metrics().snapshot().counter_value(
                "ingress.refused.overload"),
            stats.refused);
  deployment->shutdown();
}

// Satellite 4, lossy half: with drop_rate > 0 requests and replies
// vanish, and the client's expiry ledger turns every loss into a
// "reply-lost" outcome — still exactly once per submission.
TEST(IngressE2E, LostRepliesExpireExactlyOnceUnderDropRate) {
  net::NetworkConfig lossy = quiet_network();
  lossy.drop_rate = 0.3;
  lossy.seed = 17;
  ingress::IngressClientOptions client_options;
  client_options.reply_timeout = std::chrono::seconds(1);
  auto deployment = make_split_deployment("", /*pipeline_threads=*/2, lossy,
                                          client_options);
  ASSERT_NE(deployment, nullptr);

  Ledger ledger;
  constexpr int kSubmissions = 60;
  for (int i = 0; i < kSubmissions; ++i) {
    ASSERT_TRUE(deployment->client
                    ->submit("testlang", "s" + std::to_string(i),
                             soak::open_session_text("s" + std::to_string(i)),
                             ledger.recorder())
                    .ok());
  }

  // Drain everything the network did deliver: the pipeline settles when
  // each accepted submission has completed, then the replies flush.
  ASSERT_TRUE(deployment->drive_until([&] {
    const ingress::IngressServer::Stats stats = deployment->server->stats();
    return stats.accepted == stats.completed_ok + stats.completed_error &&
           deployment->server->pump() == 0 &&
           deployment->network->pending() == 0;
  }));

  // Whatever is still unresolved at the client was lost on the wire.
  deployment->clock.advance(std::chrono::seconds(5));
  deployment->client->expire_overdue();

  {
    std::lock_guard lock(ledger.mutex);
    EXPECT_EQ(ledger.fired.size(), static_cast<std::size_t>(kSubmissions));
    for (const auto& [id, count] : ledger.fired) {
      EXPECT_EQ(count, 1) << "request " << id;
    }
    // With p=0.3 over ~120 crossings, losses are a statistical
    // certainty; each shows up as the typed "reply-lost" outcome.
    EXPECT_GT(ledger.refusals["reply-lost"], 0);
  }
  const ingress::IngressClient::Stats stats = deployment->client->stats();
  EXPECT_EQ(stats.resolved_ok + stats.refused + stats.expired,
            static_cast<std::uint64_t>(kSubmissions));
  EXPECT_GT(stats.expired, 0u);
  EXPECT_EQ(deployment->client->pending(), 0u);
  deployment->shutdown();
}

// ---- model-driven ingress configuration -----------------------------------

TEST(IngressConfig, SettingsDecodedFromMiddlewareModel) {
  auto deployment = make_split_deployment(
      "ingress_endpoint = \"front-door\"\n"
      "  ingress_auth = \"token\"\n"
      "  ingress_default_deadline_us = 250000");
  ASSERT_NE(deployment, nullptr);
  const core::IngressSettings& settings =
      deployment->platform->ingress_settings();
  EXPECT_EQ(settings.endpoint, "front-door");
  EXPECT_EQ(settings.auth_token, "token");
  EXPECT_EQ(settings.default_deadline, std::chrono::microseconds(250000));
  // The server picked the model-configured endpoint name up.
  EXPECT_EQ(deployment->server->endpoint_name(), "front-door");
  deployment->shutdown();
}

TEST(IngressConfig, EndpointNameDerivedFromPlatformName) {
  auto deployment = make_split_deployment();
  ASSERT_NE(deployment, nullptr);
  EXPECT_EQ(deployment->server->endpoint_name(), "soak-platform.ingress");
  deployment->shutdown();
}

}  // namespace
}  // namespace mdsm
