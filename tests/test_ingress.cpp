// Networked ingress front-end (PR 7): wire codec, pattern router and
// middleware chain units, plus end-to-end split deployments — a client
// endpoint submitting application models to an IngressServer over the
// simulated network, with the PR-5 overload contract propagating across
// the wire as typed refusal replies.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/platform.hpp"
#include "ingress/ingress_client.hpp"
#include "ingress/ingress_server.hpp"
#include "ingress/middleware.hpp"
#include "ingress/router.hpp"
#include "ingress/wire.hpp"
#include "net/network.hpp"
#include "soak_fixtures.hpp"

namespace mdsm {
namespace {

// ---- wire codec -----------------------------------------------------------

TEST(Wire, RequestRoundTrip) {
  ingress::wire::Request request;
  request.request_id = 42;
  request.text = "model m conforms testlang\n";
  request.auth = "secret";
  request.deadline_us = 1500;
  request.high_priority = true;
  auto decoded = ingress::wire::decode_request(
      ingress::wire::encode_request(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded.value().request_id, 42u);
  EXPECT_EQ(decoded.value().text, request.text);
  EXPECT_EQ(decoded.value().auth, "secret");
  EXPECT_EQ(decoded.value().deadline_us, 1500);
  EXPECT_TRUE(decoded.value().high_priority);
}

TEST(Wire, ReplyRoundTrip) {
  ingress::wire::Reply reply;
  reply.request_id = 7;
  reply.code = ErrorCode::kUnavailable;
  reply.refusal = "overload";
  reply.message = "queue full";
  reply.commands = 3;
  auto decoded =
      ingress::wire::decode_reply(ingress::wire::encode_reply(reply));
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded.value().request_id, 7u);
  EXPECT_EQ(decoded.value().code, ErrorCode::kUnavailable);
  EXPECT_EQ(decoded.value().refusal, "overload");
  EXPECT_EQ(decoded.value().message, "queue full");
  EXPECT_EQ(decoded.value().commands, 3);
}

TEST(Wire, DecodeRejectsMalformedPayloads) {
  EXPECT_FALSE(ingress::wire::decode_request(model::Value("garbage")).ok());
  EXPECT_FALSE(ingress::wire::decode_reply(model::Value(7.0)).ok());
  EXPECT_FALSE(ingress::wire::decode_request(model::Value()).ok());
}

TEST(Wire, RefusalTaxonomyIsStable) {
  using ingress::wire::classify_refusal;
  EXPECT_EQ(classify_refusal(Timeout("x")), "deadline");
  EXPECT_EQ(classify_refusal(Unavailable("x")), "overload");
  EXPECT_EQ(classify_refusal(FailedPrecondition("x")), "not-running");
  EXPECT_EQ(classify_refusal(InvalidArgument("x")), "malformed");
  EXPECT_EQ(classify_refusal(ParseError("x")), "malformed");
  EXPECT_EQ(classify_refusal(ConformanceError("x")), "conformance");
  EXPECT_EQ(classify_refusal(NotFound("x")), "no-route");
  EXPECT_EQ(classify_refusal(ExecutionError("x")), "execution");
  EXPECT_EQ(classify_refusal(Internal("x")), "error");
}

// ---- router ---------------------------------------------------------------

TEST(Router, BindsCapturesAndPrefersLiterals) {
  ingress::Router router;
  std::string hit;
  auto handler = [&hit](std::string name) {
    return [&hit, name](const net::Message&, const ingress::RouteParams&) {
      hit = name;
    };
  };
  ASSERT_TRUE(router.add("submit/{dsml}/{session}", handler("generic")).ok());
  ASSERT_TRUE(router.add("submit/cml/{session}", handler("cml")).ok());

  auto generic = router.route("submit/testlang/s1");
  ASSERT_TRUE(generic.has_value());
  EXPECT_EQ(generic->pattern, "submit/{dsml}/{session}");
  EXPECT_EQ(generic->params.get("dsml"), "testlang");
  EXPECT_EQ(generic->params.get("session"), "s1");

  // The more literal pattern wins for its own prefix.
  auto specific = router.route("submit/cml/s2");
  ASSERT_TRUE(specific.has_value());
  EXPECT_EQ(specific->pattern, "submit/cml/{session}");
  EXPECT_EQ(specific->params.get("session"), "s2");

  EXPECT_FALSE(router.route("submit/testlang").has_value());
  EXPECT_FALSE(router.route("other/testlang/s1").has_value());
  // An empty segment cannot bind a capture.
  EXPECT_FALSE(router.route("submit//s1").has_value());
}

TEST(Router, RejectsDuplicateAndUnnamedPatterns) {
  ingress::Router router;
  auto noop = [](const net::Message&, const ingress::RouteParams&) {};
  ASSERT_TRUE(router.add("a/{x}", noop).ok());
  EXPECT_EQ(router.add("a/{x}", noop).code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(router.add("a/{}", noop).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(router.add("", noop).code(), ErrorCode::kInvalidArgument);
}

// ---- middleware chain -----------------------------------------------------

TEST(MiddlewareChain, RunsInOrderAndShortCircuits) {
  ingress::MiddlewareChain chain;
  std::vector<std::string> ran;
  chain.add("first", [&ran](ingress::IngressContext&) {
    ran.push_back("first");
    return Status::Ok();
  });
  chain.add("second", [&ran](ingress::IngressContext& context) {
    ran.push_back("second");
    context.refusal = "unauthenticated";
    return FailedPrecondition("nope");
  });
  chain.add("third", [&ran](ingress::IngressContext&) {
    ran.push_back("third");
    return Status::Ok();
  });

  ingress::IngressContext context;
  Status status = chain.run(context);
  EXPECT_EQ(status.code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(context.refusal, "unauthenticated");
  EXPECT_EQ(ran, (std::vector<std::string>{"first", "second"}));
  EXPECT_EQ(chain.names(),
            (std::vector<std::string>{"first", "second", "third"}));
}

TEST(MiddlewareChain, FillsRefusalSlugFromStatusWhenUntyped) {
  ingress::MiddlewareChain chain;
  chain.add("gate",
            [](ingress::IngressContext&) { return Unavailable("busy"); });
  ingress::IngressContext context;
  EXPECT_EQ(chain.run(context).code(), ErrorCode::kUnavailable);
  EXPECT_EQ(context.refusal, "overload");
}

// ---- split deployment over the simulated network --------------------------

net::NetworkConfig quiet_network() {
  net::NetworkConfig config;
  config.base_latency = std::chrono::microseconds(100);
  config.jitter = std::chrono::microseconds(0);
  config.drop_rate = 0.0;
  return config;
}

/// A full split deployment: platform + network + server + client. The
/// platform runs its real-time staged pipeline; the network runs on its
/// own SimClock that run_until_idle advances.
struct SplitDeployment {
  model::MetamodelPtr dsml;
  SimClock clock;
  std::unique_ptr<core::Platform> platform;
  soak::CountingAdapter* svc = nullptr;
  std::unique_ptr<net::Network> network;
  std::unique_ptr<ingress::IngressServer> server;
  std::unique_ptr<ingress::IngressClient> client;

  /// Deliver requests, pump replies, deliver replies, repeat until
  /// `done` (or ~10s of wall time — the pipeline runs in real time).
  bool drive_until(const std::function<bool()>& done) {
    const auto wall_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < wall_deadline) {
      network->run_until_idle();
      server->pump();
      network->run_until_idle();
      if (done()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return done();
  }

  /// Orderly teardown: drain the platform first so no completion
  /// callback can reach a destroyed server, then unwind outside-in.
  void shutdown() {
    if (platform != nullptr) {
      EXPECT_TRUE(platform->stop().ok());
    }
    client.reset();
    server.reset();
    network.reset();
    platform.reset();
  }
};

/// A CountingAdapter that can additionally PARK executions: each
/// execution while `holds` is positive blocks inside execute() until
/// release(). Lets a test hold a request in flight deterministically
/// (give the pipeline a second worker so other traffic still flows).
class GateAdapter final : public broker::ResourceAdapter {
 public:
  GateAdapter() : ResourceAdapter("svc") {}

  Result<model::Value> execute(const std::string& command,
                               const broker::Args& args) override {
    (void)args;
    executed_.fetch_add(1, std::memory_order_relaxed);
    if (holds_.fetch_sub(1, std::memory_order_acq_rel) > 0) {
      std::unique_lock lock(mutex_);
      released_cv_.wait(lock, [this] { return released_; });
    }
    return model::Value("done:" + command);
  }

  void hold_next(int executions) {
    holds_.store(executions, std::memory_order_release);
  }
  void release() {
    {
      std::lock_guard lock(mutex_);
      released_ = true;
    }
    released_cv_.notify_all();
  }
  [[nodiscard]] std::uint64_t executed() const noexcept {
    return executed_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<int> holds_{0};
  std::mutex mutex_;
  std::condition_variable released_cv_;
  bool released_ = false;
};

std::unique_ptr<SplitDeployment> make_split_deployment(
    std::string_view extra_attrs = "", unsigned pipeline_threads = 2,
    net::NetworkConfig network_config = quiet_network(),
    ingress::IngressClientOptions client_options = {},
    ingress::IngressServerOptions server_options = {},
    std::unique_ptr<broker::ResourceAdapter> adapter = nullptr) {
  auto out = std::make_unique<SplitDeployment>();
  out->dsml = model::testing::make_test_metamodel();

  std::string text(soak::kSoakMiddlewareModel);
  const std::string anchor = "domain = \"testing\"";
  text.insert(text.find(anchor) + anchor.size(),
              "\n  " + std::string(extra_attrs));

  core::PlatformConfig config;
  config.dsml = out->dsml;
  config.pipeline_threads = pipeline_threads;
  auto assembled = core::Platform::assemble_from_text(text, config);
  if (!assembled.ok()) return nullptr;
  out->platform = std::move(assembled.value());
  if (adapter == nullptr) {
    auto svc = std::make_unique<soak::CountingAdapter>("svc");
    out->svc = svc.get();
    adapter = std::move(svc);
  }
  if (!out->platform->add_resource_adapter(std::move(adapter)).ok()) {
    return nullptr;
  }
  if (!out->platform->start().ok()) return nullptr;

  out->network = std::make_unique<net::Network>(out->clock, network_config);
  server_options.manual_reply_loop = true;  // tests pump() deterministically
  auto server = ingress::IngressServer::attach(*out->platform, *out->network,
                                               server_options);
  if (!server.ok()) return nullptr;
  out->server = std::move(server.value());
  auto client = ingress::IngressClient::attach(
      *out->network, out->server->endpoint_name(), std::move(client_options));
  if (!client.ok()) return nullptr;
  out->client = std::move(client.value());
  return out;
}

/// Exactly-once callback ledger shared by the load tests.
struct Ledger {
  std::mutex mutex;
  std::map<std::uint64_t, int> fired;  ///< request id → callback count
  std::map<std::string, int> refusals; ///< slug → count ("" = success)

  ingress::IngressClient::Callback recorder() {
    return [this](const ingress::RemoteOutcome& outcome) {
      std::lock_guard lock(mutex);
      ++fired[outcome.request_id];
      ++refusals[outcome.refusal];
    };
  }
  int total() {
    std::lock_guard lock(mutex);
    int sum = 0;
    for (auto& [id, count] : fired) sum += count;
    return sum;
  }
};

TEST(IngressE2E, SubmitCompletesOverTheWire) {
  auto deployment = make_split_deployment();
  ASSERT_NE(deployment, nullptr);

  std::optional<ingress::RemoteOutcome> outcome;
  auto submitted = deployment->client->submit(
      "testlang", "s1", soak::open_session_text("s1"),
      [&outcome](const ingress::RemoteOutcome& result) { outcome = result; });
  ASSERT_TRUE(submitted.ok()) << submitted.status().to_string();
  EXPECT_EQ(submitted.value(), 1u);

  ASSERT_TRUE(deployment->drive_until([&] { return outcome.has_value(); }));
  EXPECT_TRUE(outcome->status.ok()) << outcome->status.to_string();
  EXPECT_EQ(outcome->refusal, "");
  EXPECT_GT(outcome->commands, 0);
  EXPECT_GE(deployment->svc->executed(), 1u);

  // The cross-wire identity landed on the request context: the platform
  // correlates its span tree with the remote sender's request id.
  auto context = deployment->platform->last_async_context();
  ASSERT_NE(context, nullptr);
  EXPECT_EQ(context->remote_id(), "client#1");
  EXPECT_EQ(context->attribute("ingress.session"), "s1");

  const ingress::IngressServer::Stats stats = deployment->server->stats();
  EXPECT_EQ(stats.received, 1u);
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.completed_ok, 1u);
  EXPECT_EQ(stats.replies, 1u);
  EXPECT_EQ(deployment->client->stats().resolved_ok, 1u);
  deployment->shutdown();
}

TEST(IngressE2E, WrongDsmlAndUnknownQueryAreTypedRefusals) {
  auto deployment = make_split_deployment();
  ASSERT_NE(deployment, nullptr);

  std::optional<ingress::RemoteOutcome> wrong_dsml;
  ASSERT_TRUE(deployment->client
                  ->submit("otherlang", "s1", "model x conforms otherlang\n",
                           [&](const ingress::RemoteOutcome& r) {
                             wrong_dsml = r;
                           })
                  .ok());
  ASSERT_TRUE(deployment->drive_until([&] { return wrong_dsml.has_value(); }));
  EXPECT_EQ(wrong_dsml->status.code(), ErrorCode::kNotFound);
  EXPECT_EQ(wrong_dsml->refusal, "wrong-dsml");

  std::optional<ingress::RemoteOutcome> unknown;
  ASSERT_TRUE(deployment->client
                  ->query("bogus",
                          [&](const ingress::RemoteOutcome& r) { unknown = r; })
                  .ok());
  ASSERT_TRUE(deployment->drive_until([&] { return unknown.has_value(); }));
  EXPECT_EQ(unknown->status.code(), ErrorCode::kNotFound);
  EXPECT_EQ(unknown->refusal, "no-route");
  deployment->shutdown();
}

TEST(IngressE2E, MalformedAndUnroutedMessagesAreRefusedNotDropped) {
  auto deployment = make_split_deployment();
  ASSERT_NE(deployment, nullptr);

  auto raw = deployment->network->create_endpoint("raw");
  ASSERT_TRUE(raw.ok());
  std::vector<ingress::wire::Reply> replies;
  raw.value()->set_handler([&](const net::Message& message) {
    auto reply = ingress::wire::decode_reply(message.payload);
    ASSERT_TRUE(reply.ok());
    replies.push_back(reply.value());
  });

  // Garbage payload on a valid submit topic → "malformed".
  raw.value()->send(deployment->server->endpoint_name(),
                    "submit/testlang/s1", model::Value("garbage"));
  // Valid payload on a topic no route matches → "no-route", with the
  // request id recovered best-effort for correlation.
  ingress::wire::Request request;
  request.request_id = 99;
  raw.value()->send(deployment->server->endpoint_name(), "weird/topic",
                    ingress::wire::encode_request(request));
  ASSERT_TRUE(deployment->drive_until([&] { return replies.size() == 2; }));

  EXPECT_EQ(replies[0].refusal, "malformed");
  EXPECT_EQ(replies[0].code, ErrorCode::kInvalidArgument);
  EXPECT_EQ(replies[1].refusal, "no-route");
  EXPECT_EQ(replies[1].request_id, 99u);

  const ingress::IngressServer::Stats stats = deployment->server->stats();
  EXPECT_EQ(stats.malformed, 1u);
  EXPECT_EQ(stats.unrouted, 1u);
  deployment->shutdown();
}

TEST(IngressE2E, AuthTokenFromModelGatesSubmissions) {
  auto deployment = make_split_deployment("ingress_auth = \"sesame\"");
  ASSERT_NE(deployment, nullptr);
  // The client is attached without a token: refused.
  std::optional<ingress::RemoteOutcome> denied;
  ASSERT_TRUE(deployment->client
                  ->submit("testlang", "s1", soak::open_session_text("s1"),
                           [&](const ingress::RemoteOutcome& r) { denied = r; })
                  .ok());
  ASSERT_TRUE(deployment->drive_until([&] { return denied.has_value(); }));
  EXPECT_EQ(denied->status.code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(denied->refusal, "unauthenticated");

  // A second client carrying the model's token gets through.
  ingress::IngressClientOptions options;
  options.endpoint = "trusted";
  options.auth = "sesame";
  auto trusted = ingress::IngressClient::attach(
      *deployment->network, deployment->server->endpoint_name(), options);
  ASSERT_TRUE(trusted.ok());
  std::optional<ingress::RemoteOutcome> accepted;
  ASSERT_TRUE(trusted.value()
                  ->submit("testlang", "s2", soak::open_session_text("s2"),
                           [&](const ingress::RemoteOutcome& r) {
                             accepted = r;
                           })
                  .ok());
  ASSERT_TRUE(deployment->drive_until([&] { return accepted.has_value(); }));
  EXPECT_TRUE(accepted->status.ok()) << accepted->status.to_string();
  trusted.value().reset();
  deployment->shutdown();
}

TEST(IngressE2E, QueryReturnsRuntimeModelAndMetrics) {
  auto deployment = make_split_deployment();
  ASSERT_NE(deployment, nullptr);

  std::optional<ingress::RemoteOutcome> submitted;
  ASSERT_TRUE(deployment->client
                  ->submit("testlang", "s1", soak::open_session_text("s1"),
                           [&](const ingress::RemoteOutcome& r) {
                             submitted = r;
                           })
                  .ok());
  ASSERT_TRUE(deployment->drive_until([&] { return submitted.has_value(); }));

  std::optional<ingress::RemoteOutcome> runtime_model;
  ASSERT_TRUE(deployment->client
                  ->query("runtime-model",
                          [&](const ingress::RemoteOutcome& r) {
                            runtime_model = r;
                          })
                  .ok());
  ASSERT_TRUE(
      deployment->drive_until([&] { return runtime_model.has_value(); }));
  EXPECT_TRUE(runtime_model->status.ok());
  // The session the submit created is visible in the round-tripped model.
  EXPECT_NE(runtime_model->payload.find("s1"), std::string::npos);

  std::optional<ingress::RemoteOutcome> metrics;
  ASSERT_TRUE(deployment->client
                  ->query("metrics",
                          [&](const ingress::RemoteOutcome& r) { metrics = r; })
                  .ok());
  ASSERT_TRUE(deployment->drive_until([&] { return metrics.has_value(); }));
  EXPECT_TRUE(metrics->status.ok());
  EXPECT_NE(metrics->payload.find("ingress.received"), std::string::npos);
  deployment->shutdown();
}

// Satellite 4: the overload contract crosses the wire. 10x the pipeline's
// capacity is thrown at a tightly bounded platform; every submission
// resolves exactly once at the client — success or typed refusal — and
// the door refusals surface as "overload".
TEST(IngressE2E, OverloadRefusalsPropagateAsTypedRepliesUnderLoad) {
  auto deployment = make_split_deployment(
      "queue_capacity = 2\n  overflow_policy = reject",
      /*pipeline_threads=*/1);
  ASSERT_NE(deployment, nullptr);

  Ledger ledger;
  constexpr int kSubmissions = 100;
  for (int i = 0; i < kSubmissions; ++i) {
    auto submitted = deployment->client->submit(
        "testlang", "s" + std::to_string(i),
        soak::open_session_text("s" + std::to_string(i)), ledger.recorder());
    ASSERT_TRUE(submitted.ok()) << submitted.status().to_string();
  }

  ASSERT_TRUE(
      deployment->drive_until([&] { return ledger.total() == kSubmissions; }));

  // Exactly-once: every request id fired its callback exactly one time.
  {
    std::lock_guard lock(ledger.mutex);
    EXPECT_EQ(ledger.fired.size(), static_cast<std::size_t>(kSubmissions));
    for (const auto& [id, count] : ledger.fired) {
      EXPECT_EQ(count, 1) << "request " << id;
    }
    // The bounded queue + single worker cannot swallow 100 instant
    // arrivals: some were refused at the door, some completed.
    EXPECT_GT(ledger.refusals["overload"], 0);
    EXPECT_GT(ledger.refusals[""], 0);
  }

  const ingress::IngressServer::Stats stats = deployment->server->stats();
  EXPECT_EQ(stats.received, static_cast<std::uint64_t>(kSubmissions));
  EXPECT_EQ(stats.accepted + stats.refused,
            static_cast<std::uint64_t>(kSubmissions));
  EXPECT_GT(stats.refused, 0u);
  const ingress::IngressClient::Stats client_stats =
      deployment->client->stats();
  EXPECT_EQ(client_stats.resolved_ok + client_stats.refused,
            static_cast<std::uint64_t>(kSubmissions));
  EXPECT_EQ(deployment->platform->metrics().snapshot().counter_value(
                "ingress.refused.overload"),
            stats.refused);
  deployment->shutdown();
}

// Satellite 4, lossy half: with drop_rate > 0 requests and replies
// vanish, and the client's expiry ledger turns every loss into a
// "reply-lost" outcome — still exactly once per submission.
TEST(IngressE2E, LostRepliesExpireExactlyOnceUnderDropRate) {
  net::NetworkConfig lossy = quiet_network();
  lossy.drop_rate = 0.3;
  lossy.seed = 17;
  ingress::IngressClientOptions client_options;
  client_options.reply_timeout = std::chrono::seconds(1);
  auto deployment = make_split_deployment("", /*pipeline_threads=*/2, lossy,
                                          client_options);
  ASSERT_NE(deployment, nullptr);

  Ledger ledger;
  constexpr int kSubmissions = 60;
  for (int i = 0; i < kSubmissions; ++i) {
    ASSERT_TRUE(deployment->client
                    ->submit("testlang", "s" + std::to_string(i),
                             soak::open_session_text("s" + std::to_string(i)),
                             ledger.recorder())
                    .ok());
  }

  // Drain everything the network did deliver: the pipeline settles when
  // each accepted submission has completed, then the replies flush.
  ASSERT_TRUE(deployment->drive_until([&] {
    const ingress::IngressServer::Stats stats = deployment->server->stats();
    return stats.accepted == stats.completed_ok + stats.completed_error &&
           deployment->server->pump() == 0 &&
           deployment->network->pending() == 0;
  }));

  // Whatever is still unresolved at the client was lost on the wire.
  deployment->clock.advance(std::chrono::seconds(5));
  deployment->client->expire_overdue();

  {
    std::lock_guard lock(ledger.mutex);
    EXPECT_EQ(ledger.fired.size(), static_cast<std::size_t>(kSubmissions));
    for (const auto& [id, count] : ledger.fired) {
      EXPECT_EQ(count, 1) << "request " << id;
    }
    // With p=0.3 over ~120 crossings, losses are a statistical
    // certainty; each shows up as the typed "reply-lost" outcome.
    EXPECT_GT(ledger.refusals["reply-lost"], 0);
  }
  const ingress::IngressClient::Stats stats = deployment->client->stats();
  EXPECT_EQ(stats.resolved_ok + stats.refused + stats.expired,
            static_cast<std::uint64_t>(kSubmissions));
  EXPECT_GT(stats.expired, 0u);
  EXPECT_EQ(deployment->client->pending(), 0u);
  deployment->shutdown();
}

// ---- model-driven ingress configuration -----------------------------------

TEST(IngressConfig, SettingsDecodedFromMiddlewareModel) {
  auto deployment = make_split_deployment(
      "ingress_endpoint = \"front-door\"\n"
      "  ingress_auth = \"token\"\n"
      "  ingress_default_deadline_us = 250000");
  ASSERT_NE(deployment, nullptr);
  const core::IngressSettings& settings =
      deployment->platform->ingress_settings();
  EXPECT_EQ(settings.endpoint, "front-door");
  EXPECT_EQ(settings.auth_token, "token");
  EXPECT_EQ(settings.default_deadline, std::chrono::microseconds(250000));
  // The server picked the model-configured endpoint name up.
  EXPECT_EQ(deployment->server->endpoint_name(), "front-door");
  deployment->shutdown();
}

TEST(IngressConfig, EndpointNameDerivedFromPlatformName) {
  auto deployment = make_split_deployment();
  ASSERT_NE(deployment, nullptr);
  EXPECT_EQ(deployment->server->endpoint_name(), "soak-platform.ingress");
  deployment->shutdown();
}

// ---- wire schema versioning (PR 8) ----------------------------------------

/// Rewrite the payload's wire_version stamp in place (encode always
/// emits one); returns false if no stamp was found.
bool stamp_version(model::Value& payload, model::Value stamp) {
  for (model::Value& field : payload.as_list()) {
    if (!field.is_list() || field.as_list().size() != 2) continue;
    if (field.as_list()[0].is_string() &&
        field.as_list()[0].as_string() == "wire_version") {
      field.as_list()[1] = std::move(stamp);
      return true;
    }
  }
  return false;
}

TEST(Wire, VersionStampGatesForeignMajorsOnly) {
  ingress::wire::Request request;
  request.request_id = 1;
  request.text = "model m conforms testlang\n";

  // A foreign major is refused, and typed as a version mismatch.
  model::Value foreign = ingress::wire::encode_request(request);
  ASSERT_TRUE(stamp_version(
      foreign, model::Value(model::ValueList{
                   model::Value(std::int64_t{ingress::wire::kWireMajor + 1}),
                   model::Value(std::int64_t{0})})));
  auto refused = ingress::wire::decode_request(foreign);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), ErrorCode::kInvalidArgument);
  EXPECT_TRUE(ingress::wire::is_version_mismatch(refused.status()));
  EXPECT_FALSE(ingress::wire::is_version_mismatch(InvalidArgument("other")));

  // A newer minor of our major is within-major compatible.
  model::Value newer_minor = ingress::wire::encode_request(request);
  ASSERT_TRUE(stamp_version(
      newer_minor,
      model::Value(model::ValueList{
          model::Value(std::int64_t{ingress::wire::kWireMajor}),
          model::Value(std::int64_t{ingress::wire::kWireMinor + 7})})));
  EXPECT_TRUE(ingress::wire::decode_request(newer_minor).ok());

  // An absent stamp is a pre-versioning peer: accepted as major 1.
  model::Value bare = ingress::wire::encode_request(request);
  model::ValueList& fields = bare.as_list();
  std::erase_if(fields, [](const model::Value& field) {
    return field.is_list() && field.as_list().size() == 2 &&
           field.as_list()[0].is_string() &&
           field.as_list()[0].as_string() == "wire_version";
  });
  EXPECT_TRUE(ingress::wire::decode_request(bare).ok());

  // An unreadable stamp is malformed, not a version mismatch.
  model::Value garbled = ingress::wire::encode_request(request);
  ASSERT_TRUE(stamp_version(garbled, model::Value("one.two")));
  auto malformed = ingress::wire::decode_request(garbled);
  ASSERT_FALSE(malformed.ok());
  EXPECT_FALSE(ingress::wire::is_version_mismatch(malformed.status()));

  // Replies run through the same gate.
  ingress::wire::Reply reply;
  reply.request_id = 1;
  model::Value reply_payload = ingress::wire::encode_reply(reply);
  ASSERT_TRUE(stamp_version(
      reply_payload, model::Value(model::ValueList{
                         model::Value(std::int64_t{99}),
                         model::Value(std::int64_t{0})})));
  auto reply_refused = ingress::wire::decode_reply(reply_payload);
  ASSERT_FALSE(reply_refused.ok());
  EXPECT_TRUE(ingress::wire::is_version_mismatch(reply_refused.status()));
}

/// Property test: any Value tree survives the wire verbatim as a
/// request body, whatever its shape — the codec round-trips structure
/// it has no schema for.
TEST(Wire, RandomValueTreeBodiesRoundTrip) {
  std::mt19937 rng(20260808);
  std::function<model::Value(int)> make_tree = [&](int depth) -> model::Value {
    std::uniform_int_distribution<int> kind(0, depth > 0 ? 5 : 4);
    switch (kind(rng)) {
      case 0:
        return model::Value();
      case 1:
        return model::Value(rng() % 2 == 0);
      case 2:
        return model::Value(static_cast<std::int64_t>(rng()) -
                            static_cast<std::int64_t>(rng()));
      case 3:
        return model::Value(static_cast<double>(rng() % 10000) / 16.0);
      case 4:
        return model::Value("s" + std::to_string(rng() % 100000));
      default: {
        std::uniform_int_distribution<int> width(0, 4);
        model::ValueList children;
        const int n = width(rng);
        children.reserve(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) children.push_back(make_tree(depth - 1));
        return model::Value(std::move(children));
      }
    }
  };

  for (int round = 0; round < 100; ++round) {
    ingress::wire::Request request;
    request.request_id = static_cast<std::uint64_t>(round) + 1;
    request.text = "payload";
    request.body = make_tree(4);
    auto decoded =
        ingress::wire::decode_request(ingress::wire::encode_request(request));
    ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
    EXPECT_EQ(decoded.value().body, request.body) << "round " << round;
    EXPECT_EQ(decoded.value().request_id, request.request_id);
  }
}

TEST(Wire, ForwardedForRidesTheWire) {
  ingress::wire::Request request;
  request.request_id = 9;
  request.text = "t";
  request.forwarded_for = "edge-client#41";
  auto decoded =
      ingress::wire::decode_request(ingress::wire::encode_request(request));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().forwarded_for, "edge-client#41");
}

// ---- router specificity edge cases ----------------------------------------

TEST(Router, LiteralCountTiesKeepEarliestRegistration) {
  ingress::Router router;
  std::string hit;
  auto handler = [&hit](std::string name) {
    return [&hit, name](const net::Message&, const ingress::RouteParams&) {
      hit = name;
    };
  };
  // Both match "a/b/c" with two literals; the first added must win.
  ASSERT_TRUE(router.add("a/{x}/c", handler("first")).ok());
  ASSERT_TRUE(router.add("a/b/{y}", handler("second")).ok());
  auto tie = router.route("a/b/c");
  ASSERT_TRUE(tie.has_value());
  EXPECT_EQ(tie->pattern, "a/{x}/c");
  EXPECT_EQ(tie->params.get("x"), "b");

  // A fully literal pattern outranks both, regardless of order.
  ASSERT_TRUE(router.add("a/b/c", handler("exact")).ok());
  auto exact = router.route("a/b/c");
  ASSERT_TRUE(exact.has_value());
  EXPECT_EQ(exact->pattern, "a/b/c");
  EXPECT_TRUE(exact->params.get("x").empty());

  // The capture routes still serve their own topics.
  EXPECT_EQ(router.route("a/q/c")->pattern, "a/{x}/c");
  EXPECT_EQ(router.route("a/b/q")->pattern, "a/b/{y}");
}

TEST(Router, TrailingSlashIsADistinctUnmatchedTopic) {
  ingress::Router router;
  auto noop = [](const net::Message&, const ingress::RouteParams&) {};
  ASSERT_TRUE(router.add("a/b", noop).ok());
  ASSERT_TRUE(router.add("a/b/{y}", noop).ok());
  // "a/b/" splits into three segments with an empty tail: too long for
  // the literal route, an unbindable capture for the other.
  EXPECT_FALSE(router.route("a/b/").has_value());
  EXPECT_TRUE(router.route("a/b").has_value());
}

TEST(Router, AdjacentCapturesBindIndependently) {
  ingress::Router router;
  ingress::RouteParams seen;
  ASSERT_TRUE(router
                  .add("x/{p}/{q}",
                       [](const net::Message&, const ingress::RouteParams&) {})
                  .ok());
  auto match = router.route("x/1/2");
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->params.get("p"), "1");
  EXPECT_EQ(match->params.get("q"), "2");
  EXPECT_FALSE(router.route("x/1").has_value());
  EXPECT_FALSE(router.route("x/1/2/3").has_value());
}

// ---- per-client rate limiting (PR 8) ---------------------------------------

TEST(RateLimiter, TokenBucketRefillsPerClient) {
  ingress::RateLimiter limiter(2.0, 2.0);
  const TimePoint t0{};
  // A fresh client starts with a full burst...
  EXPECT_TRUE(limiter.admit("alice", t0));
  EXPECT_TRUE(limiter.admit("alice", t0));
  // ...and is refused once it is spent.
  EXPECT_FALSE(limiter.admit("alice", t0));
  // Buckets are per client: bob is unaffected by alice's burst.
  EXPECT_TRUE(limiter.admit("bob", t0));
  EXPECT_EQ(limiter.clients(), 2u);

  // 500ms at 2 tokens/s refills one token — exactly one more admit.
  const TimePoint t1 = t0 + std::chrono::milliseconds(500);
  EXPECT_TRUE(limiter.admit("alice", t1));
  EXPECT_FALSE(limiter.admit("alice", t1));

  // Refill caps at the burst: a long idle spell is not a credit line.
  const TimePoint t2 = t1 + std::chrono::hours(1);
  EXPECT_TRUE(limiter.admit("alice", t2));
  EXPECT_TRUE(limiter.admit("alice", t2));
  EXPECT_FALSE(limiter.admit("alice", t2));
}

TEST(IngressE2E, ModelDrivenRateLimitRefusesTheBurstOverflow) {
  auto deployment = make_split_deployment(
      "ingress_rate_limit = 1.0\n"
      "  ingress_rate_burst = 2.0");
  ASSERT_NE(deployment, nullptr);
  EXPECT_EQ(deployment->platform->ingress_settings().rate_limit, 1.0);
  EXPECT_EQ(deployment->platform->ingress_settings().rate_burst, 2.0);

  Ledger ledger;
  for (int i = 0; i < 4; ++i) {
    const std::string session = "rl" + std::to_string(i);
    ASSERT_TRUE(deployment->client
                    ->submit("testlang", session,
                             soak::open_session_text(session),
                             ledger.recorder())
                    .ok());
  }
  ASSERT_TRUE(deployment->drive_until([&] { return ledger.total() == 4; }));
  {
    std::lock_guard lock(ledger.mutex);
    EXPECT_EQ(ledger.refusals[""], 2);
    EXPECT_EQ(ledger.refusals["rate-limited"], 2);
  }

  // Tokens accrue on the network clock: after 3 virtual seconds the
  // same client is welcome again.
  deployment->clock.advance(std::chrono::seconds(3));
  ASSERT_TRUE(deployment->client
                  ->submit("testlang", "rl9", soak::open_session_text("rl9"),
                           ledger.recorder())
                  .ok());
  ASSERT_TRUE(deployment->drive_until([&] { return ledger.total() == 5; }));
  {
    std::lock_guard lock(ledger.mutex);
    EXPECT_EQ(ledger.refusals[""], 3);
    EXPECT_EQ(ledger.refusals["rate-limited"], 2);
  }
  deployment->shutdown();
}

// ---- wire versioning over the wire -----------------------------------------

TEST(IngressE2E, ForeignMajorIsRefusedWithBadVersionSlug) {
  auto deployment = make_split_deployment();
  ASSERT_NE(deployment, nullptr);

  std::mutex mutex;
  std::vector<ingress::wire::Reply> replies;
  auto probe = deployment->network->create_endpoint("probe");
  ASSERT_TRUE(probe.ok());
  probe.value()->set_handler([&](const net::Message& message) {
    auto reply = ingress::wire::decode_reply(message.payload);
    if (reply.ok()) {
      std::lock_guard lock(mutex);
      replies.push_back(std::move(reply.value()));
    }
  });

  ingress::wire::Request request;
  request.request_id = 5;
  request.text = soak::open_session_text("v1");
  model::Value payload = ingress::wire::encode_request(request);
  ASSERT_TRUE(stamp_version(
      payload,
      model::Value(model::ValueList{model::Value(std::int64_t{2}),
                                    model::Value(std::int64_t{0})})));
  ASSERT_TRUE(probe.value()
                  ->send(deployment->server->endpoint_name(),
                         "submit/testlang/v1", std::move(payload))
                  .ok());
  ASSERT_TRUE(deployment->drive_until([&] {
    std::lock_guard lock(mutex);
    return !replies.empty();
  }));
  {
    std::lock_guard lock(mutex);
    EXPECT_EQ(replies[0].refusal, "bad-version");
    EXPECT_EQ(replies[0].code, ErrorCode::kInvalidArgument);
  }
  // The mismatched speaker consumed no platform work.
  EXPECT_EQ(deployment->svc->executed(), 0u);
  deployment->shutdown();
}

// ---- dedup ledger + retry budget (PR 8) ------------------------------------

// Satellite 3, deterministic half: replaying a completed request id is
// answered from the server's outcome ledger — same reply, no second
// execution.
TEST(IngressE2E, DuplicateSubmitIsServedFromTheLedgerNotReExecuted) {
  auto deployment = make_split_deployment();
  ASSERT_NE(deployment, nullptr);

  std::mutex mutex;
  std::vector<ingress::wire::Reply> replies;
  auto probe = deployment->network->create_endpoint("probe");
  ASSERT_TRUE(probe.ok());
  probe.value()->set_handler([&](const net::Message& message) {
    auto reply = ingress::wire::decode_reply(message.payload);
    if (reply.ok()) {
      std::lock_guard lock(mutex);
      replies.push_back(std::move(reply.value()));
    }
  });

  ingress::wire::Request request;
  request.request_id = 77;
  request.text = soak::open_session_text("dup1");
  const model::Value payload = ingress::wire::encode_request(request);

  ASSERT_TRUE(probe.value()
                  ->send(deployment->server->endpoint_name(),
                         "submit/testlang/dup1", payload)
                  .ok());
  ASSERT_TRUE(deployment->drive_until([&] {
    std::lock_guard lock(mutex);
    return replies.size() == 1;
  }));
  const std::uint64_t executed_once = deployment->svc->executed();
  EXPECT_EQ(executed_once, 2u);  // create + open ran exactly once

  // The retry (same id, same payload) is answered without re-execution.
  ASSERT_TRUE(probe.value()
                  ->send(deployment->server->endpoint_name(),
                         "submit/testlang/dup1", payload)
                  .ok());
  ASSERT_TRUE(deployment->drive_until([&] {
    std::lock_guard lock(mutex);
    return replies.size() == 2;
  }));
  EXPECT_EQ(deployment->svc->executed(), executed_once);
  {
    std::lock_guard lock(mutex);
    EXPECT_EQ(replies[1].request_id, 77u);
    EXPECT_EQ(replies[1].code, replies[0].code);
    EXPECT_EQ(replies[1].commands, replies[0].commands);
  }
  EXPECT_EQ(deployment->server->stats().deduped, 1u);
  deployment->shutdown();
}

// Satellite 3, lossy half: a client with a retry budget re-sends overdue
// requests under the same id; the dedup ledger keeps the replays
// idempotent, so losses heal instead of surfacing as reply-lost — and
// still exactly one callback per submission.
TEST(IngressE2E, RetryBudgetHealsLossesWithoutDoubleExecution) {
  net::NetworkConfig lossy = quiet_network();
  lossy.drop_rate = 0.3;
  lossy.seed = 17;
  ingress::IngressClientOptions client_options;
  client_options.reply_timeout = std::chrono::seconds(1);
  client_options.retry_budget = 3;
  auto deployment = make_split_deployment("", /*pipeline_threads=*/2, lossy,
                                          client_options);
  ASSERT_NE(deployment, nullptr);

  Ledger ledger;
  constexpr int kSubmissions = 60;
  for (int i = 0; i < kSubmissions; ++i) {
    const std::string session = "r" + std::to_string(i);
    ASSERT_TRUE(deployment->client
                    ->submit("testlang", session,
                             soak::open_session_text(session),
                             ledger.recorder())
                    .ok());
  }
  // Drive with virtual time moving so reply timeouts fire retries.
  const auto wall_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < wall_deadline &&
         ledger.total() < kSubmissions) {
    deployment->network->run_until_idle();
    deployment->server->pump();
    deployment->network->run_until_idle();
    deployment->clock.advance(std::chrono::milliseconds(250));
    deployment->client->expire_overdue();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  {
    std::lock_guard lock(ledger.mutex);
    ASSERT_EQ(ledger.fired.size(), static_cast<std::size_t>(kSubmissions));
    for (const auto& [id, count] : ledger.fired) {
      EXPECT_EQ(count, 1) << "request " << id;
    }
    // With up to 4 attempts per request, nearly everything heals: the
    // all-attempts-lost probability is well under 10%.
    EXPECT_GE(ledger.refusals[""], kSubmissions * 3 / 4);
  }
  const ingress::IngressClient::Stats stats = deployment->client->stats();
  EXPECT_GT(stats.retried, 0u);
  // The dedup ledger absorbed replays of already-executed requests: the
  // adapter never ran a session twice.
  EXPECT_LE(deployment->svc->executed(),
            static_cast<std::uint64_t>(2 * kSubmissions));
  EXPECT_GT(deployment->server->stats().deduped, 0u);
  deployment->shutdown();
}

// PR 10 bugfix regression: the dedup ledger's capacity bound applies to
// COMPLETED entries only. Under the old size-based eviction, a storm of
// fresh traffic could push an IN-FLIGHT entry out of the ledger; the
// sender's retry then looked fresh and the request executed twice. Here
// a parked request outlives a flood 2x the ledger's capacity, its retry
// is absorbed (not re-executed), and after release the original
// completes with exactly one reply.
TEST(IngressE2E, InFlightDedupEntrySurvivesCapacityPressure) {
  auto gate_owner = std::make_unique<GateAdapter>();
  GateAdapter* gate = gate_owner.get();
  ingress::IngressServerOptions server_options;
  server_options.ledger_capacity = 2;
  auto deployment = make_split_deployment(
      "", /*pipeline_threads=*/3, quiet_network(), {}, server_options,
      std::move(gate_owner));
  ASSERT_NE(deployment, nullptr);

  std::mutex mutex;
  std::vector<ingress::wire::Reply> replies;
  auto probe = deployment->network->create_endpoint("probe");
  ASSERT_TRUE(probe.ok());
  probe.value()->set_handler([&](const net::Message& message) {
    auto reply = ingress::wire::decode_reply(message.payload);
    if (reply.ok()) {
      std::lock_guard lock(mutex);
      replies.push_back(std::move(reply.value()));
    }
  });
  ingress::wire::Request request;
  request.request_id = 77;
  request.text = soak::open_session_text("pin");
  const model::Value payload = ingress::wire::encode_request(request);

  // Park the pinned request inside its FIRST adapter execution.
  gate->hold_next(1);
  ASSERT_TRUE(probe.value()
                  ->send(deployment->server->endpoint_name(),
                         "submit/testlang/pin", payload)
                  .ok());
  ASSERT_TRUE(deployment->drive_until([&] { return gate->executed() >= 1; }));

  // Flood twice the ledger capacity in completed traffic on the other
  // pipeline workers.
  Ledger ledger;
  constexpr int kFlood = 4;
  for (int i = 0; i < kFlood; ++i) {
    const std::string session = "flood" + std::to_string(i);
    ASSERT_TRUE(deployment->client
                    ->submit("testlang", session,
                             soak::open_session_text(session),
                             ledger.recorder())
                    .ok());
  }
  ASSERT_TRUE(deployment->drive_until([&] { return ledger.total() == kFlood; }));
  EXPECT_EQ(gate->executed(), 1u + 2u * kFlood);  // pin still parked

  // The retry of the parked request must be ABSORBED by its pinned
  // in-flight entry — were it evicted, this send would execute the
  // session a second time.
  ASSERT_TRUE(probe.value()
                  ->send(deployment->server->endpoint_name(),
                         "submit/testlang/pin", payload)
                  .ok());
  ASSERT_TRUE(deployment->drive_until(
      [&] { return deployment->server->stats().deduped >= 1; }));
  {
    std::lock_guard lock(mutex);
    EXPECT_TRUE(replies.empty()) << "absorbed retry must not reply early";
  }
  EXPECT_EQ(gate->executed(), 1u + 2u * kFlood);

  // Release: the original completes, exactly one reply reaches the
  // probe, and a THIRD send replays from the now-completed entry.
  gate->release();
  ASSERT_TRUE(deployment->drive_until([&] {
    std::lock_guard lock(mutex);
    return replies.size() == 1;
  }));
  EXPECT_EQ(gate->executed(), 2u + 2u * kFlood);
  ASSERT_TRUE(probe.value()
                  ->send(deployment->server->endpoint_name(),
                         "submit/testlang/pin", payload)
                  .ok());
  ASSERT_TRUE(deployment->drive_until([&] {
    std::lock_guard lock(mutex);
    return replies.size() == 2;
  }));
  {
    std::lock_guard lock(mutex);
    EXPECT_EQ(replies[0].code, ErrorCode::kOk);
    EXPECT_EQ(replies[1].code, replies[0].code);
    EXPECT_EQ(replies[1].commands, replies[0].commands);
  }
  EXPECT_EQ(gate->executed(), 2u + 2u * kFlood);  // never re-executed
  const ingress::IngressServer::Stats stats = deployment->server->stats();
  EXPECT_EQ(stats.accepted, 1u + kFlood);
  EXPECT_EQ(stats.deduped, 2u);
  deployment->shutdown();
}

// PR 10 satellite: the model-driven dedup TTL (ingress_dedup_ttl_us).
// Within the TTL a replay is answered from the ledger; once the network
// clock moves past it the entry is lazily dropped and the retry is
// re-admitted as fresh — bounded memory traded against a documented
// at-least-once window for very late retries.
TEST(IngressE2E, DedupLedgerExpiresCompletedEntriesByTtl) {
  auto deployment = make_split_deployment("ingress_dedup_ttl_us = 1000000");
  ASSERT_NE(deployment, nullptr);

  std::mutex mutex;
  std::vector<ingress::wire::Reply> replies;
  auto probe = deployment->network->create_endpoint("probe");
  ASSERT_TRUE(probe.ok());
  probe.value()->set_handler([&](const net::Message& message) {
    auto reply = ingress::wire::decode_reply(message.payload);
    if (reply.ok()) {
      std::lock_guard lock(mutex);
      replies.push_back(std::move(reply.value()));
    }
  });
  ingress::wire::Request request;
  request.request_id = 88;
  request.text = soak::open_session_text("ttl1");
  const model::Value payload = ingress::wire::encode_request(request);
  auto resend = [&] {
    ASSERT_TRUE(probe.value()
                    ->send(deployment->server->endpoint_name(),
                           "submit/testlang/ttl1", payload)
                    .ok());
  };
  auto replies_seen = [&] {
    std::lock_guard lock(mutex);
    return replies.size();
  };

  resend();
  ASSERT_TRUE(deployment->drive_until([&] { return replies_seen() == 1; }));
  EXPECT_EQ(deployment->svc->executed(), 2u);

  // Within the TTL: a ledger replay, not an execution.
  resend();
  ASSERT_TRUE(deployment->drive_until([&] { return replies_seen() == 2; }));
  EXPECT_EQ(deployment->server->stats().deduped, 1u);
  EXPECT_EQ(deployment->server->stats().accepted, 1u);
  EXPECT_EQ(deployment->svc->executed(), 2u);

  // Past the TTL (the dedup clock is the NETWORK's): the entry expires
  // lazily on lookup and the retry re-enters the pipeline as fresh.
  // (The session already exists in the runtime model, so the re-run's
  // diff is empty — re-admission shows up in `accepted`, not in adapter
  // executions.)
  deployment->clock.advance(std::chrono::seconds(2));
  resend();
  ASSERT_TRUE(deployment->drive_until([&] { return replies_seen() == 3; }));
  const ingress::IngressServer::Stats stats = deployment->server->stats();
  EXPECT_EQ(stats.dedup_expired, 1u);
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.deduped, 1u);
  {
    std::lock_guard lock(mutex);
    EXPECT_EQ(replies[2].code, ErrorCode::kOk);
  }
  deployment->shutdown();
}

}  // namespace
}  // namespace mdsm
