// Tests for model weaving (synthesis/weaver.hpp) — the aspect-oriented
// multi-concern execution of the paper's future work (§IX).
#include <gtest/gtest.h>

#include "domains/comm/cvm.hpp"
#include "model/text_format.hpp"
#include "model_fixtures.hpp"
#include "synthesis/weaver.hpp"

namespace mdsm::synthesis {
namespace {

using model::Value;
using model::testing::make_test_metamodel;

model::Model parse(std::string_view text, const model::MetamodelPtr& mm) {
  auto parsed = model::parse_model(text, mm);
  EXPECT_TRUE(parsed.ok()) << parsed.status().to_string();
  return std::move(parsed.value());
}

TEST(Weaver, MergesDisjointConcerns) {
  auto mm = make_test_metamodel();
  // Concern 1: the session structure.
  model::Model structure = parse(R"(
model structure conforms testlang
object Session s1 {
  state = open
  child participants Participant alice { address = "a@h" }
}
)", mm);
  // Concern 2: media, on the same session.
  model::Model media = parse(R"(
model media conforms testlang
object Session s1 {
  state = open
  child media StreamMedia cam { kind = video fps = 30 }
}
)", mm);
  auto woven = weave({&structure, &media});
  ASSERT_TRUE(woven.ok()) << woven.status().to_string();
  EXPECT_EQ(woven->size(), 3u);
  EXPECT_EQ(woven->find("cam")->parent_id(), "s1");
  EXPECT_EQ(woven->find("alice")->parent_id(), "s1");
  EXPECT_EQ(woven->find("s1")->get_string("state"), "open");
  EXPECT_TRUE(woven->validate().ok());
}

TEST(Weaver, CrossConcernReferencesResolve) {
  auto mm = make_test_metamodel();
  // Concern 2 references an object only concern 1 defines.
  model::Model c1 = parse(R"(
model c1 conforms testlang
object Session s1 {
  state = open
  child participants Participant alice { address = "a@h" }
}
)", mm);
  // Each concern must be standalone-parseable (references resolve within
  // the concern); the weaver then unifies shared objects across concerns.
  model::Model c2b = parse(R"(
model c2b conforms testlang
object Session s1 {
  state = open
  initiator -> bob
  child participants Participant bob { address = "b@h" }
}
)", mm);
  auto woven = weave({&c1, &c2b});
  ASSERT_TRUE(woven.ok()) << woven.status().to_string();
  EXPECT_EQ(woven->find("s1")->targets("initiator"),
            std::vector<std::string>{"bob"});
  EXPECT_EQ(woven->children("s1", "participants").size(), 2u);
}

TEST(Weaver, AttributeConflictIsErrorByDefault) {
  auto mm = make_test_metamodel();
  model::Model a = parse(R"(
model a conforms testlang
object Session s1 { state = open bandwidth = 1.0 }
)", mm);
  model::Model b = parse(R"(
model b conforms testlang
object Session s1 { state = open bandwidth = 9.0 }
)", mm);
  auto woven = weave({&a, &b});
  ASSERT_FALSE(woven.ok());
  EXPECT_EQ(woven.status().code(), ErrorCode::kConformanceError);
  EXPECT_NE(woven.status().message().find("bandwidth"), std::string::npos);
}

TEST(Weaver, LastWinsPolicyResolvesConflicts) {
  auto mm = make_test_metamodel();
  model::Model a = parse(R"(
model a conforms testlang
object Session s1 { state = open bandwidth = 1.0 }
)", mm);
  model::Model b = parse(R"(
model b conforms testlang
object Session s1 { state = open bandwidth = 9.0 }
)", mm);
  WeaveConfig config;
  config.conflicts = ConflictPolicy::kLastWins;
  auto woven = weave({&a, &b}, config);
  ASSERT_TRUE(woven.ok()) << woven.status().to_string();
  EXPECT_DOUBLE_EQ(woven->find("s1")->get_real("bandwidth"), 9.0);
}

TEST(Weaver, ExplicitValueBeatsMetamodelDefaultWithoutConflict) {
  auto mm = make_test_metamodel();
  // Session.state defaults to "idle": concern a leaves it defaulted,
  // concern b sets it explicitly — not a conflict.
  model::Model a("a", mm);
  a.create("Session", "s1");
  model::Model b("b", mm);
  b.create("Session", "s1");
  b.set_attribute("s1", "state", Value("open"));
  auto woven = weave({&a, &b});
  ASSERT_TRUE(woven.ok()) << woven.status().to_string();
  EXPECT_EQ(woven->find("s1")->get_string("state"), "open");
  // Order must not matter for default-vs-explicit.
  auto woven2 = weave({&b, &a});
  ASSERT_TRUE(woven2.ok()) << woven2.status().to_string();
  EXPECT_EQ(woven2->find("s1")->get_string("state"), "open");
}

TEST(Weaver, ClassAndContainmentDisagreementsAreErrors) {
  auto mm = make_test_metamodel();
  model::Model a("a", mm);
  a.create("Session", "x");
  model::Model b("b", mm);
  b.create("Participant", "x");
  b.set_attribute("x", "address", Value("x@h"));
  EXPECT_EQ(weave({&a, &b}).status().code(), ErrorCode::kConformanceError);

  model::Model c("c", mm);
  c.create("Session", "s1");
  c.create_child("s1", "participants", "Participant", "p");
  c.set_attribute("p", "address", Value("p@h"));
  model::Model d("d", mm);
  d.create("Session", "s2");
  d.set_attribute("s2", "state", Value("open"));
  d.create_child("s2", "participants", "Participant", "p");
  d.set_attribute("p", "address", Value("p@h"));
  EXPECT_EQ(weave({&c, &d}).status().code(), ErrorCode::kConformanceError);
}

TEST(Weaver, InputValidation) {
  auto mm = make_test_metamodel();
  EXPECT_EQ(weave({}).status().code(), ErrorCode::kInvalidArgument);
  model::Model a("a", mm);
  EXPECT_EQ(weave({&a, nullptr}).status().code(),
            ErrorCode::kInvalidArgument);
  model::Metamodel other("other");
  other.add_class("X");
  auto other_mm = model::finalize_metamodel(std::move(other));
  model::Model foreign("f", other_mm);
  EXPECT_EQ(weave({&a, &foreign}).status().code(),
            ErrorCode::kInvalidArgument);
}

TEST(Weaver, WovenModelFailingDsmlValidationIsRejected) {
  auto mm = make_test_metamodel();
  model::Model a("a", mm);
  a.create("Participant", "p");  // required 'address' never set anywhere
  auto woven = weave({&a});
  EXPECT_EQ(woven.status().code(), ErrorCode::kConformanceError);
}

// End-to-end: weave two CML concern models through a running CVM.
TEST(Weaver, PlatformExecutesWovenConcerns) {
  auto cvm = comm::make_cvm();
  ASSERT_TRUE(cvm.ok());
  core::Platform& platform = *(*cvm)->platform;
  auto script = platform.submit_woven({R"(
model who conforms cml
object Connection call {
  state = active
  child participants Participant ana { address = "ana@hq" }
  child participants Participant bia { address = "bia@lab" }
}
)", R"(
model what conforms cml
object Connection call {
  state = active
  child media Medium voice { kind = audio }
}
)"});
  ASSERT_TRUE(script.ok()) << script.status().to_string();
  // The woven model executed as one: session, two parties, one stream.
  const comm::Session* session = (*cvm)->service.find_session("call");
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(session->parties.size(), 2u);
  EXPECT_TRUE(session->streams.contains("voice"));
}

}  // namespace
}  // namespace mdsm::synthesis
