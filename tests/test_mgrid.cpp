// Microgrid-domain tests: plant physics, MGridVM assembly, energy
// management, and Exp-1 behavioral equivalence against the handcrafted
// MHB across all six scenarios.
#include <gtest/gtest.h>

#include "domains/mgrid/baseline.hpp"
#include "domains/mgrid/mgridvm.hpp"

namespace mdsm::mgrid {
namespace {

using model::Value;

// ---------------------------------------------------------------- plant

TEST(Plant, PowerBalanceArithmetic) {
  MicrogridPlant plant;
  ASSERT_TRUE(plant.add_generator("g", 5.0, false).ok());
  ASSERT_TRUE(plant.add_load("l", 3.0, false).ok());
  ASSERT_TRUE(plant.start_generator("g").ok());
  ASSERT_TRUE(plant.set_generator_output("g", 4.0).ok());
  ASSERT_TRUE(plant.connect_load("l").ok());
  EXPECT_DOUBLE_EQ(plant.generation_kw(), 4.0);
  EXPECT_DOUBLE_EQ(plant.demand_kw(), 3.0);
  EXPECT_DOUBLE_EQ(plant.net_power_kw(), 1.0);
}

TEST(Plant, ValidationErrors) {
  MicrogridPlant plant;
  EXPECT_FALSE(plant.add_generator("g", -1.0, false).ok());
  ASSERT_TRUE(plant.add_generator("g", 5.0, false).ok());
  EXPECT_EQ(plant.add_load("g", 1.0, false).code(),
            ErrorCode::kAlreadyExists);
  EXPECT_EQ(plant.set_generator_output("g", 99.0).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(plant.start_generator("ghost").code(), ErrorCode::kNotFound);
  EXPECT_EQ(plant.set_storage_mode("ghost", "idle").code(),
            ErrorCode::kNotFound);
}

TEST(Plant, CriticalLoadRefusesShed) {
  MicrogridPlant plant;
  plant.add_load("icu", 1.0, /*critical=*/true);
  plant.connect_load("icu");
  EXPECT_EQ(plant.shed_load("icu").code(), ErrorCode::kFailedPrecondition);
  EXPECT_TRUE(plant.load("icu")->connected);
}

TEST(Plant, ImbalanceEventsFireOnTransitionsOnly) {
  MicrogridPlant plant;
  std::vector<std::string> events;
  plant.set_event_sink([&](const std::string& topic, Value) {
    events.push_back(topic);
  });
  plant.add_generator("g", 5.0, false);
  plant.add_load("l", 3.0, false);
  plant.connect_load("l");  // demand 3 > generation 0 → imbalance
  ASSERT_EQ(events, std::vector<std::string>{"imbalance"});
  plant.start_generator("g");
  plant.set_generator_output("g", 2.0);  // still short → no new event
  EXPECT_EQ(events.size(), 1u);
  plant.set_generator_output("g", 4.0);  // restored
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1], "balance.restored");
}

TEST(Plant, StorageChargesDischargesAndDepletes) {
  MicrogridPlant plant;
  plant.add_storage("b", 4.0);  // starts half full (2 kWh)
  ASSERT_TRUE(plant.set_storage_mode("b", "discharge").ok());
  EXPECT_DOUBLE_EQ(plant.generation_kw(), 2.0);  // discharge rate
  std::vector<std::string> events;
  plant.set_event_sink([&](const std::string& topic, Value) {
    events.push_back(topic);
  });
  plant.step(0.5);  // 1 kWh drawn
  EXPECT_DOUBLE_EQ(plant.storage("b")->level_kwh, 1.0);
  plant.step(1.0);  // depletes
  EXPECT_DOUBLE_EQ(plant.storage("b")->level_kwh, 0.0);
  EXPECT_EQ(plant.storage("b")->mode, "idle");
  EXPECT_TRUE(std::find(events.begin(), events.end(), "storage.depleted") !=
              events.end());
  ASSERT_TRUE(plant.set_storage_mode("b", "charge").ok());
  plant.step(10.0);  // saturates at capacity
  EXPECT_DOUBLE_EQ(plant.storage("b")->level_kwh, 4.0);
}

TEST(Plant, GeneratorTripRaisesEvent) {
  MicrogridPlant plant;
  std::vector<std::string> events;
  plant.set_event_sink([&](const std::string& topic, Value) {
    events.push_back(topic);
  });
  plant.add_generator("g", 5.0, false);
  plant.start_generator("g");
  plant.trip_generator("g");
  EXPECT_FALSE(plant.generator("g")->running);
  EXPECT_TRUE(std::find(events.begin(), events.end(), "generator.trip") !=
              events.end());
  plant.trip_generator("g");  // already offline: no second event
  EXPECT_EQ(std::count(events.begin(), events.end(), "generator.trip"), 1);
}

// --------------------------------------------------------------- MGridVM

TEST(MGridVm, AssemblesAndExecutesGridModel) {
  auto vm = make_mgridvm();
  ASSERT_TRUE(vm.ok()) << vm.status().to_string();
  auto script = (*vm)->platform->submit_model_text(R"(
model home conforms mgridml
object Microgrid grid {
  mode = normal
  child devices Generator solar { capacity_kw = 5.0 renewable = true running = true setpoint_kw = 3.0 }
  child devices Load house { demand_kw = 2.0 critical = true }
  child devices Storage battery { capacity_kwh = 8.0 }
}
)");
  ASSERT_TRUE(script.ok()) << script.status().to_string();
  const MicrogridPlant& plant = (*vm)->plant;
  ASSERT_NE(plant.generator("solar"), nullptr);
  EXPECT_TRUE(plant.generator("solar")->running);
  EXPECT_DOUBLE_EQ(plant.generator("solar")->setpoint_kw, 3.0);
  ASSERT_NE(plant.load("house"), nullptr);
  EXPECT_TRUE(plant.load("house")->connected);
  ASSERT_NE(plant.storage("battery"), nullptr);
  EXPECT_DOUBLE_EQ(plant.net_power_kw(), 1.0);
}

TEST(MGridVm, ModelUpdateRetunesSetpointAndRemovesDevices) {
  auto vm = make_mgridvm();
  ASSERT_TRUE(vm.ok());
  auto submit = [&](const char* text) {
    auto script = (*vm)->platform->submit_model_text(text);
    ASSERT_TRUE(script.ok()) << script.status().to_string();
  };
  submit(R"(
model home conforms mgridml
object Microgrid grid {
  child devices Generator g1 { capacity_kw = 5.0 running = true setpoint_kw = 2.0 }
  child devices Load l1 { demand_kw = 1.0 }
}
)");
  submit(R"(
model home conforms mgridml
object Microgrid grid {
  child devices Generator g1 { capacity_kw = 5.0 running = true setpoint_kw = 4.5 }
  child devices Load l1 { demand_kw = 1.0 }
}
)");
  EXPECT_DOUBLE_EQ((*vm)->plant.generator("g1")->setpoint_kw, 4.5);
  submit(R"(
model home conforms mgridml
object Microgrid grid {
  child devices Generator g1 { capacity_kw = 5.0 running = true setpoint_kw = 4.5 }
}
)");
  EXPECT_EQ((*vm)->plant.load("l1"), nullptr);  // removed from the plant
}

TEST(MGridVm, EcoModeSelectsEcoDispatchProcedure) {
  auto vm = make_mgridvm();
  ASSERT_TRUE(vm.ok());
  core::Platform& platform = *(*vm)->platform;
  ASSERT_TRUE(platform
                  .submit_model_text(R"(
model home conforms mgridml
object Microgrid grid {
  mode = eco
  child devices Generator wind { capacity_kw = 4.0 renewable = true running = true setpoint_kw = 2.0 }
}
)")
                  .ok());
  // The eco-mode dispatch procedure leaves its signature note in memory.
  EXPECT_EQ(platform.controller().engine().memory("dispatch.note"),
            Value("renewables-first"));
  EXPECT_TRUE((*vm)->plant.generator("wind")->running);
}

TEST(MGridVm, AutonomicLoadSheddingOnImbalance) {
  auto vm = make_mgridvm();
  ASSERT_TRUE(vm.ok());
  core::Platform& platform = *(*vm)->platform;
  platform.context().set("load.sheddable", Value("heater"));
  ASSERT_TRUE(platform
                  .submit_model_text(R"(
model home conforms mgridml
object Microgrid grid {
  child devices Generator g { capacity_kw = 5.0 running = true setpoint_kw = 3.0 }
  child devices Load base { demand_kw = 2.0 critical = true }
  child devices Load heater { demand_kw = 4.0 }
}
)")
                  .ok());
  // heater pushed demand to 6 kW > 3 kW generation → imbalance → shed.
  EXPECT_GE(platform.broker().autonomic().adaptations(), 1u);
  EXPECT_FALSE((*vm)->plant.load("heater")->connected);
  EXPECT_GE((*vm)->plant.net_power_kw(), 0.0);
}

// ---------------------------------------------- Exp-1 equivalence (mgrid)

TEST(MgridEquivalence, AllScenariosProduceIdenticalTraces) {
  for (const MgridScenario& scenario : mgrid_scenarios()) {
    auto vm = make_mgridvm();
    ASSERT_TRUE(vm.ok()) << scenario.name;
    auto baseline = make_handcrafted_mgrid();
    Status model_based =
        run_mgrid_scenario(scenario, (*vm)->platform->broker(), (*vm)->plant,
                           (*vm)->platform->context());
    ASSERT_TRUE(model_based.ok())
        << scenario.name << ": " << model_based.to_string();
    Status handcrafted = run_mgrid_scenario(scenario, baseline->broker,
                                            baseline->plant,
                                            baseline->context);
    ASSERT_TRUE(handcrafted.ok())
        << scenario.name << ": " << handcrafted.to_string();
    EXPECT_TRUE((*vm)->platform->trace() == baseline->broker.trace())
        << scenario.name << " traces diverge";
    EXPECT_GT((*vm)->platform->trace().size(), 0u) << scenario.name;
  }
}

TEST(MgridEquivalence, StorageDischargePreferredOverShedding) {
  const MgridScenario& scenario = mgrid_scenarios()[2];  // g3
  ASSERT_EQ(scenario.name, "g3-storage-discharge");
  auto vm = make_mgridvm();
  ASSERT_TRUE(vm.ok());
  // Give the model-based side BOTH options; discharge must win (priority).
  (*vm)->platform->context().set("load.sheddable", Value("ev-c"));
  ASSERT_TRUE(run_mgrid_scenario(scenario, (*vm)->platform->broker(),
                                 (*vm)->plant, (*vm)->platform->context())
                  .ok());
  EXPECT_EQ((*vm)->plant.storage("battery-c")->mode, "discharge");
  EXPECT_TRUE((*vm)->plant.load("ev-c")->connected);  // not shed
}

// Property sweep: every microgrid scenario stays trace-equivalent under
// each grid mode (eco mode routes through a different Case-2 procedure
// on the model-based side, which must not change the resource trace).
class MgridEquivalenceSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, const char*>> {
};

TEST_P(MgridEquivalenceSweep, TracesEqualUnderGridMode) {
  auto [scenario_index, mode] = GetParam();
  const MgridScenario& scenario = mgrid_scenarios()[scenario_index];
  auto vm = make_mgridvm();
  ASSERT_TRUE(vm.ok());
  auto baseline = make_handcrafted_mgrid();
  (*vm)->platform->context().set("grid.mode", Value(mode));
  baseline->context.set("grid.mode", Value(mode));
  ASSERT_TRUE(run_mgrid_scenario(scenario, (*vm)->platform->broker(),
                                 (*vm)->plant, (*vm)->platform->context())
                  .ok())
      << scenario.name;
  ASSERT_TRUE(run_mgrid_scenario(scenario, baseline->broker, baseline->plant,
                                 baseline->context)
                  .ok())
      << scenario.name;
  EXPECT_TRUE((*vm)->platform->trace() == baseline->broker.trace())
      << scenario.name << " in mode " << mode;
}

INSTANTIATE_TEST_SUITE_P(
    AllScenariosAllModes, MgridEquivalenceSweep,
    ::testing::Combine(::testing::Range<std::size_t>(0, 6),
                       ::testing::Values("normal", "eco")));

TEST(MgridScenarios, SixScenariosWithUniqueNames) {
  const auto& scenarios = mgrid_scenarios();
  ASSERT_EQ(scenarios.size(), 6u);
  std::set<std::string> names;
  for (const auto& scenario : scenarios) {
    EXPECT_TRUE(names.insert(scenario.name).second);
    EXPECT_FALSE(scenario.steps.empty());
  }
}

}  // namespace
}  // namespace mdsm::mgrid
