// Unit tests for the Synthesis layer: LTS-driven change interpretation
// and the submit → compare → interpret → dispatch cycle.
#include <gtest/gtest.h>

#include "model_fixtures.hpp"
#include "synthesis/synthesis_engine.hpp"

namespace mdsm::synthesis {
namespace {

using model::ChangeKind;
using model::Value;
using model::testing::make_test_metamodel;

/// Session lifecycle LTS over the shared test DSML: created → opening →
/// open → closed, with commands at each step.
Lts make_session_lts() {
  Lts lts("initial");
  lts.on("initial", ChangeKind::kAddObject, "Session", "", "created",
         {{"session.create", {{"id", Value("%id")}}}});
  lts.on("created", ChangeKind::kSetAttribute, "Session", "state", "open",
         {{"session.open",
           {{"id", Value("%id")}, {"bw", Value("%attr:bandwidth")}}}},
         "", Value("open"));
  lts.on("open", ChangeKind::kSetAttribute, "Session", "state", "closed",
         {{"session.close", {{"id", Value("%id")}}}}, "", Value("closed"));
  lts.on("open", ChangeKind::kSetAttribute, "Session", "bandwidth", "open",
         {{"session.retune",
           {{"id", Value("%id")}, {"old", Value("%old")},
            {"new", Value("%new")}}}});
  lts.on("initial", ChangeKind::kAddObject, "Participant", "", "joined",
         {{"party.join",
           {{"id", Value("%id")}, {"session", Value("%parent")}}}});
  lts.on("joined", ChangeKind::kRemoveObject, "Participant", "", "gone",
         {{"party.leave", {{"id", Value("%id")}}}});
  return lts;
}

struct SynthesisFixture : ::testing::Test {
  model::MetamodelPtr mm = make_test_metamodel();
  policy::ContextStore context;
  std::vector<controller::Command> dispatched;
  SynthesisEngine engine{"se", mm, make_session_lts(), context,
                         [this](const controller::ControlScript& script, obs::RequestContext&) {
                           for (const auto& command : script.commands) {
                             dispatched.push_back(command);
                           }
                           return Status::Ok();
                         }};

  model::Model base_model(const std::string& name = "m") {
    model::Model m(name, mm);
    m.create("Session", "s1");
    m.set_attribute("s1", "state", Value("idle"));
    return m;
  }
};

TEST_F(SynthesisFixture, AddObjectFiresCreationTransition) {
  auto script = engine.submit_model(base_model());
  ASSERT_TRUE(script.ok()) << script.status().to_string();
  ASSERT_EQ(dispatched.size(), 1u);
  EXPECT_EQ(dispatched[0].to_text(), "session.create(id=\"s1\")");
  EXPECT_EQ(engine.interpreter().state_of("s1"), "created");
  EXPECT_EQ(engine.runtime_model().size(), 1u);
}

TEST_F(SynthesisFixture, LifecycleAcrossSubmissions) {
  // Bandwidth is present from the start and only changes at the retune
  // step, so the bandwidth-change transition fires exactly once.
  auto with_bw = [&](const std::string& name, const char* state, double bw) {
    model::Model m = base_model(name);
    m.set_attribute("s1", "state", Value(state));
    m.set_attribute("s1", "bandwidth", Value(bw));
    return m;
  };
  ASSERT_TRUE(engine.submit_model(with_bw("m1", "idle", 3.5)).ok());
  ASSERT_TRUE(engine.submit_model(with_bw("m2", "open", 3.5)).ok());
  ASSERT_TRUE(engine.submit_model(with_bw("m3", "open", 1.5)).ok());
  ASSERT_TRUE(engine.submit_model(with_bw("m4", "closed", 1.5)).ok());

  std::vector<std::string> texts;
  for (const auto& command : dispatched) texts.push_back(command.to_text());
  ASSERT_EQ(texts.size(), 4u);
  EXPECT_EQ(texts[0], "session.create(id=\"s1\")");
  EXPECT_EQ(texts[1], "session.open(bw=3.5, id=\"s1\")");
  EXPECT_EQ(texts[2], "session.retune(id=\"s1\", new=1.5, old=3.5)");
  EXPECT_EQ(texts[3], "session.close(id=\"s1\")");
  EXPECT_EQ(engine.interpreter().state_of("s1"), "closed");
}

TEST_F(SynthesisFixture, StateGatesWhichTransitionFires) {
  // Setting state=closed from "created" matches no transition (only
  // "open" → closed exists), so no command is emitted.
  ASSERT_TRUE(engine.submit_model(base_model()).ok());
  model::Model skip = base_model("m2");
  skip.set_attribute("s1", "state", Value("closed"));
  ASSERT_TRUE(engine.submit_model(std::move(skip)).ok());
  EXPECT_EQ(dispatched.size(), 1u);  // only the create
  EXPECT_GT(engine.interpreter().stats().unhandled_changes, 0u);
  EXPECT_EQ(engine.interpreter().state_of("s1"), "created");
}

TEST_F(SynthesisFixture, ContainedObjectsGetOwnLifecycles) {
  model::Model with_party = base_model();
  with_party.create_child("s1", "participants", "Participant", "alice");
  with_party.set_attribute("alice", "address", Value("a@h"));
  ASSERT_TRUE(engine.submit_model(std::move(with_party)).ok());
  ASSERT_EQ(dispatched.size(), 2u);
  EXPECT_EQ(dispatched[1].to_text(),
            "party.join(id=\"alice\", session=\"s1\")");
  // Removing the participant fires the leave transition and clears state.
  ASSERT_TRUE(engine.submit_model(base_model("m2")).ok());
  ASSERT_EQ(dispatched.size(), 3u);
  EXPECT_EQ(dispatched[2].to_text(), "party.leave(id=\"alice\")");
  EXPECT_EQ(engine.interpreter().state_of("alice"), "");
}

TEST_F(SynthesisFixture, GuardBlocksTransition) {
  Lts lts("initial");
  lts.on("initial", ChangeKind::kAddObject, "Session", "", "created",
         {{"session.create", {{"id", Value("%id")}}}}, "defined(allowed)");
  std::vector<controller::Command> out;
  SynthesisEngine guarded("se2", mm, std::move(lts), context,
                          [&](const controller::ControlScript& script, obs::RequestContext&) {
                            for (const auto& c : script.commands) {
                              out.push_back(c);
                            }
                            return Status::Ok();
                          });
  ASSERT_TRUE(guarded.submit_model(base_model()).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_GT(guarded.interpreter().stats().guard_blocked, 0u);
  // With context set, a *new* object fires the transition.
  context.set("allowed", Value(true));
  model::Model two = base_model("m2");
  two.create("Session", "s2");
  ASSERT_TRUE(guarded.submit_model(std::move(two)).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].to_text(), "session.create(id=\"s2\")");
}

TEST_F(SynthesisFixture, InvalidModelRejectedAndRuntimeModelUnchanged) {
  ASSERT_TRUE(engine.submit_model(base_model()).ok());
  model::Model bad("bad", mm);
  bad.create("Participant", "p");  // missing required address
  EXPECT_EQ(engine.submit_model(std::move(bad)).status().code(),
            ErrorCode::kConformanceError);
  EXPECT_EQ(engine.runtime_model().size(), 1u);  // previous model in force
  EXPECT_EQ(engine.stats().rejected_models, 1u);
}

TEST_F(SynthesisFixture, WrongMetamodelRejected) {
  model::Metamodel other("other");
  other.add_class("X");
  auto other_mm = model::finalize_metamodel(std::move(other));
  model::Model foreign("f", other_mm);
  EXPECT_EQ(engine.submit_model(std::move(foreign)).status().code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(SynthesisFixture, DispatchFailureKeepsOldModel) {
  SynthesisEngine failing("se3", mm, make_session_lts(), context,
                          [](const controller::ControlScript&, obs::RequestContext&) {
                            return Unavailable("controller down");
                          });
  EXPECT_EQ(failing.submit_model(base_model()).status().code(),
            ErrorCode::kUnavailable);
  EXPECT_TRUE(failing.runtime_model().empty());
}

TEST_F(SynthesisFixture, ModelListenerSeesCommittedModel) {
  std::string seen;
  engine.set_model_listener(
      [&](const model::Model& m) { seen = m.name(); });
  ASSERT_TRUE(engine.submit_model(base_model("committed")).ok());
  EXPECT_EQ(seen, "committed");
}

TEST_F(SynthesisFixture, IdenticalResubmissionDispatchesNothing) {
  ASSERT_TRUE(engine.submit_model(base_model()).ok());
  auto script = engine.submit_model(base_model("same"));
  ASSERT_TRUE(script.ok());
  EXPECT_TRUE(script->empty());
  EXPECT_EQ(dispatched.size(), 1u);
}

TEST_F(SynthesisFixture, ControllerEventsRecorded) {
  engine.handle_controller_event("controller.error", Value("cmd failed"));
  EXPECT_EQ(engine.stats().controller_events, 1u);
  ASSERT_EQ(engine.event_log().size(), 1u);
  EXPECT_EQ(engine.event_log()[0], "controller.error: \"cmd failed\"");
}

TEST_F(SynthesisFixture, TemplateEscapesAndUnknownsPassThrough) {
  Lts lts("initial");
  lts.on("initial", ChangeKind::kAddObject, "Session", "", "created",
         {{"cmd",
           {{"lit", Value("%%raw")}, {"weird", Value("%nosuch")},
            {"num", Value(7)}}}});
  std::vector<controller::Command> out;
  SynthesisEngine e2("se4", mm, std::move(lts), context,
                     [&](const controller::ControlScript& script, obs::RequestContext&) {
                       for (const auto& c : script.commands) out.push_back(c);
                       return Status::Ok();
                     });
  ASSERT_TRUE(e2.submit_model(base_model()).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].args.at("lit"), Value("%raw"));
  EXPECT_EQ(out[0].args.at("weird"), Value("%nosuch"));
  EXPECT_EQ(out[0].args.at("num"), Value(7));
}

TEST_F(SynthesisFixture, StatsAccumulate) {
  ASSERT_TRUE(engine.submit_model(base_model()).ok());
  EXPECT_EQ(engine.stats().models_submitted, 1u);
  EXPECT_EQ(engine.stats().scripts_dispatched, 1u);
  EXPECT_EQ(engine.stats().commands_generated, 1u);
  EXPECT_EQ(engine.interpreter().stats().transitions_fired, 1u);
  // AddObject + default-applied state attr = 2 changes processed.
  EXPECT_GE(engine.interpreter().stats().changes_processed, 2u);
}

}  // namespace
}  // namespace mdsm::synthesis
