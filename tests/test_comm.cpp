// Communication-domain tests: the simulated services, the CVM platform
// built from its middleware model, the handcrafted baseline broker, and
// — the heart of Exp-1 — behavioral equivalence of their command traces
// across all eight evaluation scenarios.
#include <gtest/gtest.h>

#include "domains/comm/cvm.hpp"
#include "domains/comm/handcrafted_broker.hpp"
#include "domains/comm/scenarios.hpp"

namespace mdsm::comm {
namespace {

using model::Value;

// ------------------------------------------------------------ services

struct ServiceFixture : ::testing::Test {
  SimClock clock;
  net::Network network{clock};
  CommSessionService service{network};
};

TEST_F(ServiceFixture, SessionLifecycle) {
  ASSERT_TRUE(service.create_session("s1").ok());
  EXPECT_EQ(service.create_session("s1").code(), ErrorCode::kAlreadyExists);
  ASSERT_TRUE(service.add_party("s1", "alice").ok());
  ASSERT_TRUE(service.add_party("s1", "bob").ok());
  EXPECT_EQ(service.add_party("s1", "alice").code(),
            ErrorCode::kAlreadyExists);
  const Session* session = service.find_session("s1");
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(session->parties.size(), 2u);
  ASSERT_TRUE(service.teardown_session("s1").ok());
  EXPECT_EQ(service.teardown_session("s1").code(), ErrorCode::kNotFound);
}

TEST_F(ServiceFixture, StreamsRequireTwoParties) {
  service.create_session("s1");
  service.add_party("s1", "alice");
  EXPECT_EQ(
      service.open_stream("s1", "m", "audio", "standard", true).code(),
      ErrorCode::kFailedPrecondition);
  service.add_party("s1", "bob");
  ASSERT_TRUE(service.open_stream("s1", "m", "audio", "standard", true).ok());
  EXPECT_EQ(service.open_stream("s1", "m", "audio", "standard", true).code(),
            ErrorCode::kAlreadyExists);
  ASSERT_TRUE(service.retune_stream("s1", "m", "low").ok());
  EXPECT_EQ(service.find_session("s1")->streams.at("m").quality, "low");
  ASSERT_TRUE(service.close_stream("s1", "m").ok());
  EXPECT_EQ(service.close_stream("s1", "m").code(), ErrorCode::kNotFound);
}

TEST_F(ServiceFixture, HandshakesExchangeMessages) {
  service.create_session("s1");
  service.add_party("s1", "alice");
  auto sent_before = network.stats().sent;
  service.add_party("s1", "bob");
  // join offer + answer at minimum
  EXPECT_GT(network.stats().sent, sent_before);
  EXPECT_GT(service.handshakes(), 0u);
}

TEST_F(ServiceFixture, FaultInjectionRaisesEventAndReconnectRestores) {
  std::vector<std::string> events;
  service.set_event_sink([&](const std::string& topic, Value payload) {
    events.push_back(topic + ":" + payload.to_text());
  });
  service.create_session("s1");
  service.add_party("s1", "alice");
  service.add_party("s1", "bob");
  service.inject_link_failure("s1", "bob");
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back(), "link.lost:\"bob\"");
  ASSERT_TRUE(service.reconnect_party("s1", "bob").ok());
  EXPECT_EQ(events.back(), "party.reconnected:\"bob\"");
}

TEST_F(ServiceFixture, AdapterMapsCommandsAndErrors) {
  runtime::EventBus bus;
  broker::ResourceManager resources(bus);
  ASSERT_TRUE(resources
                  .add_adapter(std::make_unique<CommServiceAdapter>(service))
                  .ok());
  ASSERT_TRUE(
      resources.invoke("comm", "session.create", {{"id", Value("s1")}}).ok());
  EXPECT_FALSE(
      resources.invoke("comm", "party.remove",
                       {{"session", Value("s1")}, {"address", Value("x")}})
          .ok());
  EXPECT_EQ(resources.invoke("comm", "no.such.command", {}).status().code(),
            ErrorCode::kNotFound);
}

// ------------------------------------------------------------------ CVM

TEST(Cvm, AssemblesFromMiddlewareModelAndRunsApplicationModels) {
  auto cvm = make_cvm();
  ASSERT_TRUE(cvm.ok()) << cvm.status().to_string();
  core::Platform& platform = *(*cvm)->platform;
  auto script = platform.submit_model_text(R"(
model call conforms cml
object Connection c1 {
  state = pending
  child participants Participant alice { address = "alice@net" }
  child participants Participant bob { address = "bob@net" }
  child media Medium voice { kind = audio }
}
)");
  ASSERT_TRUE(script.ok()) << script.status().to_string();
  const auto& entries = platform.trace().entries();
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries[0], "comm.session.create(id=\"c1\")");
  EXPECT_EQ(entries[1],
            "comm.party.add(address=\"alice\", session=\"c1\")");
  EXPECT_EQ(entries[2], "comm.party.add(address=\"bob\", session=\"c1\")");
  EXPECT_EQ(entries[3],
            "comm.media.open(id=\"voice\", kind=\"audio\", live=true, "
            "quality=\"standard\", session=\"c1\")");
  // The simulated service really established the session.
  const Session* session = (*cvm)->service.find_session("c1");
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(session->parties.size(), 2u);
  EXPECT_TRUE(session->streams.contains("voice"));
}

TEST(Cvm, ModelUpdateRetunesAndCloses) {
  auto cvm = make_cvm();
  ASSERT_TRUE(cvm.ok());
  core::Platform& platform = *(*cvm)->platform;
  ASSERT_TRUE(platform
                  .submit_model_text(R"(
model call conforms cml
object Connection c1 {
  state = active
  child participants Participant alice { address = "a" }
  child participants Participant bob { address = "b" }
  child media Medium voice { kind = audio quality = standard }
}
)")
                  .ok());
  std::size_t established = platform.trace().size();
  // Retune the stream via a model update.
  ASSERT_TRUE(platform
                  .submit_model_text(R"(
model call conforms cml
object Connection c1 {
  state = active
  child participants Participant alice { address = "a" }
  child participants Participant bob { address = "b" }
  child media Medium voice { kind = audio quality = low }
}
)")
                  .ok());
  ASSERT_EQ(platform.trace().size(), established + 1);
  EXPECT_EQ(platform.trace().entries().back(),
            "comm.media.retune(id=\"voice\", quality=\"low\", "
            "session=\"c1\")");
  // Close the whole connection.
  ASSERT_TRUE(platform
                  .submit_model_text(R"(
model call conforms cml
object Connection c1 {
  state = closed
  child participants Participant alice { address = "a" }
  child participants Participant bob { address = "b" }
  child media Medium voice { kind = audio quality = low }
}
)")
                  .ok());
  EXPECT_EQ(platform.trace().entries().back(),
            "comm.session.teardown(id=\"c1\")");
}

TEST(Cvm, ControllerUsesBothCases) {
  auto cvm = make_cvm();
  ASSERT_TRUE(cvm.ok());
  core::Platform& platform = *(*cvm)->platform;
  ASSERT_TRUE(platform
                  .submit_model_text(R"(
model call conforms cml
object Connection c1 {
  state = active
  child participants Participant alice { address = "a" }
  child participants Participant bob { address = "b" }
  child media Medium voice { kind = audio }
}
)")
                  .ok());
  // session.create and media.open are Case 2 (DSC mappings); party.add is
  // Case 1 (bound pass-through action).
  EXPECT_GE(platform.controller().stats().case2_executions, 2u);
  EXPECT_GE(platform.controller().stats().case1_executions, 2u);
}

// ------------------------------------------- Exp-1 behavioral equivalence

TEST(Equivalence, AllScenariosProduceIdenticalTraces) {
  for (const Scenario& scenario : comm_scenarios()) {
    auto cvm = make_cvm();
    ASSERT_TRUE(cvm.ok()) << scenario.name;
    auto handcrafted = make_handcrafted_ncb();
    Status model_based =
        run_scenario(scenario, (*cvm)->platform->broker(), (*cvm)->service,
                     (*cvm)->platform->context());
    ASSERT_TRUE(model_based.ok())
        << scenario.name << ": " << model_based.to_string();
    Status baseline = run_scenario(scenario, handcrafted->broker,
                                   handcrafted->service,
                                   handcrafted->context);
    ASSERT_TRUE(baseline.ok())
        << scenario.name << ": " << baseline.to_string();
    EXPECT_TRUE((*cvm)->platform->trace() == handcrafted->broker.trace())
        << scenario.name << " traces diverge";
    EXPECT_GT((*cvm)->platform->trace().size(), 0u) << scenario.name;
  }
}

TEST(Equivalence, FailureRecoveryHappensOnBothSides) {
  const Scenario& recovery = comm_scenarios()[6];  // s7-failure-recovery
  ASSERT_EQ(recovery.name, "s7-failure-recovery");
  auto cvm = make_cvm();
  ASSERT_TRUE(cvm.ok());
  auto handcrafted = make_handcrafted_ncb();
  ASSERT_TRUE(run_scenario(recovery, (*cvm)->platform->broker(),
                           (*cvm)->service, (*cvm)->platform->context())
                  .ok());
  ASSERT_TRUE(run_scenario(recovery, handcrafted->broker,
                           handcrafted->service, handcrafted->context)
                  .ok());
  EXPECT_EQ((*cvm)->platform->broker().autonomic().adaptations(), 1u);
  EXPECT_EQ(handcrafted->broker.recoveries(), 1u);
  EXPECT_EQ((*cvm)->platform->trace().entries().back(),
            "comm.party.reconnect(address=\"bob\", session=\"c7\")");
}

TEST(Equivalence, QualitySelectionMatchesAcrossBandwidths) {
  struct Case {
    double bandwidth;
    std::string expected;
  };
  for (const Case& c : {Case{3.0, "high"}, Case{1.0, "standard"},
                        Case{0.2, "low"}}) {
    auto cvm = make_cvm();
    ASSERT_TRUE(cvm.ok());
    auto handcrafted = make_handcrafted_ncb();
    for (auto* context :
         {&(*cvm)->platform->context(), &handcrafted->context}) {
      context->set("bandwidth", Value(c.bandwidth));
    }
    Scenario mini;
    mini.name = "mini";
    mini.steps = {
        ScenarioStep{.kind = ScenarioStep::Kind::kCall,
                     .call = {"ncb.session.create", {{"id", Value("m1")}}}},
        ScenarioStep{.kind = ScenarioStep::Kind::kCall,
                     .call = {"ncb.party.add",
                              {{"session", Value("m1")},
                               {"address", Value("a")}}}},
        ScenarioStep{.kind = ScenarioStep::Kind::kCall,
                     .call = {"ncb.party.add",
                              {{"session", Value("m1")},
                               {"address", Value("b")}}}},
        ScenarioStep{.kind = ScenarioStep::Kind::kCall,
                     .call = {"ncb.media.open",
                              {{"session", Value("m1")},
                               {"id", Value("v")},
                               {"kind", Value("video")},
                               {"live", Value(true)}}}},
    };
    ASSERT_TRUE(run_scenario(mini, (*cvm)->platform->broker(),
                             (*cvm)->service, (*cvm)->platform->context())
                    .ok());
    ASSERT_TRUE(run_scenario(mini, handcrafted->broker, handcrafted->service,
                             handcrafted->context)
                    .ok());
    EXPECT_TRUE((*cvm)->platform->trace() == handcrafted->broker.trace())
        << "bandwidth " << c.bandwidth;
    EXPECT_NE((*cvm)->platform->trace().entries().back().find(
                  "quality=\"" + c.expected + "\""),
              std::string::npos)
        << "bandwidth " << c.bandwidth;
  }
}

// Property sweep: trace equivalence must hold for every scenario under
// every bandwidth regime (the context steers guarded action selection on
// one side and an if/else chain on the other — they must never diverge).
class EquivalenceSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(EquivalenceSweep, TracesEqualUnderContext) {
  auto [scenario_index, bandwidth] = GetParam();
  const Scenario& scenario = comm_scenarios()[scenario_index];
  auto cvm = make_cvm();
  ASSERT_TRUE(cvm.ok());
  auto handcrafted = make_handcrafted_ncb();
  (*cvm)->platform->context().set("bandwidth", Value(bandwidth));
  handcrafted->context.set("bandwidth", Value(bandwidth));
  ASSERT_TRUE(run_scenario(scenario, (*cvm)->platform->broker(),
                           (*cvm)->service, (*cvm)->platform->context())
                  .ok())
      << scenario.name;
  ASSERT_TRUE(run_scenario(scenario, handcrafted->broker,
                           handcrafted->service, handcrafted->context)
                  .ok())
      << scenario.name;
  EXPECT_TRUE((*cvm)->platform->trace() == handcrafted->broker.trace())
      << scenario.name << " at bandwidth " << bandwidth;
}

INSTANTIATE_TEST_SUITE_P(
    AllScenariosAllBandwidths, EquivalenceSweep,
    ::testing::Combine(::testing::Range<std::size_t>(0, 8),
                       ::testing::Values(0.2, 1.0, 3.0)));

TEST(Scenarios, ThereAreExactlyEightWithUniqueNames) {
  const auto& scenarios = comm_scenarios();
  ASSERT_EQ(scenarios.size(), 8u);
  std::set<std::string> names;
  for (const Scenario& s : scenarios) {
    EXPECT_TRUE(names.insert(s.name).second);
    EXPECT_FALSE(s.steps.empty());
    EXPECT_FALSE(s.description.empty());
  }
}

}  // namespace
}  // namespace mdsm::comm
