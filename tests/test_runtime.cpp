// Unit tests for the generic runtime environment: components, factory,
// event bus, executor, timers.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hpp"
#include "model/metamodel.hpp"
#include "runtime/component.hpp"
#include "runtime/component_factory.hpp"
#include "runtime/event_bus.hpp"
#include "runtime/event_loop.hpp"
#include "runtime/executor.hpp"
#include "runtime/stage.hpp"
#include "runtime/timer_service.hpp"

namespace mdsm::runtime {
namespace {

// ------------------------------------------------------------ Component

class CountingComponent : public Component {
 public:
  explicit CountingComponent(std::string name, bool fail_start = false)
      : Component(std::move(name)), fail_start_(fail_start) {}
  int starts = 0;
  int stops = 0;

 protected:
  Status on_start() override {
    if (fail_start_) return Unavailable("refusing to start");
    ++starts;
    return Status::Ok();
  }
  Status on_stop() override {
    ++stops;
    return Status::Ok();
  }

 private:
  bool fail_start_;
};

TEST(Component, LifecycleIsIdempotent) {
  CountingComponent component("c");
  EXPECT_EQ(component.state(), ComponentState::kCreated);
  ASSERT_TRUE(component.start().ok());
  ASSERT_TRUE(component.start().ok());  // no-op
  EXPECT_EQ(component.starts, 1);
  EXPECT_EQ(component.state(), ComponentState::kStarted);
  ASSERT_TRUE(component.stop().ok());
  ASSERT_TRUE(component.stop().ok());  // no-op
  EXPECT_EQ(component.stops, 1);
  EXPECT_EQ(component.state(), ComponentState::kStopped);
}

TEST(Component, FailedStartLeavesStateCreated) {
  CountingComponent component("c", /*fail_start=*/true);
  EXPECT_FALSE(component.start().ok());
  EXPECT_EQ(component.state(), ComponentState::kCreated);
}

TEST(Component, StopBeforeStartIsNoOp) {
  CountingComponent component("c");
  EXPECT_TRUE(component.stop().ok());
  EXPECT_EQ(component.stops, 0);
}

// ----------------------------------------------------- ComponentFactory

model::MetamodelPtr factory_metamodel() {
  model::Metamodel mm("factorylang");
  auto& spec = mm.add_class("ComponentSpec");
  spec.add_attribute({.name = "template", .type = model::AttrType::kString});
  spec.add_attribute({.name = "threads", .type = model::AttrType::kInt});
  return model::finalize_metamodel(std::move(mm));
}

TEST(ComponentFactory, InstantiatesByExplicitTemplateAttribute) {
  ComponentFactory factory;
  ASSERT_TRUE(factory
                  .register_template(
                      "counting",
                      [](const model::ModelObject& spec, const model::Model&) {
                        return Result<std::unique_ptr<Component>>(
                            std::make_unique<CountingComponent>(spec.id()));
                      })
                  .ok());
  auto mm = factory_metamodel();
  model::Model model("m", mm);
  model.create("ComponentSpec", "broker-main");
  model.set_attribute("broker-main", "template", model::Value("counting"));
  auto component = factory.instantiate(*model.find("broker-main"), model);
  ASSERT_TRUE(component.ok()) << component.status().to_string();
  EXPECT_EQ((*component)->name(), "broker-main");
}

TEST(ComponentFactory, FallsBackToClassNameTemplate) {
  ComponentFactory factory;
  ASSERT_TRUE(factory
                  .register_template(
                      "ComponentSpec",
                      [](const model::ModelObject& spec, const model::Model&) {
                        return Result<std::unique_ptr<Component>>(
                            std::make_unique<CountingComponent>(spec.id()));
                      })
                  .ok());
  auto mm = factory_metamodel();
  model::Model model("m", mm);
  model.create("ComponentSpec", "x");
  EXPECT_TRUE(factory.instantiate(*model.find("x"), model).ok());
}

TEST(ComponentFactory, MissingTemplateIsNotFound) {
  ComponentFactory factory;
  auto mm = factory_metamodel();
  model::Model model("m", mm);
  model.create("ComponentSpec", "x");
  EXPECT_EQ(factory.instantiate(*model.find("x"), model).status().code(),
            ErrorCode::kNotFound);
}

TEST(ComponentFactory, DuplicateAndNullRegistrationsRejected) {
  ComponentFactory factory;
  auto builder = [](const model::ModelObject& spec, const model::Model&) {
    return Result<std::unique_ptr<Component>>(
        std::make_unique<CountingComponent>(spec.id()));
  };
  EXPECT_TRUE(factory.register_template("t", builder).ok());
  EXPECT_EQ(factory.register_template("t", builder).code(),
            ErrorCode::kAlreadyExists);
  EXPECT_EQ(factory.register_template("u", nullptr).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_TRUE(factory.has_template("t"));
  EXPECT_FALSE(factory.has_template("u"));
  EXPECT_EQ(factory.template_names(), std::vector<std::string>{"t"});
}

// --------------------------------------------------------------- EventBus

TEST(EventBus, ExactTopicDelivery) {
  EventBus bus;
  int count = 0;
  bus.subscribe("resource.up", [&](const Event&) { ++count; });
  EXPECT_EQ(bus.publish("resource.up", "test"), 1u);
  EXPECT_EQ(bus.publish("resource.down", "test"), 0u);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(bus.published_count(), 2u);
}

TEST(EventBus, WildcardMatchesSubtreeAndSelf) {
  EventBus bus;
  std::vector<std::string> seen;
  bus.subscribe("resource.*", [&](const Event& e) { seen.push_back(e.topic); });
  bus.publish("resource.up", "t");
  bus.publish("resource", "t");           // prefix itself matches
  bus.publish("resource.link.down", "t"); // deeper levels match
  bus.publish("resources.up", "t");       // different segment: no match
  ASSERT_EQ(seen.size(), 3u);
}

TEST(EventBus, StarMatchesEverything) {
  EventBus bus;
  int count = 0;
  bus.subscribe("*", [&](const Event&) { ++count; });
  bus.publish("a", "t");
  bus.publish("b.c", "t");
  EXPECT_EQ(count, 2);
}

TEST(EventBus, UnsubscribeStopsDelivery) {
  EventBus bus;
  int count = 0;
  auto id = bus.subscribe("x", [&](const Event&) { ++count; });
  bus.publish("x", "t");
  bus.unsubscribe(id);
  bus.publish("x", "t");
  EXPECT_EQ(count, 1);
  EXPECT_EQ(bus.subscription_count(), 0u);
}

TEST(EventBus, DeliveryInSubscriptionOrder) {
  EventBus bus;
  std::vector<int> order;
  bus.subscribe("x", [&](const Event&) { order.push_back(1); });
  bus.subscribe("x", [&](const Event&) { order.push_back(2); });
  bus.publish("x", "t");
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventBus, HandlerMayPublishReentrantly) {
  EventBus bus;
  int second = 0;
  bus.subscribe("first", [&](const Event&) { bus.publish("second", "t"); });
  bus.subscribe("second", [&](const Event&) { ++second; });
  bus.publish("first", "t");
  EXPECT_EQ(second, 1);
}

TEST(EventBus, PayloadCarriedThrough) {
  EventBus bus;
  model::Value received;
  bus.subscribe("x", [&](const Event& e) { received = e.payload; });
  bus.publish("x", "src", model::Value(42));
  EXPECT_EQ(received, model::Value(42));
}

// --------------------------------------------------------------- Executor

TEST(Executor, RunsSubmittedTasks) {
  Executor executor(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    executor.submit([&counter] { ++counter; });
  }
  executor.drain();
  EXPECT_EQ(counter.load(), 100);
}

TEST(Executor, DrainWaitsForInFlightWork) {
  Executor executor(2);
  std::atomic<bool> done{false};
  executor.submit([&done] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    done = true;
  });
  executor.drain();
  EXPECT_TRUE(done.load());
}

TEST(Executor, WorkersMaySubmitMoreWork) {
  Executor executor(2);
  std::atomic<int> counter{0};
  executor.submit([&] {
    for (int i = 0; i < 10; ++i) {
      executor.submit([&counter] { ++counter; });
    }
  });
  executor.drain();
  EXPECT_EQ(counter.load(), 10);
}

TEST(Executor, ZeroThreadsClampedToOne) {
  Executor executor(0);
  EXPECT_EQ(executor.thread_count(), 1u);
}

// Regression: a throwing task used to unwind through worker_loop without
// decrementing active_, leaving drain() waiting forever and killing the
// worker thread. Faults must be contained, counted and drained past.
TEST(Executor, ThrowingTaskIsContainedAndCounted) {
  set_log_level(LogLevel::kOff);
  obs::MetricsRegistry metrics;
  Executor executor(2);
  executor.set_metrics(&metrics);
  std::atomic<int> counter{0};
  executor.submit([] { throw std::runtime_error("task fault"); });
  executor.submit([&counter] { ++counter; });
  executor.submit([] { throw 42; });  // non-std::exception payloads too
  executor.submit([&counter] { ++counter; });
  executor.drain();  // must return despite the two faults
  EXPECT_EQ(counter.load(), 2);
  EXPECT_EQ(executor.task_failures(), 2u);
  EXPECT_EQ(metrics.snapshot().counter_value("runtime.executor_task_failures"),
            2u);
  // Workers survive: the pool still runs tasks after the faults.
  executor.submit([&counter] { ++counter; });
  executor.drain();
  EXPECT_EQ(counter.load(), 3);
  set_log_level(LogLevel::kWarn);
}

// --------------------------------------- Executor overload protection (PR 5)

// Regression: submit() after shutdown() used to enqueue into a pool with
// no workers left — the task silently never ran. It must be refused.
TEST(Executor, SubmitAfterShutdownIsRejected) {
  obs::MetricsRegistry metrics;
  Executor executor(1);
  executor.set_metrics(&metrics);
  std::atomic<int> ran{0};
  EXPECT_TRUE(executor.submit([&ran] { ++ran; }).ok());
  executor.shutdown();
  Status late = executor.submit([&ran] { ++ran; });
  EXPECT_EQ(late.code(), ErrorCode::kUnavailable);
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(executor.rejections(), 1u);
  EXPECT_EQ(metrics.snapshot().counter_value("runtime.executor_rejections"),
            1u);
}

// Saturating a bounded kReject queue fails fast — typed status, counter
// bump — and never deadlocks the submitter or the pool.
TEST(Executor, BoundedQueueRejectsAtCapacityWithoutDeadlock) {
  obs::MetricsRegistry metrics;
  Executor executor(ExecutorConfig{.thread_count = 1,
                                   .queue_capacity = 2,
                                   .overflow_policy = OverflowPolicy::kReject});
  executor.set_metrics(&metrics);
  std::atomic<bool> gate{false};
  // Park the single worker so submissions pile up behind it.
  executor.submit([&gate] {
    while (!gate.load()) std::this_thread::yield();
  });
  while (executor.pending() != 0) std::this_thread::yield();
  EXPECT_TRUE(executor.submit([] {}).ok());
  EXPECT_TRUE(executor.submit([] {}).ok());
  Status rejected = executor.submit([] {});
  EXPECT_EQ(rejected.code(), ErrorCode::kUnavailable);
  EXPECT_EQ(executor.pending(), 2u);  // bound held
  EXPECT_EQ(executor.rejections(), 1u);
  EXPECT_EQ(metrics.snapshot().counter_value("runtime.executor_rejections"),
            1u);
  gate = true;
  executor.drain();
  EXPECT_EQ(executor.max_pending(), 2u);  // depth never exceeded capacity
}

// kShedOldest admits the newest work by dropping the oldest queued task;
// the victim's on_shed hook fires exactly once so callers can resolve
// completions for work that never ran.
TEST(Executor, ShedOldestDropsOldestAndKeepsNewest) {
  obs::MetricsRegistry metrics;
  Executor executor(
      ExecutorConfig{.thread_count = 1,
                     .queue_capacity = 2,
                     .overflow_policy = OverflowPolicy::kShedOldest});
  executor.set_metrics(&metrics);
  std::atomic<bool> gate{false};
  executor.submit([&gate] {
    while (!gate.load()) std::this_thread::yield();
  });
  while (executor.pending() != 0) std::this_thread::yield();
  std::vector<int> ran;
  std::atomic<int> shed_calls{0};
  auto make_task = [&ran, &shed_calls](int id) {
    Executor::Task task;
    task.run = [&ran, id] { ran.push_back(id); };
    task.on_shed = [&shed_calls] { ++shed_calls; };
    return task;
  };
  EXPECT_TRUE(executor.submit(make_task(1)).ok());
  EXPECT_TRUE(executor.submit(make_task(2)).ok());
  EXPECT_TRUE(executor.submit(make_task(3)).ok());  // sheds task 1
  EXPECT_EQ(executor.shed_tasks(), 1u);
  EXPECT_EQ(shed_calls.load(), 1);
  gate = true;
  executor.drain();
  EXPECT_EQ(ran, (std::vector<int>{2, 3}));
  EXPECT_EQ(metrics.snapshot().counter_value("runtime.executor_shed"), 1u);
}

// kBlock applies backpressure: the submitter waits for space instead of
// failing, and nothing is lost.
TEST(Executor, BlockPolicyWaitsForSpaceInsteadOfFailing) {
  Executor executor(ExecutorConfig{.thread_count = 1,
                                   .queue_capacity = 1,
                                   .overflow_policy = OverflowPolicy::kBlock});
  std::atomic<bool> gate{false};
  std::atomic<int> ran{0};
  executor.submit([&gate] {
    while (!gate.load()) std::this_thread::yield();
  });
  while (executor.pending() != 0) std::this_thread::yield();
  EXPECT_TRUE(executor.submit([&ran] { ++ran; }).ok());  // fills the queue
  std::atomic<bool> accepted{false};
  std::thread submitter([&] {
    EXPECT_TRUE(executor.submit([&ran] { ++ran; }).ok());
    accepted = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(accepted.load());  // still waiting — not rejected, not lost
  gate = true;
  submitter.join();
  EXPECT_TRUE(accepted.load());
  executor.drain();
  EXPECT_EQ(ran.load(), 2);
  EXPECT_EQ(executor.rejections(), 0u);
}

// The high lane drains before any queued normal work, regardless of
// arrival order.
TEST(Executor, HighLaneOvertakesQueuedNormalWork) {
  Executor executor(ExecutorConfig{.thread_count = 1});
  std::atomic<bool> gate{false};
  std::vector<std::string> order;
  executor.submit([&gate] {
    while (!gate.load()) std::this_thread::yield();
  });
  while (executor.pending() != 0) std::this_thread::yield();
  executor.submit([&order] { order.push_back("normal-1"); });
  executor.submit([&order] { order.push_back("normal-2"); });
  Executor::Task urgent;
  urgent.run = [&order] { order.push_back("high"); };
  urgent.lane = TaskLane::kHigh;
  executor.submit(std::move(urgent));
  gate = true;
  executor.drain();
  EXPECT_EQ(order,
            (std::vector<std::string>{"high", "normal-1", "normal-2"}));
}

// Enqueue→dequeue delay is measured on the injected clock and recorded
// into the "runtime.queue_delay_us" histogram — the signal admission
// control's EWMA feeds on.
TEST(Executor, QueueDelayRecordedOnInjectedClock) {
  obs::MetricsRegistry metrics;
  SimClock sim;
  Executor executor(ExecutorConfig{.thread_count = 1});
  executor.set_metrics(&metrics);
  executor.set_clock(&sim);
  std::atomic<bool> gate{false};
  executor.submit([&gate] {
    while (!gate.load()) std::this_thread::yield();
  });
  while (executor.pending() != 0) std::this_thread::yield();
  executor.submit([] {});  // enqueued at virtual t0
  sim.advance(std::chrono::microseconds(750));
  gate = true;
  executor.drain();
  const auto snapshot = metrics.snapshot();
  const auto* delay = snapshot.histogram("runtime.queue_delay_us");
  ASSERT_NE(delay, nullptr);
  EXPECT_EQ(delay->count, 2u);  // the gate task and the measured task
  EXPECT_GE(delay->sum_us, 750u);
}

// ------------------------------------------------------------ TimerService

TEST(TimerService, FiresInDeadlineOrderWhenDue) {
  SimClock clock;
  TimerService timers(clock);
  std::vector<int> fired;
  timers.schedule(std::chrono::milliseconds(10), [&] { fired.push_back(2); });
  timers.schedule(std::chrono::milliseconds(5), [&] { fired.push_back(1); });
  EXPECT_EQ(timers.run_due(), 0u);  // nothing due yet
  clock.advance(std::chrono::milliseconds(7));
  EXPECT_EQ(timers.run_due(), 1u);
  clock.advance(std::chrono::milliseconds(7));
  EXPECT_EQ(timers.run_due(), 1u);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_EQ(timers.pending(), 0u);
}

TEST(TimerService, CancelPreventsFiring) {
  SimClock clock;
  TimerService timers(clock);
  bool fired = false;
  auto id = timers.schedule(std::chrono::milliseconds(1), [&] { fired = true; });
  EXPECT_TRUE(timers.cancel(id));
  EXPECT_FALSE(timers.cancel(id));  // second cancel: unknown
  clock.advance(std::chrono::milliseconds(5));
  timers.run_due();
  EXPECT_FALSE(fired);
}

// Regression (PR 6): a callback that schedules a new timer during
// run_due() — even a zero-delay one — defers it to the *next* tick. It
// must never fire in the same drain (that made a tick's work depend on
// callback order) and never be skipped or double-fired.
TEST(TimerService, CallbackScheduledTimerDefersToNextTick) {
  SimClock clock;
  TimerService timers(clock);
  int fired = 0;
  timers.schedule(Duration(0), [&] {
    ++fired;
    timers.schedule(Duration(0), [&] { ++fired; });
  });
  EXPECT_EQ(timers.run_due(), 1u);  // only the timer due at entry fires
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(timers.pending(), 1u);  // the chained timer is parked, not lost
  EXPECT_EQ(timers.run_due(), 1u);  // ...and fires exactly once next tick
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(timers.pending(), 0u);
}

// A self-rescheduling heartbeat must not spin run_due() forever: each
// drain fires exactly one generation.
TEST(TimerService, SelfReschedulingTimerFiresOncePerDrain) {
  SimClock clock;
  TimerService timers(clock);
  int generation = 0;
  std::function<void()> beat = [&] {
    ++generation;
    timers.schedule(Duration(0), beat);
  };
  timers.schedule(Duration(0), beat);
  for (int tick = 1; tick <= 5; ++tick) {
    EXPECT_EQ(timers.run_due(), 1u);
    EXPECT_EQ(generation, tick);
  }
  EXPECT_EQ(timers.pending(), 1u);
}

// Callbacks may cancel a timer that is due but not yet fired in the same
// drain; the drain skips it without double-firing anything.
TEST(TimerService, CallbackMayCancelLaterDueTimer) {
  SimClock clock;
  TimerService timers(clock);
  int fired = 0;
  std::uint64_t victim = 0;
  timers.schedule(Duration(1), [&] {
    ++fired;
    EXPECT_TRUE(timers.cancel(victim));
  });
  victim = timers.schedule(Duration(2), [&] { ++fired; });
  clock.advance(Duration(10));
  EXPECT_EQ(timers.run_due(), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(timers.pending(), 0u);
}

TEST(TimerService, ThrowingCallbackDoesNotAbortTheDrain) {
  SimClock clock;
  TimerService timers(clock);
  std::vector<int> fired;
  timers.schedule(Duration(1), [&] { fired.push_back(1); });
  timers.schedule(Duration(2), [&]() -> void {
    throw std::runtime_error("timer fault injected");
  });
  timers.schedule(Duration(3), [&] { fired.push_back(3); });
  clock.advance(Duration(10));
  // All three ran (the throwing one counts as fired: it was retired and
  // invoked); the timers behind the fault still fired.
  EXPECT_EQ(timers.run_due(), 3u);
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
  EXPECT_EQ(timers.callback_failures(), 1u);
  EXPECT_EQ(timers.pending(), 0u);
}

TEST(TimerService, CancelScalesViaIdIndex) {
  SimClock clock;
  TimerService timers(clock);
  // Many pending timers, cancelled out of schedule order — the id index
  // must stay in lockstep with the deadline map through the churn.
  std::vector<std::uint64_t> ids;
  int fired = 0;
  for (int i = 0; i < 200; ++i) {
    ids.push_back(timers.schedule(Duration(100 + i), [&] { ++fired; }));
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) {
    EXPECT_TRUE(timers.cancel(ids[i]));
  }
  EXPECT_EQ(timers.pending(), 100u);
  clock.advance(Duration(1'000));
  EXPECT_EQ(timers.run_due(), 100u);
  EXPECT_EQ(fired, 100);
  // Every cancelled and fired id is now unknown.
  for (std::uint64_t id : ids) EXPECT_FALSE(timers.cancel(id));
}

TEST(TimerService, NextDeadlineReported) {
  SimClock clock;
  TimerService timers(clock);
  EXPECT_FALSE(timers.next_deadline().has_value());
  timers.schedule(std::chrono::milliseconds(3), [] {});
  ASSERT_TRUE(timers.next_deadline().has_value());
  EXPECT_EQ(*timers.next_deadline(), clock.now() + Duration(3000));
}

// ------------------------------------------------------------- EventLoop

TEST(EventLoop, ManualModeRunsNothingUntilPolled) {
  SimClock clock;
  EventLoop loop(EventLoopConfig{.clock = &clock, .threaded = false});
  int ran = 0;
  loop.post([&] { ++ran; });
  loop.schedule(Duration(5), [&] { ++ran; });
  EXPECT_EQ(ran, 0);  // nothing fires from a hidden thread
  EXPECT_EQ(loop.poll(), 1u);  // the post; the timer is not due
  clock.advance(Duration(10));
  EXPECT_EQ(loop.poll(), 1u);
  EXPECT_EQ(ran, 2);
}

// Tick discipline carries through the loop: a callback that schedules a
// zero-delay timer during poll() sees it fire on the *next* poll.
TEST(EventLoop, TimerScheduledDuringPollDefersToNextPoll) {
  SimClock clock;
  EventLoop loop(EventLoopConfig{.clock = &clock, .threaded = false});
  int fired = 0;
  loop.schedule(Duration(0), [&] {
    ++fired;
    loop.schedule(Duration(0), [&] { ++fired; });
  });
  EXPECT_EQ(loop.poll(), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.poll(), 1u);
  EXPECT_EQ(fired, 2);
}

TEST(EventLoop, CancelPreventsScheduledCallback) {
  SimClock clock;
  EventLoop loop(EventLoopConfig{.clock = &clock, .threaded = false});
  bool fired = false;
  auto id = loop.schedule(Duration(1), [&] { fired = true; });
  EXPECT_TRUE(loop.cancel(id));
  clock.advance(Duration(10));
  loop.poll();
  EXPECT_FALSE(fired);
}

// flush() is the shutdown drain: every pending timer runs immediately,
// due or not, so parked continuations run out instead of leaking.
TEST(EventLoop, FlushFiresPendingTimersRegardlessOfDeadline) {
  SimClock clock;
  EventLoop loop(EventLoopConfig{.clock = &clock, .threaded = false});
  int fired = 0;
  loop.schedule(std::chrono::hours(1), [&] { ++fired; });
  loop.schedule(std::chrono::hours(2), [&] { ++fired; });
  loop.post([&] { ++fired; });
  EXPECT_EQ(loop.flush(), 3u);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(loop.pending_timers(), 0u);
}

TEST(EventLoop, ThreadedModeDrainsPostsAndTimers) {
  EventLoop loop;  // real clock, threaded
  std::atomic<int> ran{0};
  loop.post([&] { ++ran; });
  loop.schedule(std::chrono::milliseconds(1), [&] { ++ran; });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (ran.load() != 2 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(ran.load(), 2);
}

TEST(EventLoop, PostAfterStopIsDropped) {
  SimClock clock;
  EventLoop loop(EventLoopConfig{.clock = &clock, .threaded = false});
  loop.stop();
  loop.post([] { FAIL() << "posted after stop must not run"; });
  EXPECT_EQ(loop.poll(), 0u);
  EXPECT_EQ(loop.pending_posts(), 0u);
}

TEST(EventLoop, ThrowingCallbackIsContained) {
  set_log_level(LogLevel::kOff);
  SimClock clock;
  EventLoop loop(EventLoopConfig{.clock = &clock, .threaded = false});
  int ran = 0;
  loop.post([] { throw std::runtime_error("loop fault"); });
  loop.post([&] { ++ran; });
  EXPECT_EQ(loop.poll(), 2u);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(loop.callback_failures(), 1u);
  set_log_level(LogLevel::kWarn);
}

// --------------------------------------------------------- StagePipeline

TEST(StagePipeline, TracksPerStageDepthAndDelay) {
  obs::MetricsRegistry metrics;
  SimClock sim;
  Executor executor(ExecutorConfig{.thread_count = 1});
  StagePipeline stages(executor, sim, &metrics);
  const std::size_t synthesis = stages.add_stage("synthesis");
  const std::size_t broker = stages.add_stage("broker");
  ASSERT_EQ(stages.stage_count(), 2u);
  std::atomic<bool> gate{false};
  executor.submit([&gate] {
    while (!gate.load()) std::this_thread::yield();
  });
  while (executor.pending() != 0) std::this_thread::yield();
  std::atomic<int> ran{0};
  ASSERT_TRUE(stages.submit(synthesis, [&ran] { ++ran; }).ok());
  ASSERT_TRUE(stages.submit(broker, [&ran] { ++ran; }).ok());
  EXPECT_EQ(stages.depth(synthesis), 1u);
  EXPECT_EQ(stages.depth(broker), 1u);
  sim.advance(std::chrono::microseconds(500));
  gate = true;
  executor.drain();
  EXPECT_EQ(ran.load(), 2);
  const auto stats = stages.stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].name, "synthesis");
  EXPECT_EQ(stats[0].depth, 0u);
  EXPECT_EQ(stats[0].max_depth, 1u);
  EXPECT_EQ(stats[0].entered, 1u);
  const auto snapshot = metrics.snapshot();
  const auto* delay = snapshot.histogram("stage.synthesis.delay_us");
  ASSERT_NE(delay, nullptr);
  EXPECT_EQ(delay->count, 1u);
  EXPECT_GE(delay->sum_us, 500u);
}

// Continuations of admitted work bypass the executor's capacity bound:
// a full queue must never strand a mid-pipeline hop.
TEST(StagePipeline, ContinuationBypassesCapacityBound) {
  Executor executor(ExecutorConfig{.thread_count = 1,
                                   .queue_capacity = 1,
                                   .overflow_policy = OverflowPolicy::kReject});
  SteadyClock clock;
  StagePipeline stages(executor, clock, nullptr);
  const std::size_t stage = stages.add_stage("s");
  std::atomic<bool> gate{false};
  executor.submit([&gate] {
    while (!gate.load()) std::this_thread::yield();
  });
  while (executor.pending() != 0) std::this_thread::yield();
  std::atomic<int> ran{0};
  ASSERT_TRUE(stages.submit(stage, [&ran] { ++ran; }).ok());  // fills queue
  EXPECT_FALSE(stages.submit(stage, [&ran] { ++ran; }).ok());  // entry refused
  StagePipeline::SubmitOptions hop;
  hop.continuation = true;
  EXPECT_TRUE(stages.submit(stage, [&ran] { ++ran; }, hop).ok());
  gate = true;
  executor.drain();
  EXPECT_EQ(ran.load(), 2);
}

// A shed entry submission fires its on_shed hook and counts against the
// stage, so the caller can resolve the callback of work that never ran.
TEST(StagePipeline, ShedEntryRunsOnShedAndCounts) {
  Executor executor(
      ExecutorConfig{.thread_count = 1,
                     .queue_capacity = 1,
                     .overflow_policy = OverflowPolicy::kShedOldest});
  SteadyClock clock;
  StagePipeline stages(executor, clock, nullptr);
  const std::size_t stage = stages.add_stage("s");
  std::atomic<bool> gate{false};
  executor.submit([&gate] {
    while (!gate.load()) std::this_thread::yield();
  });
  while (executor.pending() != 0) std::this_thread::yield();
  std::atomic<int> shed{0};
  std::atomic<int> ran{0};
  StagePipeline::SubmitOptions entry;
  entry.on_shed = [&shed] { ++shed; };
  ASSERT_TRUE(stages.submit(stage, [&ran] { ++ran; }, entry).ok());
  ASSERT_TRUE(stages.submit(stage, [&ran] { ++ran; }, entry).ok());
  EXPECT_EQ(shed.load(), 1);
  gate = true;
  executor.drain();
  EXPECT_EQ(ran.load(), 1);
  const auto stats = stages.stats();
  EXPECT_EQ(stats[0].shed, 1u);
  EXPECT_EQ(stats[0].depth, 0u);  // shed work leaves no ghost depth
}

}  // namespace
}  // namespace mdsm::runtime
