// Unit tests for the generic runtime environment: components, factory,
// event bus, executor, timers.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hpp"
#include "model/metamodel.hpp"
#include "runtime/component.hpp"
#include "runtime/component_factory.hpp"
#include "runtime/event_bus.hpp"
#include "runtime/executor.hpp"
#include "runtime/timer_service.hpp"

namespace mdsm::runtime {
namespace {

// ------------------------------------------------------------ Component

class CountingComponent : public Component {
 public:
  explicit CountingComponent(std::string name, bool fail_start = false)
      : Component(std::move(name)), fail_start_(fail_start) {}
  int starts = 0;
  int stops = 0;

 protected:
  Status on_start() override {
    if (fail_start_) return Unavailable("refusing to start");
    ++starts;
    return Status::Ok();
  }
  Status on_stop() override {
    ++stops;
    return Status::Ok();
  }

 private:
  bool fail_start_;
};

TEST(Component, LifecycleIsIdempotent) {
  CountingComponent component("c");
  EXPECT_EQ(component.state(), ComponentState::kCreated);
  ASSERT_TRUE(component.start().ok());
  ASSERT_TRUE(component.start().ok());  // no-op
  EXPECT_EQ(component.starts, 1);
  EXPECT_EQ(component.state(), ComponentState::kStarted);
  ASSERT_TRUE(component.stop().ok());
  ASSERT_TRUE(component.stop().ok());  // no-op
  EXPECT_EQ(component.stops, 1);
  EXPECT_EQ(component.state(), ComponentState::kStopped);
}

TEST(Component, FailedStartLeavesStateCreated) {
  CountingComponent component("c", /*fail_start=*/true);
  EXPECT_FALSE(component.start().ok());
  EXPECT_EQ(component.state(), ComponentState::kCreated);
}

TEST(Component, StopBeforeStartIsNoOp) {
  CountingComponent component("c");
  EXPECT_TRUE(component.stop().ok());
  EXPECT_EQ(component.stops, 0);
}

// ----------------------------------------------------- ComponentFactory

model::MetamodelPtr factory_metamodel() {
  model::Metamodel mm("factorylang");
  auto& spec = mm.add_class("ComponentSpec");
  spec.add_attribute({.name = "template", .type = model::AttrType::kString});
  spec.add_attribute({.name = "threads", .type = model::AttrType::kInt});
  return model::finalize_metamodel(std::move(mm));
}

TEST(ComponentFactory, InstantiatesByExplicitTemplateAttribute) {
  ComponentFactory factory;
  ASSERT_TRUE(factory
                  .register_template(
                      "counting",
                      [](const model::ModelObject& spec, const model::Model&) {
                        return Result<std::unique_ptr<Component>>(
                            std::make_unique<CountingComponent>(spec.id()));
                      })
                  .ok());
  auto mm = factory_metamodel();
  model::Model model("m", mm);
  model.create("ComponentSpec", "broker-main");
  model.set_attribute("broker-main", "template", model::Value("counting"));
  auto component = factory.instantiate(*model.find("broker-main"), model);
  ASSERT_TRUE(component.ok()) << component.status().to_string();
  EXPECT_EQ((*component)->name(), "broker-main");
}

TEST(ComponentFactory, FallsBackToClassNameTemplate) {
  ComponentFactory factory;
  ASSERT_TRUE(factory
                  .register_template(
                      "ComponentSpec",
                      [](const model::ModelObject& spec, const model::Model&) {
                        return Result<std::unique_ptr<Component>>(
                            std::make_unique<CountingComponent>(spec.id()));
                      })
                  .ok());
  auto mm = factory_metamodel();
  model::Model model("m", mm);
  model.create("ComponentSpec", "x");
  EXPECT_TRUE(factory.instantiate(*model.find("x"), model).ok());
}

TEST(ComponentFactory, MissingTemplateIsNotFound) {
  ComponentFactory factory;
  auto mm = factory_metamodel();
  model::Model model("m", mm);
  model.create("ComponentSpec", "x");
  EXPECT_EQ(factory.instantiate(*model.find("x"), model).status().code(),
            ErrorCode::kNotFound);
}

TEST(ComponentFactory, DuplicateAndNullRegistrationsRejected) {
  ComponentFactory factory;
  auto builder = [](const model::ModelObject& spec, const model::Model&) {
    return Result<std::unique_ptr<Component>>(
        std::make_unique<CountingComponent>(spec.id()));
  };
  EXPECT_TRUE(factory.register_template("t", builder).ok());
  EXPECT_EQ(factory.register_template("t", builder).code(),
            ErrorCode::kAlreadyExists);
  EXPECT_EQ(factory.register_template("u", nullptr).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_TRUE(factory.has_template("t"));
  EXPECT_FALSE(factory.has_template("u"));
  EXPECT_EQ(factory.template_names(), std::vector<std::string>{"t"});
}

// --------------------------------------------------------------- EventBus

TEST(EventBus, ExactTopicDelivery) {
  EventBus bus;
  int count = 0;
  bus.subscribe("resource.up", [&](const Event&) { ++count; });
  EXPECT_EQ(bus.publish("resource.up", "test"), 1u);
  EXPECT_EQ(bus.publish("resource.down", "test"), 0u);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(bus.published_count(), 2u);
}

TEST(EventBus, WildcardMatchesSubtreeAndSelf) {
  EventBus bus;
  std::vector<std::string> seen;
  bus.subscribe("resource.*", [&](const Event& e) { seen.push_back(e.topic); });
  bus.publish("resource.up", "t");
  bus.publish("resource", "t");           // prefix itself matches
  bus.publish("resource.link.down", "t"); // deeper levels match
  bus.publish("resources.up", "t");       // different segment: no match
  ASSERT_EQ(seen.size(), 3u);
}

TEST(EventBus, StarMatchesEverything) {
  EventBus bus;
  int count = 0;
  bus.subscribe("*", [&](const Event&) { ++count; });
  bus.publish("a", "t");
  bus.publish("b.c", "t");
  EXPECT_EQ(count, 2);
}

TEST(EventBus, UnsubscribeStopsDelivery) {
  EventBus bus;
  int count = 0;
  auto id = bus.subscribe("x", [&](const Event&) { ++count; });
  bus.publish("x", "t");
  bus.unsubscribe(id);
  bus.publish("x", "t");
  EXPECT_EQ(count, 1);
  EXPECT_EQ(bus.subscription_count(), 0u);
}

TEST(EventBus, DeliveryInSubscriptionOrder) {
  EventBus bus;
  std::vector<int> order;
  bus.subscribe("x", [&](const Event&) { order.push_back(1); });
  bus.subscribe("x", [&](const Event&) { order.push_back(2); });
  bus.publish("x", "t");
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventBus, HandlerMayPublishReentrantly) {
  EventBus bus;
  int second = 0;
  bus.subscribe("first", [&](const Event&) { bus.publish("second", "t"); });
  bus.subscribe("second", [&](const Event&) { ++second; });
  bus.publish("first", "t");
  EXPECT_EQ(second, 1);
}

TEST(EventBus, PayloadCarriedThrough) {
  EventBus bus;
  model::Value received;
  bus.subscribe("x", [&](const Event& e) { received = e.payload; });
  bus.publish("x", "src", model::Value(42));
  EXPECT_EQ(received, model::Value(42));
}

// --------------------------------------------------------------- Executor

TEST(Executor, RunsSubmittedTasks) {
  Executor executor(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    executor.submit([&counter] { ++counter; });
  }
  executor.drain();
  EXPECT_EQ(counter.load(), 100);
}

TEST(Executor, DrainWaitsForInFlightWork) {
  Executor executor(2);
  std::atomic<bool> done{false};
  executor.submit([&done] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    done = true;
  });
  executor.drain();
  EXPECT_TRUE(done.load());
}

TEST(Executor, WorkersMaySubmitMoreWork) {
  Executor executor(2);
  std::atomic<int> counter{0};
  executor.submit([&] {
    for (int i = 0; i < 10; ++i) {
      executor.submit([&counter] { ++counter; });
    }
  });
  executor.drain();
  EXPECT_EQ(counter.load(), 10);
}

TEST(Executor, ZeroThreadsClampedToOne) {
  Executor executor(0);
  EXPECT_EQ(executor.thread_count(), 1u);
}

// Regression: a throwing task used to unwind through worker_loop without
// decrementing active_, leaving drain() waiting forever and killing the
// worker thread. Faults must be contained, counted and drained past.
TEST(Executor, ThrowingTaskIsContainedAndCounted) {
  set_log_level(LogLevel::kOff);
  obs::MetricsRegistry metrics;
  Executor executor(2);
  executor.set_metrics(&metrics);
  std::atomic<int> counter{0};
  executor.submit([] { throw std::runtime_error("task fault"); });
  executor.submit([&counter] { ++counter; });
  executor.submit([] { throw 42; });  // non-std::exception payloads too
  executor.submit([&counter] { ++counter; });
  executor.drain();  // must return despite the two faults
  EXPECT_EQ(counter.load(), 2);
  EXPECT_EQ(executor.task_failures(), 2u);
  EXPECT_EQ(metrics.snapshot().counter_value("runtime.executor_task_failures"),
            2u);
  // Workers survive: the pool still runs tasks after the faults.
  executor.submit([&counter] { ++counter; });
  executor.drain();
  EXPECT_EQ(counter.load(), 3);
  set_log_level(LogLevel::kWarn);
}

// --------------------------------------- Executor overload protection (PR 5)

// Regression: submit() after shutdown() used to enqueue into a pool with
// no workers left — the task silently never ran. It must be refused.
TEST(Executor, SubmitAfterShutdownIsRejected) {
  obs::MetricsRegistry metrics;
  Executor executor(1);
  executor.set_metrics(&metrics);
  std::atomic<int> ran{0};
  EXPECT_TRUE(executor.submit([&ran] { ++ran; }).ok());
  executor.shutdown();
  Status late = executor.submit([&ran] { ++ran; });
  EXPECT_EQ(late.code(), ErrorCode::kUnavailable);
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(executor.rejections(), 1u);
  EXPECT_EQ(metrics.snapshot().counter_value("runtime.executor_rejections"),
            1u);
}

// Saturating a bounded kReject queue fails fast — typed status, counter
// bump — and never deadlocks the submitter or the pool.
TEST(Executor, BoundedQueueRejectsAtCapacityWithoutDeadlock) {
  obs::MetricsRegistry metrics;
  Executor executor(ExecutorConfig{.thread_count = 1,
                                   .queue_capacity = 2,
                                   .overflow_policy = OverflowPolicy::kReject});
  executor.set_metrics(&metrics);
  std::atomic<bool> gate{false};
  // Park the single worker so submissions pile up behind it.
  executor.submit([&gate] {
    while (!gate.load()) std::this_thread::yield();
  });
  while (executor.pending() != 0) std::this_thread::yield();
  EXPECT_TRUE(executor.submit([] {}).ok());
  EXPECT_TRUE(executor.submit([] {}).ok());
  Status rejected = executor.submit([] {});
  EXPECT_EQ(rejected.code(), ErrorCode::kUnavailable);
  EXPECT_EQ(executor.pending(), 2u);  // bound held
  EXPECT_EQ(executor.rejections(), 1u);
  EXPECT_EQ(metrics.snapshot().counter_value("runtime.executor_rejections"),
            1u);
  gate = true;
  executor.drain();
  EXPECT_EQ(executor.max_pending(), 2u);  // depth never exceeded capacity
}

// kShedOldest admits the newest work by dropping the oldest queued task;
// the victim's on_shed hook fires exactly once so callers can resolve
// completions for work that never ran.
TEST(Executor, ShedOldestDropsOldestAndKeepsNewest) {
  obs::MetricsRegistry metrics;
  Executor executor(
      ExecutorConfig{.thread_count = 1,
                     .queue_capacity = 2,
                     .overflow_policy = OverflowPolicy::kShedOldest});
  executor.set_metrics(&metrics);
  std::atomic<bool> gate{false};
  executor.submit([&gate] {
    while (!gate.load()) std::this_thread::yield();
  });
  while (executor.pending() != 0) std::this_thread::yield();
  std::vector<int> ran;
  std::atomic<int> shed_calls{0};
  auto make_task = [&ran, &shed_calls](int id) {
    Executor::Task task;
    task.run = [&ran, id] { ran.push_back(id); };
    task.on_shed = [&shed_calls] { ++shed_calls; };
    return task;
  };
  EXPECT_TRUE(executor.submit(make_task(1)).ok());
  EXPECT_TRUE(executor.submit(make_task(2)).ok());
  EXPECT_TRUE(executor.submit(make_task(3)).ok());  // sheds task 1
  EXPECT_EQ(executor.shed_tasks(), 1u);
  EXPECT_EQ(shed_calls.load(), 1);
  gate = true;
  executor.drain();
  EXPECT_EQ(ran, (std::vector<int>{2, 3}));
  EXPECT_EQ(metrics.snapshot().counter_value("runtime.executor_shed"), 1u);
}

// kBlock applies backpressure: the submitter waits for space instead of
// failing, and nothing is lost.
TEST(Executor, BlockPolicyWaitsForSpaceInsteadOfFailing) {
  Executor executor(ExecutorConfig{.thread_count = 1,
                                   .queue_capacity = 1,
                                   .overflow_policy = OverflowPolicy::kBlock});
  std::atomic<bool> gate{false};
  std::atomic<int> ran{0};
  executor.submit([&gate] {
    while (!gate.load()) std::this_thread::yield();
  });
  while (executor.pending() != 0) std::this_thread::yield();
  EXPECT_TRUE(executor.submit([&ran] { ++ran; }).ok());  // fills the queue
  std::atomic<bool> accepted{false};
  std::thread submitter([&] {
    EXPECT_TRUE(executor.submit([&ran] { ++ran; }).ok());
    accepted = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(accepted.load());  // still waiting — not rejected, not lost
  gate = true;
  submitter.join();
  EXPECT_TRUE(accepted.load());
  executor.drain();
  EXPECT_EQ(ran.load(), 2);
  EXPECT_EQ(executor.rejections(), 0u);
}

// The high lane drains before any queued normal work, regardless of
// arrival order.
TEST(Executor, HighLaneOvertakesQueuedNormalWork) {
  Executor executor(ExecutorConfig{.thread_count = 1});
  std::atomic<bool> gate{false};
  std::vector<std::string> order;
  executor.submit([&gate] {
    while (!gate.load()) std::this_thread::yield();
  });
  while (executor.pending() != 0) std::this_thread::yield();
  executor.submit([&order] { order.push_back("normal-1"); });
  executor.submit([&order] { order.push_back("normal-2"); });
  Executor::Task urgent;
  urgent.run = [&order] { order.push_back("high"); };
  urgent.lane = TaskLane::kHigh;
  executor.submit(std::move(urgent));
  gate = true;
  executor.drain();
  EXPECT_EQ(order,
            (std::vector<std::string>{"high", "normal-1", "normal-2"}));
}

// Enqueue→dequeue delay is measured on the injected clock and recorded
// into the "runtime.queue_delay_us" histogram — the signal admission
// control's EWMA feeds on.
TEST(Executor, QueueDelayRecordedOnInjectedClock) {
  obs::MetricsRegistry metrics;
  SimClock sim;
  Executor executor(ExecutorConfig{.thread_count = 1});
  executor.set_metrics(&metrics);
  executor.set_clock(&sim);
  std::atomic<bool> gate{false};
  executor.submit([&gate] {
    while (!gate.load()) std::this_thread::yield();
  });
  while (executor.pending() != 0) std::this_thread::yield();
  executor.submit([] {});  // enqueued at virtual t0
  sim.advance(std::chrono::microseconds(750));
  gate = true;
  executor.drain();
  const auto snapshot = metrics.snapshot();
  const auto* delay = snapshot.histogram("runtime.queue_delay_us");
  ASSERT_NE(delay, nullptr);
  EXPECT_EQ(delay->count, 2u);  // the gate task and the measured task
  EXPECT_GE(delay->sum_us, 750u);
}

// ------------------------------------------------------------ TimerService

TEST(TimerService, FiresInDeadlineOrderWhenDue) {
  SimClock clock;
  TimerService timers(clock);
  std::vector<int> fired;
  timers.schedule(std::chrono::milliseconds(10), [&] { fired.push_back(2); });
  timers.schedule(std::chrono::milliseconds(5), [&] { fired.push_back(1); });
  EXPECT_EQ(timers.run_due(), 0u);  // nothing due yet
  clock.advance(std::chrono::milliseconds(7));
  EXPECT_EQ(timers.run_due(), 1u);
  clock.advance(std::chrono::milliseconds(7));
  EXPECT_EQ(timers.run_due(), 1u);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_EQ(timers.pending(), 0u);
}

TEST(TimerService, CancelPreventsFiring) {
  SimClock clock;
  TimerService timers(clock);
  bool fired = false;
  auto id = timers.schedule(std::chrono::milliseconds(1), [&] { fired = true; });
  EXPECT_TRUE(timers.cancel(id));
  EXPECT_FALSE(timers.cancel(id));  // second cancel: unknown
  clock.advance(std::chrono::milliseconds(5));
  timers.run_due();
  EXPECT_FALSE(fired);
}

TEST(TimerService, CallbackMayScheduleImmediateTimer) {
  SimClock clock;
  TimerService timers(clock);
  int fired = 0;
  timers.schedule(Duration(0), [&] {
    ++fired;
    timers.schedule(Duration(0), [&] { ++fired; });
  });
  EXPECT_EQ(timers.run_due(), 2u);  // chained zero-delay fires same call
  EXPECT_EQ(fired, 2);
}

TEST(TimerService, ThrowingCallbackDoesNotAbortTheDrain) {
  SimClock clock;
  TimerService timers(clock);
  std::vector<int> fired;
  timers.schedule(Duration(1), [&] { fired.push_back(1); });
  timers.schedule(Duration(2), [&]() -> void {
    throw std::runtime_error("timer fault injected");
  });
  timers.schedule(Duration(3), [&] { fired.push_back(3); });
  clock.advance(Duration(10));
  // All three ran (the throwing one counts as fired: it was retired and
  // invoked); the timers behind the fault still fired.
  EXPECT_EQ(timers.run_due(), 3u);
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
  EXPECT_EQ(timers.callback_failures(), 1u);
  EXPECT_EQ(timers.pending(), 0u);
}

TEST(TimerService, CancelScalesViaIdIndex) {
  SimClock clock;
  TimerService timers(clock);
  // Many pending timers, cancelled out of schedule order — the id index
  // must stay in lockstep with the deadline map through the churn.
  std::vector<std::uint64_t> ids;
  int fired = 0;
  for (int i = 0; i < 200; ++i) {
    ids.push_back(timers.schedule(Duration(100 + i), [&] { ++fired; }));
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) {
    EXPECT_TRUE(timers.cancel(ids[i]));
  }
  EXPECT_EQ(timers.pending(), 100u);
  clock.advance(Duration(1'000));
  EXPECT_EQ(timers.run_due(), 100u);
  EXPECT_EQ(fired, 100);
  // Every cancelled and fired id is now unknown.
  for (std::uint64_t id : ids) EXPECT_FALSE(timers.cancel(id));
}

TEST(TimerService, NextDeadlineReported) {
  SimClock clock;
  TimerService timers(clock);
  EXPECT_FALSE(timers.next_deadline().has_value());
  timers.schedule(std::chrono::milliseconds(3), [] {});
  ASSERT_TRUE(timers.next_deadline().has_value());
  EXPECT_EQ(*timers.next_deadline(), clock.now() + Duration(3000));
}

}  // namespace
}  // namespace mdsm::runtime
