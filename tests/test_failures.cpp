// Cross-cutting failure injection: resources failing mid-action, invalid
// domain operations surfacing through four layers, lossy networks under
// split deployments, and autonomic plans that cannot execute. The
// platform must degrade loudly (counted, logged) but never wedge.
#include <gtest/gtest.h>

#include "domains/comm/cvm.hpp"
#include "domains/crowd/fleet.hpp"
#include "domains/mgrid/mgridvm.hpp"
#include "domains/smartspace/ssvm.hpp"

namespace mdsm {
namespace {

using model::Value;

TEST(FailureInjection, InvalidDomainOperationSurfacesAsControllerError) {
  // A CML model that opens media with only one participant: the service
  // rejects it (needs ≥ 2 parties); the error must propagate to the
  // controller's error counter and to the synthesis layer's event log —
  // and the platform must keep serving afterwards.
  auto cvm = comm::make_cvm();
  ASSERT_TRUE(cvm.ok());
  core::Platform& platform = *(*cvm)->platform;
  auto script = platform.submit_model_text(R"(
model lonely conforms cml
object Connection c1 {
  state = active
  child participants Participant solo { address = "s@h" }
  child media Medium voice { kind = audio }
}
)");
  // Dispatch succeeds (the script was delivered); the command failure is
  // reported through the event path, not as a submission failure.
  ASSERT_TRUE(script.ok()) << script.status().to_string();
  EXPECT_EQ(platform.controller().stats().errors, 1u);
  EXPECT_GE(platform.synthesis().stats().controller_events, 1u);
  ASSERT_FALSE(platform.synthesis().event_log().empty());
  EXPECT_NE(platform.synthesis().event_log()[0].find("media.open"),
            std::string::npos);
  // The runtime model committed "voice" even though its command failed
  // (commands are at-most-once; the model states intent, not success),
  // so re-submitting the same media id does not retry. A follow-up model
  // with a fresh media element executes fully — the platform is healthy.
  auto follow_up = platform.submit_model_text(R"(
model fixed conforms cml
object Connection c1 {
  state = active
  child participants Participant solo { address = "s@h" }
  child participants Participant peer { address = "p@h" }
  child media Medium voice2 { kind = audio }
}
)");
  ASSERT_TRUE(follow_up.ok()) << follow_up.status().to_string();
  EXPECT_NE((*cvm)->service.find_session("c1"), nullptr);
  EXPECT_TRUE(
      (*cvm)->service.find_session("c1")->streams.contains("voice2"));
}

TEST(FailureInjection, AutonomicPlanFailureIsLoggedNotFatal) {
  // The rebalance plan sheds a load that turns out to be critical: the
  // plant refuses, the adaptation is counted as attempted, the platform
  // survives.
  auto vm = mgrid::make_mgridvm();
  ASSERT_TRUE(vm.ok());
  core::Platform& platform = *(*vm)->platform;
  platform.context().set("load.sheddable", Value("icu"));  // wrong target
  ASSERT_TRUE(platform
                  .submit_model_text(R"(
model bad conforms mgridml
object Microgrid grid {
  child devices Generator g { capacity_kw = 2.0 running = true setpoint_kw = 1.0 }
  child devices Load icu { demand_kw = 5.0 critical = true }
}
)")
                  .ok());
  // Plan fired (symptom detected) but the shed was refused.
  EXPECT_GE(platform.broker().autonomic().symptoms_detected(), 1u);
  EXPECT_TRUE((*vm)->plant.load("icu")->connected);
  EXPECT_LT((*vm)->plant.net_power_kw(), 0.0);  // honest: still unbalanced
  // The trace shows the attempted shed (issued, then refused).
  bool attempted = false;
  for (const std::string& entry : platform.trace().entries()) {
    if (entry.find("load.shed") != std::string::npos) attempted = true;
  }
  EXPECT_TRUE(attempted);
}

TEST(FailureInjection, LossyNetworkDropsInstallButSpaceStaysConsistent) {
  // 100% message loss between hub and objects: commands evaporate, but
  // neither side errors and a healed network recovers on resubmission.
  auto space = smartspace::make_smart_space();
  space->add_object("lamp", "light");
  space->network.set_link_down("hub", "lamp", true);
  ASSERT_TRUE(space->hub
                  ->submit_model_text(R"(
model m conforms ssml
object SmartSpace room {
  child objects SmartObject lamp { kind = light power = true }
}
)")
                  .ok());
  space->pump();
  EXPECT_FALSE(space->nodes.at("lamp")->device().power);  // never arrived
  EXPECT_GT(space->network.stats().blocked, 0u);
  // Heal and resubmit (a model *change* so the synthesis re-emits).
  space->network.set_link_down("hub", "lamp", false);
  ASSERT_TRUE(space->hub
                  ->submit_model_text(R"(
model m conforms ssml
object SmartSpace room {
  child objects SmartObject lamp { kind = light power = true level = 5 }
}
)")
                  .ok());
  space->pump();
  EXPECT_EQ(space->nodes.at("lamp")->device().level, 5);
}

TEST(FailureInjection, PartitionedDevicesLoseReportsUntilHealed) {
  auto fleet = crowd::make_fleet();
  auto& near_device = fleet->add_device("near", 1);
  auto& far_device = fleet->add_device("far", 2);
  constexpr std::string_view kQuery = R"(
model q conforms csml
object SensingQuery t { sensor = temperature period_s = 10 }
)";
  ASSERT_TRUE(near_device.submit_model_text(kQuery).ok());
  ASSERT_TRUE(far_device.submit_model_text(kQuery).ok());
  // Partition: "far" cannot reach the provider.
  fleet->network.set_partition({"provider", "near"});
  fleet->advance(std::chrono::seconds(10), 3);
  EXPECT_EQ(near_device.samples_sent(), 3u);
  EXPECT_EQ(far_device.samples_sent(), 3u);  // it samples, but...
  EXPECT_EQ(fleet->provider->query("t")->count, 3u);  // ...only near lands
  EXPECT_GT(fleet->network.stats().blocked, 0u);
  // Heal: both contribute again (lost reports stay lost — datagrams).
  fleet->network.clear_partition();
  fleet->advance(std::chrono::seconds(10), 2);
  EXPECT_EQ(fleet->provider->query("t")->count, 7u);  // 3 + 2×2
}

TEST(FailureInjection, MidScriptFailureDoesNotWedgeRemainingCommands) {
  // Script with a failing command in the middle: processing continues.
  auto cvm = comm::make_cvm();
  ASSERT_TRUE(cvm.ok());
  controller::ControllerLayer& ucm = (*cvm)->platform->controller();
  controller::ControlScript script;
  script.commands = {
      {"ncb.session.create", {{"id", Value("ok1")}}},
      {"ncb.party.add",
       {{"session", Value("ghost")}, {"address", Value("a")}}},  // fails
      {"ncb.session.create", {{"id", Value("ok2")}}},
  };
  ASSERT_TRUE(ucm.submit_script(script).ok());
  EXPECT_EQ(ucm.process_pending(), 3u);
  EXPECT_EQ(ucm.stats().errors, 1u);
  EXPECT_NE((*cvm)->service.find_session("ok1"), nullptr);
  EXPECT_NE((*cvm)->service.find_session("ok2"), nullptr);
}

TEST(FailureInjection, PlatformRestartKeepsConfiguredBehaviour) {
  auto cvm = comm::make_cvm();
  ASSERT_TRUE(cvm.ok());
  core::Platform& platform = *(*cvm)->platform;
  ASSERT_TRUE(platform.stop().ok());
  EXPECT_EQ(platform
                .submit_model_text("model x conforms cml\n"
                                   "object Connection c { state = active }\n")
                .status()
                .code(),
            ErrorCode::kFailedPrecondition);
  ASSERT_TRUE(platform.start().ok());
  EXPECT_TRUE(platform
                  .submit_model_text(
                      "model x conforms cml\n"
                      "object Connection c { state = active }\n")
                  .ok());
  EXPECT_NE((*cvm)->service.find_session("c"), nullptr);
}

TEST(FailureInjection, TwoPlatformsFromSameModelAreIsolated) {
  auto first = comm::make_cvm();
  auto second = comm::make_cvm();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE((*first)
                  ->platform
                  ->submit_model_text(
                      "model a conforms cml\n"
                      "object Connection only-in-first { state = active }\n")
                  .ok());
  EXPECT_NE((*first)->service.find_session("only-in-first"), nullptr);
  EXPECT_EQ((*second)->service.find_session("only-in-first"), nullptr);
  EXPECT_EQ((*second)->platform->trace().size(), 0u);
  // Context stores are independent too.
  (*first)->platform->context().set("bandwidth", Value(9.0));
  EXPECT_TRUE((*second)->platform->context().get("bandwidth").is_none());
}

}  // namespace
}  // namespace mdsm
