// Overload protection across the four layers (PR 5): model-driven
// bounded-queue + admission configuration, UI-layer load shedding,
// callback exception containment, and a concurrent ledger soak proving
// every async submission is accounted for exactly once.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hpp"
#include "core/platform.hpp"
#include "soak_fixtures.hpp"

namespace mdsm::core {
namespace {

/// The soak middleware model with extra MiddlewarePlatform attributes
/// spliced in after `domain` — the model-driven configuration path the
/// overload subsystem is decoded from.
std::string overload_model_text(std::string_view extra_attrs) {
  std::string text(soak::kSoakMiddlewareModel);
  const std::string anchor = "domain = \"testing\"";
  text.insert(text.find(anchor) + anchor.size(),
              "\n  " + std::string(extra_attrs));
  return text;
}

struct OverloadPlatform {
  model::MetamodelPtr dsml;
  std::unique_ptr<Platform> platform;
  soak::CountingAdapter* svc = nullptr;
};

OverloadPlatform make_overload_platform(std::string_view extra_attrs,
                                        unsigned pipeline_threads = 2) {
  OverloadPlatform out;
  out.dsml = model::testing::make_test_metamodel();
  PlatformConfig config;
  config.dsml = out.dsml;
  config.pipeline_threads = pipeline_threads;
  auto assembled =
      Platform::assemble_from_text(overload_model_text(extra_attrs), config);
  if (!assembled.ok()) return out;
  out.platform = std::move(assembled.value());
  auto svc = std::make_unique<soak::CountingAdapter>("svc");
  out.svc = svc.get();
  if (!out.platform->add_resource_adapter(std::move(svc)).ok() ||
      !out.platform->start().ok()) {
    out.platform.reset();
  }
  return out;
}

TEST(Overload, ConfigDecodedFromMiddlewareModel) {
  auto fixture = make_overload_platform(
      "queue_capacity = 8\n"
      "  overflow_policy = shed-oldest\n"
      "  admission = true\n"
      "  admission_alpha = 0.5\n"
      "  admission_safety = 2.0");
  ASSERT_NE(fixture.platform, nullptr);
  EXPECT_EQ(fixture.platform->pipeline_stats().queue_capacity, 8u);
  const AdmissionConfig& admission = fixture.platform->admission().config();
  EXPECT_TRUE(admission.enabled);
  EXPECT_DOUBLE_EQ(admission.ewma_alpha, 0.5);
  EXPECT_DOUBLE_EQ(admission.safety_factor, 2.0);
  EXPECT_TRUE(fixture.platform->stop().ok());
}

TEST(Overload, DefaultsReproduceUnboundedAdmitEverything) {
  auto fixture = make_overload_platform("");
  ASSERT_NE(fixture.platform, nullptr);
  EXPECT_EQ(fixture.platform->pipeline_stats().queue_capacity, 0u);
  EXPECT_FALSE(fixture.platform->admission().config().enabled);
  EXPECT_TRUE(fixture.platform->stop().ok());
}

TEST(Overload, AdmissionShedsExpiredDeadline) {
  auto fixture = make_overload_platform("admission = true");
  ASSERT_NE(fixture.platform, nullptr);
  Platform& platform = *fixture.platform;
  std::vector<std::string> shed_reasons;
  platform.bus().subscribe("request.shed", [&](const runtime::Event& event) {
    ASSERT_TRUE(event.payload.is_list());
    shed_reasons.push_back(event.payload.as_list()[0].as_string());
  });
  auto context = platform.make_context(Duration(0));  // budget already spent
  auto outcome =
      platform.submit_model_text(soak::open_session_text("s1"), context);
  EXPECT_EQ(outcome.status().code(), ErrorCode::kTimeout);
  EXPECT_EQ(platform.metrics().snapshot().counter_value("ui.shed_expired"),
            1u);
  EXPECT_EQ(shed_reasons, std::vector<std::string>{"expired"});
  EXPECT_EQ(fixture.svc->executed(), 0u);  // shed before any layer ran
  EXPECT_TRUE(platform.stop().ok());
}

TEST(Overload, AdmissionShedsWhenBudgetBelowPredictedLatency) {
  auto fixture = make_overload_platform("admission = true");
  ASSERT_NE(fixture.platform, nullptr);
  Platform& platform = *fixture.platform;
  std::vector<std::string> shed_reasons;
  platform.bus().subscribe("request.shed", [&](const runtime::Event& event) {
    shed_reasons.push_back(event.payload.as_list()[0].as_string());
  });
  // Prime the EWMA as if the pipeline were slow: 50ms per request.
  platform.admission().record_latency(std::chrono::milliseconds(50));
  EXPECT_GE(platform.admission().predicted_latency(),
            std::chrono::milliseconds(50));
  // 10ms of budget cannot cover 50ms of predicted latency: shed as
  // doomed. (Not 1ms — a sanitizer build on a loaded core can burn a
  // tight budget between make_context and the admission check, which
  // would reclassify the shed as "expired" and flake the test.)
  auto doomed = platform.make_context(std::chrono::milliseconds(10));
  auto outcome =
      platform.submit_model_text(soak::open_session_text("s1"), doomed);
  EXPECT_EQ(outcome.status().code(), ErrorCode::kUnavailable);
  EXPECT_EQ(platform.metrics().snapshot().counter_value("ui.shed_predicted"),
            1u);
  EXPECT_EQ(shed_reasons, std::vector<std::string>{"predicted"});
  // A generous budget is admitted and executes normally — and its
  // observed latency drags the EWMA back down.
  auto healthy = platform.make_context(std::chrono::seconds(5));
  EXPECT_TRUE(platform
                  .submit_model_text(soak::open_session_text("s2"), healthy)
                  .ok());
  EXPECT_LT(platform.admission().predicted_latency(),
            std::chrono::milliseconds(50));
  EXPECT_TRUE(platform.stop().ok());
}

TEST(Overload, RequestsWithoutDeadlinesAreAlwaysAdmitted) {
  auto fixture = make_overload_platform("admission = true");
  ASSERT_NE(fixture.platform, nullptr);
  Platform& platform = *fixture.platform;
  platform.admission().record_latency(std::chrono::seconds(10));
  auto context = platform.make_context();  // no deadline, no basis to shed
  EXPECT_TRUE(platform
                  .submit_model_text(soak::open_session_text("s1"), context)
                  .ok());
  EXPECT_TRUE(platform.stop().ok());
}

// Satellite: a throwing SubmitCallback must be contained on the worker —
// counted, logged — and never tear down the pipeline.
TEST(Overload, ThrowingAsyncCallbackIsContained) {
  set_log_level(LogLevel::kOff);
  auto fixture = make_overload_platform("");
  ASSERT_NE(fixture.platform, nullptr);
  Platform& platform = *fixture.platform;
  std::atomic<int> invoked{0};
  std::atomic<int> delivered{0};
  ASSERT_TRUE(platform
                  .submit_async(soak::open_session_text("s1"),
                                [&invoked](Result<controller::ControlScript>) {
                                  ++invoked;
                                  throw std::runtime_error("consumer bug");
                                })
                  .ok());
  ASSERT_TRUE(platform
                  .submit_async(soak::open_session_text("s2"),
                                [&invoked, &delivered](
                                    Result<controller::ControlScript> r) {
                                  ++invoked;
                                  if (r.ok()) ++delivered;
                                })
                  .ok());
  // Wait out both completions before stop() so neither submission loses
  // the race against the running_ gate.
  while (invoked.load() != 2) std::this_thread::yield();
  EXPECT_TRUE(platform.stop().ok());  // drains the pipeline
  EXPECT_EQ(platform.metrics().snapshot().counter_value(
                "ui.callback_failures"),
            1u);
  EXPECT_EQ(delivered.load(), 1);  // the pool survived the throwing callback
  set_log_level(LogLevel::kWarn);
}

// Async submissions open a "runtime.queue" span at enqueue and close it
// at dequeue, so queue delay lands in the latency histograms.
TEST(Overload, AsyncQueueDelaySpanRecorded) {
  auto fixture = make_overload_platform("");
  ASSERT_NE(fixture.platform, nullptr);
  Platform& platform = *fixture.platform;
  std::atomic<int> done{0};
  SubmitOptions options;
  options.deadline = std::chrono::seconds(5);
  options.high_priority = true;
  ASSERT_TRUE(platform
                  .submit_async(soak::open_session_text("s1"),
                                [&done](Result<controller::ControlScript> r) {
                                  if (r.ok()) ++done;
                                },
                                options)
                  .ok());
  while (done.load() != 1) std::this_thread::yield();  // beat the stop() gate
  EXPECT_TRUE(platform.stop().ok());
  EXPECT_EQ(done.load(), 1);
  const auto snapshot = platform.metrics().snapshot();
  const auto* queue_span = snapshot.histogram("latency.runtime.queue");
  ASSERT_NE(queue_span, nullptr);
  EXPECT_EQ(queue_span->count, 1u);
  const auto* queue_delay = snapshot.histogram("runtime.queue_delay_us");
  ASSERT_NE(queue_delay, nullptr);
  // The staged pipeline (PR 6) makes one executor submission per stage
  // hop, so a single request leaves several queue-delay samples.
  EXPECT_GE(queue_delay->count, 1u);
}

// The ledger soak (satellite): concurrent submitters against a small
// bounded shed-oldest queue with chaos faults in the resource layer.
// Every submission resolves exactly once: refused at the door, shed from
// the queue (callback gets kUnavailable), or completed (ok or failed).
TEST(Overload, ConcurrentLedgerAccountsForEverySubmission) {
  set_log_level(LogLevel::kOff);
  // Assemble by hand so chaos wraps the counting adapter.
  auto dsml = model::testing::make_test_metamodel();
  PlatformConfig config;
  config.dsml = dsml;
  config.pipeline_threads = 2;
  auto assembled = Platform::assemble_from_text(
      overload_model_text("queue_capacity = 4\n"
                          "  overflow_policy = shed-oldest"),
      config);
  ASSERT_TRUE(assembled.ok()) << assembled.status().message();
  auto platform = std::move(assembled.value());
  broker::ChaosConfig chaos;
  chaos.fail_rate = 0.2;
  chaos.throw_rate = 0.05;
  auto inner = std::make_unique<soak::CountingAdapter>("svc");
  ASSERT_TRUE(platform
                  ->add_resource_adapter(std::make_unique<broker::ChaosAdapter>(
                      std::move(inner), chaos))
                  .ok());
  ASSERT_TRUE(platform->start().ok());

  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::atomic<int> accepted{0};
  std::atomic<int> refused{0};
  std::atomic<int> completed_ok{0};
  std::atomic<int> completed_failed{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        std::string id = "s" + std::to_string(t) + "_" + std::to_string(i);
        Status status = platform->submit_async(
            soak::open_session_text(id),
            [&](Result<controller::ControlScript> outcome) {
              if (outcome.ok()) {
                ++completed_ok;
              } else {
                ++completed_failed;
              }
            });
        if (status.ok()) {
          ++accepted;
        } else {
          EXPECT_EQ(status.code(), ErrorCode::kUnavailable);
          ++refused;
        }
      }
    });
  }
  for (auto& thread : submitters) thread.join();
  EXPECT_TRUE(platform->stop().ok());  // drains every queued submission

  // The ledger balances: nothing lost, nothing double-counted.
  EXPECT_EQ(accepted.load() + refused.load(), kThreads * kPerThread);
  EXPECT_EQ(completed_ok.load() + completed_failed.load(), accepted.load());
  const Platform::PipelineStats stats = platform->pipeline_stats();
  // The bound held under pressure. On the staged pipeline the bound
  // governs entry submissions only — continuation hops of admitted
  // requests ride above it — so the bounded gauge is the one to check.
  EXPECT_LE(stats.max_bounded_pending, 4u);
  // Shed tasks resolved through their callbacks (counted as failed) and
  // in the shed counter; with shed-oldest the door never refuses.
  EXPECT_EQ(refused.load(), static_cast<int>(stats.rejections));
  EXPECT_GE(completed_failed.load(), static_cast<int>(stats.shed));
  set_log_level(LogLevel::kWarn);
}

}  // namespace
}  // namespace mdsm::core
