// Concurrent request pipeline tests (PR 3): submissions with disjoint
// root DSCs genuinely overlap in time (the trace spans prove it), the
// sharded IM cache never serves a stale intent model across a
// DscRegistry::remove, and Platform::stop() drains in-flight pipelined
// submissions cleanly.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "broker/broker_api.hpp"
#include "broker/chaos_adapter.hpp"
#include "common/log.hpp"
#include "controller/controller_layer.hpp"
#include "core/platform.hpp"
#include "model_fixtures.hpp"
#include "runtime/event_bus.hpp"
#include "soak_fixtures.hpp"

namespace mdsm {
namespace {

struct SilenceLogs : ::testing::Test {
  void SetUp() override { set_log_level(LogLevel::kOff); }
  void TearDown() override { set_log_level(LogLevel::kWarn); }
};

using PipelineTest = SilenceLogs;

// ------------------------------------------------------------------
// (a) Two submissions with disjoint root DSCs overlap in time.
// ------------------------------------------------------------------

/// Middleware model with two independent request families: adding a
/// Session synthesizes "alpha.run" (DSC dsc.alpha), adding a Media
/// synthesizes "beta.run" (DSC dsc.beta). Both bottom out in one
/// resource ("svc") whose adapter acts as a rendezvous barrier.
constexpr std::string_view kDualDscModel = R"mw(
model pipeline_platform conforms mdsm

object MiddlewarePlatform mw {
  name = "pipeline-platform"
  domain = "testing"
  child ui UiLayerSpec ui1 { dsml = "testlang" }

  child broker BrokerLayerSpec b1 {
    child actions ActionSpec act-alpha {
      name = "bk-alpha"
      child steps StepSpec s1 {
        op = invoke
        a = "svc"
        b = "alpha"
        child args ArgSpec a1 { key = "id" value = "$id" }
      }
    }
    child actions ActionSpec act-beta {
      name = "bk-beta"
      child steps StepSpec s2 {
        op = invoke
        a = "svc"
        b = "beta"
        child args ArgSpec a2 { key = "id" value = "$id" }
      }
    }
    child handlers HandlerSpec h1 { signal = "svc.alpha" actions -> act-alpha }
    child handlers HandlerSpec h2 { signal = "svc.beta" actions -> act-beta }
    child resources ResourceSpec r1 { name = "svc" }
  }

  child controller ControllerLayerSpec c1 {
    child dscs DscSpec d1 { name = "dsc.alpha" category = "alpha" }
    child dscs DscSpec d2 { name = "dsc.beta" category = "beta" }
    child procedures ProcedureSpec pr1 {
      name = "proc-alpha"
      classifier = "dsc.alpha"
      child units EuSpec eu1 {
        child steps StepSpec t1 {
          op = broker-call
          a = "svc.alpha"
          child args ArgSpec b1a { key = "id" value = "$id" }
        }
      }
    }
    child procedures ProcedureSpec pr2 {
      name = "proc-beta"
      classifier = "dsc.beta"
      child units EuSpec eu2 {
        child steps StepSpec t2 {
          op = broker-call
          a = "svc.beta"
          child args ArgSpec b2a { key = "id" value = "$id" }
        }
      }
    }
    child mappings CommandMappingSpec m1 { command = "alpha.run" dsc = "dsc.alpha" }
    child mappings CommandMappingSpec m2 { command = "beta.run" dsc = "dsc.beta" }
  }

  child synthesis SynthesisLayerSpec syn1 {
    initial_state = "initial"
    child transitions TransitionSpec tr1 {
      from = "initial"
      to = "alpha-live"
      kind = add-object
      class = "Session"
      child commands CommandTemplateSpec ct1 {
        name = "alpha.run"
        child args ArgSpec sa1 { key = "id" value = "%id" }
      }
    }
    child transitions TransitionSpec tr2 {
      from = "initial"
      to = "beta-live"
      kind = add-object
      class = "Media"
      child commands CommandTemplateSpec ct2 {
        name = "beta.run"
        child args ArgSpec sa2 { key = "id" value = "%id" }
      }
    }
  }
}
)mw";

/// Rendezvous adapter: each execute() blocks until `expected` calls are
/// simultaneously inside it. Only possible when the requests that issue
/// them run concurrently — a serialized pipeline times out instead.
class BarrierAdapter final : public broker::ResourceAdapter {
 public:
  BarrierAdapter(std::string name, int expected)
      : ResourceAdapter(std::move(name)), expected_(expected) {}

  Result<model::Value> execute(const std::string& command,
                               const broker::Args& args) override {
    (void)command;
    (void)args;
    std::unique_lock lock(mutex_);
    ++arrived_;
    cv_.notify_all();
    bool met = cv_.wait_for(lock, std::chrono::seconds(10),
                            [this] { return arrived_ >= expected_; });
    if (!met) {
      timed_out_.store(true, std::memory_order_relaxed);
      return Timeout("rendezvous never met: pipeline serialized?");
    }
    return model::Value(true);
  }

  [[nodiscard]] bool timed_out() const noexcept {
    return timed_out_.load(std::memory_order_relaxed);
  }

 private:
  int expected_;
  int arrived_ = 0;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::atomic<bool> timed_out_{false};
};

TEST_F(PipelineTest, DisjointRootDscSubmissionsOverlapInTime) {
  core::PlatformConfig config;
  config.dsml = model::testing::make_test_metamodel();
  auto assembled = core::Platform::assemble_from_text(kDualDscModel, config);
  ASSERT_TRUE(assembled.ok()) << assembled.status().to_string();
  core::Platform& platform = **assembled;
  auto barrier = std::make_unique<BarrierAdapter>("svc", 2);
  BarrierAdapter* barrier_ptr = barrier.get();
  ASSERT_TRUE(platform.add_resource_adapter(std::move(barrier)).ok());
  ASSERT_TRUE(platform.start().ok());

  obs::RequestContext context_a = platform.make_context();
  obs::RequestContext context_b = platform.make_context();
  Status status_a = Internal("not run");
  Status status_b = Internal("not run");
  std::thread thread_a([&] {
    status_a = platform
                   .submit_model_text("model a conforms testlang\n"
                                      "object Session sA { state = open }\n",
                                      context_a)
                   .status();
  });
  std::thread thread_b([&] {
    status_b = platform
                   .submit_model_text("model b conforms testlang\n"
                                      "object Media mB { kind = audio }\n",
                                      context_b)
                   .status();
  });
  thread_a.join();
  thread_b.join();

  // Both requests reached the rendezvous simultaneously: neither timed
  // out, so each was inside its broker call while the other was too.
  EXPECT_FALSE(barrier_ptr->timed_out());
  EXPECT_TRUE(status_a.ok()) << status_a.to_string();
  EXPECT_TRUE(status_b.ok()) << status_b.to_string();

  // The trace spans prove the interleaving on the shared steady clock:
  // each request's broker.call interval contains part of the other's.
  const obs::Span* span_a = context_a.trace().find("broker.call");
  const obs::Span* span_b = context_b.trace().find("broker.call");
  ASSERT_NE(span_a, nullptr);
  ASSERT_NE(span_b, nullptr);
  EXPECT_TRUE(span_a->closed);
  EXPECT_TRUE(span_b->closed);
  EXPECT_LT(span_a->start, span_b->end);
  EXPECT_LT(span_b->start, span_a->end);

  EXPECT_TRUE(platform.stop().ok());
}

// ------------------------------------------------------------------
// (b) DscRegistry::remove mid-flight never serves a stale IM.
// ------------------------------------------------------------------

class NullBroker : public broker::BrokerApi {
 public:
  using broker::BrokerApi::call;
  Result<model::Value> call(const broker::Call&,
                            obs::RequestContext&) override {
    return model::Value(true);
  }
  [[nodiscard]] const broker::CommandTrace& trace() const override {
    return trace_;
  }

 private:
  broker::CommandTrace trace_;
};

controller::Procedure make_procedure(const std::string& name,
                                     const std::string& classifier) {
  controller::Procedure procedure;
  procedure.name = name;
  procedure.classifier = classifier;
  procedure.units = {{controller::noop()}};
  return procedure;
}

TEST_F(PipelineTest, DscRemovalInvalidatesCachedIntentModel) {
  NullBroker broker;
  runtime::EventBus bus;
  policy::ContextStore context;
  controller::ControllerLayer layer("pipeline", broker, bus, context);
  ASSERT_TRUE(
      layer.dscs().add({"op", controller::DscKind::kOperation, "", ""}).ok());
  ASSERT_TRUE(layer.add_procedure(make_procedure("p1", "op")).ok());

  auto& generator = layer.generator();
  auto warm = generator.generate_cached("op",
                                        controller::SelectionStrategy::kMinCost);
  ASSERT_TRUE(warm.ok()) << warm.status().to_string();
  auto hit = generator.generate_cached("op",
                                       controller::SelectionStrategy::kMinCost);
  ASSERT_TRUE(hit.ok());
  const auto warmed = generator.stats();
  EXPECT_GE(warmed.cache_hits, 1u);

  // Remove the root DSC: the cached entry's dsc_version is now stale, so
  // the next lookup regenerates and observes the removal instead of
  // serving the old IM.
  ASSERT_TRUE(layer.dscs().remove("op").ok());
  auto stale = generator.generate_cached(
      "op", controller::SelectionStrategy::kMinCost);
  EXPECT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), ErrorCode::kNotFound);
  const auto after_remove = generator.stats();
  EXPECT_EQ(after_remove.cache_hits, warmed.cache_hits);

  // Re-adding the DSC serves a freshly generated IM, not the old entry.
  ASSERT_TRUE(
      layer.dscs().add({"op", controller::DscKind::kOperation, "", ""}).ok());
  auto fresh = generator.generate_cached(
      "op", controller::SelectionStrategy::kMinCost);
  ASSERT_TRUE(fresh.ok()) << fresh.status().to_string();
  EXPECT_GT(generator.stats().cache_misses, warmed.cache_misses);
}

TEST_F(PipelineTest, ConcurrentReadersNeverSeeStaleImAcrossRemoval) {
  NullBroker broker;
  runtime::EventBus bus;
  policy::ContextStore context;
  controller::ControllerLayer layer("pipeline", broker, bus, context);
  ASSERT_TRUE(
      layer.dscs().add({"op", controller::DscKind::kOperation, "", ""}).ok());
  ASSERT_TRUE(layer.add_procedure(make_procedure("p1", "op")).ok());

  // Hammer the cached path from readers while the DSC is repeatedly
  // removed and re-added. Every successful result must be an IM for a
  // registered "op"; failures must be the removal surfacing (NotFound),
  // never a crash, torn read, or stale success after the final removal.
  constexpr int kReadsPerThread = 300;
  std::atomic<std::uint64_t> ok_count{0};
  std::atomic<std::uint64_t> not_found{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < kReadsPerThread; ++i) {
        auto intent = layer.generator().generate_cached(
            "op", controller::SelectionStrategy::kMinCost);
        if (intent.ok()) {
          EXPECT_EQ((*intent)->root_dsc, "op");
          ok_count.fetch_add(1, std::memory_order_relaxed);
        } else {
          EXPECT_EQ(intent.status().code(), ErrorCode::kNotFound);
          not_found.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(layer.dscs().remove("op").ok());
    ASSERT_TRUE(
        layer.dscs().add({"op", controller::DscKind::kOperation, "", ""})
            .ok());
    std::this_thread::yield();
  }
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(ok_count.load() + not_found.load(), 2u * kReadsPerThread);

  // The DSC ended registered, so a read with no concurrent mutator must
  // succeed (and must be a fresh post-churn generation, not a crash).
  auto settled = layer.generator().generate_cached(
      "op", controller::SelectionStrategy::kMinCost);
  ASSERT_TRUE(settled.ok()) << settled.status().to_string();
  EXPECT_EQ((*settled)->root_dsc, "op");

  // Quiescent post-condition: with the DSC finally removed, the cache
  // must refuse to serve the (still stored) old entry.
  ASSERT_TRUE(layer.dscs().remove("op").ok());
  auto stale = layer.generator().generate_cached(
      "op", controller::SelectionStrategy::kMinCost);
  EXPECT_FALSE(stale.ok());
}

// ------------------------------------------------------------------
// (c) Platform::stop() drains in-flight pipelined submissions cleanly.
// ------------------------------------------------------------------

TEST_F(PipelineTest, StopDrainsInflightPipelinedSubmissions) {
  // Every resource call stalls 1 ms so submissions are genuinely
  // in-flight when stop() lands.
  broker::ChaosConfig chaos;
  chaos.delay_rate = 1.0;
  chaos.delay = Duration(1000);
  auto soaked = soak::make_soak_platform(chaos);
  ASSERT_TRUE(soaked.ok()) << soaked.status.to_string();
  core::Platform& platform = *soaked.platform;

  constexpr int kSubmissions = 32;
  std::mutex done_mutex;
  int completed = 0;
  int ok_count = 0;
  int rejected = 0;
  for (int i = 0; i < kSubmissions; ++i) {
    Status queued = platform.submit_async(
        soak::open_session_text("d" + std::to_string(i)),
        [&](Result<controller::ControlScript> script) {
          std::lock_guard lock(done_mutex);
          ++completed;
          if (script.ok()) {
            ++ok_count;
          } else {
            ++rejected;
          }
        });
    ASSERT_TRUE(queued.ok()) << queued.to_string();
  }

  // Let some requests get in flight, then stop mid-stream. stop() must
  // drain the pipeline: when it returns, every submission has resolved
  // exactly once — completed before the stop, or rejected by it.
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  ASSERT_TRUE(platform.stop().ok());
  EXPECT_FALSE(platform.running());
  {
    std::lock_guard lock(done_mutex);
    EXPECT_EQ(completed, kSubmissions);
    EXPECT_EQ(ok_count + rejected, kSubmissions);
  }

  // New submissions after stop are rejected, synchronously and async.
  obs::RequestContext context = platform.make_context();
  EXPECT_FALSE(
      platform.submit_model_text(soak::open_session_text("late"), context)
          .ok());
  // stop() is idempotent.
  EXPECT_TRUE(platform.stop().ok());
}

}  // namespace
}  // namespace mdsm
