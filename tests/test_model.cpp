// Unit tests for the metamodeling facility: Value, Metamodel, Model.
#include <gtest/gtest.h>

#include "model/metamodel.hpp"
#include "model/model.hpp"
#include "model_fixtures.hpp"

namespace mdsm::model {
namespace {

using testing::make_test_metamodel;
using testing::make_test_model;

// ---------------------------------------------------------------- Value

TEST(Value, KindsAndAccessors) {
  EXPECT_TRUE(Value().is_none());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(7).is_int());
  EXPECT_TRUE(Value(3.5).is_real());
  EXPECT_TRUE(Value("hi").is_string());
  EXPECT_TRUE(Value(ValueList{Value(1)}).is_list());
  EXPECT_EQ(Value(7).as_int(), 7);
  EXPECT_DOUBLE_EQ(Value(3.5).as_real(), 3.5);
  EXPECT_EQ(Value("hi").as_string(), "hi");
  EXPECT_DOUBLE_EQ(Value(7).as_number(), 7.0);
  EXPECT_TRUE(Value(7).is_number());
  EXPECT_TRUE(Value(7.0).is_number());
  EXPECT_FALSE(Value("7").is_number());
}

TEST(Value, Equality) {
  EXPECT_EQ(Value(1), Value(1));
  EXPECT_NE(Value(1), Value(1.0));  // kinds differ
  EXPECT_NE(Value(1), Value(2));
  EXPECT_EQ(Value(ValueList{Value("a")}), Value(ValueList{Value("a")}));
  EXPECT_EQ(Value(), Value());
}

TEST(Value, TextForm) {
  EXPECT_EQ(Value().to_text(), "none");
  EXPECT_EQ(Value(true).to_text(), "true");
  EXPECT_EQ(Value(false).to_text(), "false");
  EXPECT_EQ(Value(42).to_text(), "42");
  EXPECT_EQ(Value(2.5).to_text(), "2.5");
  EXPECT_EQ(Value(2.0).to_text(), "2.0");  // real marker preserved
  EXPECT_EQ(Value("a\"b").to_text(), "\"a\\\"b\"");
  EXPECT_EQ(Value(ValueList{Value(1), Value("x")}).to_text(), "[1, \"x\"]");
}

// ------------------------------------------------------------ Metamodel

TEST(Metamodel, FinalizeAcceptsValidStructure) {
  MetamodelPtr mm = make_test_metamodel();
  EXPECT_TRUE(mm->finalized());
  EXPECT_NE(mm->find_class("Session"), nullptr);
  EXPECT_EQ(mm->find_class("Nope"), nullptr);
}

TEST(Metamodel, InheritanceFlattening) {
  MetamodelPtr mm = make_test_metamodel();
  const MetaClass* stream = mm->find_class("StreamMedia");
  ASSERT_NE(stream, nullptr);
  // Inherits label (NamedElement), kind/live (Media), owns fps.
  EXPECT_NE(stream->find_attribute("label"), nullptr);
  EXPECT_NE(stream->find_attribute("kind"), nullptr);
  EXPECT_NE(stream->find_attribute("fps"), nullptr);
  EXPECT_EQ(stream->find_attribute("bandwidth"), nullptr);
}

TEST(Metamodel, IsKindOfWalksAncestry) {
  MetamodelPtr mm = make_test_metamodel();
  EXPECT_TRUE(mm->is_kind_of("StreamMedia", "Media"));
  EXPECT_TRUE(mm->is_kind_of("StreamMedia", "NamedElement"));
  EXPECT_TRUE(mm->is_kind_of("Media", "Media"));
  EXPECT_FALSE(mm->is_kind_of("Media", "StreamMedia"));
  EXPECT_FALSE(mm->is_kind_of("Ghost", "Media"));
}

TEST(Metamodel, RejectsUnknownParent) {
  Metamodel mm("bad");
  mm.add_class("A", "Missing");
  EXPECT_EQ(mm.finalize().code(), ErrorCode::kInvalidArgument);
}

TEST(Metamodel, RejectsInheritanceCycle) {
  Metamodel mm("bad");
  mm.add_class("A", "B");
  mm.add_class("B", "A");
  EXPECT_EQ(mm.finalize().code(), ErrorCode::kInvalidArgument);
}

TEST(Metamodel, RejectsDuplicateFeature) {
  Metamodel mm("bad");
  auto& a = mm.add_class("A");
  a.add_attribute({.name = "x"});
  a.add_attribute({.name = "x"});
  EXPECT_EQ(mm.finalize().code(), ErrorCode::kInvalidArgument);
}

TEST(Metamodel, RejectsAttributeShadowingParent) {
  Metamodel mm("bad");
  mm.add_class("Base").add_attribute({.name = "x"});
  mm.add_class("Derived", "Base").add_attribute({.name = "x"});
  EXPECT_EQ(mm.finalize().code(), ErrorCode::kInvalidArgument);
}

TEST(Metamodel, RejectsEnumWithoutLiterals) {
  Metamodel mm("bad");
  mm.add_class("A").add_attribute({.name = "e", .type = AttrType::kEnum});
  EXPECT_EQ(mm.finalize().code(), ErrorCode::kInvalidArgument);
}

TEST(Metamodel, RejectsReferenceToUnknownClass) {
  Metamodel mm("bad");
  mm.add_class("A").add_reference({.name = "r", .target_class = "Ghost"});
  EXPECT_EQ(mm.finalize().code(), ErrorCode::kInvalidArgument);
}

TEST(Metamodel, ParentDeclaredAfterChildResolves) {
  Metamodel mm("ok");
  mm.add_class("Derived", "Base");
  mm.add_class("Base").add_attribute({.name = "x"});
  ASSERT_TRUE(mm.finalize().ok());
  EXPECT_NE(mm.find_class("Derived")->find_attribute("x"), nullptr);
}

// ---------------------------------------------------------------- Model

TEST(Model, CreateAppliesDefaults) {
  MetamodelPtr mm = make_test_metamodel();
  Model model("m", mm);
  auto session = model.create("Session", "s1");
  ASSERT_TRUE(session.ok());
  EXPECT_EQ((*session)->get_string("state"), "idle");  // default applied
}

TEST(Model, CreateRejectsAbstractUnknownAndDuplicate) {
  MetamodelPtr mm = make_test_metamodel();
  Model model("m", mm);
  EXPECT_EQ(model.create("NamedElement", "x").status().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(model.create("Ghost", "x").status().code(), ErrorCode::kNotFound);
  ASSERT_TRUE(model.create("Session", "s1").ok());
  EXPECT_EQ(model.create("Session", "s1").status().code(),
            ErrorCode::kAlreadyExists);
  EXPECT_EQ(model.create("Session", "not an id").status().code(),
            ErrorCode::kInvalidArgument);
}

TEST(Model, SetAttributeTypeChecks) {
  MetamodelPtr mm = make_test_metamodel();
  Model model("m", mm);
  model.create("Session", "s1");
  EXPECT_TRUE(model.set_attribute("s1", "state", Value("open")).ok());
  EXPECT_EQ(model.set_attribute("s1", "state", Value(3)).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(model.set_attribute("s1", "ghost", Value(1)).code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(model.set_attribute("ghost", "state", Value("x")).code(),
            ErrorCode::kNotFound);
  // Real slot accepts int and coerces.
  EXPECT_TRUE(model.set_attribute("s1", "bandwidth", Value(3)).ok());
  EXPECT_TRUE(model.find("s1")->get("bandwidth").is_real());
}

TEST(Model, ManyValuedAttributeRequiresList) {
  MetamodelPtr mm = make_test_metamodel();
  Model model("m", mm);
  model.create("Session", "s1");
  EXPECT_EQ(model.set_attribute("s1", "tags", Value("solo")).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_TRUE(model
                  .set_attribute("s1", "tags",
                                 Value(ValueList{Value("a"), Value("b")}))
                  .ok());
  EXPECT_EQ(model
                .set_attribute("s1", "tags",
                               Value(ValueList{Value(1)}))  // wrong item type
                .code(),
            ErrorCode::kInvalidArgument);
}

TEST(Model, ContainmentCreatesTree) {
  MetamodelPtr mm = make_test_metamodel();
  Model model = make_test_model(mm);
  const ModelObject* alice = model.find("alice");
  ASSERT_NE(alice, nullptr);
  EXPECT_EQ(alice->parent_id(), "s1");
  EXPECT_EQ(alice->containing_reference(), "participants");
  EXPECT_EQ(model.children("s1", "participants").size(), 2u);
  EXPECT_EQ(model.roots().size(), 1u);
}

TEST(Model, CreateChildChecksContainmentRules) {
  MetamodelPtr mm = make_test_metamodel();
  Model model("m", mm);
  model.create("Session", "s1");
  // Not a containment reference:
  EXPECT_EQ(model.create_child("s1", "initiator", "Participant", "p")
                .status()
                .code(),
            ErrorCode::kInvalidArgument);
  // Wrong target class:
  EXPECT_EQ(
      model.create_child("s1", "participants", "Media", "m").status().code(),
      ErrorCode::kInvalidArgument);
  // Unknown parent:
  EXPECT_EQ(model.create_child("ghost", "participants", "Participant", "p")
                .status()
                .code(),
            ErrorCode::kNotFound);
}

TEST(Model, CrossReferenceChecksAndSingleValuedReplace) {
  MetamodelPtr mm = make_test_metamodel();
  Model model = make_test_model(mm);
  // initiator is single-valued: adding bob replaces alice.
  EXPECT_TRUE(model.add_reference("s1", "initiator", "bob").ok());
  ASSERT_EQ(model.find("s1")->targets("initiator").size(), 1u);
  EXPECT_EQ(model.find("s1")->targets("initiator")[0], "bob");
  // Wrong class target:
  EXPECT_EQ(model.add_reference("s1", "initiator", "cam").code(),
            ErrorCode::kInvalidArgument);
  // Missing target:
  EXPECT_EQ(model.add_reference("s1", "initiator", "ghost").code(),
            ErrorCode::kNotFound);
  // Duplicate add:
  EXPECT_EQ(model.add_reference("s1", "initiator", "bob").code(),
            ErrorCode::kAlreadyExists);
  // Containment refs are not settable this way:
  EXPECT_EQ(model.add_reference("s1", "participants", "bob").code(),
            ErrorCode::kInvalidArgument);
}

TEST(Model, RemoveReferenceAndMissingCases) {
  MetamodelPtr mm = make_test_metamodel();
  Model model = make_test_model(mm);
  EXPECT_TRUE(model.remove_reference("s1", "initiator", "alice").ok());
  EXPECT_TRUE(model.find("s1")->targets("initiator").empty());
  EXPECT_EQ(model.remove_reference("s1", "initiator", "alice").code(),
            ErrorCode::kNotFound);
}

TEST(Model, RemoveCascadesAndScrubsDanglingRefs) {
  MetamodelPtr mm = make_test_metamodel();
  Model model = make_test_model(mm);
  ASSERT_TRUE(model.remove("s1").ok());  // removes whole tree
  EXPECT_TRUE(model.empty());
}

TEST(Model, RemoveChildDetachesFromParentAndScrubsCrossRefs) {
  MetamodelPtr mm = make_test_metamodel();
  Model model = make_test_model(mm);
  ASSERT_TRUE(model.remove("alice").ok());
  EXPECT_EQ(model.children("s1", "participants").size(), 1u);
  // s1.initiator pointed at alice — must have been scrubbed.
  EXPECT_TRUE(model.find("s1")->targets("initiator").empty());
  EXPECT_TRUE(model.validate().ok());
}

TEST(Model, ObjectsOfIncludesSubclasses) {
  MetamodelPtr mm = make_test_metamodel();
  Model model = make_test_model(mm);
  EXPECT_EQ(model.objects_of("Media").size(), 1u);  // StreamMedia counts
  EXPECT_EQ(model.objects_of("NamedElement").size(), model.size());
}

TEST(Model, ValidateCatchesMissingRequiredAttribute) {
  MetamodelPtr mm = make_test_metamodel();
  Model model("m", mm);
  model.create("Participant", "p");  // address required, unset
  EXPECT_EQ(model.validate().code(), ErrorCode::kConformanceError);
  model.set_attribute("p", "address", Value("p@host"));
  EXPECT_TRUE(model.validate().ok());
}

TEST(Model, ValidateCatchesIllegalEnumLiteral) {
  MetamodelPtr mm = make_test_metamodel();
  Model model("m", mm);
  model.create("Session", "s1");
  model.set_attribute("s1", "state", Value("weird"));
  EXPECT_EQ(model.validate().code(), ErrorCode::kConformanceError);
}

TEST(Model, CloneIsDeepAndEqualShape) {
  MetamodelPtr mm = make_test_metamodel();
  Model model = make_test_model(mm);
  Model copy = model.clone();
  EXPECT_EQ(copy.size(), model.size());
  EXPECT_TRUE(copy.validate().ok());
  // Mutating the copy leaves the original untouched.
  copy.set_attribute("s1", "state", Value("closed"));
  EXPECT_EQ(model.find("s1")->get_string("state"), "open");
  EXPECT_EQ(copy.find("s1")->get_string("state"), "closed");
}

TEST(Model, TypedGettersWithFallbacks) {
  MetamodelPtr mm = make_test_metamodel();
  Model model = make_test_model(mm);
  const ModelObject* s1 = model.find("s1");
  EXPECT_EQ(s1->get_string("state"), "open");
  EXPECT_EQ(s1->get_string("label", "unnamed"), "unnamed");
  EXPECT_DOUBLE_EQ(s1->get_real("bandwidth"), 2.5);
  EXPECT_EQ(model.find("cam")->get_int("fps"), 30);
  EXPECT_FALSE(model.find("cam")->get_bool("live", false));
}

}  // namespace
}  // namespace mdsm::model
