// Concurrency stress for the components documented as thread-safe:
// EventBus, ContextStore, id generation, Executor. The platforms run
// their command paths single-threaded by design, but these primitives
// are shared with the executor-driven paths (fleet benches, future
// multi-threaded deployments) and must hold up under contention.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/ids.hpp"
#include "policy/context.hpp"
#include "policy/policy_engine.hpp"
#include "runtime/event_bus.hpp"
#include "runtime/executor.hpp"

namespace mdsm {
namespace {

TEST(Concurrency, EventBusPublishFromManyThreads) {
  runtime::EventBus bus;
  std::atomic<int> delivered{0};
  bus.subscribe("stress", [&](const runtime::Event&) {
    delivered.fetch_add(1, std::memory_order_relaxed);
  });
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&bus] {
      for (int i = 0; i < kPerThread; ++i) {
        bus.publish("stress", "t");
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(delivered.load(), kThreads * kPerThread);
  EXPECT_EQ(bus.published_count(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

// Regression: published_count() used to read published_ without holding
// the bus mutex, racing with publishers. The counter is atomic now —
// reading it mid-storm must be safe and monotone (TSan enforces the
// "safe" half when this suite runs under -DMDSM_TSAN=ON).
TEST(Concurrency, EventBusPublishedCountReadableWhilePublishing) {
  runtime::EventBus bus;
  std::atomic<bool> stop{false};
  constexpr int kPublishers = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> publishers;
  for (int t = 0; t < kPublishers; ++t) {
    publishers.emplace_back([&bus] {
      for (int i = 0; i < kPerThread; ++i) bus.publish("count.race", "x");
    });
  }
  std::uint64_t last_seen = 0;
  bool monotone = true;
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      std::uint64_t now = bus.published_count();
      if (now < last_seen) monotone = false;
      last_seen = now;
    }
  });
  for (auto& thread : publishers) thread.join();
  stop = true;
  reader.join();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(bus.published_count(),
            static_cast<std::uint64_t>(kPublishers * kPerThread));
}

TEST(Concurrency, EventBusSubscribeUnsubscribeUnderPublishLoad) {
  runtime::EventBus bus;
  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    while (!stop.load()) bus.publish("churn", "p");
  });
  for (int round = 0; round < 200; ++round) {
    auto id = bus.subscribe("churn", [](const runtime::Event&) {});
    bus.unsubscribe(id);
  }
  stop = true;
  publisher.join();
  EXPECT_EQ(bus.subscription_count(), 0u);
}

TEST(Concurrency, ContextStoreConcurrentReadersAndWriters) {
  policy::ContextStore context;
  std::atomic<bool> stop{false};
  std::atomic<int> read_errors{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&context, &stop, w] {
      std::int64_t n = 0;
      while (!stop.load()) {
        context.set("k" + std::to_string(w), model::Value(++n));
      }
    });
  }
  for (int r = 0; r < 4; ++r) {
    threads.emplace_back([&context, &stop, &read_errors, r] {
      while (!stop.load()) {
        model::Value value = context.get("k" + std::to_string(r));
        if (!value.is_none() && !value.is_int()) {
          read_errors.fetch_add(1);
        }
        (void)context.version();
        (void)context.has("k0");
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop = true;
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(read_errors.load(), 0);
  // Every writer wrote at least once; version moved accordingly.
  EXPECT_GE(context.version(), 4u);
  EXPECT_EQ(context.names().size(), 4u);
}

TEST(Concurrency, PolicyEvaluationWhileContextMutates) {
  policy::ContextStore context;
  policy::PolicySet policies;
  ASSERT_TRUE(policies.add("hot", "load > 0.5", "shed", 5).ok());
  ASSERT_TRUE(policies.add("base", "", "noop", 0).ok());
  std::atomic<bool> stop{false};
  std::thread mutator([&] {
    double load = 0.0;
    while (!stop.load()) {
      context.set("load", model::Value(load));
      load = load > 1.0 ? 0.0 : load + 0.01;
    }
  });
  int decisions = 0;
  for (int i = 0; i < 20000; ++i) {
    auto decision = policies.evaluate(context);
    ASSERT_TRUE(decision.has_value());
    ASSERT_TRUE(decision->decision == "shed" || decision->decision == "noop");
    ++decisions;
  }
  stop = true;
  mutator.join();
  EXPECT_EQ(decisions, 20000);
}

TEST(Concurrency, ExecutorStressWithMixedWorkloads) {
  runtime::Executor executor(4);
  std::atomic<std::int64_t> sum{0};
  constexpr int kTasks = 2000;
  for (int i = 0; i < kTasks; ++i) {
    executor.submit([&sum, i] { sum.fetch_add(i); });
  }
  executor.drain();
  EXPECT_EQ(sum.load(),
            static_cast<std::int64_t>(kTasks) * (kTasks - 1) / 2);
  // Drain is reusable: a second wave behaves identically.
  sum = 0;
  for (int i = 0; i < 100; ++i) {
    executor.submit([&sum] { sum.fetch_add(1); });
  }
  executor.drain();
  EXPECT_EQ(sum.load(), 100);
}

TEST(Concurrency, TaggedIdsUniqueAcrossThreads) {
  std::vector<std::thread> threads;
  std::vector<std::vector<std::string>> batches(6);
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&batches, t] {
      for (int i = 0; i < 500; ++i) {
        batches[t].push_back(next_tagged_id("x"));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  std::set<std::string> all;
  for (const auto& batch : batches) {
    for (const auto& id : batch) {
      EXPECT_TRUE(all.insert(id).second) << id;
    }
  }
  EXPECT_EQ(all.size(), 3000u);
}

}  // namespace
}  // namespace mdsm
