// Reusable multi-threaded soak fixture: a complete session platform over
// the shared "testlang" DSML whose single resource adapter is wrapped in
// a fault-injecting ChaosAdapter. test_soak.cpp hammers it from many
// threads; the fixture keeps the model text, the adapter wiring and the
// per-submission command arithmetic in one place so future soaks (other
// domains, remote deployments) can reuse them.
//
// Command arithmetic per submitted model (one fresh Session object):
//   1 synthesized command ("session.create")
//   → Case-2 IM: broker-call svc.create, then call-dep media.path
//     → broker-call svc.open
//   → 1–2 resource invocations (the second is skipped when chaos makes
//     the first one fail or throw).
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "broker/chaos_adapter.hpp"
#include "core/platform.hpp"
#include "model_fixtures.hpp"

namespace mdsm::soak {

/// The soak platform's middleware model: one resource ("svc"), one
/// broker action per lifecycle command, Case-2 procedures for session
/// establishment, a Case-1 action for session close, and an LTS mapping
/// application-model changes to those commands.
constexpr std::string_view kSoakMiddlewareModel = R"mw(
model soak_platform conforms mdsm

object MiddlewarePlatform mw {
  name = "soak-platform"
  domain = "testing"
  child ui UiLayerSpec ui1 { dsml = "testlang" }

  child broker BrokerLayerSpec b1 {
    child actions ActionSpec act-create {
      name = "bk-create"
      child steps StepSpec s1 {
        op = invoke
        a = "svc"
        b = "create"
        child args ArgSpec a1 { key = "id" value = "$id" }
      }
    }
    child actions ActionSpec act-open {
      name = "bk-open"
      child steps StepSpec s2 {
        op = invoke
        a = "svc"
        b = "open"
        child args ArgSpec a2 { key = "id" value = "$id" }
      }
    }
    child actions ActionSpec act-close {
      name = "bk-close"
      child steps StepSpec s3 {
        op = invoke
        a = "svc"
        b = "close"
        child args ArgSpec a3 { key = "id" value = "$id" }
      }
    }
    child handlers HandlerSpec h1 { signal = "svc.create" actions -> act-create }
    child handlers HandlerSpec h2 { signal = "svc.open" actions -> act-open }
    child handlers HandlerSpec h3 { signal = "svc.close" actions -> act-close }
    child resources ResourceSpec r1 { name = "svc" }
  }

  child controller ControllerLayerSpec c1 {
    child dscs DscSpec d1 { name = "session.establish" category = "session" }
    child dscs DscSpec d2 { name = "media.path" category = "media" }
    child procedures ProcedureSpec pr1 {
      name = "establish-std"
      classifier = "session.establish"
      dependencies = ["media.path"]
      child units EuSpec eu1 {
        child steps StepSpec t1 {
          op = broker-call
          a = "svc.create"
          child args ArgSpec b1a { key = "id" value = "$id" }
        }
        child steps StepSpec t2 { op = call-dep a = "media.path" }
      }
    }
    child procedures ProcedureSpec pr2 {
      name = "path-direct"
      classifier = "media.path"
      cost = 1.0
      child units EuSpec eu2 {
        child steps StepSpec t3 {
          op = broker-call
          a = "svc.open"
          child args ArgSpec b2a { key = "id" value = "$id" }
        }
      }
    }
    child actions ActionSpec ca1 {
      name = "ctl-close"
      child steps StepSpec t4 {
        op = broker-call
        a = "svc.close"
        child args ArgSpec c1a { key = "id" value = "$id" }
      }
    }
    child bindings BindingSpec bind1 { command = "session.close" actions -> ca1 }
    child mappings CommandMappingSpec m1 {
      command = "session.create"
      dsc = "session.establish"
    }
  }

  child synthesis SynthesisLayerSpec syn1 {
    initial_state = "initial"
    child transitions TransitionSpec tr1 {
      from = "initial"
      to = "live"
      kind = add-object
      class = "Session"
      child commands CommandTemplateSpec ct1 {
        name = "session.create"
        child args ArgSpec sa1 { key = "id" value = "%id" }
      }
    }
    child transitions TransitionSpec tr2 {
      from = "live"
      to = "done"
      kind = set-attribute
      class = "Session"
      feature = "state"
      value = "closed"
      vtype = string
      child commands CommandTemplateSpec ct2 {
        name = "session.close"
        child args ArgSpec sa2 { key = "id" value = "%id" }
      }
    }
  }
}
)mw";

/// The wrapped "underlying resource": counts executions, nothing else.
class CountingAdapter final : public broker::ResourceAdapter {
 public:
  explicit CountingAdapter(std::string name)
      : ResourceAdapter(std::move(name)) {}

  Result<model::Value> execute(const std::string& command,
                               const broker::Args& args) override {
    (void)args;
    executed_.fetch_add(1, std::memory_order_relaxed);
    return model::Value("done:" + command);
  }

  [[nodiscard]] std::uint64_t executed() const noexcept {
    return executed_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> executed_{0};
};

/// An assembled, started soak platform with its chaos wrapper handles.
struct SoakPlatform {
  model::MetamodelPtr dsml;
  std::unique_ptr<core::Platform> platform;
  broker::ChaosAdapter* chaos = nullptr;     ///< owned by the platform
  CountingAdapter* inner = nullptr;          ///< owned by `chaos`
  Status status = Status::Ok();              ///< why construction failed

  [[nodiscard]] bool ok() const noexcept {
    return status.ok() && platform != nullptr;
  }
};

/// Assemble + start the soak platform with `config` faults on "svc".
/// When `policy` is set it is installed on "svc" before start, so the
/// soak exercises the broker's retry/breaker/fallback path; backoff
/// sleeps then go through the manager's sleep hook if one is also given
/// (null keeps real sleeping — fine, the backoffs are microseconds).
inline SoakPlatform make_soak_platform(
    broker::ChaosConfig config,
    std::optional<broker::InvocationPolicy> policy = std::nullopt,
    std::function<void(Duration)> sleep_hook = nullptr) {
  SoakPlatform out;
  out.dsml = model::testing::make_test_metamodel();
  core::PlatformConfig platform_config;
  platform_config.dsml = out.dsml;
  auto assembled =
      core::Platform::assemble_from_text(kSoakMiddlewareModel,
                                         platform_config);
  if (!assembled.ok()) {
    out.status = assembled.status();
    return out;
  }
  out.platform = std::move(assembled.value());
  auto inner = std::make_unique<CountingAdapter>("svc");
  out.inner = inner.get();
  auto chaos =
      std::make_unique<broker::ChaosAdapter>(std::move(inner), config);
  out.chaos = chaos.get();
  out.status = out.platform->add_resource_adapter(std::move(chaos));
  if (!out.status.ok()) return out;
  if (policy.has_value()) {
    out.status = out.platform->broker().set_invocation_policy(
        "svc", std::move(*policy));
    if (!out.status.ok()) return out;
  }
  if (sleep_hook != nullptr) {
    out.platform->broker().resources().set_sleep_hook(std::move(sleep_hook));
  }
  out.status = out.platform->start();
  return out;
}

/// Application-model text creating one open session with a unique id.
inline std::string open_session_text(const std::string& id) {
  return "model app_" + id + " conforms testlang\n" +
         "object Session " + id + " { state = open }\n";
}

/// Application-model text closing the session `id` (must be the one the
/// runtime model currently holds for the diff to be a pure close).
inline std::string close_session_text(const std::string& id) {
  return "model fin_" + id + " conforms testlang\n" +
         "object Session " + id + " { state = closed }\n";
}

}  // namespace mdsm::soak
