// Platform::export_session_state / import_session_state and their disk
// twins snapshot()/restore() (PR 10): the full controller/broker runtime
// state — synthesis runtime model, interpreter LTS states, engine
// memory, context store, broker variables — round-trips through the
// text-format codec, and a restored platform RESUMES sequenced work
// instead of restarting it.
#include <gtest/gtest.h>

#include <string>

#include "core/platform.hpp"
#include "model/text_format.hpp"
#include "soak_fixtures.hpp"

namespace mdsm {
namespace {

using soak::make_soak_platform;

soak::SoakPlatform fresh_platform() {
  return make_soak_platform(broker::ChaosConfig{});  // no faults
}

TEST(Snapshot, RoundTripsByteEqual) {
  soak::SoakPlatform source = fresh_platform();
  ASSERT_TRUE(source.ok()) << source.status.to_string();

  // Real session work plus one value in each scalar store, so every
  // checkpoint section is non-trivial.
  ASSERT_TRUE(
      source.platform->submit_model_text(soak::open_session_text("s1")).ok());
  source.platform->controller().engine().set_memory("mem.k",
                                                    model::Value("mv"));
  source.platform->context().set("ctx.k", model::Value(std::int64_t{7}));
  source.platform->broker().state().set("bk.k", model::Value(true));

  Result<std::string> snapshot = source.platform->snapshot();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().to_string();

  soak::SoakPlatform target = fresh_platform();
  ASSERT_TRUE(target.ok()) << target.status.to_string();
  ASSERT_TRUE(target.platform->restore(snapshot.value()).ok());

  // Byte-equal round-trip: same runtime model text, and re-snapshotting
  // the restored platform reproduces the snapshot exactly (deterministic
  // serialization + sorted scalar stores).
  EXPECT_EQ(target.platform->runtime_model_text(),
            source.platform->runtime_model_text());
  Result<std::string> again = target.platform->snapshot();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), snapshot.value());

  // The scalar stores made the trip.
  EXPECT_EQ(target.platform->controller().engine().memory("mem.k").as_string(),
            "mv");
  EXPECT_EQ(target.platform->context().get("ctx.k").as_int(), 7);
  EXPECT_TRUE(target.platform->broker().state().get("bk.k").as_bool());
}

TEST(Snapshot, RestoredPlatformResumesInsteadOfRestarting) {
  soak::SoakPlatform source = fresh_platform();
  ASSERT_TRUE(source.ok()) << source.status.to_string();
  ASSERT_TRUE(
      source.platform->submit_model_text(soak::open_session_text("s1")).ok());
  // Opening fired session.create: svc.create + svc.open.
  EXPECT_EQ(source.inner->executed(), 2u);
  Result<std::string> snapshot = source.platform->snapshot();
  ASSERT_TRUE(snapshot.ok());

  // Cold platform, no restore: the close submission diffs against an
  // EMPTY runtime model, so it re-runs the whole lifecycle — add-object
  // fires session.create (svc.create + svc.open) and the closed
  // attribute then fires session.close on top: 3 executions. That's the
  // restart behavior a checkpoint exists to avoid.
  soak::SoakPlatform cold = fresh_platform();
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(
      cold.platform->submit_model_text(soak::close_session_text("s1")).ok());
  EXPECT_EQ(cold.inner->executed(), 3u);

  // Restored platform: the interpreter holds s1 in "live", so the same
  // close submission is a pure set-attribute → session.close → exactly
  // ONE svc.close execution. Sequenced work resumed, not restarted.
  soak::SoakPlatform resumed = fresh_platform();
  ASSERT_TRUE(resumed.ok());
  ASSERT_TRUE(resumed.platform->restore(snapshot.value()).ok());
  ASSERT_TRUE(
      resumed.platform->submit_model_text(soak::close_session_text("s1"))
          .ok());
  EXPECT_EQ(resumed.inner->executed(), 1u);
}

TEST(Snapshot, ExportIsAValueTreeTheCodecRoundTrips) {
  soak::SoakPlatform source = fresh_platform();
  ASSERT_TRUE(source.ok());
  ASSERT_TRUE(
      source.platform->submit_model_text(soak::open_session_text("s1")).ok());

  Result<model::Value> exported =
      source.platform->export_session_state("s1");
  ASSERT_TRUE(exported.ok());
  // parse_value(to_text()) is the identity on the exported tree.
  Result<model::Value> reparsed =
      model::parse_value(exported.value().to_text());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().to_string();
  EXPECT_EQ(reparsed.value().to_text(), exported.value().to_text());
}

TEST(Snapshot, RejectsGarbageAndForeignFormats) {
  soak::SoakPlatform target = fresh_platform();
  ASSERT_TRUE(target.ok());

  EXPECT_FALSE(target.platform->restore("not a value {").ok());

  // A structurally valid pair list with the wrong format tag refuses.
  model::ValueList tagged;
  model::ValueList pair;
  pair.push_back(model::Value(std::string("format")));
  pair.push_back(model::Value(std::string("someone-elses-checkpoint")));
  tagged.push_back(model::Value(std::move(pair)));
  Status imported =
      target.platform->import_session_state(model::Value(std::move(tagged)));
  EXPECT_EQ(imported.code(), ErrorCode::kInvalidArgument);

  // A scalar is not a checkpoint at all.
  EXPECT_FALSE(
      target.platform->import_session_state(model::Value(true)).ok());
}

}  // namespace
}  // namespace mdsm
