// Unit tests for the simulated network substrate.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "net/network.hpp"

namespace mdsm::net {
namespace {

NetworkConfig quiet_config() {
  NetworkConfig config;
  config.base_latency = std::chrono::microseconds(100);
  config.jitter = std::chrono::microseconds(0);
  config.drop_rate = 0.0;
  return config;
}

TEST(Network, EndpointLifecycle) {
  SimClock clock;
  Network network(clock, quiet_config());
  auto a = network.create_endpoint("a");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(network.create_endpoint("a").status().code(),
            ErrorCode::kAlreadyExists);
  EXPECT_NE(network.find_endpoint("a"), nullptr);
  EXPECT_TRUE(network.remove_endpoint("a").ok());
  EXPECT_EQ(network.remove_endpoint("a").code(), ErrorCode::kNotFound);
  EXPECT_EQ(network.find_endpoint("a"), nullptr);
}

TEST(Network, DeliversAfterLatency) {
  SimClock clock;
  Network network(clock, quiet_config());
  auto a = network.create_endpoint("a").value();
  auto b = network.create_endpoint("b").value();
  std::vector<Message> received;
  b->set_handler([&](const Message& m) { received.push_back(m); });
  ASSERT_TRUE(a->send("b", "hello", model::Value("payload")).ok());
  EXPECT_EQ(network.deliver_due(), 0u);  // latency not yet elapsed
  clock.advance(std::chrono::microseconds(100));
  EXPECT_EQ(network.deliver_due(), 1u);
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].from, "a");
  EXPECT_EQ(received[0].topic, "hello");
  EXPECT_EQ(received[0].payload, model::Value("payload"));
}

TEST(Network, RunUntilIdleAdvancesClock) {
  SimClock clock;
  Network network(clock, quiet_config());
  auto a = network.create_endpoint("a").value();
  auto b = network.create_endpoint("b").value();
  int count = 0;
  // b replies to each ping once, creating a short causal chain.
  b->set_handler([&](const Message& m) {
    ++count;
    if (m.topic == "ping") b->send("a", "pong");
  });
  a->set_handler([&](const Message&) { ++count; });
  a->send("b", "ping");
  TimePoint before = clock.now();
  EXPECT_EQ(network.run_until_idle(), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_GT(clock.now(), before);
  EXPECT_EQ(network.pending(), 0u);
}

TEST(Network, FifoBetweenSamePairWithoutJitter) {
  SimClock clock;
  Network network(clock, quiet_config());
  auto a = network.create_endpoint("a").value();
  auto b = network.create_endpoint("b").value();
  std::vector<std::string> topics;
  b->set_handler([&](const Message& m) { topics.push_back(m.topic); });
  for (int i = 0; i < 5; ++i) a->send("b", "m" + std::to_string(i));
  network.run_until_idle();
  EXPECT_EQ(topics, (std::vector<std::string>{"m0", "m1", "m2", "m3", "m4"}));
}

TEST(Network, DropRateLosesMessages) {
  SimClock clock;
  NetworkConfig config = quiet_config();
  config.drop_rate = 0.5;
  config.seed = 7;
  Network network(clock, config);
  auto a = network.create_endpoint("a").value();
  auto b = network.create_endpoint("b").value();
  int received = 0;
  b->set_handler([&](const Message&) { ++received; });
  for (int i = 0; i < 200; ++i) a->send("b", "m");
  network.run_until_idle();
  const NetworkStats stats = network.stats();
  EXPECT_EQ(stats.sent, 200u);
  EXPECT_EQ(stats.delivered + stats.dropped, 200u);
  // With p=0.5 and n=200, both counts are overwhelmingly within [60,140].
  EXPECT_GT(stats.dropped, 60u);
  EXPECT_LT(stats.dropped, 140u);
  EXPECT_EQ(static_cast<std::uint64_t>(received), stats.delivered);
}

TEST(Network, DeterministicAcrossRunsWithSameSeed) {
  auto run = [](std::uint32_t seed) {
    SimClock clock;
    NetworkConfig config;
    config.jitter = std::chrono::microseconds(300);
    config.drop_rate = 0.2;
    config.seed = seed;
    Network network(clock, config);
    auto a = network.create_endpoint("a").value();
    (void)network.create_endpoint("b");
    std::vector<std::uint64_t> order;
    network.find_endpoint("b")->set_handler(
        [&](const Message& m) { order.push_back(m.id % 1000); });
    for (int i = 0; i < 50; ++i) a->send("b", "m" + std::to_string(i));
    network.run_until_idle();
    return std::pair(order.size(), network.stats().dropped);
  };
  EXPECT_EQ(run(11), run(11));
  EXPECT_NE(run(11), run(12));  // different seed, different trace (w.h.p.)
}

TEST(Network, LinkDownBlocksInFlightTraffic) {
  SimClock clock;
  Network network(clock, quiet_config());
  auto a = network.create_endpoint("a").value();
  (void)network.create_endpoint("b");
  int received = 0;
  network.find_endpoint("b")->set_handler([&](const Message&) { ++received; });
  a->send("b", "m1");
  network.set_link_down("a", "b", true);  // goes down after send
  network.run_until_idle();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(network.stats().blocked, 1u);
  network.set_link_down("a", "b", false);
  a->send("b", "m2");
  network.run_until_idle();
  EXPECT_EQ(received, 1);
}

TEST(Network, LinkDownIsBidirectional) {
  SimClock clock;
  Network network(clock, quiet_config());
  auto a = network.create_endpoint("a").value();
  auto b = network.create_endpoint("b").value();
  int received = 0;
  a->set_handler([&](const Message&) { ++received; });
  network.set_link_down("a", "b", true);
  b->send("a", "m");
  network.run_until_idle();
  EXPECT_EQ(received, 0);
}

TEST(Network, PartitionSplitsGroups) {
  SimClock clock;
  Network network(clock, quiet_config());
  auto a = network.create_endpoint("a").value();
  auto b = network.create_endpoint("b").value();
  auto c = network.create_endpoint("c").value();
  std::vector<std::string> delivered;
  auto handler = [&](const Message& m) { delivered.push_back(m.to); };
  a->set_handler(handler);
  b->set_handler(handler);
  c->set_handler(handler);
  network.set_partition({"a", "b"});
  a->send("b", "in-group");   // same side: delivered
  a->send("c", "cross");      // crosses partition: blocked
  c->send("a", "cross-back"); // crosses partition: blocked
  network.run_until_idle();
  EXPECT_EQ(delivered, std::vector<std::string>{"b"});
  network.clear_partition();
  a->send("c", "healed");
  network.run_until_idle();
  EXPECT_EQ(delivered.size(), 2u);
}

TEST(Network, UndeliverableCountsWhenNoHandlerOrEndpoint) {
  SimClock clock;
  Network network(clock, quiet_config());
  auto a = network.create_endpoint("a").value();
  network.create_endpoint("b");  // no handler installed
  a->send("b", "m");
  a->send("ghost", "m");
  network.run_until_idle();
  EXPECT_EQ(network.stats().undeliverable, 2u);
}

TEST(Network, SendFromUnknownEndpointRejected) {
  SimClock clock;
  Network network(clock, quiet_config());
  EXPECT_EQ(network.send("ghost", "b", "m", {}).code(), ErrorCode::kNotFound);
}

// TSan regression (PR 5): two endpoints firing concurrently while a
// third thread drives delivery and a fourth flaps a link and reads
// stats. Before the Network grew its internal mutex this raced on the
// queue, the RNG, the link set and the stats struct.
TEST(Network, ConcurrentSendersAndDeliveryAreRaceFree) {
  SimClock clock;
  NetworkConfig config = quiet_config();
  config.jitter = std::chrono::microseconds(50);  // exercise the RNG
  Network network(clock, config);
  auto a = network.create_endpoint("a").value();
  auto b = network.create_endpoint("b").value();
  (void)network.create_endpoint("sink");
  std::atomic<std::uint64_t> received{0};
  network.find_endpoint("sink")->set_handler(
      [&](const Message&) { received.fetch_add(1, std::memory_order_relaxed); });

  constexpr int kPerSender = 500;
  std::thread sender_a([&] {
    for (int i = 0; i < kPerSender; ++i) a->send("sink", "from-a");
  });
  std::thread sender_b([&] {
    for (int i = 0; i < kPerSender; ++i) b->send("sink", "from-b");
  });
  std::thread chaos([&] {
    for (int i = 0; i < 50; ++i) {
      network.set_link_down("a", "sink", i % 2 == 0);
      (void)network.stats();
      (void)network.pending();
    }
    network.set_link_down("a", "sink", false);
  });
  std::thread driver([&] {
    for (int i = 0; i < 200; ++i) {
      clock.advance(std::chrono::microseconds(10));
      network.deliver_due();
    }
  });
  sender_a.join();
  sender_b.join();
  chaos.join();
  driver.join();
  network.run_until_idle();

  const NetworkStats stats = network.stats();
  EXPECT_EQ(stats.sent, 2u * kPerSender);
  // Every message is accounted for exactly once; "blocked" depends on
  // how deliveries interleave with the link flapping.
  EXPECT_EQ(stats.delivered + stats.blocked, stats.sent);
  EXPECT_EQ(received.load(), stats.delivered);
  EXPECT_EQ(network.pending(), 0u);
}

// PR-7 lifecycle regressions ------------------------------------------------

// A same-tick reentrant sender (zero latency: every reply is due at the
// delivery tick it was triggered on) must not spin run_until_idle
// forever: the cap bounds the whole pass, including reentrant messages
// drained within one deliver_due sweep.
TEST(Network, RunUntilIdleTerminatesOnSameTickPingPong) {
  SimClock clock;
  NetworkConfig config;
  config.base_latency = Duration(0);
  config.jitter = Duration(0);
  Network network(clock, config);
  auto a = network.create_endpoint("a").value();
  auto b = network.create_endpoint("b").value();
  int volleys = 0;
  a->set_handler([&](const Message&) {
    ++volleys;
    a->send("b", "ping");
  });
  b->set_handler([&](const Message&) {
    ++volleys;
    b->send("a", "pong");
  });
  a->send("b", "serve");
  EXPECT_EQ(network.run_until_idle(/*max_messages=*/50), 50u);
  EXPECT_EQ(volleys, 50);
  // The rally is still alive — the cap ended it, not message exhaustion.
  EXPECT_GT(network.pending(), 0u);
}

TEST(Network, LinkDownPairIsNormalized) {
  SimClock clock;
  Network network(clock, quiet_config());
  auto a = network.create_endpoint("a").value();
  (void)network.create_endpoint("b");
  int received = 0;
  network.find_endpoint("b")->set_handler([&](const Message&) { ++received; });
  // Downed as (b, a), sent as a→b: the same undirected link.
  network.set_link_down("b", "a", true);
  a->send("b", "m");
  network.run_until_idle();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(network.stats().blocked, 1u);
  // Restored with the argument order flipped again.
  network.set_link_down("a", "b", false);
  a->send("b", "m");
  network.run_until_idle();
  EXPECT_EQ(received, 1);
}

// A handle taken before remove_endpoint() stays safe to use afterwards:
// the endpoint survives as a detached shell whose send() reports
// kUnavailable instead of dereferencing the registry's freed entry.
TEST(Network, SendAfterRemoveEndpointReturnsUnavailable) {
  SimClock clock;
  Network network(clock, quiet_config());
  (void)network.create_endpoint("a");
  (void)network.create_endpoint("b");
  std::shared_ptr<Endpoint> handle = network.endpoint_handle("a");
  ASSERT_NE(handle, nullptr);
  EXPECT_FALSE(handle->detached());
  ASSERT_TRUE(network.remove_endpoint("a").ok());
  EXPECT_TRUE(handle->detached());
  EXPECT_EQ(handle->send("b", "m").code(), ErrorCode::kUnavailable);
  EXPECT_EQ(network.endpoint_handle("a"), nullptr);
}

// Same contract when the whole Network goes away first: destruction
// detaches every endpoint, so a surviving handle fails soft.
TEST(Network, SendAfterNetworkDestroyedReturnsUnavailable) {
  SimClock clock;
  std::shared_ptr<Endpoint> handle;
  {
    Network network(clock, quiet_config());
    (void)network.create_endpoint("a");
    handle = network.endpoint_handle("a");
    ASSERT_NE(handle, nullptr);
  }
  EXPECT_TRUE(handle->detached());
  EXPECT_EQ(handle->send("anyone", "m").code(), ErrorCode::kUnavailable);
}

// Messages still queued to an endpoint at its removal count as
// undeliverable at their delivery time instead of silently vanishing
// from the ledger (or worse, reaching a destroyed handler).
TEST(Network, QueuedMessagesToRemovedEndpointCountUndeliverable) {
  SimClock clock;
  Network network(clock, quiet_config());
  auto a = network.create_endpoint("a").value();
  (void)network.create_endpoint("b");
  int received = 0;
  network.find_endpoint("b")->set_handler([&](const Message&) { ++received; });
  a->send("b", "m1");
  a->send("b", "m2");
  ASSERT_TRUE(network.remove_endpoint("b").ok());
  network.run_until_idle();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(network.stats().undeliverable, 2u);
}

// TSan regression (PR 7): remove_endpoint() racing in-flight delivery.
// The delivering thread pins the target endpoint for the duration of its
// handler, so removal defers destruction until the delivery settles;
// before the fix this was a use-after-free of the Endpoint (and its
// handler state) under load.
TEST(Network, RemoveEndpointDuringDeliveryIsRaceFree) {
  SimClock clock;
  Network network(clock, quiet_config());
  auto sender = network.create_endpoint("sender").value();
  (void)network.create_endpoint("victim");
  std::atomic<std::uint64_t> handled{0};
  network.find_endpoint("victim")->set_handler([&](const Message&) {
    handled.fetch_add(1, std::memory_order_relaxed);
    // Hold the delivery open long enough for removal to overlap it.
    std::this_thread::sleep_for(std::chrono::microseconds(20));
  });

  constexpr int kMessages = 400;
  for (int i = 0; i < kMessages; ++i) sender->send("victim", "m");

  std::thread driver([&] {
    for (int i = 0; i < kMessages; ++i) {
      clock.advance(std::chrono::microseconds(10));
      network.deliver_due();
    }
  });
  std::thread remover([&] {
    std::this_thread::sleep_for(std::chrono::microseconds(500));
    EXPECT_TRUE(network.remove_endpoint("victim").ok());
  });
  driver.join();
  remover.join();
  network.run_until_idle();

  // Every message is accounted for: delivered before the removal, or
  // undeliverable after it — none lost, none crashed.
  const NetworkStats stats = network.stats();
  EXPECT_EQ(stats.sent, static_cast<std::uint64_t>(kMessages));
  EXPECT_EQ(stats.delivered + stats.undeliverable,
            static_cast<std::uint64_t>(kMessages));
  EXPECT_EQ(handled.load(), stats.delivered);
  EXPECT_EQ(network.pending(), 0u);
}

}  // namespace
}  // namespace mdsm::net
