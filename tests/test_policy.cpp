// Unit + property tests for context store, expressions, and policy sets.
#include <gtest/gtest.h>

#include "policy/context.hpp"
#include "policy/expression.hpp"
#include "policy/policy_engine.hpp"

namespace mdsm::policy {
namespace {

using model::Value;

// ----------------------------------------------------------- ContextStore

TEST(ContextStore, SetGetHasErase) {
  ContextStore context;
  EXPECT_FALSE(context.has("x"));
  EXPECT_TRUE(context.get("x").is_none());
  context.set("x", Value(5));
  EXPECT_TRUE(context.has("x"));
  EXPECT_EQ(context.get("x"), Value(5));
  context.erase("x");
  EXPECT_FALSE(context.has("x"));
}

TEST(ContextStore, VersionBumpsOnMutation) {
  ContextStore context;
  auto v0 = context.version();
  context.set("x", Value(1));
  auto v1 = context.version();
  EXPECT_GT(v1, v0);
  context.erase("x");
  EXPECT_GT(context.version(), v1);
  context.erase("x");  // erasing nothing does not bump
  EXPECT_EQ(context.version(), v1 + 1);
}

TEST(ContextStore, SnapshotAndNames) {
  ContextStore context;
  context.set("b", Value(2));
  context.set("a", Value(1));
  EXPECT_EQ(context.names(), (std::vector<std::string>{"a", "b"}));
  auto snapshot = context.snapshot();
  EXPECT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot["a"], Value(1));
}

// ------------------------------------------------------------- Expression

Result<Value> eval(std::string_view text, const ContextStore& context) {
  auto expr = Expression::parse(text);
  if (!expr.ok()) return expr.status();
  return expr->evaluate(context);
}

TEST(Expression, Literals) {
  ContextStore context;
  EXPECT_EQ(*eval("42", context), Value(42));
  EXPECT_EQ(*eval("2.5", context), Value(2.5));
  EXPECT_EQ(*eval("true", context), Value(true));
  EXPECT_EQ(*eval("false", context), Value(false));
  EXPECT_EQ(*eval("\"hi\"", context), Value("hi"));
}

TEST(Expression, Arithmetic) {
  ContextStore context;
  EXPECT_EQ(*eval("1 + 2 * 3", context), Value(7));
  EXPECT_EQ(*eval("(1 + 2) * 3", context), Value(9));
  EXPECT_EQ(*eval("10 / 4", context), Value(2));      // int division
  EXPECT_EQ(*eval("10.0 / 4", context), Value(2.5));  // real division
  EXPECT_EQ(*eval("-3 + 1", context), Value(-2));
  EXPECT_EQ(*eval("\"a\" + \"b\"", context), Value("ab"));
}

TEST(Expression, DivisionByZeroIsError) {
  ContextStore context;
  EXPECT_FALSE(eval("1 / 0", context).ok());
  EXPECT_FALSE(eval("1.0 / 0.0", context).ok());
}

TEST(Expression, Comparisons) {
  ContextStore context;
  EXPECT_EQ(*eval("1 < 2", context), Value(true));
  EXPECT_EQ(*eval("2 <= 2", context), Value(true));
  EXPECT_EQ(*eval("3 > 4", context), Value(false));
  EXPECT_EQ(*eval("1 == 1.0", context), Value(true));  // numeric widening
  EXPECT_EQ(*eval("\"a\" < \"b\"", context), Value(true));
  EXPECT_EQ(*eval("\"a\" == \"a\"", context), Value(true));
  EXPECT_EQ(*eval("true == false", context), Value(false));
  EXPECT_EQ(*eval("1 != 2", context), Value(true));
}

TEST(Expression, BooleanLogicShortCircuits) {
  ContextStore context;
  EXPECT_EQ(*eval("true || (1/0 == 1)", context), Value(true));
  EXPECT_EQ(*eval("false && (1/0 == 1)", context), Value(false));
  EXPECT_EQ(*eval("!false", context), Value(true));
  EXPECT_EQ(*eval("!(1 > 2)", context), Value(true));
}

TEST(Expression, ContextLookupAndDefined) {
  ContextStore context;
  context.set("bandwidth", Value(1.5));
  context.set("mode", Value("eco"));
  EXPECT_EQ(*eval("bandwidth >= 1.0 && mode == \"eco\"", context),
            Value(true));
  EXPECT_EQ(*eval("defined(bandwidth)", context), Value(true));
  EXPECT_EQ(*eval("defined(ghost)", context), Value(false));
  // Undefined identifier in comparison → false, not error.
  EXPECT_EQ(*eval("ghost > 3", context), Value(false));
  // Undefined identifier used as a guard → false.
  auto expr = Expression::parse("ghost");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ(*expr->evaluate_bool(context), false);
}

TEST(Expression, DottedIdentifiers) {
  ContextStore context;
  context.set("net.latency", Value(20));
  EXPECT_EQ(*eval("net.latency < 50", context), Value(true));
}

TEST(Expression, EmptyExpressionIsTrue) {
  ContextStore context;
  auto expr = Expression::parse("   ");
  ASSERT_TRUE(expr.ok());
  EXPECT_TRUE(expr->empty());
  EXPECT_EQ(*expr->evaluate_bool(context), true);
}

TEST(Expression, ParseErrors) {
  for (std::string_view bad :
       {"1 +", "(1", "defined(", "defined(1)", "== 3", "1 @ 2",
        "\"unterminated", "a &&"}) {
    EXPECT_FALSE(Expression::parse(bad).ok()) << bad;
  }
}

TEST(Expression, EvaluateBoolRejectsNonBool) {
  ContextStore context;
  auto expr = Expression::parse("1 + 2");
  ASSERT_TRUE(expr.ok());
  EXPECT_FALSE(expr->evaluate_bool(context).ok());
}

TEST(Expression, TypeErrors) {
  ContextStore context;
  EXPECT_FALSE(eval("\"a\" * 2", context).ok());
  EXPECT_FALSE(eval("true + 1", context).ok());
  EXPECT_FALSE(eval("\"a\" < 1", context).ok());
  EXPECT_FALSE(eval("-\"a\"", context).ok());
}

TEST(Expression, CopiesShareCompiledTree) {
  ContextStore context;
  auto expr = Expression::parse("1 + 1");
  ASSERT_TRUE(expr.ok());
  Expression copy = *expr;  // cheap copy by design
  EXPECT_EQ(*copy.evaluate(context), Value(2));
  EXPECT_EQ(copy.text(), "1 + 1");
}

// -------------------------------------------------------------- PolicySet

TEST(PolicySet, HighestPriorityMatchWins) {
  ContextStore context;
  context.set("load", Value(0.9));
  PolicySet policies;
  ASSERT_TRUE(policies.add("default", "", "case1", 0).ok());
  ASSERT_TRUE(policies.add("overload", "load > 0.8", "case2", 10).ok());
  auto decision = policies.evaluate(context);
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(decision->policy_name, "overload");
  EXPECT_EQ(decision->decision, "case2");
  context.set("load", Value(0.1));
  decision = policies.evaluate(context);
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(decision->policy_name, "default");
}

TEST(PolicySet, TieBreaksByInsertionOrder) {
  ContextStore context;
  PolicySet policies;
  policies.add("first", "", "a", 5);
  policies.add("second", "", "b", 5);
  auto decision = policies.evaluate(context);
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(decision->policy_name, "first");
}

TEST(PolicySet, NoMatchReturnsNullopt) {
  ContextStore context;
  PolicySet policies;
  policies.add("never", "false", "x");
  EXPECT_FALSE(policies.evaluate(context).has_value());
}

TEST(PolicySet, EvaluateAllPriorityDescending) {
  ContextStore context;
  PolicySet policies;
  policies.add("low", "", "l", 1);
  policies.add("high", "", "h", 9);
  policies.add("never", "false", "n", 100);
  auto all = policies.evaluate_all(context);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].policy_name, "high");
  EXPECT_EQ(all[1].policy_name, "low");
}

TEST(PolicySet, DuplicateNameAndBadConditionRejected) {
  PolicySet policies;
  ASSERT_TRUE(policies.add("p", "", "x").ok());
  EXPECT_EQ(policies.add("p", "", "y").code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(policies.add("q", "1 +", "y").code(), ErrorCode::kParseError);
  EXPECT_EQ(policies.size(), 1u);
}

TEST(PolicySet, RemovePolicy) {
  PolicySet policies;
  policies.add("p", "", "x");
  EXPECT_TRUE(policies.remove("p").ok());
  EXPECT_EQ(policies.remove("p").code(), ErrorCode::kNotFound);
  EXPECT_TRUE(policies.empty());
}

TEST(PolicySet, ConditionErrorSurfacesViaLastError) {
  ContextStore context;
  context.set("s", Value("str"));
  PolicySet policies;
  policies.add("bad", "s * 2 > 1", "x", 10);
  policies.add("good", "", "fallback", 0);
  auto decision = policies.evaluate(context);
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(decision->policy_name, "good");
  EXPECT_FALSE(policies.last_error().ok());
}

TEST(PolicySet, ParametersCarriedThrough) {
  ContextStore context;
  PolicySet policies;
  policies.add("p", "", "scale", 0, {{"factor", Value(3)}});
  auto decision = policies.evaluate(context);
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(decision->parameters.at("factor"), Value(3));
}

// Property sweep: comparison operators agree with <=> on integer pairs.
class ComparisonProperty
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ComparisonProperty, OperatorsConsistent) {
  auto [a, b] = GetParam();
  ContextStore context;
  context.set("a", Value(a));
  context.set("b", Value(b));
  EXPECT_EQ(*eval("a < b", context), Value(a < b));
  EXPECT_EQ(*eval("a <= b", context), Value(a <= b));
  EXPECT_EQ(*eval("a > b", context), Value(a > b));
  EXPECT_EQ(*eval("a >= b", context), Value(a >= b));
  EXPECT_EQ(*eval("a == b", context), Value(a == b));
  EXPECT_EQ(*eval("a != b", context), Value(a != b));
  // Trichotomy through the expression language.
  int holds = 0;
  holds += eval("a < b", context)->as_bool() ? 1 : 0;
  holds += eval("a == b", context)->as_bool() ? 1 : 0;
  holds += eval("a > b", context)->as_bool() ? 1 : 0;
  EXPECT_EQ(holds, 1);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, ComparisonProperty,
    ::testing::Values(std::pair{1, 2}, std::pair{2, 1}, std::pair{0, 0},
                      std::pair{-5, 5}, std::pair{7, 7}, std::pair{-3, -4}));

}  // namespace
}  // namespace mdsm::policy
