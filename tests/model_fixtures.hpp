// Shared test metamodel: a tiny "session/participant/media" language that
// exercises inheritance, containment, cross-references, enums, defaults
// and multiplicity — the features the domain DSMLs rely on.
#pragma once

#include "model/metamodel.hpp"
#include "model/model.hpp"

namespace mdsm::model::testing {

inline MetamodelPtr make_test_metamodel() {
  Metamodel mm("testlang");
  mm.add_class("NamedElement", "", /*is_abstract=*/true)
      .add_attribute({.name = "label", .type = AttrType::kString});
  auto& session = mm.add_class("Session", "NamedElement");
  session.add_attribute({.name = "state",
                         .type = AttrType::kEnum,
                         .required = true,
                         .enum_literals = {"idle", "open", "closed"},
                         .default_value = Value("idle")});
  session.add_attribute({.name = "bandwidth", .type = AttrType::kReal});
  session.add_attribute({.name = "tags",
                         .type = AttrType::kString,
                         .many = true});
  session.add_reference({.name = "participants",
                         .target_class = "Participant",
                         .containment = true,
                         .many = true});
  session.add_reference({.name = "media",
                         .target_class = "Media",
                         .containment = true,
                         .many = true});
  session.add_reference({.name = "initiator",
                         .target_class = "Participant",
                         .containment = false,
                         .many = false});
  auto& participant = mm.add_class("Participant", "NamedElement");
  participant.add_attribute(
      {.name = "address", .type = AttrType::kString, .required = true});
  participant.add_attribute({.name = "priority", .type = AttrType::kInt});
  auto& media = mm.add_class("Media", "NamedElement");
  media.add_attribute({.name = "kind",
                       .type = AttrType::kEnum,
                       .required = true,
                       .enum_literals = {"audio", "video", "file"}});
  media.add_attribute({.name = "live", .type = AttrType::kBool});
  // A subclass to exercise is_kind_of in references.
  mm.add_class("StreamMedia", "Media")
      .add_attribute({.name = "fps", .type = AttrType::kInt});
  return finalize_metamodel(std::move(mm));
}

/// A small valid model: one session, two participants, one media.
inline Model make_test_model(const MetamodelPtr& mm,
                             const std::string& name = "m1") {
  Model model(name, mm);
  auto session = model.create("Session", "s1");
  model.set_attribute("s1", "state", Value("open"));
  model.set_attribute("s1", "bandwidth", Value(2.5));
  auto alice = model.create_child("s1", "participants", "Participant", "alice");
  model.set_attribute("alice", "address", Value("alice@host"));
  auto bob = model.create_child("s1", "participants", "Participant", "bob");
  model.set_attribute("bob", "address", Value("bob@host"));
  auto media = model.create_child("s1", "media", "StreamMedia", "cam");
  model.set_attribute("cam", "kind", Value("video"));
  model.set_attribute("cam", "fps", Value(30));
  model.add_reference("s1", "initiator", "alice");
  (void)session;
  (void)alice;
  (void)bob;
  (void)media;
  return model;
}

}  // namespace mdsm::model::testing
