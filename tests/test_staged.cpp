// The event-driven staged pipeline (PR 6): cross-thread span parentage,
// deadline expiry while a request is parked between stages, and N
// concurrent retrying requests progressing on fewer than N executor
// threads — the properties that distinguish the continuation-passing
// core from the PR-5 parked pipeline.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "broker/invocation_policy.hpp"
#include "common/log.hpp"
#include "core/platform.hpp"
#include "soak_fixtures.hpp"

namespace mdsm::core {
namespace {

/// Fails the first `failures` executions with a retryable fault, then
/// succeeds — deterministic fuel for retry-path tests.
class FlakyAdapter final : public broker::ResourceAdapter {
 public:
  FlakyAdapter(std::string name, int failures)
      : ResourceAdapter(std::move(name)), remaining_(failures) {}

  Result<model::Value> execute(const std::string& command,
                               const broker::Args& args) override {
    (void)args;
    executed_.fetch_add(1, std::memory_order_relaxed);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) > 0) {
      return Unavailable("injected transient fault");
    }
    return model::Value("done:" + command);
  }

  [[nodiscard]] std::uint64_t executed() const noexcept {
    return executed_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<int> remaining_;
};

/// Completes asynchronously on the platform's event loop after `delay`
/// of loop-clock time — the request parks in the broker stage with no
/// worker held while the "device" is busy.
class ParkingAdapter final : public broker::ResourceAdapter {
 public:
  ParkingAdapter(std::string name, Platform** platform, Duration delay)
      : ResourceAdapter(std::move(name)), platform_(platform), delay_(delay) {}

  Result<model::Value> execute(const std::string& command,
                               const broker::Args&) override {
    return model::Value("sync:" + command);  // unused; async path below
  }

  void execute_async(const std::string& command, const broker::Args&,
                     Completion done) override {
    started_.fetch_add(1, std::memory_order_relaxed);
    (*platform_)->event_loop()->schedule(
        delay_, [command, done = std::move(done)] {
          done(model::Value("late:" + command));
        });
  }

  [[nodiscard]] std::uint64_t started() const noexcept {
    return started_.load(std::memory_order_relaxed);
  }

 private:
  Platform** platform_;
  Duration delay_;
  std::atomic<std::uint64_t> started_{0};
};

struct StagedFixture {
  model::MetamodelPtr dsml;
  std::unique_ptr<Platform> platform;
};

StagedFixture make_staged_platform(PlatformConfig config,
                                   std::unique_ptr<broker::ResourceAdapter>
                                       adapter) {
  StagedFixture out;
  out.dsml = model::testing::make_test_metamodel();
  config.dsml = out.dsml;
  auto assembled =
      Platform::assemble_from_text(soak::kSoakMiddlewareModel, config);
  if (!assembled.ok()) return out;
  out.platform = std::move(assembled.value());
  if (!out.platform->add_resource_adapter(std::move(adapter)).ok() ||
      !out.platform->start().ok()) {
    out.platform.reset();
  }
  return out;
}

// Satellite (PR 6): a request crossing every stage on different workers
// — including a retry that parks on the event loop and resumes on yet
// another thread — must still produce ONE nested span tree: exactly one
// root, every other span reachable from it, nothing left open.
TEST(Staged, CrossThreadSpanParentageStaysOneTree) {
  PlatformConfig config;
  config.pipeline_threads = 4;
  auto fixture = make_staged_platform(
      config, std::make_unique<FlakyAdapter>("svc", /*failures=*/1));
  ASSERT_NE(fixture.platform, nullptr);
  Platform& platform = *fixture.platform;
  broker::InvocationPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff = Duration(200);  // real microseconds, loop timer
  ASSERT_TRUE(platform.broker().resources().set_policy("svc", policy).ok());

  std::atomic<int> done{0};
  ASSERT_TRUE(platform
                  .submit_async(soak::open_session_text("s1"),
                                [&done](Result<controller::ControlScript> r) {
                                  EXPECT_TRUE(r.ok()) << r.status().to_string();
                                  ++done;
                                })
                  .ok());
  while (done.load() != 1) std::this_thread::yield();
  EXPECT_TRUE(platform.stop().ok());

  auto context = platform.last_async_context();
  ASSERT_NE(context, nullptr);
  const obs::Trace& trace = context->trace();
  EXPECT_TRUE(trace.all_closed());
  // Exactly one root, and it is the UI-layer submission span.
  std::size_t roots = 0;
  for (const obs::Span& span : trace.spans()) {
    if (span.parent == 0) {
      ++roots;
      EXPECT_EQ(span.name, "ui.submit");
    } else {
      // No orphans: every non-root span's parent is in the same tree.
      EXPECT_NE(trace.find_id(span.parent), nullptr)
          << span.name << " lost its parent across a thread hop";
    }
  }
  EXPECT_EQ(roots, 1u);
  // The request crossed all four layers...
  EXPECT_EQ(trace.count("runtime.queue"), 1u);
  EXPECT_EQ(trace.count("synthesis.submit"), 1u);
  EXPECT_EQ(trace.count("controller.script"), 1u);
  EXPECT_GE(trace.count("broker.call"), 1u);
  // ...and the flaky resource forced a second attempt, so the trace
  // provably spans a park/resume hop through the event loop.
  EXPECT_GE(trace.count("broker.attempt"), 2u);
}

// Satellite (PR 6): a deadline that expires while the request is parked
// between stages (virtual clock) fires exactly one kTimeout callback at
// expiry — not when a stage eventually notices — and the parked
// continuation is released and cleaned up, not leaked.
TEST(Staged, DeadlineExpiryWhileParkedFiresExactlyOnce) {
  set_log_level(LogLevel::kOff);
  SimClock sim;
  Platform* platform_handle = nullptr;
  PlatformConfig config;
  config.clock = &sim;
  config.pipeline_threads = 1;
  config.manual_event_loop = true;
  auto fixture = make_staged_platform(
      config, std::make_unique<ParkingAdapter>(
                  "svc", &platform_handle, std::chrono::seconds(1)));
  ASSERT_NE(fixture.platform, nullptr);
  Platform& platform = *fixture.platform;
  platform_handle = &platform;

  std::atomic<int> callbacks{0};
  std::atomic<int> timeouts{0};
  SubmitOptions options;
  options.deadline = std::chrono::milliseconds(100);
  ASSERT_TRUE(platform
                  .submit_async(soak::open_session_text("s1"),
                                [&](Result<controller::ControlScript> r) {
                                  ++callbacks;
                                  if (r.status().code() == ErrorCode::kTimeout)
                                    ++timeouts;
                                },
                                options)
                  .ok());
  // Two timers pending = the deadline watchdog + the parked attempt's
  // completion: the request is suspended with no worker held.
  runtime::EventLoop* loop = platform.event_loop();
  ASSERT_NE(loop, nullptr);
  const auto wall_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (loop->pending_timers() < 2 &&
         std::chrono::steady_clock::now() < wall_deadline) {
    std::this_thread::yield();
  }
  ASSERT_EQ(loop->pending_timers(), 2u);
  EXPECT_EQ(callbacks.load(), 0);

  // Virtual time passes the deadline while the request is still parked:
  // the watchdog fires on this poll, the adapter's timer does not.
  sim.advance(std::chrono::milliseconds(200));
  loop->poll();
  EXPECT_EQ(callbacks.load(), 1);
  EXPECT_EQ(timeouts.load(), 1);
  EXPECT_EQ(
      platform.metrics().snapshot().counter_value("ui.watchdog_timeouts"),
      1u);

  // Release the parked continuation: the late completion resumes the
  // chain, which observes the resolved flag and cleans up — it must NOT
  // deliver a second callback.
  sim.advance(std::chrono::seconds(2));
  loop->poll();
  EXPECT_TRUE(platform.stop().ok());  // no leaked inflight slot
  EXPECT_EQ(callbacks.load(), 1);     // exactly once, ever
  set_log_level(LogLevel::kWarn);
}

// Acceptance (PR 6): N concurrent requests all in retry backoff make
// progress on ONE executor thread — backoff parks on the event loop
// instead of sleeping the worker, so a single worker serves all first
// attempts, parks all N, then serves all retries after virtual time
// advances.
TEST(Staged, ConcurrentRetriesProgressOnOneWorkerThread) {
  set_log_level(LogLevel::kOff);
  constexpr int kRequests = 4;
  SimClock sim;
  PlatformConfig config;
  config.clock = &sim;
  config.pipeline_threads = 1;  // fewer threads than retrying requests
  config.manual_event_loop = true;
  auto fixture = make_staged_platform(
      config, std::make_unique<FlakyAdapter>("svc", kRequests));
  ASSERT_NE(fixture.platform, nullptr);
  Platform& platform = *fixture.platform;
  auto* svc = static_cast<FlakyAdapter*>(
      platform.broker().resources().find_adapter("svc"));
  broker::InvocationPolicy policy;
  policy.max_attempts = 2;
  policy.initial_backoff = std::chrono::milliseconds(50);
  ASSERT_TRUE(platform.broker().resources().set_policy("svc", policy).ok());

  std::atomic<int> completed_ok{0};
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(platform
                    .submit_async(
                        soak::open_session_text("s" + std::to_string(i)),
                        [&](Result<controller::ControlScript> r) {
                          if (r.ok()) ++completed_ok;
                        })
                    .ok());
  }
  // All N first attempts fail and park in backoff without any poll: the
  // single worker was never held across a backoff sleep.
  runtime::EventLoop* loop = platform.event_loop();
  ASSERT_NE(loop, nullptr);
  const auto wall_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (loop->pending_timers() < kRequests &&
         std::chrono::steady_clock::now() < wall_deadline) {
    std::this_thread::yield();
  }
  ASSERT_EQ(loop->pending_timers(), static_cast<std::size_t>(kRequests));
  EXPECT_EQ(svc->executed(), static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(completed_ok.load(), 0);

  // One tick of virtual time releases every parked request; the same
  // single worker runs all N retries to completion.
  sim.advance(std::chrono::seconds(10));
  loop->poll();
  while (completed_ok.load() != kRequests &&
         std::chrono::steady_clock::now() < wall_deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(completed_ok.load(), kRequests);
  // Every first attempt retried once; later scripts also close the
  // previous session (the model diff), so there are at least 2N calls.
  EXPECT_GE(svc->executed(), static_cast<std::uint64_t>(2 * kRequests));
  EXPECT_TRUE(platform.stop().ok());
  EXPECT_EQ(platform.metrics().snapshot().counter_value("broker.retries"),
            static_cast<std::uint64_t>(kRequests));
  set_log_level(LogLevel::kWarn);
}

// Per-stage queue visibility: the staged pipeline reports depth/entered
// counters for each of its four stages.
TEST(Staged, StageStatsExposePerStageCounters) {
  PlatformConfig config;
  config.pipeline_threads = 2;
  auto fixture = make_staged_platform(
      config, std::make_unique<FlakyAdapter>("svc", 0));
  ASSERT_NE(fixture.platform, nullptr);
  Platform& platform = *fixture.platform;
  std::atomic<int> done{0};
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(platform
                    .submit_async(
                        soak::open_session_text("s" + std::to_string(i)),
                        [&done](Result<controller::ControlScript> r) {
                          EXPECT_TRUE(r.ok());
                          ++done;
                        })
                    .ok());
  }
  while (done.load() != 3) std::this_thread::yield();
  EXPECT_TRUE(platform.stop().ok());
  const auto stats = platform.stage_stats();
  ASSERT_EQ(stats.size(), 4u);
  EXPECT_EQ(stats[0].name, "synthesis");
  EXPECT_EQ(stats[1].name, "controller");
  EXPECT_EQ(stats[2].name, "broker");
  EXPECT_EQ(stats[3].name, "complete");
  EXPECT_EQ(stats[0].entered, 3u);
  EXPECT_EQ(stats[3].entered, 3u);
  // Per-stage delay histograms landed in the registry.
  const auto snapshot = platform.metrics().snapshot();
  EXPECT_NE(snapshot.histogram("stage.synthesis.delay_us"), nullptr);
  EXPECT_NE(snapshot.histogram("stage.complete.delay_us"), nullptr);
}

// The PR-5 parked pipeline stays available behind the config flag, and
// the exactly-once callback ledger holds on both paths.
TEST(Staged, ParkedPipelineStillAvailableBehindFlag) {
  PlatformConfig config;
  config.pipeline_threads = 2;
  config.staged_pipeline = false;
  auto fixture = make_staged_platform(
      config, std::make_unique<FlakyAdapter>("svc", 0));
  ASSERT_NE(fixture.platform, nullptr);
  Platform& platform = *fixture.platform;
  std::atomic<int> done{0};
  ASSERT_TRUE(platform
                  .submit_async(soak::open_session_text("s1"),
                                [&done](Result<controller::ControlScript> r) {
                                  EXPECT_TRUE(r.ok());
                                  ++done;
                                })
                  .ok());
  while (done.load() != 1) std::this_thread::yield();
  EXPECT_TRUE(platform.stop().ok());
  EXPECT_TRUE(platform.stage_stats().empty());  // no stages on this path
}

// PR 10 bugfix regression: only EXECUTED requests feed the admission
// latency EWMA. A refusal resolves in microseconds, so a burst of them
// (here: parse errors caught in the synthesis stage before any pipeline
// work) used to drag the predicted latency toward zero — and the
// controller would then re-admit doomed work it should have shed.
TEST(Staged, RefusalBurstDoesNotFeedTheAdmissionEwma) {
  PlatformConfig config;
  config.pipeline_threads = 2;
  auto fixture = make_staged_platform(
      config, std::make_unique<FlakyAdapter>("svc", 0));
  ASSERT_NE(fixture.platform, nullptr);
  Platform& platform = *fixture.platform;

  // Seed the prediction with genuinely completed work.
  std::atomic<int> done{0};
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(platform
                    .submit_async(
                        soak::open_session_text("e" + std::to_string(i)),
                        [&done](Result<controller::ControlScript> r) {
                          EXPECT_TRUE(r.ok()) << r.status().to_string();
                          ++done;
                        })
                    .ok());
  }
  while (done.load() != 4) std::this_thread::yield();
  const Duration seeded = platform.admission().predicted_latency();
  EXPECT_GT(seeded.count(), 0);

  // The refusal burst: every submission dies at parse, executed = false.
  std::atomic<int> refused{0};
  constexpr int kBurst = 32;
  for (int i = 0; i < kBurst; ++i) {
    ASSERT_TRUE(platform
                    .submit_async("not a model {",
                                  [&refused](
                                      Result<controller::ControlScript> r) {
                                    EXPECT_FALSE(r.ok());
                                    ++refused;
                                  })
                    .ok());
  }
  while (refused.load() != kBurst) std::this_thread::yield();

  // Not one refusal touched the prediction.
  EXPECT_EQ(platform.admission().predicted_latency(), seeded);
  EXPECT_TRUE(platform.stop().ok());
}

}  // namespace
}  // namespace mdsm::core
