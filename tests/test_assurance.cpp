// Tests for cross-layer assurance checking (core/assurance.hpp) — the
// paper's future-work challenge of verifying that a middleware model
// adequately supports its application-level DSML.
#include <gtest/gtest.h>

#include "core/assurance.hpp"
#include "core/middleware_metamodel.hpp"
#include "domains/comm/cml.hpp"
#include "domains/comm/cvm.hpp"
#include "domains/mgrid/mgridml.hpp"
#include "domains/mgrid/mgridvm.hpp"
#include "model/text_format.hpp"
#include "model_fixtures.hpp"

namespace mdsm::core {
namespace {

using model::Value;

Result<AssuranceReport> check_text(std::string_view text,
                                   model::MetamodelPtr dsml) {
  auto mw = model::parse_model(text, middleware_metamodel());
  if (!mw.ok()) return mw.status();
  return check_platform_model(*mw, dsml);
}

bool has_finding(const AssuranceReport& report, std::string_view needle) {
  for (const Finding& finding : report.findings) {
    if (finding.message.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(Assurance, ShippedDomainModelsHaveNoErrors) {
  auto comm_report =
      check_text(comm::cvm_middleware_model_text(), comm::cml_metamodel());
  ASSERT_TRUE(comm_report.ok()) << comm_report.status().to_string();
  EXPECT_EQ(comm_report->error_count(), 0u) << comm_report->to_text();
  auto mgrid_report = check_text(mgrid::mgridvm_middleware_model_text(),
                                 mgrid::mgridml_metamodel());
  ASSERT_TRUE(mgrid_report.ok()) << mgrid_report.status().to_string();
  EXPECT_EQ(mgrid_report->error_count(), 0u) << mgrid_report->to_text();
}

TEST(Assurance, DetectsLtsCommandNobodyExecutes) {
  constexpr std::string_view text = R"mw(
model broken conforms mdsm
object MiddlewarePlatform mw {
  name = "p"
  child ui UiLayerSpec u { dsml = "testlang" }
  child broker BrokerLayerSpec b {
    child actions ActionSpec a1 {
      name = "noop-action"
      child steps StepSpec s1 { op = emit a = "x" }
    }
    child handlers HandlerSpec h1 { signal = "served" actions -> a1 }
  }
  child controller ControllerLayerSpec c {
    child actions ActionSpec ca {
      name = "fwd"
      child steps StepSpec cs { op = broker-call a = "served" }
    }
    child bindings BindingSpec bb { command = "known.cmd" actions -> ca }
  }
  child synthesis SynthesisLayerSpec se {
    child transitions TransitionSpec t1 {
      from = "initial" to = "s" kind = add-object class = "Session"
      child commands CommandTemplateSpec ct { name = "orphan.cmd" }
    }
  }
}
)mw";
  auto report = check_text(text, model::testing::make_test_metamodel());
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_FALSE(report->ok());
  EXPECT_TRUE(has_finding(*report, "orphan.cmd")) << report->to_text();
}

TEST(Assurance, DetectsBrokerCallWithoutHandler) {
  constexpr std::string_view text = R"mw(
model broken conforms mdsm
object MiddlewarePlatform mw {
  name = "p"
  child ui UiLayerSpec u { dsml = "testlang" }
  child broker BrokerLayerSpec b { }
  child controller ControllerLayerSpec c {
    child actions ActionSpec ca {
      name = "fwd"
      child steps StepSpec cs { op = broker-call a = "ghost.signal" }
    }
    child bindings BindingSpec bb { command = "cmd" actions -> ca }
  }
  child synthesis SynthesisLayerSpec se {
    child transitions TransitionSpec t1 {
      from = "initial" to = "s" kind = add-object class = "Session"
      child commands CommandTemplateSpec ct { name = "cmd" }
    }
  }
}
)mw";
  auto report = check_text(text, model::testing::make_test_metamodel());
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());
  EXPECT_TRUE(has_finding(*report, "ghost.signal")) << report->to_text();
}

TEST(Assurance, DetectsDsmlMismatchesInTriggers) {
  constexpr std::string_view text = R"mw(
model broken conforms mdsm
object MiddlewarePlatform mw {
  name = "p"
  child ui UiLayerSpec u { dsml = "testlang" }
  child broker BrokerLayerSpec b { }
  child controller ControllerLayerSpec c { }
  child synthesis SynthesisLayerSpec se {
    child transitions TransitionSpec t1 {
      from = "initial" to = "a" kind = add-object class = "Ghost"
    }
    child transitions TransitionSpec t2 {
      from = "initial" to = "b" kind = set-attribute
      class = "Session" feature = "no_such_attr"
    }
    child transitions TransitionSpec t3 {
      from = "nowhere" to = "c" kind = add-object class = "Session"
    }
  }
}
)mw";
  auto report = check_text(text, model::testing::make_test_metamodel());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(has_finding(*report, "Ghost")) << report->to_text();
  EXPECT_TRUE(has_finding(*report, "no_such_attr"));
  EXPECT_TRUE(has_finding(*report, "unreachable"));
  EXPECT_GE(report->error_count(), 2u);
  EXPECT_GE(report->warning_count(), 1u);
}

TEST(Assurance, DetectsUnsatisfiableDscAndUndeclaredDependencies) {
  constexpr std::string_view text = R"mw(
model broken conforms mdsm
object MiddlewarePlatform mw {
  name = "p"
  child ui UiLayerSpec u { dsml = "testlang" }
  child broker BrokerLayerSpec b { }
  child controller ControllerLayerSpec c {
    child dscs DscSpec d1 { name = "op.a" }
    child dscs DscSpec d2 { name = "op.b" }
    child procedures ProcedureSpec p1 {
      name = "pa"
      classifier = "op.a"
      dependencies = ["op.b", "op.ghost"]
    }
    child mappings CommandMappingSpec m1 { command = "cmd" dsc = "op.a" }
  }
  child synthesis SynthesisLayerSpec se { }
}
)mw";
  auto report = check_text(text, model::testing::make_test_metamodel());
  ASSERT_TRUE(report.ok());
  // op.ghost undeclared; op.b required but has no provider.
  EXPECT_TRUE(has_finding(*report, "op.ghost")) << report->to_text();
  EXPECT_TRUE(has_finding(*report, "no procedure is classified"));
}

TEST(Assurance, WarnsOnClassifierDependencyCycle) {
  constexpr std::string_view text = R"mw(
model cyclic conforms mdsm
object MiddlewarePlatform mw {
  name = "p"
  child ui UiLayerSpec u { dsml = "testlang" }
  child broker BrokerLayerSpec b { }
  child controller ControllerLayerSpec c {
    child dscs DscSpec d1 { name = "op.a" }
    child dscs DscSpec d2 { name = "op.b" }
    child procedures ProcedureSpec p1 {
      name = "pa" classifier = "op.a" dependencies = ["op.b"]
    }
    child procedures ProcedureSpec p2 {
      name = "pb" classifier = "op.b" dependencies = ["op.a"]
    }
  }
  child synthesis SynthesisLayerSpec se { }
}
)mw";
  auto report = check_text(text, model::testing::make_test_metamodel());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(has_finding(*report, "cycle")) << report->to_text();
}

TEST(Assurance, DetectsSymptomWithoutPlan) {
  constexpr std::string_view text = R"mw(
model broken conforms mdsm
object MiddlewarePlatform mw {
  name = "p"
  child ui UiLayerSpec u { dsml = "testlang" }
  child broker BrokerLayerSpec b {
    child symptoms SymptomSpec sy {
      name = "s" topic = "resource.x" request = "unhandled-request"
    }
  }
  child controller ControllerLayerSpec c { }
  child synthesis SynthesisLayerSpec se { }
}
)mw";
  auto report = check_text(text, model::testing::make_test_metamodel());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(has_finding(*report, "unhandled-request")) << report->to_text();
  EXPECT_FALSE(report->ok());
}

TEST(Assurance, WarnsOnUndeclaredResourceAndDeadSpecs) {
  constexpr std::string_view text = R"mw(
model warny conforms mdsm
object MiddlewarePlatform mw {
  name = "p"
  child ui UiLayerSpec u { dsml = "testlang" }
  child broker BrokerLayerSpec b {
    child actions ActionSpec a1 {
      name = "served-action"
      child steps StepSpec s1 { op = invoke a = "ghost-res" b = "cmd" }
    }
    child actions ActionSpec a2 {
      name = "dead-action"
      child steps StepSpec s2 { op = emit a = "t" }
    }
    child handlers HandlerSpec h1 { signal = "served" actions -> a1 }
    child resources ResourceSpec r1 { name = "real-res" }
  }
  child controller ControllerLayerSpec c {
    child actions ActionSpec ca1 {
      name = "fwd"
      child steps StepSpec cs { op = broker-call a = "served" }
    }
    child actions ActionSpec ca2 {
      name = "dead-controller-action"
      child steps StepSpec cs2 { op = noop }
    }
    child bindings BindingSpec bb { command = "cmd" actions -> ca1 }
  }
  child synthesis SynthesisLayerSpec se { }
}
)mw";
  auto report = check_text(text, model::testing::make_test_metamodel());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->error_count(), 0u) << report->to_text();
  EXPECT_TRUE(has_finding(*report, "ghost-res"));
  EXPECT_TRUE(has_finding(*report, "dead-action"));
  EXPECT_TRUE(has_finding(*report, "dead-controller-action"));
}

TEST(Assurance, UiMismatchAndInputValidation) {
  auto mw = model::parse_model(comm::cvm_middleware_model_text(),
                               middleware_metamodel());
  ASSERT_TRUE(mw.ok());
  // Wrong DSML supplied → error finding.
  auto report = check_platform_model(*mw, mgrid::mgridml_metamodel());
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());
  EXPECT_TRUE(has_finding(*report, "declares DSML"));
  // Non-middleware model → invalid-argument.
  model::Model foreign("x", comm::cml_metamodel());
  EXPECT_EQ(
      check_platform_model(foreign, comm::cml_metamodel()).status().code(),
      ErrorCode::kInvalidArgument);
  // Null DSML → invalid-argument.
  EXPECT_EQ(check_platform_model(*mw, nullptr).status().code(),
            ErrorCode::kInvalidArgument);
}

TEST(Assurance, ReportFormatting) {
  AssuranceReport report;
  report.findings.push_back(
      {FindingSeverity::kError, "broker", "x", "broken"});
  report.findings.push_back(
      {FindingSeverity::kWarning, "ui", "y", "iffy"});
  EXPECT_EQ(report.error_count(), 1u);
  EXPECT_EQ(report.warning_count(), 1u);
  EXPECT_FALSE(report.ok());
  std::string text = report.to_text();
  EXPECT_NE(text.find("error [broker] x: broken"), std::string::npos);
  EXPECT_NE(text.find("warning [ui] y: iffy"), std::string::npos);
}

}  // namespace
}  // namespace mdsm::core
