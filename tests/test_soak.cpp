// Multi-threaded soak of a running Platform: N threads hammering
// make_context()/submit_model_text() against a chaotic resource adapter
// (clean failures, thrown exceptions, stalls), with EventBus
// subscribe/unsubscribe and TimerService churn in the background. The
// assertions are ledger reconciliations — every submission must be
// accounted for exactly once across the metrics registry, the layer
// stats, the resource trace and the chaos counters; nothing lost,
// nothing duplicated, nothing deadlocked.
//
// This binary is the TSan CI job's main course (with test_concurrency):
// build with -DMDSM_TSAN=ON to run it under ThreadSanitizer.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "runtime/executor.hpp"
#include "runtime/timer_service.hpp"
#include "soak_fixtures.hpp"

namespace mdsm {
namespace {

using soak::make_soak_platform;
using soak::open_session_text;

struct SilenceLogs : ::testing::Test {
  void SetUp() override { set_log_level(LogLevel::kOff); }
  void TearDown() override { set_log_level(LogLevel::kWarn); }
};

using SoakTest = SilenceLogs;

TEST_F(SoakTest, ConcurrentSubmissionsReconcileUnderChaos) {
  broker::ChaosConfig chaos_config;
  chaos_config.fail_rate = 0.15;
  chaos_config.throw_rate = 0.10;
  chaos_config.delay_rate = 0.05;
  chaos_config.delay = Duration(200);  // 200µs stalls
  auto soaked = make_soak_platform(chaos_config);
  ASSERT_TRUE(soaked.ok()) << soaked.status.to_string();
  core::Platform& platform = *soaked.platform;

  // Ledger of controller-reported command failures, fed by the bus.
  std::atomic<std::uint64_t> error_events{0};
  auto error_sub = platform.bus().subscribe(
      "controller.error",
      [&error_events](const runtime::Event&) {
        error_events.fetch_add(1, std::memory_order_relaxed);
      });

  constexpr int kThreads = 4;
  constexpr int kPerThread = 40;
  constexpr std::uint64_t kTotal = kThreads * kPerThread;
  std::atomic<std::uint64_t> ok_submissions{0};
  std::atomic<std::uint64_t> failed_submissions{0};
  std::vector<std::vector<std::uint64_t>> request_ids(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        std::string id = "s-" + std::to_string(t) + "-" + std::to_string(i);
        obs::RequestContext context = platform.make_context();
        request_ids[static_cast<std::size_t>(t)].push_back(context.id());
        auto script =
            platform.submit_model_text(open_session_text(id), context);
        if (script.ok()) {
          ok_submissions.fetch_add(1, std::memory_order_relaxed);
        } else {
          failed_submissions.fetch_add(1, std::memory_order_relaxed);
        }
        // Per-request trace sanity: the UI root span exists and error
        // paths closed every span they opened.
        EXPECT_GE(context.trace().count("ui.submit"), 1u);
        EXPECT_TRUE(context.trace().all_closed());
      }
    });
  }
  for (auto& thread : threads) thread.join();

  platform.bus().unsubscribe(error_sub);

  // No lost or duplicated requests: every submission returned (command
  // failures are contained per-command, they do not fail the request),
  // and every minted request id is unique.
  EXPECT_EQ(ok_submissions.load(), kTotal);
  EXPECT_EQ(failed_submissions.load(), 0u);
  std::set<std::uint64_t> unique_ids;
  for (const auto& batch : request_ids) {
    for (std::uint64_t id : batch) EXPECT_TRUE(unique_ids.insert(id).second);
  }
  EXPECT_EQ(unique_ids.size(), kTotal);

  // Ledger reconciliation across all four layers plus the chaos wrapper.
  const broker::ChaosStats chaos = soaked.chaos->stats();
  const obs::MetricsSnapshot snapshot = platform.metrics().snapshot();
  EXPECT_EQ(snapshot.counter_value("requests.submitted"), kTotal);
  EXPECT_EQ(snapshot.counter_value("synthesis.models"), kTotal);
  EXPECT_EQ(snapshot.counter_value("synthesis.commands"), kTotal);
  EXPECT_EQ(platform.controller().stats().commands_executed, kTotal);
  // Each chaos fault fails exactly one command; each failed command is
  // one controller error, reported once on the bus.
  const std::uint64_t faults = chaos.threw + chaos.failed;
  EXPECT_EQ(platform.controller().stats().errors, faults);
  EXPECT_EQ(snapshot.counter_value("controller.errors"), faults);
  EXPECT_EQ(error_events.load(), faults);
  // The command trace records every issued command exactly once, even
  // ones whose adapter then threw.
  EXPECT_EQ(snapshot.counter_value("broker.commands"),
            platform.trace().size());
  EXPECT_EQ(platform.trace().size(), chaos.executed);
  EXPECT_EQ(snapshot.counter_value("broker.adapter_exceptions"),
            chaos.threw);
  // Chaos outcomes partition its observations; only clean passes reach
  // the wrapped resource.
  EXPECT_EQ(chaos.executed, chaos.passed + chaos.failed + chaos.threw);
  EXPECT_EQ(chaos.passed, soaked.inner->executed());
  // With a 25% combined fault rate over >=160 commands, both paths ran.
  EXPECT_GT(faults, 0u);
  EXPECT_GT(chaos.passed, 0u);

  EXPECT_TRUE(platform.stop().ok());
}

TEST_F(SoakTest, BackgroundBusAndTimerChurnDoesNotDisturbSubmissions) {
  auto soaked = make_soak_platform({});  // fault-free: exact arithmetic
  ASSERT_TRUE(soaked.ok()) << soaked.status.to_string();
  core::Platform& platform = *soaked.platform;
  const std::size_t baseline_subscriptions =
      platform.bus().subscription_count();

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> churn_deliveries{0};
  std::vector<std::thread> background;
  // EventBus churn: subscribe, publish into the subscription, drop it —
  // forever, on two threads, on topics the platform does not use.
  for (int c = 0; c < 2; ++c) {
    background.emplace_back([&, c] {
      const std::string topic = "soak.churn." + std::to_string(c);
      while (!stop.load(std::memory_order_relaxed)) {
        auto id = platform.bus().subscribe(
            topic, [&churn_deliveries](const runtime::Event&) {
              churn_deliveries.fetch_add(1, std::memory_order_relaxed);
            });
        platform.bus().publish(topic, "churn");
        platform.bus().unsubscribe(id);
      }
    });
  }
  // TimerService churn: each thread drives its own service (the class is
  // documented single-threaded; the rule is enforced by this usage).
  std::atomic<std::uint64_t> timers_fired{0};
  background.emplace_back([&] {
    runtime::TimerService timers(obs::steady_clock());
    while (!stop.load(std::memory_order_relaxed)) {
      auto keep = timers.schedule(Duration(0), [&timers_fired] {
        timers_fired.fetch_add(1, std::memory_order_relaxed);
      });
      auto cancelled = timers.schedule(Duration(1'000'000), [] {});
      timers.cancel(cancelled);
      timers.run_due();
      (void)keep;
    }
    timers.run_due();
  });

  constexpr int kThreads = 2;
  constexpr int kPerThread = 30;
  constexpr std::uint64_t kTotal = kThreads * kPerThread;
  std::vector<std::thread> submitters;
  std::atomic<std::uint64_t> ok_submissions{0};
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        std::string id = "c-" + std::to_string(t) + "-" + std::to_string(i);
        obs::RequestContext context = platform.make_context();
        if (platform.submit_model_text(open_session_text(id), context).ok()) {
          ok_submissions.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : submitters) thread.join();
  stop = true;
  for (auto& thread : background) thread.join();

  EXPECT_EQ(ok_submissions.load(), kTotal);
  // Fault-free: exactly two resource commands per submission.
  EXPECT_EQ(platform.trace().size(), 2 * kTotal);
  EXPECT_EQ(soaked.inner->executed(), 2 * kTotal);
  EXPECT_EQ(platform.controller().stats().errors, 0u);
  // The churn left no subscriptions behind and timers really cycled.
  EXPECT_EQ(platform.bus().subscription_count(), baseline_subscriptions);
  EXPECT_GT(churn_deliveries.load(), 0u);
  EXPECT_GT(timers_fired.load(), 0u);

  // The platform still serves the deterministic Case-1 path after the
  // storm: open one more session, then close it.
  obs::RequestContext open_context = platform.make_context();
  ASSERT_TRUE(platform
                  .submit_model_text(open_session_text("s-final"),
                                     open_context)
                  .ok());
  obs::RequestContext close_context = platform.make_context();
  ASSERT_TRUE(platform
                  .submit_model_text(soak::close_session_text("s-final"),
                                     close_context)
                  .ok());
  EXPECT_EQ(platform.controller().stats().case1_executions, 1u);
  ASSERT_FALSE(platform.trace().entries().empty());
  EXPECT_EQ(platform.trace().entries().back(), "svc.close(id=\"s-final\")");

  EXPECT_TRUE(platform.stop().ok());
}

TEST_F(SoakTest, ExecutorDrainSurvivesThrowingTasksUnderLoad) {
  obs::MetricsRegistry metrics;
  runtime::Executor executor(4);
  executor.set_metrics(&metrics);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::atomic<std::int64_t> completed{0};
  std::uint64_t expected_failures = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      if (i % 7 == 3) ++expected_failures;
    }
  }
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&executor, &completed] {
      for (int i = 0; i < kPerThread; ++i) {
        if (i % 7 == 3) {
          executor.submit(
              [] { throw std::runtime_error("soak: injected task fault"); });
        } else {
          executor.submit([&completed] {
            completed.fetch_add(1, std::memory_order_relaxed);
          });
        }
      }
    });
  }
  for (auto& thread : submitters) thread.join();

  // The throwing tasks must neither terminate the process nor strand
  // drain(): it returns with every surviving task completed.
  executor.drain();
  EXPECT_EQ(completed.load(),
            static_cast<std::int64_t>(kThreads * kPerThread -
                                      expected_failures));
  EXPECT_EQ(executor.task_failures(), expected_failures);
  EXPECT_EQ(metrics.snapshot().counter_value(
                "runtime.executor_task_failures"),
            expected_failures);

  // The pool is still serviceable after containing the faults.
  completed = 0;
  for (int i = 0; i < 50; ++i) {
    executor.submit(
        [&completed] { completed.fetch_add(1, std::memory_order_relaxed); });
  }
  executor.drain();
  EXPECT_EQ(completed.load(), 50);
}

}  // namespace
}  // namespace mdsm
