// Unit tests for the common vocabulary: Status/Result, strings, ids, clocks.
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/ids.hpp"
#include "common/status.hpp"
#include "common/strings.hpp"

namespace mdsm {
namespace {

TEST(Status, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kOk);
  EXPECT_EQ(status.to_string(), "ok");
}

TEST(Status, FactoryHelpersCarryCodeAndMessage) {
  Status status = NotFound("missing widget");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kNotFound);
  EXPECT_EQ(status.message(), "missing widget");
  EXPECT_EQ(status.to_string(), "not-found: missing widget");
}

TEST(Status, EqualityComparesCodeOnly) {
  EXPECT_EQ(NotFound("a"), NotFound("b"));
  EXPECT_FALSE(NotFound("a") == Timeout("a"));
}

TEST(Status, AllCodesHaveNames) {
  for (int code = 0; code <= static_cast<int>(ErrorCode::kInternal); ++code) {
    EXPECT_NE(to_string(static_cast<ErrorCode>(code)), "unknown");
  }
}

TEST(Result, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> result = InvalidArgument("nope");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(result.value_or(-1), -1);
  EXPECT_THROW((void)result.value(), BadResultAccess);
}

TEST(Result, OkStatusAsErrorIsRewrittenToInternal) {
  Result<int> result = Status::Ok();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kInternal);
}

TEST(Result, MoveOutValue) {
  Result<std::string> result = std::string("payload");
  std::string taken = std::move(result).value();
  EXPECT_EQ(taken, "payload");
}

TEST(Strings, TrimStripsBothEnds) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, SplitPreservesEmptyFields) {
  auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitWsDropsEmptyFields) {
  auto parts = split_ws("  a \t b\nc  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, JoinRoundTripsSplit) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(join(parts, ","), "x,y,z");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, IdentifierValidation) {
  EXPECT_TRUE(is_identifier("session-1"));
  EXPECT_TRUE(is_identifier("_x.y"));
  EXPECT_FALSE(is_identifier(""));
  EXPECT_FALSE(is_identifier("1abc"));
  EXPECT_FALSE(is_identifier("a b"));
}

TEST(Ids, MonotoneAndUniqueAcrossThreads) {
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  std::vector<std::vector<std::uint64_t>> results(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&results, t] {
      for (int i = 0; i < kPerThread; ++i) results[t].push_back(next_id());
    });
  }
  for (auto& thread : threads) thread.join();
  std::set<std::uint64_t> all;
  for (const auto& batch : results) {
    for (auto id : batch) EXPECT_TRUE(all.insert(id).second);
  }
  EXPECT_EQ(all.size(), 4u * kPerThread);
}

TEST(Ids, TaggedIdsCarryPrefix) {
  std::string id = next_tagged_id("sig");
  EXPECT_EQ(id.rfind("sig-", 0), 0u);
}

TEST(SimClock, AdvancesManually) {
  SimClock clock;
  TimePoint t0 = clock.now();
  clock.advance(std::chrono::milliseconds(5));
  EXPECT_EQ((clock.now() - t0), Duration(5000));
  clock.advance(Duration(-100));  // never goes backward
  EXPECT_EQ((clock.now() - t0), Duration(5000));
}

TEST(SimClock, SetNeverMovesBackward) {
  SimClock clock;
  clock.advance(Duration(1000));
  TimePoint t = clock.now();
  clock.set(t - Duration(500));
  EXPECT_EQ(clock.now(), t);
  clock.set(t + Duration(500));
  EXPECT_EQ(clock.now(), t + Duration(500));
}

TEST(Stopwatch, MeasuresSimTime) {
  SimClock clock;
  Stopwatch watch(clock);
  clock.advance(std::chrono::milliseconds(12));
  EXPECT_DOUBLE_EQ(watch.elapsed_ms(), 12.0);
  watch.reset();
  EXPECT_DOUBLE_EQ(watch.elapsed_ms(), 0.0);
}

TEST(SteadyClock, IsMonotone) {
  SteadyClock clock;
  TimePoint a = clock.now();
  TimePoint b = clock.now();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace mdsm
