// Crowdsensing-domain tests: query models on devices driving periodic
// sampling, provider-side aggregation, and on-the-fly model updates on
// long-running queries.
#include <gtest/gtest.h>

#include "domains/crowd/fleet.hpp"

namespace mdsm::crowd {
namespace {

using model::Value;

constexpr std::string_view kTempQuery = R"(
model campaign conforms csml
object SensingQuery temp-q {
  sensor = temperature
  aggregate = avg
  period_s = 10
}
)";

TEST(QueryAggregate, AllAggregateKinds) {
  QueryAggregate aggregate;
  for (double value : {3.0, 1.0, 5.0}) {
    if (aggregate.count == 0) {
      aggregate.min = aggregate.max = value;
    } else {
      aggregate.min = std::min(aggregate.min, value);
      aggregate.max = std::max(aggregate.max, value);
    }
    aggregate.sum += value;
    ++aggregate.count;
  }
  aggregate.aggregate = "avg";
  EXPECT_DOUBLE_EQ(aggregate.result(), 3.0);
  aggregate.aggregate = "min";
  EXPECT_DOUBLE_EQ(aggregate.result(), 1.0);
  aggregate.aggregate = "max";
  EXPECT_DOUBLE_EQ(aggregate.result(), 5.0);
  aggregate.aggregate = "count";
  EXPECT_DOUBLE_EQ(aggregate.result(), 3.0);
}

TEST(CrowdFleet, SingleDeviceSamplesAndProviderAggregates) {
  auto fleet = make_fleet();
  CrowdDevice& device = fleet->add_device("phone-1", 1);
  auto script = device.submit_model_text(kTempQuery);
  ASSERT_TRUE(script.ok()) << script.status().to_string();
  EXPECT_EQ(device.active_queries(), 1u);
  // 5 sampling periods.
  fleet->advance(std::chrono::seconds(10), 5);
  EXPECT_EQ(device.samples_sent(), 5u);
  const QueryAggregate* aggregate = fleet->provider->query("temp-q");
  ASSERT_NE(aggregate, nullptr);
  EXPECT_EQ(aggregate->count, 5u);
  // Temperature baseline is 20 ± small synthetic variation.
  EXPECT_GT(aggregate->result(), 15.0);
  EXPECT_LT(aggregate->result(), 25.0);
}

TEST(CrowdFleet, ManyDevicesContributeToOneQuery) {
  auto fleet = make_fleet();
  for (int device = 0; device < 20; ++device) {
    auto& added = fleet->add_device("phone-" + std::to_string(device),
                                    static_cast<std::uint32_t>(device));
    ASSERT_TRUE(added.submit_model_text(kTempQuery).ok());
  }
  fleet->advance(std::chrono::seconds(10), 3);
  const QueryAggregate* aggregate = fleet->provider->query("temp-q");
  ASSERT_NE(aggregate, nullptr);
  EXPECT_EQ(aggregate->count, 60u);  // 20 devices × 3 periods
  EXPECT_EQ(fleet->provider->reports_received(), 60u);
}

TEST(CrowdFleet, OnTheFlyPeriodChangeTakesEffect) {
  auto fleet = make_fleet();
  CrowdDevice& device = fleet->add_device("phone-1", 1);
  ASSERT_TRUE(device.submit_model_text(kTempQuery).ok());
  fleet->advance(std::chrono::seconds(10), 2);
  EXPECT_EQ(device.samples_sent(), 2u);
  // Halve the period on the running query (model update, same object id).
  ASSERT_TRUE(device
                  .submit_model_text(R"(
model campaign conforms csml
object SensingQuery temp-q {
  sensor = temperature
  aggregate = avg
  period_s = 5
}
)")
                  .ok());
  fleet->advance(std::chrono::seconds(5), 4);
  EXPECT_EQ(device.samples_sent(), 6u);  // 2 + 4 at the faster rate
}

TEST(CrowdFleet, DeactivatingQueryStopsSampling) {
  auto fleet = make_fleet();
  CrowdDevice& device = fleet->add_device("phone-1", 1);
  ASSERT_TRUE(device.submit_model_text(kTempQuery).ok());
  fleet->advance(std::chrono::seconds(10), 2);
  ASSERT_TRUE(device
                  .submit_model_text(R"(
model campaign conforms csml
object SensingQuery temp-q {
  sensor = temperature
  aggregate = avg
  period_s = 10
  active = false
}
)")
                  .ok());
  EXPECT_EQ(device.active_queries(), 0u);
  fleet->advance(std::chrono::seconds(10), 5);
  EXPECT_EQ(device.samples_sent(), 2u);  // no further samples
}

TEST(CrowdFleet, RemovingQueryAlsoStops) {
  auto fleet = make_fleet();
  CrowdDevice& device = fleet->add_device("phone-1", 1);
  ASSERT_TRUE(device.submit_model_text(kTempQuery).ok());
  ASSERT_TRUE(device.submit_model_text("model empty conforms csml\n").ok());
  EXPECT_EQ(device.active_queries(), 0u);
}

TEST(CrowdFleet, MultipleQueriesPerDevice) {
  auto fleet = make_fleet();
  CrowdDevice& device = fleet->add_device("phone-1", 3);
  ASSERT_TRUE(device
                  .submit_model_text(R"(
model campaign conforms csml
object SensingQuery temp-q { sensor = temperature period_s = 10 }
object SensingQuery noise-q { sensor = noise aggregate = max period_s = 20 }
)")
                  .ok());
  EXPECT_EQ(device.active_queries(), 2u);
  fleet->advance(std::chrono::seconds(10), 4);  // 40s: 4 temp + 2 noise
  EXPECT_EQ(device.samples_sent(), 6u);
  ASSERT_NE(fleet->provider->query("noise-q"), nullptr);
  EXPECT_EQ(fleet->provider->query("noise-q")->aggregate, "max");
  EXPECT_GT(fleet->provider->query("noise-q")->result(), 50.0);
}

TEST(CrowdFleet, DeterministicAcrossRuns) {
  auto run = [] {
    auto fleet = make_fleet();
    auto& device = fleet->add_device("phone-1", 9);
    (void)device.submit_model_text(kTempQuery);
    fleet->advance(std::chrono::seconds(10), 10);
    return fleet->provider->query("temp-q")->result();
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(CrowdFleet, BadModelRejectedWithoutSideEffects) {
  auto fleet = make_fleet();
  CrowdDevice& device = fleet->add_device("phone-1", 1);
  auto result = device.submit_model_text(R"(
model bad conforms csml
object SensingQuery q { sensor = temperature }
)");  // missing required period_s
  EXPECT_EQ(result.status().code(), ErrorCode::kConformanceError);
  EXPECT_EQ(device.active_queries(), 0u);
}

}  // namespace
}  // namespace mdsm::crowd
