// Integration tests for src/core: the middleware metamodel, spec
// decoding, and full platform assembly from a textual middleware model —
// the paper's model-based construction of middleware (§V-A), end to end:
//
//   middleware model text → Platform → application model text →
//   synthesis → controller (Case 1 + Case 2) → broker → resource trace.
#include <gtest/gtest.h>

#include "core/platform.hpp"
#include "core/spec_decode.hpp"
#include "model_fixtures.hpp"

namespace mdsm::core {
namespace {

using model::Value;

/// Records every command; the "underlying resource" of this platform.
class RecordingAdapter : public broker::ResourceAdapter {
 public:
  explicit RecordingAdapter(std::string name)
      : ResourceAdapter(std::move(name)) {}
  Result<Value> execute(const std::string& command,
                        const broker::Args& args) override {
    (void)args;
    // Surfaces on the bus as "resource.invoked" — lets tests observe
    // events raised from inside a request's broker call.
    raise_event("invoked", Value(command));
    return Value("done:" + command);
  }
  void fire(const std::string& topic, Value payload = {}) {
    raise_event(topic, std::move(payload));
  }
};

// A complete middleware model for a miniature session platform over the
// shared "testlang" DSML. Broker actions handle session lifecycle calls;
// the controller maps lifecycle commands via a mix of Case 1 (predefined
// action) and Case 2 (procedures); the synthesis LTS turns model changes
// into lifecycle commands; autonomic rules restore dropped links.
constexpr std::string_view kMiddlewareModel = R"mw(
model session_platform conforms mdsm

object MiddlewarePlatform mw {
  name = "session-platform"
  domain = "testing"
  child ui UiLayerSpec ui1 { dsml = "testlang" }

  child broker BrokerLayerSpec b1 {
    child actions ActionSpec act-create {
      name = "bk-create"
      child steps StepSpec s1 {
        op = invoke
        a = "svc"
        b = "create"
        child args ArgSpec a1 { key = "id" value = "$id" }
      }
      child steps StepSpec s2 {
        op = set-state
        a = "sessions.created"
        child args ArgSpec a2 { key = "value" value = "$id" }
      }
    }
    child actions ActionSpec act-open-hq {
      name = "bk-open-hq"
      guard = "bandwidth >= 2.0"
      priority = 5
      child steps StepSpec s3 {
        op = invoke
        a = "svc"
        b = "open-hq"
        child args ArgSpec a3 { key = "id" value = "$id" }
      }
    }
    child actions ActionSpec act-open-lq {
      name = "bk-open-lq"
      child steps StepSpec s4 {
        op = invoke
        a = "svc"
        b = "open-lq"
        child args ArgSpec a4 { key = "id" value = "$id" }
      }
    }
    child actions ActionSpec act-close {
      name = "bk-close"
      child steps StepSpec s5 {
        op = invoke
        a = "svc"
        b = "close"
        child args ArgSpec a5 { key = "id" value = "$id" }
      }
      child steps StepSpec s6 {
        op = emit
        a = "session.closed"
        child args ArgSpec a6 { key = "payload" value = "$id" }
      }
    }
    child actions ActionSpec act-reconnect {
      name = "bk-reconnect"
      child steps StepSpec s7 { op = invoke a = "svc" b = "reconnect" }
    }
    child handlers HandlerSpec h1 { signal = "svc.create" actions -> act-create }
    child handlers HandlerSpec h2 {
      signal = "svc.open"
      actions -> act-open-hq, act-open-lq
    }
    child handlers HandlerSpec h3 { signal = "svc.close" actions -> act-close }
    child handlers HandlerSpec h4 {
      signal = "svc.reconnect" actions -> act-reconnect
    }
    child symptoms SymptomSpec sy1 {
      name = "link-drop"
      topic = "resource.link.down"
      request = "restore"
    }
    child plans ChangePlanSpec p1 {
      name = "restore-link"
      request = "restore"
      child steps StepSpec s8 { op = invoke a = "svc" b = "reconnect" }
    }
    child resources ResourceSpec r1 { name = "svc" }
  }

  child controller ControllerLayerSpec c1 {
    child dscs DscSpec d1 { name = "session.establish" category = "session" }
    child dscs DscSpec d2 { name = "media.path" category = "media" }
    child procedures ProcedureSpec pr1 {
      name = "establish-std"
      classifier = "session.establish"
      dependencies = ["media.path"]
      child units EuSpec eu1 {
        child steps StepSpec t1 {
          op = broker-call
          a = "svc.create"
          child args ArgSpec b1a { key = "id" value = "$id" }
        }
        child steps StepSpec t2 { op = call-dep a = "media.path" }
      }
    }
    child procedures ProcedureSpec pr2 {
      name = "path-direct"
      classifier = "media.path"
      cost = 1.0
      child units EuSpec eu2 {
        child steps StepSpec t3 {
          op = broker-call
          a = "svc.open"
          child args ArgSpec b2a { key = "id" value = "$id" }
        }
      }
    }
    child procedures ProcedureSpec pr3 {
      name = "path-relay"
      classifier = "media.path"
      cost = 5.0
      guard = "defined(relay.available)"
      child units EuSpec eu3 {
        child steps StepSpec t4 { op = broker-call a = "svc.open" }
        child steps StepSpec t5 { op = noop }
      }
    }
    child actions ActionSpec ca1 {
      name = "ctl-close"
      child steps StepSpec t6 {
        op = broker-call
        a = "svc.close"
        child args ArgSpec c1a { key = "id" value = "$id" }
      }
    }
    child bindings BindingSpec bind1 { command = "session.close" actions -> ca1 }
    child mappings CommandMappingSpec m1 {
      command = "session.create"
      dsc = "session.establish"
    }
  }

  child synthesis SynthesisLayerSpec syn1 {
    initial_state = "initial"
    child transitions TransitionSpec tr1 {
      from = "initial"
      to = "live"
      kind = add-object
      class = "Session"
      child commands CommandTemplateSpec ct1 {
        name = "session.create"
        child args ArgSpec sa1 { key = "id" value = "%id" }
      }
    }
    child transitions TransitionSpec tr2 {
      from = "live"
      to = "done"
      kind = set-attribute
      class = "Session"
      feature = "state"
      value = "closed"
      vtype = string
      child commands CommandTemplateSpec ct2 {
        name = "session.close"
        child args ArgSpec sa2 { key = "id" value = "%id" }
      }
    }
  }
}
)mw";

struct PlatformFixture : ::testing::Test {
  model::MetamodelPtr dsml = model::testing::make_test_metamodel();
  std::unique_ptr<Platform> platform;
  RecordingAdapter* adapter = nullptr;

  void SetUp() override {
    PlatformConfig config;
    config.dsml = dsml;
    auto assembled = Platform::assemble_from_text(kMiddlewareModel, config);
    ASSERT_TRUE(assembled.ok()) << assembled.status().to_string();
    platform = std::move(assembled.value());
    auto owned = std::make_unique<RecordingAdapter>("svc");
    adapter = owned.get();
    ASSERT_TRUE(platform->add_resource_adapter(std::move(owned)).ok());
  }
};

TEST(MiddlewareMetamodel, IsWellFormedSingleton) {
  auto mm = middleware_metamodel();
  ASSERT_NE(mm, nullptr);
  EXPECT_TRUE(mm->finalized());
  EXPECT_EQ(mm.get(), middleware_metamodel().get());  // singleton
  EXPECT_NE(mm->find_class("MiddlewarePlatform"), nullptr);
  EXPECT_NE(mm->find_class("ProcedureSpec"), nullptr);
  EXPECT_NE(mm->find_class("TransitionSpec"), nullptr);
}

TEST_F(PlatformFixture, StartRequiresDeclaredResources) {
  // A platform missing its required adapter refuses to start.
  PlatformConfig config;
  config.dsml = dsml;
  auto bare = Platform::assemble_from_text(kMiddlewareModel, config);
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ((*bare)->start().code(), ErrorCode::kFailedPrecondition);
  // Ours has the adapter.
  EXPECT_TRUE(platform->start().ok());
  EXPECT_TRUE(platform->running());
  EXPECT_TRUE(platform->start().ok());  // idempotent
  EXPECT_TRUE(platform->stop().ok());
  EXPECT_FALSE(platform->running());
}

TEST_F(PlatformFixture, SubmitBeforeStartRejected) {
  EXPECT_EQ(platform
                ->submit_model_text(
                    "model app conforms testlang\n"
                    "object Session s1 { state = open }\n")
                .status()
                .code(),
            ErrorCode::kFailedPrecondition);
}

TEST_F(PlatformFixture, EndToEndModelExecution) {
  ASSERT_TRUE(platform->start().ok());
  platform->context().set("bandwidth", Value(5.0));
  // Creating a session in the application model drives Case 2: the LTS
  // emits session.create, which maps to the session.establish DSC; the
  // generated IM calls svc.create then the cheapest media path.
  auto script = platform->submit_model_text(
      "model app conforms testlang\n"
      "object Session s1 { state = open }\n");
  ASSERT_TRUE(script.ok()) << script.status().to_string();
  ASSERT_EQ(script->commands.size(), 1u);
  const auto& entries = platform->trace().entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0], "svc.create(id=\"s1\")");
  EXPECT_EQ(entries[1], "svc.open-hq(id=\"s1\")");  // bandwidth ≥ 2 → HQ
  EXPECT_EQ(platform->controller().stats().case2_executions, 1u);
  // Closing the session drives Case 1 (bound controller action).
  auto close = platform->submit_model_text(
      "model app2 conforms testlang\n"
      "object Session s1 { state = closed }\n");
  ASSERT_TRUE(close.ok()) << close.status().to_string();
  ASSERT_EQ(platform->trace().entries().size(), 3u);
  EXPECT_EQ(platform->trace().entries()[2], "svc.close(id=\"s1\")");
  EXPECT_EQ(platform->controller().stats().case1_executions, 1u);
}

TEST_F(PlatformFixture, BrokerGuardSelectsLowQualityUnderLowBandwidth) {
  ASSERT_TRUE(platform->start().ok());
  platform->context().set("bandwidth", Value(0.5));
  ASSERT_TRUE(platform
                  ->submit_model_text("model app conforms testlang\n"
                                      "object Session s1 { state = open }\n")
                  .ok());
  EXPECT_EQ(platform->trace().entries()[1], "svc.open-lq(id=\"s1\")");
}

TEST_F(PlatformFixture, AutonomicRuleLoadedFromModelFires) {
  ASSERT_TRUE(platform->start().ok());
  adapter->fire("link.down");
  EXPECT_EQ(platform->broker().autonomic().adaptations(), 1u);
  ASSERT_EQ(platform->trace().entries().size(), 1u);
  EXPECT_EQ(platform->trace().entries()[0], "svc.reconnect()");
}

TEST_F(PlatformFixture, RuntimeModelRoundTrips) {
  ASSERT_TRUE(platform->start().ok());
  platform->context().set("bandwidth", Value(5.0));
  ASSERT_TRUE(platform
                  ->submit_model_text("model app conforms testlang\n"
                                      "object Session s1 { state = open }\n")
                  .ok());
  std::string text = platform->runtime_model_text();
  auto reparsed = model::parse_model(text, dsml);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->find("s1")->get_string("state"), "open");
}

TEST_F(PlatformFixture, BrokerStateManagerMirrorsRuntimeModel) {
  ASSERT_TRUE(platform->start().ok());
  platform->context().set("bandwidth", Value(5.0));
  ASSERT_TRUE(platform
                  ->submit_model_text("model app conforms testlang\n"
                                      "object Session s1 { state = open }\n")
                  .ok());
  // models@runtime at the broker layer: the state manager holds a copy
  // of the committed application model.
  ASSERT_TRUE(platform->broker().state().has_runtime_model());
  const model::Model& mirror = platform->broker().state().runtime_model();
  ASSERT_NE(mirror.find("s1"), nullptr);
  EXPECT_EQ(mirror.find("s1")->get_string("state"), "open");
}

TEST_F(PlatformFixture, BadApplicationModelTextIsParseError) {
  ASSERT_TRUE(platform->start().ok());
  EXPECT_EQ(platform->submit_model_text("garbage {{{").status().code(),
            ErrorCode::kParseError);
}

// Policies loaded from the middleware model steer classification and
// selection exactly like programmatically-added ones.
TEST(PlatformPolicies, ModelLoadedPoliciesSteerClassificationAndSelection) {
  constexpr std::string_view kPolicyModel = R"mw(
model policyful conforms mdsm
object MiddlewarePlatform mw {
  name = "policy-platform"
  child ui UiLayerSpec u { dsml = "testlang" }
  child broker BrokerLayerSpec b {
    child actions ActionSpec ba {
      name = "bk-op"
      child steps StepSpec bs {
        op = invoke a = "svc" b = "op"
        child args ArgSpec bsa { key = "via" value = "$via" }
      }
    }
    child handlers HandlerSpec bh { signal = "svc.op" actions -> ba }
    child resources ResourceSpec br { name = "svc" }
  }
  child controller ControllerLayerSpec c {
    child dscs DscSpec d { name = "op" }
    child procedures ProcedureSpec p1 {
      name = "cheap-low-quality"
      classifier = "op"
      cost = 1.0
      quality = 0.2
      child units EuSpec p1u {
        child steps StepSpec p1s {
          op = broker-call a = "svc.op"
          child args ArgSpec p1sa { key = "via" value = "cheap" }
        }
      }
    }
    child procedures ProcedureSpec p2 {
      name = "costly-high-quality"
      classifier = "op"
      cost = 9.0
      quality = 0.9
      child units EuSpec p2u {
        child steps StepSpec p2s {
          op = broker-call a = "svc.op"
          child args ArgSpec p2sa { key = "via" value = "lux" }
        }
      }
    }
    child actions ActionSpec ca {
      name = "flat"
      child steps StepSpec cs {
        op = broker-call a = "svc.op"
        child args ArgSpec csa { key = "via" value = "flat" }
      }
    }
    child bindings BindingSpec cb { command = "op" actions -> ca }
    child policies PolicySpec pol1 {
      name = "dynamic-mode"
      role = classification
      condition = "mode == \"dynamic\""
      decision = "case2"
      priority = 10
    }
    child policies PolicySpec pol2 {
      name = "premium-selection"
      role = selection
      condition = "tier == \"premium\""
      decision = "max-quality"
      priority = 5
    }
  }
  child synthesis SynthesisLayerSpec se {
    child transitions TransitionSpec t {
      from = "initial" to = "live" kind = add-object class = "Session"
      child commands CommandTemplateSpec tc { name = "op" }
    }
  }
}
)mw";
  PlatformConfig config;
  config.dsml = model::testing::make_test_metamodel();
  auto platform = Platform::assemble_from_text(kPolicyModel, config);
  ASSERT_TRUE(platform.ok()) << platform.status().to_string();
  ASSERT_TRUE((*platform)
                  ->add_resource_adapter(
                      std::make_unique<RecordingAdapter>("svc"))
                  .ok());
  ASSERT_TRUE((*platform)->start().ok());
  auto& controller = (*platform)->controller();
  // Default classification: bound action wins → Case 1 ("flat").
  ASSERT_TRUE(controller.execute_command({"op", {}}).ok());
  EXPECT_EQ((*platform)->trace().entries().back(), "svc.op(via=\"flat\")");
  // Classification policy flips to Case 2; default selection = min-cost.
  (*platform)->context().set("mode", Value("dynamic"));
  ASSERT_TRUE(controller.execute_command({"op", {}}).ok());
  EXPECT_EQ((*platform)->trace().entries().back(), "svc.op(via=\"cheap\")");
  // Selection policy flips the strategy to max-quality.
  (*platform)->context().set("tier", Value("premium"));
  ASSERT_TRUE(controller.execute_command({"op", {}}).ok());
  EXPECT_EQ((*platform)->trace().entries().back(), "svc.op(via=\"lux\")");
}

// ------------------------------------------------- assembly error paths

TEST(PlatformAssembly, RejectsForeignMetamodel) {
  model::MetamodelPtr dsml = model::testing::make_test_metamodel();
  model::Model not_mw("x", dsml);
  PlatformConfig config;
  config.dsml = dsml;
  EXPECT_EQ(Platform::assemble(not_mw, config).status().code(),
            ErrorCode::kInvalidArgument);
}

TEST(PlatformAssembly, RejectsDsmlMismatch) {
  auto middleware_model = model::parse_model(
      kMiddlewareModel, middleware_metamodel());
  ASSERT_TRUE(middleware_model.ok());
  model::Metamodel other("otherlang");
  other.add_class("X");
  PlatformConfig config;
  config.dsml = model::finalize_metamodel(std::move(other));
  EXPECT_EQ(Platform::assemble(*middleware_model, config).status().code(),
            ErrorCode::kConformanceError);
}

TEST(PlatformAssembly, RejectsMissingDsml) {
  auto middleware_model =
      model::parse_model(kMiddlewareModel, middleware_metamodel());
  ASSERT_TRUE(middleware_model.ok());
  PlatformConfig config;  // dsml left null
  EXPECT_EQ(Platform::assemble(*middleware_model, config).status().code(),
            ErrorCode::kInvalidArgument);
}

TEST(PlatformAssembly, RejectsModelWithoutRoot) {
  model::Model empty("e", middleware_metamodel());
  PlatformConfig config;
  config.dsml = model::testing::make_test_metamodel();
  EXPECT_EQ(Platform::assemble(empty, config).status().code(),
            ErrorCode::kInvalidArgument);
}

// ---------------------------------------------------------- spec decode

TEST(SpecDecode, ValueTypes) {
  auto mm = middleware_metamodel();
  model::Model m("m", mm);
  m.create("ArgSpec", "a");
  m.set_attribute("a", "key", Value("k"));
  m.set_attribute("a", "value", Value("42"));
  m.set_attribute("a", "vtype", Value("int"));
  EXPECT_EQ(*decode_value(*m.find("a")), Value(42));
  m.set_attribute("a", "vtype", Value("real"));
  EXPECT_EQ(*decode_value(*m.find("a")), Value(42.0));
  m.set_attribute("a", "vtype", Value("string"));
  EXPECT_EQ(*decode_value(*m.find("a")), Value("42"));
  m.set_attribute("a", "value", Value("true"));
  m.set_attribute("a", "vtype", Value("bool"));
  EXPECT_EQ(*decode_value(*m.find("a")), Value(true));
  m.set_attribute("a", "value", Value("not-an-int"));
  m.set_attribute("a", "vtype", Value("int"));
  EXPECT_FALSE(decode_value(*m.find("a")).ok());
}

TEST(SpecDecode, IllegalOpForLayerRejected) {
  auto mm = middleware_metamodel();
  model::Model m("m", mm);
  m.create("StepSpec", "s");
  m.set_attribute("s", "op", Value("call-dep"));  // controller-only
  EXPECT_EQ(decode_broker_step(m, *m.find("s")).status().code(),
            ErrorCode::kConformanceError);
  m.set_attribute("s", "op", Value("invoke"));  // broker-only
  EXPECT_EQ(decode_instruction(m, *m.find("s")).status().code(),
            ErrorCode::kConformanceError);
}

TEST(SpecDecode, BadExpressionSurfacesObjectId) {
  auto mm = middleware_metamodel();
  model::Model m("m", mm);
  m.create("ActionSpec", "broken");
  m.set_attribute("broken", "name", Value("x"));
  m.set_attribute("broken", "guard", Value("1 +"));
  auto decoded = decode_broker_action(m, *m.find("broken"));
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("broken"), std::string::npos);
}

// ---- observability (request contexts, traces, metrics) ------------------

constexpr std::string_view kSessionOpenModel =
    "model app conforms testlang\n"
    "object Session s1 { state = open }\n";

TEST_F(PlatformFixture, SubmissionProducesOneSpanPerLayerCrossed) {
  ASSERT_TRUE(platform->start().ok());
  platform->context().set("bandwidth", Value(5.0));
  obs::RequestContext request = platform->make_context();
  ASSERT_TRUE(platform->submit_model_text(kSessionOpenModel, request).ok());

  const obs::Trace& trace = request.trace();
  EXPECT_TRUE(trace.all_closed());
  // Exactly one span per layer crossing of this request.
  EXPECT_EQ(trace.count("ui.submit"), 1u);
  EXPECT_EQ(trace.count("synthesis.submit"), 1u);
  EXPECT_EQ(trace.count("controller.script"), 1u);
  EXPECT_EQ(trace.count("controller.signal"), 1u);
  // The session.create command generated an IM whose two procedures each
  // ran under their own EU span, issuing two broker calls total.
  EXPECT_EQ(trace.count("controller.eu"), 2u);
  EXPECT_EQ(trace.count("broker.call"), 2u);

  // The tree nests in pipeline order with monotonic timestamps.
  const obs::Span* ui = trace.find("ui.submit");
  const obs::Span* synthesis = trace.find("synthesis.submit");
  const obs::Span* script = trace.find("controller.script");
  const obs::Span* signal = trace.find("controller.signal");
  const obs::Span* call = trace.find("broker.call");
  ASSERT_TRUE(ui && synthesis && script && signal && call);
  EXPECT_EQ(ui->parent, 0u);
  EXPECT_EQ(synthesis->parent, ui->id);
  EXPECT_EQ(script->parent, synthesis->id);
  EXPECT_EQ(signal->parent, script->id);
  for (const obs::Span* span : {ui, synthesis, script, signal, call}) {
    EXPECT_TRUE(span->closed);
    EXPECT_LE(span->start, span->end);
  }
  EXPECT_LE(ui->start, synthesis->start);
  EXPECT_LE(synthesis->end, ui->end);
  EXPECT_LE(signal->start, call->start);
  EXPECT_LE(call->end, signal->end);
}

TEST_F(PlatformFixture, ContextFreeSubmissionKeepsLastTrace) {
  ASSERT_TRUE(platform->start().ok());
  platform->context().set("bandwidth", Value(5.0));
  EXPECT_EQ(platform->last_trace(), nullptr);
  ASSERT_TRUE(platform->submit_model_text(kSessionOpenModel).ok());
  ASSERT_NE(platform->last_trace(), nullptr);
  EXPECT_EQ(platform->last_trace()->count("ui.submit"), 1u);
  EXPECT_TRUE(platform->last_trace()->all_closed());
}

TEST_F(PlatformFixture, MetricsSnapshotMatchesCommandTrace) {
  ASSERT_TRUE(platform->start().ok());
  platform->context().set("bandwidth", Value(5.0));
  ASSERT_TRUE(platform->submit_model_text(kSessionOpenModel).ok());
  ASSERT_TRUE(platform
                  ->submit_model_text("model app2 conforms testlang\n"
                                      "object Session s1 { state = closed }\n")
                  .ok());
  obs::MetricsSnapshot snapshot = platform->metrics().snapshot();
  // Every resource command in the broker's wire trace was counted.
  EXPECT_EQ(snapshot.counter_value("broker.commands"),
            platform->trace().entries().size());
  EXPECT_EQ(snapshot.counter_value("requests.submitted"), 2u);
  EXPECT_EQ(snapshot.counter_value("requests.failed"), 0u);
  EXPECT_EQ(snapshot.counter_value("synthesis.models"), 2u);
  EXPECT_EQ(snapshot.counter_value("synthesis.scripts"), 2u);
  const auto& stats = platform->controller().stats();
  EXPECT_EQ(snapshot.counter_value("controller.commands"),
            stats.commands_executed);
  EXPECT_EQ(snapshot.counter_value("controller.case1"),
            stats.case1_executions);
  EXPECT_EQ(snapshot.counter_value("controller.case2"),
            stats.case2_executions);
  EXPECT_EQ(snapshot.counter_value("controller.broker_calls"),
            snapshot.counter_value("broker.calls"));
  // Span closes fed the latency histograms.
  ASSERT_NE(snapshot.histogram("latency.ui.submit"), nullptr);
  EXPECT_EQ(snapshot.histogram("latency.ui.submit")->count, 2u);
  ASSERT_NE(snapshot.histogram("latency.broker.call"), nullptr);
  EXPECT_EQ(snapshot.histogram("latency.broker.call")->count,
            snapshot.counter_value("broker.calls"));
}

TEST_F(PlatformFixture, FailedSubmissionCountsAsFailedRequest) {
  // Not started → ui.submit fails at the gate but is still counted.
  EXPECT_FALSE(platform->submit_model_text(kSessionOpenModel).ok());
  obs::MetricsSnapshot snapshot = platform->metrics().snapshot();
  EXPECT_EQ(snapshot.counter_value("requests.submitted"), 1u);
  EXPECT_EQ(snapshot.counter_value("requests.failed"), 1u);
}

TEST_F(PlatformFixture, BusEventsCarryTheRequestId) {
  ASSERT_TRUE(platform->start().ok());
  platform->context().set("bandwidth", Value(5.0));
  std::vector<std::uint64_t> seen;
  std::uint64_t subscription = platform->bus().subscribe(
      "resource.invoked",
      [&seen](const runtime::Event& event) { seen.push_back(event.request_id); });
  obs::RequestContext request = platform->make_context();
  ASSERT_TRUE(platform->submit_model_text(kSessionOpenModel, request).ok());
  platform->bus().unsubscribe(subscription);
  // Both resource commands of this request raised an event.
  ASSERT_EQ(seen.size(), 2u);
  for (std::uint64_t id : seen) EXPECT_EQ(id, request.id());
  // Distinct requests stamp distinct ids.
  obs::RequestContext second = platform->make_context();
  EXPECT_NE(second.id(), request.id());
}

TEST(PlatformDeadline, ExpiredContextIsRejectedAtTheUiGate) {
  SimClock sim;
  PlatformConfig config;
  config.dsml = model::testing::make_test_metamodel();
  config.clock = &sim;
  auto assembled = Platform::assemble_from_text(kMiddlewareModel, config);
  ASSERT_TRUE(assembled.ok()) << assembled.status().to_string();
  auto& platform = *assembled.value();
  ASSERT_TRUE(
      platform.add_resource_adapter(std::make_unique<RecordingAdapter>("svc"))
          .ok());
  ASSERT_TRUE(platform.start().ok());
  platform.context().set("bandwidth", Value(5.0));

  obs::RequestContext in_time = platform.make_context(Duration(1000));
  ASSERT_TRUE(platform.submit_model_text(kSessionOpenModel, in_time).ok());

  obs::RequestContext late = platform.make_context(Duration(1000));
  sim.advance(Duration(2000));
  Result<controller::ControlScript> rejected = platform.submit_model_text(
      "model app2 conforms testlang\n"
      "object Session s1 { state = closed }\n",
      late);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), ErrorCode::kTimeout);
  // The deadline gate fired before the pipeline: no new commands hit the
  // resource trace and the failure was counted.
  EXPECT_EQ(platform.trace().entries().size(), 2u);
  EXPECT_EQ(platform.metrics().snapshot().counter_value("requests.failed"),
            1u);
}

}  // namespace
}  // namespace mdsm::core
