// Unit tests for the observability subsystem: metrics registry (counters
// + latency histograms), span traces, and the RequestContext that ties
// them to a request's journey through the layers.
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/request_context.hpp"
#include "obs/trace.hpp"
#include "runtime/executor.hpp"

namespace mdsm::obs {
namespace {

// ---- metrics ------------------------------------------------------------

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(Histogram, RecordsCountSumAndBuckets) {
  Histogram histogram;
  histogram.record_us(0);
  histogram.record_us(1);
  histogram.record_us(100);
  histogram.record(Duration(1000));
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_EQ(histogram.sum_us(), 1101u);
}

TEST(Histogram, QuantileWalksCumulativeBuckets) {
  Histogram histogram;
  for (int i = 0; i < 99; ++i) histogram.record_us(10);
  histogram.record_us(100000);
  // p50 lands in the bucket containing 10us; p100 in the outlier's.
  EXPECT_LE(histogram.quantile_us(0.5), 15u);
  EXPECT_GE(histogram.quantile_us(1.0), 65536u);
}

TEST(Histogram, HugeValuesClampToLastBucket) {
  Histogram histogram;
  histogram.record(Duration(std::chrono::hours(24)));
  EXPECT_EQ(histogram.count(), 1u);
  EXPECT_GT(histogram.quantile_us(1.0), 0u);
}

TEST(MetricsRegistry, CellsAreStableAndNamed) {
  MetricsRegistry registry;
  Counter& a = registry.counter("requests.submitted");
  Counter& b = registry.counter("requests.submitted");
  EXPECT_EQ(&a, &b);  // same cell on re-lookup
  a.add(3);
  registry.histogram("latency.ui.submit").record_us(12);

  MetricsSnapshot snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counter_value("requests.submitted"), 3u);
  ASSERT_NE(snapshot.histogram("latency.ui.submit"), nullptr);
  EXPECT_EQ(snapshot.histogram("latency.ui.submit")->count, 1u);
  EXPECT_EQ(snapshot.counter_value("no.such.counter"), 0u);

  std::string text = registry.to_text();
  EXPECT_NE(text.find("requests.submitted"), std::string::npos);
  EXPECT_NE(text.find("latency.ui.submit"), std::string::npos);
}

TEST(MetricsRegistry, SafeUnderConcurrentRecording) {
  MetricsRegistry registry;
  constexpr int kTasks = 64;
  constexpr int kPerTask = 250;
  runtime::Executor executor(4);
  for (int task = 0; task < kTasks; ++task) {
    executor.submit([&registry, task] {
      // Mix of shared cells and per-task cells: exercises both the map
      // mutex (first-touch) and the atomic cells (hot path).
      Counter& shared = registry.counter("shared.ops");
      Histogram& latency = registry.histogram("latency.shared");
      Counter& own =
          registry.counter("task." + std::to_string(task % 8) + ".ops");
      for (int i = 0; i < kPerTask; ++i) {
        shared.add();
        own.add();
        latency.record_us(static_cast<std::uint64_t>(i));
      }
    });
  }
  executor.drain();
  MetricsSnapshot snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counter_value("shared.ops"),
            static_cast<std::uint64_t>(kTasks) * kPerTask);
  ASSERT_NE(snapshot.histogram("latency.shared"), nullptr);
  EXPECT_EQ(snapshot.histogram("latency.shared")->count,
            static_cast<std::uint64_t>(kTasks) * kPerTask);
  std::uint64_t per_task_total = 0;
  for (int bucket = 0; bucket < 8; ++bucket) {
    per_task_total += snapshot.counter_value(
        "task." + std::to_string(bucket) + ".ops");
  }
  EXPECT_EQ(per_task_total, static_cast<std::uint64_t>(kTasks) * kPerTask);
}

// ---- trace --------------------------------------------------------------

TEST(TraceTree, SpansNestByOpenOrder) {
  SimClock clock;
  Trace trace(clock);
  std::uint64_t outer = trace.open("ui.submit", "app");
  clock.advance(Duration(10));
  std::uint64_t inner = trace.open("synthesis.submit");
  clock.advance(Duration(5));
  trace.close(inner);
  trace.close(outer);

  ASSERT_EQ(trace.spans().size(), 2u);
  const Span& root = trace.spans()[0];
  const Span& child = trace.spans()[1];
  EXPECT_EQ(root.parent, 0u);
  EXPECT_EQ(root.depth, 0u);
  EXPECT_EQ(child.parent, root.id);
  EXPECT_EQ(child.depth, 1u);
  EXPECT_TRUE(trace.all_closed());
  // Nested timestamps: child starts after root, ends before root.
  EXPECT_GE(child.start, root.start);
  EXPECT_LE(child.end, root.end);
  EXPECT_EQ(child.elapsed(), Duration(5));
  EXPECT_EQ(root.elapsed(), Duration(15));
}

TEST(TraceTree, CloseUnwindsThroughOpenDescendants) {
  SimClock clock;
  Trace trace(clock);
  std::uint64_t outer = trace.open("controller.signal");
  trace.open("controller.eu");
  trace.open("broker.call");
  trace.close(outer);  // error-path unwind: closes all three
  EXPECT_TRUE(trace.all_closed());
  for (const Span& span : trace.spans()) EXPECT_TRUE(span.closed);
}

TEST(TraceTree, FindCountAndText) {
  SimClock clock;
  Trace trace(clock);
  std::uint64_t a = trace.open("broker.call", "svc.create");
  trace.close(a);
  std::uint64_t b = trace.open("broker.call", "svc.open");
  trace.close(b);
  EXPECT_EQ(trace.count("broker.call"), 2u);
  ASSERT_NE(trace.find("broker.call"), nullptr);
  EXPECT_EQ(trace.find("broker.call")->detail, "svc.create");
  EXPECT_EQ(trace.find("no.such"), nullptr);
  std::string text = trace.to_text();
  EXPECT_NE(text.find("broker.call [svc.create]"), std::string::npos);
}

// ---- request context ----------------------------------------------------

TEST(RequestContextTest, MintsUniqueIdsAndTags) {
  RequestContext first;
  RequestContext second;
  EXPECT_NE(first.id(), second.id());
  EXPECT_NE(first.id(), 0u);
  EXPECT_EQ(first.tag(), "req-" + std::to_string(first.id()));
}

TEST(RequestContextTest, NoopContextIsDisabledAndInert) {
  RequestContext& noop = RequestContext::noop();
  EXPECT_FALSE(noop.enabled());
  std::uint64_t span = noop.open_span("ui.submit");
  EXPECT_EQ(span, 0u);
  noop.close_span(span);  // must not crash or record
  EXPECT_TRUE(noop.trace().spans().empty());
  EXPECT_EQ(&noop, &RequestContext::noop());  // shared singleton
}

TEST(RequestContextTest, SpanCloseRecordsLatencyHistogram) {
  SimClock clock;
  MetricsRegistry registry;
  RequestContext context(clock, &registry);
  std::uint64_t span = context.open_span("broker.call", "svc.x");
  clock.advance(Duration(250));
  context.close_span(span);
  MetricsSnapshot snapshot = registry.snapshot();
  ASSERT_NE(snapshot.histogram("latency.broker.call"), nullptr);
  EXPECT_EQ(snapshot.histogram("latency.broker.call")->count, 1u);
  EXPECT_EQ(snapshot.histogram("latency.broker.call")->sum_us, 250u);
}

TEST(RequestContextTest, DeadlineExpiresOnSimClock) {
  SimClock clock;
  RequestContext context(clock, nullptr, Duration(100));
  EXPECT_FALSE(context.expired());
  EXPECT_TRUE(context.check_deadline("ui").ok());
  clock.advance(Duration(101));
  EXPECT_TRUE(context.expired());
  Status late = context.check_deadline("controller");
  EXPECT_EQ(late.code(), ErrorCode::kTimeout);
  EXPECT_NE(late.to_string().find("controller"), std::string::npos);
}

TEST(RequestContextTest, DeadlineBoundaryCountsAsExpired) {
  // At now == deadline the full budget is spent; the boundary instant
  // must not admit one more layer crossing.
  SimClock clock;
  RequestContext context(clock, nullptr, Duration(100));
  clock.advance(Duration(99));
  EXPECT_FALSE(context.expired());
  EXPECT_TRUE(context.check_deadline("broker").ok());
  clock.advance(Duration(1));
  EXPECT_TRUE(context.expired());
  EXPECT_EQ(context.check_deadline("broker").code(), ErrorCode::kTimeout);
}

TEST(AmbientScope, InstallsAndRestoresCurrent) {
  EXPECT_EQ(current(), nullptr);
  RequestContext outer_context;
  {
    ContextScope outer(outer_context);
    EXPECT_EQ(current(), &outer_context);
    RequestContext inner_context;
    {
      ContextScope inner(inner_context);
      EXPECT_EQ(current(), &inner_context);
    }
    EXPECT_EQ(current(), &outer_context);
  }
  EXPECT_EQ(current(), nullptr);
}

TEST(AmbientScope, NoopContextNeverMasksOuterRequest) {
  RequestContext real;
  ContextScope outer(real);
  {
    // A legacy call path entered mid-request runs against noop() — it
    // must not hide the traced request from bus stamping underneath.
    ContextScope inner(RequestContext::noop());
    EXPECT_EQ(current(), &real);
  }
  EXPECT_EQ(current(), &real);
}

TEST(AmbientScope, ThreadLocalIsolation) {
  RequestContext context;
  ContextScope scope(context);
  RequestContext* seen = &context;  // sentinel, overwritten by the thread
  std::thread worker([&seen] { seen = current(); });
  worker.join();
  EXPECT_EQ(seen, nullptr);  // other threads see no ambient context
}

}  // namespace
}  // namespace mdsm::obs
