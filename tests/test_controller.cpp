// Unit tests for the Controller layer: DSCs, procedures, intent-model
// generation/validation/selection, the stack-machine execution engine,
// Case 1/Case 2 classification, and the static (non-adaptive) baseline.
#include <gtest/gtest.h>

#include <random>

#include "controller/controller_layer.hpp"
#include "controller/static_controller.hpp"

namespace mdsm::controller {
namespace {

using model::Value;

/// A recording BrokerApi stub: every call is appended to the trace.
class StubBroker : public broker::BrokerApi {
 public:
  using broker::BrokerApi::call;
  Result<Value> call(const broker::Call& call,
                     obs::RequestContext&) override {
    trace_.record("broker", call.name, call.args);
    if (fail_on == call.name) return Unavailable("injected broker fault");
    return Value("ok:" + call.name);
  }
  [[nodiscard]] const broker::CommandTrace& trace() const override {
    return trace_;
  }
  std::string fail_on;

 private:
  broker::CommandTrace trace_;
};

struct ControllerFixture : ::testing::Test {
  StubBroker broker;
  runtime::EventBus bus;
  policy::ContextStore context;
  ControllerLayer layer{"ucm", broker, bus, context};

  void add_dsc(const std::string& name, const std::string& category = "ops") {
    ASSERT_TRUE(layer.dscs().add({name, DscKind::kOperation, category, ""}).ok());
  }

  /// A leaf procedure issuing one broker call named after itself.
  Procedure leaf(const std::string& name, const std::string& dsc,
                 double cost = 1.0, std::string_view guard_text = "") {
    Procedure p;
    p.name = name;
    p.classifier = dsc;
    p.cost = cost;
    if (!guard_text.empty()) p.guard = *policy::Expression::parse(guard_text);
    p.units = {{broker_call(name)}};
    return p;
  }
};

// ------------------------------------------------------------ DscRegistry

TEST_F(ControllerFixture, DscRegistryBasics) {
  add_dsc("media.setup", "media");
  add_dsc("media.teardown", "media");
  add_dsc("net.connect", "net");
  EXPECT_EQ(layer.dscs().size(), 3u);
  EXPECT_TRUE(layer.dscs().contains("media.setup"));
  EXPECT_EQ(layer.dscs().in_category("media").size(), 2u);
  EXPECT_EQ(layer.dscs().add({"media.setup"}).code(),
            ErrorCode::kAlreadyExists);
  EXPECT_EQ(layer.dscs().add({"bad name!"}).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(layer.dscs().names().size(), 3u);
}

// ---------------------------------------------------- ProcedureRepository

TEST_F(ControllerFixture, RepositoryValidatesDscsAndRejectsSelfDependency) {
  add_dsc("op.a");
  add_dsc("op.b");
  EXPECT_EQ(layer.add_procedure(leaf("p", "ghost")).code(),
            ErrorCode::kNotFound);
  Procedure self = leaf("p", "op.a");
  self.dependencies = {"op.a"};
  EXPECT_EQ(layer.add_procedure(std::move(self)).code(),
            ErrorCode::kInvalidArgument);
  Procedure unknown_dep = leaf("p", "op.a");
  unknown_dep.dependencies = {"ghost"};
  EXPECT_EQ(layer.add_procedure(std::move(unknown_dep)).code(),
            ErrorCode::kNotFound);
  ASSERT_TRUE(layer.add_procedure(leaf("p", "op.a")).ok());
  EXPECT_EQ(layer.add_procedure(leaf("p", "op.a")).code(),
            ErrorCode::kAlreadyExists);
  EXPECT_EQ(layer.repository().classified_by("op.a").size(), 1u);
  auto v0 = layer.repository().version();
  ASSERT_TRUE(layer.repository().remove("p").ok());
  EXPECT_GT(layer.repository().version(), v0);
  EXPECT_EQ(layer.repository().remove("p").code(), ErrorCode::kNotFound);
}

// --------------------------------------------------- IntentModel generate

TEST_F(ControllerFixture, GeneratesChainAndExecutes) {
  add_dsc("session.open");
  add_dsc("media.alloc");
  add_dsc("net.connect");
  Procedure root = leaf("open-std", "session.open");
  root.dependencies = {"media.alloc"};
  root.units = {{broker_call("session.begin", {{"id", Value("$id")}}),
                 call_dep("media.alloc"),
                 broker_call("session.commit", {{"id", Value("$id")}})}};
  Procedure mid = leaf("alloc-av", "media.alloc");
  mid.dependencies = {"net.connect"};
  mid.units = {{call_dep("net.connect"), broker_call("media.allocate")}};
  ASSERT_TRUE(layer.add_procedure(std::move(root)).ok());
  ASSERT_TRUE(layer.add_procedure(std::move(mid)).ok());
  ASSERT_TRUE(layer.add_procedure(leaf("net-direct", "net.connect")).ok());

  auto intent = layer.generator().generate("session.open",
                                           SelectionStrategy::kMinCost);
  ASSERT_TRUE(intent.ok()) << intent.status().to_string();
  EXPECT_EQ((*intent)->node_count, 3);
  EXPECT_TRUE(layer.generator().validate(**intent).ok());

  auto value =
      layer.engine().execute(**intent, {{"id", Value("s1")}});
  ASSERT_TRUE(value.ok()) << value.status().to_string();
  // Stack semantics: session.begin, then the dependency chain, then the
  // instruction after call_dep resumes (commit last).
  const auto& entries = broker.trace().entries();
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries[0], "broker.session.begin(id=\"s1\")");
  EXPECT_EQ(entries[1], "broker.net-direct()");
  EXPECT_EQ(entries[2], "broker.media.allocate()");
  EXPECT_EQ(entries[3], "broker.session.commit(id=\"s1\")");
}

TEST_F(ControllerFixture, SelectionMinCostVsMaxQuality) {
  add_dsc("op");
  Procedure cheap = leaf("cheap", "op", 1.0);
  cheap.quality = 0.3;
  Procedure lux = leaf("lux", "op", 10.0);
  lux.quality = 0.9;
  ASSERT_TRUE(layer.add_procedure(std::move(cheap)).ok());
  ASSERT_TRUE(layer.add_procedure(std::move(lux)).ok());
  auto min_cost = layer.generator().generate("op", SelectionStrategy::kMinCost);
  ASSERT_TRUE(min_cost.ok());
  EXPECT_EQ((*min_cost)->root->procedure->name, "cheap");
  auto max_quality =
      layer.generator().generate("op", SelectionStrategy::kMaxQuality);
  ASSERT_TRUE(max_quality.ok());
  EXPECT_EQ((*max_quality)->root->procedure->name, "lux");
  auto first = layer.generator().generate("op", SelectionStrategy::kFirstValid);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ((*first)->root->procedure->name, "cheap");  // registration order
}

TEST_F(ControllerFixture, GuardsSteerGenerationByContext) {
  add_dsc("op");
  ASSERT_TRUE(
      layer.add_procedure(leaf("wired", "op", 1.0, "network == \"wired\""))
          .ok());
  ASSERT_TRUE(
      layer.add_procedure(leaf("radio", "op", 2.0, "network == \"radio\""))
          .ok());
  context.set("network", Value("radio"));
  auto intent = layer.generator().generate("op", SelectionStrategy::kMinCost);
  ASSERT_TRUE(intent.ok());
  EXPECT_EQ((*intent)->root->procedure->name, "radio");
  context.set("network", Value("wired"));
  intent = layer.generator().generate("op", SelectionStrategy::kMinCost);
  ASSERT_TRUE(intent.ok());
  EXPECT_EQ((*intent)->root->procedure->name, "wired");
  context.set("network", Value("none"));
  EXPECT_EQ(
      layer.generator().generate("op", SelectionStrategy::kMinCost)
          .status()
          .code(),
      ErrorCode::kFailedPrecondition);
  EXPECT_GE(layer.generator().stats().guard_rejections, 2u);
}

TEST_F(ControllerFixture, CyclicDependenciesAreRejected) {
  add_dsc("a");
  add_dsc("b");
  Procedure pa = leaf("pa", "a");
  pa.dependencies = {"b"};
  pa.units = {{call_dep("b")}};
  Procedure pb = leaf("pb", "b");
  pb.dependencies = {"a"};  // a → b → a cycle
  pb.units = {{call_dep("a")}};
  ASSERT_TRUE(layer.add_procedure(std::move(pa)).ok());
  ASSERT_TRUE(layer.add_procedure(std::move(pb)).ok());
  auto intent = layer.generator().generate("a", SelectionStrategy::kMinCost);
  EXPECT_FALSE(intent.ok());
  EXPECT_GT(layer.generator().stats().cycle_rejections, 0u);
}

TEST_F(ControllerFixture, MissingDependencyMakesCandidateInfeasible) {
  add_dsc("a");
  add_dsc("void");
  Procedure pa = leaf("pa", "a");
  pa.dependencies = {"void"};  // no procedure provides "void"
  ASSERT_TRUE(layer.add_procedure(std::move(pa)).ok());
  EXPECT_FALSE(
      layer.generator().generate("a", SelectionStrategy::kMinCost).ok());
}

TEST_F(ControllerFixture, MinCostPicksCheapestCompositeTree) {
  add_dsc("root");
  add_dsc("dep");
  Procedure r = leaf("r", "root");
  r.dependencies = {"dep"};
  r.units = {{call_dep("dep")}};
  ASSERT_TRUE(layer.add_procedure(std::move(r)).ok());
  ASSERT_TRUE(layer.add_procedure(leaf("dep-costly", "dep", 50.0)).ok());
  ASSERT_TRUE(layer.add_procedure(leaf("dep-cheap", "dep", 0.5)).ok());
  auto intent = layer.generator().generate("root", SelectionStrategy::kMinCost);
  ASSERT_TRUE(intent.ok());
  EXPECT_EQ((*intent)->root->children[0]->procedure->name, "dep-cheap");
  EXPECT_DOUBLE_EQ((*intent)->total_cost, 1.5);
}

TEST_F(ControllerFixture, CacheHitsUntilContextOrRepositoryChanges) {
  add_dsc("op");
  ASSERT_TRUE(layer.add_procedure(leaf("p", "op")).ok());
  auto first =
      layer.generator().generate_cached("op", SelectionStrategy::kMinCost);
  ASSERT_TRUE(first.ok());
  auto second =
      layer.generator().generate_cached("op", SelectionStrategy::kMinCost);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().get(), second.value().get());  // same instance
  EXPECT_EQ(layer.generator().stats().cache_hits, 1u);
  context.set("anything", Value(1));  // context drift invalidates
  auto third =
      layer.generator().generate_cached("op", SelectionStrategy::kMinCost);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(layer.generator().stats().cache_misses, 2u);
  ASSERT_TRUE(layer.add_procedure(leaf("q", "op", 0.1)).ok());
  auto fourth =
      layer.generator().generate_cached("op", SelectionStrategy::kMinCost);
  ASSERT_TRUE(fourth.ok());
  EXPECT_EQ((*fourth)->root->procedure->name, "q");  // repo drift re-selects
}

// Regression: the IM cache keyed only on context/repository versions, so
// DSC registry edits (add or remove) served stale intent models. The
// cache entry now also records the registry version.
TEST_F(ControllerFixture, DscRegistryChangeInvalidatesIntentModelCache) {
  add_dsc("op");
  ASSERT_TRUE(layer.add_procedure(leaf("p", "op")).ok());
  ASSERT_TRUE(
      layer.generator().generate_cached("op", SelectionStrategy::kMinCost).ok());
  ASSERT_TRUE(
      layer.generator().generate_cached("op", SelectionStrategy::kMinCost).ok());
  EXPECT_EQ(layer.generator().stats().cache_hits, 1u);
  EXPECT_EQ(layer.generator().stats().cache_misses, 1u);
  add_dsc("aux");  // registry drift — context and repository untouched
  ASSERT_TRUE(
      layer.generator().generate_cached("op", SelectionStrategy::kMinCost).ok());
  EXPECT_EQ(layer.generator().stats().cache_misses, 2u);
  ASSERT_TRUE(layer.dscs().remove("aux").ok());
  ASSERT_TRUE(
      layer.generator().generate_cached("op", SelectionStrategy::kMinCost).ok());
  EXPECT_EQ(layer.generator().stats().cache_misses, 3u);
  EXPECT_EQ(layer.dscs().remove("ghost").code(), ErrorCode::kNotFound);
}

// Regression: instructions missing a required arg used to silently
// default-insert a none Value via operator[]; now they fail loudly.
TEST_F(ControllerFixture, MissingInstructionArgIsExecutionError) {
  Instruction bare_set_mem;
  bare_set_mem.op = OpCode::kSetMem;
  bare_set_mem.a = "x";
  auto status = layer.engine().execute_flat({bare_set_mem}, {}).status();
  EXPECT_EQ(status.code(), ErrorCode::kExecutionError);
  EXPECT_NE(status.message().find("missing required arg 'value'"),
            std::string::npos)
      << status.to_string();
  EXPECT_TRUE(layer.engine().memory("x").is_none());  // nothing stored

  Instruction bare_emit;
  bare_emit.op = OpCode::kEmit;
  bare_emit.a = "topic";
  EXPECT_EQ(layer.engine().execute_flat({bare_emit}, {}).status().code(),
            ErrorCode::kExecutionError);

  Instruction bare_result;
  bare_result.op = OpCode::kResult;
  EXPECT_EQ(layer.engine().execute_flat({bare_result}, {}).status().code(),
            ErrorCode::kExecutionError);
}

TEST_F(ControllerFixture, ValidateDetectsContextDrift) {
  add_dsc("op");
  ASSERT_TRUE(
      layer.add_procedure(leaf("p", "op", 1.0, "mode == \"on\"")).ok());
  context.set("mode", Value("on"));
  auto intent = layer.generator().generate("op", SelectionStrategy::kMinCost);
  ASSERT_TRUE(intent.ok());
  EXPECT_TRUE(layer.generator().validate(**intent).ok());
  context.set("mode", Value("off"));
  EXPECT_EQ(layer.generator().validate(**intent).code(),
            ErrorCode::kFailedPrecondition);
}

TEST_F(ControllerFixture, UnknownRootDscIsNotFound) {
  EXPECT_EQ(layer.generator()
                .generate("ghost", SelectionStrategy::kMinCost)
                .status()
                .code(),
            ErrorCode::kNotFound);
}

// ------------------------------------------------------- ExecutionEngine

TEST_F(ControllerFixture, EngineMemoryEventAndResultOps) {
  std::vector<Instruction> body = {
      set_mem("x", Value(41)),
      set_mem("y", Value("$mem:x")),
      emit("tick", Value("$mem:y")),
      set_context("done", Value(true)),
      result(Value("$mem:y")),
      erase_mem("x"),
  };
  Value seen;
  bus.subscribe("tick", [&](const runtime::Event& e) { seen = e.payload; });
  auto value = layer.engine().execute_flat(body, {});
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, Value(41));
  EXPECT_EQ(seen, Value(41));
  EXPECT_EQ(context.get("done"), Value(true));
  EXPECT_TRUE(layer.engine().memory("x").is_none());
  EXPECT_EQ(layer.engine().memory("y"), Value(41));
  EXPECT_GE(layer.engine().stats().instructions, 6u);
}

TEST_F(ControllerFixture, EngineGuardFailureAborts) {
  std::vector<Instruction> body = {guard("false"), broker_call("never")};
  EXPECT_EQ(layer.engine().execute_flat(body, {}).status().code(),
            ErrorCode::kExecutionError);
  EXPECT_EQ(broker.trace().size(), 0u);
}

TEST_F(ControllerFixture, CallDepIllegalInFlatExecution) {
  std::vector<Instruction> body = {call_dep("anything")};
  EXPECT_EQ(layer.engine().execute_flat(body, {}).status().code(),
            ErrorCode::kExecutionError);
}

TEST_F(ControllerFixture, BrokerFaultPropagates) {
  broker.fail_on = "boom";
  std::vector<Instruction> body = {broker_call("boom")};
  EXPECT_EQ(layer.engine().execute_flat(body, {}).status().code(),
            ErrorCode::kUnavailable);
}

TEST_F(ControllerFixture, SendRequiresSenderAndUsesIt) {
  std::vector<Instruction> body = {send("peer", "sync", Value("m"))};
  EXPECT_EQ(layer.engine().execute_flat(body, {}).status().code(),
            ErrorCode::kExecutionError);
  std::vector<std::string> sent;
  layer.engine().set_sender([&](const std::string& to,
                                const std::string& topic, Value payload) {
    sent.push_back(to + "/" + topic + "/" + payload.to_text());
    return Status::Ok();
  });
  ASSERT_TRUE(layer.engine().execute_flat(body, {}).ok());
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0], "peer/sync/\"m\"");
}

TEST_F(ControllerFixture, StepBudgetStopsRunawayEu) {
  add_dsc("loop");
  // A procedure that emits events forever would spin; a long noop body
  // tripping the budget models the same backstop deterministically.
  Procedure p = leaf("spin", "loop");
  p.units = {{}};
  p.units[0].assign(100, noop());
  ASSERT_TRUE(layer.add_procedure(std::move(p)).ok());
  EngineConfig config;
  config.max_steps = 10;
  ExecutionEngine tight(broker, bus, context, config);
  auto intent = layer.generator().generate("loop", SelectionStrategy::kMinCost);
  ASSERT_TRUE(intent.ok());
  EXPECT_EQ(tight.execute(**intent, {}).status().code(),
            ErrorCode::kExecutionError);
}

TEST_F(ControllerFixture, LastResultStoredInMemory) {
  std::vector<Instruction> body = {broker_call("ping")};
  ASSERT_TRUE(layer.engine().execute_flat(body, {}).ok());
  EXPECT_EQ(layer.engine().memory("last.result"), Value("ok:ping"));
}

// ------------------------------------------------------- ControllerLayer

TEST_F(ControllerFixture, Case1ViaBoundAction) {
  ControllerAction action;
  action.name = "do-x";
  action.body = {broker_call("x.do", {{"id", Value("$id")}})};
  ASSERT_TRUE(layer.register_action(std::move(action)).ok());
  ASSERT_TRUE(layer.bind_action("x", {"do-x"}).ok());
  auto value = layer.execute_command({"x", {{"id", Value("i1")}}});
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(layer.stats().case1_executions, 1u);
  EXPECT_EQ(broker.trace().entries()[0], "broker.x.do(id=\"i1\")");
}

TEST_F(ControllerFixture, Case2ViaDscMapping) {
  add_dsc("op.y");
  ASSERT_TRUE(layer.add_procedure(leaf("py", "op.y")).ok());
  ASSERT_TRUE(layer.map_command("y", "op.y").ok());
  ASSERT_TRUE(layer.execute_command({"y", {}}).ok());
  EXPECT_EQ(layer.stats().case2_executions, 1u);
  // A command named exactly like a DSC needs no explicit mapping.
  ASSERT_TRUE(layer.execute_command({"op.y", {}}).ok());
  EXPECT_EQ(layer.stats().case2_executions, 2u);
}

TEST_F(ControllerFixture, ClassificationPolicyOverridesDefaults) {
  add_dsc("op.z");
  ASSERT_TRUE(layer.add_procedure(leaf("pz", "op.z")).ok());
  ControllerAction action;
  action.name = "flat-z";
  action.body = {broker_call("z.flat")};
  ASSERT_TRUE(layer.register_action(std::move(action)).ok());
  ASSERT_TRUE(layer.bind_action("op.z", {"flat-z"}).ok());
  // Default (bound action wins): Case 1.
  ASSERT_TRUE(layer.execute_command({"op.z", {}}).ok());
  EXPECT_EQ(layer.stats().case1_executions, 1u);
  // Policy: commands force Case 2 when flexibility mode is on.
  ASSERT_TRUE(layer.classification_policies()
                  .add("flexible", "mode == \"dynamic\"", "case2", 10)
                  .ok());
  context.set("mode", Value("dynamic"));
  ASSERT_TRUE(layer.execute_command({"op.z", {}}).ok());
  EXPECT_EQ(layer.stats().case2_executions, 1u);
}

TEST_F(ControllerFixture, SelectionPolicyPicksStrategy) {
  add_dsc("op");
  Procedure cheap = leaf("cheap", "op", 1.0);
  cheap.quality = 0.2;
  Procedure lux = leaf("lux", "op", 9.0);
  lux.quality = 0.9;
  ASSERT_TRUE(layer.add_procedure(std::move(cheap)).ok());
  ASSERT_TRUE(layer.add_procedure(std::move(lux)).ok());
  ASSERT_TRUE(layer.selection_policies()
                  .add("hq", "tier == \"premium\"", "max-quality", 5)
                  .ok());
  context.set("tier", Value("premium"));
  ASSERT_TRUE(layer.execute_command({"op", {}}).ok());
  EXPECT_EQ(broker.trace().entries().back(), "broker.lux()");
  context.set("tier", Value("basic"));
  ASSERT_TRUE(layer.execute_command({"op", {}}).ok());
  EXPECT_EQ(broker.trace().entries().back(), "broker.cheap()");
}

TEST_F(ControllerFixture, ScriptProcessingCountsErrorsWithoutWedging) {
  ControllerAction action;
  action.name = "ok-act";
  action.body = {broker_call("fine")};
  ASSERT_TRUE(layer.register_action(std::move(action)).ok());
  ASSERT_TRUE(layer.bind_action("fine", {"ok-act"}).ok());
  int errors = 0;
  bus.subscribe("controller.error", [&](const runtime::Event&) { ++errors; });
  ControlScript script;
  script.commands = {{"fine", {}}, {"ghost", {}}, {"fine", {}}};
  ASSERT_TRUE(layer.submit_script(script).ok());
  EXPECT_EQ(layer.queued(), 3u);
  EXPECT_EQ(layer.process_pending(), 3u);
  EXPECT_EQ(layer.stats().errors, 1u);
  EXPECT_EQ(errors, 1);
  EXPECT_EQ(broker.trace().size(), 2u);
  EXPECT_EQ(layer.queued(), 0u);
}

TEST_F(ControllerFixture, EventSignalsHandledByBoundActions) {
  ControllerAction action;
  action.name = "on-fault";
  action.body = {
      set_context("fault.seen", Value("$event.payload"))};
  ASSERT_TRUE(layer.register_action(std::move(action)).ok());
  ASSERT_TRUE(layer.bind_action("resource.fault", {"on-fault"}).ok());
  layer.attach_event_topic("resource.fault");
  bus.publish("resource.fault", "test", Value("disk"));
  EXPECT_EQ(layer.queued(), 1u);
  EXPECT_EQ(layer.process_pending(), 1u);
  EXPECT_EQ(context.get("fault.seen"), Value("disk"));
  EXPECT_EQ(layer.stats().events_handled, 1u);
}

TEST_F(ControllerFixture, ConfigurationErrors) {
  EXPECT_EQ(layer.bind_action("cmd", {"ghost"}).code(), ErrorCode::kNotFound);
  EXPECT_EQ(layer.map_command("cmd", "ghost").code(), ErrorCode::kNotFound);
  EXPECT_EQ(layer.execute_command({"nowhere", {}}).status().code(),
            ErrorCode::kNotFound);
}

// -------------------------------------------------------- StaticController

TEST_F(ControllerFixture, StaticControllerFixedDispatchAndReload) {
  StaticController fixed(broker, bus, context);
  StaticController::DispatchTable table;
  table["go"] = {broker_call("v1.go")};
  fixed.set_table(std::move(table));
  ASSERT_TRUE(fixed.execute({"go", {}}).ok());
  EXPECT_EQ(broker.trace().entries().back(), "broker.v1.go()");
  EXPECT_EQ(fixed.execute({"other", {}}).status().code(),
            ErrorCode::kNotFound);
  // Adapting requires a full reload.
  ASSERT_TRUE(fixed
                  .reload([] {
                    StaticController::DispatchTable t;
                    t["go"] = {broker_call("v2.go")};
                    return Result<StaticController::DispatchTable>(
                        std::move(t));
                  })
                  .ok());
  ASSERT_TRUE(fixed.execute({"go", {}}).ok());
  EXPECT_EQ(broker.trace().entries().back(), "broker.v2.go()");
  EXPECT_EQ(fixed.reloads(), 1u);
  EXPECT_EQ(fixed.commands_executed(), 2u);
}

TEST_F(ControllerFixture, StaticControllerFailedReloadStaysStopped) {
  StaticController fixed(broker, bus, context);
  StaticController::DispatchTable table;
  table["go"] = {broker_call("v1.go")};
  fixed.set_table(std::move(table));
  EXPECT_FALSE(
      fixed.reload([] {
             return Result<StaticController::DispatchTable>(
                 Internal("config corrupt"));
           })
          .ok());
  EXPECT_EQ(fixed.execute({"go", {}}).status().code(),
            ErrorCode::kFailedPrecondition);
}

// Property: for random repositories with layered dependencies, generated
// IMs always validate, never contain cycles, and respect the bound.
class GeneratorProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(GeneratorProperty, GeneratedImsAlwaysValid) {
  StubBroker broker;
  runtime::EventBus bus;
  policy::ContextStore context;
  ControllerLayer layer("gen", broker, bus, context);
  std::mt19937 rng(GetParam());
  // Layered DSCs: layer L procedures depend only on DSCs in layer L+1.
  constexpr int kLayers = 4;
  constexpr int kDscsPerLayer = 3;
  for (int l = 0; l < kLayers; ++l) {
    for (int d = 0; d < kDscsPerLayer; ++d) {
      ASSERT_TRUE(layer.dscs()
                      .add({"dsc" + std::to_string(l) + "_" +
                            std::to_string(d)})
                      .ok());
    }
  }
  std::uniform_int_distribution<int> pick(0, kDscsPerLayer - 1);
  std::uniform_int_distribution<int> fan(0, 2);
  std::uniform_real_distribution<double> cost(0.1, 10.0);
  int id = 0;
  for (int l = 0; l < kLayers; ++l) {
    for (int d = 0; d < kDscsPerLayer; ++d) {
      for (int variant = 0; variant < 2; ++variant) {
        Procedure p;
        p.name = "p" + std::to_string(id++);
        p.classifier =
            "dsc" + std::to_string(l) + "_" + std::to_string(d);
        p.cost = cost(rng);
        if (l + 1 < kLayers) {
          int deps = fan(rng);
          for (int k = 0; k < deps; ++k) {
            p.dependencies.push_back("dsc" + std::to_string(l + 1) + "_" +
                                     std::to_string(pick(rng)));
          }
        }
        std::vector<Instruction> unit{broker_call(p.name)};
        for (const auto& dep : p.dependencies) {
          unit.push_back(call_dep(dep));
        }
        p.units = {unit};
        ASSERT_TRUE(layer.add_procedure(std::move(p)).ok());
      }
    }
  }
  for (int d = 0; d < kDscsPerLayer; ++d) {
    std::string root = "dsc0_" + std::to_string(d);
    for (auto strategy :
         {SelectionStrategy::kMinCost, SelectionStrategy::kMaxQuality,
          SelectionStrategy::kFirstValid}) {
      auto intent = layer.generator().generate(root, strategy);
      ASSERT_TRUE(intent.ok()) << intent.status().to_string();
      EXPECT_TRUE(layer.generator().validate(**intent).ok());
      EXPECT_EQ((*intent)->root_dsc, root);
      EXPECT_GT((*intent)->node_count, 0);
      // And it must be executable end-to-end.
      EXPECT_TRUE(layer.engine().execute(**intent, {}).ok());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorProperty,
                         ::testing::Values(3u, 7u, 11u, 19u, 23u, 31u));

}  // namespace
}  // namespace mdsm::controller
