// Tests for the textual model format: parsing, serialization, round-trips.
#include <gtest/gtest.h>

#include "model/diff.hpp"
#include "model/text_format.hpp"
#include "model_fixtures.hpp"

namespace mdsm::model {
namespace {

using testing::make_test_metamodel;
using testing::make_test_model;

constexpr std::string_view kSample = R"(
# A communication session
model demo conforms testlang

object Session s1 {
  state = open
  bandwidth = 2.5
  tags = ["a", "b"]
  initiator -> alice
  child participants Participant alice {
    address = "alice@host"
    priority = 2
  }
  child participants Participant bob {
    address = "bob@host"
  }
  child media StreamMedia cam {
    kind = video
    fps = 30
    live = true
  }
}
)";

TEST(TextFormat, ParsesSampleModel) {
  auto model = parse_model(kSample, make_test_metamodel());
  ASSERT_TRUE(model.ok()) << model.status().to_string();
  EXPECT_EQ(model->name(), "demo");
  EXPECT_EQ(model->size(), 4u);
  EXPECT_TRUE(model->validate().ok());
  const ModelObject* s1 = model->find("s1");
  ASSERT_NE(s1, nullptr);
  EXPECT_EQ(s1->get_string("state"), "open");
  EXPECT_DOUBLE_EQ(s1->get_real("bandwidth"), 2.5);
  ASSERT_EQ(s1->targets("initiator").size(), 1u);
  EXPECT_EQ(s1->targets("initiator")[0], "alice");
  ASSERT_TRUE(s1->get("tags").is_list());
  EXPECT_EQ(s1->get("tags").as_list().size(), 2u);
  EXPECT_EQ(model->find("cam")->get_int("fps"), 30);
  EXPECT_TRUE(model->find("cam")->get_bool("live"));
}

TEST(TextFormat, ForwardReferencesResolve) {
  constexpr std::string_view text = R"(
model fwd conforms testlang
object Session s1 {
  state = open
  initiator -> late
  child participants Participant late { address = "x@y" }
}
)";
  auto model = parse_model(text, make_test_metamodel());
  ASSERT_TRUE(model.ok()) << model.status().to_string();
  EXPECT_EQ(model->find("s1")->targets("initiator")[0], "late");
}

TEST(TextFormat, RoundTripPreservesModel) {
  MetamodelPtr mm = make_test_metamodel();
  Model original = make_test_model(mm);
  std::string text = serialize_model(original);
  auto reparsed = parse_model(text, mm);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().to_string();
  // Same shape and a fixed-point serialization.
  EXPECT_EQ(reparsed->size(), original.size());
  EXPECT_EQ(serialize_model(*reparsed), text);
  EXPECT_TRUE(diff(original, *reparsed).empty());
}

TEST(TextFormat, StringEscapesRoundTrip) {
  MetamodelPtr mm = make_test_metamodel();
  Model model("esc", mm);
  model.create("Participant", "p");
  model.set_attribute("p", "address", Value("line1\nline2\t\"q\"\\"));
  auto reparsed = parse_model(serialize_model(model), mm);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().to_string();
  EXPECT_EQ(reparsed->find("p")->get_string("address"),
            "line1\nline2\t\"q\"\\");
}

TEST(TextFormat, NegativeNumbersAndScientific) {
  constexpr std::string_view text = R"(
model n conforms testlang
object Session s { state = idle bandwidth = -1.5e2 }
object Participant p { address = "a" priority = -3 }
)";
  auto model = parse_model(text, make_test_metamodel());
  ASSERT_TRUE(model.ok()) << model.status().to_string();
  EXPECT_DOUBLE_EQ(model->find("s")->get_real("bandwidth"), -150.0);
  EXPECT_EQ(model->find("p")->get_int("priority"), -3);
}

TEST(TextFormat, ErrorsAreParseErrorsWithLineNumbers) {
  MetamodelPtr mm = make_test_metamodel();
  struct Case {
    std::string_view text;
    std::string_view needle;
  };
  const Case cases[] = {
      {"object Session s {}", "expected 'model'"},
      {"model x conformz testlang", "expected 'conforms'"},
      {"model x conforms other", "metamodel"},
      {"model x conforms testlang\nobject Ghost g {}", "class 'Ghost'"},
      {"model x conforms testlang\nobject Session s { state = }",
       "expected value"},
      {"model x conforms testlang\nobject Session s { state = \"unterm",
       "unterminated"},
      {"model x conforms testlang\nobject Session s { initiator -> ghost }",
       "ghost"},
      {"model x conforms testlang\nobject Session s {", "unexpected EOF"},
      {"model x conforms testlang\nobject Session s { ghost = 1 }",
       "no attribute"},
  };
  for (const Case& c : cases) {
    auto model = parse_model(c.text, mm);
    ASSERT_FALSE(model.ok()) << c.text;
    EXPECT_EQ(model.status().code(), ErrorCode::kParseError) << c.text;
    EXPECT_NE(model.status().message().find(c.needle), std::string::npos)
        << "message '" << model.status().message() << "' lacks '" << c.needle
        << "'";
  }
}

TEST(TextFormat, EmptyListAndNoneValues) {
  constexpr std::string_view text = R"(
model n conforms testlang
object Session s { state = idle tags = [] }
)";
  auto model = parse_model(text, make_test_metamodel());
  ASSERT_TRUE(model.ok()) << model.status().to_string();
  EXPECT_TRUE(model->find("s")->get("tags").is_list());
  EXPECT_TRUE(model->find("s")->get("tags").as_list().empty());
}

TEST(TextFormat, CommentsAndWhitespaceIgnored) {
  constexpr std::string_view text =
      "model c conforms testlang # trailing\n"
      "# full line\n"
      "object Session s {\n#inner\n state = idle }\n";
  auto model = parse_model(text, make_test_metamodel());
  ASSERT_TRUE(model.ok()) << model.status().to_string();
}

TEST(TextFormat, RequiresFinalizedMetamodel) {
  auto result = parse_model("model x conforms y", nullptr);
  EXPECT_EQ(result.status().code(), ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace mdsm::model
