// Sharded platform cluster (PR 8): consistent-hash ring units, and
// end-to-end fixtures running N ShardNodes behind a ClusterFrontEnd on
// one simulated network — session-sticky routing, query fan-out,
// diff-based model replication, and the failover exactly-once ledger.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster_front_end.hpp"
#include "cluster/shard_node.hpp"
#include "cluster/shard_ring.hpp"
#include "core/middleware_metamodel.hpp"
#include "core/platform.hpp"
#include "ingress/ingress_client.hpp"
#include "model/diff.hpp"
#include "model/text_format.hpp"
#include "net/network.hpp"
#include "soak_fixtures.hpp"

namespace mdsm {
namespace {

// ---- consistent-hash ring -------------------------------------------------

TEST(ShardRing, FnvIsTheReferenceFunction) {
  // FNV-1a offset basis: hashing nothing yields it verbatim.
  static_assert(cluster::fnv1a("") == 1469598103934665603ull);
  EXPECT_NE(cluster::fnv1a("a"), cluster::fnv1a("b"));
  EXPECT_EQ(cluster::fnv1a("session-1"), cluster::fnv1a("session-1"));
}

TEST(ShardRing, CoversEveryShardWithRoughBalance) {
  const cluster::ShardRing ring(4, 64);
  EXPECT_EQ(ring.shards(), 4u);
  EXPECT_EQ(ring.points(), 256u);
  std::vector<int> owned(4, 0);
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "k" + std::to_string(i);
    const std::size_t owner = ring.owner(key);
    ASSERT_LT(owner, 4u);
    EXPECT_EQ(ring.owner(key), owner);  // deterministic
    ++owned[owner];
  }
  for (int shard = 0; shard < 4; ++shard) {
    EXPECT_GT(owned[shard], 0) << "shard " << shard << " owns nothing";
    // 64 virtual nodes keep the spread within ~2.4x of the 250 mean.
    EXPECT_LT(owned[shard], 600) << "shard " << shard << " owns too much";
  }
}

TEST(ShardRing, ReplicaIsAlwaysADistinctShard) {
  const cluster::ShardRing ring(3, 32);
  for (int i = 0; i < 200; ++i) {
    const std::string key = "s" + std::to_string(i);
    EXPECT_NE(ring.replica(key), ring.owner(key)) << key;
  }
  // Degenerate single-shard ring: the only candidate is the owner.
  const cluster::ShardRing solo(1);
  EXPECT_EQ(solo.replica("anything"), solo.owner("anything"));
}

TEST(ShardRing, GrowingTheRingMovesOnlyAMinorityOfKeys) {
  const cluster::ShardRing four(4, 64);
  const cluster::ShardRing five(5, 64);
  int moved = 0;
  constexpr int kKeys = 1000;
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "k" + std::to_string(i);
    if (four.owner(key) != five.owner(key)) ++moved;
  }
  // Consistent hashing's whole point: ~1/5 of keys move, not ~4/5 as
  // with hash % N. Allow slack either side of the ideal 200.
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, kKeys / 2);
}

// ---- cluster end-to-end fixture -------------------------------------------

net::NetworkConfig quiet_network() {
  net::NetworkConfig config;
  config.base_latency = std::chrono::microseconds(100);
  config.jitter = std::chrono::microseconds(0);
  config.drop_rate = 0.0;
  return config;
}

/// N ShardNodes + a ClusterFrontEnd + one client on a shared simulated
/// network. Shards run their real staged pipelines; the network runs on
/// a SimClock the drive loop advances when a test needs timeouts.
struct ClusterDeployment {
  model::MetamodelPtr dsml;
  SimClock clock;
  std::unique_ptr<net::Network> network;
  std::optional<model::Model> middleware;  ///< the authoritative model
  std::vector<std::unique_ptr<cluster::ShardNode>> nodes;
  std::vector<soak::CountingAdapter*> adapters;  ///< owned by the nodes
  std::unique_ptr<cluster::ClusterFrontEnd> frontend;
  std::unique_ptr<ingress::IngressClient> client;

  /// Deliver, pump every shard's replies, run the front-end's expiry
  /// housekeeping, repeat until `done`. `advance` > 0 moves the SimClock
  /// each lap so reply timeouts (and therefore failover) can fire.
  bool drive_until(const std::function<bool()>& done,
                   Duration advance = Duration{0}) {
    const auto wall_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(15);
    while (std::chrono::steady_clock::now() < wall_deadline) {
      network->run_until_idle();
      for (auto& node : nodes) node->pump();
      network->run_until_idle();
      frontend->maintain();
      client->expire_overdue();
      network->run_until_idle();
      if (done()) return true;
      if (advance.count() > 0) clock.advance(advance);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return done();
  }

  void shutdown() {
    client.reset();
    frontend.reset();
    nodes.clear();  // each node stops its platform
    network.reset();
  }
};

std::unique_ptr<ClusterDeployment> make_cluster(
    std::size_t shards, cluster::ClusterConfig config = {},
    ingress::IngressClientOptions client_options = {}) {
  auto out = std::make_unique<ClusterDeployment>();
  out->dsml = model::testing::make_test_metamodel();
  auto parsed = model::parse_model(soak::kSoakMiddlewareModel,
                                   core::middleware_metamodel());
  if (!parsed.ok()) return nullptr;
  out->middleware.emplace(std::move(parsed.value()));
  out->network = std::make_unique<net::Network>(out->clock, quiet_network());

  std::vector<std::string> endpoints;
  for (std::size_t i = 0; i < shards; ++i) {
    cluster::ShardNodeOptions options;
    options.endpoint = "shard-" + std::to_string(i);
    options.platform_config.dsml = out->dsml;
    options.platform_config.pipeline_threads = 2;
    options.manual_reply_loop = true;  // tests pump() deterministically
    options.provision = [out = out.get()](core::Platform& platform) {
      auto svc = std::make_unique<soak::CountingAdapter>("svc");
      out->adapters.push_back(svc.get());
      return platform.add_resource_adapter(std::move(svc));
    };
    auto node = cluster::ShardNode::launch(*out->middleware, *out->network,
                                           std::move(options));
    if (!node.ok()) return nullptr;
    endpoints.push_back(node.value()->endpoint_name());
    out->nodes.push_back(std::move(node.value()));
  }

  auto frontend = cluster::ClusterFrontEnd::attach(
      *out->network, *out->middleware, std::move(endpoints),
      std::move(config));
  if (!frontend.ok()) return nullptr;
  out->frontend = std::move(frontend.value());

  // Generous local budget: failover tests advance virtual time by
  // seconds, and the client must not write its requests off first.
  if (client_options.reply_timeout == std::chrono::seconds(5)) {
    client_options.reply_timeout = std::chrono::minutes(5);
  }
  auto client = ingress::IngressClient::attach(
      *out->network, out->frontend->endpoint_name(),
      std::move(client_options));
  if (!client.ok()) return nullptr;
  out->client = std::move(client.value());
  return out;
}

/// Exactly-once callback ledger (same shape as the ingress tests').
struct Ledger {
  std::mutex mutex;
  std::map<std::uint64_t, int> fired;
  std::map<std::string, int> refusals;

  ingress::IngressClient::Callback recorder() {
    return [this](const ingress::RemoteOutcome& outcome) {
      std::lock_guard lock(mutex);
      ++fired[outcome.request_id];
      ++refusals[outcome.refusal];
    };
  }
  int total() {
    std::lock_guard lock(mutex);
    int sum = 0;
    for (auto& [id, count] : fired) sum += count;
    return sum;
  }
};

TEST(ClusterE2E, SessionStickyRoutingMatchesTheRing) {
  auto cluster = make_cluster(4);
  ASSERT_NE(cluster, nullptr);

  constexpr int kSessions = 40;
  Ledger ledger;
  std::vector<std::uint64_t> expected_executions(4, 0);
  for (int i = 0; i < kSessions; ++i) {
    const std::string session = "s" + std::to_string(i);
    // Each soak submission costs two svc invocations on its owner.
    expected_executions[cluster->frontend->ring().owner(session)] += 2;
    ASSERT_TRUE(cluster->client
                    ->submit("testlang", session,
                             soak::open_session_text(session),
                             ledger.recorder())
                    .ok());
  }
  ASSERT_TRUE(cluster->drive_until([&] { return ledger.total() == kSessions; }));

  {
    std::lock_guard lock(ledger.mutex);
    EXPECT_EQ(ledger.refusals[""], kSessions);  // every submission succeeded
    for (const auto& [id, count] : ledger.fired) {
      EXPECT_EQ(count, 1) << "request " << id;
    }
  }
  // The ring's placement is exactly where the work landed.
  for (int shard = 0; shard < 4; ++shard) {
    EXPECT_EQ(cluster->adapters[shard]->executed(),
              expected_executions[shard])
        << "shard " << shard;
  }
  const cluster::ClusterFrontEnd::Stats stats = cluster->frontend->stats();
  EXPECT_EQ(stats.forwarded, static_cast<std::uint64_t>(kSessions));
  EXPECT_EQ(stats.replies, static_cast<std::uint64_t>(kSessions));
  EXPECT_EQ(stats.failovers, 0u);
  EXPECT_EQ(stats.rerouted, 0u);

  // Stickiness: resubmitting a session lands on the same shard.
  const std::string session = "s0";
  const std::size_t owner = cluster->frontend->ring().owner(session);
  const std::uint64_t before = cluster->adapters[owner]->executed();
  Ledger again;
  ASSERT_TRUE(cluster->client
                  ->submit("testlang", session, soak::open_session_text("x0"),
                           again.recorder())
                  .ok());
  ASSERT_TRUE(cluster->drive_until([&] { return again.total() == 1; }));
  EXPECT_EQ(cluster->adapters[owner]->executed(), before + 2);
  cluster->shutdown();
}

TEST(ClusterE2E, QueryFansOutAndMergesEveryShard) {
  auto cluster = make_cluster(3);
  ASSERT_NE(cluster, nullptr);

  std::mutex mutex;
  std::optional<ingress::RemoteOutcome> merged;
  ASSERT_TRUE(cluster->client
                  ->query("metrics",
                          [&](const ingress::RemoteOutcome& outcome) {
                            std::lock_guard lock(mutex);
                            merged = outcome;
                          })
                  .ok());
  ASSERT_TRUE(cluster->drive_until([&] {
    std::lock_guard lock(mutex);
    return merged.has_value();
  }));

  ASSERT_TRUE(merged->status.ok()) << merged->status.to_string();
  for (int shard = 0; shard < 3; ++shard) {
    EXPECT_NE(merged->payload.find("=== shard " + std::to_string(shard) +
                                   " ==="),
              std::string::npos)
        << merged->payload;
  }
  EXPECT_EQ(cluster->frontend->stats().query_fanouts, 1u);
  cluster->shutdown();
}

TEST(ClusterE2E, ModelDiffReplicationSyncsEveryShard) {
  auto cluster = make_cluster(2);
  ASSERT_NE(cluster, nullptr);

  // Grow the vocabulary: a cheaper media.path procedure. The next model
  // differs from the baseline by exactly this subtree.
  std::string next_text(soak::kSoakMiddlewareModel);
  const std::string anchor = "child actions ActionSpec ca1";
  next_text.insert(next_text.find(anchor),
                   "child procedures ProcedureSpec pr3 {\n"
                   "      name = \"path-cheap\"\n"
                   "      classifier = \"media.path\"\n"
                   "      cost = 0.5\n"
                   "      child units EuSpec eu3 {\n"
                   "        child steps StepSpec t9 {\n"
                   "          op = broker-call\n"
                   "          a = \"svc.open\"\n"
                   "          child args ArgSpec b3a { key = \"id\" value = "
                   "\"$id\" }\n"
                   "        }\n"
                   "      }\n"
                   "    }\n    ");
  auto next = model::parse_model(next_text, core::middleware_metamodel());
  ASSERT_TRUE(next.ok()) << next.status().to_string();

  ASSERT_TRUE(cluster->frontend->update_model(next.value()).ok());
  ASSERT_TRUE(cluster->drive_until(
      [&] { return cluster->frontend->stats().replication_acks == 2; }));

  const cluster::ClusterFrontEnd::Stats stats = cluster->frontend->stats();
  EXPECT_EQ(stats.deltas_shipped, 1u);
  EXPECT_EQ(stats.replication_failures, 0u);
  // The headline economy: the delta is a fraction of a full-model push.
  EXPECT_GT(stats.delta_bytes, 0u);
  EXPECT_LT(stats.delta_bytes, stats.full_bytes / 4);

  for (auto& node : cluster->nodes) {
    const cluster::ShardNode::Stats replication = node->replication_stats();
    EXPECT_EQ(replication.deltas_applied, 1u);
    EXPECT_GE(replication.procedures_synced, 1u);
    // The new procedure is live in the shard's controller.
    const controller::Procedure* synced =
        node->platform().controller().repository().find("path-cheap");
    ASSERT_NE(synced, nullptr);
    EXPECT_EQ(synced->classifier, "media.path");
  }

  // Re-shipping an identical model is a no-op, not an empty broadcast.
  ASSERT_TRUE(cluster->frontend->update_model(next.value()).ok());
  EXPECT_EQ(cluster->frontend->stats().deltas_shipped, 1u);

  // And the replicated vocabulary actually serves traffic.
  Ledger ledger;
  ASSERT_TRUE(cluster->client
                  ->submit("testlang", "post-sync",
                           soak::open_session_text("ps1"), ledger.recorder())
                  .ok());
  ASSERT_TRUE(cluster->drive_until([&] { return ledger.total() == 1; }));
  {
    std::lock_guard lock(ledger.mutex);
    EXPECT_EQ(ledger.refusals[""], 1);
  }
  cluster->shutdown();
}

// The tentpole guarantee: killing a shard mid-run loses no callbacks.
// Requests bound for the dead shard time out downstream, fail over to
// the ring-designated replica, and resolve exactly once at the client;
// once the health window trips, later requests reroute at admission.
TEST(ClusterE2E, FailoverResolvesEveryRequestExactlyOnce) {
  cluster::ClusterConfig config;
  config.downstream_reply_timeout = std::chrono::milliseconds(200);
  auto cluster = make_cluster(4, config);
  ASSERT_NE(cluster, nullptr);

  // Sessions the ring places on the victim shard.
  const std::size_t victim = 0;
  std::vector<std::string> victim_sessions;
  for (int i = 0; victim_sessions.size() < 12; ++i) {
    const std::string session = "s" + std::to_string(i);
    if (cluster->frontend->ring().owner(session) == victim) {
      victim_sessions.push_back(session);
    }
  }
  cluster->nodes[victim]->kill();
  EXPECT_FALSE(cluster->nodes[victim]->alive());

  Ledger ledger;
  for (const std::string& session : victim_sessions) {
    ASSERT_TRUE(cluster->client
                    ->submit("testlang", session,
                             soak::open_session_text(session),
                             ledger.recorder())
                    .ok());
  }
  // Advance virtual time so the downstream windows expire and failover
  // fires; every request must still resolve OK on the replica.
  ASSERT_TRUE(cluster->drive_until(
      [&] { return ledger.total() == static_cast<int>(victim_sessions.size()); },
      std::chrono::milliseconds(20)));

  {
    std::lock_guard lock(ledger.mutex);
    EXPECT_EQ(ledger.refusals[""], static_cast<int>(victim_sessions.size()));
    EXPECT_EQ(ledger.refusals["reply-lost"], 0);
    for (const auto& [id, count] : ledger.fired) {
      EXPECT_EQ(count, 1) << "request " << id;  // zero lost, zero duplicated
    }
  }
  cluster::ClusterFrontEnd::Stats stats = cluster->frontend->stats();
  EXPECT_GE(stats.failovers, 1u);
  EXPECT_GE(stats.breaker_trips, 1u);

  // Exactly-once execution: the dead shard ran nothing, the survivors
  // ran each failed-over session exactly once.
  EXPECT_EQ(cluster->adapters[victim]->executed(), 0u);
  std::uint64_t executed = 0;
  for (int shard = 0; shard < 4; ++shard) {
    executed += cluster->adapters[shard]->executed();
  }
  EXPECT_EQ(executed, 2 * victim_sessions.size());

  // With the victim's window open, admission reroutes to the replica.
  // All shard_for peeks happen before any submit: the first admit after
  // the cooldown turns the window half-open (one probe retries the dead
  // primary; it fails over like any lost forward).
  Ledger second_wave;
  std::vector<std::string> more;
  for (int i = 1000; more.size() < 4; ++i) {
    const std::string session = "s" + std::to_string(i);
    if (cluster->frontend->ring().owner(session) == victim) {
      more.push_back(session);
      EXPECT_EQ(cluster->frontend->shard_for(session),
                cluster->frontend->ring().replica(session));
    }
  }
  for (const std::string& session : more) {
    ASSERT_TRUE(cluster->client
                    ->submit("testlang", session,
                             soak::open_session_text(session),
                             second_wave.recorder())
                    .ok());
  }
  ASSERT_TRUE(cluster->drive_until(
      [&] { return second_wave.total() == static_cast<int>(more.size()); },
      std::chrono::milliseconds(20)));
  {
    std::lock_guard lock(second_wave.mutex);
    EXPECT_EQ(second_wave.refusals[""], static_cast<int>(more.size()));
  }
  stats = cluster->frontend->stats();
  EXPECT_GE(stats.rerouted + stats.failovers, victim_sessions.size() + 1);
  cluster->shutdown();
}

// Single-shard degenerate cluster: no replica exists, so when the only
// shard dies its requests surface as typed reply-lost refusals — the
// client still hears exactly once about each.
TEST(ClusterE2E, SingleShardDeathYieldsTypedLossNotSilence) {
  cluster::ClusterConfig config;
  config.downstream_reply_timeout = std::chrono::milliseconds(200);
  auto cluster = make_cluster(1, config);
  ASSERT_NE(cluster, nullptr);
  cluster->nodes[0]->kill();

  Ledger ledger;
  constexpr int kSubmissions = 3;
  for (int i = 0; i < kSubmissions; ++i) {
    ASSERT_TRUE(cluster->client
                    ->submit("testlang", "s" + std::to_string(i),
                             soak::open_session_text("s" + std::to_string(i)),
                             ledger.recorder())
                    .ok());
  }
  ASSERT_TRUE(cluster->drive_until(
      [&] { return ledger.total() == kSubmissions; },
      std::chrono::milliseconds(20)));
  {
    std::lock_guard lock(ledger.mutex);
    EXPECT_EQ(ledger.refusals["reply-lost"], kSubmissions);
    for (const auto& [id, count] : ledger.fired) {
      EXPECT_EQ(count, 1) << "request " << id;
    }
  }
  cluster->shutdown();
}

}  // namespace
}  // namespace mdsm
