// Sharded platform cluster (PR 8): consistent-hash ring units, and
// end-to-end fixtures running N ShardNodes behind a ClusterFrontEnd on
// one simulated network — session-sticky routing, query fan-out,
// diff-based model replication, and the failover exactly-once ledger.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster_front_end.hpp"
#include "cluster/shard_node.hpp"
#include "cluster/shard_ring.hpp"
#include "core/middleware_metamodel.hpp"
#include "core/platform.hpp"
#include "ingress/ingress_client.hpp"
#include "model/diff.hpp"
#include "model/text_format.hpp"
#include "net/network.hpp"
#include "soak_fixtures.hpp"

namespace mdsm {
namespace {

// ---- consistent-hash ring -------------------------------------------------

TEST(ShardRing, FnvIsTheReferenceFunction) {
  // FNV-1a offset basis: hashing nothing yields it verbatim.
  static_assert(cluster::fnv1a("") == 1469598103934665603ull);
  EXPECT_NE(cluster::fnv1a("a"), cluster::fnv1a("b"));
  EXPECT_EQ(cluster::fnv1a("session-1"), cluster::fnv1a("session-1"));
}

TEST(ShardRing, CoversEveryShardWithRoughBalance) {
  const cluster::ShardRing ring(4, 64);
  EXPECT_EQ(ring.shards(), 4u);
  EXPECT_EQ(ring.points(), 256u);
  std::vector<int> owned(4, 0);
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "k" + std::to_string(i);
    const std::size_t owner = ring.owner(key);
    ASSERT_LT(owner, 4u);
    EXPECT_EQ(ring.owner(key), owner);  // deterministic
    ++owned[owner];
  }
  for (int shard = 0; shard < 4; ++shard) {
    EXPECT_GT(owned[shard], 0) << "shard " << shard << " owns nothing";
    // 64 virtual nodes keep the spread within ~2.4x of the 250 mean.
    EXPECT_LT(owned[shard], 600) << "shard " << shard << " owns too much";
  }
}

TEST(ShardRing, ReplicaIsAlwaysADistinctShard) {
  const cluster::ShardRing ring(3, 32);
  for (int i = 0; i < 200; ++i) {
    const std::string key = "s" + std::to_string(i);
    EXPECT_NE(ring.replica(key), ring.owner(key)) << key;
  }
  // Degenerate single-shard ring: the only candidate is the owner.
  const cluster::ShardRing solo(1);
  EXPECT_EQ(solo.replica("anything"), solo.owner("anything"));
}

TEST(ShardRing, GrowingTheRingMovesOnlyAMinorityOfKeys) {
  const cluster::ShardRing four(4, 64);
  const cluster::ShardRing five(5, 64);
  int moved = 0;
  constexpr int kKeys = 1000;
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "k" + std::to_string(i);
    if (four.owner(key) != five.owner(key)) ++moved;
  }
  // Consistent hashing's whole point: ~1/5 of keys move, not ~4/5 as
  // with hash % N. Allow slack either side of the ideal 200.
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, kKeys / 2);
}

// The elasticity property (PR 9): splicing shard n into an n-member
// ring moves at most ~1/(n+1) of 10k sampled keys, every moved key goes
// TO the newcomer, the returned arcs describe the move set exactly, and
// the grown ring is point-for-point the fresh (n+1)-ring.
TEST(ShardRing, AddShardMovesBoundedArcsToTheNewcomerOnly) {
  constexpr int kKeys = 10000;
  for (const std::size_t n : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    const cluster::ShardRing before(n, 64);
    cluster::ShardRing ring(n, 64);
    const std::vector<cluster::ShardRing::Arc> arcs = ring.add_shard(n);
    ASSERT_FALSE(arcs.empty());
    for (const cluster::ShardRing::Arc& arc : arcs) {
      EXPECT_EQ(arc.to, n) << "arc moved to a shard other than the newcomer";
    }
    const cluster::ShardRing fresh(n + 1, 64);
    int moved = 0;
    for (int i = 0; i < kKeys; ++i) {
      const std::string key = "k" + std::to_string(i);
      ASSERT_EQ(ring.owner(key), fresh.owner(key)) << key;
      if (before.owner(key) != ring.owner(key)) {
        ++moved;
        EXPECT_EQ(ring.owner(key), n) << key << " moved to a survivor";
        EXPECT_TRUE(cluster::ShardRing::arcs_contain(arcs, key)) << key;
      } else {
        EXPECT_FALSE(cluster::ShardRing::arcs_contain(arcs, key)) << key;
      }
    }
    EXPECT_GT(moved, 0) << "n=" << n;
    EXPECT_LE(moved, static_cast<int>(kKeys * 1.5 / (n + 1))) << "n=" << n;
    const double fraction = cluster::ShardRing::arcs_fraction(arcs);
    EXPECT_GT(fraction, 0.0);
    EXPECT_LE(fraction, 1.5 / static_cast<double>(n + 1));
    // Re-adding a member is inert.
    EXPECT_TRUE(ring.add_shard(n).empty());
  }
}

TEST(ShardRing, RemoveShardHandsArcsToSurvivorsOthersStayPut) {
  constexpr int kKeys = 10000;
  const cluster::ShardRing before(5, 64);
  cluster::ShardRing ring(5, 64);
  const std::vector<cluster::ShardRing::Arc> arcs = ring.remove_shard(2);
  ASSERT_FALSE(arcs.empty());
  EXPECT_FALSE(ring.contains(2));
  EXPECT_EQ(ring.shards(), 4u);
  for (const cluster::ShardRing::Arc& arc : arcs) EXPECT_EQ(arc.from, 2u);
  int moved = 0;
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "k" + std::to_string(i);
    if (before.owner(key) == 2) {
      ++moved;
      EXPECT_NE(ring.owner(key), 2u) << key;
      EXPECT_TRUE(cluster::ShardRing::arcs_contain(arcs, key)) << key;
    } else {
      // Keys the leaver never owned keep their owner verbatim.
      EXPECT_EQ(ring.owner(key), before.owner(key)) << key;
      EXPECT_FALSE(cluster::ShardRing::arcs_contain(arcs, key)) << key;
    }
  }
  EXPECT_GT(moved, 0);
  // Splicing the leaver back restores the original placement exactly.
  ASSERT_FALSE(ring.add_shard(2).empty());
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "k" + std::to_string(i);
    ASSERT_EQ(ring.owner(key), before.owner(key)) << key;
  }
}

TEST(ShardRing, ResizeRefusalsAreInert) {
  cluster::ShardRing ring(2, 16);
  EXPECT_TRUE(ring.add_shard(0).empty());     // already a member
  EXPECT_TRUE(ring.remove_shard(7).empty());  // never was one
  ASSERT_FALSE(ring.remove_shard(1).empty());
  EXPECT_TRUE(ring.remove_shard(0).empty());  // the last member must stay
  EXPECT_EQ(ring.shards(), 1u);
  EXPECT_TRUE(ring.contains(0));
  const std::vector<std::size_t> members = ring.members();
  ASSERT_EQ(members.size(), 1u);
  EXPECT_EQ(members[0], 0u);
  EXPECT_EQ(ring.owner("any-key"), 0u);
}

// ---- cluster end-to-end fixture -------------------------------------------

net::NetworkConfig quiet_network() {
  net::NetworkConfig config;
  config.base_latency = std::chrono::microseconds(100);
  config.jitter = std::chrono::microseconds(0);
  config.drop_rate = 0.0;
  return config;
}

/// N ShardNodes + a ClusterFrontEnd + one client on a shared simulated
/// network. Shards run their real staged pipelines; the network runs on
/// a SimClock the drive loop advances when a test needs timeouts.
struct ClusterDeployment {
  model::MetamodelPtr dsml;
  SimClock clock;
  std::unique_ptr<net::Network> network;
  std::optional<model::Model> middleware;  ///< the authoritative model
  std::vector<std::unique_ptr<cluster::ShardNode>> nodes;
  std::vector<soak::CountingAdapter*> adapters;  ///< owned by the nodes
  std::unique_ptr<cluster::ClusterFrontEnd> frontend;
  std::unique_ptr<ingress::IngressClient> client;

  /// Deliver, pump every shard's replies, run the front-end's expiry
  /// housekeeping, repeat until `done`. `advance` > 0 moves the SimClock
  /// each lap so reply timeouts (and therefore failover) can fire.
  bool drive_until(const std::function<bool()>& done,
                   Duration advance = Duration{0}) {
    const auto wall_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(15);
    while (std::chrono::steady_clock::now() < wall_deadline) {
      network->run_until_idle();
      for (auto& node : nodes) node->pump();
      network->run_until_idle();
      frontend->maintain();
      client->expire_overdue();
      network->run_until_idle();
      if (done()) return true;
      if (advance.count() > 0) clock.advance(advance);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return done();
  }

  void shutdown() {
    client.reset();
    frontend.reset();
    nodes.clear();  // each node stops its platform
    network.reset();
  }
};

/// Launch one more ShardNode on `endpoint` from the deployment's
/// ORIGINAL baseline model, with the standard provision recipe. Used by
/// make_cluster for the initial fleet and by elasticity tests to stand
/// up a spare before frontend->join() — a joiner deliberately starts on
/// the stale launch baseline so the warm-up has something to ship.
bool launch_spare(ClusterDeployment& out, const std::string& endpoint) {
  cluster::ShardNodeOptions options;
  options.endpoint = endpoint;
  options.platform_config.dsml = out.dsml;
  options.platform_config.pipeline_threads = 2;
  options.manual_reply_loop = true;  // tests pump() deterministically
  options.provision = [o = &out](core::Platform& platform) {
    auto svc = std::make_unique<soak::CountingAdapter>("svc");
    o->adapters.push_back(svc.get());
    return platform.add_resource_adapter(std::move(svc));
  };
  auto node =
      cluster::ShardNode::launch(*out.middleware, *out.network,
                                 std::move(options));
  if (!node.ok()) return false;
  out.nodes.push_back(std::move(node.value()));
  return true;
}

std::unique_ptr<ClusterDeployment> make_cluster(
    std::size_t shards, cluster::ClusterConfig config = {},
    ingress::IngressClientOptions client_options = {},
    std::string_view extra_attrs = "") {
  auto out = std::make_unique<ClusterDeployment>();
  out->dsml = model::testing::make_test_metamodel();
  std::string text(soak::kSoakMiddlewareModel);
  if (!extra_attrs.empty()) {
    // Splice platform attrs (checkpoint_interval, ...) after the domain
    // line, same trick the ingress fixtures use.
    const std::string anchor = "domain = \"testing\"";
    text.insert(text.find(anchor) + anchor.size(),
                "\n  " + std::string(extra_attrs));
  }
  auto parsed = model::parse_model(text, core::middleware_metamodel());
  if (!parsed.ok()) return nullptr;
  out->middleware.emplace(std::move(parsed.value()));
  out->network = std::make_unique<net::Network>(out->clock, quiet_network());

  std::vector<std::string> endpoints;
  for (std::size_t i = 0; i < shards; ++i) {
    if (!launch_spare(*out, "shard-" + std::to_string(i))) return nullptr;
    endpoints.push_back(out->nodes.back()->endpoint_name());
  }

  auto frontend = cluster::ClusterFrontEnd::attach(
      *out->network, *out->middleware, std::move(endpoints),
      std::move(config));
  if (!frontend.ok()) return nullptr;
  out->frontend = std::move(frontend.value());

  // Generous local budget: failover tests advance virtual time by
  // seconds, and the client must not write its requests off first.
  if (client_options.reply_timeout == std::chrono::seconds(5)) {
    client_options.reply_timeout = std::chrono::minutes(5);
  }
  auto client = ingress::IngressClient::attach(
      *out->network, out->frontend->endpoint_name(),
      std::move(client_options));
  if (!client.ok()) return nullptr;
  out->client = std::move(client.value());
  return out;
}

/// Exactly-once callback ledger (same shape as the ingress tests').
struct Ledger {
  std::mutex mutex;
  std::map<std::uint64_t, int> fired;
  std::map<std::string, int> refusals;

  ingress::IngressClient::Callback recorder() {
    return [this](const ingress::RemoteOutcome& outcome) {
      std::lock_guard lock(mutex);
      ++fired[outcome.request_id];
      ++refusals[outcome.refusal];
    };
  }
  int total() {
    std::lock_guard lock(mutex);
    int sum = 0;
    for (auto& [id, count] : fired) sum += count;
    return sum;
  }
};

TEST(ClusterE2E, SessionStickyRoutingMatchesTheRing) {
  auto cluster = make_cluster(4);
  ASSERT_NE(cluster, nullptr);

  constexpr int kSessions = 40;
  Ledger ledger;
  std::vector<std::uint64_t> expected_executions(4, 0);
  for (int i = 0; i < kSessions; ++i) {
    const std::string session = "s" + std::to_string(i);
    // Each soak submission costs two svc invocations on its owner.
    expected_executions[cluster->frontend->ring().owner(session)] += 2;
    ASSERT_TRUE(cluster->client
                    ->submit("testlang", session,
                             soak::open_session_text(session),
                             ledger.recorder())
                    .ok());
  }
  ASSERT_TRUE(cluster->drive_until([&] { return ledger.total() == kSessions; }));

  {
    std::lock_guard lock(ledger.mutex);
    EXPECT_EQ(ledger.refusals[""], kSessions);  // every submission succeeded
    for (const auto& [id, count] : ledger.fired) {
      EXPECT_EQ(count, 1) << "request " << id;
    }
  }
  // The ring's placement is exactly where the work landed.
  for (int shard = 0; shard < 4; ++shard) {
    EXPECT_EQ(cluster->adapters[shard]->executed(),
              expected_executions[shard])
        << "shard " << shard;
  }
  const cluster::ClusterFrontEnd::Stats stats = cluster->frontend->stats();
  EXPECT_EQ(stats.forwarded, static_cast<std::uint64_t>(kSessions));
  EXPECT_EQ(stats.replies, static_cast<std::uint64_t>(kSessions));
  EXPECT_EQ(stats.failovers, 0u);
  EXPECT_EQ(stats.rerouted, 0u);

  // Stickiness: resubmitting a session lands on the same shard.
  const std::string session = "s0";
  const std::size_t owner = cluster->frontend->ring().owner(session);
  const std::uint64_t before = cluster->adapters[owner]->executed();
  Ledger again;
  ASSERT_TRUE(cluster->client
                  ->submit("testlang", session, soak::open_session_text("x0"),
                           again.recorder())
                  .ok());
  ASSERT_TRUE(cluster->drive_until([&] { return again.total() == 1; }));
  EXPECT_EQ(cluster->adapters[owner]->executed(), before + 2);
  cluster->shutdown();
}

TEST(ClusterE2E, QueryFansOutAndMergesEveryShard) {
  auto cluster = make_cluster(3);
  ASSERT_NE(cluster, nullptr);

  std::mutex mutex;
  std::optional<ingress::RemoteOutcome> merged;
  ASSERT_TRUE(cluster->client
                  ->query("metrics",
                          [&](const ingress::RemoteOutcome& outcome) {
                            std::lock_guard lock(mutex);
                            merged = outcome;
                          })
                  .ok());
  ASSERT_TRUE(cluster->drive_until([&] {
    std::lock_guard lock(mutex);
    return merged.has_value();
  }));

  ASSERT_TRUE(merged->status.ok()) << merged->status.to_string();
  for (int shard = 0; shard < 3; ++shard) {
    EXPECT_NE(merged->payload.find("=== shard " + std::to_string(shard) +
                                   " ==="),
              std::string::npos)
        << merged->payload;
  }
  EXPECT_EQ(cluster->frontend->stats().query_fanouts, 1u);
  cluster->shutdown();
}

/// The baseline middleware model grown by one cheaper media.path
/// procedure ("path-cheap") — the canonical "next model" replication
/// and elasticity tests ship.
std::string grown_model_text() {
  std::string next_text(soak::kSoakMiddlewareModel);
  const std::string anchor = "child actions ActionSpec ca1";
  next_text.insert(next_text.find(anchor),
                   "child procedures ProcedureSpec pr3 {\n"
                   "      name = \"path-cheap\"\n"
                   "      classifier = \"media.path\"\n"
                   "      cost = 0.5\n"
                   "      child units EuSpec eu3 {\n"
                   "        child steps StepSpec t9 {\n"
                   "          op = broker-call\n"
                   "          a = \"svc.open\"\n"
                   "          child args ArgSpec b3a { key = \"id\" value = "
                   "\"$id\" }\n"
                   "        }\n"
                   "      }\n"
                   "    }\n    ");
  return next_text;
}

TEST(ClusterE2E, ModelDiffReplicationSyncsEveryShard) {
  auto cluster = make_cluster(2);
  ASSERT_NE(cluster, nullptr);

  // Grow the vocabulary: a cheaper media.path procedure. The next model
  // differs from the baseline by exactly this subtree.
  auto next =
      model::parse_model(grown_model_text(), core::middleware_metamodel());
  ASSERT_TRUE(next.ok()) << next.status().to_string();

  ASSERT_TRUE(cluster->frontend->update_model(next.value()).ok());
  ASSERT_TRUE(cluster->drive_until(
      [&] { return cluster->frontend->stats().replication_acks == 2; }));

  const cluster::ClusterFrontEnd::Stats stats = cluster->frontend->stats();
  EXPECT_EQ(stats.deltas_shipped, 1u);
  EXPECT_EQ(stats.replication_failures, 0u);
  // The headline economy: the delta is a fraction of a full-model push.
  EXPECT_GT(stats.delta_bytes, 0u);
  EXPECT_LT(stats.delta_bytes, stats.full_bytes / 4);

  for (auto& node : cluster->nodes) {
    const cluster::ShardNode::Stats replication = node->replication_stats();
    EXPECT_EQ(replication.deltas_applied, 1u);
    EXPECT_GE(replication.procedures_synced, 1u);
    // The new procedure is live in the shard's controller.
    const controller::Procedure* synced =
        node->platform().controller().repository().find("path-cheap");
    ASSERT_NE(synced, nullptr);
    EXPECT_EQ(synced->classifier, "media.path");
  }

  // Re-shipping an identical model is a no-op, not an empty broadcast.
  ASSERT_TRUE(cluster->frontend->update_model(next.value()).ok());
  EXPECT_EQ(cluster->frontend->stats().deltas_shipped, 1u);

  // And the replicated vocabulary actually serves traffic.
  Ledger ledger;
  ASSERT_TRUE(cluster->client
                  ->submit("testlang", "post-sync",
                           soak::open_session_text("ps1"), ledger.recorder())
                  .ok());
  ASSERT_TRUE(cluster->drive_until([&] { return ledger.total() == 1; }));
  {
    std::lock_guard lock(ledger.mutex);
    EXPECT_EQ(ledger.refusals[""], 1);
  }
  cluster->shutdown();
}

// The tentpole guarantee: killing a shard mid-run loses no callbacks.
// Requests bound for the dead shard time out downstream, fail over to
// the ring-designated replica, and resolve exactly once at the client;
// once the health window trips, later requests reroute at admission.
TEST(ClusterE2E, FailoverResolvesEveryRequestExactlyOnce) {
  cluster::ClusterConfig config;
  config.downstream_reply_timeout = std::chrono::milliseconds(200);
  auto cluster = make_cluster(4, config);
  ASSERT_NE(cluster, nullptr);

  // Sessions the ring places on the victim shard.
  const std::size_t victim = 0;
  std::vector<std::string> victim_sessions;
  for (int i = 0; victim_sessions.size() < 12; ++i) {
    const std::string session = "s" + std::to_string(i);
    if (cluster->frontend->ring().owner(session) == victim) {
      victim_sessions.push_back(session);
    }
  }
  cluster->nodes[victim]->kill();
  EXPECT_FALSE(cluster->nodes[victim]->alive());

  Ledger ledger;
  for (const std::string& session : victim_sessions) {
    ASSERT_TRUE(cluster->client
                    ->submit("testlang", session,
                             soak::open_session_text(session),
                             ledger.recorder())
                    .ok());
  }
  // Advance virtual time so the downstream windows expire and failover
  // fires; every request must still resolve OK on the replica.
  ASSERT_TRUE(cluster->drive_until(
      [&] { return ledger.total() == static_cast<int>(victim_sessions.size()); },
      std::chrono::milliseconds(20)));

  {
    std::lock_guard lock(ledger.mutex);
    EXPECT_EQ(ledger.refusals[""], static_cast<int>(victim_sessions.size()));
    EXPECT_EQ(ledger.refusals["reply-lost"], 0);
    for (const auto& [id, count] : ledger.fired) {
      EXPECT_EQ(count, 1) << "request " << id;  // zero lost, zero duplicated
    }
  }
  cluster::ClusterFrontEnd::Stats stats = cluster->frontend->stats();
  EXPECT_GE(stats.failovers, 1u);
  EXPECT_GE(stats.breaker_trips, 1u);

  // Exactly-once execution: the dead shard ran nothing, the survivors
  // ran each failed-over session exactly once.
  EXPECT_EQ(cluster->adapters[victim]->executed(), 0u);
  std::uint64_t executed = 0;
  for (int shard = 0; shard < 4; ++shard) {
    executed += cluster->adapters[shard]->executed();
  }
  EXPECT_EQ(executed, 2 * victim_sessions.size());

  // With the victim's window open, admission reroutes to the replica.
  // All shard_for peeks happen before any submit: the first admit after
  // the cooldown turns the window half-open (one probe retries the dead
  // primary; it fails over like any lost forward).
  Ledger second_wave;
  std::vector<std::string> more;
  for (int i = 1000; more.size() < 4; ++i) {
    const std::string session = "s" + std::to_string(i);
    if (cluster->frontend->ring().owner(session) == victim) {
      more.push_back(session);
      EXPECT_EQ(cluster->frontend->shard_for(session),
                cluster->frontend->ring().replica(session));
    }
  }
  for (const std::string& session : more) {
    ASSERT_TRUE(cluster->client
                    ->submit("testlang", session,
                             soak::open_session_text(session),
                             second_wave.recorder())
                    .ok());
  }
  ASSERT_TRUE(cluster->drive_until(
      [&] { return second_wave.total() == static_cast<int>(more.size()); },
      std::chrono::milliseconds(20)));
  {
    std::lock_guard lock(second_wave.mutex);
    EXPECT_EQ(second_wave.refusals[""], static_cast<int>(more.size()));
  }
  stats = cluster->frontend->stats();
  EXPECT_GE(stats.rerouted + stats.failovers, victim_sessions.size() + 1);
  cluster->shutdown();
}

// Single-shard degenerate cluster: no replica exists, so when the only
// shard dies its requests surface as typed reply-lost refusals — the
// client still hears exactly once about each.
TEST(ClusterE2E, SingleShardDeathYieldsTypedLossNotSilence) {
  cluster::ClusterConfig config;
  config.downstream_reply_timeout = std::chrono::milliseconds(200);
  auto cluster = make_cluster(1, config);
  ASSERT_NE(cluster, nullptr);
  cluster->nodes[0]->kill();

  Ledger ledger;
  constexpr int kSubmissions = 3;
  for (int i = 0; i < kSubmissions; ++i) {
    ASSERT_TRUE(cluster->client
                    ->submit("testlang", "s" + std::to_string(i),
                             soak::open_session_text("s" + std::to_string(i)),
                             ledger.recorder())
                    .ok());
  }
  ASSERT_TRUE(cluster->drive_until(
      [&] { return ledger.total() == kSubmissions; },
      std::chrono::milliseconds(20)));
  {
    std::lock_guard lock(ledger.mutex);
    EXPECT_EQ(ledger.refusals["reply-lost"], kSubmissions);
    for (const auto& [id, count] : ledger.fired) {
      EXPECT_EQ(count, 1) << "request " << id;
    }
  }
  cluster->shutdown();
}

// PR 9 bugfix regression: a shard that nacks a delta (its replica
// diverged and the delta no longer applies) must be marked stale and
// repaired by a full-model ship — the old code only bumped
// replication_failures_ and the shard diverged permanently.
TEST(ClusterE2E, StaleShardIsRepairedByFullModelSync) {
  auto cluster = make_cluster(2);
  ASSERT_NE(cluster, nullptr);

  // Diverge shard 1 behind the front-end's back: remove pr2
  // ("path-direct") from its replica, as if a previous delta never
  // arrived there.
  model::ChangeList divergence;
  model::Change removal;
  removal.kind = model::ChangeKind::kRemoveObject;
  removal.object_id = "pr2";
  removal.class_name = "ProcedureSpec";
  divergence.push_back(removal);
  ASSERT_TRUE(cluster->nodes[1]->apply_changes(divergence).ok());
  EXPECT_EQ(cluster->nodes[1]->platform().controller().repository().find(
                "path-direct"),
            nullptr);

  // Ship a delta that touches pr2 (cost 1.0 -> 2.0): shard 0 applies it,
  // shard 1 cannot (the object is gone) and nacks.
  std::string repriced(soak::kSoakMiddlewareModel);
  const std::string old_cost = "cost = 1.0";
  repriced.replace(repriced.find(old_cost), old_cost.size(), "cost = 2.0");
  auto next = model::parse_model(repriced, core::middleware_metamodel());
  ASSERT_TRUE(next.ok()) << next.status().to_string();
  ASSERT_TRUE(cluster->frontend->update_model(next.value()).ok());

  // maintain() notices the staleness and re-ships the FULL model; the
  // version-matched ack clears it and the shard converges.
  ASSERT_TRUE(cluster->drive_until([&] {
    return cluster->frontend->stats().full_sync_acks >= 1;
  }));

  cluster::ClusterFrontEnd::Stats stats = cluster->frontend->stats();
  EXPECT_GE(stats.replication_failures, 1u);
  EXPECT_EQ(stats.stale_marks, 1u);
  EXPECT_GE(stats.full_syncs_shipped, 1u);

  const cluster::ShardNode::Stats repaired =
      cluster->nodes[1]->replication_stats();
  EXPECT_GE(repaired.full_syncs_applied, 1u);
  const controller::Procedure* restored =
      cluster->nodes[1]->platform().controller().repository().find(
          "path-direct");
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->classifier, "media.path");

  // Staleness cleared: the NEXT update ships shard 1 a plain delta
  // again, and it acks.
  const std::uint64_t acks_before = stats.replication_acks;
  auto grown =
      model::parse_model(grown_model_text(), core::middleware_metamodel());
  ASSERT_TRUE(grown.ok());
  // Re-apply the repricing on top so the diff against the adopted
  // baseline is just the pr3 addition.
  std::string grown_repriced = grown_model_text();
  grown_repriced.replace(grown_repriced.find(old_cost), old_cost.size(),
                         "cost = 2.0");
  auto third =
      model::parse_model(grown_repriced, core::middleware_metamodel());
  ASSERT_TRUE(third.ok());
  ASSERT_TRUE(cluster->frontend->update_model(third.value()).ok());
  ASSERT_TRUE(cluster->drive_until([&] {
    return cluster->frontend->stats().replication_acks >= acks_before + 2;
  }));
  EXPECT_NE(cluster->nodes[1]->platform().controller().repository().find(
                "path-cheap"),
            nullptr);
  cluster->shutdown();
}

// PR 9 bugfix regression: failover and admission-time reroute must
// consult the REPLICA's breaker. When the fallback shard's window is
// open the request refuses "shard-unavailable" — it is not dogpiled
// onto a shard already known to be sick.
TEST(ClusterE2E, FailoverConsultsTheReplicaBreaker) {
  cluster::ClusterConfig config;
  config.downstream_reply_timeout = std::chrono::milliseconds(200);
  // Keep tripped windows open for the whole test: no half-open probes.
  config.health.cooldown = std::chrono::minutes(5);
  auto cluster = make_cluster(3, config);
  ASSERT_NE(cluster, nullptr);

  // Phase 1: kill shard 1 and burn its window with sessions it owns —
  // their failovers land on live replicas and succeed.
  cluster->nodes[1]->kill();
  std::vector<std::string> owned_by_1;
  for (int i = 0; owned_by_1.size() < 8; ++i) {
    const std::string session = "a" + std::to_string(i);
    if (cluster->frontend->ring().owner(session) == 1) {
      owned_by_1.push_back(session);
    }
  }
  Ledger first;
  for (const std::string& session : owned_by_1) {
    ASSERT_TRUE(cluster->client
                    ->submit("testlang", session,
                             soak::open_session_text(session),
                             first.recorder())
                    .ok());
  }
  ASSERT_TRUE(cluster->drive_until(
      [&] { return first.total() == static_cast<int>(owned_by_1.size()); },
      std::chrono::milliseconds(20)));
  {
    std::lock_guard lock(first.mutex);
    EXPECT_EQ(first.refusals[""], static_cast<int>(owned_by_1.size()));
  }
  EXPECT_GE(cluster->frontend->stats().breaker_trips, 1u);

  // Phase 2: kill shard 2. Sessions owned by 2 whose ring replica is
  // the already-tripped shard 1 lose their reply, and the failover hop
  // finds the replica's window open: typed "shard-unavailable", not a
  // forward into a known-sick shard.
  cluster->nodes[2]->kill();
  std::vector<std::string> doomed;
  for (int i = 0; doomed.size() < 4; ++i) {
    const std::string session = "b" + std::to_string(i);
    if (cluster->frontend->ring().owner(session) == 2 &&
        cluster->frontend->ring().replica(session) == 1) {
      doomed.push_back(session);
    }
  }
  Ledger second;
  for (const std::string& session : doomed) {
    ASSERT_TRUE(cluster->client
                    ->submit("testlang", session,
                             soak::open_session_text(session),
                             second.recorder())
                    .ok());
  }
  ASSERT_TRUE(cluster->drive_until(
      [&] { return second.total() == static_cast<int>(doomed.size()); },
      std::chrono::milliseconds(20)));
  {
    std::lock_guard lock(second.mutex);
    EXPECT_EQ(second.refusals["shard-unavailable"],
              static_cast<int>(doomed.size()));
    for (const auto& [id, count] : second.fired) {
      EXPECT_EQ(count, 1) << "request " << id;
    }
  }

  // Phase 3: with shard 2's window now open too, the same placement is
  // refused at ADMISSION — both windows open, nothing is forwarded.
  const std::uint64_t forwarded_before =
      cluster->frontend->stats().forwarded;
  Ledger third;
  std::vector<std::string> more;
  for (int i = 1000; more.size() < 3; ++i) {
    const std::string session = "b" + std::to_string(i);
    if (cluster->frontend->ring().owner(session) == 2 &&
        cluster->frontend->ring().replica(session) == 1) {
      more.push_back(session);
    }
  }
  for (const std::string& session : more) {
    ASSERT_TRUE(cluster->client
                    ->submit("testlang", session,
                             soak::open_session_text(session),
                             third.recorder())
                    .ok());
  }
  ASSERT_TRUE(cluster->drive_until(
      [&] { return third.total() == static_cast<int>(more.size()); }));
  {
    std::lock_guard lock(third.mutex);
    EXPECT_EQ(third.refusals["shard-unavailable"],
              static_cast<int>(more.size()));
  }
  EXPECT_EQ(cluster->frontend->stats().forwarded, forwarded_before);
  cluster->shutdown();
}

// PR 9 bugfix regression: a failover must deduct the wait already spent
// on the lost reply from the client's deadline. A deadline shorter than
// the downstream reply window can never survive a failover — it refuses
// "deadline" — while a roomy one fails over with the remainder.
TEST(ClusterE2E, FailoverDeductsTheDeadlineAlreadySpent) {
  cluster::ClusterConfig config;
  config.downstream_reply_timeout = std::chrono::milliseconds(200);
  auto cluster = make_cluster(4, config);
  ASSERT_NE(cluster, nullptr);

  const std::size_t victim = 0;
  cluster->nodes[victim]->kill();
  std::vector<std::string> sessions;
  for (int i = 0; sessions.size() < 6; ++i) {
    const std::string session = "d" + std::to_string(i);
    if (cluster->frontend->ring().owner(session) == victim) {
      sessions.push_back(session);
    }
  }

  // Tight deadlines: 150ms is already spent by the time the 200ms reply
  // window writes the forward off as lost. The old code re-granted the
  // replica the full 150ms and the client got a reply after its
  // deadline had passed.
  Ledger tight;
  for (std::size_t i = 0; i < 3; ++i) {
    ingress::RemoteSubmitOptions options;
    options.deadline = std::chrono::milliseconds(150);
    ASSERT_TRUE(cluster->client
                    ->submit("testlang", sessions[i],
                             soak::open_session_text(sessions[i]),
                             tight.recorder(), std::move(options))
                    .ok());
  }
  ASSERT_TRUE(cluster->drive_until([&] { return tight.total() == 3; },
                                   std::chrono::milliseconds(20)));
  {
    std::lock_guard lock(tight.mutex);
    EXPECT_EQ(tight.refusals["deadline"], 3);
    for (const auto& [id, count] : tight.fired) {
      EXPECT_EQ(count, 1) << "request " << id;
    }
  }

  // Roomy deadlines: 10s minus the 200ms wait leaves plenty — the
  // failover succeeds on the replica.
  Ledger roomy;
  for (std::size_t i = 3; i < 6; ++i) {
    ingress::RemoteSubmitOptions options;
    options.deadline = std::chrono::seconds(10);
    ASSERT_TRUE(cluster->client
                    ->submit("testlang", sessions[i],
                             soak::open_session_text(sessions[i]),
                             roomy.recorder(), std::move(options))
                    .ok());
  }
  ASSERT_TRUE(cluster->drive_until([&] { return roomy.total() == 3; },
                                   std::chrono::milliseconds(20)));
  {
    std::lock_guard lock(roomy.mutex);
    EXPECT_EQ(roomy.refusals[""], 3);
  }
  EXPECT_GE(cluster->frontend->stats().failovers, 3u);
  cluster->shutdown();
}

// The tentpole, join half: a 5th shard joins a live 4-shard cluster
// whose model has moved past the joiner's launch baseline. The warm-up
// full-sync brings it to the current model BEFORE it enters the ring;
// the flip moves a bounded slice of sessions onto it; traffic there
// resolves exactly once.
TEST(ClusterE2E, JoinWarmsTheNewcomerThenServesMovedSessions) {
  auto cluster = make_cluster(4);
  ASSERT_NE(cluster, nullptr);

  // Move the cluster's model past the launch baseline first.
  auto next =
      model::parse_model(grown_model_text(), core::middleware_metamodel());
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(cluster->frontend->update_model(next.value()).ok());
  ASSERT_TRUE(cluster->drive_until(
      [&] { return cluster->frontend->stats().replication_acks >= 4; }));

  // Stand up the spare (on the stale baseline) and admit it.
  ASSERT_TRUE(launch_spare(*cluster, "shard-4"));
  const std::uint64_t epoch_before = cluster->frontend->epoch();
  auto joined = cluster->frontend->join("shard-4");
  ASSERT_TRUE(joined.ok()) << joined.status().to_string();
  EXPECT_EQ(joined.value(), 4u);
  EXPECT_EQ(cluster->frontend->shard_state(4),
            cluster::ClusterFrontEnd::ShardState::kJoining);
  EXPECT_EQ(cluster->frontend->active_shard_count(), 4u);  // not in ring yet
  // A second join on a serving endpoint is refused.
  EXPECT_FALSE(cluster->frontend->join("shard-0").ok());

  ASSERT_TRUE(cluster->drive_until(
      [&] { return cluster->frontend->stats().joins_completed == 1; }));
  EXPECT_EQ(cluster->frontend->shard_state(4),
            cluster::ClusterFrontEnd::ShardState::kActive);
  EXPECT_EQ(cluster->frontend->active_shard_count(), 5u);
  EXPECT_EQ(cluster->frontend->epoch(), epoch_before + 1);
  // The migration bound: one join moves ~1/5 of the keyspace, not more.
  EXPECT_GT(cluster->frontend->last_rebalance_fraction(), 0.0);
  EXPECT_LE(cluster->frontend->last_rebalance_fraction(), 1.5 / 5.0);
  // The warm-up shipped the CURRENT model, not the launch baseline.
  EXPECT_GE(cluster->nodes[4]->replication_stats().full_syncs_applied, 1u);
  EXPECT_NE(cluster->nodes[4]->platform().controller().repository().find(
                "path-cheap"),
            nullptr);

  // Traffic: placement follows the grown ring, the newcomer serves its
  // arcs, and every callback fires exactly once.
  constexpr int kSessions = 60;
  Ledger ledger;
  std::vector<std::uint64_t> expected(5, 0);
  for (int i = 0; i < kSessions; ++i) {
    const std::string session = "j" + std::to_string(i);
    expected[cluster->frontend->ring().owner(session)] += 2;
    ASSERT_TRUE(cluster->client
                    ->submit("testlang", session,
                             soak::open_session_text(session),
                             ledger.recorder())
                    .ok());
  }
  ASSERT_TRUE(
      cluster->drive_until([&] { return ledger.total() == kSessions; }));
  {
    std::lock_guard lock(ledger.mutex);
    EXPECT_EQ(ledger.refusals[""], kSessions);
    for (const auto& [id, count] : ledger.fired) {
      EXPECT_EQ(count, 1) << "request " << id;
    }
  }
  EXPECT_GT(expected[4], 0u) << "no sampled session moved to the newcomer";
  for (int shard = 0; shard < 5; ++shard) {
    EXPECT_EQ(cluster->adapters[shard]->executed(), expected[shard])
        << "shard " << shard;
  }
  cluster->shutdown();
}

// The tentpole, leave half: retiring a shard flips its arcs to the
// survivors immediately, lets every in-flight forward settle on the OLD
// route, and only then releases the shard. No callback is lost or
// duplicated across the drain.
TEST(ClusterE2E, LeaveDrainsInFlightForwardsThenRetires) {
  auto cluster = make_cluster(3);
  ASSERT_NE(cluster, nullptr);
  const std::size_t victim = 1;

  std::vector<std::string> sessions;
  for (int i = 0; sessions.size() < 8; ++i) {
    const std::string session = "l" + std::to_string(i);
    if (cluster->frontend->ring().owner(session) == victim) {
      sessions.push_back(session);
    }
  }
  Ledger ledger;
  for (const std::string& session : sessions) {
    ASSERT_TRUE(cluster->client
                    ->submit("testlang", session,
                             soak::open_session_text(session),
                             ledger.recorder())
                    .ok());
  }
  // Deliver the submits and the forwards, but DON'T pump shard replies:
  // the victim now holds 8 in-flight forwards.
  cluster->network->run_until_idle();

  const std::uint64_t epoch_before = cluster->frontend->epoch();
  ASSERT_TRUE(cluster->frontend->leave(victim).ok());
  EXPECT_EQ(cluster->frontend->shard_state(victim),
            cluster::ClusterFrontEnd::ShardState::kDraining);
  EXPECT_EQ(cluster->frontend->active_shard_count(), 2u);
  EXPECT_EQ(cluster->frontend->epoch(), epoch_before + 1);
  EXPECT_GT(cluster->frontend->last_rebalance_fraction(), 0.0);
  // Leaving twice is refused; so is retiring a shard mid-drain.
  EXPECT_FALSE(cluster->frontend->leave(victim).ok());

  // The drain: pending forwards settle on the old route, then the shard
  // retires.
  ASSERT_TRUE(cluster->drive_until([&] {
    return ledger.total() == static_cast<int>(sessions.size()) &&
           cluster->frontend->stats().leaves_completed == 1;
  }));
  EXPECT_EQ(cluster->frontend->shard_state(victim),
            cluster::ClusterFrontEnd::ShardState::kRetired);
  {
    std::lock_guard lock(ledger.mutex);
    EXPECT_EQ(ledger.refusals[""], static_cast<int>(sessions.size()));
    EXPECT_EQ(ledger.refusals["reply-lost"], 0);
    for (const auto& [id, count] : ledger.fired) {
      EXPECT_EQ(count, 1) << "request " << id;
    }
  }
  // The drained work executed on the LEAVING shard (old route settled).
  EXPECT_EQ(cluster->adapters[victim]->executed(), 2 * sessions.size());

  // The same sessions now route to survivors; the leaver stays cold.
  Ledger second;
  for (const std::string& session : sessions) {
    EXPECT_NE(cluster->frontend->ring().owner(session), victim) << session;
    ASSERT_TRUE(cluster->client
                    ->submit("testlang", session,
                             soak::open_session_text(session),
                             second.recorder())
                    .ok());
  }
  ASSERT_TRUE(cluster->drive_until(
      [&] { return second.total() == static_cast<int>(sessions.size()); }));
  {
    std::lock_guard lock(second.mutex);
    EXPECT_EQ(second.refusals[""], static_cast<int>(sessions.size()));
  }
  EXPECT_EQ(cluster->adapters[victim]->executed(), 2 * sessions.size());

  // The ring floor: the last active shard may never leave.
  ASSERT_TRUE(cluster->frontend->leave(0).ok());
  ASSERT_TRUE(cluster->drive_until(
      [&] { return cluster->frontend->stats().leaves_completed == 2; }));
  EXPECT_FALSE(cluster->frontend->leave(2).ok());
  cluster->shutdown();
}

// Drain invariants under sustained load: submissions keep flowing while
// a shard joins AND another leaves; every callback fires exactly once,
// nothing is lost, and total executions match total submissions.
TEST(ClusterE2E, ElasticResizeUnderLoadKeepsCallbacksExactlyOnce) {
  auto cluster = make_cluster(4);
  ASSERT_NE(cluster, nullptr);
  ASSERT_TRUE(launch_spare(*cluster, "shard-4"));

  Ledger ledger;
  int submitted = 0;
  auto blast = [&](int count) {
    for (int i = 0; i < count; ++i, ++submitted) {
      const std::string session = "load-" + std::to_string(submitted);
      ASSERT_TRUE(cluster->client
                      ->submit("testlang", session,
                               soak::open_session_text(session),
                               ledger.recorder())
                      .ok());
    }
  };

  blast(20);
  ASSERT_TRUE(cluster->frontend->join("shard-4").ok());
  blast(20);  // races the warm-up; routed on the pre-join ring
  ASSERT_TRUE(cluster->drive_until(
      [&] { return cluster->frontend->stats().joins_completed == 1; }));
  blast(20);  // routed on the grown ring
  ASSERT_TRUE(cluster->frontend->leave(0).ok());
  blast(20);  // routed on the shrunk ring while shard 0 drains
  ASSERT_TRUE(cluster->drive_until([&] {
    return ledger.total() == submitted &&
           cluster->frontend->stats().leaves_completed == 1;
  }));

  {
    std::lock_guard lock(ledger.mutex);
    EXPECT_EQ(ledger.refusals[""], submitted);
    EXPECT_EQ(ledger.refusals["reply-lost"], 0);
    for (const auto& [id, count] : ledger.fired) {
      EXPECT_EQ(count, 1) << "request " << id;
    }
  }
  std::uint64_t executed = 0;
  for (soak::CountingAdapter* adapter : cluster->adapters) {
    executed += adapter->executed();
  }
  EXPECT_EQ(executed, static_cast<std::uint64_t>(2 * submitted));
  EXPECT_EQ(cluster->frontend->stats().failovers, 0u);
  cluster->shutdown();
}

// The PR 10 tentpole: with a model-driven checkpoint cadence
// (checkpoint_interval = 1), every completed request captures the
// session's runtime state from its owner and stages it on the ring
// replica. When the owner dies, the failover ships the cached
// checkpoint resume=true and the replica IMPORTS it before the retried
// request forwards — so the retry is a pure continuation (one step),
// not the cold whole-lifecycle replay (three steps, see
// test_snapshot.cpp), and the client still hears exactly once.
TEST(ClusterE2E, FailoverResumesSessionFromReplicatedCheckpoint) {
  cluster::ClusterConfig config;
  config.downstream_reply_timeout = std::chrono::milliseconds(200);
  auto cluster =
      make_cluster(2, config, {}, "checkpoint_interval = 1");
  ASSERT_NE(cluster, nullptr);

  // A session shard 0 owns; in a two-member ring its replica is 1.
  std::string session;
  for (int i = 0; session.empty(); ++i) {
    const std::string candidate = "r" + std::to_string(i);
    if (cluster->frontend->ring().owner(candidate) == 0) session = candidate;
  }
  const std::size_t owner = 0;
  const std::size_t replica = 1;
  ASSERT_EQ(cluster->frontend->ring().replica(session), replica);

  // Open the session; the completion triggers capture (owner exports),
  // then the stage ship to the replica, version-stamped 1.
  Ledger ledger;
  ASSERT_TRUE(cluster->client
                  ->submit("testlang", session,
                           soak::open_session_text(session),
                           ledger.recorder())
                  .ok());
  ASSERT_TRUE(cluster->drive_until([&] {
    return ledger.total() == 1 &&
           cluster->frontend->stats().checkpoint_acks >= 1;
  }));
  EXPECT_EQ(cluster->frontend->checkpoint_version(session), 1);
  ASSERT_TRUE(cluster->nodes[replica]
                  ->staged_checkpoint_version(session)
                  .has_value());
  EXPECT_EQ(*cluster->nodes[replica]->staged_checkpoint_version(session), 1);
  EXPECT_GE(cluster->nodes[owner]->replication_stats().checkpoints_exported,
            1u);
  EXPECT_EQ(cluster->adapters[owner]->executed(), 2u);  // create + open
  EXPECT_EQ(cluster->adapters[replica]->executed(), 0u);
  // Staged is not applied: the replica's own runtime stays untouched
  // until a failover actually needs it.
  EXPECT_EQ(cluster->nodes[replica]->replication_stats()
                .session_states_imported,
            0u);

  // Kill the owner and close the session. The forward times out, the
  // failover ships the cached checkpoint resume=true, the replica
  // imports it, and ONLY THEN does the retry forward: one svc.close,
  // not the cold three-step replay.
  cluster->nodes[owner]->kill();
  Ledger close_ledger;
  ASSERT_TRUE(cluster->client
                  ->submit("testlang", session,
                           soak::close_session_text(session),
                           close_ledger.recorder())
                  .ok());
  ASSERT_TRUE(cluster->drive_until(
      [&] { return close_ledger.total() == 1; },
      std::chrono::milliseconds(20)));
  {
    std::lock_guard lock(close_ledger.mutex);
    EXPECT_EQ(close_ledger.refusals[""], 1);
    for (const auto& [id, count] : close_ledger.fired) {
      EXPECT_EQ(count, 1) << "request " << id;
    }
  }
  EXPECT_EQ(cluster->adapters[replica]->executed(), 1u)
      << "the resumed close must re-execute zero prior steps";

  const cluster::ClusterFrontEnd::Stats stats = cluster->frontend->stats();
  EXPECT_GE(stats.failovers, 1u);
  EXPECT_GE(stats.checkpoints_taken, 1u);
  EXPECT_GE(stats.resumes_shipped, 1u);
  EXPECT_GE(stats.resumes_completed, 1u);
  const cluster::ShardNode::Stats replica_stats =
      cluster->nodes[replica]->replication_stats();
  EXPECT_GE(replica_stats.session_states_staged, 1u);
  EXPECT_EQ(replica_stats.session_states_imported, 1u);
  EXPECT_EQ(replica_stats.session_states_rejected_stale, 0u);
  cluster->shutdown();
}

// Version gating on the session-state route: a checkpoint older than
// what the replica already staged is refused "stale-checkpoint" and
// never overwrites the newer state; re-shipping the SAME version is an
// idempotent retry and is accepted.
TEST(ClusterE2E, StaleCheckpointNeverAppliesOverNewer) {
  auto cluster = make_cluster(1);
  ASSERT_NE(cluster, nullptr);

  // Talk to the shard's replication route directly, as the front-end
  // would. The staged payload is a REAL export so the test mirrors the
  // production envelope byte-for-byte.
  ingress::IngressClientOptions raw_options;
  raw_options.endpoint = "raw-shipper";  // "client" is taken
  auto raw = ingress::IngressClient::attach(
      *cluster->network, cluster->nodes[0]->endpoint_name(),
      std::move(raw_options));
  ASSERT_TRUE(raw.ok());
  Result<model::Value> state =
      cluster->nodes[0]->platform().export_session_state("gate");
  ASSERT_TRUE(state.ok()) << state.status().to_string();

  auto pair = [](std::string key, model::Value value) {
    model::ValueList entry;
    entry.push_back(model::Value(std::move(key)));
    entry.push_back(std::move(value));
    return model::Value(std::move(entry));
  };
  auto ship = [&](std::int64_t version) {
    model::ValueList envelope;
    envelope.push_back(pair("session", model::Value(std::string("gate"))));
    envelope.push_back(pair("version", model::Value(version)));
    envelope.push_back(pair("resume", model::Value(false)));
    envelope.push_back(pair("state", state.value()));
    ingress::wire::Request request;
    request.body = model::Value(std::move(envelope));
    auto outcome = std::make_shared<std::optional<ingress::RemoteOutcome>>();
    EXPECT_TRUE(raw.value()
                    ->call("replicate/session-state", std::move(request),
                           [outcome](const ingress::RemoteOutcome& got) {
                             *outcome = got;
                           })
                    .ok());
    EXPECT_TRUE(
        cluster->drive_until([&] { return outcome->has_value(); }));
    return **outcome;
  };

  // Version 2 stages.
  ingress::RemoteOutcome first = ship(2);
  EXPECT_TRUE(first.status.ok()) << first.status.to_string();
  ASSERT_TRUE(
      cluster->nodes[0]->staged_checkpoint_version("gate").has_value());
  EXPECT_EQ(*cluster->nodes[0]->staged_checkpoint_version("gate"), 2);

  // Version 1 arrives late (reordered ship): refused, nothing replaced.
  ingress::RemoteOutcome stale = ship(1);
  EXPECT_FALSE(stale.status.ok());
  EXPECT_EQ(stale.refusal, "stale-checkpoint");
  EXPECT_EQ(*cluster->nodes[0]->staged_checkpoint_version("gate"), 2);

  // Re-shipping version 2 is an idempotent retry, not a stale ship.
  ingress::RemoteOutcome again = ship(2);
  EXPECT_TRUE(again.status.ok()) << again.status.to_string();
  EXPECT_EQ(*cluster->nodes[0]->staged_checkpoint_version("gate"), 2);

  const cluster::ShardNode::Stats stats =
      cluster->nodes[0]->replication_stats();
  EXPECT_EQ(stats.session_states_staged, 2u);
  EXPECT_EQ(stats.session_states_rejected_stale, 1u);
  EXPECT_EQ(stats.session_states_imported, 0u);  // stage-only ships
  raw.value().reset();
  cluster->shutdown();
}

// PR 10 satellite regression: the query fan-out targets only ACTIVE
// shards. A joiner still warming up must not receive (or corrupt) a
// fan-out — its section appears in merged replies only after the join
// completes.
TEST(ClusterE2E, QueryFanOutSkipsAJoiningShard) {
  auto cluster = make_cluster(2);
  ASSERT_NE(cluster, nullptr);
  ASSERT_TRUE(launch_spare(*cluster, "shard-2"));
  ASSERT_TRUE(cluster->frontend->join("shard-2").ok());
  EXPECT_EQ(cluster->frontend->shard_state(2),
            cluster::ClusterFrontEnd::ShardState::kJoining);

  // Query while the warm-up full-sync is still in flight: the frontend
  // snapshots its targets before the joiner's ack can be pumped, so the
  // merge covers exactly the two founding shards.
  auto outcome = std::make_shared<std::optional<ingress::RemoteOutcome>>();
  ASSERT_TRUE(cluster->client
                  ->query("metrics",
                          [outcome](const ingress::RemoteOutcome& got) {
                            *outcome = got;
                          })
                  .ok());
  ASSERT_TRUE(cluster->drive_until([&] { return outcome->has_value(); }));
  ASSERT_TRUE((*outcome)->status.ok()) << (*outcome)->status.to_string();
  EXPECT_NE((*outcome)->payload.find("=== shard 0 ==="), std::string::npos);
  EXPECT_NE((*outcome)->payload.find("=== shard 1 ==="), std::string::npos);
  EXPECT_EQ((*outcome)->payload.find("=== shard 2 ==="), std::string::npos)
      << "a joining shard leaked into the fan-out";

  // Once the join completes the newcomer serves queries like anyone.
  ASSERT_TRUE(cluster->drive_until(
      [&] { return cluster->frontend->stats().joins_completed == 1; }));
  auto second = std::make_shared<std::optional<ingress::RemoteOutcome>>();
  ASSERT_TRUE(cluster->client
                  ->query("metrics",
                          [second](const ingress::RemoteOutcome& got) {
                            *second = got;
                          })
                  .ok());
  ASSERT_TRUE(cluster->drive_until([&] { return second->has_value(); }));
  EXPECT_NE((*second)->payload.find("=== shard 2 ==="), std::string::npos);
  cluster->shutdown();
}

}  // namespace
}  // namespace mdsm
