// Fault-tolerance tests for the Broker layer: retry backoff math, the
// circuit-breaker state machine, the ResourceManager's policy-driven
// invoke loop (deadline budgets, attempt timeouts, fallbacks), the
// autonomic reaction to breaker events, and chaos soaks proving that
// transient resource faults below the retry budget never surface to the
// submitting user while the cross-layer ledgers still reconcile exactly.
#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "broker/broker_layer.hpp"
#include "broker/invocation_policy.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "soak_fixtures.hpp"

namespace mdsm {
namespace {

using broker::BreakerConfig;
using broker::BrokerLayer;
using broker::ChangePlan;
using broker::CircuitBreaker;
using broker::InvocationPolicy;
using broker::ResourceAdapter;
using broker::RetryBackoff;
using model::Value;

// ------------------------------------------------------------- mechanisms

TEST(RetryBackoff, StaysWithinBoundsAndIsDeterministic) {
  RetryBackoff backoff(Duration(100), Duration(1'000), 7);
  RetryBackoff twin(Duration(100), Duration(1'000), 7);
  Duration previous(100);
  for (int i = 0; i < 50; ++i) {
    Duration delay = backoff.next();
    EXPECT_GE(delay, Duration(100));
    EXPECT_LE(delay, Duration(1'000));
    // Decorrelated jitter: each draw is bounded by 3x the previous sleep.
    EXPECT_LE(delay.count(), std::max<std::int64_t>(100, 3 * previous.count()));
    previous = delay;
    EXPECT_EQ(delay, twin.next());  // same seed, same sequence
  }
}

TEST(RetryBackoff, ZeroBaseDisablesSleeping) {
  RetryBackoff backoff(Duration(0), Duration(1'000), 7);
  EXPECT_EQ(backoff.next(), Duration(0));
}

TEST(Retryable, OnlyTransientCodesRetry) {
  EXPECT_TRUE(broker::retryable(ErrorCode::kUnavailable));
  EXPECT_TRUE(broker::retryable(ErrorCode::kTimeout));
  EXPECT_TRUE(broker::retryable(ErrorCode::kExecutionError));
  EXPECT_FALSE(broker::retryable(ErrorCode::kNotFound));
  EXPECT_FALSE(broker::retryable(ErrorCode::kInvalidArgument));
  EXPECT_FALSE(broker::retryable(ErrorCode::kFailedPrecondition));
}

TEST(CircuitBreakerTest, TripsOnFailureRateAndRecoversViaProbe) {
  BreakerConfig config;
  config.window = 4;
  config.min_samples = 4;
  config.failure_threshold = 0.5;
  config.cooldown = Duration(1'000);
  CircuitBreaker breaker(config);
  TimePoint now{};

  // Below min_samples nothing trips, even at 100% failures.
  for (int i = 0; i < 3; ++i) {
    auto admitted = breaker.admit(now);
    EXPECT_EQ(admitted.admission, CircuitBreaker::Admission::kAllow);
    EXPECT_EQ(breaker.on_result(admitted.admission, false, now),
              CircuitBreaker::Transition::kNone);
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  // Fourth failure reaches min_samples at 100% >= 50%: trip.
  auto admitted = breaker.admit(now);
  EXPECT_EQ(breaker.on_result(admitted.admission, false, now),
            CircuitBreaker::Transition::kOpened);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  // Open rejects until the cooldown has elapsed.
  EXPECT_EQ(breaker.admit(now + Duration(500)).admission,
            CircuitBreaker::Admission::kReject);
  now += Duration(1'000);
  auto probe = breaker.admit(now);
  EXPECT_EQ(probe.admission, CircuitBreaker::Admission::kProbe);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  // Only one probe in flight; a second caller is rejected meanwhile.
  EXPECT_EQ(breaker.admit(now).admission, CircuitBreaker::Admission::kReject);
  // Probe success closes.
  EXPECT_EQ(breaker.on_result(probe.admission, true, now),
            CircuitBreaker::Transition::kClosed);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, ProbeFailureReopensWithFreshWindow) {
  BreakerConfig config;
  config.window = 2;
  config.min_samples = 2;
  config.failure_threshold = 0.5;
  config.cooldown = Duration(100);
  CircuitBreaker breaker(config);
  TimePoint now{};
  for (int i = 0; i < 2; ++i) {
    auto admitted = breaker.admit(now);
    (void)breaker.on_result(admitted.admission, false, now);
  }
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  now += Duration(100);
  auto probe = breaker.admit(now);
  ASSERT_EQ(probe.admission, CircuitBreaker::Admission::kProbe);
  EXPECT_EQ(breaker.on_result(probe.admission, false, now),
            CircuitBreaker::Transition::kOpened);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  // After recovery the pre-trip failures are gone from the window: one
  // fresh failure is below min_samples and must NOT re-trip (with a stale
  // window it would, since two failures would already be on record).
  now += Duration(100);
  probe = breaker.admit(now);
  (void)breaker.on_result(probe.admission, true, now);
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  auto admitted = breaker.admit(now);
  EXPECT_EQ(breaker.on_result(admitted.admission, false, now),
            CircuitBreaker::Transition::kNone);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  // The second fresh failure reaches min_samples at 100%: trip again.
  admitted = breaker.admit(now);
  EXPECT_EQ(breaker.on_result(admitted.admission, false, now),
            CircuitBreaker::Transition::kOpened);
}

// -------------------------------------------------- policy-driven invoke

/// Plays back a queue of scripted outcomes, then succeeds forever.
class ScriptedAdapter final : public ResourceAdapter {
 public:
  using Outcome = std::function<Result<Value>()>;

  explicit ScriptedAdapter(std::string name)
      : ResourceAdapter(std::move(name)) {}

  std::deque<Outcome> script;
  int executed = 0;

  Result<Value> execute(const std::string& command, const broker::Args&)
      override {
    ++executed;
    if (script.empty()) return Value("ok:" + command);
    Outcome next = std::move(script.front());
    script.pop_front();
    return next();
  }

  void fail_times(int n, Status status) {
    for (int i = 0; i < n; ++i) {
      script.push_back([status] { return Result<Value>(status); });
    }
  }
};

struct ResilienceFixture : ::testing::Test {
  runtime::EventBus bus;
  policy::ContextStore store;
  BrokerLayer layer{"resilient", bus, store};
  obs::MetricsRegistry metrics;
  SimClock clock;
  ScriptedAdapter* primary = nullptr;

  void SetUp() override {
    set_log_level(LogLevel::kOff);
    auto adapter = std::make_unique<ScriptedAdapter>("svc");
    primary = adapter.get();
    ASSERT_TRUE(layer.resources().add_adapter(std::move(adapter)).ok());
    layer.set_metrics(&metrics);
    // Backoff sleeps advance the simulated clock instead of wall-blocking.
    layer.resources().set_sleep_hook(
        [this](Duration d) { clock.advance(d); });
  }
  void TearDown() override { set_log_level(LogLevel::kWarn); }

  obs::RequestContext make_context(
      std::optional<Duration> deadline = std::nullopt) {
    return obs::RequestContext(clock, &metrics, deadline);
  }
  [[nodiscard]] std::uint64_t counter(std::string_view name) const {
    return metrics.snapshot().counter_value(name);
  }
};

TEST_F(ResilienceFixture, RetriesTransientFaultsUntilSuccess) {
  InvocationPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff = Duration(100);
  ASSERT_TRUE(layer.resources().set_policy("svc", policy).ok());
  primary->fail_times(2, Unavailable("flaky"));

  obs::RequestContext context = make_context();
  auto result = layer.resources().invoke("svc", "start", {}, context);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_EQ(result->as_string(), "ok:start");
  EXPECT_EQ(primary->executed, 3);
  EXPECT_EQ(layer.trace().size(), 3u);  // every physical attempt traced
  EXPECT_EQ(counter("broker.commands"), 3u);
  EXPECT_EQ(counter("broker.retries"), 2u);
  EXPECT_EQ(counter("broker.retry_exhausted"), 0u);
  // One "broker.attempt" span per physical attempt, under the policy path.
  EXPECT_EQ(context.trace().count("broker.attempt"), 3u);
  // Two backoff sleeps actually elapsed (on the simulated clock).
  EXPECT_GE(clock.now().time_since_epoch(), Duration(200));
}

TEST_F(ResilienceFixture, PolicyFreeResourceKeepsFireOnceSemantics) {
  primary->fail_times(1, Unavailable("flaky"));
  obs::RequestContext context = make_context();
  auto result = layer.resources().invoke("svc", "start", {}, context);
  EXPECT_EQ(result.status().code(), ErrorCode::kUnavailable);
  EXPECT_EQ(primary->executed, 1);
  EXPECT_EQ(counter("broker.retries"), 0u);
  EXPECT_EQ(context.trace().count("broker.attempt"), 0u);  // fast path
}

TEST_F(ResilienceFixture, NonRetryableFaultFailsFast) {
  InvocationPolicy policy;
  policy.max_attempts = 3;
  ASSERT_TRUE(layer.resources().set_policy("svc", policy).ok());
  primary->script.push_back(
      [] { return Result<Value>(InvalidArgument("bad command")); });

  obs::RequestContext context = make_context();
  auto result = layer.resources().invoke("svc", "start", {}, context);
  EXPECT_EQ(result.status().code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(primary->executed, 1);  // authoring bugs are not retried
  EXPECT_EQ(counter("broker.retries"), 0u);
  EXPECT_EQ(counter("broker.retry_exhausted"), 0u);
}

TEST_F(ResilienceFixture, RetryLoopNeverSleepsPastTheDeadline) {
  InvocationPolicy policy;
  policy.max_attempts = 10;
  policy.initial_backoff = Duration(200);
  ASSERT_TRUE(layer.resources().set_policy("svc", policy).ok());
  primary->fail_times(10, Unavailable("down"));

  const Duration budget(500);
  obs::RequestContext context = make_context(budget);
  const TimePoint start = clock.now();
  auto result = layer.resources().invoke("svc", "start", {}, context);
  EXPECT_EQ(result.status().code(), ErrorCode::kTimeout);
  EXPECT_EQ(counter("broker.retry_exhausted"), 1u);
  // The loop gave up with budget to spare rather than oversleeping: the
  // simulated clock (advanced only by backoff sleeps) stayed inside it.
  EXPECT_LT(clock.now() - start, budget);
  EXPECT_LT(primary->executed, 10);
}

TEST_F(ResilienceFixture, ExhaustedBudgetAtEntryIssuesNoCommand) {
  InvocationPolicy policy;
  policy.max_attempts = 3;
  ASSERT_TRUE(layer.resources().set_policy("svc", policy).ok());
  obs::RequestContext context = make_context(Duration(100));
  clock.advance(Duration(100));  // spend the whole budget first
  auto result = layer.resources().invoke("svc", "start", {}, context);
  EXPECT_EQ(result.status().code(), ErrorCode::kTimeout);
  EXPECT_EQ(primary->executed, 0);
  EXPECT_EQ(layer.trace().size(), 0u);
}

TEST_F(ResilienceFixture, AttemptTimeoutReclassifiesSlowFailuresAsRetryable) {
  InvocationPolicy policy;
  policy.max_attempts = 2;
  policy.attempt_timeout = Duration(100);
  policy.initial_backoff = Duration(0);
  ASSERT_TRUE(layer.resources().set_policy("svc", policy).ok());
  // A stalled attempt that then fails with a non-retryable code: the
  // stall past the attempt budget makes it a Timeout fault, so it IS
  // retried — and the retry succeeds.
  primary->script.push_back([this]() -> Result<Value> {
    clock.advance(Duration(150));
    return InvalidArgument("garbled response after stall");
  });

  obs::RequestContext context = make_context();
  auto result = layer.resources().invoke("svc", "start", {}, context);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_EQ(primary->executed, 2);
  EXPECT_EQ(counter("broker.retries"), 1u);
}

TEST_F(ResilienceFixture, FallbackTagsDegradedResultAndPublishesEvent) {
  auto backup = std::make_unique<ScriptedAdapter>("backup");
  ASSERT_TRUE(layer.resources().add_adapter(std::move(backup)).ok());
  InvocationPolicy policy;
  policy.max_attempts = 2;
  policy.initial_backoff = Duration(0);
  policy.fallback_resource = "backup";
  ASSERT_TRUE(layer.resources().set_policy("svc", policy).ok());
  primary->fail_times(2, Unavailable("down"));

  std::vector<std::string> degraded_events;
  bus.subscribe("resource.degraded", [&](const runtime::Event& e) {
    degraded_events.push_back(e.payload.as_list()[0].as_string());
  });

  obs::RequestContext context = make_context();
  auto result = layer.resources().invoke("svc", "start", {}, context);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  ASSERT_TRUE(result->is_list());
  ASSERT_EQ(result->as_list().size(), 2u);
  EXPECT_EQ(result->as_list()[0].as_string(), "degraded");
  EXPECT_EQ(result->as_list()[1].as_string(), "ok:start");
  EXPECT_EQ(counter("broker.fallbacks"), 1u);
  EXPECT_EQ(counter("broker.retry_exhausted"), 1u);
  ASSERT_EQ(degraded_events.size(), 1u);
  EXPECT_EQ(degraded_events[0], "svc");
  EXPECT_EQ(context.trace().count("broker.fallback"), 1u);
}

TEST_F(ResilienceFixture, UntaggedFallbackReturnsPlainValue) {
  auto backup = std::make_unique<ScriptedAdapter>("backup");
  ASSERT_TRUE(layer.resources().add_adapter(std::move(backup)).ok());
  InvocationPolicy policy;
  policy.max_attempts = 1;
  policy.fallback_resource = "backup";
  policy.tag_degraded = false;
  ASSERT_TRUE(layer.resources().set_policy("svc", policy).ok());
  primary->fail_times(1, Unavailable("down"));

  obs::RequestContext context = make_context();
  auto result = layer.resources().invoke("svc", "start", {}, context);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->as_string(), "ok:start");
}

TEST_F(ResilienceFixture, FallbackFailureSurfacesThePrimaryFault) {
  auto backup = std::make_unique<ScriptedAdapter>("backup");
  backup->fail_times(1, ExecutionError("backup also broken"));
  ASSERT_TRUE(layer.resources().add_adapter(std::move(backup)).ok());
  InvocationPolicy policy;
  policy.max_attempts = 1;
  policy.fallback_resource = "backup";
  ASSERT_TRUE(layer.resources().set_policy("svc", policy).ok());
  primary->fail_times(1, Unavailable("primary down"));

  obs::RequestContext context = make_context();
  auto result = layer.resources().invoke("svc", "start", {}, context);
  EXPECT_EQ(result.status().code(), ErrorCode::kUnavailable);
  EXPECT_NE(result.status().to_string().find("primary down"),
            std::string::npos);
  EXPECT_EQ(counter("broker.fallbacks"), 1u);
}

TEST_F(ResilienceFixture, BreakerFastFailsWhileOpenThenProbesClosed) {
  InvocationPolicy policy;
  policy.max_attempts = 1;
  policy.breaker.window = 4;
  policy.breaker.min_samples = 4;
  policy.breaker.failure_threshold = 0.5;
  policy.breaker.cooldown = Duration(1'000);
  ASSERT_TRUE(layer.resources().set_policy("svc", policy).ok());
  primary->fail_times(4, Unavailable("down"));

  std::vector<std::string> breaker_events;
  bus.subscribe("resource.breaker.*", [&](const runtime::Event& e) {
    breaker_events.push_back(e.topic);
  });

  obs::RequestContext context = make_context();
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(layer.resources().invoke("svc", "start", {}, context).ok());
  }
  EXPECT_EQ(layer.resources().breaker_state("svc"),
            CircuitBreaker::State::kOpen);
  ASSERT_EQ(breaker_events.size(), 1u);
  EXPECT_EQ(breaker_events[0], "resource.breaker.open");

  // While open: fast-fail, the resource is never touched.
  auto rejected = layer.resources().invoke("svc", "start", {}, context);
  EXPECT_EQ(rejected.status().code(), ErrorCode::kUnavailable);
  EXPECT_NE(rejected.status().to_string().find("circuit open"),
            std::string::npos);
  EXPECT_EQ(primary->executed, 4);
  EXPECT_EQ(counter("broker.breaker_open"), 1u);

  // After the cooldown the next invoke runs as the probe and succeeds
  // (the script is exhausted), closing the breaker.
  clock.advance(Duration(1'000));
  auto probe = layer.resources().invoke("svc", "start", {}, context);
  ASSERT_TRUE(probe.ok());
  EXPECT_EQ(layer.resources().breaker_state("svc"),
            CircuitBreaker::State::kClosed);
  ASSERT_EQ(breaker_events.size(), 2u);
  EXPECT_EQ(breaker_events[1], "resource.breaker.close");
  EXPECT_EQ(counter("broker.breaker_transitions"), 2u);
}

TEST_F(ResilienceFixture, AutonomicSymptomReactsToBreakerOpen) {
  ASSERT_TRUE(layer.autonomic()
                  .add_symptom({.name = "svc-circuit-open",
                                .trigger_topic = "resource.breaker.open",
                                .condition = {},
                                .change_request = "enter-safe-mode"})
                  .ok());
  ChangePlan plan;
  plan.name = "degrade-gracefully";
  plan.handles_request = "enter-safe-mode";
  plan.steps = {broker::set_context_step("mode", Value("safe"))};
  ASSERT_TRUE(layer.autonomic().add_plan(std::move(plan)).ok());

  InvocationPolicy policy;
  policy.max_attempts = 1;
  policy.breaker.window = 2;
  policy.breaker.min_samples = 2;
  policy.breaker.failure_threshold = 0.5;
  ASSERT_TRUE(layer.resources().set_policy("svc", policy).ok());
  primary->fail_times(2, Unavailable("down"));

  obs::RequestContext context = make_context();
  (void)layer.resources().invoke("svc", "start", {}, context);
  (void)layer.resources().invoke("svc", "start", {}, context);
  EXPECT_EQ(layer.resources().breaker_state("svc"),
            CircuitBreaker::State::kOpen);
  EXPECT_EQ(layer.autonomic().adaptations(), 1u);
  EXPECT_EQ(store.get("mode"), Value("safe"));
}

TEST_F(ResilienceFixture, LegacyContextFreeInvokeRunsThePolicy) {
  InvocationPolicy policy;
  policy.max_attempts = 2;
  policy.initial_backoff = Duration(0);
  ASSERT_TRUE(layer.resources().set_policy("svc", policy).ok());
  primary->fail_times(1, Unavailable("flaky"));
  auto result = layer.resources().invoke("svc", "start", {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(counter("broker.retries"), 1u);
}

TEST_F(ResilienceFixture, SetPolicyValidatesItsInputs) {
  InvocationPolicy policy;
  policy.max_attempts = 0;
  EXPECT_EQ(layer.resources().set_policy("svc", policy).code(),
            ErrorCode::kInvalidArgument);
  policy.max_attempts = 1;
  policy.breaker.window = 4;
  policy.breaker.failure_threshold = 1.5;
  EXPECT_EQ(layer.resources().set_policy("svc", policy).code(),
            ErrorCode::kInvalidArgument);
  policy.breaker.failure_threshold = 0.5;
  policy.fallback_resource = "svc";
  EXPECT_EQ(layer.resources().set_policy("svc", policy).code(),
            ErrorCode::kInvalidArgument);
  // No policy installed by the failed attempts: default is fire-once.
  EXPECT_EQ(layer.resources().policy("svc").max_attempts, 1);
  EXPECT_EQ(layer.resources().breaker_state("svc"),
            CircuitBreaker::State::kClosed);
}

// ------------------------------------------------------------ chaos soaks

struct ResilienceSoak : ::testing::Test {
  void SetUp() override { set_log_level(LogLevel::kOff); }
  void TearDown() override { set_log_level(LogLevel::kWarn); }
};

/// Single-threaded and seeded, so the chaos fault sequence is exactly
/// reproducible: with fail_rate = 0.1 and a 3-attempt budget, no command
/// ever exhausts its retries, so the user sees zero failures while the
/// ledger still proves the faults happened and were absorbed.
TEST_F(ResilienceSoak, SeededChaosBelowRetryBudgetIsInvisibleToUsers) {
  broker::ChaosConfig chaos_config;
  chaos_config.fail_rate = 0.1;
  chaos_config.seed = 42;
  InvocationPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff = Duration(0);  // no sleeping: pure virtual soak
  auto soaked = soak::make_soak_platform(chaos_config, policy);
  ASSERT_TRUE(soaked.ok()) << soaked.status.to_string();
  core::Platform& platform = *soaked.platform;

  std::uint64_t error_events = 0;
  auto error_sub = platform.bus().subscribe(
      "controller.error",
      [&error_events](const runtime::Event&) { ++error_events; });

  constexpr int kSessions = 150;
  const Duration kDeadline(1'000'000);  // 1 s: ample, but enforced
  for (int i = 0; i < kSessions; ++i) {
    obs::RequestContext context = platform.make_context(kDeadline);
    auto script = platform.submit_model_text(
        soak::open_session_text("s" + std::to_string(i)), context);
    ASSERT_TRUE(script.ok()) << "submission " << i << ": "
                             << script.status().to_string();
    EXPECT_LT(context.elapsed(), kDeadline);
    EXPECT_TRUE(context.trace().all_closed());
  }
  platform.bus().unsubscribe(error_sub);

  const broker::ChaosStats chaos = soaked.chaos->stats();
  const obs::MetricsSnapshot snapshot = platform.metrics().snapshot();
  // Zero user-visible failures...
  EXPECT_EQ(platform.controller().stats().errors, 0u);
  EXPECT_EQ(error_events, 0u);
  EXPECT_EQ(snapshot.counter_value("broker.retry_exhausted"), 0u);
  // ...yet real faults were injected and absorbed by retries: every
  // chaos fault triggered exactly one retry, nothing more.
  EXPECT_GT(chaos.failed, 0u);
  EXPECT_EQ(snapshot.counter_value("broker.retries"), chaos.failed);
  // Physical-attempt accounting is airtight across layers.
  EXPECT_EQ(snapshot.counter_value("broker.commands"), chaos.executed);
  EXPECT_EQ(platform.trace().size(), chaos.executed);
  EXPECT_EQ(chaos.passed, soaked.inner->executed());
  // Fault-free arithmetic at the logical level: two logical commands per
  // session, all of which ultimately succeeded.
  EXPECT_EQ(chaos.passed, 2u * kSessions);

  EXPECT_TRUE(platform.stop().ok());
}

/// Multi-threaded: the fault *sequence* is nondeterministic once draws
/// interleave, so assert the exact cross-layer identities that hold for
/// every interleaving instead of a specific outcome.
TEST_F(ResilienceSoak, ConcurrentChaosLedgerReconcilesWithRetries) {
  broker::ChaosConfig chaos_config;
  chaos_config.fail_rate = 0.15;
  chaos_config.throw_rate = 0.10;
  InvocationPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff = Duration(0);
  auto soaked = soak::make_soak_platform(chaos_config, policy);
  ASSERT_TRUE(soaked.ok()) << soaked.status.to_string();
  core::Platform& platform = *soaked.platform;

  constexpr int kThreads = 4;
  constexpr int kPerThread = 30;
  constexpr std::uint64_t kTotal = kThreads * kPerThread;
  std::atomic<std::uint64_t> ok_submissions{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        std::string id = "r-" + std::to_string(t) + "-" + std::to_string(i);
        obs::RequestContext context = platform.make_context();
        if (platform.submit_model_text(soak::open_session_text(id), context)
                .ok()) {
          ok_submissions.fetch_add(1, std::memory_order_relaxed);
        }
        EXPECT_TRUE(context.trace().all_closed());
      }
    });
  }
  for (auto& thread : threads) thread.join();

  // Command failures are contained per command; submissions always return.
  EXPECT_EQ(ok_submissions.load(), kTotal);

  const broker::ChaosStats chaos = soaked.chaos->stats();
  const obs::MetricsSnapshot snapshot = platform.metrics().snapshot();
  const std::uint64_t faults = chaos.failed + chaos.threw;
  const std::uint64_t retries = snapshot.counter_value("broker.retries");
  const std::uint64_t exhausted =
      snapshot.counter_value("broker.retry_exhausted");
  // Every injected fault was consumed by exactly one retry, except the
  // final fault of each exhausted chain (which surfaced as the error).
  EXPECT_EQ(faults, retries + exhausted);
  // Only exhausted chains become user-visible command errors.
  EXPECT_EQ(platform.controller().stats().errors, exhausted);
  EXPECT_EQ(snapshot.counter_value("controller.errors"), exhausted);
  // Physical attempts reconcile across trace, metrics and chaos.
  EXPECT_EQ(snapshot.counter_value("broker.commands"), chaos.executed);
  EXPECT_EQ(platform.trace().size(), chaos.executed);
  EXPECT_EQ(snapshot.counter_value("broker.adapter_exceptions"),
            chaos.threw);
  EXPECT_EQ(chaos.executed, chaos.passed + chaos.failed + chaos.threw);
  EXPECT_EQ(chaos.passed, soaked.inner->executed());
  EXPECT_GT(faults, 0u);

  EXPECT_TRUE(platform.stop().ok());
}

/// The ChaosAdapter's stall hook runs stalls in virtual time: a "slow
/// resource" scenario that would wall-block for seconds completes
/// instantly, and the per-attempt timeout reclassifies the slow failure.
TEST_F(ResilienceSoak, ChaosStallsRunInVirtualTimeThroughTheSleeperHook) {
  SimClock clock;
  std::uint64_t stalls = 0;
  broker::ChaosConfig chaos_config;
  chaos_config.delay_rate = 1.0;        // every command stalls...
  chaos_config.delay = Duration(5'000'000);  // ...for 5 virtual seconds
  chaos_config.sleeper = [&](Duration d) {
    ++stalls;
    clock.advance(d);
  };
  chaos_config.fail_rate = 1.0;  // and then fails

  runtime::EventBus bus;
  policy::ContextStore store;
  BrokerLayer layer("stalls", bus, store);
  auto inner = std::make_unique<ScriptedAdapter>("svc");
  auto chaos = std::make_unique<broker::ChaosAdapter>(std::move(inner),
                                                      chaos_config);
  ASSERT_TRUE(layer.resources().add_adapter(std::move(chaos)).ok());

  InvocationPolicy policy;
  policy.max_attempts = 2;
  policy.initial_backoff = Duration(0);
  policy.attempt_timeout = Duration(1'000'000);  // 1 s per attempt
  ASSERT_TRUE(layer.resources().set_policy("svc", policy).ok());

  obs::RequestContext context(clock);
  auto result = layer.resources().invoke("svc", "start", {}, context);
  // Both attempts stalled past the 1 s attempt budget and failed: the
  // surfaced fault is the reclassified Timeout, not chaos's Unavailable.
  EXPECT_EQ(result.status().code(), ErrorCode::kTimeout);
  EXPECT_EQ(stalls, 2u);
  // Ten virtual seconds passed; no wall time was actually slept.
  EXPECT_GE(clock.now().time_since_epoch(), Duration(10'000'000));
}

}  // namespace
}  // namespace mdsm
