// Tests for model comparison (the Synthesis layer's model comparator).
#include <gtest/gtest.h>

#include <random>

#include "model/diff.hpp"
#include "model_fixtures.hpp"

namespace mdsm::model {
namespace {

using testing::make_test_metamodel;
using testing::make_test_model;

TEST(Diff, IdenticalModelsProduceNoChanges) {
  MetamodelPtr mm = make_test_metamodel();
  Model a = make_test_model(mm);
  Model b = a.clone();
  EXPECT_TRUE(diff(a, b).empty());
}

TEST(Diff, EmptyToModelIsAllAdds) {
  MetamodelPtr mm = make_test_metamodel();
  Model empty("empty", mm);
  Model full = make_test_model(mm);
  ChangeList changes = diff(empty, full);
  int adds = 0;
  for (const Change& c : changes) {
    EXPECT_NE(c.kind, ChangeKind::kRemoveObject);
    if (c.kind == ChangeKind::kAddObject) ++adds;
  }
  EXPECT_EQ(adds, 4);
  // Parents appear before their children.
  auto index_of = [&](std::string_view id) {
    for (std::size_t i = 0; i < changes.size(); ++i) {
      if (changes[i].kind == ChangeKind::kAddObject &&
          changes[i].object_id == id) {
        return i;
      }
    }
    return changes.size();
  };
  EXPECT_LT(index_of("s1"), index_of("alice"));
  EXPECT_LT(index_of("s1"), index_of("cam"));
}

TEST(Diff, AddObjectCarriesContainmentContextAndState) {
  MetamodelPtr mm = make_test_metamodel();
  Model before = make_test_model(mm);
  Model after = before.clone();
  after.create_child("s1", "participants", "Participant", "carol");
  after.set_attribute("carol", "address", Value("carol@host"));
  ChangeList changes = diff(before, after);
  ASSERT_GE(changes.size(), 2u);
  EXPECT_EQ(changes[0].kind, ChangeKind::kAddObject);
  EXPECT_EQ(changes[0].object_id, "carol");
  EXPECT_EQ(changes[0].class_name, "Participant");
  EXPECT_EQ(changes[0].parent_id, "s1");
  EXPECT_EQ(changes[0].containment, "participants");
  // The new object's attribute state follows as SetAttribute changes.
  bool saw_address = false;
  for (const Change& c : changes) {
    if (c.kind == ChangeKind::kSetAttribute && c.object_id == "carol" &&
        c.feature == "address") {
      saw_address = true;
      EXPECT_EQ(c.new_value, Value("carol@host"));
      EXPECT_TRUE(c.old_value.is_none());
    }
  }
  EXPECT_TRUE(saw_address);
}

TEST(Diff, RemovalsComeChildrenFirst) {
  MetamodelPtr mm = make_test_metamodel();
  Model before = make_test_model(mm);
  Model after("after", mm);  // everything removed
  ChangeList changes = diff(before, after);
  ASSERT_EQ(changes.size(), 4u);
  for (const Change& c : changes) {
    EXPECT_EQ(c.kind, ChangeKind::kRemoveObject);
  }
  // s1 (the parent) must be last.
  EXPECT_EQ(changes.back().object_id, "s1");
}

TEST(Diff, AttributeChangeCarriesOldAndNew) {
  MetamodelPtr mm = make_test_metamodel();
  Model before = make_test_model(mm);
  Model after = before.clone();
  after.set_attribute("s1", "state", Value("closed"));
  ChangeList changes = diff(before, after);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].kind, ChangeKind::kSetAttribute);
  EXPECT_EQ(changes[0].feature, "state");
  EXPECT_EQ(changes[0].old_value, Value("open"));
  EXPECT_EQ(changes[0].new_value, Value("closed"));
}

TEST(Diff, UnsetAttributeShowsAsNoneNewValue) {
  MetamodelPtr mm = make_test_metamodel();
  Model before = make_test_model(mm);
  Model after = before.clone();
  after.unset_attribute("s1", "bandwidth");
  ChangeList changes = diff(before, after);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].old_value, Value(2.5));
  EXPECT_TRUE(changes[0].new_value.is_none());
}

TEST(Diff, ReferenceRetarget) {
  MetamodelPtr mm = make_test_metamodel();
  Model before = make_test_model(mm);
  Model after = before.clone();
  after.add_reference("s1", "initiator", "bob");  // replaces alice
  ChangeList changes = diff(before, after);
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_EQ(changes[0].kind, ChangeKind::kRemoveReference);
  EXPECT_EQ(changes[0].target_id, "alice");
  EXPECT_EQ(changes[1].kind, ChangeKind::kAddReference);
  EXPECT_EQ(changes[1].target_id, "bob");
}

TEST(Diff, ContainmentIsNotReportedAsReferenceChange) {
  MetamodelPtr mm = make_test_metamodel();
  Model before = make_test_model(mm);
  Model after = before.clone();
  after.remove("bob");
  ChangeList changes = diff(before, after);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].kind, ChangeKind::kRemoveObject);
  EXPECT_EQ(changes[0].object_id, "bob");
}

TEST(Diff, SummarizeAndToText) {
  MetamodelPtr mm = make_test_metamodel();
  Model before = make_test_model(mm);
  Model after = before.clone();
  after.set_attribute("s1", "state", Value("closed"));
  ChangeList changes = diff(before, after);
  std::string summary = summarize(changes);
  EXPECT_NE(summary.find("1 change(s)"), std::string::npos);
  EXPECT_NE(summary.find("set-attribute s1.state"), std::string::npos);
}

// Property: applying a random sequence of edits and diffing against the
// original yields a change list whose add/remove counts match the object
// count delta, and diff(m, m) is empty for every intermediate state.
class DiffPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(DiffPropertyTest, ObjectCountDeltaMatchesAddRemoveBalance) {
  MetamodelPtr mm = make_test_metamodel();
  Model before = make_test_model(mm);
  Model after = before.clone();
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> op(0, 3);
  int created = 0;
  for (int step = 0; step < 20; ++step) {
    switch (op(rng)) {
      case 0: {  // add participant
        std::string id = "gen" + std::to_string(++created) + "x" +
                         std::to_string(GetParam());
        if (after.contains("s1")) {
          after.create_child("s1", "participants", "Participant", id);
          after.set_attribute(id, "address", Value(id + "@host"));
        }
        break;
      }
      case 1: {  // mutate an attribute
        if (after.contains("s1")) {
          after.set_attribute("s1", "bandwidth",
                              Value(static_cast<double>(step)));
        }
        break;
      }
      case 2: {  // remove some leaf participant if any
        auto participants = after.objects_of("Participant");
        if (!participants.empty()) {
          after.remove(participants.front()->id());
        }
        break;
      }
      case 3: {  // toggle a tag list
        if (after.contains("s1")) {
          after.set_attribute(
              "s1", "tags",
              Value(ValueList{Value("t" + std::to_string(step))}));
        }
        break;
      }
    }
    // Self-diff must always be empty.
    EXPECT_TRUE(diff(after, after).empty());
  }
  ChangeList changes = diff(before, after);
  int adds = 0;
  int removes = 0;
  for (const Change& c : changes) {
    if (c.kind == ChangeKind::kAddObject) ++adds;
    if (c.kind == ChangeKind::kRemoveObject) ++removes;
  }
  EXPECT_EQ(static_cast<int>(after.size()) - static_cast<int>(before.size()),
            adds - removes);
  EXPECT_TRUE(after.validate().ok());
}

// ---- wire form (PR 8): the cluster's replication payload -------------------

TEST(DiffWire, EveryChangeKindRoundTrips) {
  MetamodelPtr mm = make_test_metamodel();
  Model before = make_test_model(mm);
  Model after = before.clone();
  // One edit script covering adds (with containment context), attribute
  // sets, reference retargets and removals.
  after.create_child("s1", "participants", "Participant", "carol");
  after.set_attribute("carol", "address", Value("carol@host"));
  after.set_attribute("s1", "state", Value("closed"));
  after.add_reference("s1", "initiator", "bob");
  after.remove("cam");
  const ChangeList changes = diff(before, after);
  ASSERT_FALSE(changes.empty());

  auto decoded = decode_changes(encode_changes(changes));
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  ASSERT_EQ(decoded.value().size(), changes.size());
  for (std::size_t i = 0; i < changes.size(); ++i) {
    EXPECT_EQ(decoded.value()[i].kind, changes[i].kind) << i;
    EXPECT_EQ(decoded.value()[i].object_id, changes[i].object_id) << i;
    EXPECT_EQ(decoded.value()[i].class_name, changes[i].class_name) << i;
    EXPECT_EQ(decoded.value()[i].feature, changes[i].feature) << i;
    EXPECT_EQ(decoded.value()[i].old_value, changes[i].old_value) << i;
    EXPECT_EQ(decoded.value()[i].new_value, changes[i].new_value) << i;
    EXPECT_EQ(decoded.value()[i].target_id, changes[i].target_id) << i;
    EXPECT_EQ(decoded.value()[i].parent_id, changes[i].parent_id) << i;
    EXPECT_EQ(decoded.value()[i].containment, changes[i].containment) << i;
  }

  // The decoded list is as applicable as the original.
  Model replica = before.clone();
  ASSERT_TRUE(model::apply(decoded.value(), replica).ok());
  EXPECT_TRUE(diff(replica, after).empty());
}

TEST(DiffWire, DecodeRejectsMalformedPayloads) {
  // Not a list at all.
  EXPECT_FALSE(decode_changes(Value("garbage")).ok());
  EXPECT_FALSE(decode_changes(Value(7.0)).ok());
  // A non-list element.
  EXPECT_FALSE(decode_changes(Value(ValueList{Value(1.0)})).ok());
  // Wrong slot count.
  EXPECT_FALSE(
      decode_changes(Value(ValueList{Value(ValueList{Value("short")})})).ok());
  // A valid 9-slot shape with an out-of-range kind.
  ValueList slots(9, Value(std::string{}));
  slots[0] = Value(std::int64_t{99});
  EXPECT_FALSE(decode_changes(Value(ValueList{Value(slots)})).ok());
  // A non-string object id.
  slots[0] = Value(std::int64_t{0});
  slots[1] = Value(3.5);
  EXPECT_FALSE(decode_changes(Value(ValueList{Value(slots)})).ok());
  // The empty change list is legal.
  EXPECT_TRUE(decode_changes(Value(ValueList{})).ok());
}

// Property: whatever edit script the fuzz loop produced, its diff
// survives encode/decode byte-identically in effect — applying the
// decoded list to a clone of `before` reproduces `after`.
TEST_P(DiffPropertyTest, EncodedChangeListsSurviveTheWire) {
  MetamodelPtr mm = make_test_metamodel();
  Model before = make_test_model(mm);
  Model after = before.clone();
  std::mt19937 rng(GetParam() * 7919u);
  std::uniform_int_distribution<int> op(0, 3);
  int created = 0;
  for (int step = 0; step < 20; ++step) {
    switch (op(rng)) {
      case 0: {
        std::string id = "wire" + std::to_string(++created) + "x" +
                         std::to_string(GetParam());
        if (after.contains("s1")) {
          after.create_child("s1", "participants", "Participant", id);
          after.set_attribute(id, "address", Value(id + "@host"));
        }
        break;
      }
      case 1: {
        if (after.contains("s1")) {
          after.set_attribute("s1", "bandwidth",
                              Value(static_cast<double>(step) + 0.25));
        }
        break;
      }
      case 2: {
        auto participants = after.objects_of("Participant");
        if (!participants.empty()) {
          after.remove(participants.front()->id());
        }
        break;
      }
      case 3: {
        if (after.contains("s1")) {
          after.set_attribute(
              "s1", "tags",
              Value(ValueList{Value("t" + std::to_string(step)),
                              Value(static_cast<std::int64_t>(step))}));
        }
        break;
      }
    }
  }
  const ChangeList changes = diff(before, after);
  auto decoded = decode_changes(encode_changes(changes));
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  Model replica = before.clone();
  const auto applied = model::apply(decoded.value(), replica);
  ASSERT_TRUE(applied.ok()) << applied.to_string();
  EXPECT_TRUE(diff(replica, after).empty());
  EXPECT_TRUE(replica.validate().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
}  // namespace mdsm::model
