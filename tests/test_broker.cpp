// Unit tests for the Broker layer: resource management, action dispatch,
// state, autonomic adaptation.
#include <gtest/gtest.h>

#include <stdexcept>

#include "broker/broker_layer.hpp"
#include "broker/chaos_adapter.hpp"
#include "common/log.hpp"

namespace mdsm::broker {
namespace {

using model::Value;

/// A controllable fake resource: records commands, can fail on demand,
/// and can raise events into the layer.
class FakeResource : public ResourceAdapter {
 public:
  explicit FakeResource(std::string name) : ResourceAdapter(std::move(name)) {}

  std::vector<std::string> executed;
  bool fail_next = false;

  Result<Value> execute(const std::string& command,
                        const Args& args) override {
    executed.push_back(format_invocation(command, args));
    if (fail_next) {
      fail_next = false;
      return Unavailable("resource fault injected");
    }
    return Value("ok:" + command);
  }

  void fire(const std::string& topic, Value payload = {}) {
    raise_event(topic, std::move(payload));
  }
};

struct BrokerFixture : ::testing::Test {
  runtime::EventBus bus;
  policy::ContextStore context;
  BrokerLayer layer{"ncb", bus, context};
  FakeResource* resource = nullptr;

  void SetUp() override {
    auto adapter = std::make_unique<FakeResource>("audio");
    resource = adapter.get();
    ASSERT_TRUE(layer.resources().add_adapter(std::move(adapter)).ok());
  }
};

// -------------------------------------------------------- ResourceManager

TEST_F(BrokerFixture, InvokeRoutesAndTraces) {
  Args args{{"codec", Value("opus")}};
  auto result = layer.resources().invoke("audio", "start", args);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->as_string(), "ok:start");
  ASSERT_EQ(layer.trace().size(), 1u);
  EXPECT_EQ(layer.trace().entries()[0], "audio.start(codec=\"opus\")");
  ASSERT_EQ(resource->executed.size(), 1u);
}

TEST_F(BrokerFixture, InvokeUnknownResourceFails) {
  EXPECT_EQ(layer.resources().invoke("video", "start", {}).status().code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(layer.trace().size(), 0u);
}

TEST_F(BrokerFixture, FailedCommandStillAppearsInTrace) {
  resource->fail_next = true;
  EXPECT_FALSE(layer.resources().invoke("audio", "start", {}).ok());
  EXPECT_EQ(layer.trace().size(), 1u);  // issued, then failed
}

TEST_F(BrokerFixture, AdapterRegistryChecks) {
  EXPECT_EQ(layer.resources()
                .add_adapter(std::make_unique<FakeResource>("audio"))
                .code(),
            ErrorCode::kAlreadyExists);
  EXPECT_EQ(layer.resources().add_adapter(nullptr).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(layer.resources().adapter_names(),
            std::vector<std::string>{"audio"});
  EXPECT_TRUE(layer.resources().remove_adapter("audio").ok());
  EXPECT_EQ(layer.resources().remove_adapter("audio").code(),
            ErrorCode::kNotFound);
}

TEST_F(BrokerFixture, ResourceEventsSurfaceOnBusWithPrefix) {
  std::vector<std::string> topics;
  bus.subscribe("resource.*",
                [&](const runtime::Event& e) { topics.push_back(e.topic); });
  resource->fire("link.lost", Value("sess-1"));
  ASSERT_EQ(topics.size(), 1u);
  EXPECT_EQ(topics[0], "resource.link.lost");
}

// ------------------------------------------------------ Action execution

TEST_F(BrokerFixture, ActionStepsExecuteInOrderWithTemplates) {
  Action action;
  action.name = "open-session";
  action.steps = {
      invoke_step("audio", "allocate", {{"session", Value("$id")}}),
      set_state_step("session.count", Value(1)),
      set_context_step("last.session", Value("$id")),
      emit_step("session.opened", Value("$id")),
      result_step(Value("$id")),
  };
  ASSERT_TRUE(layer.register_action(std::move(action)).ok());
  ASSERT_TRUE(layer.bind_handler("session.open", {"open-session"}).ok());

  int events = 0;
  bus.subscribe("session.opened", [&](const runtime::Event& e) {
    ++events;
    EXPECT_EQ(e.payload, Value("s42"));
  });

  auto result = layer.call({"session.open", {{"id", Value("s42")}}});
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_EQ(*result, Value("s42"));
  EXPECT_EQ(layer.state().get("session.count"), Value(1));
  EXPECT_EQ(context.get("last.session"), Value("s42"));
  EXPECT_EQ(events, 1);
  EXPECT_EQ(layer.trace().entries()[0], "audio.allocate(session=\"s42\")");
  EXPECT_EQ(layer.calls_handled(), 1u);
}

TEST_F(BrokerFixture, TemplateResolutionRules) {
  context.set("quality", Value("high"));
  Args call_args{{"id", Value("s1")}};
  Args templated{{"a", Value("$id")},
                 {"b", Value("$ctx:quality")},
                 {"c", Value("$$literal")},
                 {"d", Value("plain")},
                 {"e", Value("$missing")},
                 {"f", Value(7)}};
  Args resolved = resolve_args(templated, call_args, context);
  EXPECT_EQ(resolved["a"], Value("s1"));
  EXPECT_EQ(resolved["b"], Value("high"));
  EXPECT_EQ(resolved["c"], Value("$literal"));
  EXPECT_EQ(resolved["d"], Value("plain"));
  EXPECT_TRUE(resolved["e"].is_none());
  EXPECT_EQ(resolved["f"], Value(7));
}

TEST_F(BrokerFixture, GuardStepAbortsAction) {
  Action action;
  action.name = "guarded";
  action.steps = {guard_step("defined(ready)"),
                  invoke_step("audio", "start")};
  ASSERT_TRUE(layer.register_action(std::move(action)).ok());
  ASSERT_TRUE(layer.bind_handler("go", {"guarded"}).ok());
  EXPECT_EQ(layer.call({"go", {}}).status().code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ(layer.trace().size(), 0u);  // aborted before invoke
  context.set("ready", Value(true));
  EXPECT_TRUE(layer.call({"go", {}}).ok());
  EXPECT_EQ(layer.trace().size(), 1u);
}

TEST_F(BrokerFixture, HandlerSelectsByGuardAndPriority) {
  Action economical;
  economical.name = "eco";
  economical.priority = 1;
  economical.steps = {invoke_step("audio", "start-low")};
  Action premium;
  premium.name = "hq";
  premium.priority = 5;
  auto guard = policy::Expression::parse("bandwidth > 2.0");
  ASSERT_TRUE(guard.ok());
  premium.guard = std::move(guard.value());
  premium.steps = {invoke_step("audio", "start-high")};
  ASSERT_TRUE(layer.register_action(std::move(economical)).ok());
  ASSERT_TRUE(layer.register_action(std::move(premium)).ok());
  ASSERT_TRUE(layer.bind_handler("start", {"eco", "hq"}).ok());

  context.set("bandwidth", Value(1.0));
  ASSERT_TRUE(layer.call({"start", {}}).ok());
  EXPECT_EQ(layer.trace().entries().back(), "audio.start-low()");

  context.set("bandwidth", Value(5.0));
  ASSERT_TRUE(layer.call({"start", {}}).ok());
  EXPECT_EQ(layer.trace().entries().back(), "audio.start-high()");
}

TEST_F(BrokerFixture, UnhandledCallAndNoApplicableAction) {
  EXPECT_EQ(layer.call({"nope", {}}).status().code(), ErrorCode::kNotFound);
  Action never;
  never.name = "never";
  auto guard = policy::Expression::parse("false");
  never.guard = std::move(guard.value());
  ASSERT_TRUE(layer.register_action(std::move(never)).ok());
  ASSERT_TRUE(layer.bind_handler("x", {"never"}).ok());
  EXPECT_EQ(layer.call({"x", {}}).status().code(),
            ErrorCode::kFailedPrecondition);
}

TEST_F(BrokerFixture, RegistrationErrors) {
  Action action;
  action.name = "a";
  ASSERT_TRUE(layer.register_action(action).ok());
  EXPECT_EQ(layer.register_action(action).code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(layer.bind_handler("sig", {"ghost"}).code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(layer.action_count(), 1u);
}

TEST_F(BrokerFixture, EventsDispatchBoundActionsAndIgnoreUnbound) {
  Action react;
  react.name = "react";
  react.steps = {invoke_step("audio", "reconnect",
                             {{"why", Value("$event.payload")}})};
  ASSERT_TRUE(layer.register_action(std::move(react)).ok());
  ASSERT_TRUE(layer.bind_handler("resource.link.lost", {"react"}).ok());
  EXPECT_TRUE(layer.handle_event("resource.link.lost", Value("s1")).ok());
  EXPECT_EQ(layer.trace().entries().back(), "audio.reconnect(why=\"s1\")");
  // Unbound events are fine.
  EXPECT_TRUE(layer.handle_event("resource.ignored", {}).ok());
  EXPECT_EQ(layer.events_handled(), 2u);
}

// ---------------------------------------------------- Autonomic manager

TEST_F(BrokerFixture, SymptomTriggersChangePlan) {
  ASSERT_TRUE(layer.autonomic()
                  .add_symptom({.name = "link-degraded",
                                .trigger_topic = "resource.link.lost",
                                .condition = {},
                                .change_request = "restore-link"})
                  .ok());
  ChangePlan plan;
  plan.name = "reconnect";
  plan.handles_request = "restore-link";
  plan.steps = {invoke_step("audio", "reconnect")};
  ASSERT_TRUE(layer.autonomic().add_plan(std::move(plan)).ok());

  resource->fire("link.lost");
  EXPECT_EQ(layer.autonomic().symptoms_detected(), 1u);
  EXPECT_EQ(layer.autonomic().adaptations(), 1u);
  EXPECT_EQ(layer.trace().entries().back(), "audio.reconnect()");
  ASSERT_GE(layer.autonomic().adaptation_log().size(), 2u);
}

TEST_F(BrokerFixture, SymptomConditionGatesDetection) {
  ASSERT_TRUE(layer.autonomic()
                  .add_symptom({.name = "overload",
                                .trigger_topic = "resource.load",
                                .condition = *policy::Expression::parse(
                                    "load > 0.9"),
                                .change_request = "shed"})
                  .ok());
  ChangePlan plan;
  plan.name = "shed-load";
  plan.handles_request = "shed";
  plan.steps = {set_context_step("mode", Value("degraded"))};
  ASSERT_TRUE(layer.autonomic().add_plan(std::move(plan)).ok());

  context.set("load", Value(0.5));
  resource->fire("load");
  EXPECT_EQ(layer.autonomic().adaptations(), 0u);
  context.set("load", Value(0.95));
  resource->fire("load");
  EXPECT_EQ(layer.autonomic().adaptations(), 1u);
  EXPECT_EQ(context.get("mode"), Value("degraded"));
}

TEST_F(BrokerFixture, PlanSelectionByGuardAndPriority) {
  ChangePlan cheap;
  cheap.name = "cheap";
  cheap.handles_request = "fix";
  cheap.priority = 1;
  cheap.steps = {set_context_step("fixed.by", Value("cheap"))};
  ChangePlan thorough;
  thorough.name = "thorough";
  thorough.handles_request = "fix";
  thorough.priority = 9;
  thorough.guard = *policy::Expression::parse("defined(maintenance.window)");
  thorough.steps = {set_context_step("fixed.by", Value("thorough"))};
  ASSERT_TRUE(layer.autonomic().add_plan(std::move(cheap)).ok());
  ASSERT_TRUE(layer.autonomic().add_plan(std::move(thorough)).ok());

  ASSERT_TRUE(layer.autonomic().raise_request("fix").ok());
  EXPECT_EQ(context.get("fixed.by"), Value("cheap"));
  context.set("maintenance.window", Value(true));
  ASSERT_TRUE(layer.autonomic().raise_request("fix").ok());
  EXPECT_EQ(context.get("fixed.by"), Value("thorough"));
}

TEST_F(BrokerFixture, UnhandledRequestIsNotFound) {
  EXPECT_EQ(layer.autonomic().raise_request("ghost").code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(layer.autonomic().add_symptom({.name = "s",
                                           .trigger_topic = "t",
                                           .condition = {},
                                           .change_request = "r"})
                .code(),
            ErrorCode::kOk);
  EXPECT_EQ(layer.autonomic()
                .add_symptom({.name = "s",
                              .trigger_topic = "t",
                              .condition = {},
                              .change_request = "r"})
                .code(),
            ErrorCode::kAlreadyExists);
}

// Regression: an adapter exception used to unwind through invoke() and
// the whole controller stack. The fault boundary converts it to an
// ExecutionError status and counts it in "broker.adapter_exceptions".
TEST_F(BrokerFixture, ThrowingAdapterIsContainedAsExecutionError) {
  class ThrowingResource final : public ResourceAdapter {
   public:
    ThrowingResource() : ResourceAdapter("video") {}
    Result<Value> execute(const std::string&, const Args&) override {
      throw std::runtime_error("driver crashed");
    }
  };
  set_log_level(LogLevel::kOff);
  obs::MetricsRegistry metrics;
  layer.set_metrics(&metrics);
  ASSERT_TRUE(
      layer.resources().add_adapter(std::make_unique<ThrowingResource>()).ok());
  auto result = layer.resources().invoke("video", "start", {});
  EXPECT_EQ(result.status().code(), ErrorCode::kExecutionError);
  EXPECT_NE(result.status().message().find("threw during 'start'"),
            std::string::npos)
      << result.status().to_string();
  EXPECT_EQ(layer.trace().size(), 1u);  // issued, then threw
  EXPECT_EQ(metrics.snapshot().counter_value("broker.adapter_exceptions"), 1u);
  set_log_level(LogLevel::kWarn);
}

// Regression: a step missing its required arg used to default-insert a
// none Value silently; now the action fails with a clear error.
TEST_F(BrokerFixture, StepMissingRequiredArgIsExecutionError) {
  Action action;
  action.name = "bad-set";
  ActionStep bare;
  bare.op = StepOp::kSetState;
  bare.a = "k";
  action.steps = {bare};
  ASSERT_TRUE(layer.register_action(std::move(action)).ok());
  ASSERT_TRUE(layer.bind_handler("go-bad", {"bad-set"}).ok());
  auto status = layer.call({"go-bad", {}}).status();
  EXPECT_EQ(status.code(), ErrorCode::kExecutionError);
  EXPECT_NE(status.message().find("missing required arg 'value'"),
            std::string::npos)
      << status.to_string();
  EXPECT_TRUE(layer.state().get("k").is_none());  // nothing written
}

// ------------------------------------------------------------ ChaosAdapter

TEST_F(BrokerFixture, ChaosAdapterInjectsFaultsDeterministicallyAtRateOne) {
  ChaosConfig all_fail;
  all_fail.fail_rate = 1.0;
  ChaosAdapter fails(std::make_unique<FakeResource>("f"), all_fail);
  EXPECT_EQ(fails.execute("go", {}).status().code(), ErrorCode::kUnavailable);
  EXPECT_EQ(fails.stats().failed, 1u);
  EXPECT_EQ(fails.stats().passed, 0u);

  ChaosConfig all_throw;
  all_throw.throw_rate = 1.0;
  ChaosAdapter throws(std::make_unique<FakeResource>("t"), all_throw);
  EXPECT_THROW((void)throws.execute("go", {}), std::runtime_error);
  EXPECT_EQ(throws.stats().threw, 1u);

  ChaosAdapter clean(std::make_unique<FakeResource>("c"), ChaosConfig{});
  auto result = clean.execute("go", {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->as_string(), "ok:go");
  EXPECT_EQ(clean.stats().passed, 1u);
  EXPECT_EQ(clean.stats().executed, 1u);
}

TEST_F(BrokerFixture, ChaosAdapterForwardsInnerEventsAndName) {
  auto inner = std::make_unique<FakeResource>("sensor");
  FakeResource* inner_raw = inner.get();
  auto chaos = std::make_unique<ChaosAdapter>(std::move(inner), ChaosConfig{});
  EXPECT_EQ(chaos->name(), "sensor");
  ASSERT_TRUE(layer.resources().add_adapter(std::move(chaos)).ok());
  Value seen;
  bus.subscribe("resource.ready",
                [&](const runtime::Event& e) { seen = e.payload; });
  inner_raw->fire("ready", Value("warm"));
  EXPECT_EQ(seen, Value("warm"));
}

// ------------------------------------------------------------ StateManager

TEST(StateManager, RuntimeModelAndVariables) {
  StateManager state;
  EXPECT_FALSE(state.has_runtime_model());
  state.set("k", Value(3));
  EXPECT_TRUE(state.has("k"));
  EXPECT_EQ(state.get("k"), Value(3));
  EXPECT_TRUE(state.get("ghost").is_none());
  state.erase("k");
  EXPECT_FALSE(state.has("k"));
  EXPECT_EQ(state.variable_count(), 0u);
}

TEST(CommandTrace, EqualityIsSequenceEquality) {
  CommandTrace a;
  CommandTrace b;
  a.record("r", "c", {{"x", Value(1)}});
  b.record("r", "c", {{"x", Value(1)}});
  EXPECT_TRUE(a == b);
  b.record("r", "d", {});
  EXPECT_FALSE(a == b);
  a.record("r", "e", {});  // same length, different content
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace mdsm::broker
