// 2SVM — the Smart Spaces Virtual Machine (paper §IV-C, [12]), in its
// split deployment: "the instance of 2SVM that runs on the central device
// that controls the smart space only has the three top layers, while the
// instances that run on smart objects only have the two bottom layers
// ... model synthesis only happens in the smart space controller, which
// dispatches the synthesized control scripts to the middleware layer on
// the smart objects."
//
// The hub (central device) therefore runs UI + Synthesis + Controller,
// with no broker of its own: its controller actions use the engine's
// message-passing op (kSend) to reach the object nodes over the network.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "controller/controller_layer.hpp"
#include "domains/smartspace/smart_objects.hpp"
#include "domains/smartspace/ssml.hpp"
#include "synthesis/synthesis_engine.hpp"

namespace mdsm::smartspace {

/// The central controller node (top three layers).
class SsvmHub {
 public:
  explicit SsvmHub(net::Network& network);

  /// UI layer: submit a 2SML model (text). Synthesis compares against the
  /// running model and dispatches commands; commands reach the object
  /// nodes as messages (delivered when the network is pumped). The
  /// context-free overload mints a context internally (see last_trace()).
  Result<controller::ControlScript> submit_model_text(
      std::string_view text, obs::RequestContext& context);
  Result<controller::ControlScript> submit_model_text(std::string_view text);

  [[nodiscard]] obs::RequestContext make_context(
      std::optional<Duration> deadline = {}) {
    return obs::RequestContext(obs::steady_clock(), &metrics_, deadline);
  }
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const obs::Trace* last_trace() const noexcept {
    return last_context_ == nullptr ? nullptr : &last_context_->trace();
  }

  [[nodiscard]] controller::ControllerLayer& controller() noexcept {
    return *controller_;
  }
  [[nodiscard]] synthesis::SynthesisEngine& synthesis() noexcept {
    return *synthesis_;
  }
  [[nodiscard]] const std::vector<std::string>& registered_objects()
      const noexcept {
    return registered_;
  }

 private:
  runtime::EventBus bus_;
  policy::ContextStore context_;
  obs::MetricsRegistry metrics_;
  std::unique_ptr<obs::RequestContext> last_context_;
  std::unique_ptr<broker::BrokerLayer> null_broker_;  ///< hub has no broker
  std::unique_ptr<controller::ControllerLayer> controller_;
  std::unique_ptr<synthesis::SynthesisEngine> synthesis_;
  std::vector<std::string> registered_;
};

/// A complete smart space: hub + object nodes over one simulated network.
struct SmartSpace {
  SimClock clock;
  net::Network network{clock};
  std::unique_ptr<SsvmHub> hub;
  std::map<std::string, std::unique_ptr<SmartObjectNode>, std::less<>> nodes;

  /// Create an object node (device joins the space).
  SmartObjectNode& add_object(const std::string& id, const std::string& kind);

  /// Deliver all in-flight messages (advances virtual time).
  void pump() { network.run_until_idle(); }
};

std::unique_ptr<SmartSpace> make_smart_space();

}  // namespace mdsm::smartspace
