#include "domains/smartspace/ssml.hpp"

namespace mdsm::smartspace {

namespace {

using model::AttrType;
using model::Metamodel;
using model::Value;

Metamodel build() {
  Metamodel mm("ssml");
  auto& space = mm.add_class("SmartSpace");
  space.add_attribute({.name = "name", .type = AttrType::kString});
  space.add_reference({.name = "objects",
                       .target_class = "SmartObject",
                       .containment = true,
                       .many = true});
  space.add_reference({.name = "apps",
                       .target_class = "UbiquitousApp",
                       .containment = true,
                       .many = true});
  space.add_reference({.name = "users",
                       .target_class = "User",
                       .containment = true,
                       .many = true});

  auto& user = mm.add_class("User");
  user.add_attribute({.name = "presence",
                      .type = AttrType::kEnum,
                      .enum_literals = {"present", "away"},
                      .default_value = Value("away")});

  auto& object = mm.add_class("SmartObject");
  object.add_attribute({.name = "kind",
                        .type = AttrType::kEnum,
                        .required = true,
                        .enum_literals = {"light", "thermostat", "lock",
                                          "speaker"}});
  object.add_attribute({.name = "power",
                        .type = AttrType::kBool,
                        .default_value = Value(false)});
  object.add_attribute({.name = "level",
                        .type = AttrType::kInt,
                        .default_value = Value(0)});

  auto& app = mm.add_class("UbiquitousApp");
  app.add_attribute(
      {.name = "trigger", .type = AttrType::kString, .required = true});
  app.add_attribute(
      {.name = "command",
       .type = AttrType::kEnum,
       .required = true,
       .enum_literals = {"power-on", "power-off", "set-level"}});
  app.add_attribute({.name = "level",
                     .type = AttrType::kInt,
                     .default_value = Value(0)});
  app.add_reference({.name = "targets",
                     .target_class = "SmartObject",
                     .containment = false,
                     .many = true,
                     .required = true});
  return mm;
}

}  // namespace

model::MetamodelPtr ssml_metamodel() {
  static model::MetamodelPtr instance = model::finalize_metamodel(build());
  return instance;
}

}  // namespace mdsm::smartspace
