#include "domains/smartspace/ssvm.hpp"

#include "model/text_format.hpp"

namespace mdsm::smartspace {

using model::ChangeKind;
using model::Value;

namespace {

/// The 2SML synthesis semantics: object/app lifecycle → hub commands.
synthesis::Lts make_ssml_lts() {
  synthesis::Lts lts("initial");
  lts.on("initial", ChangeKind::kAddObject, "SmartObject", "", "registered",
         {{"ss.object.register",
           {{"id", Value("%id")}, {"kind", Value("%attr:kind")}}}});
  // Power/level values are meaningful from creation on: the model's
  // declared state is pushed to the device (defaults included — setting
  // a fresh device to its default state is a harmless no-op).
  lts.on("registered", ChangeKind::kSetAttribute, "SmartObject", "power",
         "registered",
         {{"ss.object.power",
           {{"id", Value("%id")}, {"value", Value("%new")}}}});
  lts.on("registered", ChangeKind::kSetAttribute, "SmartObject", "level",
         "registered",
         {{"ss.object.level",
           {{"id", Value("%id")}, {"value", Value("%new")}}}});
  // Apps: installation happens per bound target (AddReference carries
  // both the app (object_id) and the target object (target_id)).
  lts.on("initial", ChangeKind::kAddObject, "UbiquitousApp", "", "declared",
         {});
  lts.on("declared", ChangeKind::kAddReference, "UbiquitousApp", "targets",
         "declared",
         {{"ss.app.bind",
           {{"object", Value("%target")},
            {"trigger", Value("%attr:trigger")},
            {"command", Value("%attr:command")},
            {"level", Value("%attr:level")}}}});
  return lts;
}

}  // namespace

SsvmHub::SsvmHub(net::Network& network) {
  // The hub deliberately has no resources: its "broker" exists only to
  // satisfy the layer wiring and rejects every call, proving that all
  // hub behaviour flows through message passing.
  null_broker_ =
      std::make_unique<broker::BrokerLayer>("hub-null-broker", bus_, context_);
  controller_ = std::make_unique<controller::ControllerLayer>(
      "hub-controller", *null_broker_, bus_, context_);

  // The hub endpoint; kSend in hub actions goes through it.
  auto endpoint = network.create_endpoint("hub");
  net::Endpoint* hub_endpoint = endpoint.ok() ? endpoint.value() : nullptr;
  controller_->engine().set_sender(
      [hub_endpoint](const std::string& to, const std::string& topic,
                     Value payload) -> Status {
        if (hub_endpoint == nullptr) {
          return Unavailable("hub endpoint missing");
        }
        return hub_endpoint->send(to, topic, std::move(payload));
      });

  // Hub Case-1 actions: every synthesized command becomes a message to
  // the object named in its args; payload templates reference the
  // command args one by one (resolved recursively inside lists).
  {
    controller::ControllerAction action;
    action.name = "send-register";
    controller::Instruction instr;
    instr.op = controller::OpCode::kSend;
    instr.a = "$id";
    instr.b = "register";
    instr.args["payload"] = Value("$kind");
    action.body = {instr};
    (void)controller_->register_action(std::move(action));
    (void)controller_->bind_action("ss.object.register", {"send-register"});
  }
  {
    controller::ControllerAction action;
    action.name = "send-power";
    controller::Instruction instr;
    instr.op = controller::OpCode::kSend;
    instr.a = "$id";
    instr.b = "so.power";
    instr.args["payload"] =
        Value(model::ValueList{Value(model::ValueList{Value("value"),
                                                      Value("$value")})});
    action.body = {instr};
    (void)controller_->register_action(std::move(action));
    (void)controller_->bind_action("ss.object.power", {"send-power"});
  }
  {
    controller::ControllerAction action;
    action.name = "send-level";
    controller::Instruction instr;
    instr.op = controller::OpCode::kSend;
    instr.a = "$id";
    instr.b = "so.level";
    instr.args["payload"] =
        Value(model::ValueList{Value(model::ValueList{Value("value"),
                                                      Value("$value")})});
    action.body = {instr};
    (void)controller_->register_action(std::move(action));
    (void)controller_->bind_action("ss.object.level", {"send-level"});
  }
  {
    controller::ControllerAction action;
    action.name = "send-install";
    controller::Instruction instr;
    instr.op = controller::OpCode::kSend;
    instr.a = "$object";
    instr.b = "install";
    instr.args["payload"] = Value(model::ValueList{
        Value(model::ValueList{Value("trigger"), Value("$trigger")}),
        Value(model::ValueList{Value("command"), Value("$command")}),
        Value(model::ValueList{Value("level"), Value("$level")})});
    action.body = {instr};
    (void)controller_->register_action(std::move(action));
    (void)controller_->bind_action("ss.app.bind", {"send-install"});
  }
  (void)null_broker_->start();
  (void)controller_->start();

  controller::ControllerLayer* controller = controller_.get();
  std::vector<std::string>* registered = &registered_;
  synthesis_ = std::make_unique<synthesis::SynthesisEngine>(
      "hub-synthesis", ssml_metamodel(), make_ssml_lts(), context_,
      [controller, registered](const controller::ControlScript& script,
                               obs::RequestContext& request) {
        obs::ScopedSpan span(request, "controller.script",
                             std::to_string(script.commands.size()) +
                                 " commands");
        for (const auto& command : script.commands) {
          if (command.name == "ss.object.register") {
            auto it = command.args.find("id");
            if (it != command.args.end() && it->second.is_string()) {
              registered->push_back(it->second.as_string());
            }
          }
        }
        MDSM_RETURN_IF_ERROR(controller->submit_script(script, request));
        controller->process_pending(request);
        return Status::Ok();
      });
  controller_->set_metrics(&metrics_);
  synthesis_->set_metrics(&metrics_);
  null_broker_->set_metrics(&metrics_);
  (void)synthesis_->start();
}

Result<controller::ControlScript> SsvmHub::submit_model_text(
    std::string_view text, obs::RequestContext& context) {
  obs::ContextScope ambient(context);
  Result<model::Model> parsed = model::parse_model(text, ssml_metamodel());
  if (!parsed.ok()) return parsed.status();
  obs::ScopedSpan span(context, "ui.submit", parsed->name());
  metrics_.counter("requests.submitted").add();
  Result<controller::ControlScript> script =
      synthesis_->submit_model(std::move(parsed.value()), context);
  if (!script.ok()) metrics_.counter("requests.failed").add();
  return script;
}

Result<controller::ControlScript> SsvmHub::submit_model_text(
    std::string_view text) {
  last_context_ = std::make_unique<obs::RequestContext>(obs::steady_clock(),
                                                        &metrics_);
  return submit_model_text(text, *last_context_);
}

SmartObjectNode& SmartSpace::add_object(const std::string& id,
                                        const std::string& kind) {
  auto node = std::make_unique<SmartObjectNode>(id, kind, network);
  SmartObjectNode& ref = *node;
  nodes[id] = std::move(node);
  return ref;
}

std::unique_ptr<SmartSpace> make_smart_space() {
  auto space = std::make_unique<SmartSpace>();
  space->hub = std::make_unique<SsvmHub>(space->network);
  return space;
}

}  // namespace mdsm::smartspace
