#include "domains/smartspace/smart_objects.hpp"

#include "common/log.hpp"

namespace mdsm::smartspace {

using model::Value;
using model::ValueList;

model::Value encode_args(const broker::Args& args) {
  ValueList out;
  for (const auto& [key, value] : args) {
    out.push_back(Value(ValueList{Value(key), value}));
  }
  return Value(std::move(out));
}

broker::Args decode_args(const model::Value& payload) {
  broker::Args out;
  if (!payload.is_list()) return out;
  for (const Value& pair : payload.as_list()) {
    if (!pair.is_list() || pair.as_list().size() != 2) continue;
    const auto& items = pair.as_list();
    if (!items[0].is_string()) continue;
    out[items[0].as_string()] = items[1];
  }
  return out;
}

namespace {

/// The device adapter: applies atomic commands to the local DeviceState.
class DeviceAdapter final : public broker::ResourceAdapter {
 public:
  DeviceAdapter(DeviceState& device)
      : ResourceAdapter("dev"), device_(&device) {}

  Result<Value> execute(const std::string& command,
                        const broker::Args& args) override {
    if (command == "power") {
      auto it = args.find("value");
      if (it == args.end() || !it->second.is_bool()) {
        return InvalidArgument("power requires a bool 'value'");
      }
      device_->power = it->second.as_bool();
      return Value(device_->power);
    }
    if (command == "level") {
      auto it = args.find("value");
      if (it == args.end() || !it->second.is_int()) {
        return InvalidArgument("level requires an int 'value'");
      }
      device_->level = it->second.as_int();
      device_->power = device_->level > 0 ? true : device_->power;
      return Value(device_->level);
    }
    return NotFound("device has no command '" + command + "'");
  }

 private:
  DeviceState* device_;
};

}  // namespace

SmartObjectNode::SmartObjectNode(std::string id, std::string kind,
                                 net::Network& network)
    : id_(std::move(id)) {
  device_.kind = std::move(kind);
  broker_ = std::make_unique<broker::BrokerLayer>(id_ + "-broker", bus_,
                                                  context_);
  (void)broker_->resources().add_adapter(
      std::make_unique<DeviceAdapter>(device_));
  // Broker actions: the local device vocabulary.
  broker::Action power;
  power.name = "dev-power";
  power.steps = {broker::invoke_step("dev", "power",
                                     {{"value", Value("$value")}})};
  (void)broker_->register_action(std::move(power));
  broker::Action level;
  level.name = "dev-level";
  level.steps = {broker::invoke_step("dev", "level",
                                     {{"value", Value("$value")}})};
  (void)broker_->register_action(std::move(level));
  (void)broker_->bind_handler("so.power", {"dev-power"});
  (void)broker_->bind_handler("so.level", {"dev-level"});

  controller_ = std::make_unique<controller::ControllerLayer>(
      id_ + "-controller", *broker_, bus_, context_);
  // Pass-through Case-1 actions for direct commands from the hub.
  controller::ControllerAction fwd_power;
  fwd_power.name = "fwd-power";
  fwd_power.body = {controller::broker_call("so.power",
                                            {{"value", Value("$value")}})};
  (void)controller_->register_action(std::move(fwd_power));
  controller::ControllerAction fwd_level;
  fwd_level.name = "fwd-level";
  fwd_level.body = {controller::broker_call("so.level",
                                            {{"value", Value("$value")}})};
  (void)controller_->register_action(std::move(fwd_level));
  (void)controller_->bind_action("so.power", {"fwd-power"});
  (void)controller_->bind_action("so.level", {"fwd-level"});
  (void)broker_->start();
  (void)controller_->start();

  auto endpoint = network.create_endpoint(id_);
  if (endpoint.ok()) {
    endpoint.value()->set_handler(
        [this](const net::Message& message) { on_message(message); });
  }
}

Status SmartObjectNode::install_script(const broker::Args& args) {
  auto str = [&args](std::string_view key) -> std::string {
    auto it = args.find(key);
    return it != args.end() && it->second.is_string() ? it->second.as_string()
                                                      : std::string{};
  };
  const std::string trigger = str("trigger");
  const std::string command = str("command");
  if (trigger.empty() || command.empty()) {
    return InvalidArgument("install needs trigger and command");
  }
  controller::ControllerAction script;
  script.name = "script-" + std::to_string(++installs_) + "-" + trigger;
  if (command == "power-on") {
    script.body = {controller::broker_call("so.power",
                                           {{"value", Value(true)}})};
  } else if (command == "power-off") {
    script.body = {controller::broker_call("so.power",
                                           {{"value", Value(false)}})};
  } else if (command == "set-level") {
    auto it = args.find("level");
    Value level = it != args.end() ? it->second : Value(0);
    script.body = {controller::broker_call("so.level", {{"value", level}})};
  } else {
    return InvalidArgument("unknown installed command '" + command + "'");
  }
  MDSM_RETURN_IF_ERROR(controller_->register_action(script));
  MDSM_RETURN_IF_ERROR(controller_->bind_action(trigger, {script.name}));
  controller_->attach_event_topic(trigger);
  return Status::Ok();
}

void SmartObjectNode::on_message(const net::Message& message) {
  broker::Args args = decode_args(message.payload);
  if (message.topic == "install") {
    Status installed = install_script(args);
    if (!installed.ok()) {
      log_warn("smartobject") << id_ << ": " << installed.to_string();
    }
    return;
  }
  if (message.topic == "register") {
    return;  // presence acknowledged; nothing to configure yet
  }
  // Anything else is a command for the on-device controller.
  controller::Command command{message.topic, std::move(args)};
  (void)controller_->submit_command(std::move(command));
  controller_->process_pending();
}

void SmartObjectNode::raise_event(const std::string& topic,
                                  model::Value payload) {
  bus_.publish(topic, id_, std::move(payload));
  controller_->process_pending();
}

}  // namespace mdsm::smartspace
