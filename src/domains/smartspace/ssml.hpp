// 2SML — the Smart Spaces Modeling Language (paper §IV-C, [12]). Its
// constructs "represent the main kinds of elements that constitute smart
// spaces — users, smart objects, and ubiquitous applications — along
// with the relationships among them".
#pragma once

#include "model/metamodel.hpp"

namespace mdsm::smartspace {

/// The finalized 2SML metamodel (singleton).
///
/// Classes:
///   SmartSpace — contains SmartObjects and UbiquitousApps
///   User       — presence: present|away
///   SmartObject — kind: light|thermostat|lock|speaker, power, level
///   UbiquitousApp — trigger (event topic) + targets (objects) + the
///                   command/level it applies when triggered; apps become
///                   *installed scripts* on the object nodes, executed on
///                   asynchronous events (paper: "their execution is
///                   triggered by asynchronous events")
model::MetamodelPtr ssml_metamodel();

}  // namespace mdsm::smartspace
