// Simulated smart objects and their on-device layer stack.
//
// Per the paper (§IV-C), 2SVM deploys only the two bottom layers on each
// smart object: a Controller that holds *installed scripts* (executed on
// asynchronous events, not immediately) and a Broker driving the local
// device hardware. Objects attach to the space's network and receive
// commands/installs from the central controller node.
#pragma once

#include <memory>
#include <string>

#include "broker/broker_layer.hpp"
#include "controller/controller_layer.hpp"
#include "net/network.hpp"
#include "policy/context.hpp"
#include "runtime/event_bus.hpp"

namespace mdsm::smartspace {

/// Encode broker args as a Value list of [key, value] pairs for network
/// transport (and back). The smart-space wire protocol.
model::Value encode_args(const broker::Args& args);
broker::Args decode_args(const model::Value& payload);

/// The physical device state (the "underlying resource" of one object).
struct DeviceState {
  std::string kind;
  bool power = false;
  std::int64_t level = 0;
};

/// A smart object node: device + bottom-two-layer stack + endpoint.
class SmartObjectNode {
 public:
  /// Registers endpoint `id` on the network and wires the message
  /// handler. The node is ready once constructed.
  SmartObjectNode(std::string id, std::string kind, net::Network& network);

  [[nodiscard]] const std::string& id() const noexcept { return id_; }
  [[nodiscard]] const DeviceState& device() const noexcept { return device_; }

  /// Raise an asynchronous environment event on this node (e.g. a user
  /// entering the room); installed scripts bound to the topic run.
  void raise_event(const std::string& topic, model::Value payload = {});

  [[nodiscard]] controller::ControllerLayer& controller() noexcept {
    return *controller_;
  }
  [[nodiscard]] broker::BrokerLayer& broker() noexcept { return *broker_; }
  [[nodiscard]] std::size_t installed_scripts() const noexcept {
    return installs_;
  }

 private:
  void on_message(const net::Message& message);
  Status install_script(const broker::Args& args);

  std::string id_;
  DeviceState device_;
  runtime::EventBus bus_;
  policy::ContextStore context_;
  std::unique_ptr<broker::BrokerLayer> broker_;
  std::unique_ptr<controller::ControllerLayer> controller_;
  std::size_t installs_ = 0;
};

}  // namespace mdsm::smartspace
