// CVM — the Communication Virtual Machine (paper §IV-A, Fig. 3) rebuilt
// the MD-DSM way: its four layers are assembled from a middleware model
// (an instance of the common middleware metamodel) over the CML DSML,
// with the simulated communication services as the underlying resources.
//
//   UCI  = the platform's model-text interface (submit_model_text)
//   SE   = SynthesisEngine with the CML lifecycle LTS
//   UCM  = ControllerLayer (Case 1 pass-through actions + Case 2
//          DSC/procedure-based media path establishment)
//   NCB  = BrokerLayer with guarded actions (context-driven quality
//          selection) and an autonomic link-recovery rule
#pragma once

#include <memory>

#include "common/clock.hpp"
#include "core/platform.hpp"
#include "domains/comm/cml.hpp"
#include "domains/comm/comm_services.hpp"

namespace mdsm::comm {

/// The complete textual middleware model of the CVM (also used by the
/// Exp-4 bench to measure the cost of a full reload).
std::string_view cvm_middleware_model_text();

/// A self-contained CVM: simulated world (clock, network, service) plus
/// the assembled, started platform.
struct Cvm {
  SimClock clock;
  net::Network network;
  CommSessionService service;
  std::unique_ptr<core::Platform> platform;

  Cvm() : network(clock), service(network) {}
};

/// Build and start a CVM. The returned bundle owns everything.
Result<std::unique_ptr<Cvm>> make_cvm();

}  // namespace mdsm::comm
