#include "domains/comm/scenarios.hpp"

namespace mdsm::comm {

namespace {

using model::Value;

ScenarioStep call(std::string name, broker::Args args) {
  ScenarioStep step;
  step.kind = ScenarioStep::Kind::kCall;
  step.call = {std::move(name), std::move(args)};
  return step;
}

ScenarioStep fault(std::string session, std::string address) {
  ScenarioStep step;
  step.kind = ScenarioStep::Kind::kInjectFault;
  step.session = std::move(session);
  step.address = std::move(address);
  return step;
}

ScenarioStep set_context(std::string key, Value value) {
  ScenarioStep step;
  step.kind = ScenarioStep::Kind::kSetContext;
  step.context_key = std::move(key);
  step.context_value = std::move(value);
  return step;
}

std::vector<ScenarioStep> establish(const std::string& session,
                                    std::vector<std::string> parties) {
  std::vector<ScenarioStep> steps;
  steps.push_back(call("ncb.session.create", {{"id", Value(session)}}));
  for (std::string& party : parties) {
    steps.push_back(call("ncb.party.add", {{"session", Value(session)},
                                           {"address", Value(party)}}));
  }
  return steps;
}

ScenarioStep open_media(const std::string& session, const std::string& id,
                        const std::string& kind, bool live = true) {
  return call("ncb.media.open", {{"session", Value(session)},
                                 {"id", Value(id)},
                                 {"kind", Value(kind)},
                                 {"live", Value(live)}});
}

std::vector<Scenario> build_scenarios() {
  std::vector<Scenario> scenarios;

  {  // 1 — basic two-party audio call
    Scenario s;
    s.name = "s1-basic-call";
    s.description = "two-party audio session establishment";
    s.steps = establish("c1", {"alice", "bob"});
    s.steps.push_back(open_media("c1", "voice", "audio"));
    scenarios.push_back(std::move(s));
  }
  {  // 2 — multi-party audio+video conference
    Scenario s;
    s.name = "s2-conference";
    s.description = "four-party conference with audio and video";
    s.steps = establish("c2", {"alice", "bob", "carol", "dave"});
    s.steps.push_back(open_media("c2", "voice", "audio"));
    s.steps.push_back(open_media("c2", "cam", "video"));
    scenarios.push_back(std::move(s));
  }
  {  // 3 — participant joins mid-session
    Scenario s;
    s.name = "s3-late-join";
    s.description = "participant added to a running session";
    s.steps = establish("c3", {"alice", "bob"});
    s.steps.push_back(open_media("c3", "voice", "audio"));
    s.steps.push_back(call("ncb.party.add", {{"session", Value("c3")},
                                             {"address", Value("carol")}}));
    scenarios.push_back(std::move(s));
  }
  {  // 4 — participant leaves mid-session
    Scenario s;
    s.name = "s4-leave";
    s.description = "participant removed from a running session";
    s.steps = establish("c4", {"alice", "bob", "carol"});
    s.steps.push_back(open_media("c4", "voice", "audio"));
    s.steps.push_back(call("ncb.party.remove",
                           {{"session", Value("c4")},
                            {"address", Value("carol")}}));
    scenarios.push_back(std::move(s));
  }
  {  // 5 — media reconfiguration under bandwidth change
    Scenario s;
    s.name = "s5-reconfigure";
    s.description = "stream retuned after bandwidth drops";
    s.steps = establish("c5", {"alice", "bob"});
    s.steps.push_back(set_context("bandwidth", Value(3.0)));
    s.steps.push_back(open_media("c5", "cam", "video"));  // opens high
    s.steps.push_back(set_context("bandwidth", Value(0.3)));
    s.steps.push_back(call("ncb.media.retune",
                           {{"session", Value("c5")},
                            {"id", Value("cam")},
                            {"quality", Value("low")}}));
    scenarios.push_back(std::move(s));
  }
  {  // 6 — adding a non-live file transfer to a call
    Scenario s;
    s.name = "s6-file-transfer";
    s.description = "file transfer stream alongside audio";
    s.steps = establish("c6", {"alice", "bob"});
    s.steps.push_back(open_media("c6", "voice", "audio"));
    s.steps.push_back(open_media("c6", "report", "file", /*live=*/false));
    s.steps.push_back(call("ncb.media.close", {{"session", Value("c6")},
                                               {"id", Value("report")}}));
    scenarios.push_back(std::move(s));
  }
  {  // 7 — link failure and autonomic recovery
    Scenario s;
    s.name = "s7-failure-recovery";
    s.description = "party link drops; broker recovers the party";
    s.steps = establish("c7", {"alice", "bob"});
    s.steps.push_back(open_media("c7", "voice", "audio"));
    s.steps.push_back(fault("c7", "bob"));
    scenarios.push_back(std::move(s));
  }
  {  // 8 — teardown and re-establishment
    Scenario s;
    s.name = "s8-reestablish";
    s.description = "full teardown followed by a fresh session";
    s.steps = establish("c8", {"alice", "bob"});
    s.steps.push_back(open_media("c8", "voice", "audio"));
    s.steps.push_back(
        call("ncb.session.teardown", {{"id", Value("c8")}}));
    auto again = establish("c8r", {"alice", "bob"});
    s.steps.insert(s.steps.end(), again.begin(), again.end());
    s.steps.push_back(open_media("c8r", "voice", "audio"));
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

}  // namespace

const std::vector<Scenario>& comm_scenarios() {
  static const std::vector<Scenario> scenarios = build_scenarios();
  return scenarios;
}

Status run_scenario(const Scenario& scenario, broker::BrokerApi& broker,
                    CommSessionService& service,
                    policy::ContextStore& context) {
  for (const ScenarioStep& step : scenario.steps) {
    switch (step.kind) {
      case ScenarioStep::Kind::kCall: {
        Result<model::Value> outcome = broker.call(step.call);
        if (!outcome.ok()) {
          return Status(outcome.status().code(),
                        scenario.name + " step '" + step.call.name +
                            "': " + outcome.status().message());
        }
        break;
      }
      case ScenarioStep::Kind::kInjectFault:
        // The service raises link.lost; the broker's recovery path (the
        // autonomic rule or the hand-coded subscription) runs inline.
        service.inject_link_failure(step.session, step.address);
        break;
      case ScenarioStep::Kind::kSetContext:
        context.set(step.context_key, step.context_value);
        break;
    }
  }
  return Status::Ok();
}

}  // namespace mdsm::comm
