#include "domains/comm/cml.hpp"

namespace mdsm::comm {

namespace {

using model::AttrType;
using model::Metamodel;
using model::Value;

Metamodel build() {
  Metamodel mm("cml");
  auto& element = mm.add_class("CommElement", "", /*is_abstract=*/true);
  element.add_attribute({.name = "label", .type = AttrType::kString});

  auto& connection = mm.add_class("Connection", "CommElement");
  connection.add_attribute({.name = "state",
                            .type = AttrType::kEnum,
                            .required = true,
                            .enum_literals = {"pending", "active", "closed"},
                            .default_value = Value("pending")});
  connection.add_attribute({.name = "topology",
                            .type = AttrType::kEnum,
                            .enum_literals = {"p2p", "conference"},
                            .default_value = Value("p2p")});
  connection.add_reference({.name = "participants",
                            .target_class = "Participant",
                            .containment = true,
                            .many = true});
  connection.add_reference({.name = "media",
                            .target_class = "Medium",
                            .containment = true,
                            .many = true});
  connection.add_reference({.name = "initiator",
                            .target_class = "Participant",
                            .containment = false,
                            .many = false});

  auto& participant = mm.add_class("Participant", "CommElement");
  participant.add_attribute(
      {.name = "address", .type = AttrType::kString, .required = true});
  participant.add_attribute({.name = "role",
                             .type = AttrType::kEnum,
                             .enum_literals = {"initiator", "invitee"},
                             .default_value = Value("invitee")});

  auto& medium = mm.add_class("Medium", "CommElement");
  medium.add_attribute({.name = "kind",
                        .type = AttrType::kEnum,
                        .required = true,
                        .enum_literals = {"audio", "video", "file"}});
  medium.add_attribute({.name = "quality",
                        .type = AttrType::kEnum,
                        .enum_literals = {"low", "standard", "high"},
                        .default_value = Value("standard")});
  medium.add_attribute({.name = "live",
                        .type = AttrType::kBool,
                        .default_value = Value(true)});
  return mm;
}

}  // namespace

model::MetamodelPtr cml_metamodel() {
  static model::MetamodelPtr instance = model::finalize_metamodel(build());
  return instance;
}

}  // namespace mdsm::comm
