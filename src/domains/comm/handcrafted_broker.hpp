// The handcrafted Network Communication Broker — the baseline of the
// paper's Exp-2: "compare the performance of the model-based version with
// that of the original layer of CVM presented in [22], [24]".
//
// This is a direct, non-model-based C++ implementation of exactly the
// behaviour the CVM middleware model describes: the same call
// vocabulary, the same context-driven quality selection, the same state
// and event bookkeeping, and — critically for Exp-1 — the same resource
// command sequences. Where the model-based broker interprets guarded
// action specs, this class is a hand-written dispatch.
#pragma once

#include "broker/broker_api.hpp"
#include "broker/resource_manager.hpp"
#include "broker/state_manager.hpp"
#include "domains/comm/comm_services.hpp"
#include "policy/context.hpp"
#include "runtime/event_bus.hpp"

namespace mdsm::comm {

class HandcraftedCommBroker final : public broker::BrokerApi {
 public:
  /// Installs a CommServiceAdapter over `service` and subscribes to
  /// resource events for the hand-coded recovery path.
  HandcraftedCommBroker(CommSessionService& service, runtime::EventBus& bus,
                        policy::ContextStore& context);
  ~HandcraftedCommBroker() override;

  using broker::BrokerApi::call;
  Result<model::Value> call(const broker::Call& call,
                            obs::RequestContext& context) override;
  [[nodiscard]] const broker::CommandTrace& trace() const override {
    return resources_.trace();
  }

  [[nodiscard]] broker::StateManager& state() noexcept { return state_; }
  [[nodiscard]] std::uint64_t recoveries() const noexcept {
    return recoveries_;
  }

 private:
  [[nodiscard]] std::string select_quality() const;

  runtime::EventBus* bus_;
  policy::ContextStore* context_;
  broker::ResourceManager resources_;
  broker::StateManager state_;
  std::uint64_t subscription_ = 0;
  std::uint64_t recoveries_ = 0;
};

/// A self-contained handcrafted NCB with its own simulated world —
/// the drop-in counterpart of a Cvm bundle for Exp-1/Exp-2 comparisons.
struct HandcraftedNcb {
  SimClock clock;
  net::Network network{clock};
  CommSessionService service{network};
  runtime::EventBus bus;
  policy::ContextStore context;
  HandcraftedCommBroker broker{service, bus, context};
};

inline std::unique_ptr<HandcraftedNcb> make_handcrafted_ncb() {
  return std::make_unique<HandcraftedNcb>();
}

}  // namespace mdsm::comm
