// The eight multimedia communication scenarios of the paper's broker
// evaluation (§VII-A): "A set of eight scenarios for multimedia
// communication, including session establishment, reconfiguration and
// recovery from failures, were implemented using both versions of the
// Broker layer."
//
// Each scenario is a deterministic step sequence that can be driven
// against ANY BrokerApi (the model-based NCB or the handcrafted one), so
// Exp-1 compares their traces and Exp-2 their latency on identical work.
#pragma once

#include <string>
#include <vector>

#include "broker/broker_api.hpp"
#include "domains/comm/comm_services.hpp"
#include "policy/context.hpp"

namespace mdsm::comm {

struct ScenarioStep {
  enum class Kind {
    kCall,         ///< issue a broker call
    kInjectFault,  ///< drop a party's links in the service (async event)
    kSetContext,   ///< change a context variable (e.g. bandwidth)
  };
  Kind kind{};
  broker::Call call;                 // kCall
  std::string session;               // kInjectFault
  std::string address;               // kInjectFault
  std::string context_key;           // kSetContext
  model::Value context_value;        // kSetContext
};

struct Scenario {
  std::string name;
  std::string description;
  std::vector<ScenarioStep> steps;
};

/// The eight scenarios, fixed order.
const std::vector<Scenario>& comm_scenarios();

/// Drive a scenario. `service` is the simulated resource behind `broker`
/// (fault injection goes directly to it); `context` is the broker-side
/// context store. Fails on the first broken step.
Status run_scenario(const Scenario& scenario, broker::BrokerApi& broker,
                    CommSessionService& service,
                    policy::ContextStore& context);

}  // namespace mdsm::comm
