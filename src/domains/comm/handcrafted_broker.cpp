#include "domains/comm/handcrafted_broker.hpp"

namespace mdsm::comm {

using model::Value;

HandcraftedCommBroker::HandcraftedCommBroker(CommSessionService& service,
                                             runtime::EventBus& bus,
                                             policy::ContextStore& context)
    : bus_(&bus), context_(&context), resources_(bus) {
  auto adapter = std::make_unique<CommServiceAdapter>(service, "comm");
  // The adapter registry cannot fail here (fresh manager, unique name).
  (void)resources_.add_adapter(std::move(adapter));
  // Hand-coded failure recovery, mirroring the autonomic rule the
  // model-based broker loads from its middleware model.
  subscription_ = bus.subscribe(
      "resource.link.lost", [this](const runtime::Event& event) {
        Value session = context_->get("active.session");
        if (!session.is_string() || !event.payload.is_string()) return;
        broker::Args args;
        args["session"] = session;
        args["address"] = event.payload;
        if (resources_.invoke("comm", "party.reconnect", args).ok()) {
          ++recoveries_;
          bus_->publish("ncb.party.recovered", "handcrafted-ncb",
                        event.payload);
        }
      });
}

HandcraftedCommBroker::~HandcraftedCommBroker() {
  bus_->unsubscribe(subscription_);
}

std::string HandcraftedCommBroker::select_quality() const {
  // Identical thresholds to the guarded actions of the middleware model.
  Value bandwidth = context_->get("bandwidth");
  double value = bandwidth.is_number() ? bandwidth.as_number() : 1.0;
  if (value >= 2.0) return "high";
  if (value < 0.5) return "low";
  return "standard";
}

Result<Value> HandcraftedCommBroker::call(const broker::Call& call,
                                          obs::RequestContext& context) {
  // The baseline participates in request tracing on the same terms as the
  // model-based broker (Exp-2 compares like with like).
  obs::ScopedSpan span(context, "broker.call", call.name);
  auto arg = [&call](std::string_view key) -> Value {
    auto it = call.args.find(key);
    return it == call.args.end() ? Value{} : it->second;
  };
  if (call.name == "ncb.session.create") {
    broker::Args args;
    args["id"] = arg("id");
    Result<Value> invoked = resources_.invoke("comm", "session.create", args);
    if (!invoked.ok()) return invoked;
    state_.set("sessions.active", Value(state_.get("sessions.active").is_int()
                                            ? state_.get("sessions.active").as_int() + 1
                                            : 1));
    context_->set("active.session", arg("id"));
    bus_->publish("ncb.session.created", "handcrafted-ncb", arg("id"));
    return invoked;
  }
  if (call.name == "ncb.session.teardown") {
    broker::Args args;
    args["id"] = arg("id");
    Result<Value> invoked =
        resources_.invoke("comm", "session.teardown", args);
    if (!invoked.ok()) return invoked;
    bus_->publish("ncb.session.closed", "handcrafted-ncb", arg("id"));
    return invoked;
  }
  if (call.name == "ncb.party.add") {
    broker::Args args;
    args["session"] = arg("session");
    args["address"] = arg("address");
    return resources_.invoke("comm", "party.add", args);
  }
  if (call.name == "ncb.party.remove") {
    broker::Args args;
    args["session"] = arg("session");
    args["address"] = arg("address");
    return resources_.invoke("comm", "party.remove", args);
  }
  if (call.name == "ncb.party.reconnect") {
    broker::Args args;
    args["session"] = arg("session");
    args["address"] = arg("address");
    return resources_.invoke("comm", "party.reconnect", args);
  }
  if (call.name == "ncb.media.open") {
    broker::Args args;
    args["session"] = arg("session");
    args["id"] = arg("id");
    args["kind"] = arg("kind");
    args["live"] = arg("live");
    args["quality"] = Value(select_quality());
    return resources_.invoke("comm", "media.open", args);
  }
  if (call.name == "ncb.media.close") {
    broker::Args args;
    args["session"] = arg("session");
    args["id"] = arg("id");
    return resources_.invoke("comm", "media.close", args);
  }
  if (call.name == "ncb.media.retune") {
    broker::Args args;
    args["session"] = arg("session");
    args["id"] = arg("id");
    args["quality"] = arg("quality");
    return resources_.invoke("comm", "media.retune", args);
  }
  return NotFound("handcrafted NCB has no operation '" + call.name + "'");
}

}  // namespace mdsm::comm
