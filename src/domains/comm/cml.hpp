// CML — the Communication Modeling Language (paper §IV-A, [9][10]): a
// DSML for user-to-user communication. Schemas describe the
// configuration of a communication (control) and the media that flow in
// it (data); instances bind them to concrete participants and streams.
//
// This reproduction models the instance level (what the CVM executes):
// a Connection with Participants and Media streams, each medium with a
// kind, quality and liveness.
#pragma once

#include "model/metamodel.hpp"

namespace mdsm::comm {

/// The finalized CML metamodel (singleton).
///
/// Classes:
///   Connection   — state: pending|active|closed; contains participants
///                  and media; references the initiating participant
///   Participant  — address (reachable endpoint), role: initiator|invitee
///   Medium       — kind: audio|video|file, quality: low|standard|high,
///                  live: bool (stream vs transfer)
model::MetamodelPtr cml_metamodel();

}  // namespace mdsm::comm
