// Simulated communication services — the substitute for the real
// streaming/VoIP services the CVM's Network Communication Broker drives
// (paper [22][24]). Sessions are negotiated by exchanging handshake
// messages between participant endpoints over the simulated network, so
// every service operation does genuine (deterministic) signaling work:
// allocation, multi-party offer/answer rounds, and state bookkeeping.
//
// The service raises asynchronous events (party joined, link lost,
// stream degraded) through the adapter into the broker layer.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "broker/resource_manager.hpp"
#include "common/status.hpp"
#include "net/network.hpp"

namespace mdsm::comm {

/// One media stream within a session.
struct Stream {
  std::string id;
  std::string kind;     ///< audio|video|file
  std::string quality;  ///< low|standard|high
  bool live = true;
  bool open = false;
};

struct Session {
  std::string id;
  std::set<std::string> parties;  ///< endpoint names
  std::map<std::string, Stream, std::less<>> streams;
  bool active = false;
};

/// Cost model for the simulated services. Real communication services
/// spend most of each control operation in SDP-style negotiation,
/// (de)serialization and codec setup; the simulator reproduces that cost
/// with a deterministic compute kernel per signaling message so that
/// relative overheads measured against it (Exp-2) are meaningful.
struct CommServiceConfig {
  /// FNV-hash iterations per signaling exchange (~ns each).
  std::size_t signaling_work = 13000;
};

/// The service itself. Owns its endpoints on the shared simulated
/// network; every participant address becomes an endpoint.
class CommSessionService {
 public:
  explicit CommSessionService(net::Network& network,
                              CommServiceConfig config = {});

  Status create_session(const std::string& session_id);
  Status teardown_session(const std::string& session_id);

  /// Registers the address as a network endpoint (idempotent) and runs a
  /// join handshake against every current party.
  Status add_party(const std::string& session_id, const std::string& address);
  Status remove_party(const std::string& session_id,
                      const std::string& address);

  /// Opens a stream: offer/answer exchange with every party.
  Status open_stream(const std::string& session_id, const std::string& stream_id,
                     const std::string& kind, const std::string& quality,
                     bool live);
  Status close_stream(const std::string& session_id,
                      const std::string& stream_id);
  /// Renegotiates quality on a live stream.
  Status retune_stream(const std::string& session_id,
                       const std::string& stream_id,
                       const std::string& quality);

  /// Re-runs the handshake for a party after a link failure.
  Status reconnect_party(const std::string& session_id,
                         const std::string& address);

  /// Failure injection: drops the party's links; the service raises a
  /// "link.lost" event through `event_sink`.
  void inject_link_failure(const std::string& session_id,
                           const std::string& address);

  using EventSink =
      std::function<void(const std::string& topic, model::Value payload)>;
  void set_event_sink(EventSink sink) { sink_ = std::move(sink); }

  [[nodiscard]] const Session* find_session(std::string_view id) const;
  [[nodiscard]] std::size_t session_count() const noexcept {
    return sessions_.size();
  }
  [[nodiscard]] std::uint64_t handshakes() const noexcept {
    return handshakes_;
  }

 private:
  Status handshake(Session& session, const std::string& address,
                   const std::string& topic);
  Result<Session*> session_for(const std::string& session_id);
  void ensure_endpoint(const std::string& address);
  void negotiation_work() const;

  net::Network* network_;
  CommServiceConfig config_;
  std::map<std::string, Session, std::less<>> sessions_;
  EventSink sink_;
  std::uint64_t handshakes_ = 0;
};

/// ResourceAdapter exposing the service as the broker resource "comm".
/// Command vocabulary (the atomic commands of the NCB):
///   session.create(id)                  session.teardown(id)
///   party.add(session,address)          party.remove(session,address)
///   media.open(session,id,kind,quality,live)
///   media.close(session,id)             media.retune(session,id,quality)
///   party.reconnect(session,address)
class CommServiceAdapter final : public broker::ResourceAdapter {
 public:
  explicit CommServiceAdapter(CommSessionService& service,
                              std::string name = "comm");

  Result<model::Value> execute(const std::string& command,
                               const broker::Args& args) override;

 private:
  CommSessionService* service_;
};

}  // namespace mdsm::comm
