#include "domains/comm/cvm.hpp"

namespace mdsm::comm {

namespace {

// The CVM's middleware model. Broker actions replicate the behaviour of
// the original handcrafted NCB (src/domains/comm/handcrafted_broker.*)
// so Exp-1 can compare command traces; quality selection is expressed as
// guarded action alternatives instead of an if/else chain.
constexpr std::string_view kCvmMiddlewareModel = R"mw(
model cvm conforms mdsm

object MiddlewarePlatform cvm {
  name = "cvm"
  domain = "communication"
  child ui UiLayerSpec uci { dsml = "cml" }

  child broker BrokerLayerSpec ncb {
    # ---- session lifecycle ------------------------------------------
    child actions ActionSpec a-create {
      name = "session-create"
      child steps StepSpec cs1 {
        op = invoke a = "comm" b = "session.create"
        child args ArgSpec cs1a { key = "id" value = "$id" }
      }
      child steps StepSpec cs2 {
        op = set-context a = "active.session"
        child args ArgSpec cs2a { key = "value" value = "$id" }
      }
      child steps StepSpec cs3 {
        op = emit a = "ncb.session.created"
        child args ArgSpec cs3a { key = "payload" value = "$id" }
      }
    }
    child actions ActionSpec a-teardown {
      name = "session-teardown"
      child steps StepSpec ts1 {
        op = invoke a = "comm" b = "session.teardown"
        child args ArgSpec ts1a { key = "id" value = "$id" }
      }
      child steps StepSpec ts2 {
        op = emit a = "ncb.session.closed"
        child args ArgSpec ts2a { key = "payload" value = "$id" }
      }
    }
    # ---- party management -------------------------------------------
    child actions ActionSpec a-party-add {
      name = "party-add"
      child steps StepSpec pa1 {
        op = invoke a = "comm" b = "party.add"
        child args ArgSpec pa1a { key = "session" value = "$session" }
        child args ArgSpec pa1b { key = "address" value = "$address" }
      }
    }
    child actions ActionSpec a-party-remove {
      name = "party-remove"
      child steps StepSpec pr1 {
        op = invoke a = "comm" b = "party.remove"
        child args ArgSpec pr1a { key = "session" value = "$session" }
        child args ArgSpec pr1b { key = "address" value = "$address" }
      }
    }
    child actions ActionSpec a-party-reconnect {
      name = "party-reconnect"
      child steps StepSpec pc1 {
        op = invoke a = "comm" b = "party.reconnect"
        child args ArgSpec pc1a { key = "session" value = "$session" }
        child args ArgSpec pc1b { key = "address" value = "$address" }
      }
    }
    # ---- media management: quality chosen by context guards ----------
    child actions ActionSpec a-media-high {
      name = "media-open-high"
      guard = "bandwidth >= 2.0"
      priority = 10
      child steps StepSpec mh1 {
        op = invoke a = "comm" b = "media.open"
        child args ArgSpec mh1a { key = "session" value = "$session" }
        child args ArgSpec mh1b { key = "id" value = "$id" }
        child args ArgSpec mh1c { key = "kind" value = "$kind" }
        child args ArgSpec mh1d { key = "live" value = "$live" }
        child args ArgSpec mh1e { key = "quality" value = "high" }
      }
    }
    child actions ActionSpec a-media-low {
      name = "media-open-low"
      guard = "defined(bandwidth) && bandwidth < 0.5"
      priority = 10
      child steps StepSpec ml1 {
        op = invoke a = "comm" b = "media.open"
        child args ArgSpec ml1a { key = "session" value = "$session" }
        child args ArgSpec ml1b { key = "id" value = "$id" }
        child args ArgSpec ml1c { key = "kind" value = "$kind" }
        child args ArgSpec ml1d { key = "live" value = "$live" }
        child args ArgSpec ml1e { key = "quality" value = "low" }
      }
    }
    child actions ActionSpec a-media-std {
      name = "media-open-std"
      priority = 0
      child steps StepSpec ms1 {
        op = invoke a = "comm" b = "media.open"
        child args ArgSpec ms1a { key = "session" value = "$session" }
        child args ArgSpec ms1b { key = "id" value = "$id" }
        child args ArgSpec ms1c { key = "kind" value = "$kind" }
        child args ArgSpec ms1d { key = "live" value = "$live" }
        child args ArgSpec ms1e { key = "quality" value = "standard" }
      }
    }
    child actions ActionSpec a-media-close {
      name = "media-close"
      child steps StepSpec mc1 {
        op = invoke a = "comm" b = "media.close"
        child args ArgSpec mc1a { key = "session" value = "$session" }
        child args ArgSpec mc1b { key = "id" value = "$id" }
      }
    }
    child actions ActionSpec a-media-retune {
      name = "media-retune"
      child steps StepSpec mr1 {
        op = invoke a = "comm" b = "media.retune"
        child args ArgSpec mr1a { key = "session" value = "$session" }
        child args ArgSpec mr1b { key = "id" value = "$id" }
        child args ArgSpec mr1c { key = "quality" value = "$quality" }
      }
    }
    # ---- handlers -----------------------------------------------------
    child handlers HandlerSpec h1 { signal = "ncb.session.create" actions -> a-create }
    child handlers HandlerSpec h2 { signal = "ncb.session.teardown" actions -> a-teardown }
    child handlers HandlerSpec h3 { signal = "ncb.party.add" actions -> a-party-add }
    child handlers HandlerSpec h4 { signal = "ncb.party.remove" actions -> a-party-remove }
    child handlers HandlerSpec h5 { signal = "ncb.party.reconnect" actions -> a-party-reconnect }
    child handlers HandlerSpec h6 {
      signal = "ncb.media.open"
      actions -> a-media-high, a-media-low, a-media-std
    }
    child handlers HandlerSpec h7 { signal = "ncb.media.close" actions -> a-media-close }
    child handlers HandlerSpec h8 { signal = "ncb.media.retune" actions -> a-media-retune }
    # ---- autonomic link recovery ---------------------------------------
    child symptoms SymptomSpec sy1 {
      name = "link-lost"
      topic = "resource.link.lost"
      request = "recover-party"
    }
    child plans ChangePlanSpec pl1 {
      name = "reconnect-party"
      request = "recover-party"
      child steps StepSpec rp1 {
        op = invoke a = "comm" b = "party.reconnect"
        child args ArgSpec rp1a { key = "session" value = "$ctx:active.session" }
        child args ArgSpec rp1b { key = "address" value = "$event.payload" }
      }
      child steps StepSpec rp2 {
        op = emit a = "ncb.party.recovered"
        child args ArgSpec rp2a { key = "payload" value = "$event.payload" }
      }
    }
    child resources ResourceSpec r1 { name = "comm" }
  }

  child controller ControllerLayerSpec ucm {
    # ---- DSCs (domain classifier vocabulary) ---------------------------
    child dscs DscSpec d1 { name = "comm.connect" category = "session" }
    child dscs DscSpec d2 { name = "media.establish" category = "media" }
    child dscs DscSpec d3 { name = "net.path" category = "network" }
    # ---- procedures (Case 2 DSK) ---------------------------------------
    child procedures ProcedureSpec p1 {
      name = "connect-std"
      classifier = "comm.connect"
      cost = 1.0
      child units EuSpec p1u {
        child steps StepSpec p1s {
          op = broker-call a = "ncb.session.create"
          child args ArgSpec p1sa { key = "id" value = "$id" }
        }
      }
    }
    child procedures ProcedureSpec p2 {
      name = "connect-traced"
      classifier = "comm.connect"
      cost = 2.0
      guard = "defined(debug.trace)"
      child units EuSpec p2u {
        child steps StepSpec p2s1 {
          op = emit a = "ucm.trace"
          child args ArgSpec p2s1a { key = "payload" value = "$id" }
        }
        child steps StepSpec p2s2 {
          op = broker-call a = "ncb.session.create"
          child args ArgSpec p2s2a { key = "id" value = "$id" }
        }
      }
    }
    child procedures ProcedureSpec p3 {
      name = "media-via-path"
      classifier = "media.establish"
      dependencies = ["net.path"]
      child units EuSpec p3u {
        child steps StepSpec p3s1 { op = call-dep a = "net.path" }
        child steps StepSpec p3s2 {
          op = broker-call a = "ncb.media.open"
          child args ArgSpec p3s2a { key = "session" value = "$session" }
          child args ArgSpec p3s2b { key = "id" value = "$id" }
          child args ArgSpec p3s2c { key = "kind" value = "$kind" }
          child args ArgSpec p3s2d { key = "live" value = "$live" }
        }
      }
    }
    child procedures ProcedureSpec p4 {
      name = "path-direct"
      classifier = "net.path"
      cost = 1.0
      child units EuSpec p4u {
        child steps StepSpec p4s {
          op = set-mem a = "path.mode"
          child args ArgSpec p4sa { key = "value" value = "direct" }
        }
      }
    }
    child procedures ProcedureSpec p5 {
      name = "path-relay"
      classifier = "net.path"
      cost = 4.0
      guard = "defined(relay.available)"
      child units EuSpec p5u {
        child steps StepSpec p5s {
          op = set-mem a = "path.mode"
          child args ArgSpec p5sa { key = "value" value = "relay" }
        }
      }
    }
    # ---- Case 2 command → DSC mappings ---------------------------------
    child mappings CommandMappingSpec m1 { command = "ncb.session.create" dsc = "comm.connect" }
    child mappings CommandMappingSpec m2 { command = "ncb.media.open" dsc = "media.establish" }
    # ---- Case 1 pass-through actions ------------------------------------
    child actions ActionSpec ca1 {
      name = "fwd-teardown"
      child steps StepSpec ca1s {
        op = broker-call a = "ncb.session.teardown"
        child args ArgSpec ca1sa { key = "id" value = "$id" }
      }
    }
    child actions ActionSpec ca2 {
      name = "fwd-party-add"
      child steps StepSpec ca2s {
        op = broker-call a = "ncb.party.add"
        child args ArgSpec ca2sa { key = "session" value = "$session" }
        child args ArgSpec ca2sb { key = "address" value = "$address" }
      }
    }
    child actions ActionSpec ca3 {
      name = "fwd-party-remove"
      child steps StepSpec ca3s {
        op = broker-call a = "ncb.party.remove"
        child args ArgSpec ca3sa { key = "session" value = "$session" }
        child args ArgSpec ca3sb { key = "address" value = "$address" }
      }
    }
    child actions ActionSpec ca4 {
      name = "fwd-media-close"
      child steps StepSpec ca4s {
        op = broker-call a = "ncb.media.close"
        child args ArgSpec ca4sa { key = "session" value = "$session" }
        child args ArgSpec ca4sb { key = "id" value = "$id" }
      }
    }
    child actions ActionSpec ca5 {
      name = "fwd-media-retune"
      child steps StepSpec ca5s {
        op = broker-call a = "ncb.media.retune"
        child args ArgSpec ca5sa { key = "session" value = "$session" }
        child args ArgSpec ca5sb { key = "id" value = "$id" }
        child args ArgSpec ca5sc { key = "quality" value = "$quality" }
      }
    }
    child bindings BindingSpec b1 { command = "ncb.session.teardown" actions -> ca1 }
    child bindings BindingSpec b2 { command = "ncb.party.add" actions -> ca2 }
    child bindings BindingSpec b3 { command = "ncb.party.remove" actions -> ca3 }
    child bindings BindingSpec b4 { command = "ncb.media.close" actions -> ca4 }
    child bindings BindingSpec b5 { command = "ncb.media.retune" actions -> ca5 }
  }

  # ---- SE: CML lifecycle semantics as an LTS ---------------------------
  child synthesis SynthesisLayerSpec se {
    initial_state = "initial"
    child transitions TransitionSpec t1 {
      from = "initial" to = "live" kind = add-object class = "Connection"
      child commands CommandTemplateSpec t1c {
        name = "ncb.session.create"
        child args ArgSpec t1ca { key = "id" value = "%id" }
      }
    }
    child transitions TransitionSpec t2 {
      from = "live" to = "done" kind = set-attribute class = "Connection"
      feature = "state" value = "closed" vtype = string
      child commands CommandTemplateSpec t2c {
        name = "ncb.session.teardown"
        child args ArgSpec t2ca { key = "id" value = "%id" }
      }
    }
    child transitions TransitionSpec t3 {
      from = "initial" to = "joined" kind = add-object class = "Participant"
      child commands CommandTemplateSpec t3c {
        name = "ncb.party.add"
        child args ArgSpec t3ca { key = "session" value = "%parent" }
        child args ArgSpec t3cb { key = "address" value = "%id" }
      }
    }
    child transitions TransitionSpec t4 {
      from = "joined" to = "gone" kind = remove-object class = "Participant"
      child commands CommandTemplateSpec t4c {
        name = "ncb.party.remove"
        child args ArgSpec t4ca { key = "session" value = "%parent" }
        child args ArgSpec t4cb { key = "address" value = "%id" }
      }
    }
    child transitions TransitionSpec t5 {
      from = "initial" to = "configuring" kind = add-object class = "Medium"
      child commands CommandTemplateSpec t5c {
        name = "ncb.media.open"
        child args ArgSpec t5ca { key = "session" value = "%parent" }
        child args ArgSpec t5cb { key = "id" value = "%id" }
        child args ArgSpec t5cc { key = "kind" value = "%attr:kind" }
        child args ArgSpec t5cd { key = "live" value = "%attr:live" }
      }
    }
    # Absorb the creation-time quality default without a command, then
    # treat later quality changes as retunes.
    child transitions TransitionSpec t6 {
      from = "configuring" to = "streaming" kind = set-attribute
      class = "Medium" feature = "quality"
    }
    child transitions TransitionSpec t7 {
      from = "streaming" to = "streaming" kind = set-attribute
      class = "Medium" feature = "quality"
      child commands CommandTemplateSpec t7c {
        name = "ncb.media.retune"
        child args ArgSpec t7ca { key = "session" value = "%parent" }
        child args ArgSpec t7cb { key = "id" value = "%id" }
        child args ArgSpec t7cc { key = "quality" value = "%new" }
      }
    }
    child transitions TransitionSpec t8 {
      from = "streaming" to = "closed" kind = remove-object class = "Medium"
      child commands CommandTemplateSpec t8c {
        name = "ncb.media.close"
        child args ArgSpec t8ca { key = "session" value = "%parent" }
        child args ArgSpec t8cb { key = "id" value = "%id" }
      }
    }
    child transitions TransitionSpec t9 {
      from = "configuring" to = "closed" kind = remove-object class = "Medium"
      child commands CommandTemplateSpec t9c {
        name = "ncb.media.close"
        child args ArgSpec t9ca { key = "session" value = "%parent" }
        child args ArgSpec t9cb { key = "id" value = "%id" }
      }
    }
  }
}
)mw";

}  // namespace

std::string_view cvm_middleware_model_text() { return kCvmMiddlewareModel; }

Result<std::unique_ptr<Cvm>> make_cvm() {
  auto cvm = std::make_unique<Cvm>();
  core::PlatformConfig config;
  config.dsml = cml_metamodel();
  // Request traces/deadlines run on the CVM's simulated clock, so tests
  // can drive timeout behaviour deterministically.
  config.clock = &cvm->clock;
  Result<std::unique_ptr<core::Platform>> platform =
      core::Platform::assemble_from_text(kCvmMiddlewareModel, config);
  if (!platform.ok()) return platform.status();
  cvm->platform = std::move(platform.value());
  MDSM_RETURN_IF_ERROR(cvm->platform->add_resource_adapter(
      std::make_unique<CommServiceAdapter>(cvm->service, "comm")));
  MDSM_RETURN_IF_ERROR(cvm->platform->start());
  return cvm;
}

}  // namespace mdsm::comm
