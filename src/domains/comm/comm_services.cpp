#include "domains/comm/comm_services.hpp"

#include "common/log.hpp"

namespace mdsm::comm {

using model::Value;

CommSessionService::CommSessionService(net::Network& network,
                                       CommServiceConfig config)
    : network_(&network), config_(config) {}

void CommSessionService::negotiation_work() const {
  // Deterministic stand-in for SDP negotiation / (de)serialization /
  // codec setup cost; volatile sink defeats dead-code elimination.
  static volatile std::uint64_t sink = 0;
  std::uint64_t hash = 1469598103934665603ull;
  for (std::size_t i = 0; i < config_.signaling_work; ++i) {
    hash ^= i;
    hash *= 1099511628211ull;
  }
  sink = sink + hash;
}

Result<Session*> CommSessionService::session_for(
    const std::string& session_id) {
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return NotFound("no session '" + session_id + "'");
  }
  return &it->second;
}

void CommSessionService::ensure_endpoint(const std::string& address) {
  if (network_->find_endpoint(address) == nullptr) {
    auto endpoint = network_->create_endpoint(address);
    if (endpoint.ok()) {
      // Participants answer every offer; the handshake counts replies.
      endpoint.value()->set_handler([this, address](const net::Message& m) {
        if (m.topic.rfind("offer.", 0) == 0) {
          (void)network_->send(address, m.from, "answer." + m.topic.substr(6),
                               m.payload);
        }
      });
    }
  }
}

Status CommSessionService::handshake(Session& session,
                                     const std::string& address,
                                     const std::string& topic) {
  // Offer/answer with every other party; the network simulation applies
  // latency per hop and the service waits for the exchanges to settle.
  for (const std::string& peer : session.parties) {
    if (peer == address) continue;
    MDSM_RETURN_IF_ERROR(
        network_->send(address, peer, "offer." + topic, Value(session.id)));
  }
  network_->run_until_idle();
  negotiation_work();
  ++handshakes_;
  return Status::Ok();
}

Status CommSessionService::create_session(const std::string& session_id) {
  if (sessions_.contains(session_id)) {
    return AlreadyExists("session '" + session_id + "' already exists");
  }
  Session session;
  session.id = session_id;
  session.active = true;
  sessions_[session_id] = std::move(session);
  negotiation_work();
  return Status::Ok();
}

Status CommSessionService::teardown_session(const std::string& session_id) {
  Result<Session*> session = session_for(session_id);
  if (!session.ok()) return session.status();
  // Close every stream first (signaling), then drop the session.
  for (auto& [stream_id, stream] : (*session)->streams) {
    if (stream.open) {
      for (const std::string& party : (*session)->parties) {
        (void)network_->send(party, party, "teardown." + stream_id, {});
      }
    }
  }
  network_->run_until_idle();
  negotiation_work();
  sessions_.erase(session_id);
  return Status::Ok();
}

Status CommSessionService::add_party(const std::string& session_id,
                                     const std::string& address) {
  Result<Session*> session = session_for(session_id);
  if (!session.ok()) return session.status();
  if ((*session)->parties.contains(address)) {
    return AlreadyExists("party '" + address + "' already in session");
  }
  ensure_endpoint(address);
  (*session)->parties.insert(address);
  MDSM_RETURN_IF_ERROR(handshake(**session, address, "join"));
  if (sink_) sink_("party.joined", Value(address));
  return Status::Ok();
}

Status CommSessionService::remove_party(const std::string& session_id,
                                        const std::string& address) {
  Result<Session*> session = session_for(session_id);
  if (!session.ok()) return session.status();
  if ((*session)->parties.erase(address) == 0) {
    return NotFound("party '" + address + "' not in session");
  }
  MDSM_RETURN_IF_ERROR(handshake(**session, address, "leave"));
  if (sink_) sink_("party.left", Value(address));
  return Status::Ok();
}

Status CommSessionService::open_stream(const std::string& session_id,
                                       const std::string& stream_id,
                                       const std::string& kind,
                                       const std::string& quality, bool live) {
  Result<Session*> session = session_for(session_id);
  if (!session.ok()) return session.status();
  if ((*session)->parties.size() < 2) {
    return FailedPrecondition("stream needs at least two parties");
  }
  auto [it, inserted] = (*session)->streams.emplace(
      stream_id, Stream{stream_id, kind, quality, live, true});
  if (!inserted) {
    return AlreadyExists("stream '" + stream_id + "' already open");
  }
  // Media setup: every party offers to every other (full mesh for
  // conferences, one round for p2p).
  for (const std::string& party : (*session)->parties) {
    MDSM_RETURN_IF_ERROR(handshake(**session, party, "media." + stream_id));
  }
  return Status::Ok();
}

Status CommSessionService::close_stream(const std::string& session_id,
                                        const std::string& stream_id) {
  Result<Session*> session = session_for(session_id);
  if (!session.ok()) return session.status();
  auto it = (*session)->streams.find(stream_id);
  if (it == (*session)->streams.end() || !it->second.open) {
    return NotFound("stream '" + stream_id + "' not open");
  }
  (*session)->streams.erase(it);
  network_->run_until_idle();
  negotiation_work();
  return Status::Ok();
}

Status CommSessionService::retune_stream(const std::string& session_id,
                                         const std::string& stream_id,
                                         const std::string& quality) {
  Result<Session*> session = session_for(session_id);
  if (!session.ok()) return session.status();
  auto it = (*session)->streams.find(stream_id);
  if (it == (*session)->streams.end()) {
    return NotFound("stream '" + stream_id + "' not open");
  }
  it->second.quality = quality;
  // Renegotiation: one offer/answer round.
  for (const std::string& party : (*session)->parties) {
    MDSM_RETURN_IF_ERROR(handshake(**session, party, "retune." + stream_id));
    break;  // initiating party only
  }
  return Status::Ok();
}

Status CommSessionService::reconnect_party(const std::string& session_id,
                                           const std::string& address) {
  Result<Session*> session = session_for(session_id);
  if (!session.ok()) return session.status();
  if (!(*session)->parties.contains(address)) {
    return NotFound("party '" + address + "' not in session");
  }
  // Restore links, then re-run the join handshake.
  for (const std::string& peer : (*session)->parties) {
    if (peer != address) network_->set_link_down(address, peer, false);
  }
  MDSM_RETURN_IF_ERROR(handshake(**session, address, "rejoin"));
  if (sink_) sink_("party.reconnected", Value(address));
  return Status::Ok();
}

void CommSessionService::inject_link_failure(const std::string& session_id,
                                             const std::string& address) {
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  for (const std::string& peer : it->second.parties) {
    if (peer != address) network_->set_link_down(address, peer, true);
  }
  if (sink_) sink_("link.lost", Value(address));
}

const Session* CommSessionService::find_session(std::string_view id) const {
  auto it = sessions_.find(std::string(id));
  return it == sessions_.end() ? nullptr : &it->second;
}

CommServiceAdapter::CommServiceAdapter(CommSessionService& service,
                                       std::string name)
    : ResourceAdapter(std::move(name)), service_(&service) {
  service_->set_event_sink(
      [this](const std::string& topic, Value payload) {
        raise_event(topic, std::move(payload));
      });
}

Result<Value> CommServiceAdapter::execute(const std::string& command,
                                          const broker::Args& args) {
  auto arg = [&args](std::string_view key) -> std::string {
    auto it = args.find(key);
    return it != args.end() && it->second.is_string() ? it->second.as_string()
                                                      : std::string{};
  };
  Status status;
  if (command == "session.create") {
    status = service_->create_session(arg("id"));
  } else if (command == "session.teardown") {
    status = service_->teardown_session(arg("id"));
  } else if (command == "party.add") {
    status = service_->add_party(arg("session"), arg("address"));
  } else if (command == "party.remove") {
    status = service_->remove_party(arg("session"), arg("address"));
  } else if (command == "media.open") {
    bool live = true;
    auto it = args.find("live");
    if (it != args.end() && it->second.is_bool()) live = it->second.as_bool();
    std::string quality = arg("quality");
    if (quality.empty()) quality = "standard";
    status = service_->open_stream(arg("session"), arg("id"), arg("kind"),
                                   quality, live);
  } else if (command == "media.close") {
    status = service_->close_stream(arg("session"), arg("id"));
  } else if (command == "media.retune") {
    status = service_->retune_stream(arg("session"), arg("id"),
                                     arg("quality"));
  } else if (command == "party.reconnect") {
    status = service_->reconnect_party(arg("session"), arg("address"));
  } else {
    return NotFound("comm service has no command '" + command + "'");
  }
  if (!status.ok()) return status;
  return Value(true);
}

}  // namespace mdsm::comm
