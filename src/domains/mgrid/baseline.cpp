#include "domains/mgrid/baseline.hpp"

namespace mdsm::mgrid {

using model::Value;

HandcraftedMgridBroker::HandcraftedMgridBroker(MicrogridPlant& plant,
                                               runtime::EventBus& bus,
                                               policy::ContextStore& context)
    : bus_(&bus), context_(&context), resources_(bus) {
  (void)resources_.add_adapter(std::make_unique<PlantAdapter>(plant, "plant"));
  // Hand-coded rebalancing, mirroring the model-loaded autonomic rules:
  // storage discharge preferred, shedding a non-critical load as fallback.
  subscription_ =
      bus.subscribe("resource.imbalance", [this](const runtime::Event&) {
        Value storage = context_->get("storage.main");
        if (storage.is_string()) {
          broker::Args args;
          args["id"] = storage;
          args["mode"] = Value("discharge");
          if (resources_.invoke("plant", "storage.mode", args).ok()) {
            ++rebalances_;
          }
          return;
        }
        Value sheddable = context_->get("load.sheddable");
        if (sheddable.is_string()) {
          broker::Args args;
          args["id"] = sheddable;
          if (resources_.invoke("plant", "load.shed", args).ok()) {
            ++rebalances_;
          }
        }
      });
}

HandcraftedMgridBroker::~HandcraftedMgridBroker() {
  bus_->unsubscribe(subscription_);
}

Result<Value> HandcraftedMgridBroker::call(const broker::Call& call,
                                           obs::RequestContext& context) {
  // The baseline participates in request tracing on the same terms as the
  // model-based broker (Exp-1/2 compare like with like).
  obs::ScopedSpan span(context, "broker.call", call.name);
  auto arg = [&call](std::string_view key) -> Value {
    auto it = call.args.find(key);
    return it == call.args.end() ? Value{} : it->second;
  };
  auto forward = [&](const char* command,
                     std::initializer_list<const char*> keys) {
    broker::Args args;
    for (const char* key : keys) args[key] = arg(key);
    return resources_.invoke("plant", command, args);
  };
  if (call.name == "mgv.gen.provision") {
    return forward("gen.add", {"id", "capacity", "renewable"});
  }
  if (call.name == "mgv.gen.start") return forward("gen.start", {"id"});
  if (call.name == "mgv.gen.stop") return forward("gen.stop", {"id"});
  if (call.name == "mgv.gen.set") return forward("gen.set", {"id", "kw"});
  if (call.name == "mgv.load.provision") {
    return forward("load.add", {"id", "demand", "critical"});
  }
  if (call.name == "mgv.load.connect") return forward("load.connect", {"id"});
  if (call.name == "mgv.load.shed") return forward("load.shed", {"id"});
  if (call.name == "mgv.storage.provision") {
    return forward("storage.add", {"id", "capacity"});
  }
  if (call.name == "mgv.storage.mode") {
    return forward("storage.mode", {"id", "mode"});
  }
  if (call.name == "mgv.device.remove") {
    return forward("device.remove", {"id"});
  }
  if (call.name == "mgv.plant.step") return forward("plant.step", {"hours"});
  if (call.name == "mgv.grid.mode") {
    context_->set("grid.mode", arg("mode"));
    return Value(true);
  }
  return NotFound("handcrafted MHB has no operation '" + call.name + "'");
}

namespace {

MgridStep call_step(std::string name, broker::Args args) {
  MgridStep step;
  step.kind = MgridStep::Kind::kCall;
  step.call = {std::move(name), std::move(args)};
  return step;
}

MgridStep trip(std::string generator_id) {
  MgridStep step;
  step.kind = MgridStep::Kind::kTripGenerator;
  step.generator_id = std::move(generator_id);
  return step;
}

MgridStep ctx(std::string key, Value value) {
  MgridStep step;
  step.kind = MgridStep::Kind::kSetContext;
  step.context_key = std::move(key);
  step.context_value = std::move(value);
  return step;
}

/// Common provisioning prologue: one 5 kW generator + a 3 kW household
/// load, generator dispatched to cover it.
std::vector<MgridStep> basic_setup(const std::string& suffix) {
  return {
      call_step("mgv.gen.provision", {{"id", Value("gen-" + suffix)},
                                      {"capacity", Value(5.0)},
                                      {"renewable", Value(false)}}),
      call_step("mgv.gen.start", {{"id", Value("gen-" + suffix)}}),
      call_step("mgv.gen.set",
                {{"id", Value("gen-" + suffix)}, {"kw", Value(4.0)}}),
      call_step("mgv.load.provision", {{"id", Value("home-" + suffix)},
                                       {"demand", Value(3.0)},
                                       {"critical", Value(true)}}),
      call_step("mgv.load.connect", {{"id", Value("home-" + suffix)}}),
  };
}

std::vector<MgridScenario> build() {
  std::vector<MgridScenario> scenarios;
  {
    MgridScenario s;
    s.name = "g1-provision-dispatch";
    s.description = "provision generator and load, dispatch to cover demand";
    s.steps = basic_setup("a");
    scenarios.push_back(std::move(s));
  }
  {
    MgridScenario s;
    s.name = "g2-peak-shedding";
    s.description = "peak load triggers autonomic shedding of the heater";
    s.steps = basic_setup("b");
    s.steps.push_back(ctx("load.sheddable", Value("heater-b")));
    s.steps.push_back(call_step("mgv.load.provision",
                                {{"id", Value("heater-b")},
                                 {"demand", Value(4.0)},
                                 {"critical", Value(false)}}));
    // Connecting the heater pushes demand (7kW) over generation (4kW):
    // the imbalance event fires and the broker sheds it autonomously.
    s.steps.push_back(
        call_step("mgv.load.connect", {{"id", Value("heater-b")}}));
    scenarios.push_back(std::move(s));
  }
  {
    MgridScenario s;
    s.name = "g3-storage-discharge";
    s.description = "imbalance covered by storage discharge (preferred)";
    s.steps = basic_setup("c");
    s.steps.push_back(call_step("mgv.storage.provision",
                                {{"id", Value("battery-c")},
                                 {"capacity", Value(10.0)}}));
    s.steps.push_back(ctx("storage.main", Value("battery-c")));
    s.steps.push_back(call_step("mgv.load.provision",
                                {{"id", Value("ev-c")},
                                 {"demand", Value(2.5)},
                                 {"critical", Value(false)}}));
    s.steps.push_back(call_step("mgv.load.connect", {{"id", Value("ev-c")}}));
    scenarios.push_back(std::move(s));
  }
  {
    MgridScenario s;
    s.name = "g4-generator-trip";
    s.description = "generator trips; storage covers the outage";
    s.steps = basic_setup("d");
    s.steps.push_back(call_step("mgv.storage.provision",
                                {{"id", Value("battery-d")},
                                 {"capacity", Value(10.0)}}));
    s.steps.push_back(ctx("storage.main", Value("battery-d")));
    s.steps.push_back(trip("gen-d"));
    scenarios.push_back(std::move(s));
  }
  {
    MgridScenario s;
    s.name = "g5-eco-mode";
    s.description = "eco mode dispatches the renewable generator";
    s.steps = {
        call_step("mgv.grid.mode", {{"mode", Value("eco")}}),
        call_step("mgv.gen.provision", {{"id", Value("solar-e")},
                                        {"capacity", Value(3.0)},
                                        {"renewable", Value(true)}}),
        call_step("mgv.gen.start", {{"id", Value("solar-e")}}),
        call_step("mgv.gen.set",
                  {{"id", Value("solar-e")}, {"kw", Value(2.0)}}),
    };
    scenarios.push_back(std::move(s));
  }
  {
    MgridScenario s;
    s.name = "g6-decommission";
    s.description = "orderly decommissioning after a simulated day";
    s.steps = basic_setup("f");
    s.steps.push_back(
        call_step("mgv.plant.step", {{"hours", Value(24.0)}}));
    // home-f is critical, so it is removed outright rather than shed.
    s.steps.push_back(call_step("mgv.gen.stop", {{"id", Value("gen-f")}}));
    s.steps.push_back(
        call_step("mgv.device.remove", {{"id", Value("home-f")}}));
    s.steps.push_back(
        call_step("mgv.device.remove", {{"id", Value("gen-f")}}));
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

}  // namespace

const std::vector<MgridScenario>& mgrid_scenarios() {
  static const std::vector<MgridScenario> scenarios = build();
  return scenarios;
}

Status run_mgrid_scenario(const MgridScenario& scenario,
                          broker::BrokerApi& broker, MicrogridPlant& plant,
                          policy::ContextStore& context) {
  for (const MgridStep& step : scenario.steps) {
    switch (step.kind) {
      case MgridStep::Kind::kCall: {
        Result<Value> outcome = broker.call(step.call);
        if (!outcome.ok()) {
          return Status(outcome.status().code(),
                        scenario.name + " step '" + step.call.name +
                            "': " + outcome.status().message());
        }
        break;
      }
      case MgridStep::Kind::kTripGenerator:
        plant.trip_generator(step.generator_id);
        break;
      case MgridStep::Kind::kSetContext:
        context.set(step.context_key, step.context_value);
        break;
    }
  }
  return Status::Ok();
}

}  // namespace mdsm::mgrid
