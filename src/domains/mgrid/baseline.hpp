// Handcrafted MGrid broker baseline + the six microgrid evaluation
// scenarios, mirroring the communication domain's Exp-1 setup: the same
// mgv.* call vocabulary served by a direct C++ dispatch, so command
// traces can be compared against the model-based MHB.
#pragma once

#include <memory>

#include "broker/broker_api.hpp"
#include "broker/resource_manager.hpp"
#include "domains/mgrid/plant.hpp"
#include "policy/context.hpp"
#include "runtime/event_bus.hpp"

namespace mdsm::mgrid {

class HandcraftedMgridBroker final : public broker::BrokerApi {
 public:
  HandcraftedMgridBroker(MicrogridPlant& plant, runtime::EventBus& bus,
                         policy::ContextStore& context);
  ~HandcraftedMgridBroker() override;

  using broker::BrokerApi::call;
  Result<model::Value> call(const broker::Call& call,
                            obs::RequestContext& context) override;
  [[nodiscard]] const broker::CommandTrace& trace() const override {
    return resources_.trace();
  }
  [[nodiscard]] std::uint64_t rebalances() const noexcept {
    return rebalances_;
  }

 private:
  runtime::EventBus* bus_;
  policy::ContextStore* context_;
  broker::ResourceManager resources_;
  std::uint64_t subscription_ = 0;
  std::uint64_t rebalances_ = 0;
};

/// Self-contained baseline bundle (own plant/bus/context).
struct HandcraftedMgrid {
  MicrogridPlant plant;
  runtime::EventBus bus;
  policy::ContextStore context;
  HandcraftedMgridBroker broker{plant, bus, context};
};

inline std::unique_ptr<HandcraftedMgrid> make_handcrafted_mgrid() {
  return std::make_unique<HandcraftedMgrid>();
}

// ---- scenarios ----------------------------------------------------------

struct MgridStep {
  enum class Kind { kCall, kTripGenerator, kSetContext };
  Kind kind{};
  broker::Call call;
  std::string generator_id;
  std::string context_key;
  model::Value context_value;
};

struct MgridScenario {
  std::string name;
  std::string description;
  std::vector<MgridStep> steps;
};

/// The six microgrid scenarios (provisioning, dispatch, peak shedding,
/// storage discharge, generator trip recovery, decommissioning).
const std::vector<MgridScenario>& mgrid_scenarios();

Status run_mgrid_scenario(const MgridScenario& scenario,
                          broker::BrokerApi& broker, MicrogridPlant& plant,
                          policy::ContextStore& context);

}  // namespace mdsm::mgrid
