// MGridVM — the Microgrid Virtual Machine (paper §IV-B, Fig. 4) rebuilt
// from a middleware model:
//
//   MUI = platform model-text interface      MSE = SynthesisEngine (LTS)
//   MCM = ControllerLayer                    MHB = BrokerLayer + PlantAdapter
//
// The MCM "applies energy management algorithms and enforces policies":
// here the broker layer's autonomic manager rebalances the plant when it
// raises imbalance events (storage discharge preferred, load shedding as
// fallback), mirroring [11]'s energy-management behaviour.
#pragma once

#include <memory>

#include "core/platform.hpp"
#include "domains/mgrid/mgridml.hpp"
#include "domains/mgrid/plant.hpp"

namespace mdsm::mgrid {

/// Full textual middleware model of the MGridVM.
std::string_view mgridvm_middleware_model_text();

struct MGridVm {
  MicrogridPlant plant;
  std::unique_ptr<core::Platform> platform;
};

/// Build and start an MGridVM over a fresh simulated plant.
Result<std::unique_ptr<MGridVm>> make_mgridvm();

}  // namespace mdsm::mgrid
