#include "domains/mgrid/mgridvm.hpp"

namespace mdsm::mgrid {

namespace {

constexpr std::string_view kMgridMiddlewareModel = R"mw(
model mgridvm conforms mdsm

object MiddlewarePlatform mgv {
  name = "mgridvm"
  domain = "smart-microgrid"
  child ui UiLayerSpec mui { dsml = "mgridml" }

  child broker BrokerLayerSpec mhb {
    child actions ActionSpec a-gen-prov {
      name = "gen-provision"
      child steps StepSpec g1 {
        op = invoke a = "plant" b = "gen.add"
        child args ArgSpec g1a { key = "id" value = "$id" }
        child args ArgSpec g1b { key = "capacity" value = "$capacity" }
        child args ArgSpec g1c { key = "renewable" value = "$renewable" }
      }
    }
    child actions ActionSpec a-gen-start {
      name = "gen-start"
      child steps StepSpec g2 {
        op = invoke a = "plant" b = "gen.start"
        child args ArgSpec g2a { key = "id" value = "$id" }
      }
    }
    child actions ActionSpec a-gen-stop {
      name = "gen-stop"
      child steps StepSpec g3 {
        op = invoke a = "plant" b = "gen.stop"
        child args ArgSpec g3a { key = "id" value = "$id" }
      }
    }
    child actions ActionSpec a-gen-set {
      name = "gen-set"
      child steps StepSpec g4 {
        op = invoke a = "plant" b = "gen.set"
        child args ArgSpec g4a { key = "id" value = "$id" }
        child args ArgSpec g4b { key = "kw" value = "$kw" }
      }
    }
    child actions ActionSpec a-load-prov {
      name = "load-provision"
      child steps StepSpec l1 {
        op = invoke a = "plant" b = "load.add"
        child args ArgSpec l1a { key = "id" value = "$id" }
        child args ArgSpec l1b { key = "demand" value = "$demand" }
        child args ArgSpec l1c { key = "critical" value = "$critical" }
      }
    }
    child actions ActionSpec a-load-connect {
      name = "load-connect"
      child steps StepSpec l2 {
        op = invoke a = "plant" b = "load.connect"
        child args ArgSpec l2a { key = "id" value = "$id" }
      }
    }
    child actions ActionSpec a-load-shed {
      name = "load-shed"
      child steps StepSpec l3 {
        op = invoke a = "plant" b = "load.shed"
        child args ArgSpec l3a { key = "id" value = "$id" }
      }
    }
    child actions ActionSpec a-storage-prov {
      name = "storage-provision"
      child steps StepSpec s1 {
        op = invoke a = "plant" b = "storage.add"
        child args ArgSpec s1a { key = "id" value = "$id" }
        child args ArgSpec s1b { key = "capacity" value = "$capacity" }
      }
    }
    child actions ActionSpec a-storage-mode {
      name = "storage-mode"
      child steps StepSpec s2 {
        op = invoke a = "plant" b = "storage.mode"
        child args ArgSpec s2a { key = "id" value = "$id" }
        child args ArgSpec s2b { key = "mode" value = "$mode" }
      }
    }
    child actions ActionSpec a-device-remove {
      name = "device-remove"
      child steps StepSpec d1 {
        op = invoke a = "plant" b = "device.remove"
        child args ArgSpec d1a { key = "id" value = "$id" }
      }
    }
    child actions ActionSpec a-plant-step {
      name = "plant-step"
      child steps StepSpec d2 {
        op = invoke a = "plant" b = "plant.step"
        child args ArgSpec d2a { key = "hours" value = "$hours" }
      }
    }
    child actions ActionSpec a-grid-mode {
      name = "grid-mode-bk"
      child steps StepSpec d3 {
        op = set-context a = "grid.mode"
        child args ArgSpec d3a { key = "value" value = "$mode" }
      }
    }
    child handlers HandlerSpec h1 { signal = "mgv.gen.provision" actions -> a-gen-prov }
    child handlers HandlerSpec h2 { signal = "mgv.gen.start" actions -> a-gen-start }
    child handlers HandlerSpec h3 { signal = "mgv.gen.stop" actions -> a-gen-stop }
    child handlers HandlerSpec h4 { signal = "mgv.gen.set" actions -> a-gen-set }
    child handlers HandlerSpec h5 { signal = "mgv.load.provision" actions -> a-load-prov }
    child handlers HandlerSpec h6 { signal = "mgv.load.connect" actions -> a-load-connect }
    child handlers HandlerSpec h7 { signal = "mgv.load.shed" actions -> a-load-shed }
    child handlers HandlerSpec h8 { signal = "mgv.storage.provision" actions -> a-storage-prov }
    child handlers HandlerSpec h9 { signal = "mgv.storage.mode" actions -> a-storage-mode }
    child handlers HandlerSpec h10 { signal = "mgv.device.remove" actions -> a-device-remove }
    child handlers HandlerSpec h11 { signal = "mgv.plant.step" actions -> a-plant-step }
    child handlers HandlerSpec h12 { signal = "mgv.grid.mode" actions -> a-grid-mode }
    # -- energy management: rebalance on imbalance events ---------------
    child symptoms SymptomSpec sy1 {
      name = "power-imbalance"
      topic = "resource.imbalance"
      request = "rebalance"
    }
    child plans ChangePlanSpec pl1 {
      name = "discharge-storage"
      request = "rebalance"
      priority = 5
      guard = "defined(storage.main)"
      child steps StepSpec rp1 {
        op = invoke a = "plant" b = "storage.mode"
        child args ArgSpec rp1a { key = "id" value = "$ctx:storage.main" }
        child args ArgSpec rp1b { key = "mode" value = "discharge" }
      }
    }
    child plans ChangePlanSpec pl2 {
      name = "shed-noncritical"
      request = "rebalance"
      priority = 1
      guard = "defined(load.sheddable)"
      child steps StepSpec rp2 {
        op = invoke a = "plant" b = "load.shed"
        child args ArgSpec rp2a { key = "id" value = "$ctx:load.sheddable" }
      }
    }
    child resources ResourceSpec r1 { name = "plant" }
  }

  child controller ControllerLayerSpec mcm {
    child dscs DscSpec dd1 { name = "power.dispatch" category = "energy" }
    child procedures ProcedureSpec pp1 {
      name = "dispatch-direct"
      classifier = "power.dispatch"
      cost = 1.0
      child units EuSpec pp1u {
        child steps StepSpec pp1s {
          op = broker-call a = "mgv.gen.start"
          child args ArgSpec pp1sa { key = "id" value = "$id" }
        }
      }
    }
    child procedures ProcedureSpec pp2 {
      name = "dispatch-eco"
      classifier = "power.dispatch"
      cost = 0.5
      guard = "grid.mode == \"eco\""
      child units EuSpec pp2u {
        child steps StepSpec pp2s1 {
          op = set-mem a = "dispatch.note"
          child args ArgSpec pp2s1a { key = "value" value = "renewables-first" }
        }
        child steps StepSpec pp2s2 {
          op = broker-call a = "mgv.gen.start"
          child args ArgSpec pp2s2a { key = "id" value = "$id" }
        }
      }
    }
    child mappings CommandMappingSpec mmx { command = "mgv.gen.start" dsc = "power.dispatch" }
    child actions ActionSpec mca-mode {
      name = "grid-mode"
      child steps StepSpec mc1 {
        op = set-context a = "grid.mode"
        child args ArgSpec mc1a { key = "value" value = "$mode" }
      }
    }
    child actions ActionSpec mca-gen-prov {
      name = "fwd-gen-provision"
      child steps StepSpec fc1 {
        op = broker-call a = "mgv.gen.provision"
        child args ArgSpec fc1a { key = "id" value = "$id" }
        child args ArgSpec fc1b { key = "capacity" value = "$capacity" }
        child args ArgSpec fc1c { key = "renewable" value = "$renewable" }
      }
    }
    child actions ActionSpec mca-gen-stop {
      name = "fwd-gen-stop"
      child steps StepSpec fc2 {
        op = broker-call a = "mgv.gen.stop"
        child args ArgSpec fc2a { key = "id" value = "$id" }
      }
    }
    child actions ActionSpec mca-gen-set {
      name = "fwd-gen-set"
      child steps StepSpec fc3 {
        op = broker-call a = "mgv.gen.set"
        child args ArgSpec fc3a { key = "id" value = "$id" }
        child args ArgSpec fc3b { key = "kw" value = "$kw" }
      }
    }
    child actions ActionSpec mca-load-prov {
      name = "fwd-load-provision"
      child steps StepSpec fc4 {
        op = broker-call a = "mgv.load.provision"
        child args ArgSpec fc4a { key = "id" value = "$id" }
        child args ArgSpec fc4b { key = "demand" value = "$demand" }
        child args ArgSpec fc4c { key = "critical" value = "$critical" }
      }
    }
    child actions ActionSpec mca-load-connect {
      name = "fwd-load-connect"
      child steps StepSpec fc5 {
        op = broker-call a = "mgv.load.connect"
        child args ArgSpec fc5a { key = "id" value = "$id" }
      }
    }
    child actions ActionSpec mca-load-shed {
      name = "fwd-load-shed"
      child steps StepSpec fc6 {
        op = broker-call a = "mgv.load.shed"
        child args ArgSpec fc6a { key = "id" value = "$id" }
      }
    }
    child actions ActionSpec mca-storage-prov {
      name = "fwd-storage-provision"
      child steps StepSpec fc7 {
        op = broker-call a = "mgv.storage.provision"
        child args ArgSpec fc7a { key = "id" value = "$id" }
        child args ArgSpec fc7b { key = "capacity" value = "$capacity" }
      }
    }
    child actions ActionSpec mca-storage-mode {
      name = "fwd-storage-mode"
      child steps StepSpec fc8 {
        op = broker-call a = "mgv.storage.mode"
        child args ArgSpec fc8a { key = "id" value = "$id" }
        child args ArgSpec fc8b { key = "mode" value = "$mode" }
      }
    }
    child actions ActionSpec mca-device-remove {
      name = "fwd-device-remove"
      child steps StepSpec fc9 {
        op = broker-call a = "mgv.device.remove"
        child args ArgSpec fc9a { key = "id" value = "$id" }
      }
    }
    child bindings BindingSpec mb1 { command = "mgv.grid.mode" actions -> mca-mode }
    child bindings BindingSpec mb2 { command = "mgv.gen.provision" actions -> mca-gen-prov }
    child bindings BindingSpec mb3 { command = "mgv.gen.stop" actions -> mca-gen-stop }
    child bindings BindingSpec mb4 { command = "mgv.gen.set" actions -> mca-gen-set }
    child bindings BindingSpec mb5 { command = "mgv.load.provision" actions -> mca-load-prov }
    child bindings BindingSpec mb6 { command = "mgv.load.connect" actions -> mca-load-connect }
    child bindings BindingSpec mb7 { command = "mgv.load.shed" actions -> mca-load-shed }
    child bindings BindingSpec mb8 { command = "mgv.storage.provision" actions -> mca-storage-prov }
    child bindings BindingSpec mb9 { command = "mgv.storage.mode" actions -> mca-storage-mode }
    child bindings BindingSpec mb10 { command = "mgv.device.remove" actions -> mca-device-remove }
  }

  child synthesis SynthesisLayerSpec mse {
    initial_state = "initial"
    child transitions TransitionSpec mt1 {
      from = "initial" to = "grid-live" kind = add-object class = "Microgrid"
    }
    child transitions TransitionSpec mt2 {
      from = "grid-live" to = "grid-live" kind = set-attribute
      class = "Microgrid" feature = "mode"
      child commands CommandTemplateSpec mt2c {
        name = "mgv.grid.mode"
        child args ArgSpec mt2ca { key = "mode" value = "%new" }
      }
    }
    child transitions TransitionSpec mt3 {
      from = "initial" to = "gen-prov" kind = add-object class = "Generator"
      child commands CommandTemplateSpec mt3c {
        name = "mgv.gen.provision"
        child args ArgSpec mt3ca { key = "id" value = "%id" }
        child args ArgSpec mt3cb { key = "capacity" value = "%attr:capacity_kw" }
        child args ArgSpec mt3cc { key = "renewable" value = "%attr:renewable" }
      }
    }
    child transitions TransitionSpec mt4 {
      from = "gen-prov" to = "gen-on" kind = set-attribute
      class = "Generator" feature = "running" value = "true" vtype = bool
      child commands CommandTemplateSpec mt4c {
        name = "mgv.gen.start"
        child args ArgSpec mt4ca { key = "id" value = "%id" }
      }
    }
    child transitions TransitionSpec mt5 {
      from = "gen-on" to = "gen-prov" kind = set-attribute
      class = "Generator" feature = "running" value = "false" vtype = bool
      child commands CommandTemplateSpec mt5c {
        name = "mgv.gen.stop"
        child args ArgSpec mt5ca { key = "id" value = "%id" }
      }
    }
    child transitions TransitionSpec mt6 {
      from = "gen-on" to = "gen-on" kind = set-attribute
      class = "Generator" feature = "setpoint_kw"
      child commands CommandTemplateSpec mt6c {
        name = "mgv.gen.set"
        child args ArgSpec mt6ca { key = "id" value = "%id" }
        child args ArgSpec mt6cb { key = "kw" value = "%new" }
      }
    }
    child transitions TransitionSpec mt7 {
      from = "initial" to = "load-prov" kind = add-object class = "Load"
      child commands CommandTemplateSpec mt7c {
        name = "mgv.load.provision"
        child args ArgSpec mt7ca { key = "id" value = "%id" }
        child args ArgSpec mt7cb { key = "demand" value = "%attr:demand_kw" }
        child args ArgSpec mt7cc { key = "critical" value = "%attr:critical" }
      }
    }
    child transitions TransitionSpec mt8 {
      from = "load-prov" to = "load-on" kind = set-attribute
      class = "Load" feature = "connected" value = "true" vtype = bool
      child commands CommandTemplateSpec mt8c {
        name = "mgv.load.connect"
        child args ArgSpec mt8ca { key = "id" value = "%id" }
      }
    }
    child transitions TransitionSpec mt9 {
      from = "load-on" to = "load-prov" kind = set-attribute
      class = "Load" feature = "connected" value = "false" vtype = bool
      child commands CommandTemplateSpec mt9c {
        name = "mgv.load.shed"
        child args ArgSpec mt9ca { key = "id" value = "%id" }
      }
    }
    child transitions TransitionSpec mt10 {
      from = "initial" to = "st-prov" kind = add-object class = "Storage"
      child commands CommandTemplateSpec mt10c {
        name = "mgv.storage.provision"
        child args ArgSpec mt10ca { key = "id" value = "%id" }
        child args ArgSpec mt10cb { key = "capacity" value = "%attr:capacity_kwh" }
      }
    }
    child transitions TransitionSpec mt11 {
      from = "st-prov" to = "st-prov" kind = set-attribute
      class = "Storage" feature = "mode"
      child commands CommandTemplateSpec mt11c {
        name = "mgv.storage.mode"
        child args ArgSpec mt11ca { key = "id" value = "%id" }
        child args ArgSpec mt11cb { key = "mode" value = "%new" }
      }
    }
    child transitions TransitionSpec mt12 {
      from = "gen-prov" to = "gone" kind = remove-object class = "Generator"
      child commands CommandTemplateSpec mt12c {
        name = "mgv.device.remove"
        child args ArgSpec mt12ca { key = "id" value = "%id" }
      }
    }
    child transitions TransitionSpec mt13 {
      from = "load-prov" to = "gone" kind = remove-object class = "Load"
      child commands CommandTemplateSpec mt13c {
        name = "mgv.device.remove"
        child args ArgSpec mt13ca { key = "id" value = "%id" }
      }
    }
    child transitions TransitionSpec mt14 {
      from = "load-on" to = "gone" kind = remove-object class = "Load"
      child commands CommandTemplateSpec mt14c {
        name = "mgv.device.remove"
        child args ArgSpec mt14ca { key = "id" value = "%id" }
      }
    }
    child transitions TransitionSpec mt15 {
      from = "gen-on" to = "gone" kind = remove-object class = "Generator"
      child commands CommandTemplateSpec mt15c {
        name = "mgv.device.remove"
        child args ArgSpec mt15ca { key = "id" value = "%id" }
      }
    }
    child transitions TransitionSpec mt16 {
      from = "st-prov" to = "gone" kind = remove-object class = "Storage"
      child commands CommandTemplateSpec mt16c {
        name = "mgv.device.remove"
        child args ArgSpec mt16ca { key = "id" value = "%id" }
      }
    }
  }
}
)mw";

}  // namespace

std::string_view mgridvm_middleware_model_text() {
  return kMgridMiddlewareModel;
}

Result<std::unique_ptr<MGridVm>> make_mgridvm() {
  auto vm = std::make_unique<MGridVm>();
  core::PlatformConfig config;
  config.dsml = mgridml_metamodel();
  Result<std::unique_ptr<core::Platform>> platform =
      core::Platform::assemble_from_text(kMgridMiddlewareModel, config);
  if (!platform.ok()) return platform.status();
  vm->platform = std::move(platform.value());
  MDSM_RETURN_IF_ERROR(vm->platform->add_resource_adapter(
      std::make_unique<PlantAdapter>(vm->plant, "plant")));
  MDSM_RETURN_IF_ERROR(vm->platform->start());
  return vm;
}

}  // namespace mdsm::mgrid
