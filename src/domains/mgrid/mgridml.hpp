// MGridML — the Microgrid Modeling Language (paper §IV-B, [11]): a DSML
// for energy management in smart microgrids. A model describes the
// desired configuration of a (home-scale) microgrid: its operating mode
// and the generators, loads and storage units it manages. Unlike CML,
// microgrid models have centralized-application semantics: one shared
// plant, full resource visibility.
#pragma once

#include "model/metamodel.hpp"

namespace mdsm::mgrid {

/// The finalized MGridML metamodel (singleton).
///
/// Classes:
///   Microgrid — mode: normal|eco|island; contains devices
///   Device    — abstract: label
///   Generator — capacity_kw, setpoint_kw, renewable, running
///   Load      — demand_kw, critical, connected
///   Storage   — capacity_kwh, mode: idle|charge|discharge
model::MetamodelPtr mgridml_metamodel();

}  // namespace mdsm::mgrid
