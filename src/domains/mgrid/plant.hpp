// Simulated microgrid plant — the substitute for the physical plant
// controllers and smart devices MGridVM drives (paper §IV-B). Devices
// accept the atomic commands the MHB (Microgrid Hardware Broker) issues
// and keep first-order electrical state; the plant computes the power
// balance after each command and raises "imbalance" events, which feed
// the broker layer's autonomic energy management.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "broker/resource_manager.hpp"
#include "common/status.hpp"

namespace mdsm::mgrid {

struct GeneratorState {
  double capacity_kw = 0.0;
  double setpoint_kw = 0.0;
  bool running = false;
  bool renewable = false;
};

struct LoadState {
  double demand_kw = 0.0;
  bool critical = false;
  bool connected = false;
};

struct StorageState {
  double capacity_kwh = 0.0;
  double level_kwh = 0.0;
  std::string mode = "idle";  ///< idle|charge|discharge
  double rate_kw = 2.0;       ///< fixed charge/discharge power
};

class MicrogridPlant {
 public:
  // ---- device provisioning (driven by grid.* commands)
  Status add_generator(const std::string& id, double capacity_kw,
                       bool renewable);
  Status add_load(const std::string& id, double demand_kw, bool critical);
  Status add_storage(const std::string& id, double capacity_kwh);
  Status remove_device(const std::string& id);

  // ---- atomic device commands (the MHB vocabulary)
  Status start_generator(const std::string& id);
  Status stop_generator(const std::string& id);
  Status set_generator_output(const std::string& id, double setpoint_kw);
  Status connect_load(const std::string& id);
  Status shed_load(const std::string& id);
  Status set_storage_mode(const std::string& id, const std::string& mode);

  // ---- plant physics
  /// Net power = generation + discharge − demand − charge (kW).
  [[nodiscard]] double net_power_kw() const;
  [[nodiscard]] double generation_kw() const;
  [[nodiscard]] double demand_kw() const;

  /// Advance storage levels by `hours` at current rates; re-checks the
  /// balance afterwards (storage may saturate).
  void step(double hours);

  /// Failure injection: a running generator trips offline.
  void trip_generator(const std::string& id);

  using EventSink =
      std::function<void(const std::string& topic, model::Value payload)>;
  void set_event_sink(EventSink sink) { sink_ = std::move(sink); }

  [[nodiscard]] const GeneratorState* generator(std::string_view id) const;
  [[nodiscard]] const LoadState* load(std::string_view id) const;
  [[nodiscard]] const StorageState* storage(std::string_view id) const;
  [[nodiscard]] std::size_t device_count() const noexcept {
    return generators_.size() + loads_.size() + storages_.size();
  }

 private:
  void check_balance();
  void emit(const std::string& topic, model::Value payload = {});

  std::map<std::string, GeneratorState, std::less<>> generators_;
  std::map<std::string, LoadState, std::less<>> loads_;
  std::map<std::string, StorageState, std::less<>> storages_;
  EventSink sink_;
  bool last_balanced_ = true;
};

/// ResourceAdapter exposing the plant as resource "plant". Commands:
///   gen.add(id,capacity,renewable)  gen.start(id)  gen.stop(id)
///   gen.set(id,kw)                  load.add(id,demand,critical)
///   load.connect(id)                load.shed(id)
///   storage.add(id,capacity)        storage.mode(id,mode)
///   device.remove(id)               plant.step(hours)
class PlantAdapter final : public broker::ResourceAdapter {
 public:
  explicit PlantAdapter(MicrogridPlant& plant, std::string name = "plant");

  Result<model::Value> execute(const std::string& command,
                               const broker::Args& args) override;

 private:
  MicrogridPlant* plant_;
};

}  // namespace mdsm::mgrid
