#include "domains/mgrid/plant.hpp"

#include <algorithm>

namespace mdsm::mgrid {

using model::Value;

void MicrogridPlant::emit(const std::string& topic, Value payload) {
  if (sink_) sink_(topic, std::move(payload));
}

Status MicrogridPlant::add_generator(const std::string& id,
                                     double capacity_kw, bool renewable) {
  if (generators_.contains(id) || loads_.contains(id) ||
      storages_.contains(id)) {
    return AlreadyExists("device '" + id + "' already in plant");
  }
  if (capacity_kw <= 0) return InvalidArgument("capacity must be positive");
  generators_[id] = GeneratorState{capacity_kw, 0.0, false, renewable};
  return Status::Ok();
}

Status MicrogridPlant::add_load(const std::string& id, double demand_kw,
                                bool critical) {
  if (generators_.contains(id) || loads_.contains(id) ||
      storages_.contains(id)) {
    return AlreadyExists("device '" + id + "' already in plant");
  }
  if (demand_kw < 0) return InvalidArgument("demand must be non-negative");
  loads_[id] = LoadState{demand_kw, critical, false};
  return Status::Ok();
}

Status MicrogridPlant::add_storage(const std::string& id,
                                   double capacity_kwh) {
  if (generators_.contains(id) || loads_.contains(id) ||
      storages_.contains(id)) {
    return AlreadyExists("device '" + id + "' already in plant");
  }
  if (capacity_kwh <= 0) return InvalidArgument("capacity must be positive");
  StorageState storage;
  storage.capacity_kwh = capacity_kwh;
  storage.level_kwh = capacity_kwh / 2.0;  // delivered half charged
  storages_[id] = storage;
  return Status::Ok();
}

Status MicrogridPlant::remove_device(const std::string& id) {
  if (generators_.erase(id) + loads_.erase(id) + storages_.erase(id) == 0) {
    return NotFound("device '" + id + "' not in plant");
  }
  check_balance();
  return Status::Ok();
}

Status MicrogridPlant::start_generator(const std::string& id) {
  auto it = generators_.find(id);
  if (it == generators_.end()) return NotFound("no generator '" + id + "'");
  it->second.running = true;
  check_balance();
  return Status::Ok();
}

Status MicrogridPlant::stop_generator(const std::string& id) {
  auto it = generators_.find(id);
  if (it == generators_.end()) return NotFound("no generator '" + id + "'");
  it->second.running = false;
  check_balance();
  return Status::Ok();
}

Status MicrogridPlant::set_generator_output(const std::string& id,
                                            double setpoint_kw) {
  auto it = generators_.find(id);
  if (it == generators_.end()) return NotFound("no generator '" + id + "'");
  if (setpoint_kw < 0 || setpoint_kw > it->second.capacity_kw) {
    return InvalidArgument("setpoint " + std::to_string(setpoint_kw) +
                           " outside [0, capacity] for '" + id + "'");
  }
  it->second.setpoint_kw = setpoint_kw;
  check_balance();
  return Status::Ok();
}

Status MicrogridPlant::connect_load(const std::string& id) {
  auto it = loads_.find(id);
  if (it == loads_.end()) return NotFound("no load '" + id + "'");
  it->second.connected = true;
  check_balance();
  return Status::Ok();
}

Status MicrogridPlant::shed_load(const std::string& id) {
  auto it = loads_.find(id);
  if (it == loads_.end()) return NotFound("no load '" + id + "'");
  if (it->second.critical) {
    return FailedPrecondition("load '" + id + "' is critical; refusing shed");
  }
  it->second.connected = false;
  check_balance();
  return Status::Ok();
}

Status MicrogridPlant::set_storage_mode(const std::string& id,
                                        const std::string& mode) {
  auto it = storages_.find(id);
  if (it == storages_.end()) return NotFound("no storage '" + id + "'");
  if (mode != "idle" && mode != "charge" && mode != "discharge") {
    return InvalidArgument("bad storage mode '" + mode + "'");
  }
  it->second.mode = mode;
  check_balance();
  return Status::Ok();
}

double MicrogridPlant::generation_kw() const {
  double total = 0.0;
  for (const auto& [id, generator] : generators_) {
    if (generator.running) total += generator.setpoint_kw;
  }
  for (const auto& [id, storage] : storages_) {
    if (storage.mode == "discharge" && storage.level_kwh > 0) {
      total += storage.rate_kw;
    }
  }
  return total;
}

double MicrogridPlant::demand_kw() const {
  double total = 0.0;
  for (const auto& [id, load] : loads_) {
    if (load.connected) total += load.demand_kw;
  }
  for (const auto& [id, storage] : storages_) {
    if (storage.mode == "charge" && storage.level_kwh < storage.capacity_kwh) {
      total += storage.rate_kw;
    }
  }
  return total;
}

double MicrogridPlant::net_power_kw() const {
  return generation_kw() - demand_kw();
}

void MicrogridPlant::check_balance() {
  bool balanced = net_power_kw() >= 0.0;
  if (balanced != last_balanced_) {
    last_balanced_ = balanced;
    emit(balanced ? "balance.restored" : "imbalance",
         Value(net_power_kw()));
  }
}

void MicrogridPlant::step(double hours) {
  for (auto& [id, storage] : storages_) {
    if (storage.mode == "charge") {
      storage.level_kwh = std::min(storage.capacity_kwh,
                                   storage.level_kwh + storage.rate_kw * hours);
    } else if (storage.mode == "discharge") {
      storage.level_kwh =
          std::max(0.0, storage.level_kwh - storage.rate_kw * hours);
      if (storage.level_kwh == 0.0) {
        storage.mode = "idle";
        emit("storage.depleted", Value(id));
      }
    }
  }
  check_balance();
}

void MicrogridPlant::trip_generator(const std::string& id) {
  auto it = generators_.find(id);
  if (it == generators_.end() || !it->second.running) return;
  it->second.running = false;
  emit("generator.trip", Value(id));
  check_balance();
}

const GeneratorState* MicrogridPlant::generator(std::string_view id) const {
  auto it = generators_.find(id);
  return it == generators_.end() ? nullptr : &it->second;
}

const LoadState* MicrogridPlant::load(std::string_view id) const {
  auto it = loads_.find(id);
  return it == loads_.end() ? nullptr : &it->second;
}

const StorageState* MicrogridPlant::storage(std::string_view id) const {
  auto it = storages_.find(id);
  return it == storages_.end() ? nullptr : &it->second;
}

PlantAdapter::PlantAdapter(MicrogridPlant& plant, std::string name)
    : ResourceAdapter(std::move(name)), plant_(&plant) {
  plant_->set_event_sink([this](const std::string& topic, Value payload) {
    raise_event(topic, std::move(payload));
  });
}

Result<Value> PlantAdapter::execute(const std::string& command,
                                    const broker::Args& args) {
  auto str = [&args](std::string_view key) -> std::string {
    auto it = args.find(key);
    return it != args.end() && it->second.is_string() ? it->second.as_string()
                                                      : std::string{};
  };
  auto real = [&args](std::string_view key, double fallback = 0.0) {
    auto it = args.find(key);
    return it != args.end() && it->second.is_number() ? it->second.as_number()
                                                      : fallback;
  };
  auto boolean = [&args](std::string_view key) {
    auto it = args.find(key);
    return it != args.end() && it->second.is_bool() && it->second.as_bool();
  };
  Status status;
  if (command == "gen.add") {
    status = plant_->add_generator(str("id"), real("capacity"),
                                   boolean("renewable"));
  } else if (command == "gen.start") {
    status = plant_->start_generator(str("id"));
  } else if (command == "gen.stop") {
    status = plant_->stop_generator(str("id"));
  } else if (command == "gen.set") {
    status = plant_->set_generator_output(str("id"), real("kw"));
  } else if (command == "load.add") {
    status = plant_->add_load(str("id"), real("demand"), boolean("critical"));
  } else if (command == "load.connect") {
    status = plant_->connect_load(str("id"));
  } else if (command == "load.shed") {
    status = plant_->shed_load(str("id"));
  } else if (command == "storage.add") {
    status = plant_->add_storage(str("id"), real("capacity"));
  } else if (command == "storage.mode") {
    status = plant_->set_storage_mode(str("id"), str("mode"));
  } else if (command == "device.remove") {
    status = plant_->remove_device(str("id"));
  } else if (command == "plant.step") {
    plant_->step(real("hours", 1.0));
  } else {
    return NotFound("plant has no command '" + command + "'");
  }
  if (!status.ok()) return status;
  return Value(plant_->net_power_kw());
}

}  // namespace mdsm::mgrid
