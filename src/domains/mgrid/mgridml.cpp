#include "domains/mgrid/mgridml.hpp"

namespace mdsm::mgrid {

namespace {

using model::AttrType;
using model::Metamodel;
using model::Value;

Metamodel build() {
  Metamodel mm("mgridml");
  auto& device = mm.add_class("Device", "", /*is_abstract=*/true);
  device.add_attribute({.name = "label", .type = AttrType::kString});

  auto& grid = mm.add_class("Microgrid");
  grid.add_attribute({.name = "mode",
                      .type = AttrType::kEnum,
                      .required = true,
                      .enum_literals = {"normal", "eco", "island"},
                      .default_value = Value("normal")});
  grid.add_reference({.name = "devices",
                      .target_class = "Device",
                      .containment = true,
                      .many = true});

  auto& generator = mm.add_class("Generator", "Device");
  generator.add_attribute({.name = "capacity_kw",
                           .type = AttrType::kReal,
                           .required = true});
  generator.add_attribute({.name = "setpoint_kw",
                           .type = AttrType::kReal,
                           .default_value = Value(0.0)});
  generator.add_attribute({.name = "renewable",
                           .type = AttrType::kBool,
                           .default_value = Value(false)});
  generator.add_attribute({.name = "running",
                           .type = AttrType::kBool,
                           .default_value = Value(false)});

  auto& load = mm.add_class("Load", "Device");
  load.add_attribute(
      {.name = "demand_kw", .type = AttrType::kReal, .required = true});
  load.add_attribute({.name = "critical",
                      .type = AttrType::kBool,
                      .default_value = Value(false)});
  load.add_attribute({.name = "connected",
                      .type = AttrType::kBool,
                      .default_value = Value(true)});

  auto& storage = mm.add_class("Storage", "Device");
  storage.add_attribute({.name = "capacity_kwh",
                         .type = AttrType::kReal,
                         .required = true});
  storage.add_attribute({.name = "mode",
                         .type = AttrType::kEnum,
                         .enum_literals = {"idle", "charge", "discharge"},
                         .default_value = Value("idle")});
  return mm;
}

}  // namespace

model::MetamodelPtr mgridml_metamodel() {
  static model::MetamodelPtr instance = model::finalize_metamodel(build());
  return instance;
}

}  // namespace mdsm::mgrid
