#include "domains/crowd/fleet.hpp"

#include <cmath>

#include "common/log.hpp"
#include "domains/crowd/csml.hpp"
#include "model/text_format.hpp"

namespace mdsm::crowd {

using model::ChangeKind;
using model::Value;
using model::ValueList;

double QueryAggregate::result() const {
  if (aggregate == "count") return static_cast<double>(count);
  if (count == 0) return 0.0;
  if (aggregate == "min") return min;
  if (aggregate == "max") return max;
  return sum / static_cast<double>(count);  // avg
}

/// Provider-side resource folding reports into aggregates.
class AggregatorAdapter final : public broker::ResourceAdapter {
 public:
  explicit AggregatorAdapter(CrowdProvider& provider)
      : ResourceAdapter("aggregator"), provider_(&provider) {}

  Result<Value> execute(const std::string& command,
                        const broker::Args& args) override {
    if (command != "fold") {
      return NotFound("aggregator has no command '" + command + "'");
    }
    auto query_it = args.find("query");
    auto value_it = args.find("value");
    auto agg_it = args.find("aggregate");
    if (query_it == args.end() || !query_it->second.is_string() ||
        value_it == args.end() || !value_it->second.is_number()) {
      return InvalidArgument("fold requires query + numeric value");
    }
    QueryAggregate& aggregate =
        provider_->queries_[query_it->second.as_string()];
    if (agg_it != args.end() && agg_it->second.is_string()) {
      aggregate.aggregate = agg_it->second.as_string();
    }
    double value = value_it->second.as_number();
    if (aggregate.count == 0) {
      aggregate.min = value;
      aggregate.max = value;
    } else {
      aggregate.min = std::min(aggregate.min, value);
      aggregate.max = std::max(aggregate.max, value);
    }
    aggregate.sum += value;
    ++aggregate.count;
    ++provider_->reports_;
    return Value(aggregate.result());
  }

 private:
  CrowdProvider* provider_;
};

/// Device-side resource: manages active sampling for the device's
/// queries. Commands: start(id,sensor,aggregate,period), retune(id,
/// period), stop(id).
class SensorAdapter final : public broker::ResourceAdapter {
 public:
  explicit SensorAdapter(CrowdDevice& device)
      : ResourceAdapter("sensors"), device_(&device) {}

  Result<Value> execute(const std::string& command,
                        const broker::Args& args) override {
    auto str = [&args](std::string_view key) -> std::string {
      auto it = args.find(key);
      return it != args.end() && it->second.is_string()
                 ? it->second.as_string()
                 : std::string{};
    };
    auto integer = [&args](std::string_view key) -> std::int64_t {
      auto it = args.find(key);
      return it != args.end() && it->second.is_int() ? it->second.as_int()
                                                     : 0;
    };
    const std::string id = str("id");
    if (command == "start") {
      if (device_->queries_.contains(id)) {
        return AlreadyExists("query '" + id + "' already sampling");
      }
      std::int64_t period_s = integer("period");
      if (period_s <= 0) return InvalidArgument("period must be positive");
      CrowdDevice::ActiveQuery query;
      query.sensor = str("sensor");
      query.aggregate = str("aggregate");
      query.period = std::chrono::seconds(period_s);
      device_->queries_[id] = std::move(query);
      device_->schedule(id);
      return Value(true);
    }
    if (command == "retune") {
      auto it = device_->queries_.find(id);
      if (it == device_->queries_.end()) {
        return NotFound("query '" + id + "' not sampling");
      }
      std::int64_t period_s = integer("period");
      if (period_s <= 0) return InvalidArgument("period must be positive");
      it->second.period = std::chrono::seconds(period_s);
      // Reschedule: cancel the pending tick, schedule with the new period.
      device_->timers_.cancel(it->second.timer_id);
      device_->schedule(id);
      return Value(true);
    }
    if (command == "stop") {
      auto it = device_->queries_.find(id);
      if (it == device_->queries_.end()) {
        return NotFound("query '" + id + "' not sampling");
      }
      device_->timers_.cancel(it->second.timer_id);
      device_->queries_.erase(it);
      return Value(true);
    }
    return NotFound("sensors have no command '" + command + "'");
  }

 private:
  CrowdDevice* device_;
};

namespace {

/// CSML synthesis semantics.
synthesis::Lts make_csml_lts() {
  synthesis::Lts lts("initial");
  lts.on("initial", ChangeKind::kAddObject, "SensingQuery", "", "running",
         {{"cs.query.start",
           {{"id", Value("%id")},
            {"sensor", Value("%attr:sensor")},
            {"aggregate", Value("%attr:aggregate")},
            {"period", Value("%attr:period_s")}}}});
  // Creation emits period_s/active defaults too; "running" absorbs the
  // initial period set (same value) via an idempotent retune.
  lts.on("running", ChangeKind::kSetAttribute, "SensingQuery", "period_s",
         "running",
         {{"cs.query.retune",
           {{"id", Value("%id")}, {"period", Value("%new")}}}});
  lts.on("running", ChangeKind::kSetAttribute, "SensingQuery", "active",
         "stopped", {{"cs.query.stop", {{"id", Value("%id")}}}}, "",
         Value(false));
  lts.on("running", ChangeKind::kRemoveObject, "SensingQuery", "", "gone",
         {{"cs.query.stop", {{"id", Value("%id")}}}});
  return lts;
}

}  // namespace

CrowdProvider::CrowdProvider(net::Network& network) {
  broker_ = std::make_unique<broker::BrokerLayer>("provider-broker", bus_,
                                                  context_);
  (void)broker_->resources().add_adapter(
      std::make_unique<AggregatorAdapter>(*this));
  broker::Action fold;
  fold.name = "fold-report";
  fold.steps = {broker::invoke_step("aggregator", "fold",
                                    {{"query", Value("$query")},
                                     {"value", Value("$value")},
                                     {"aggregate", Value("$aggregate")}})};
  (void)broker_->register_action(std::move(fold));
  (void)broker_->bind_handler("cs.report", {"fold-report"});
  controller_ = std::make_unique<controller::ControllerLayer>(
      "provider-controller", *broker_, bus_, context_);
  controller::ControllerAction forward;
  forward.name = "fwd-report";
  forward.body = {controller::broker_call("cs.report",
                                          {{"query", Value("$query")},
                                           {"value", Value("$value")},
                                           {"aggregate",
                                            Value("$aggregate")}})};
  (void)controller_->register_action(std::move(forward));
  (void)controller_->bind_action("cs.report", {"fwd-report"});
  broker_->set_metrics(&metrics_);
  controller_->set_metrics(&metrics_);
  (void)broker_->start();
  (void)controller_->start();

  auto endpoint = network.create_endpoint("provider");
  if (endpoint.ok()) {
    endpoint.value()->set_handler([this](const net::Message& message) {
      if (message.topic != "cs.report" || !message.payload.is_list()) return;
      const ValueList& items = message.payload.as_list();
      if (items.size() != 3) return;
      controller::Command command;
      command.name = "cs.report";
      command.args["query"] = items[0];
      command.args["value"] = items[1];
      command.args["aggregate"] = items[2];
      (void)controller_->submit_command(std::move(command));
      controller_->process_pending();
    });
  }
}

const QueryAggregate* CrowdProvider::query(std::string_view id) const {
  auto it = queries_.find(id);
  return it == queries_.end() ? nullptr : &it->second;
}

CrowdDevice::CrowdDevice(std::string id, std::uint32_t seed,
                         net::Network& network, SimClock& clock)
    : id_(std::move(id)), seed_(seed), timers_(clock) {
  broker_ = std::make_unique<broker::BrokerLayer>(id_ + "-broker", bus_,
                                                  context_);
  (void)broker_->resources().add_adapter(
      std::make_unique<SensorAdapter>(*this));
  broker::Action start;
  start.name = "q-start";
  start.steps = {broker::invoke_step("sensors", "start",
                                     {{"id", Value("$id")},
                                      {"sensor", Value("$sensor")},
                                      {"aggregate", Value("$aggregate")},
                                      {"period", Value("$period")}})};
  broker::Action retune;
  retune.name = "q-retune";
  retune.steps = {broker::invoke_step(
      "sensors", "retune", {{"id", Value("$id")},
                            {"period", Value("$period")}})};
  broker::Action stop;
  stop.name = "q-stop";
  stop.steps = {broker::invoke_step("sensors", "stop",
                                    {{"id", Value("$id")}})};
  (void)broker_->register_action(std::move(start));
  (void)broker_->register_action(std::move(retune));
  (void)broker_->register_action(std::move(stop));
  (void)broker_->bind_handler("cs.query.start", {"q-start"});
  (void)broker_->bind_handler("cs.query.retune", {"q-retune"});
  (void)broker_->bind_handler("cs.query.stop", {"q-stop"});

  controller_ = std::make_unique<controller::ControllerLayer>(
      id_ + "-controller", *broker_, bus_, context_);
  for (const char* command :
       {"cs.query.start", "cs.query.retune", "cs.query.stop"}) {
    controller::ControllerAction action;
    action.name = std::string("fwd-") + command;
    controller::Instruction instruction;
    instruction.op = controller::OpCode::kBrokerCall;
    instruction.a = command;
    for (const char* key : {"id", "sensor", "aggregate", "period"}) {
      instruction.args[key] = Value(std::string("$") + key);
    }
    action.body = {std::move(instruction)};
    (void)controller_->register_action(std::move(action));
    (void)controller_->bind_action(command, {std::string("fwd-") + command});
  }
  (void)broker_->start();
  (void)controller_->start();

  controller::ControllerLayer* controller = controller_.get();
  synthesis_ = std::make_unique<synthesis::SynthesisEngine>(
      id_ + "-synthesis", csml_metamodel(), make_csml_lts(), context_,
      [controller](const controller::ControlScript& script,
                   obs::RequestContext& request) {
        obs::ScopedSpan span(request, "controller.script",
                             std::to_string(script.commands.size()) +
                                 " commands");
        MDSM_RETURN_IF_ERROR(controller->submit_script(script, request));
        controller->process_pending(request);
        return Status::Ok();
      });
  broker_->set_metrics(&metrics_);
  controller_->set_metrics(&metrics_);
  synthesis_->set_metrics(&metrics_);
  (void)synthesis_->start();

  auto endpoint = network.create_endpoint(id_);
  if (endpoint.ok()) endpoint_ = endpoint.value();
}

Result<controller::ControlScript> CrowdDevice::submit_model_text(
    std::string_view text, obs::RequestContext& context) {
  obs::ContextScope ambient(context);
  Result<model::Model> parsed = model::parse_model(text, csml_metamodel());
  if (!parsed.ok()) return parsed.status();
  // On-the-fly updates to an already-sampling device (retune/stop of a
  // running query) are control-plane traffic: tag the request so shared
  // bounded pipelines dequeue it through the high-priority lane ahead of
  // bulk query starts.
  if (!queries_.empty()) context.set_attribute("priority", "high");
  obs::ScopedSpan span(context, "ui.submit", parsed->name());
  metrics_.counter("requests.submitted").add();
  Result<controller::ControlScript> script =
      synthesis_->submit_model(std::move(parsed.value()), context);
  if (!script.ok()) metrics_.counter("requests.failed").add();
  return script;
}

Result<controller::ControlScript> CrowdDevice::submit_model_text(
    std::string_view text) {
  last_context_ = std::make_unique<obs::RequestContext>(obs::steady_clock(),
                                                        &metrics_);
  return submit_model_text(text, *last_context_);
}

double CrowdDevice::reading(const std::string& sensor,
                            std::uint64_t index) const {
  // Deterministic synthetic signal: a sensor-specific baseline plus a
  // device offset plus a slow sinusoid over the sample index.
  double base = sensor == "temperature" ? 20.0
                : sensor == "noise"     ? 55.0
                                        : 40.0;  // air_quality
  double device_offset = static_cast<double>(seed_ % 17) * 0.25;
  double wave = 2.0 * std::sin(static_cast<double>(index) / 7.0 +
                               static_cast<double>(seed_ % 5));
  return base + device_offset + wave;
}

void CrowdDevice::schedule(const std::string& query_id) {
  auto it = queries_.find(query_id);
  if (it == queries_.end()) return;
  it->second.timer_id =
      timers_.schedule(it->second.period, [this, query_id] {
        sample(query_id);
      });
}

void CrowdDevice::sample(const std::string& query_id) {
  auto it = queries_.find(query_id);
  if (it == queries_.end()) return;  // stopped meanwhile
  ActiveQuery& query = it->second;
  double value = reading(query.sensor, query.sample_index++);
  ++samples_;
  if (endpoint_ != nullptr) {
    (void)endpoint_->send(
        "provider", "cs.report",
        Value(ValueList{Value(query_id), Value(value),
                        Value(query.aggregate)}));
  }
  schedule(query_id);  // periodic: re-arm
}

std::size_t CrowdDevice::run_due() { return timers_.run_due(); }

std::size_t CrowdDevice::active_queries() const noexcept {
  return queries_.size();
}

CrowdDevice& CrowdFleet::add_device(const std::string& id,
                                    std::uint32_t seed) {
  devices.push_back(std::make_unique<CrowdDevice>(id, seed, network, clock));
  return *devices.back();
}

void CrowdFleet::advance(Duration step, int rounds) {
  for (int round = 0; round < rounds; ++round) {
    clock.advance(step);
    for (auto& device : devices) device->run_due();
    network.run_until_idle();
  }
}

std::unique_ptr<CrowdFleet> make_fleet() {
  auto fleet = std::make_unique<CrowdFleet>();
  fleet->provider = std::make_unique<CrowdProvider>(fleet->network);
  return fleet;
}

}  // namespace mdsm::crowd
