#include "domains/crowd/csml.hpp"

namespace mdsm::crowd {

namespace {

using model::AttrType;
using model::Metamodel;
using model::Value;

Metamodel build() {
  Metamodel mm("csml");
  auto& query = mm.add_class("SensingQuery");
  query.add_attribute({.name = "sensor",
                       .type = AttrType::kEnum,
                       .required = true,
                       .enum_literals = {"temperature", "noise",
                                         "air_quality"}});
  query.add_attribute({.name = "aggregate",
                       .type = AttrType::kEnum,
                       .enum_literals = {"avg", "min", "max", "count"},
                       .default_value = Value("avg")});
  query.add_attribute({.name = "period_s",
                       .type = AttrType::kInt,
                       .required = true});
  query.add_attribute({.name = "region",
                       .type = AttrType::kString,
                       .default_value = Value("everywhere")});
  query.add_attribute({.name = "active",
                       .type = AttrType::kBool,
                       .default_value = Value(true)});
  return mm;
}

}  // namespace

model::MetamodelPtr csml_metamodel() {
  static model::MetamodelPtr instance = model::finalize_metamodel(build());
  return instance;
}

}  // namespace mdsm::crowd
