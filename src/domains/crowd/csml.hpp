// CSML — the CrowdSensing Modeling Language (paper §IV-D, [17]): models
// "represent crowdsensing queries, which in turn are dynamically
// interpreted to drive the acquisition of sensing data (from
// participating devices) and the subsequent processing to produce the
// query results. For long running queries, CSVM also allows on-the-fly
// changes to the user's model, which dynamically reflect on the
// execution of the query."
#pragma once

#include "model/metamodel.hpp"

namespace mdsm::crowd {

/// The finalized CSML metamodel (singleton).
///
/// Classes:
///   SensingQuery — sensor: temperature|noise|air_quality,
///                  aggregate: avg|min|max|count, period_s, region,
///                  active (set false to stop a long-running query)
model::MetamodelPtr csml_metamodel();

}  // namespace mdsm::crowd
