// The simulated crowdsensing fleet (paper §IV-D): participating devices
// and the logically centralized provider.
//
// Split deployment: each device runs all four layers (users author and
// modify query models ON the device), while the provider runs only the
// lower layers, receiving sensing reports and aggregating them. Devices
// sample synthetic sensor signals on the virtual clock and ship reports
// to the provider over the simulated network.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "broker/broker_layer.hpp"
#include "common/clock.hpp"
#include "controller/controller_layer.hpp"
#include "net/network.hpp"
#include "runtime/timer_service.hpp"
#include "synthesis/synthesis_engine.hpp"

namespace mdsm::crowd {

/// Per-query aggregation state on the provider.
struct QueryAggregate {
  std::string aggregate = "avg";  ///< avg|min|max|count
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  [[nodiscard]] double result() const;
};

/// The provider node: lower layers only. Reports arrive as messages,
/// flow through its controller (Case 1 action) into its broker, whose
/// aggregator resource folds them into per-query state.
class CrowdProvider {
 public:
  explicit CrowdProvider(net::Network& network);

  [[nodiscard]] const QueryAggregate* query(std::string_view id) const;
  [[nodiscard]] std::uint64_t reports_received() const noexcept {
    return reports_;
  }
  [[nodiscard]] controller::ControllerLayer& controller() noexcept {
    return *controller_;
  }
  [[nodiscard]] broker::BrokerLayer& broker() noexcept { return *broker_; }
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }

 private:
  friend class AggregatorAdapter;
  runtime::EventBus bus_;
  policy::ContextStore context_;
  obs::MetricsRegistry metrics_;
  std::unique_ptr<broker::BrokerLayer> broker_;
  std::unique_ptr<controller::ControllerLayer> controller_;
  std::map<std::string, QueryAggregate, std::less<>> queries_;
  std::uint64_t reports_ = 0;
};

/// A participating device: all four layers plus a synthetic sensor.
/// Query models are submitted on the device; the CSML LTS turns them
/// into cs.query.* commands; the broker's sensor resource schedules
/// periodic sampling on the shared virtual clock.
class CrowdDevice {
 public:
  CrowdDevice(std::string id, std::uint32_t seed, net::Network& network,
              SimClock& clock);

  /// UI layer: author or modify the device's query model. The
  /// context-free overload mints a context internally (see last_trace()).
  Result<controller::ControlScript> submit_model_text(
      std::string_view text, obs::RequestContext& context);
  Result<controller::ControlScript> submit_model_text(std::string_view text);

  [[nodiscard]] obs::RequestContext make_context(
      std::optional<Duration> deadline = {}) {
    return obs::RequestContext(obs::steady_clock(), &metrics_, deadline);
  }
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const obs::Trace* last_trace() const noexcept {
    return last_context_ == nullptr ? nullptr : &last_context_->trace();
  }

  /// Fire due sampling timers (the fleet's advance() drives this).
  std::size_t run_due();

  [[nodiscard]] const std::string& id() const noexcept { return id_; }
  [[nodiscard]] std::uint64_t samples_sent() const noexcept {
    return samples_;
  }
  [[nodiscard]] std::size_t active_queries() const noexcept;
  [[nodiscard]] controller::ControllerLayer& controller() noexcept {
    return *controller_;
  }

 private:
  friend class SensorAdapter;

  struct ActiveQuery {
    std::string sensor;
    std::string aggregate;
    Duration period{};
    std::uint64_t timer_id = 0;
    std::uint64_t sample_index = 0;
  };

  void schedule(const std::string& query_id);
  void sample(const std::string& query_id);
  [[nodiscard]] double reading(const std::string& sensor,
                               std::uint64_t index) const;

  std::string id_;
  std::uint32_t seed_;
  net::Endpoint* endpoint_ = nullptr;
  runtime::TimerService timers_;
  runtime::EventBus bus_;
  policy::ContextStore context_;
  obs::MetricsRegistry metrics_;
  std::unique_ptr<obs::RequestContext> last_context_;
  std::unique_ptr<broker::BrokerLayer> broker_;
  std::unique_ptr<controller::ControllerLayer> controller_;
  std::unique_ptr<synthesis::SynthesisEngine> synthesis_;
  std::map<std::string, ActiveQuery, std::less<>> queries_;
  std::uint64_t samples_ = 0;
};

/// The whole campaign: provider + N devices over one simulated network.
struct CrowdFleet {
  SimClock clock;
  net::Network network{clock};
  std::unique_ptr<CrowdProvider> provider;
  std::vector<std::unique_ptr<CrowdDevice>> devices;

  CrowdDevice& add_device(const std::string& id, std::uint32_t seed);

  /// Advance virtual time in `step` increments `rounds` times, firing
  /// device sampling timers and delivering reports after each step.
  void advance(Duration step, int rounds);
};

std::unique_ptr<CrowdFleet> make_fleet();

}  // namespace mdsm::crowd
