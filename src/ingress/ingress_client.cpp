#include "ingress/ingress_client.hpp"

#include <utility>
#include <vector>

namespace mdsm::ingress {

IngressClient::IngressClient(net::Network& network,
                             std::string server_endpoint,
                             IngressClientOptions options)
    : network_(&network),
      server_endpoint_(std::move(server_endpoint)),
      options_(std::move(options)) {}

Result<std::unique_ptr<IngressClient>> IngressClient::attach(
    net::Network& network, std::string server_endpoint,
    IngressClientOptions options) {
  std::string name = options.endpoint;
  Result<net::Endpoint*> created = network.create_endpoint(name);
  if (!created.ok()) return created.status();

  std::unique_ptr<IngressClient> client(new IngressClient(
      network, std::move(server_endpoint), std::move(options)));
  client->endpoint_ = network.endpoint_handle(name);
  client->endpoint_name_ = std::move(name);
  IngressClient* raw = client.get();
  client->endpoint_->set_handler(
      [raw](const net::Message& message) { raw->on_reply(message); });
  return client;
}

IngressClient::~IngressClient() {
  endpoint_->set_handler(nullptr);
  // Whatever is still pending will never resolve over the wire now;
  // honor exactly-once by resolving it here.
  std::vector<std::pair<std::uint64_t, Callback>> unresolved;
  {
    std::lock_guard lock(mutex_);
    unresolved.reserve(pending_.size());
    for (auto& [id, call] : pending_) {
      unresolved.emplace_back(id, std::move(call.callback));
    }
    pending_.clear();
    stats_.expired += unresolved.size();
  }
  for (auto& [id, callback] : unresolved) {
    if (callback == nullptr) continue;
    RemoteOutcome outcome;
    outcome.request_id = id;
    outcome.status = Unavailable("ingress client detached before reply");
    outcome.refusal = "reply-lost";
    callback(outcome);
  }
  if (!endpoint_->detached()) network_->remove_endpoint(endpoint_name_);
}

Result<std::uint64_t> IngressClient::send_request(
    std::string topic, wire::Request request,
    std::optional<Duration> deadline, Callback callback) {
  request.auth = options_.auth;

  std::uint64_t id = 0;
  {
    std::lock_guard lock(mutex_);
    if (closed_) {
      return Unavailable("ingress client '" + endpoint_name_ +
                         "' closed (draining)");
    }
    id = next_id_++;
    request.request_id = id;
    // Expiry on the network clock: the budget the server may legally
    // spend, plus the reply's grace period.
    Duration budget = options_.reply_timeout;
    if (deadline.has_value()) budget += *deadline;
    // Registered before the send: a reply raced in by another delivery
    // thread must find its pending entry, or exactly-once breaks.
    PendingCall call;
    call.callback = std::move(callback);
    call.expires_at = network_->clock().now() + budget;
    call.budget = budget;
    call.retries_left = options_.retry_budget;
    if (options_.retry_budget > 0) {
      // Keep the request verbatim so expire_overdue can re-send it
      // under the same id (the server dedups on it).
      call.topic = topic;
      call.request = request;
    }
    pending_.emplace(id, std::move(call));
    ++stats_.submitted;
  }

  Status sent = endpoint_->send(server_endpoint_, std::move(topic),
                                wire::encode_request(request));
  if (!sent.ok()) {
    std::lock_guard lock(mutex_);
    pending_.erase(id);
    --stats_.submitted;
    return sent;
  }
  return id;
}

Result<std::uint64_t> IngressClient::submit(std::string_view dsml,
                                            std::string_view session,
                                            std::string text,
                                            Callback callback,
                                            RemoteSubmitOptions options) {
  if (dsml.empty() || session.empty()) {
    return InvalidArgument("submit needs a dsml and a session name");
  }
  wire::Request request;
  request.text = std::move(text);
  request.high_priority = options.high_priority;
  request.forwarded_for = std::move(options.forwarded_for);
  if (options.deadline.has_value()) {
    request.deadline_us =
        std::chrono::duration_cast<std::chrono::microseconds>(*options.deadline)
            .count();
  }
  std::string topic = "submit/";
  topic.append(dsml);
  topic.push_back('/');
  topic.append(session);
  return send_request(
      std::move(topic), std::move(request),
      options.wait_includes_deadline ? options.deadline : std::nullopt,
      std::move(callback));
}

Result<std::uint64_t> IngressClient::query(std::string_view what,
                                           Callback callback) {
  if (what.empty()) return InvalidArgument("query needs a subject");
  return send_request("query/" + std::string(what), wire::Request{}, {},
                      std::move(callback));
}

Result<std::uint64_t> IngressClient::call(std::string topic,
                                          wire::Request request,
                                          Callback callback,
                                          std::optional<Duration> deadline) {
  if (topic.empty()) return InvalidArgument("call needs a topic");
  return send_request(std::move(topic), std::move(request), deadline,
                      std::move(callback));
}

void IngressClient::on_reply(const net::Message& message) {
  Result<wire::Reply> decoded = wire::decode_reply(message.payload);
  if (!decoded.ok()) {
    std::lock_guard lock(mutex_);
    ++stats_.stray_replies;
    return;
  }
  const wire::Reply& reply = decoded.value();

  Callback callback;
  {
    std::lock_guard lock(mutex_);
    auto it = pending_.find(reply.request_id);
    if (it == pending_.end()) {
      // Late reply for an expired entry, or corruption: either way
      // the callback already fired, so only the ledger moves.
      ++stats_.stray_replies;
      return;
    }
    callback = std::move(it->second.callback);
    pending_.erase(it);
    if (reply.code == ErrorCode::kOk) {
      ++stats_.resolved_ok;
    } else {
      ++stats_.refused;
    }
  }

  if (callback == nullptr) return;
  RemoteOutcome outcome;
  outcome.request_id = reply.request_id;
  outcome.status = reply.code == ErrorCode::kOk
                       ? Status::Ok()
                       : Status(reply.code, reply.message);
  outcome.refusal = reply.refusal;
  outcome.commands = reply.commands;
  outcome.payload = reply.message;
  callback(outcome);
}

std::size_t IngressClient::expire_overdue() {
  const TimePoint now = network_->clock().now();
  std::vector<std::pair<std::uint64_t, Callback>> overdue;
  std::vector<std::pair<std::string, wire::Request>> resends;
  {
    std::lock_guard lock(mutex_);
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->second.expires_at > now) {
        ++it;
        continue;
      }
      PendingCall& call = it->second;
      if (call.retries_left > 0) {
        // Re-send under the same id and re-arm the window; the server's
        // dedup ledger keeps the replay idempotent.
        --call.retries_left;
        call.expires_at = now + call.budget;
        resends.emplace_back(call.topic, call.request);
        ++stats_.retried;
        ++it;
        continue;
      }
      overdue.emplace_back(it->first, std::move(call.callback));
      it = pending_.erase(it);
    }
    stats_.expired += overdue.size();
  }
  // Sends and callbacks outside the lock: a reply may race in during
  // the resend (it finds the still-pending entry) and callbacks may
  // legally resubmit.
  for (auto& [topic, request] : resends) {
    // Failure is not terminal: the pending entry stays armed and either
    // a later retry or final expiry resolves it.
    (void)endpoint_->send(server_endpoint_, topic,
                          wire::encode_request(request));
  }
  for (auto& [id, callback] : overdue) {
    if (callback == nullptr) continue;
    RemoteOutcome outcome;
    outcome.request_id = id;
    outcome.status =
        Timeout("no reply for request " + std::to_string(id) +
                " within its window (request or reply lost)");
    outcome.refusal = "reply-lost";
    callback(outcome);
  }
  return overdue.size();
}

void IngressClient::close() {
  std::lock_guard lock(mutex_);
  closed_ = true;
}

bool IngressClient::closed() const {
  std::lock_guard lock(mutex_);
  return closed_;
}

std::size_t IngressClient::pending() const {
  std::lock_guard lock(mutex_);
  return pending_.size();
}

IngressClient::Stats IngressClient::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace mdsm::ingress
