#include "ingress/ingress_server.hpp"

#include <chrono>
#include <utility>

namespace mdsm::ingress {

namespace {

/// Reply-loop poll cap: with a virtual clock the loop thread cannot see
/// advances, so it re-checks at least this often (same rationale as the
/// platform's staged event loop).
constexpr Duration kReplyPollCap = std::chrono::milliseconds(1);

/// "<client>#<id>": the retry-stable identity of a submission. A
/// front-end forwarding on a client's behalf stamps forwarded_for with
/// the *original* identity so retries routed through a different
/// front-end instance still dedup.
std::string dedup_key(const net::Message& message,
                      const wire::Request& request) {
  if (!request.forwarded_for.empty()) return request.forwarded_for;
  return message.from + "#" + std::to_string(request.request_id);
}

}  // namespace

IngressServer::IngressServer(core::Platform& platform, net::Network& network)
    : platform_(&platform), network_(&network) {}

Result<std::unique_ptr<IngressServer>> IngressServer::attach(
    core::Platform& platform, net::Network& network,
    IngressServerOptions options) {
  const core::IngressSettings& settings = platform.ingress_settings();
  std::string name = !options.endpoint.empty() ? options.endpoint
                     : !settings.endpoint.empty()
                         ? settings.endpoint
                         : platform.name() + ".ingress";

  Result<net::Endpoint*> created = network.create_endpoint(name);
  if (!created.ok()) return created.status();

  // Can't use make_unique: the constructor is private.
  std::unique_ptr<IngressServer> server(new IngressServer(platform, network));
  server->endpoint_ = network.endpoint_handle(name);
  server->endpoint_name_ = std::move(name);
  server->attach_time_ = platform.clock().now();
  server->ledger_capacity_ = options.ledger_capacity;
  server->dedup_ttl_ = settings.dedup_ttl;
  server->chain_.set_metrics(&platform.metrics());
  server->install_default_chain(settings);
  if (Status routes = server->install_default_routes(); !routes.ok()) {
    network.remove_endpoint(server->endpoint_name_);
    return routes;
  }

  runtime::EventLoopConfig loop_config;
  loop_config.clock = &platform.clock();
  loop_config.threaded = !options.manual_reply_loop;
  loop_config.poll_cap = kReplyPollCap;
  server->reply_loop_ = std::make_unique<runtime::EventLoop>(loop_config);

  // Last: no traffic may reach on_message before the server is whole.
  IngressServer* raw = server.get();
  server->endpoint_->set_handler(
      [raw](const net::Message& message) { raw->on_message(message); });
  return server;
}

IngressServer::~IngressServer() {
  // Quiesce inbound traffic first, then let queued replies drain while
  // the endpoint is still attached, then give the endpoint back.
  endpoint_->set_handler(nullptr);
  if (reply_loop_ != nullptr) {
    reply_loop_->flush();
    reply_loop_->stop();
  }
  if (!endpoint_->detached()) network_->remove_endpoint(endpoint_name_);
}

void IngressServer::install_default_chain(
    const core::IngressSettings& settings) {
  // trace: thread the sender-scoped request identity across the wire so
  // the platform's root span and bus events stay correlated with the
  // remote submission. A forwarded request (cluster front-end relaying
  // on a client's behalf) keeps the *original* client identity, so one
  // submission traces as one request no matter how many hops it took.
  chain_.add("trace", [](IngressContext& context) {
    std::string remote_id =
        !context.request.forwarded_for.empty()
            ? context.request.forwarded_for
            : context.message->from + "#" +
                  std::to_string(context.request.request_id);
    context.options.attributes.emplace_back(
        std::string(obs::RequestContext::kRemoteIdAttribute),
        std::move(remote_id));
    if (std::string_view session = context.params->get("session");
        !session.empty()) {
      context.options.attributes.emplace_back("ingress.session",
                                              std::string(session));
    }
    return Status::Ok();
  });

  // rate-limit: per-client token bucket on the network clock, enabled
  // when the model sets ingress_rate_limit > 0. Sits before auth so a
  // flooding client can't even buy auth-check cycles.
  if (settings.rate_limit > 0) {
    chain_.add("rate-limit",
               make_rate_limit_middleware(settings.rate_limit,
                                          settings.rate_burst,
                                          network_->clock()));
  }

  // auth: shared-secret stub. A model with no ingress_auth attribute
  // runs an open door; a configured token refuses mismatches with the
  // pre-typed "unauthenticated" slug.
  if (!settings.auth_token.empty()) {
    std::string token = settings.auth_token;
    chain_.add("auth", [token](IngressContext& context) {
      if (context.request.auth == token) return Status::Ok();
      context.refusal = "unauthenticated";
      return FailedPrecondition("ingress auth token mismatch");
    });
  }

  // deadline: the wire budget (or the model default) becomes the
  // pipeline deadline PR-5 admission enforces at the platform door.
  Duration default_deadline = settings.default_deadline;
  chain_.add("deadline", [default_deadline](IngressContext& context) {
    if (context.request.deadline_us < 0) {
      return InvalidArgument("negative deadline_us on the wire");
    }
    if (context.request.deadline_us > 0) {
      context.options.deadline =
          std::chrono::microseconds(context.request.deadline_us);
    } else if (default_deadline.count() > 0) {
      context.options.deadline = default_deadline;
    }
    context.options.high_priority = context.request.high_priority;
    return Status::Ok();
  });
}

Status IngressServer::install_default_routes() {
  Status submit_route = router_.add(
      wire::kSubmitPattern,
      [this](const net::Message& message, const RouteParams& params) {
        handle_submit(message, params);
      });
  if (!submit_route.ok()) return submit_route;
  return router_.add(
      wire::kQueryPattern,
      [this](const net::Message& message, const RouteParams& params) {
        handle_query(message, params);
      });
}

void IngressServer::on_message(const net::Message& message) {
  received_.fetch_add(1, std::memory_order_relaxed);
  platform_->metrics().counter("ingress.received").add();

  std::optional<Router::Match> match = router_.route(message.topic);
  if (!match.has_value()) {
    unrouted_.fetch_add(1, std::memory_order_relaxed);
    platform_->metrics().counter("ingress.unrouted").add();
    // Best-effort correlation: the body may still carry a request id.
    Result<wire::Request> decoded = wire::decode_request(message.payload);
    const std::uint64_t id = decoded.ok() ? decoded.value().request_id : 0;
    refuse(message.from, id,
           NotFound("no route for topic '" + message.topic + "'"),
           "no-route");
    return;
  }
  (*match->handler)(message, match->params);
}

void IngressServer::handle_submit(const net::Message& message,
                                  const RouteParams& params) {
  Result<wire::Request> decoded = wire::decode_request(message.payload);
  if (!decoded.ok()) {
    malformed_.fetch_add(1, std::memory_order_relaxed);
    platform_->metrics().counter("ingress.malformed").add();
    refuse(message.from, 0, decoded.status(),
           wire::is_version_mismatch(decoded.status()) ? "bad-version"
                                                       : "malformed");
    return;
  }

  IngressContext context;
  context.message = &message;
  context.params = &params;
  context.request = std::move(decoded).value();
  const std::uint64_t id = context.request.request_id;

  // The route names the DSML it wants; this platform speaks exactly one.
  if (std::string_view dsml = params.get("dsml");
      dsml != platform_->dsml()->name()) {
    refuse(message.from, id,
           NotFound("platform speaks DSML '" + platform_->dsml()->name() +
                    "', not '" + std::string(dsml) + "'"),
           "wrong-dsml");
    return;
  }

  // Retry dedup: a client that lost the reply resends under the same
  // identity. Answer completed work from the ledger and absorb retries
  // of in-flight work — the submission must never execute twice.
  const std::string key = dedup_key(message, context.request);
  wire::Reply recorded;
  switch (check_dedup(key, &recorded)) {
    case DedupVerdict::kCompleted:
      recorded.request_id = id;
      send_reply(message.from, std::move(recorded));
      return;
    case DedupVerdict::kInFlight:
      return;  // the original's completion reply answers the retry too
    case DedupVerdict::kFresh:
      break;
  }

  if (Status chained = chain_.run(context); !chained.ok()) {
    abandon_in_flight(key);
    refuse(message.from, id, chained, std::move(context.refusal));
    return;
  }

  const std::string to = message.from;
  const TimePoint start = platform_->clock().now();
  Status door = platform_->submit_async(
      std::move(context.request.text),
      [this, to, id, key, start](Result<controller::ControlScript> outcome) {
        platform_->metrics()
            .histogram("ingress.service_us")
            .record(platform_->clock().now() - start);
        wire::Reply reply;
        reply.request_id = id;
        if (outcome.ok()) {
          completed_ok_.fetch_add(1, std::memory_order_relaxed);
          platform_->metrics().counter("ingress.completed_ok").add();
          reply.code = ErrorCode::kOk;
          reply.message = outcome.value().id;
          reply.commands =
              static_cast<std::int64_t>(outcome.value().commands.size());
          record_outcome(key, reply);
          send_reply(to, std::move(reply));
        } else {
          completed_error_.fetch_add(1, std::memory_order_relaxed);
          platform_->metrics().counter("ingress.completed_error").add();
          // Pipeline errors are terminal for this identity too: the
          // work was consumed, so a retry must see the same answer.
          reply.code = outcome.status().code();
          reply.refusal =
              std::string(wire::classify_refusal(outcome.status()));
          reply.message = outcome.status().message();
          record_outcome(key, reply);
          refuse(to, id, outcome.status(), {});
        }
      },
      std::move(context.options));
  if (!door.ok()) {
    // Refused at the platform door (not running / admission shed /
    // queue full): the PR-5 contract says no callback will fire, so the
    // typed refusal reply is the only signal the sender gets. Door
    // refusals are not ledgered — the condition is transient and a
    // retry deserves a fresh attempt.
    abandon_in_flight(key);
    refuse(to, id, door, std::move(context.refusal));
    return;
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  platform_->metrics().counter("ingress.accepted").add();
}

void IngressServer::handle_query(const net::Message& message,
                                 const RouteParams& params) {
  Result<wire::Request> decoded = wire::decode_request(message.payload);
  if (!decoded.ok()) {
    malformed_.fetch_add(1, std::memory_order_relaxed);
    platform_->metrics().counter("ingress.malformed").add();
    refuse(message.from, 0, decoded.status(),
           wire::is_version_mismatch(decoded.status()) ? "bad-version"
                                                       : "malformed");
    return;
  }

  IngressContext context;
  context.message = &message;
  context.params = &params;
  context.request = std::move(decoded).value();
  const std::uint64_t id = context.request.request_id;

  if (Status chained = chain_.run(context); !chained.ok()) {
    refuse(message.from, id, chained, std::move(context.refusal));
    return;
  }

  const std::string_view what = params.get("what");
  wire::Reply reply;
  reply.request_id = id;
  if (what == "runtime-model") {
    reply.message = platform_->runtime_model_text();
  } else if (what == "metrics") {
    reply.message = platform_->metrics().to_text();
  } else {
    refuse(message.from, id,
           NotFound("unknown query '" + std::string(what) + "'"), "no-route");
    return;
  }
  send_reply(message.from, std::move(reply));
}

void IngressServer::refuse(const std::string& to, std::uint64_t request_id,
                           const Status& status, std::string refusal) {
  if (refusal.empty()) refusal = std::string(wire::classify_refusal(status));
  refused_.fetch_add(1, std::memory_order_relaxed);
  platform_->metrics().counter("ingress.refused").add();
  platform_->metrics().counter("ingress.refused." + refusal).add();

  wire::Reply reply;
  reply.request_id = request_id;
  reply.code = status.code();
  reply.refusal = std::move(refusal);
  reply.message = status.message();
  send_reply(to, std::move(reply));
}

void IngressServer::send_reply(const std::string& to, wire::Reply reply) {
  // Hop onto the reply loop: completion callbacks run on pipeline
  // workers, and network sends don't belong there. The endpoint handle
  // is pinned into the closure, so a reply racing teardown fails soft
  // (kUnavailable) instead of touching a destroyed endpoint.
  std::shared_ptr<net::Endpoint> endpoint = endpoint_;
  model::Value payload = wire::encode_reply(reply);
  reply_loop_->post([this, endpoint = std::move(endpoint), to,
                     payload = std::move(payload)]() {
    Status sent =
        endpoint->send(to, std::string(wire::kReplyTopic), payload);
    if (sent.ok()) {
      replies_.fetch_add(1, std::memory_order_relaxed);
      platform_->metrics().counter("ingress.replies").add();
    } else {
      reply_failures_.fetch_add(1, std::memory_order_relaxed);
      platform_->metrics().counter("ingress.reply_failures").add();
    }
  });
}

std::size_t IngressServer::pump() { return reply_loop_->poll(); }

void IngressServer::post_reply(const std::string& to, wire::Reply reply) {
  send_reply(to, std::move(reply));
}

void IngressServer::post_refusal(const std::string& to,
                                 std::uint64_t request_id,
                                 const Status& status, std::string refusal) {
  refuse(to, request_id, status, std::move(refusal));
}

IngressServer::DedupVerdict IngressServer::check_dedup(const std::string& key,
                                                       wire::Reply* recorded) {
  std::lock_guard lock(dedup_mutex_);
  auto it = ledger_.find(key);
  if (it != ledger_.end() && it->second.completed &&
      dedup_ttl_ > Duration(0) &&
      network_->clock().now() - it->second.recorded_at >= dedup_ttl_) {
    // TTL lapsed: the recorded outcome is too old to answer from, so
    // the retry re-executes as fresh work. The stale (key, seq) pair
    // left in ledger_order_ is skipped at eviction by its seq mismatch.
    dedup_expired_.fetch_add(1, std::memory_order_relaxed);
    platform_->metrics().counter("ingress.dedup_expired").add();
    --ledger_completed_;
    ledger_.erase(it);
    it = ledger_.end();
  }
  if (it != ledger_.end()) {
    deduped_.fetch_add(1, std::memory_order_relaxed);
    platform_->metrics().counter("ingress.deduped").add();
    if (it->second.completed) {
      *recorded = it->second.reply;
      return DedupVerdict::kCompleted;
    }
    return DedupVerdict::kInFlight;
  }
  DedupEntry entry;
  entry.seq = ++ledger_seq_;
  ledger_.emplace(key, std::move(entry));
  return DedupVerdict::kFresh;
}

void IngressServer::abandon_in_flight(const std::string& key) {
  std::lock_guard lock(dedup_mutex_);
  auto it = ledger_.find(key);
  if (it != ledger_.end() && !it->second.completed) ledger_.erase(it);
}

void IngressServer::record_outcome(const std::string& key,
                                   const wire::Reply& reply) {
  std::lock_guard lock(dedup_mutex_);
  DedupEntry& entry = ledger_[key];
  if (entry.completed) return;  // already terminal for this identity
  if (entry.seq == 0) entry.seq = ++ledger_seq_;
  entry.completed = true;
  entry.reply = reply;
  entry.recorded_at = network_->clock().now();
  ledger_order_.emplace_back(key, entry.seq);
  ++ledger_completed_;
  while (ledger_completed_ > ledger_capacity_ && !ledger_order_.empty()) {
    const auto [victim, seq] = std::move(ledger_order_.front());
    ledger_order_.pop_front();
    auto it = ledger_.find(victim);
    // Evict only the exact completed entry this slot was queued for: an
    // in-flight entry (never queued) or a TTL-readmitted successor
    // (different seq) survives capacity pressure untouched.
    if (it != ledger_.end() && it->second.completed &&
        it->second.seq == seq) {
      ledger_.erase(it);
      --ledger_completed_;
    }
  }
}

IngressServer::Stats IngressServer::stats() const {
  Stats stats;
  stats.received = received_.load(std::memory_order_relaxed);
  stats.malformed = malformed_.load(std::memory_order_relaxed);
  stats.unrouted = unrouted_.load(std::memory_order_relaxed);
  stats.refused = refused_.load(std::memory_order_relaxed);
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.completed_ok = completed_ok_.load(std::memory_order_relaxed);
  stats.completed_error = completed_error_.load(std::memory_order_relaxed);
  stats.replies = replies_.load(std::memory_order_relaxed);
  stats.reply_failures = reply_failures_.load(std::memory_order_relaxed);
  stats.deduped = deduped_.load(std::memory_order_relaxed);
  stats.dedup_expired = dedup_expired_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace mdsm::ingress
