// Pattern-based request router for the ingress front-end (PR 7), in the
// style of WebFrame's route tables: a topic pattern is a '/'-separated
// sequence of literal segments and "{name}" captures, and routing a
// concrete topic binds each capture to its segment. The most literal
// match wins ("submit/cml/{session}" beats "submit/{dsml}/{session}"
// for "submit/cml/s1"), ties resolve to registration order.
//
// Thread-safety: routes are installed at attach time, before any traffic
// flows; route() is const and safe to call from the delivery thread
// concurrently with other route() calls. Mutating the table while
// routing is not supported (same discipline as Endpoint handlers).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "net/network.hpp"

namespace mdsm::ingress {

/// Capture bindings of a matched route ("dsml" → "cml"). A route holds a
/// handful of captures at most, so a flat vector beats a map.
class RouteParams {
 public:
  void add(std::string key, std::string value) {
    params_.emplace_back(std::move(key), std::move(value));
  }
  [[nodiscard]] std::string_view get(std::string_view key) const noexcept {
    for (const auto& [k, v] : params_) {
      if (k == key) return v;
    }
    return {};
  }
  [[nodiscard]] std::size_t size() const noexcept { return params_.size(); }

 private:
  std::vector<std::pair<std::string, std::string>> params_;
};

class Router {
 public:
  using Handler =
      std::function<void(const net::Message&, const RouteParams&)>;

  struct Match {
    const Handler* handler = nullptr;
    RouteParams params;
    std::string_view pattern;  ///< the winning pattern, for diagnostics
  };

  /// Register `pattern` → `handler`. Patterns must be non-empty, and a
  /// pattern registered twice is an error (ambiguous dispatch).
  Status add(std::string_view pattern, Handler handler);

  /// Match `topic` against the table; nullopt when no route fits.
  [[nodiscard]] std::optional<Match> route(std::string_view topic) const;

  [[nodiscard]] std::size_t size() const noexcept { return routes_.size(); }

 private:
  struct Route {
    std::string pattern;
    std::vector<std::string> segments;  ///< literals and "{name}" captures
    std::size_t literals = 0;           ///< specificity score
    Handler handler;
  };

  static std::vector<std::string> split(std::string_view topic);
  /// True when `segments` fits `topic_segments`, filling `params`.
  static bool matches(const Route& route,
                      const std::vector<std::string>& topic_segments,
                      RouteParams& params);

  std::vector<Route> routes_;
};

}  // namespace mdsm::ingress
