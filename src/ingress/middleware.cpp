#include "ingress/middleware.hpp"

namespace mdsm::ingress {

void MiddlewareChain::add(std::string name, Middleware fn) {
  entries_.push_back(Entry{std::move(name), std::move(fn)});
}

Status MiddlewareChain::run(IngressContext& context) const {
  for (const Entry& entry : entries_) {
    Status status = entry.fn(context);
    if (!status.ok()) {
      if (metrics_ != nullptr) {
        metrics_->counter("ingress.middleware." + entry.name + ".refusals")
            .add();
      }
      if (context.refusal.empty()) {
        context.refusal = std::string(wire::classify_refusal(status));
      }
      return status;
    }
  }
  return Status::Ok();
}

std::vector<std::string> MiddlewareChain::names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const Entry& entry : entries_) names.push_back(entry.name);
  return names;
}

}  // namespace mdsm::ingress
