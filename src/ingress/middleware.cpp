#include "ingress/middleware.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <utility>

namespace mdsm::ingress {

void MiddlewareChain::add(std::string name, Middleware fn) {
  entries_.push_back(Entry{std::move(name), std::move(fn)});
}

Status MiddlewareChain::run(IngressContext& context) const {
  for (const Entry& entry : entries_) {
    Status status = entry.fn(context);
    if (!status.ok()) {
      if (metrics_ != nullptr) {
        metrics_->counter("ingress.middleware." + entry.name + ".refusals")
            .add();
      }
      if (context.refusal.empty()) {
        context.refusal = std::string(wire::classify_refusal(status));
      }
      return status;
    }
  }
  return Status::Ok();
}

std::vector<std::string> MiddlewareChain::names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const Entry& entry : entries_) names.push_back(entry.name);
  return names;
}

RateLimiter::RateLimiter(double rate_per_second, double burst)
    : rate_(std::max(rate_per_second, 0.0)),
      burst_(burst > 0 ? burst : std::max(1.0, rate_)) {}

bool RateLimiter::admit(std::string_view client, TimePoint now) {
  std::lock_guard lock(mutex_);
  auto it = buckets_.find(client);
  if (it == buckets_.end()) {
    // First sight of this client: a full bucket, minus this request.
    it = buckets_.emplace(std::string(client), Bucket{burst_, now}).first;
  } else {
    Bucket& bucket = it->second;
    if (now > bucket.refilled_at) {
      const double elapsed_s =
          std::chrono::duration<double>(now - bucket.refilled_at).count();
      bucket.tokens = std::min(burst_, bucket.tokens + elapsed_s * rate_);
      bucket.refilled_at = now;
    }
  }
  Bucket& bucket = it->second;
  if (bucket.tokens < 1.0) return false;
  bucket.tokens -= 1.0;
  return true;
}

std::size_t RateLimiter::clients() const {
  std::lock_guard lock(mutex_);
  return buckets_.size();
}

Middleware make_rate_limit_middleware(double rate_per_second, double burst,
                                      const Clock& clock) {
  // Shared state: the chain copies the std::function, so the limiter
  // lives behind a shared_ptr all copies see.
  auto limiter = std::make_shared<RateLimiter>(rate_per_second, burst);
  const Clock* clock_ptr = &clock;
  return [limiter, clock_ptr](IngressContext& context) {
    if (limiter->admit(context.message->from, clock_ptr->now())) {
      return Status::Ok();
    }
    context.refusal = "rate-limited";
    return Unavailable("client '" + context.message->from +
                       "' exceeded the ingress rate limit");
  };
}

}  // namespace mdsm::ingress
