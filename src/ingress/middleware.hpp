// Ordered ingress middleware chain (PR 7), after WebFrame's
// ViewMiddlewareChain: each middleware inspects/annotates the decoded
// request on its way to Platform::submit_async, and the first failure
// short-circuits the chain into a *typed* refusal reply. The default
// chain an IngressServer installs is
//
//   trace    — stamp the cross-wire request id + session as context
//              attributes (the platform opens its root span with them)
//   auth     — shared-secret stub; refusal slug "unauthenticated"
//   deadline — extract the wire deadline (or apply the model default)
//              into SubmitOptions; malformed budgets are refused
//
// PR-5 admission control stays where it lives — at the platform door
// inside submit_async — so the ingress chain hands off an annotated
// request and the overload gates type the refusals the chain forwards.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "core/platform.hpp"
#include "ingress/router.hpp"
#include "ingress/wire.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"

namespace mdsm::ingress {

/// Everything a middleware may read or annotate while a request moves
/// from the wire to the platform door.
struct IngressContext {
  const net::Message* message = nullptr;  ///< raw wire message
  const RouteParams* params = nullptr;    ///< route captures (dsml, session)
  wire::Request request;                  ///< decoded body
  core::SubmitOptions options;            ///< accumulated submit options
  /// Refusal slug a refusing middleware pre-types ("unauthenticated");
  /// left empty, the server falls back to wire::classify_refusal.
  std::string refusal;
};

/// Returns Ok to pass the request on, any error Status to refuse it.
using Middleware = std::function<Status(IngressContext&)>;

class MiddlewareChain {
 public:
  /// Append `fn` under `name` (names show up in metrics:
  /// "ingress.middleware.<name>.refusals").
  void add(std::string name, Middleware fn);

  /// Run every middleware in registration order; the first non-Ok
  /// status stops the chain and is returned. Counts per-middleware
  /// refusals when a registry is attached.
  [[nodiscard]] Status run(IngressContext& context) const;

  void set_metrics(obs::MetricsRegistry* metrics) noexcept {
    metrics_ = metrics;
  }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  struct Entry {
    std::string name;
    Middleware fn;
  };
  std::vector<Entry> entries_;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace mdsm::ingress
