// Ordered ingress middleware chain (PR 7), after WebFrame's
// ViewMiddlewareChain: each middleware inspects/annotates the decoded
// request on its way to Platform::submit_async, and the first failure
// short-circuits the chain into a *typed* refusal reply. The default
// chain an IngressServer installs is
//
//   trace    — stamp the cross-wire request id + session as context
//              attributes (the platform opens its root span with them)
//   auth     — shared-secret stub; refusal slug "unauthenticated"
//   deadline — extract the wire deadline (or apply the model default)
//              into SubmitOptions; malformed budgets are refused
//
// PR-5 admission control stays where it lives — at the platform door
// inside submit_async — so the ingress chain hands off an annotated
// request and the overload gates type the refusals the chain forwards.
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.hpp"
#include "common/status.hpp"
#include "core/platform.hpp"
#include "ingress/router.hpp"
#include "ingress/wire.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"

namespace mdsm::ingress {

/// Everything a middleware may read or annotate while a request moves
/// from the wire to the platform door.
struct IngressContext {
  const net::Message* message = nullptr;  ///< raw wire message
  const RouteParams* params = nullptr;    ///< route captures (dsml, session)
  wire::Request request;                  ///< decoded body
  core::SubmitOptions options;            ///< accumulated submit options
  /// Refusal slug a refusing middleware pre-types ("unauthenticated");
  /// left empty, the server falls back to wire::classify_refusal.
  std::string refusal;
};

/// Returns Ok to pass the request on, any error Status to refuse it.
using Middleware = std::function<Status(IngressContext&)>;

class MiddlewareChain {
 public:
  /// Append `fn` under `name` (names show up in metrics:
  /// "ingress.middleware.<name>.refusals").
  void add(std::string name, Middleware fn);

  /// Run every middleware in registration order; the first non-Ok
  /// status stops the chain and is returned. Counts per-middleware
  /// refusals when a registry is attached.
  [[nodiscard]] Status run(IngressContext& context) const;

  void set_metrics(obs::MetricsRegistry* metrics) noexcept {
    metrics_ = metrics;
  }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  struct Entry {
    std::string name;
    Middleware fn;
  };
  std::vector<Entry> entries_;
  obs::MetricsRegistry* metrics_ = nullptr;
};

/// Per-client token-bucket rate limiter backing the "rate-limit"
/// middleware (PR 8). Each client endpoint gets a bucket of `burst`
/// tokens refilled at `rate_per_second`; admit() takes one token or
/// reports the bucket dry. Buckets are lazily created and refilled on
/// the caller-supplied clock (the network's SimClock at the ingress), so
/// virtual-time tests are deterministic.
class RateLimiter {
 public:
  RateLimiter(double rate_per_second, double burst);

  /// Take one token for `client` at `now`; false when the bucket is dry.
  [[nodiscard]] bool admit(std::string_view client, TimePoint now);

  [[nodiscard]] std::size_t clients() const;

 private:
  struct Bucket {
    double tokens = 0;
    TimePoint refilled_at{};
  };

  double rate_;
  double burst_;
  mutable std::mutex mutex_;
  std::map<std::string, Bucket, std::less<>> buckets_;
};

/// The middleware the default chain installs when the model sets
/// ingress_rate_limit > 0: refuses with slug "rate-limited" /
/// kUnavailable when the sender's bucket is dry. `clock` must outlive
/// the chain (the ingress passes the network clock).
[[nodiscard]] Middleware make_rate_limit_middleware(
    double rate_per_second, double burst, const Clock& clock);

}  // namespace mdsm::ingress
