#include "ingress/router.hpp"

namespace mdsm::ingress {

std::vector<std::string> Router::split(std::string_view topic) {
  std::vector<std::string> segments;
  std::size_t start = 0;
  while (start <= topic.size()) {
    std::size_t slash = topic.find('/', start);
    if (slash == std::string_view::npos) slash = topic.size();
    segments.emplace_back(topic.substr(start, slash - start));
    start = slash + 1;
  }
  return segments;
}

Status Router::add(std::string_view pattern, Handler handler) {
  if (pattern.empty()) return InvalidArgument("route pattern is empty");
  if (handler == nullptr) {
    return InvalidArgument("route '" + std::string(pattern) +
                           "' has no handler");
  }
  for (const Route& existing : routes_) {
    if (existing.pattern == pattern) {
      return AlreadyExists("route '" + std::string(pattern) +
                           "' is already registered");
    }
  }
  Route route;
  route.pattern = std::string(pattern);
  route.segments = split(pattern);
  for (const std::string& segment : route.segments) {
    const bool capture =
        segment.size() >= 2 && segment.front() == '{' && segment.back() == '}';
    if (capture && segment.size() == 2) {
      return InvalidArgument("route '" + std::string(pattern) +
                             "' has an unnamed capture");
    }
    if (!capture) ++route.literals;
  }
  route.handler = std::move(handler);
  routes_.push_back(std::move(route));
  return Status::Ok();
}

bool Router::matches(const Route& route,
                     const std::vector<std::string>& topic_segments,
                     RouteParams& params) {
  if (route.segments.size() != topic_segments.size()) return false;
  for (std::size_t i = 0; i < route.segments.size(); ++i) {
    const std::string& pattern_segment = route.segments[i];
    const bool capture = pattern_segment.size() >= 3 &&
                         pattern_segment.front() == '{' &&
                         pattern_segment.back() == '}';
    if (capture) {
      // An empty topic segment cannot bind a capture — "submit//x" must
      // not silently match "submit/{dsml}/x" with an empty DSML.
      if (topic_segments[i].empty()) return false;
      params.add(pattern_segment.substr(1, pattern_segment.size() - 2),
                 topic_segments[i]);
    } else if (pattern_segment != topic_segments[i]) {
      return false;
    }
  }
  return true;
}

std::optional<Router::Match> Router::route(std::string_view topic) const {
  const std::vector<std::string> topic_segments = split(topic);
  const Route* best = nullptr;
  RouteParams best_params;
  for (const Route& candidate : routes_) {
    RouteParams params;
    if (!matches(candidate, topic_segments, params)) continue;
    // Most literal segments wins; ties keep the earliest registration.
    if (best == nullptr || candidate.literals > best->literals) {
      best = &candidate;
      best_params = std::move(params);
    }
  }
  if (best == nullptr) return std::nullopt;
  Match match;
  match.handler = &best->handler;
  match.params = std::move(best_params);
  match.pattern = best->pattern;
  return match;
}

}  // namespace mdsm::ingress
