// The networked ingress front-end (PR 7): turns a Platform from a
// library into a server. An IngressServer binds an Endpoint on the
// simulated network, decodes submit/query wire messages, routes them
// through a pattern Router and an ordered MiddlewareChain, and hands
// admitted submissions to Platform::submit_async. Every outcome —
// including the PR-5/PR-6 overload refusals at the platform door — goes
// back to the sender as a typed refusal reply, so a remote client
// experiences exactly the backpressure contract an in-process caller
// does.
//
// Replies are posted through a dedicated runtime::EventLoop rather than
// sent from pipeline workers: completion callbacks hand the encoded
// reply to the loop and return, keeping network work off the request
// pipeline and parking no thread (manual mode lets deterministic tests
// pump the reply queue themselves).
//
// Lifecycle: attach() → traffic → destroy the server *before* the
// Network and Platform it fronts (destruction flushes pending replies,
// then unbinds the endpoint; the PR-7 net lifecycle fixes make a reply
// racing teardown fail soft with kUnavailable instead of crashing).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "core/platform.hpp"
#include "ingress/middleware.hpp"
#include "ingress/router.hpp"
#include "ingress/wire.hpp"
#include "net/network.hpp"
#include "runtime/event_loop.hpp"

namespace mdsm::ingress {

struct IngressServerOptions {
  /// Endpoint name override; "" takes the middleware model's
  /// ingress_endpoint attribute, then "<platform-name>.ingress".
  std::string endpoint;
  /// Create the reply loop in manual mode: replies queue until pump().
  /// Deterministic tests pair this with a SimClock network.
  bool manual_reply_loop = false;
  /// Completed outcomes the dedup ledger retains before the oldest are
  /// forgotten. Only COMPLETED entries count against (or are evicted
  /// for) this bound — an in-flight entry is pinned until it settles.
  std::size_t ledger_capacity = 1024;
};

class IngressServer {
 public:
  /// Bind the server to `network` and front `platform`. Auth token and
  /// default deadline come from the platform's model-decoded
  /// IngressSettings; the default router serves
  /// "submit/{dsml}/{session}" and "query/{what}".
  static Result<std::unique_ptr<IngressServer>> attach(
      core::Platform& platform, net::Network& network,
      IngressServerOptions options = {});

  ~IngressServer();
  IngressServer(const IngressServer&) = delete;
  IngressServer& operator=(const IngressServer&) = delete;

  [[nodiscard]] const std::string& endpoint_name() const noexcept {
    return endpoint_name_;
  }
  /// Extend routing/middleware before traffic flows (not thread-safe
  /// against concurrent delivery, by design — same rule as set_handler).
  [[nodiscard]] Router& router() noexcept { return router_; }
  [[nodiscard]] MiddlewareChain& middleware() noexcept { return chain_; }

  /// Manual reply loop only: send queued replies; returns closures run.
  std::size_t pump();

  /// Dispatch hooks for extension routes registered on router() (the
  /// cluster's replicate/{what} handlers): send a reply / typed refusal
  /// through the server's reply loop, with the same accounting the
  /// built-in routes get.
  void post_reply(const std::string& to, wire::Reply reply);
  void post_refusal(const std::string& to, std::uint64_t request_id,
                    const Status& status, std::string refusal = {});

  /// Snapshot of the server's delivery ledger (all counters are also
  /// mirrored as "ingress.*" metrics in the platform registry).
  struct Stats {
    std::uint64_t received = 0;     ///< wire messages seen
    std::uint64_t malformed = 0;    ///< undecodable payloads
    std::uint64_t unrouted = 0;     ///< no route matched the topic
    std::uint64_t refused = 0;      ///< typed refusals sent (door + chain)
    std::uint64_t accepted = 0;     ///< handed to submit_async, Ok at door
    std::uint64_t completed_ok = 0; ///< pipeline outcomes delivered Ok
    std::uint64_t completed_error = 0;
    std::uint64_t replies = 0;        ///< replies handed to the network
    std::uint64_t reply_failures = 0; ///< network refused the reply send
    std::uint64_t deduped = 0;        ///< retried submits answered/absorbed
                                      ///< by the ledger, not re-executed
    std::uint64_t dedup_expired = 0;  ///< completed entries dropped by TTL
                                      ///< (the retry re-executed as fresh)
  };
  [[nodiscard]] Stats stats() const;

 private:
  IngressServer(core::Platform& platform, net::Network& network);

  void install_default_chain(const core::IngressSettings& settings);
  Status install_default_routes();

  void on_message(const net::Message& message);
  void handle_submit(const net::Message& message, const RouteParams& params);
  void handle_query(const net::Message& message, const RouteParams& params);

  /// Type + send a refusal for `status` (slug from `refusal`, falling
  /// back to classify_refusal).
  void refuse(const std::string& to, std::uint64_t request_id,
              const Status& status, std::string refusal);
  /// Post the reply onto the reply loop (manual: until pump()).
  void send_reply(const std::string& to, wire::Reply reply);

  /// Dedup ledger (PR 8): answer to a retried "<client>#<id>" submit.
  enum class DedupVerdict {
    kFresh,      ///< never seen: execute it (now marked in flight)
    kInFlight,   ///< still executing: swallow, completion will reply
    kCompleted,  ///< finished: answer from the recorded reply
  };
  DedupVerdict check_dedup(const std::string& key, wire::Reply* recorded);
  /// Drop the in-flight mark without recording (refused before the door).
  void abandon_in_flight(const std::string& key);
  /// Record the terminal reply for `key` and clear its in-flight mark.
  void record_outcome(const std::string& key, const wire::Reply& reply);

  core::Platform* platform_;
  net::Network* network_;
  std::shared_ptr<net::Endpoint> endpoint_;  ///< keepalive past removal
  std::string endpoint_name_;
  Router router_;
  MiddlewareChain chain_;
  std::unique_ptr<runtime::EventLoop> reply_loop_;
  TimePoint attach_time_{};

  std::atomic<std::uint64_t> received_{0};
  std::atomic<std::uint64_t> malformed_{0};
  std::atomic<std::uint64_t> unrouted_{0};
  std::atomic<std::uint64_t> refused_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> completed_ok_{0};
  std::atomic<std::uint64_t> completed_error_{0};
  std::atomic<std::uint64_t> replies_{0};
  std::atomic<std::uint64_t> reply_failures_{0};
  std::atomic<std::uint64_t> deduped_{0};
  std::atomic<std::uint64_t> dedup_expired_{0};

  /// Dedup ledger (PR 8, restructured in PR 10): one entry per
  /// "<client>#<id>" identity, in flight from admission until its
  /// terminal reply is recorded. Retries are answered from a completed
  /// entry or absorbed by an in-flight one — never re-executed. Two
  /// bounds apply to COMPLETED entries only: a capacity FIFO and an
  /// optional clock TTL (model attr ingress_dedup_ttl_us; network
  /// clock, checked lazily on lookup). In-flight entries are pinned —
  /// neither bound may evict one, or a storm of fresh traffic could
  /// un-absorb a retry and double-execute the original.
  struct DedupEntry {
    bool completed = false;
    std::uint64_t seq = 0;  ///< admission stamp; pairs with ledger_order_
    wire::Reply reply;      ///< valid once completed
    TimePoint recorded_at{};  ///< completion time, for the TTL
  };
  mutable std::mutex dedup_mutex_;
  std::unordered_map<std::string, DedupEntry> ledger_;
  /// Eviction queue of (key, seq) for COMPLETED entries only. A pair
  /// whose seq no longer matches the live entry is skipped: the key was
  /// TTL-expired and re-admitted, and the successor entry must not be
  /// evicted in the old one's place.
  std::deque<std::pair<std::string, std::uint64_t>> ledger_order_;
  std::size_t ledger_completed_ = 0;  ///< completed entries in ledger_
  std::uint64_t ledger_seq_ = 0;
  std::size_t ledger_capacity_ = 1024;
  Duration dedup_ttl_{0};  ///< 0 = capacity bound only
};

}  // namespace mdsm::ingress
