// Wire schema of the networked ingress (PR 7).
//
// Requests and replies travel over net::Network as model::Value payloads
// — a list of [key, value] pairs, the closest thing the substrate has to
// a self-describing datagram. The topic carries the route
// ("submit/{dsml}/{session}", "query/{what}"); the payload carries the
// request body; replies all travel on one well-known topic and correlate
// through the sender-assigned request id.
//
// Refusal taxonomy: every non-Ok outcome crossing the wire is typed with
// a stable slug (classify_refusal) so remote senders can react to the
// *kind* of refusal — overload backpressure ("overload"), a spent budget
// ("deadline"), a routing miss ("no-route") — without parsing status
// messages. The PR-5/PR-6 overload contract thus propagates across the
// network boundary unchanged.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.hpp"
#include "model/value.hpp"

namespace mdsm::ingress::wire {

/// Topic every reply travels on; correlation is by request id.
inline constexpr std::string_view kReplyTopic = "mdsm.reply";
/// Route prefixes the default router installs.
inline constexpr std::string_view kSubmitPattern = "submit/{dsml}/{session}";
inline constexpr std::string_view kQueryPattern = "query/{what}";

/// Wire schema version (PR 8). Every encoded message stamps
/// [major, minor] under "wire_version"; decoders accept any minor of
/// their own major (fields are keyed, unknown keys are skipped) and any
/// message with no version stamp (a pre-versioning peer, by definition
/// major 1), but refuse a foreign major — the shape of the field list
/// itself may have changed. The refusal slug for that case is
/// "bad-version", distinguished from "malformed" via
/// is_version_mismatch().
inline constexpr std::int64_t kWireMajor = 1;
inline constexpr std::int64_t kWireMinor = 1;

/// A submit or query crossing the wire client → ingress.
struct Request {
  std::uint64_t request_id = 0;  ///< sender-assigned correlation id
  std::string text;              ///< application-model text (submit only)
  std::string auth;              ///< shared-secret token ("" = none)
  std::int64_t deadline_us = 0;  ///< pipeline budget (0 = server default)
  bool high_priority = false;    ///< control-plane lane
  /// Structured payload for non-submit routes (model-diff replication,
  /// future batching); none when the route only needs `text`.
  model::Value body;
  /// Original "<client>#<id>" attribution when a front-end forwards the
  /// request on a client's behalf ("" = direct submission).
  std::string forwarded_for;
};

/// The outcome travelling ingress → client.
struct Reply {
  std::uint64_t request_id = 0;
  ErrorCode code = ErrorCode::kOk;
  std::string refusal;     ///< taxonomy slug, "" on success
  std::string message;     ///< status message / script id / query result
  std::int64_t commands = 0;  ///< commands executed (submit success only)
};

[[nodiscard]] model::Value encode_request(const Request& request);
[[nodiscard]] Result<Request> decode_request(const model::Value& payload);

[[nodiscard]] model::Value encode_reply(const Reply& reply);
[[nodiscard]] Result<Reply> decode_reply(const model::Value& payload);

/// Stable refusal slug for a non-Ok status ("overload", "deadline",
/// "no-route", "malformed", "not-running", "conformance", "execution",
/// "error"). Middleware may pre-type a refusal (e.g. "unauthenticated",
/// "rate-limited", "bad-version") before this default mapping applies.
[[nodiscard]] std::string_view classify_refusal(const Status& status) noexcept;

/// True when `status` came from a decoder refusing a foreign wire major
/// (the "bad-version" refusal, as opposed to plain "malformed").
[[nodiscard]] bool is_version_mismatch(const Status& status) noexcept;

}  // namespace mdsm::ingress::wire
