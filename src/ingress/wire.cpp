#include "ingress/wire.hpp"

#include <utility>

namespace mdsm::ingress::wire {

namespace {

using model::Value;
using model::ValueList;

void put(ValueList& fields, std::string_view key, Value value) {
  fields.push_back(Value(ValueList{Value(std::string(key)),
                                   std::move(value)}));
}

/// Find `key` in a [key, value]-pair list; nullptr when absent/malformed.
const Value* get(const ValueList& fields, std::string_view key) {
  for (const Value& field : fields) {
    if (!field.is_list()) continue;
    const ValueList& pair = field.as_list();
    if (pair.size() != 2 || !pair[0].is_string()) continue;
    if (pair[0].as_string() == key) return &pair[1];
  }
  return nullptr;
}

Status malformed(std::string_view what) {
  return InvalidArgument("malformed wire payload: " + std::string(what));
}

/// Message prefix marking a wire-major refusal; is_version_mismatch()
/// keys off it so servers can type the "bad-version" slug.
constexpr std::string_view kVersionMismatchPrefix = "wire version mismatch";

void put_version(ValueList& fields) {
  put(fields, "wire_version",
      Value(ValueList{Value(kWireMajor), Value(kWireMinor)}));
}

/// Accept an absent stamp (pre-versioning peer == major 1), any minor of
/// our major; refuse a foreign major or an unreadable stamp.
Status check_version(const ValueList& fields) {
  const Value* stamp = get(fields, "wire_version");
  if (stamp == nullptr) return Status::Ok();
  if (!stamp->is_list() || stamp->as_list().size() != 2 ||
      !stamp->as_list()[0].is_int() || !stamp->as_list()[1].is_int()) {
    return malformed("unreadable wire_version stamp");
  }
  const std::int64_t major = stamp->as_list()[0].as_int();
  if (major != kWireMajor) {
    return InvalidArgument(std::string(kVersionMismatchPrefix) + ": peer " +
                           "speaks major " + std::to_string(major) +
                           ", this node speaks major " +
                           std::to_string(kWireMajor));
  }
  return Status::Ok();
}

}  // namespace

model::Value encode_request(const Request& request) {
  ValueList fields;
  put_version(fields);
  put(fields, "request_id", Value(static_cast<std::int64_t>(
                                request.request_id)));
  put(fields, "text", Value(request.text));
  if (!request.auth.empty()) put(fields, "auth", Value(request.auth));
  if (request.deadline_us != 0) {
    put(fields, "deadline_us", Value(request.deadline_us));
  }
  if (request.high_priority) put(fields, "priority", Value("high"));
  if (!request.body.is_none()) put(fields, "body", request.body);
  if (!request.forwarded_for.empty()) {
    put(fields, "forwarded_for", Value(request.forwarded_for));
  }
  return Value(std::move(fields));
}

Result<Request> decode_request(const model::Value& payload) {
  if (!payload.is_list()) return malformed("payload is not a field list");
  const ValueList& fields = payload.as_list();
  MDSM_RETURN_IF_ERROR(check_version(fields));
  Request request;
  const Value* id = get(fields, "request_id");
  if (id == nullptr || !id->is_int() || id->as_int() < 0) {
    return malformed("missing or non-integer request_id");
  }
  request.request_id = static_cast<std::uint64_t>(id->as_int());
  if (const Value* text = get(fields, "text"); text != nullptr) {
    if (!text->is_string()) return malformed("text is not a string");
    request.text = text->as_string();
  }
  if (const Value* auth = get(fields, "auth"); auth != nullptr) {
    if (!auth->is_string()) return malformed("auth is not a string");
    request.auth = auth->as_string();
  }
  if (const Value* deadline = get(fields, "deadline_us");
      deadline != nullptr) {
    if (!deadline->is_int() || deadline->as_int() < 0) {
      return malformed("deadline_us is not a non-negative integer");
    }
    request.deadline_us = deadline->as_int();
  }
  if (const Value* priority = get(fields, "priority"); priority != nullptr) {
    if (!priority->is_string()) return malformed("priority is not a string");
    request.high_priority = priority->as_string() == "high";
  }
  if (const Value* body = get(fields, "body"); body != nullptr) {
    request.body = *body;
  }
  if (const Value* forwarded = get(fields, "forwarded_for");
      forwarded != nullptr) {
    if (!forwarded->is_string()) {
      return malformed("forwarded_for is not a string");
    }
    request.forwarded_for = forwarded->as_string();
  }
  return request;
}

model::Value encode_reply(const Reply& reply) {
  ValueList fields;
  put_version(fields);
  put(fields, "request_id",
      Value(static_cast<std::int64_t>(reply.request_id)));
  put(fields, "code", Value(static_cast<std::int64_t>(reply.code)));
  if (!reply.refusal.empty()) put(fields, "refusal", Value(reply.refusal));
  if (!reply.message.empty()) put(fields, "message", Value(reply.message));
  if (reply.commands != 0) put(fields, "commands", Value(reply.commands));
  return Value(std::move(fields));
}

Result<Reply> decode_reply(const model::Value& payload) {
  if (!payload.is_list()) return malformed("payload is not a field list");
  const ValueList& fields = payload.as_list();
  MDSM_RETURN_IF_ERROR(check_version(fields));
  Reply reply;
  const Value* id = get(fields, "request_id");
  if (id == nullptr || !id->is_int() || id->as_int() < 0) {
    return malformed("missing or non-integer request_id");
  }
  reply.request_id = static_cast<std::uint64_t>(id->as_int());
  const Value* code = get(fields, "code");
  if (code == nullptr || !code->is_int() || code->as_int() < 0 ||
      code->as_int() > static_cast<std::int64_t>(ErrorCode::kInternal)) {
    return malformed("missing or out-of-range code");
  }
  reply.code = static_cast<ErrorCode>(code->as_int());
  if (const Value* refusal = get(fields, "refusal"); refusal != nullptr) {
    if (!refusal->is_string()) return malformed("refusal is not a string");
    reply.refusal = refusal->as_string();
  }
  if (const Value* message = get(fields, "message"); message != nullptr) {
    if (!message->is_string()) return malformed("message is not a string");
    reply.message = message->as_string();
  }
  if (const Value* commands = get(fields, "commands"); commands != nullptr) {
    if (!commands->is_int()) return malformed("commands is not an integer");
    reply.commands = commands->as_int();
  }
  return reply;
}

std::string_view classify_refusal(const Status& status) noexcept {
  switch (status.code()) {
    case ErrorCode::kOk:
      return "";
    case ErrorCode::kTimeout:
      return "deadline";  // spent budget: admission shed, watchdog, late
    case ErrorCode::kUnavailable:
      return "overload";  // queue full, shed-oldest victim, breaker open
    case ErrorCode::kFailedPrecondition:
      return "not-running";
    case ErrorCode::kParseError:
    case ErrorCode::kInvalidArgument:
      return "malformed";
    case ErrorCode::kConformanceError:
      return "conformance";
    case ErrorCode::kNotFound:
      return "no-route";
    case ErrorCode::kExecutionError:
      return "execution";
    case ErrorCode::kAlreadyExists:
    case ErrorCode::kInternal:
      return "error";
  }
  return "error";
}

bool is_version_mismatch(const Status& status) noexcept {
  return status.code() == ErrorCode::kInvalidArgument &&
         status.message().rfind(kVersionMismatchPrefix, 0) == 0;
}

}  // namespace mdsm::ingress::wire
