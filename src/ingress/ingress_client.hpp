// Client-side counterpart of the IngressServer (PR 7): a thin stub that
// encodes submissions onto the wire, correlates replies by request id,
// and surfaces every outcome — including the server's typed refusals —
// as a Status the caller can branch on. The refusal slug rides along, so
// a remote caller distinguishes "overload" backpressure from a spent
// "deadline" without parsing message strings.
//
// Message loss is a first-class outcome: the network may drop a request
// or its reply, so every pending submission carries an expiry on the
// network clock, and expire_overdue() resolves the overdue ones with
// kTimeout / "reply-lost". A callback therefore fires exactly once per
// accepted submit: on the reply, or on expiry, or at detach (client
// destruction) — never twice, never zero.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.hpp"
#include "common/status.hpp"
#include "ingress/wire.hpp"
#include "net/network.hpp"

namespace mdsm::ingress {

struct IngressClientOptions {
  std::string endpoint = "client";  ///< this client's endpoint name
  std::string auth;                 ///< token stamped on every request
  /// Grace period past the request deadline (or from send, when no
  /// deadline is set) before a missing reply is written off as lost.
  Duration reply_timeout = std::chrono::seconds(5);
  /// Times an overdue request is re-sent (same request id — the server's
  /// dedup ledger makes the retry idempotent) before expire_overdue()
  /// writes it off as "reply-lost". 0 preserves fire-once behaviour.
  int retry_budget = 0;
};

/// What became of one remote submission.
struct RemoteOutcome {
  std::uint64_t request_id = 0;
  Status status;        ///< Ok, or the server's refusal re-typed locally
  std::string refusal;  ///< taxonomy slug ("" on success)
  std::int64_t commands = 0;  ///< commands the platform executed
  std::string payload;        ///< script id or query result text
};

/// Per-submission options mirrored onto the wire request.
struct RemoteSubmitOptions {
  std::optional<Duration> deadline;  ///< pipeline budget, sent on the wire
  bool high_priority = false;
  /// Original "<client>#<id>" identity when forwarding on another
  /// client's behalf (cluster front-end); "" = direct submission.
  std::string forwarded_for;
  /// When true (the default for end clients), the reply window is
  /// reply_timeout + deadline — the server may legally spend the whole
  /// deadline before the grace period starts. The cluster front-end sets
  /// it false: its hop detects losses on its own reply_timeout cadence
  /// so a failover still has deadline budget left to spend (PR 9).
  bool wait_includes_deadline = true;
};

class IngressClient {
 public:
  using Callback = std::function<void(const RemoteOutcome&)>;

  /// Bind a client endpoint on `network`, talking to `server_endpoint`.
  static Result<std::unique_ptr<IngressClient>> attach(
      net::Network& network, std::string server_endpoint,
      IngressClientOptions options = {});

  ~IngressClient();  // unresolved submissions resolve kUnavailable/"detached"
  IngressClient(const IngressClient&) = delete;
  IngressClient& operator=(const IngressClient&) = delete;

  /// Submit application-model text to the remote platform. Returns the
  /// assigned request id, or the network-layer error when even the send
  /// failed (then `callback` will never fire).
  Result<std::uint64_t> submit(std::string_view dsml, std::string_view session,
                               std::string text, Callback callback,
                               RemoteSubmitOptions options = {});

  /// Query the remote platform ("runtime-model", "metrics").
  Result<std::uint64_t> query(std::string_view what, Callback callback);

  /// Send `request` on an arbitrary topic (extension routes like the
  /// cluster's "replicate/model-diff"). The request id is assigned here;
  /// correlation, expiry and retries behave exactly like submit().
  Result<std::uint64_t> call(std::string topic, wire::Request request,
                             Callback callback,
                             std::optional<Duration> deadline = {});

  /// Drain semantics (PR 9): stop accepting NEW work — submit / query /
  /// call return kUnavailable with a "client closed" message — while
  /// everything already pending keeps resolving normally (replies
  /// correlate, expiries fire, retries of accepted work still re-send).
  /// The cluster front-end closes a leaving shard's client the moment
  /// the shard drops out of the ring, then retires it once pending()
  /// reaches zero. Idempotent.
  void close();
  [[nodiscard]] bool closed() const;

  /// Walk every pending submission whose expiry passed on the network
  /// clock: re-send it under the same request id while its retry budget
  /// lasts, then resolve it with kTimeout / "reply-lost"; returns how
  /// many were resolved. Simulation drivers call this after advancing
  /// virtual time.
  std::size_t expire_overdue();

  [[nodiscard]] const std::string& endpoint_name() const noexcept {
    return endpoint_name_;
  }
  [[nodiscard]] std::size_t pending() const;

  struct Stats {
    std::uint64_t submitted = 0;      ///< requests that left the endpoint
    std::uint64_t resolved_ok = 0;    ///< replies carrying kOk
    std::uint64_t refused = 0;        ///< replies carrying a typed refusal
    std::uint64_t expired = 0;        ///< written off as "reply-lost"
    std::uint64_t stray_replies = 0;  ///< replies with no pending entry
    std::uint64_t retried = 0;        ///< overdue requests re-sent
  };
  [[nodiscard]] Stats stats() const;

 private:
  IngressClient(net::Network& network, std::string server_endpoint,
                IngressClientOptions options);

  void on_reply(const net::Message& message);
  Result<std::uint64_t> send_request(std::string topic, wire::Request request,
                                     std::optional<Duration> deadline,
                                     Callback callback);

  struct PendingCall {
    Callback callback;
    TimePoint expires_at;
    /// Retry state: the request is kept verbatim (same id) so an overdue
    /// entry can be re-sent while retries_left lasts.
    std::string topic;
    wire::Request request;
    Duration budget{0};  ///< expiry window to re-arm on each retry
    int retries_left = 0;
  };

  net::Network* network_;
  std::shared_ptr<net::Endpoint> endpoint_;  ///< keepalive past teardown
  std::string endpoint_name_;
  std::string server_endpoint_;
  IngressClientOptions options_;

  mutable std::mutex mutex_;  ///< guards pending_, next_id_, stats_, closed_
  std::unordered_map<std::uint64_t, PendingCall> pending_;
  std::uint64_t next_id_ = 1;
  bool closed_ = false;
  Stats stats_;
};

}  // namespace mdsm::ingress
