#include <mutex>

#include "broker/resource_manager.hpp"

#include "common/log.hpp"

namespace mdsm::broker {

Status ResourceManager::add_adapter(std::unique_ptr<ResourceAdapter> adapter) {
  if (adapter == nullptr) return InvalidArgument("null resource adapter");
  const std::string name = adapter->name();
  std::unique_lock lock(mutex_);
  if (adapters_.contains(name)) {
    return AlreadyExists("resource adapter '" + name + "' already present");
  }
  // Resource events surface on the layer bus under the resource.* space.
  adapter->set_event_sink(
      [bus = bus_, name](const std::string& topic, model::Value payload) {
        bus->publish("resource." + topic, name, std::move(payload));
      });
  adapters_[name] = std::shared_ptr<ResourceAdapter>(std::move(adapter));
  return Status::Ok();
}

Status ResourceManager::remove_adapter(const std::string& name) {
  std::unique_lock lock(mutex_);
  if (adapters_.erase(name) == 0) {
    return NotFound("resource adapter '" + name + "' not present");
  }
  return Status::Ok();
}

ResourceAdapter* ResourceManager::find_adapter(std::string_view name) {
  std::shared_lock lock(mutex_);
  auto it = adapters_.find(name);
  return it == adapters_.end() ? nullptr : it->second.get();
}

std::vector<std::string> ResourceManager::adapter_names() const {
  std::shared_lock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(adapters_.size());
  for (const auto& [name, adapter] : adapters_) names.push_back(name);
  return names;
}

Result<model::Value> ResourceManager::invoke(const std::string& resource,
                                             const std::string& command,
                                             const Args& args) {
  // Pin the adapter under a brief shared lock, execute unlocked: a
  // concurrent remove_adapter() unregisters immediately while this call
  // finishes on the pinned instance, and an adapter that re-enters
  // invoke() through the bus (event → autonomic plan → kInvoke) cannot
  // self-deadlock on the map lock.
  std::shared_ptr<ResourceAdapter> adapter;
  {
    std::shared_lock lock(mutex_);
    auto it = adapters_.find(resource);
    if (it == adapters_.end()) {
      return NotFound("no resource adapter '" + resource + "'");
    }
    adapter = it->second;
  }
  trace_.record(resource, command, args);
  if (commands_counter_ != nullptr) commands_counter_->add();
  log_debug("resource-manager")
      << resource << "." << format_invocation(command, args);
  // Adapters are plugin code over external resources; this is the fault
  // boundary. An escaping exception must degrade to a Status, not unwind
  // through the controller's EU stack (which would strand queued signals
  // for the next request to pick up).
  try {
    return adapter->execute(command, args);
  } catch (const std::exception& e) {
    if (exceptions_counter_ != nullptr) exceptions_counter_->add();
    log_error("resource-manager")
        << resource << "." << command << " threw: " << e.what();
    return ExecutionError("resource adapter '" + resource +
                          "' threw during '" + command + "': " + e.what());
  } catch (...) {
    if (exceptions_counter_ != nullptr) exceptions_counter_->add();
    log_error("resource-manager")
        << resource << "." << command << " threw a non-std::exception";
    return ExecutionError("resource adapter '" + resource +
                          "' threw a non-std::exception during '" + command +
                          "'");
  }
}

}  // namespace mdsm::broker
