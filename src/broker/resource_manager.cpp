#include <mutex>
#include <thread>

#include "broker/resource_manager.hpp"

#include "common/log.hpp"

namespace mdsm::broker {

Status ResourceManager::add_adapter(std::unique_ptr<ResourceAdapter> adapter) {
  if (adapter == nullptr) return InvalidArgument("null resource adapter");
  const std::string name = adapter->name();
  std::unique_lock lock(mutex_);
  if (adapters_.contains(name)) {
    return AlreadyExists("resource adapter '" + name + "' already present");
  }
  // Resource events surface on the layer bus under the resource.* space.
  adapter->set_event_sink(
      [bus = bus_, name](const std::string& topic, model::Value payload) {
        bus->publish("resource." + topic, name, std::move(payload));
      });
  adapters_[name] = std::shared_ptr<ResourceAdapter>(std::move(adapter));
  return Status::Ok();
}

Status ResourceManager::remove_adapter(const std::string& name) {
  std::unique_lock lock(mutex_);
  if (adapters_.erase(name) == 0) {
    return NotFound("resource adapter '" + name + "' not present");
  }
  return Status::Ok();
}

ResourceAdapter* ResourceManager::find_adapter(std::string_view name) {
  std::shared_lock lock(mutex_);
  auto it = adapters_.find(name);
  return it == adapters_.end() ? nullptr : it->second.get();
}

bool ResourceManager::has_adapter(std::string_view name) const {
  std::shared_lock lock(mutex_);
  return adapters_.contains(name);
}

std::vector<std::string> ResourceManager::adapter_names() const {
  std::shared_lock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(adapters_.size());
  for (const auto& [name, adapter] : adapters_) names.push_back(name);
  return names;
}

Status ResourceManager::set_policy(const std::string& resource,
                                   InvocationPolicy policy) {
  if (policy.max_attempts < 1) {
    return InvalidArgument("invocation policy for '" + resource +
                           "' needs max_attempts >= 1");
  }
  if (policy.breaker.enabled()) {
    if (policy.breaker.failure_threshold <= 0.0 ||
        policy.breaker.failure_threshold > 1.0) {
      return InvalidArgument("breaker failure_threshold for '" + resource +
                             "' must be in (0, 1]");
    }
    if (policy.breaker.half_open_probes < 1) {
      return InvalidArgument("breaker for '" + resource +
                             "' needs half_open_probes >= 1");
    }
  }
  if (policy.fallback_resource == resource) {
    return InvalidArgument("resource '" + resource +
                           "' cannot be its own fallback");
  }
  auto state = std::make_shared<PolicyState>();
  if (policy.breaker.enabled()) {
    state->breaker = std::make_shared<CircuitBreaker>(policy.breaker);
  }
  state->policy = std::move(policy);
  std::unique_lock lock(mutex_);
  policies_[resource] = std::move(state);
  return Status::Ok();
}

InvocationPolicy ResourceManager::policy(const std::string& resource) const {
  std::shared_lock lock(mutex_);
  auto it = policies_.find(resource);
  return it == policies_.end() ? InvocationPolicy{} : it->second->policy;
}

CircuitBreaker::State ResourceManager::breaker_state(
    const std::string& resource) const {
  std::shared_ptr<CircuitBreaker> breaker;
  {
    std::shared_lock lock(mutex_);
    auto it = policies_.find(resource);
    if (it != policies_.end()) breaker = it->second->breaker;
  }
  return breaker == nullptr ? CircuitBreaker::State::kClosed
                            : breaker->state();
}

void ResourceManager::set_metrics(obs::MetricsRegistry* metrics) noexcept {
  if (metrics == nullptr) {
    commands_counter_ = exceptions_counter_ = retries_counter_ =
        exhausted_counter_ = breaker_open_counter_ =
            breaker_transitions_counter_ = fallbacks_counter_ =
                overruns_counter_ = late_completions_counter_ = nullptr;
    return;
  }
  commands_counter_ = &metrics->counter("broker.commands");
  exceptions_counter_ = &metrics->counter("broker.adapter_exceptions");
  retries_counter_ = &metrics->counter("broker.retries");
  exhausted_counter_ = &metrics->counter("broker.retry_exhausted");
  breaker_open_counter_ = &metrics->counter("broker.breaker_open");
  breaker_transitions_counter_ = &metrics->counter(
      "broker.breaker_transitions");
  fallbacks_counter_ = &metrics->counter("broker.fallbacks");
  overruns_counter_ = &metrics->counter("broker.attempt_overruns");
  late_completions_counter_ = &metrics->counter("broker.late_completions");
}

Result<model::Value> ResourceManager::invoke_attempt(
    ResourceAdapter& adapter, const std::string& resource,
    const std::string& command, const Args& args) {
  trace_.record(resource, command, args);
  count(commands_counter_);
  log_debug("resource-manager")
      << resource << "." << format_invocation(command, args);
  // Adapters are plugin code over external resources; this is the fault
  // boundary. An escaping exception must degrade to a Status, not unwind
  // through the controller's EU stack (which would strand queued signals
  // for the next request to pick up).
  try {
    return adapter.execute(command, args);
  } catch (const std::exception& e) {
    count(exceptions_counter_);
    log_error("resource-manager")
        << resource << "." << command << " threw: " << e.what();
    return ExecutionError("resource adapter '" + resource +
                          "' threw during '" + command + "': " + e.what());
  } catch (...) {
    count(exceptions_counter_);
    log_error("resource-manager")
        << resource << "." << command << " threw a non-std::exception";
    return ExecutionError("resource adapter '" + resource +
                          "' threw a non-std::exception during '" + command +
                          "'");
  }
}

Result<model::Value> ResourceManager::invoke(const std::string& resource,
                                             const std::string& command,
                                             const Args& args,
                                             obs::RequestContext& context) {
  // Pin the adapter (and its policy) under a brief shared lock, execute
  // unlocked: a concurrent remove_adapter() unregisters immediately while
  // this call finishes on the pinned instance, and an adapter that
  // re-enters invoke() through the bus (event → autonomic plan → kInvoke)
  // cannot self-deadlock on the map lock.
  std::shared_ptr<ResourceAdapter> adapter;
  std::shared_ptr<PolicyState> state;
  {
    std::shared_lock lock(mutex_);
    auto it = adapters_.find(resource);
    if (it == adapters_.end()) {
      return NotFound("no resource adapter '" + resource + "'");
    }
    adapter = it->second;
    auto policy_it = policies_.find(resource);
    if (policy_it != policies_.end()) state = policy_it->second;
  }
  if (state == nullptr) {
    // Fire-once fast path (no policy): identical to the historical
    // behavior plus the deadline gate around the resource call itself —
    // a request with no budget left must not issue the command at all.
    if (Status gate = context.check_deadline("broker.invoke"); !gate.ok()) {
      return gate;
    }
    return invoke_attempt(*adapter, resource, command, args);
  }
  return invoke_with_policy(std::move(adapter), state, resource, command,
                            args, context);
}

Result<model::Value> ResourceManager::invoke_with_policy(
    std::shared_ptr<ResourceAdapter> adapter,
    const std::shared_ptr<PolicyState>& state, const std::string& resource,
    const std::string& command, const Args& args,
    obs::RequestContext& context) {
  const InvocationPolicy& policy = state->policy;
  const Clock& clock = context.clock();
  // One jitter chain per logical invoke; the per-chain seed keeps soak
  // runs repeatable without sharing RNG state across threads.
  RetryBackoff backoff(
      policy.initial_backoff, policy.max_backoff,
      policy.jitter_seed +
          state->chains.fetch_add(1, std::memory_order_relaxed));
  Status last_status;
  for (int attempt = 1; attempt <= policy.max_attempts; ++attempt) {
    CircuitBreaker::AdmitResult admitted{};
    if (state->breaker != nullptr) {
      admitted = state->breaker->admit(clock.now());
      if (admitted.admission == CircuitBreaker::Admission::kReject) {
        count(breaker_open_counter_);
        log_debug("resource-manager")
            << resource << "." << command << " fast-failed: circuit open";
        return invoke_fallback(
            policy, resource, command, args, context,
            Unavailable("circuit open for resource '" + resource + "' ('" +
                        command + "' fast-failed)"));
      }
    }
    // The deadline budget gates every attempt, not just layer crossings:
    // a stalled previous attempt must not let this one start over budget.
    if (Status gate = context.check_deadline("broker.invoke"); !gate.ok()) {
      if (state->breaker != nullptr &&
          admitted.admission == CircuitBreaker::Admission::kProbe) {
        // The admitted probe never ran; retire its slot (as a failure, so
        // the breaker re-opens) rather than leaking it — a leaked probe
        // slot would reject every future probe and wedge the breaker
        // half-open forever. Closed-state admissions need no retiring and
        // must not record a synthetic outcome in the window.
        publish_transition(resource,
                           state->breaker->on_result(admitted.admission,
                                                     false, clock.now()));
      }
      count(exhausted_counter_);
      return gate;
    }
    if (attempt > 1) count(retries_counter_);
    std::uint64_t span =
        context.open_span("broker.attempt", resource + "." + command + "#" +
                                                std::to_string(attempt));
    const TimePoint started = clock.now();
    Result<model::Value> outcome =
        invoke_attempt(*adapter, resource, command, args);
    const Duration took = clock.now() - started;
    context.close_span(span);
    const bool success = outcome.ok();
    if (state->breaker != nullptr) {
      publish_transition(resource,
                         state->breaker->on_result(admitted.admission,
                                                   success, clock.now()));
    }
    if (success) return outcome;
    last_status = outcome.status();
    // Cooperative per-attempt timeout: a synchronous adapter cannot be
    // preempted, but a failure that stalled past the attempt budget is
    // a timeout fault (retryable), whatever the adapter claimed.
    if (policy.attempt_timeout.count() > 0 && took >= policy.attempt_timeout) {
      last_status = Timeout(
          "resource '" + resource + "' attempt " + std::to_string(attempt) +
          " of '" + command + "' exceeded its " +
          std::to_string(policy.attempt_timeout.count()) + "us budget (" +
          last_status.to_string() + ")");
    }
    if (!retryable(last_status.code())) {
      // Permanent fault (authoring/registry error): retrying or degrading
      // to a fallback would only mask it.
      return last_status;
    }
    if (attempt == policy.max_attempts) break;
    Duration delay = backoff.next();
    if (std::optional<TimePoint> deadline = context.deadline()) {
      const Duration remaining = *deadline - clock.now();
      if (remaining.count() <= 0 || delay >= remaining) {
        // Sleeping the backoff would blow the budget; give up with the
        // budget intact rather than returning late.
        count(exhausted_counter_);
        return invoke_fallback(
            policy, resource, command, args, context,
            Timeout("resource '" + resource + "' retry budget exhausted "
                    "after attempt " +
                    std::to_string(attempt) + " of '" + command + "' (" +
                    last_status.to_string() + ")"));
      }
    }
    if (delay.count() > 0) {
      if (sleep_hook_ != nullptr) {
        sleep_hook_(delay);
      } else {
        std::this_thread::sleep_for(delay);
      }
    }
  }
  count(exhausted_counter_);
  log_warn("resource-manager")
      << resource << "." << command << " failed after "
      << policy.max_attempts << " attempts: " << last_status.to_string();
  return invoke_fallback(policy, resource, command, args, context,
                         std::move(last_status));
}

Result<model::Value> ResourceManager::invoke_fallback(
    const InvocationPolicy& policy, const std::string& resource,
    const std::string& command, const Args& args,
    obs::RequestContext& context, Status primary_status) {
  if (policy.fallback_resource.empty()) return primary_status;
  std::shared_ptr<ResourceAdapter> fallback;
  {
    std::shared_lock lock(mutex_);
    auto it = adapters_.find(policy.fallback_resource);
    if (it != adapters_.end()) fallback = it->second;
  }
  if (fallback == nullptr) {
    log_warn("resource-manager")
        << resource << " fallback '" << policy.fallback_resource
        << "' is not registered";
    return primary_status;
  }
  count(fallbacks_counter_);
  bus_->publish("resource.degraded", resource,
                model::Value(model::ValueList{
                    model::Value(resource),
                    model::Value(policy.fallback_resource),
                    model::Value(command)}));
  std::uint64_t span = context.open_span(
      "broker.fallback", resource + "->" + policy.fallback_resource);
  Result<model::Value> outcome = invoke_attempt(
      *fallback, policy.fallback_resource, command, args);
  context.close_span(span);
  if (!outcome.ok()) {
    // The degraded path failed too; the primary fault is the one worth
    // reporting upward.
    return primary_status;
  }
  if (!policy.tag_degraded) return outcome;
  return model::Value(model::ValueList{model::Value("degraded"),
                                       std::move(outcome.value())});
}

// ---- event-driven invocation (PR 6) ----------------------------------
//
// The async path mirrors invoke_with_policy step for step, but nothing
// blocks: backoff is an event-loop timer that re-enters
// start_attempt_async on a pipeline worker, and the per-attempt timeout
// is a timer that *disowns* an overrunning attempt — each attempt
// carries a settle flag, and whoever flips it first (adapter completion
// or the overrun timer) owns the outcome, the breaker record and the
// span close; the loser only bumps a counter. That single-owner
// discipline is also what keeps the request's Trace single-writer even
// though attempts, timers and retries run on different threads.

struct ResourceManager::AsyncInvocation {
  std::shared_ptr<ResourceAdapter> adapter;
  std::shared_ptr<PolicyState> state;
  std::string resource;
  std::string command;
  Args args;
  obs::RequestContext* context = nullptr;
  InvokeCallback done;
  RetryBackoff backoff{Duration(0), Duration(0), 0};
  int attempt = 0;  ///< attempts issued so far
  /// Belt-and-braces: the state machine resolves exactly once by
  /// construction; the flag turns a logic bug into a dropped duplicate
  /// instead of a double completion.
  std::atomic<bool> resolved{false};

  void resolve(Result<model::Value> outcome) {
    if (resolved.exchange(true, std::memory_order_acq_rel)) return;
    done(std::move(outcome));
  }
};

void ResourceManager::set_async_engine(
    runtime::EventLoop* loop,
    std::function<void(std::function<void()>)> resume) {
  loop_ = loop;
  resume_ = std::move(resume);
}

void ResourceManager::resume_on_worker(std::function<void()> fn) {
  if (resume_ != nullptr) {
    resume_(std::move(fn));
  } else if (loop_ != nullptr) {
    loop_->post(std::move(fn));
  } else {
    fn();
  }
}

void ResourceManager::execute_attempt_async(
    ResourceAdapter& adapter, const std::string& resource,
    const std::string& command, const Args& args,
    ResourceAdapter::Completion done) {
  trace_.record(resource, command, args);
  count(commands_counter_);
  log_debug("resource-manager")
      << resource << "." << format_invocation(command, args);
  // Same fault boundary as invoke_attempt: a synchronously escaping
  // exception degrades to a Status. (The copy of `done` is for the catch
  // path; callers' settle flags absorb the pathological adapter that
  // completes and then throws.)
  ResourceAdapter::Completion on_throw = done;
  try {
    adapter.execute_async(command, args, std::move(done));
  } catch (const std::exception& e) {
    count(exceptions_counter_);
    log_error("resource-manager")
        << resource << "." << command << " threw: " << e.what();
    on_throw(ExecutionError("resource adapter '" + resource +
                            "' threw during '" + command + "': " + e.what()));
  } catch (...) {
    count(exceptions_counter_);
    log_error("resource-manager")
        << resource << "." << command << " threw a non-std::exception";
    on_throw(ExecutionError("resource adapter '" + resource +
                            "' threw a non-std::exception during '" +
                            command + "'"));
  }
}

void ResourceManager::invoke_async(const std::string& resource,
                                   const std::string& command,
                                   const Args& args,
                                   obs::RequestContext& context,
                                   InvokeCallback done) {
  if (done == nullptr) done = [](Result<model::Value>) {};
  if (loop_ == nullptr) {
    // No event engine wired: degrade to the synchronous path (tests and
    // split deployments that never built a staged pipeline).
    done(invoke(resource, command, args, context));
    return;
  }
  std::shared_ptr<ResourceAdapter> adapter;
  std::shared_ptr<PolicyState> state;
  {
    std::shared_lock lock(mutex_);
    auto it = adapters_.find(resource);
    if (it == adapters_.end()) {
      lock.unlock();
      done(NotFound("no resource adapter '" + resource + "'"));
      return;
    }
    adapter = it->second;
    auto policy_it = policies_.find(resource);
    if (policy_it != policies_.end()) state = policy_it->second;
  }
  if (state == nullptr) {
    // Fire-once fast path, async flavor: deadline gate, then a single
    // attempt whose completion is the resolution.
    if (Status gate = context.check_deadline("broker.invoke"); !gate.ok()) {
      done(gate);
      return;
    }
    auto settled = std::make_shared<std::atomic<bool>>(false);
    execute_attempt_async(
        *adapter, resource, command, args,
        [settled, done = std::move(done)](Result<model::Value> outcome) {
          if (settled->exchange(true, std::memory_order_acq_rel)) return;
          done(std::move(outcome));
        });
    return;
  }
  auto call = std::make_shared<AsyncInvocation>();
  call->adapter = std::move(adapter);
  call->state = state;
  call->resource = resource;
  call->command = command;
  call->args = args;
  call->context = &context;
  call->done = std::move(done);
  call->backoff = RetryBackoff(
      state->policy.initial_backoff, state->policy.max_backoff,
      state->policy.jitter_seed +
          state->chains.fetch_add(1, std::memory_order_relaxed));
  start_attempt_async(std::move(call));
}

void ResourceManager::start_attempt_async(
    std::shared_ptr<AsyncInvocation> call) {
  const InvocationPolicy& policy = call->state->policy;
  obs::RequestContext& context = *call->context;
  const Clock& clock = context.clock();
  CircuitBreaker::AdmitResult admitted{};
  if (call->state->breaker != nullptr) {
    admitted = call->state->breaker->admit(clock.now());
    if (admitted.admission == CircuitBreaker::Admission::kReject) {
      count(breaker_open_counter_);
      log_debug("resource-manager") << call->resource << "." << call->command
                                    << " fast-failed: circuit open";
      invoke_fallback_async(
          call, Unavailable("circuit open for resource '" + call->resource +
                            "' ('" + call->command + "' fast-failed)"));
      return;
    }
  }
  if (Status gate = context.check_deadline("broker.invoke"); !gate.ok()) {
    if (call->state->breaker != nullptr &&
        admitted.admission == CircuitBreaker::Admission::kProbe) {
      // Same probe-slot retirement as the sync loop: an admitted probe
      // that never ran must not wedge the breaker half-open.
      publish_transition(call->resource, call->state->breaker->on_result(
                                             admitted.admission, false,
                                             clock.now()));
    }
    count(exhausted_counter_);
    call->resolve(gate);
    return;
  }
  ++call->attempt;
  if (call->attempt > 1) count(retries_counter_);
  const std::uint64_t span = context.open_span(
      "broker.attempt", call->resource + "." + call->command + "#" +
                            std::to_string(call->attempt));
  auto settled = std::make_shared<std::atomic<bool>>(false);
  std::uint64_t overrun_timer = 0;
  if (policy.attempt_timeout.count() > 0) {
    // The overrun timer makes the attempt timeout *preemptive*: when it
    // wins the settle race the attempt is disowned — failed against the
    // breaker, retried or degraded right away — while the adapter is
    // still grinding on some other thread.
    overrun_timer = loop_->schedule(
        policy.attempt_timeout,
        [this, call, settled, admission = admitted.admission, span] {
          if (settled->exchange(true, std::memory_order_acq_rel)) return;
          count(overruns_counter_);
          Status timed_out = Timeout(
              "resource '" + call->resource + "' attempt " +
              std::to_string(call->attempt) + " of '" + call->command +
              "' exceeded its " +
              std::to_string(
                  call->state->policy.attempt_timeout.count()) +
              "us budget (disowned)");
          // Settle on a worker, not the loop thread: the retry decision
          // may issue the next attempt inline.
          resume_on_worker([this, call, admission, span,
                            timed_out = std::move(timed_out)] {
            attempt_settled(call, admission, span, timed_out);
          });
        });
  }
  execute_attempt_async(
      *call->adapter, call->resource, call->command, call->args,
      [this, call, settled, overrun_timer, admission = admitted.admission,
       span](Result<model::Value> outcome) {
        if (settled->exchange(true, std::memory_order_acq_rel)) {
          // The overrun timer already disowned this attempt; its actual
          // outcome — success or not — arrives too late to matter.
          count(late_completions_counter_);
          return;
        }
        if (overrun_timer != 0) loop_->cancel(overrun_timer);
        attempt_settled(call, admission, span, std::move(outcome));
      });
}

void ResourceManager::attempt_settled(
    const std::shared_ptr<AsyncInvocation>& call,
    CircuitBreaker::Admission admission, std::uint64_t span,
    Result<model::Value> outcome) {
  const InvocationPolicy& policy = call->state->policy;
  obs::RequestContext& context = *call->context;
  const Clock& clock = context.clock();
  context.close_span(span);
  const bool success = outcome.ok();
  if (call->state->breaker != nullptr) {
    publish_transition(call->resource, call->state->breaker->on_result(
                                           admission, success, clock.now()));
  }
  if (success) {
    call->resolve(std::move(outcome));
    return;
  }
  Status last_status = outcome.status();
  if (!retryable(last_status.code())) {
    call->resolve(std::move(last_status));
    return;
  }
  if (call->attempt >= policy.max_attempts) {
    count(exhausted_counter_);
    log_warn("resource-manager")
        << call->resource << "." << call->command << " failed after "
        << policy.max_attempts << " attempts: " << last_status.to_string();
    invoke_fallback_async(call, std::move(last_status));
    return;
  }
  Duration delay = call->backoff.next();
  if (std::optional<TimePoint> deadline = context.deadline()) {
    const Duration remaining = *deadline - clock.now();
    if (remaining.count() <= 0 || delay >= remaining) {
      // Parking past the deadline would only deliver a late failure;
      // give up with the budget intact, exactly like the sync loop.
      count(exhausted_counter_);
      invoke_fallback_async(
          call,
          Timeout("resource '" + call->resource + "' retry budget exhausted "
                  "after attempt " +
                  std::to_string(call->attempt) + " of '" + call->command +
                  "' (" + last_status.to_string() + ")"));
      return;
    }
  }
  if (delay.count() <= 0) {
    // Degenerate zero backoff: hop through a worker to bound recursion.
    resume_on_worker([this, call] { start_attempt_async(call); });
    return;
  }
  // The park: no worker holds this request while the backoff elapses.
  loop_->schedule(delay, [this, call] {
    resume_on_worker([this, call] { start_attempt_async(call); });
  });
}

void ResourceManager::invoke_fallback_async(
    const std::shared_ptr<AsyncInvocation>& call, Status primary_status) {
  const InvocationPolicy& policy = call->state->policy;
  if (policy.fallback_resource.empty()) {
    call->resolve(std::move(primary_status));
    return;
  }
  std::shared_ptr<ResourceAdapter> fallback;
  {
    std::shared_lock lock(mutex_);
    auto it = adapters_.find(policy.fallback_resource);
    if (it != adapters_.end()) fallback = it->second;
  }
  if (fallback == nullptr) {
    log_warn("resource-manager")
        << call->resource << " fallback '" << policy.fallback_resource
        << "' is not registered";
    call->resolve(std::move(primary_status));
    return;
  }
  count(fallbacks_counter_);
  bus_->publish("resource.degraded", call->resource,
                model::Value(model::ValueList{
                    model::Value(call->resource),
                    model::Value(policy.fallback_resource),
                    model::Value(call->command)}));
  std::uint64_t span = call->context->open_span(
      "broker.fallback", call->resource + "->" + policy.fallback_resource);
  auto settled = std::make_shared<std::atomic<bool>>(false);
  const bool tag_degraded = policy.tag_degraded;
  execute_attempt_async(
      *fallback, policy.fallback_resource, call->command, call->args,
      [call, span, settled, tag_degraded,
       primary_status = std::move(primary_status)](
          Result<model::Value> outcome) {
        if (settled->exchange(true, std::memory_order_acq_rel)) return;
        call->context->close_span(span);
        if (!outcome.ok()) {
          // The degraded path failed too; surface the primary fault.
          call->resolve(primary_status);
          return;
        }
        if (!tag_degraded) {
          call->resolve(std::move(outcome));
          return;
        }
        call->resolve(model::Value(model::ValueList{
            model::Value("degraded"), std::move(outcome.value())}));
      });
}

void ResourceManager::publish_transition(
    const std::string& resource, CircuitBreaker::Transition transition) {
  if (transition == CircuitBreaker::Transition::kNone) return;
  count(breaker_transitions_counter_);
  const bool opened = transition == CircuitBreaker::Transition::kOpened;
  log_warn("resource-manager")
      << "circuit for '" << resource << "' "
      << (opened ? "opened" : "closed");
  bus_->publish(opened ? "resource.breaker.open" : "resource.breaker.close",
                resource, model::Value(resource));
}

}  // namespace mdsm::broker
