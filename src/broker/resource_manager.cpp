#include <mutex>
#include <thread>

#include "broker/resource_manager.hpp"

#include "common/log.hpp"

namespace mdsm::broker {

Status ResourceManager::add_adapter(std::unique_ptr<ResourceAdapter> adapter) {
  if (adapter == nullptr) return InvalidArgument("null resource adapter");
  const std::string name = adapter->name();
  std::unique_lock lock(mutex_);
  if (adapters_.contains(name)) {
    return AlreadyExists("resource adapter '" + name + "' already present");
  }
  // Resource events surface on the layer bus under the resource.* space.
  adapter->set_event_sink(
      [bus = bus_, name](const std::string& topic, model::Value payload) {
        bus->publish("resource." + topic, name, std::move(payload));
      });
  adapters_[name] = std::shared_ptr<ResourceAdapter>(std::move(adapter));
  return Status::Ok();
}

Status ResourceManager::remove_adapter(const std::string& name) {
  std::unique_lock lock(mutex_);
  if (adapters_.erase(name) == 0) {
    return NotFound("resource adapter '" + name + "' not present");
  }
  return Status::Ok();
}

ResourceAdapter* ResourceManager::find_adapter(std::string_view name) {
  std::shared_lock lock(mutex_);
  auto it = adapters_.find(name);
  return it == adapters_.end() ? nullptr : it->second.get();
}

bool ResourceManager::has_adapter(std::string_view name) const {
  std::shared_lock lock(mutex_);
  return adapters_.contains(name);
}

std::vector<std::string> ResourceManager::adapter_names() const {
  std::shared_lock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(adapters_.size());
  for (const auto& [name, adapter] : adapters_) names.push_back(name);
  return names;
}

Status ResourceManager::set_policy(const std::string& resource,
                                   InvocationPolicy policy) {
  if (policy.max_attempts < 1) {
    return InvalidArgument("invocation policy for '" + resource +
                           "' needs max_attempts >= 1");
  }
  if (policy.breaker.enabled()) {
    if (policy.breaker.failure_threshold <= 0.0 ||
        policy.breaker.failure_threshold > 1.0) {
      return InvalidArgument("breaker failure_threshold for '" + resource +
                             "' must be in (0, 1]");
    }
    if (policy.breaker.half_open_probes < 1) {
      return InvalidArgument("breaker for '" + resource +
                             "' needs half_open_probes >= 1");
    }
  }
  if (policy.fallback_resource == resource) {
    return InvalidArgument("resource '" + resource +
                           "' cannot be its own fallback");
  }
  auto state = std::make_shared<PolicyState>();
  if (policy.breaker.enabled()) {
    state->breaker = std::make_shared<CircuitBreaker>(policy.breaker);
  }
  state->policy = std::move(policy);
  std::unique_lock lock(mutex_);
  policies_[resource] = std::move(state);
  return Status::Ok();
}

InvocationPolicy ResourceManager::policy(const std::string& resource) const {
  std::shared_lock lock(mutex_);
  auto it = policies_.find(resource);
  return it == policies_.end() ? InvocationPolicy{} : it->second->policy;
}

CircuitBreaker::State ResourceManager::breaker_state(
    const std::string& resource) const {
  std::shared_ptr<CircuitBreaker> breaker;
  {
    std::shared_lock lock(mutex_);
    auto it = policies_.find(resource);
    if (it != policies_.end()) breaker = it->second->breaker;
  }
  return breaker == nullptr ? CircuitBreaker::State::kClosed
                            : breaker->state();
}

void ResourceManager::set_metrics(obs::MetricsRegistry* metrics) noexcept {
  if (metrics == nullptr) {
    commands_counter_ = exceptions_counter_ = retries_counter_ =
        exhausted_counter_ = breaker_open_counter_ =
            breaker_transitions_counter_ = fallbacks_counter_ = nullptr;
    return;
  }
  commands_counter_ = &metrics->counter("broker.commands");
  exceptions_counter_ = &metrics->counter("broker.adapter_exceptions");
  retries_counter_ = &metrics->counter("broker.retries");
  exhausted_counter_ = &metrics->counter("broker.retry_exhausted");
  breaker_open_counter_ = &metrics->counter("broker.breaker_open");
  breaker_transitions_counter_ = &metrics->counter(
      "broker.breaker_transitions");
  fallbacks_counter_ = &metrics->counter("broker.fallbacks");
}

Result<model::Value> ResourceManager::invoke_attempt(
    ResourceAdapter& adapter, const std::string& resource,
    const std::string& command, const Args& args) {
  trace_.record(resource, command, args);
  count(commands_counter_);
  log_debug("resource-manager")
      << resource << "." << format_invocation(command, args);
  // Adapters are plugin code over external resources; this is the fault
  // boundary. An escaping exception must degrade to a Status, not unwind
  // through the controller's EU stack (which would strand queued signals
  // for the next request to pick up).
  try {
    return adapter.execute(command, args);
  } catch (const std::exception& e) {
    count(exceptions_counter_);
    log_error("resource-manager")
        << resource << "." << command << " threw: " << e.what();
    return ExecutionError("resource adapter '" + resource +
                          "' threw during '" + command + "': " + e.what());
  } catch (...) {
    count(exceptions_counter_);
    log_error("resource-manager")
        << resource << "." << command << " threw a non-std::exception";
    return ExecutionError("resource adapter '" + resource +
                          "' threw a non-std::exception during '" + command +
                          "'");
  }
}

Result<model::Value> ResourceManager::invoke(const std::string& resource,
                                             const std::string& command,
                                             const Args& args,
                                             obs::RequestContext& context) {
  // Pin the adapter (and its policy) under a brief shared lock, execute
  // unlocked: a concurrent remove_adapter() unregisters immediately while
  // this call finishes on the pinned instance, and an adapter that
  // re-enters invoke() through the bus (event → autonomic plan → kInvoke)
  // cannot self-deadlock on the map lock.
  std::shared_ptr<ResourceAdapter> adapter;
  std::shared_ptr<PolicyState> state;
  {
    std::shared_lock lock(mutex_);
    auto it = adapters_.find(resource);
    if (it == adapters_.end()) {
      return NotFound("no resource adapter '" + resource + "'");
    }
    adapter = it->second;
    auto policy_it = policies_.find(resource);
    if (policy_it != policies_.end()) state = policy_it->second;
  }
  if (state == nullptr) {
    // Fire-once fast path (no policy): identical to the historical
    // behavior plus the deadline gate around the resource call itself —
    // a request with no budget left must not issue the command at all.
    if (Status gate = context.check_deadline("broker.invoke"); !gate.ok()) {
      return gate;
    }
    return invoke_attempt(*adapter, resource, command, args);
  }
  return invoke_with_policy(std::move(adapter), state, resource, command,
                            args, context);
}

Result<model::Value> ResourceManager::invoke_with_policy(
    std::shared_ptr<ResourceAdapter> adapter,
    const std::shared_ptr<PolicyState>& state, const std::string& resource,
    const std::string& command, const Args& args,
    obs::RequestContext& context) {
  const InvocationPolicy& policy = state->policy;
  const Clock& clock = context.clock();
  // One jitter chain per logical invoke; the per-chain seed keeps soak
  // runs repeatable without sharing RNG state across threads.
  RetryBackoff backoff(
      policy.initial_backoff, policy.max_backoff,
      policy.jitter_seed +
          state->chains.fetch_add(1, std::memory_order_relaxed));
  Status last_status;
  for (int attempt = 1; attempt <= policy.max_attempts; ++attempt) {
    CircuitBreaker::AdmitResult admitted{};
    if (state->breaker != nullptr) {
      admitted = state->breaker->admit(clock.now());
      if (admitted.admission == CircuitBreaker::Admission::kReject) {
        count(breaker_open_counter_);
        log_debug("resource-manager")
            << resource << "." << command << " fast-failed: circuit open";
        return invoke_fallback(
            policy, resource, command, args, context,
            Unavailable("circuit open for resource '" + resource + "' ('" +
                        command + "' fast-failed)"));
      }
    }
    // The deadline budget gates every attempt, not just layer crossings:
    // a stalled previous attempt must not let this one start over budget.
    if (Status gate = context.check_deadline("broker.invoke"); !gate.ok()) {
      if (state->breaker != nullptr &&
          admitted.admission == CircuitBreaker::Admission::kProbe) {
        // The admitted probe never ran; retire its slot (as a failure, so
        // the breaker re-opens) rather than leaking it — a leaked probe
        // slot would reject every future probe and wedge the breaker
        // half-open forever. Closed-state admissions need no retiring and
        // must not record a synthetic outcome in the window.
        publish_transition(resource,
                           state->breaker->on_result(admitted.admission,
                                                     false, clock.now()));
      }
      count(exhausted_counter_);
      return gate;
    }
    if (attempt > 1) count(retries_counter_);
    std::uint64_t span =
        context.open_span("broker.attempt", resource + "." + command + "#" +
                                                std::to_string(attempt));
    const TimePoint started = clock.now();
    Result<model::Value> outcome =
        invoke_attempt(*adapter, resource, command, args);
    const Duration took = clock.now() - started;
    context.close_span(span);
    const bool success = outcome.ok();
    if (state->breaker != nullptr) {
      publish_transition(resource,
                         state->breaker->on_result(admitted.admission,
                                                   success, clock.now()));
    }
    if (success) return outcome;
    last_status = outcome.status();
    // Cooperative per-attempt timeout: a synchronous adapter cannot be
    // preempted, but a failure that stalled past the attempt budget is
    // a timeout fault (retryable), whatever the adapter claimed.
    if (policy.attempt_timeout.count() > 0 && took >= policy.attempt_timeout) {
      last_status = Timeout(
          "resource '" + resource + "' attempt " + std::to_string(attempt) +
          " of '" + command + "' exceeded its " +
          std::to_string(policy.attempt_timeout.count()) + "us budget (" +
          last_status.to_string() + ")");
    }
    if (!retryable(last_status.code())) {
      // Permanent fault (authoring/registry error): retrying or degrading
      // to a fallback would only mask it.
      return last_status;
    }
    if (attempt == policy.max_attempts) break;
    Duration delay = backoff.next();
    if (std::optional<TimePoint> deadline = context.deadline()) {
      const Duration remaining = *deadline - clock.now();
      if (remaining.count() <= 0 || delay >= remaining) {
        // Sleeping the backoff would blow the budget; give up with the
        // budget intact rather than returning late.
        count(exhausted_counter_);
        return invoke_fallback(
            policy, resource, command, args, context,
            Timeout("resource '" + resource + "' retry budget exhausted "
                    "after attempt " +
                    std::to_string(attempt) + " of '" + command + "' (" +
                    last_status.to_string() + ")"));
      }
    }
    if (delay.count() > 0) {
      if (sleep_hook_ != nullptr) {
        sleep_hook_(delay);
      } else {
        std::this_thread::sleep_for(delay);
      }
    }
  }
  count(exhausted_counter_);
  log_warn("resource-manager")
      << resource << "." << command << " failed after "
      << policy.max_attempts << " attempts: " << last_status.to_string();
  return invoke_fallback(policy, resource, command, args, context,
                         std::move(last_status));
}

Result<model::Value> ResourceManager::invoke_fallback(
    const InvocationPolicy& policy, const std::string& resource,
    const std::string& command, const Args& args,
    obs::RequestContext& context, Status primary_status) {
  if (policy.fallback_resource.empty()) return primary_status;
  std::shared_ptr<ResourceAdapter> fallback;
  {
    std::shared_lock lock(mutex_);
    auto it = adapters_.find(policy.fallback_resource);
    if (it != adapters_.end()) fallback = it->second;
  }
  if (fallback == nullptr) {
    log_warn("resource-manager")
        << resource << " fallback '" << policy.fallback_resource
        << "' is not registered";
    return primary_status;
  }
  count(fallbacks_counter_);
  bus_->publish("resource.degraded", resource,
                model::Value(model::ValueList{
                    model::Value(resource),
                    model::Value(policy.fallback_resource),
                    model::Value(command)}));
  std::uint64_t span = context.open_span(
      "broker.fallback", resource + "->" + policy.fallback_resource);
  Result<model::Value> outcome = invoke_attempt(
      *fallback, policy.fallback_resource, command, args);
  context.close_span(span);
  if (!outcome.ok()) {
    // The degraded path failed too; the primary fault is the one worth
    // reporting upward.
    return primary_status;
  }
  if (!policy.tag_degraded) return outcome;
  return model::Value(model::ValueList{model::Value("degraded"),
                                       std::move(outcome.value())});
}

void ResourceManager::publish_transition(
    const std::string& resource, CircuitBreaker::Transition transition) {
  if (transition == CircuitBreaker::Transition::kNone) return;
  count(breaker_transitions_counter_);
  const bool opened = transition == CircuitBreaker::Transition::kOpened;
  log_warn("resource-manager")
      << "circuit for '" << resource << "' "
      << (opened ? "opened" : "closed");
  bus_->publish(opened ? "resource.breaker.open" : "resource.breaker.close",
                resource, model::Value(resource));
}

}  // namespace mdsm::broker
