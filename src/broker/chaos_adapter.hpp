// Fault-injection decorator over a ResourceAdapter: with configurable
// probabilities a command fails cleanly (error Status), throws (exercising
// the ResourceManager's exception boundary), or stalls (simulating a slow
// resource) before delegating to the wrapped adapter. Used by the
// concurrency soak harness and by failure-mode tests — a platform that
// only ever sees well-behaved resources has never really been tested.
//
// Thread-safe: concurrent execute() calls draw from one seeded RNG under
// a mutex (deterministic fault *rates*, not a deterministic fault
// sequence, once calls interleave), and the stats are atomics.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <random>

#include "broker/resource_manager.hpp"
#include "common/clock.hpp"

namespace mdsm::broker {

struct ChaosConfig {
  double fail_rate = 0.0;   ///< P(return Unavailable instead of executing)
  double throw_rate = 0.0;  ///< P(throw std::runtime_error)
  double delay_rate = 0.0;  ///< P(sleep `delay` before delegating)
  Duration delay{};         ///< stall length for delayed commands
  std::uint64_t seed = 42;  ///< RNG seed (soak runs are repeatable)
  /// How a delayed command stalls; null means a real
  /// std::this_thread::sleep_for. SimClock tests inject an advance of
  /// their clock instead, so "slow resource" scenarios run in virtual
  /// time (and ASan/TSan soaks do not wall-block).
  std::function<void(Duration)> sleeper;
};

/// Point-in-time copy of a ChaosAdapter's injection counters.
struct ChaosStats {
  std::uint64_t executed = 0;  ///< total execute() calls observed
  std::uint64_t failed = 0;    ///< commands that returned injected errors
  std::uint64_t threw = 0;     ///< commands that threw injected exceptions
  std::uint64_t delayed = 0;   ///< commands stalled by `delay`
  std::uint64_t passed = 0;    ///< commands delegated to the inner adapter
};

class ChaosAdapter final : public ResourceAdapter {
 public:
  /// Wraps `inner`, keeping its name so the decorated resource is a
  /// drop-in replacement; events raised by the inner adapter are
  /// forwarded through this wrapper's sink.
  ChaosAdapter(std::unique_ptr<ResourceAdapter> inner, ChaosConfig config);

  Result<model::Value> execute(const std::string& command,
                               const Args& args) override;

  [[nodiscard]] ChaosStats stats() const noexcept;
  [[nodiscard]] ResourceAdapter& inner() noexcept { return *inner_; }

 private:
  /// One uniform [0,1) draw; locked — execute() runs on many threads.
  double draw();

  std::unique_ptr<ResourceAdapter> inner_;
  ChaosConfig config_;
  std::mutex rng_mutex_;
  std::mt19937_64 rng_;
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> threw_{0};
  std::atomic<std::uint64_t> delayed_{0};
  std::atomic<std::uint64_t> passed_{0};
};

}  // namespace mdsm::broker
