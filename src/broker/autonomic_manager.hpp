// Autonomic Manager: "for self-configuration ... different symptoms,
// change requests and change plans may be defined to specify the
// different situations in which autonomic behavior is triggered and how
// to handle each such occurrence" (paper §V-A).
//
// The manager implements a compact MAPE loop: Monitor (bus events) →
// Analyze (symptom conditions over the context) → Plan (select a change
// plan for the raised change request) → Execute (run the plan's steps
// through the layer's step executor).
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "broker/action.hpp"
#include "common/status.hpp"
#include "obs/request_context.hpp"
#include "policy/context.hpp"
#include "runtime/event_bus.hpp"

namespace mdsm::broker {

/// A situation worth reacting to: when an event on `trigger_topic`
/// arrives and `condition` holds over the context, raise `change_request`.
struct Symptom {
  std::string name;
  std::string trigger_topic;       ///< exact or prefix ("resource.*")
  policy::Expression condition;    ///< empty = always
  std::string change_request;      ///< request kind raised
};

/// How to satisfy one change-request kind.
struct ChangePlan {
  std::string name;
  std::string handles_request;
  policy::Expression guard;        ///< plan applicability
  int priority = 0;
  std::vector<ActionStep> steps;
};

class AutonomicManager {
 public:
  /// `execute_steps` is the owning layer's step interpreter (shared with
  /// Action execution); the autonomic manager never touches resources
  /// directly.
  using StepExecutor = std::function<Status(
      const std::vector<ActionStep>& steps, const Args& request_args)>;

  AutonomicManager(runtime::EventBus& bus, policy::ContextStore& context,
                   StepExecutor execute_steps);
  ~AutonomicManager();

  AutonomicManager(const AutonomicManager&) = delete;
  AutonomicManager& operator=(const AutonomicManager&) = delete;

  Status add_symptom(Symptom symptom);
  Status add_plan(ChangePlan plan);

  /// Platform-wide metrics sink (optional; wired via the broker layer).
  void set_metrics(obs::MetricsRegistry* metrics) noexcept {
    metrics_ = metrics;
  }

  /// Manually raise a change request (also used internally by symptom
  /// detection). Selects the highest-priority applicable plan.
  Status raise_request(const std::string& request, const Args& args = {});

  [[nodiscard]] std::uint64_t adaptations() const noexcept {
    return adaptations_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t symptoms_detected() const noexcept {
    return detected_.load(std::memory_order_relaxed);
  }
  /// Copy of the adaptation log (events fire on request threads).
  [[nodiscard]] std::vector<std::string> adaptation_log() const {
    std::lock_guard lock(log_mutex_);
    return log_;
  }

 private:
  void on_event(const runtime::Event& event, std::size_t symptom_index);
  void log_entry(std::string entry) {
    std::lock_guard lock(log_mutex_);
    log_.push_back(std::move(entry));
  }

  runtime::EventBus* bus_;
  policy::ContextStore* context_;
  obs::MetricsRegistry* metrics_ = nullptr;
  StepExecutor execute_steps_;
  std::vector<Symptom> symptoms_;
  std::vector<ChangePlan> plans_;
  std::vector<std::uint64_t> subscriptions_;
  std::atomic<std::uint64_t> adaptations_{0};
  std::atomic<std::uint64_t> detected_{0};
  mutable std::mutex log_mutex_;  ///< guards log_ only
  std::vector<std::string> log_;
};

}  // namespace mdsm::broker
