// Vocabulary of the Broker layer (paper Fig. 6): calls arriving from the
// Controller layer, events rising from resources, and the trace of
// commands issued to the underlying resources.
//
// The command trace is the observable the paper's Exp-1 (behavioral
// equivalence) compares: "the sequence of commands that were generated
// for the underlying resources as a result of model interpretation".
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "model/value.hpp"

namespace mdsm::broker {

using Args = std::map<std::string, model::Value, std::less<>>;

/// A call into the broker layer (from the Controller above).
struct Call {
  std::string name;  ///< operation, e.g. "session.open"
  Args args;
};

/// Render "name(k=v, k=v)" with sorted keys — canonical trace form.
std::string format_invocation(const std::string& name, const Args& args);

/// Checked argument lookup for instruction/step execution. A missing key
/// is an ExecutionError naming the operation — never a silently
/// default-inserted null (a present key whose value resolved to none is
/// fine; only absence is a model-authoring bug worth surfacing).
Result<model::Value> require_arg(const Args& args, std::string_view key,
                                 std::string_view op);

/// Append-only record of resource commands, used for equivalence checks
/// and performance accounting. record()/size()/clear()/snapshot() are safe
/// under concurrent execution; entries() hands out the underlying vector
/// and is for quiescent inspection (equivalence checks after the run).
class CommandTrace {
 public:
  void record(const std::string& resource, const std::string& command,
              const Args& args);

  [[nodiscard]] const std::vector<std::string>& entries() const noexcept {
    return entries_;
  }
  /// Locked point-in-time copy, safe while other threads still record.
  [[nodiscard]] std::vector<std::string> snapshot() const {
    std::lock_guard lock(mutex_);
    return entries_;
  }
  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return entries_.size();
  }
  void clear() {
    std::lock_guard lock(mutex_);
    entries_.clear();
  }

  /// Exact sequence equality — the paper's behavioral-equivalence test.
  friend bool operator==(const CommandTrace& a, const CommandTrace& b) {
    if (&a == &b) return true;
    std::scoped_lock lock(a.mutex_, b.mutex_);
    return a.entries_ == b.entries_;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::string> entries_;
};

}  // namespace mdsm::broker
