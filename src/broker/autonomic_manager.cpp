#include "broker/autonomic_manager.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace mdsm::broker {

AutonomicManager::AutonomicManager(runtime::EventBus& bus,
                                   policy::ContextStore& context,
                                   StepExecutor execute_steps)
    : bus_(&bus), context_(&context), execute_steps_(std::move(execute_steps)) {}

AutonomicManager::~AutonomicManager() {
  for (auto id : subscriptions_) bus_->unsubscribe(id);
}

Status AutonomicManager::add_symptom(Symptom symptom) {
  for (const Symptom& existing : symptoms_) {
    if (existing.name == symptom.name) {
      return AlreadyExists("symptom '" + symptom.name + "' already defined");
    }
  }
  // One subscription per symptom, each bound to its own symptom index so
  // symptoms sharing a topic never double-fire each other.
  std::size_t index = symptoms_.size();
  symptoms_.push_back(std::move(symptom));
  subscriptions_.push_back(bus_->subscribe(
      symptoms_[index].trigger_topic,
      [this, index](const runtime::Event& event) { on_event(event, index); }));
  return Status::Ok();
}

Status AutonomicManager::add_plan(ChangePlan plan) {
  for (const ChangePlan& existing : plans_) {
    if (existing.name == plan.name) {
      return AlreadyExists("change plan '" + plan.name + "' already defined");
    }
  }
  plans_.push_back(std::move(plan));
  // Keep priority-descending, stable.
  std::stable_sort(plans_.begin(), plans_.end(),
                   [](const ChangePlan& a, const ChangePlan& b) {
                     return a.priority > b.priority;
                   });
  return Status::Ok();
}

void AutonomicManager::on_event(const runtime::Event& event,
                                std::size_t symptom_index) {
  const Symptom& symptom = symptoms_[symptom_index];
  Result<bool> holds = symptom.condition.evaluate_bool(*context_);
  if (!holds.ok() || !*holds) return;
  detected_.fetch_add(1, std::memory_order_relaxed);
  log_entry("symptom " + symptom.name + " on " + event.topic +
            " -> request " + symptom.change_request);
  Args args;
  args["event.topic"] = model::Value(event.topic);
  args["event.payload"] = event.payload;
  Status status = raise_request(symptom.change_request, args);
  if (!status.ok()) {
    log_warn("autonomic") << "request '" << symptom.change_request
                          << "' failed: " << status.to_string();
  }
}

Status AutonomicManager::raise_request(const std::string& request,
                                       const Args& args) {
  for (const ChangePlan& plan : plans_) {
    if (plan.handles_request != request) continue;
    Result<bool> applicable = plan.guard.evaluate_bool(*context_);
    if (!applicable.ok() || !*applicable) continue;
    adaptations_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_ != nullptr) metrics_->counter("autonomic.reactions").add();
    log_entry("plan " + plan.name + " executing for " + request);
    // Reactions are reached through bus subscriptions, so the request
    // that caused them is only visible as the ambient context; the span
    // lands in that request's trace (none when adapting spontaneously).
    obs::RequestContext* request_context = obs::current();
    std::uint64_t span = 0;
    if (request_context != nullptr) {
      span = request_context->open_span("autonomic.reaction", plan.name);
    }
    Status executed = execute_steps_(plan.steps, args);
    if (request_context != nullptr) request_context->close_span(span);
    if (!executed.ok() && metrics_ != nullptr) {
      metrics_->counter("autonomic.reaction_failures").add();
    }
    return executed;
  }
  return NotFound("no applicable change plan for request '" + request + "'");
}

}  // namespace mdsm::broker
