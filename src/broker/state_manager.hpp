// State Manager: "to store and manipulate the layer's runtime model"
// (paper §V-A). Implements the models@runtime principle [16]: the layer
// keeps a live Model reflecting the entities it manages, plus a scalar
// variable store for cheap bookkeeping.
#pragma once

#include <mutex>
#include <optional>
#include <string>

#include "model/model.hpp"

namespace mdsm::broker {

/// Value accessors (set/get/has/erase and set_runtime_model) are safe
/// under concurrent execution. The runtime_model() reference accessors
/// hand out the stored model for in-place manipulation and are for
/// quiescent use (tests, single-threaded domain code).
class StateManager {
 public:
  /// Install/replace the runtime model. Usually set by the platform
  /// assembler with an empty model of the application DSML metamodel;
  /// re-set on every commit by the synthesis model listener.
  void set_runtime_model(model::Model model) {
    std::lock_guard lock(mutex_);
    runtime_model_ = std::move(model);
  }
  [[nodiscard]] bool has_runtime_model() const {
    std::lock_guard lock(mutex_);
    return runtime_model_.has_value();
  }
  [[nodiscard]] model::Model& runtime_model() { return *runtime_model_; }
  [[nodiscard]] const model::Model& runtime_model() const {
    return *runtime_model_;
  }

  /// Scalar state variables (session counters, flags, ...).
  void set(const std::string& key, model::Value value) {
    std::lock_guard lock(mutex_);
    variables_[key] = std::move(value);
  }
  [[nodiscard]] model::Value get(std::string_view key) const {
    std::lock_guard lock(mutex_);
    auto it = variables_.find(key);
    return it == variables_.end() ? model::Value{} : it->second;
  }
  [[nodiscard]] bool has(std::string_view key) const {
    std::lock_guard lock(mutex_);
    return variables_.contains(key);
  }
  void erase(const std::string& key) {
    std::lock_guard lock(mutex_);
    variables_.erase(key);
  }
  [[nodiscard]] std::size_t variable_count() const {
    std::lock_guard lock(mutex_);
    return variables_.size();
  }
  /// Full copy of the scalar store — the broker half of a session
  /// checkpoint (Platform::export_session_state).
  [[nodiscard]] std::map<std::string, model::Value, std::less<>>
  variables_snapshot() const {
    std::lock_guard lock(mutex_);
    return variables_;
  }

 private:
  mutable std::mutex mutex_;
  std::optional<model::Model> runtime_model_;
  std::map<std::string, model::Value, std::less<>> variables_;
};

}  // namespace mdsm::broker
