// State Manager: "to store and manipulate the layer's runtime model"
// (paper §V-A). Implements the models@runtime principle [16]: the layer
// keeps a live Model reflecting the entities it manages, plus a scalar
// variable store for cheap bookkeeping.
#pragma once

#include <optional>
#include <string>

#include "model/model.hpp"

namespace mdsm::broker {

class StateManager {
 public:
  /// Install/replace the runtime model. Usually set by the platform
  /// assembler with an empty model of the application DSML metamodel.
  void set_runtime_model(model::Model model) {
    runtime_model_ = std::move(model);
  }
  [[nodiscard]] bool has_runtime_model() const noexcept {
    return runtime_model_.has_value();
  }
  [[nodiscard]] model::Model& runtime_model() { return *runtime_model_; }
  [[nodiscard]] const model::Model& runtime_model() const {
    return *runtime_model_;
  }

  /// Scalar state variables (session counters, flags, ...).
  void set(const std::string& key, model::Value value) {
    variables_[key] = std::move(value);
  }
  [[nodiscard]] model::Value get(std::string_view key) const {
    auto it = variables_.find(key);
    return it == variables_.end() ? model::Value{} : it->second;
  }
  [[nodiscard]] bool has(std::string_view key) const {
    return variables_.contains(key);
  }
  void erase(const std::string& key) { variables_.erase(key); }
  [[nodiscard]] std::size_t variable_count() const noexcept {
    return variables_.size();
  }

 private:
  std::optional<model::Model> runtime_model_;
  std::map<std::string, model::Value, std::less<>> variables_;
};

}  // namespace mdsm::broker
