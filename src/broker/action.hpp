// Actions and Handlers (paper Fig. 6): "the middleware engineer also
// needs to specify the actions to be executed in response to calls and
// events received by the Broker layer. These are specified in the model
// as instances of Action and Handler, which define the mechanisms to
// select the appropriate action in each case."
//
// An Action is a guarded, prioritized sequence of interpreted steps; a
// Handler binds a signal (call or event name) to its candidate actions.
#pragma once

#include <string>
#include <vector>

#include "broker/broker_types.hpp"
#include "policy/expression.hpp"

namespace mdsm::broker {

enum class StepOp {
  kInvoke,      ///< issue a resource command: a=resource, b=command, args
  kSetState,    ///< write a state variable: a=key, args["value"]
  kSetContext,  ///< write a context variable: a=key, args["value"]
  kEmit,        ///< publish an event: a=topic, args["payload"]
  kGuard,       ///< abort the action unless `guard` holds
  kResult,      ///< set the action's result value: args["value"]
};

std::string_view to_string(StepOp op) noexcept;

/// One interpreted step. Argument values may be templates:
///   "$name"      → substituted with the triggering call's argument `name`
///   "$ctx:name"  → substituted with context variable `name`
/// anything else is passed through literally.
struct ActionStep {
  StepOp op{};
  std::string a;  ///< primary operand (see StepOp)
  std::string b;  ///< secondary operand (kInvoke: the command)
  Args args;
  policy::Expression guard;  ///< only used by kGuard
};

struct Action {
  std::string name;
  policy::Expression guard;  ///< applicability; empty = always applicable
  int priority = 0;          ///< higher preferred among applicable actions
  std::vector<ActionStep> steps;
};

/// Binds one signal name to candidate actions (by name, in bind order).
struct Handler {
  std::string signal;
  std::vector<std::string> action_names;
};

/// Substitute templated values in `args` against the call args + context.
/// Unknown "$name" resolves to none (validation is the action's guard's
/// job); malformed templates never error.
Args resolve_args(const Args& templated, const Args& call_args,
                  const policy::ContextStore& context);

/// Convenience builders for step sequences (used by domain DSK code and
/// by the middleware-model loader).
ActionStep invoke_step(std::string resource, std::string command,
                       Args args = {});
ActionStep set_state_step(std::string key, model::Value value);
ActionStep set_context_step(std::string key, model::Value value);
ActionStep emit_step(std::string topic, model::Value payload = {});
ActionStep guard_step(std::string_view condition);
ActionStep result_step(model::Value value);

}  // namespace mdsm::broker
