// Fault-tolerance vocabulary of the Broker layer: per-resource invocation
// policies (bounded retries with decorrelated-jitter backoff and a
// cooperative per-attempt timeout), a sliding-window circuit breaker, and
// optional fallback resources for graceful degradation.
//
// The paper's Broker layer exists "to interface with the underlying
// resources" (§V-A) and delegates self-management to an autonomic
// manager; recovering from transient resource faults is therefore the
// middleware's job, not the domain VM's. ResourceManager::invoke drives
// the retry loop; everything here is mechanism (state machines + math)
// with no knowledge of adapters or metrics.
#pragma once

#include <cstdint>
#include <mutex>
#include <random>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/status.hpp"

namespace mdsm::broker {

/// Circuit-breaker tuning. Disabled (window == 0) resources never trip.
struct BreakerConfig {
  /// Sliding window of attempt outcomes consulted for the failure rate.
  /// 0 disables the breaker entirely.
  std::size_t window = 0;
  /// The breaker never trips before this many outcomes are in the window
  /// (a single failure on a cold resource is not a trend).
  std::size_t min_samples = 5;
  /// Open when failures/window >= this fraction.
  double failure_threshold = 0.5;
  /// Time spent open before admitting half-open probes.
  Duration cooldown{10'000};
  /// Probes admitted concurrently while half-open; this many consecutive
  /// probe successes close the breaker, one probe failure re-opens it.
  int half_open_probes = 1;

  [[nodiscard]] bool enabled() const noexcept { return window > 0; }
};

/// Per-resource invocation policy. The zero-configuration default (one
/// attempt, no breaker, no fallback) reproduces fire-once semantics
/// exactly, so resources without a policy behave as before.
struct InvocationPolicy {
  /// Total attempts per logical invoke (1 = no retries).
  int max_attempts = 1;
  /// Decorrelated-jitter backoff: sleep_n = uniform(base, 3 * sleep_{n-1})
  /// clamped to max_backoff. Base 0 disables sleeping between attempts.
  Duration initial_backoff{500};
  Duration max_backoff{50'000};
  /// Cooperative per-attempt timeout: a synchronous adapter cannot be
  /// preempted, but an attempt that fails after stalling longer than this
  /// is reclassified as Timeout (retryable) and the remaining deadline
  /// budget caps further attempts. 0 = no per-attempt budget.
  Duration attempt_timeout{};
  /// Name of another registered adapter invoked once (fire-once, no
  /// breaker) when the primary exhausts its attempts or its breaker is
  /// open. Empty = fail upward.
  std::string fallback_resource;
  /// Wrap a successful fallback value as ["degraded", value] so callers
  /// can see the result is second-choice.
  bool tag_degraded = true;
  BreakerConfig breaker;
  /// Seed for the backoff jitter (kept deterministic for tests/soaks).
  std::uint64_t jitter_seed = 42;
};

/// Codes worth retrying: the fault may be transient (resource down,
/// attempt timed out, adapter crashed mid-command). Model-authoring and
/// registry errors (NotFound, InvalidArgument, FailedPrecondition...)
/// fail fast — retrying cannot fix a missing adapter.
[[nodiscard]] bool retryable(ErrorCode code) noexcept;

/// Decorrelated-jitter backoff sequence (one instance per retry chain).
class RetryBackoff {
 public:
  RetryBackoff(Duration base, Duration cap, std::uint64_t seed)
      : base_(base), cap_(cap), prev_(base), rng_(seed) {}

  /// Next sleep: uniform(base, 3 * previous), clamped to [base, cap].
  [[nodiscard]] Duration next();

 private:
  Duration base_;
  Duration cap_;
  Duration prev_;
  std::mt19937_64 rng_;
};

/// Sliding-window circuit breaker over the abstract Clock.
///
///   closed ──(failure rate >= threshold over window)──► open
///   open ──(cooldown elapsed)──► half-open
///   half-open ──(probe failure)──► open
///   half-open ──(half_open_probes successes)──► closed
///
/// Thread-safe: admit()/on_result() serialize on an internal mutex (the
/// state machine is tiny; contention is bounded by attempt rate).
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };
  /// admit() verdict: run normally, run as a half-open probe, or
  /// fast-fail without touching the resource.
  enum class Admission { kAllow, kProbe, kReject };
  /// State-machine edge taken by a call, for the caller to publish.
  enum class Transition { kNone, kOpened, kClosed };

  explicit CircuitBreaker(BreakerConfig config);

  struct AdmitResult {
    Admission admission = Admission::kAllow;
    Transition transition = Transition::kNone;  ///< open → half-open is kNone
  };
  [[nodiscard]] AdmitResult admit(TimePoint now);

  /// Report the outcome of an admitted attempt. `admission` must be the
  /// verdict admit() returned for it (probes retire probe slots).
  [[nodiscard]] Transition on_result(Admission admission, bool success,
                                     TimePoint now);

  [[nodiscard]] State state() const;

 private:
  void open_locked(TimePoint now);

  BreakerConfig config_;
  mutable std::mutex mutex_;
  State state_ = State::kClosed;
  std::vector<bool> outcomes_;  ///< ring buffer, true = failure
  std::size_t next_slot_ = 0;
  std::size_t samples_ = 0;
  std::size_t failures_ = 0;
  TimePoint opened_at_{};
  int probes_in_flight_ = 0;
  int probe_successes_ = 0;
};

}  // namespace mdsm::broker
