#include "broker/action.hpp"

#include <stdexcept>

#include "common/strings.hpp"

namespace mdsm::broker {

std::string_view to_string(StepOp op) noexcept {
  switch (op) {
    case StepOp::kInvoke: return "invoke";
    case StepOp::kSetState: return "set-state";
    case StepOp::kSetContext: return "set-context";
    case StepOp::kEmit: return "emit";
    case StepOp::kGuard: return "guard";
    case StepOp::kResult: return "result";
  }
  return "?";
}

namespace {

model::Value resolve_value(const model::Value& value, const Args& call_args,
                           const policy::ContextStore& context) {
  if (!value.is_string()) return value;
  const std::string& text = value.as_string();
  if (starts_with(text, "$ctx:")) {
    return context.get(text.substr(5));
  }
  if (starts_with(text, "$$")) {
    return model::Value(text.substr(1));  // escaped literal "$..."
  }
  if (starts_with(text, "$")) {
    auto it = call_args.find(text.substr(1));
    return it == call_args.end() ? model::Value{} : it->second;
  }
  return value;
}

}  // namespace

Args resolve_args(const Args& templated, const Args& call_args,
                  const policy::ContextStore& context) {
  Args out;
  for (const auto& [key, value] : templated) {
    out[key] = resolve_value(value, call_args, context);
  }
  return out;
}

ActionStep invoke_step(std::string resource, std::string command, Args args) {
  ActionStep step;
  step.op = StepOp::kInvoke;
  step.a = std::move(resource);
  step.b = std::move(command);
  step.args = std::move(args);
  return step;
}

ActionStep set_state_step(std::string key, model::Value value) {
  ActionStep step;
  step.op = StepOp::kSetState;
  step.a = std::move(key);
  step.args["value"] = std::move(value);
  return step;
}

ActionStep set_context_step(std::string key, model::Value value) {
  ActionStep step;
  step.op = StepOp::kSetContext;
  step.a = std::move(key);
  step.args["value"] = std::move(value);
  return step;
}

ActionStep emit_step(std::string topic, model::Value payload) {
  ActionStep step;
  step.op = StepOp::kEmit;
  step.a = std::move(topic);
  step.args["payload"] = std::move(payload);
  return step;
}

ActionStep guard_step(std::string_view condition) {
  ActionStep step;
  step.op = StepOp::kGuard;
  auto parsed = policy::Expression::parse(condition);
  if (!parsed.ok()) {
    // Guards are authored in code or loaded through the validated
    // middleware-model path; a malformed literal here is a programming
    // error, so fail loudly (Core Guidelines I.5).
    throw std::invalid_argument("bad guard expression: " +
                                parsed.status().to_string());
  }
  step.guard = std::move(parsed.value());
  return step;
}

ActionStep result_step(model::Value value) {
  ActionStep step;
  step.op = StepOp::kResult;
  step.args["value"] = std::move(value);
  return step;
}

}  // namespace mdsm::broker
