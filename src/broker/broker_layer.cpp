#include <mutex>
#include <optional>

#include "broker/broker_layer.hpp"

#include "common/log.hpp"

namespace mdsm::broker {

BrokerLayer::BrokerLayer(std::string name, runtime::EventBus& bus,
                         policy::ContextStore& context)
    : Component(std::move(name)),
      bus_(&bus),
      context_(&context),
      resources_(bus) {
  autonomic_ = std::make_unique<AutonomicManager>(
      bus, context,
      [this](const std::vector<ActionStep>& steps, const Args& args) {
        Result<model::Value> result = execute_steps(steps, args);
        return result.ok() ? Status::Ok() : result.status();
      });
}

Status BrokerLayer::register_action(Action action) {
  const std::string name = action.name;
  std::unique_lock lock(config_mutex_);
  auto [it, inserted] = actions_.emplace(name, std::move(action));
  if (!inserted) {
    return AlreadyExists("action '" + name + "' already registered");
  }
  return Status::Ok();
}

Status BrokerLayer::bind_handler(const std::string& signal,
                                 std::vector<std::string> action_names) {
  std::unique_lock lock(config_mutex_);
  for (const std::string& action_name : action_names) {
    if (!actions_.contains(action_name)) {
      return NotFound("handler for '" + signal + "' binds unknown action '" +
                      action_name + "'");
    }
  }
  Handler& handler = handlers_[signal];
  handler.signal = signal;
  for (std::string& action_name : action_names) {
    handler.action_names.push_back(std::move(action_name));
  }
  return Status::Ok();
}

Result<const Action*> BrokerLayer::select_action(
    const std::string& signal) const {
  // Select under the shared lock; the returned pointer stays valid after
  // release because actions are never removed (node-based map).
  std::shared_lock lock(config_mutex_);
  auto it = handlers_.find(signal);
  if (it == handlers_.end()) {
    return NotFound("broker '" + name() + "' has no handler for signal '" +
                    signal + "'");
  }
  const Action* best = nullptr;
  for (const std::string& action_name : it->second.action_names) {
    auto action_it = actions_.find(action_name);
    if (action_it == actions_.end()) continue;
    const Action& action = action_it->second;
    Result<bool> applicable = action.guard.evaluate_bool(*context_);
    if (!applicable.ok() || !*applicable) continue;
    if (best == nullptr || action.priority > best->priority) {
      best = &action;
    }
  }
  if (best == nullptr) {
    return FailedPrecondition("no applicable action for signal '" + signal +
                              "' in current context");
  }
  return best;
}

void BrokerLayer::set_metrics(obs::MetricsRegistry* metrics) noexcept {
  metrics_ = metrics;
  resources_.set_metrics(metrics);
  autonomic_->set_metrics(metrics);
}

Result<model::Value> BrokerLayer::call(const Call& call,
                                       obs::RequestContext& context) {
  obs::ContextScope ambient(context);
  obs::ScopedSpan span(context, "broker.call", call.name);
  calls_handled_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_ != nullptr) metrics_->counter("broker.calls").add();
  if (Status deadline = context.check_deadline("broker"); !deadline.ok()) {
    return deadline;
  }
  Result<const Action*> action = select_action(call.name);
  if (!action.ok()) return action.status();
  log_debug("broker") << name() << " call " << call.name << " -> action "
                      << (*action)->name;
  return execute_steps((*action)->steps, call.args, context);
}

Status BrokerLayer::handle_event(const std::string& topic,
                                 model::Value payload,
                                 obs::RequestContext& context) {
  events_handled_.fetch_add(1, std::memory_order_relaxed);
  Result<const Action*> action = select_action(topic);
  if (!action.ok()) {
    // Unhandled events are not errors: layers subscribe selectively.
    return Status::Ok();
  }
  obs::ContextScope ambient(context);
  obs::ScopedSpan span(context, "broker.event", topic);
  if (metrics_ != nullptr) metrics_->counter("broker.events").add();
  Args args;
  args["event.topic"] = model::Value(topic);
  args["event.payload"] = std::move(payload);
  Result<model::Value> result =
      execute_steps((*action)->steps, args, context);
  return result.ok() ? Status::Ok() : result.status();
}

// ---- staged execution (PR 6) -----------------------------------------

struct BrokerLayer::StepRun {
  const std::vector<ActionStep>* steps = nullptr;
  Args call_args;
  obs::RequestContext* context = nullptr;
  CallCallback done;
  model::Value result;
  std::optional<Result<model::Value>> pending;  ///< settled kInvoke outcome
  std::size_t index = 0;
};

void BrokerLayer::call_async(const Call& broker_call,
                             obs::RequestContext& context,
                             CallCallback done) {
  obs::ContextScope ambient(context);
  calls_handled_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_ != nullptr) metrics_->counter("broker.calls").add();
  // The span is closed by `finish`, not a ScopedSpan: the call may park
  // and complete on another thread long after this frame unwinds.
  const std::uint64_t span = context.open_span("broker.call",
                                               broker_call.name);
  obs::RequestContext* context_ptr = &context;
  CallCallback finish = [context_ptr, span,
                         done = std::move(done)](Result<model::Value> r) {
    context_ptr->close_span(span);
    done(std::move(r));
  };
  if (Status deadline = context.check_deadline("broker"); !deadline.ok()) {
    finish(deadline);
    return;
  }
  Result<const Action*> action = select_action(broker_call.name);
  if (!action.ok()) {
    finish(action.status());
    return;
  }
  log_debug("broker") << name() << " call " << broker_call.name
                      << " -> action " << (*action)->name;
  execute_steps_async((*action)->steps, broker_call.args, context,
                      std::move(finish));
}

void BrokerLayer::execute_steps_async(const std::vector<ActionStep>& steps,
                                      Args call_args,
                                      obs::RequestContext& context,
                                      CallCallback done) {
  auto run = std::make_shared<StepRun>();
  run->steps = &steps;
  run->call_args = std::move(call_args);
  run->context = &context;
  run->done = std::move(done);
  drive_steps(std::move(run));
}

bool BrokerLayer::consume_pending(StepRun& run) {
  Result<model::Value> invoked = std::move(*run.pending);
  run.pending.reset();
  if (!invoked.ok()) {
    run.done(invoked.status());
    return false;
  }
  run.result = std::move(invoked.value());
  return true;
}

void BrokerLayer::drive_steps(std::shared_ptr<StepRun> run) {
  obs::ContextScope ambient(*run->context);
  const std::vector<ActionStep>& steps = *run->steps;
  while (run->index < steps.size()) {
    const ActionStep& step = steps[run->index];
    ++run->index;
    switch (step.op) {
      case StepOp::kGuard: {
        Result<bool> holds = step.guard.evaluate_bool(*context_);
        if (!holds.ok()) {
          run->done(holds.status());
          return;
        }
        if (!*holds) {
          run->done(FailedPrecondition("action guard '" + step.guard.text() +
                                       "' failed"));
          return;
        }
        break;
      }
      case StepOp::kInvoke: {
        Args resolved = resolve_args(step.args, run->call_args, *context_);
        // Trampoline: 0 = driver still in this frame, 1 = driver parked,
        // 2 = completion fired inline. Whoever arrives second owns the
        // continuation, so inline completions stay in this loop (no
        // recursion) and true parks resume on the settling thread.
        auto turn = std::make_shared<std::atomic<int>>(0);
        StepRun& state = *run;
        resources_.invoke_async(
            step.a, step.b, resolved, *run->context,
            [this, run, turn](Result<model::Value> invoked) {
              run->pending.emplace(std::move(invoked));
              if (turn->exchange(2, std::memory_order_acq_rel) == 1) {
                if (consume_pending(*run)) drive_steps(run);
              }
            });
        if (turn->exchange(1, std::memory_order_acq_rel) == 0) {
          return;  // parked: the completion resumes the run
        }
        if (!consume_pending(state)) return;
        break;
      }
      case StepOp::kSetState: {
        Args resolved = resolve_args(step.args, run->call_args, *context_);
        Result<model::Value> value = require_arg(resolved, "value",
                                                 "set-state");
        if (!value.ok()) {
          run->done(value.status());
          return;
        }
        state_.set(step.a, std::move(value.value()));
        break;
      }
      case StepOp::kSetContext: {
        Args resolved = resolve_args(step.args, run->call_args, *context_);
        Result<model::Value> value = require_arg(resolved, "value",
                                                 "set-context");
        if (!value.ok()) {
          run->done(value.status());
          return;
        }
        context_->set(step.a, std::move(value.value()));
        break;
      }
      case StepOp::kEmit: {
        Args resolved = resolve_args(step.args, run->call_args, *context_);
        Result<model::Value> payload = require_arg(resolved, "payload",
                                                   "emit");
        if (!payload.ok()) {
          run->done(payload.status());
          return;
        }
        bus_->publish(step.a, name(), std::move(payload.value()));
        break;
      }
      case StepOp::kResult: {
        Args resolved = resolve_args(step.args, run->call_args, *context_);
        Result<model::Value> value = require_arg(resolved, "value", "result");
        if (!value.ok()) {
          run->done(value.status());
          return;
        }
        run->result = std::move(value.value());
        break;
      }
    }
  }
  run->done(std::move(run->result));
}

Result<model::Value> BrokerLayer::execute_steps(
    const std::vector<ActionStep>& steps, const Args& call_args,
    obs::RequestContext& context) {
  obs::ContextScope ambient(context);
  model::Value result;
  for (const ActionStep& step : steps) {
    switch (step.op) {
      case StepOp::kGuard: {
        Result<bool> holds = step.guard.evaluate_bool(*context_);
        if (!holds.ok()) return holds.status();
        if (!*holds) {
          return FailedPrecondition("action guard '" + step.guard.text() +
                                    "' failed");
        }
        break;
      }
      case StepOp::kInvoke: {
        Args resolved = resolve_args(step.args, call_args, *context_);
        Result<model::Value> invoked =
            resources_.invoke(step.a, step.b, resolved, context);
        if (!invoked.ok()) return invoked.status();
        result = std::move(invoked.value());
        break;
      }
      case StepOp::kSetState: {
        Args resolved = resolve_args(step.args, call_args, *context_);
        Result<model::Value> value = require_arg(resolved, "value",
                                                 "set-state");
        if (!value.ok()) return value.status();
        state_.set(step.a, std::move(value.value()));
        break;
      }
      case StepOp::kSetContext: {
        Args resolved = resolve_args(step.args, call_args, *context_);
        Result<model::Value> value = require_arg(resolved, "value",
                                                 "set-context");
        if (!value.ok()) return value.status();
        context_->set(step.a, std::move(value.value()));
        break;
      }
      case StepOp::kEmit: {
        Args resolved = resolve_args(step.args, call_args, *context_);
        Result<model::Value> payload = require_arg(resolved, "payload",
                                                   "emit");
        if (!payload.ok()) return payload.status();
        bus_->publish(step.a, name(), std::move(payload.value()));
        break;
      }
      case StepOp::kResult: {
        Args resolved = resolve_args(step.args, call_args, *context_);
        Result<model::Value> value = require_arg(resolved, "value", "result");
        if (!value.ok()) return value.status();
        result = std::move(value.value());
        break;
      }
    }
  }
  return result;
}

}  // namespace mdsm::broker
