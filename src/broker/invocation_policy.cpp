#include "broker/invocation_policy.hpp"

#include <algorithm>

namespace mdsm::broker {

bool retryable(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kUnavailable:
    case ErrorCode::kTimeout:
    case ErrorCode::kExecutionError:
      return true;
    default:
      return false;
  }
}

Duration RetryBackoff::next() {
  if (base_.count() <= 0) return Duration{};
  const std::int64_t low = base_.count();
  const std::int64_t high = std::max<std::int64_t>(low, 3 * prev_.count());
  std::int64_t drawn =
      std::uniform_int_distribution<std::int64_t>(low, high)(rng_);
  prev_ = Duration(std::min(drawn, cap_.count()));
  return prev_;
}

CircuitBreaker::CircuitBreaker(BreakerConfig config) : config_(config) {
  outcomes_.assign(std::max<std::size_t>(config_.window, 1), false);
}

void CircuitBreaker::open_locked(TimePoint now) {
  state_ = State::kOpen;
  opened_at_ = now;
  probes_in_flight_ = 0;
  probe_successes_ = 0;
  // The window restarts from scratch after a trip: pre-trip history must
  // not re-open a breaker that just recovered.
  std::fill(outcomes_.begin(), outcomes_.end(), false);
  next_slot_ = 0;
  samples_ = 0;
  failures_ = 0;
}

CircuitBreaker::AdmitResult CircuitBreaker::admit(TimePoint now) {
  std::lock_guard lock(mutex_);
  if (!config_.enabled()) return {Admission::kAllow, Transition::kNone};
  switch (state_) {
    case State::kClosed:
      return {Admission::kAllow, Transition::kNone};
    case State::kOpen:
      if (now - opened_at_ < config_.cooldown) {
        return {Admission::kReject, Transition::kNone};
      }
      state_ = State::kHalfOpen;
      probes_in_flight_ = 0;
      probe_successes_ = 0;
      [[fallthrough]];
    case State::kHalfOpen:
      if (probes_in_flight_ >= config_.half_open_probes) {
        return {Admission::kReject, Transition::kNone};
      }
      ++probes_in_flight_;
      return {Admission::kProbe, Transition::kNone};
  }
  return {Admission::kAllow, Transition::kNone};
}

CircuitBreaker::Transition CircuitBreaker::on_result(Admission admission,
                                                     bool success,
                                                     TimePoint now) {
  std::lock_guard lock(mutex_);
  if (!config_.enabled() || admission == Admission::kReject) {
    return Transition::kNone;
  }
  if (admission == Admission::kProbe) {
    if (state_ != State::kHalfOpen) return Transition::kNone;  // raced a trip
    probes_in_flight_ = std::max(probes_in_flight_ - 1, 0);
    if (!success) {
      open_locked(now);
      return Transition::kOpened;
    }
    if (++probe_successes_ >= config_.half_open_probes) {
      state_ = State::kClosed;
      probes_in_flight_ = 0;
      probe_successes_ = 0;
      return Transition::kClosed;
    }
    return Transition::kNone;
  }
  // Normal (closed-state) outcome: slide the window.
  if (state_ != State::kClosed) return Transition::kNone;
  const bool evicted = outcomes_[next_slot_];
  if (samples_ == outcomes_.size() && evicted) --failures_;
  outcomes_[next_slot_] = !success;
  next_slot_ = (next_slot_ + 1) % outcomes_.size();
  samples_ = std::min(samples_ + 1, outcomes_.size());
  if (!success) ++failures_;
  if (samples_ >= config_.min_samples &&
      static_cast<double>(failures_) >=
          config_.failure_threshold * static_cast<double>(samples_)) {
    open_locked(now);
    return Transition::kOpened;
  }
  return Transition::kNone;
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard lock(mutex_);
  return state_;
}

}  // namespace mdsm::broker
