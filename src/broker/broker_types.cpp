#include "broker/broker_types.hpp"

namespace mdsm::broker {

std::string format_invocation(const std::string& name, const Args& args) {
  std::string out = name + "(";
  bool first = true;
  for (const auto& [key, value] : args) {
    if (!first) out += ", ";
    first = false;
    out += key + "=" + value.to_text();
  }
  out += ")";
  return out;
}

Result<model::Value> require_arg(const Args& args, std::string_view key,
                                 std::string_view op) {
  auto it = args.find(key);
  if (it == args.end()) {
    return ExecutionError("'" + std::string(op) + "' is missing required arg '" +
                          std::string(key) + "'");
  }
  return it->second;
}

void CommandTrace::record(const std::string& resource,
                          const std::string& command, const Args& args) {
  // Format outside the lock; only the append is serialized.
  std::string entry = resource + "." + format_invocation(command, args);
  std::lock_guard lock(mutex_);
  entries_.push_back(std::move(entry));
}

}  // namespace mdsm::broker
