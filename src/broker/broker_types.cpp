#include "broker/broker_types.hpp"

namespace mdsm::broker {

std::string format_invocation(const std::string& name, const Args& args) {
  std::string out = name + "(";
  bool first = true;
  for (const auto& [key, value] : args) {
    if (!first) out += ", ";
    first = false;
    out += key + "=" + value.to_text();
  }
  out += ")";
  return out;
}

void CommandTrace::record(const std::string& resource,
                          const std::string& command, const Args& args) {
  entries_.push_back(resource + "." + format_invocation(command, args));
}

}  // namespace mdsm::broker
