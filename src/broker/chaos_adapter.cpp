#include "broker/chaos_adapter.hpp"

#include <stdexcept>
#include <thread>

namespace mdsm::broker {

ChaosAdapter::ChaosAdapter(std::unique_ptr<ResourceAdapter> inner,
                           ChaosConfig config)
    : ResourceAdapter(inner->name()),
      inner_(std::move(inner)),
      config_(config),
      rng_(config.seed) {
  inner_->set_event_sink(
      [this](const std::string& topic, model::Value payload) {
        raise_event(topic, std::move(payload));
      });
}

double ChaosAdapter::draw() {
  std::lock_guard lock(rng_mutex_);
  return std::uniform_real_distribution<double>(0.0, 1.0)(rng_);
}

Result<model::Value> ChaosAdapter::execute(const std::string& command,
                                           const Args& args) {
  executed_.fetch_add(1, std::memory_order_relaxed);
  if (config_.delay_rate > 0.0 && config_.delay.count() > 0 &&
      draw() < config_.delay_rate) {
    delayed_.fetch_add(1, std::memory_order_relaxed);
    if (config_.sleeper) {
      config_.sleeper(config_.delay);
    } else {
      std::this_thread::sleep_for(config_.delay);
    }
  }
  if (config_.throw_rate > 0.0 && draw() < config_.throw_rate) {
    threw_.fetch_add(1, std::memory_order_relaxed);
    throw std::runtime_error("chaos: adapter '" + name() +
                             "' threw on '" + command + "'");
  }
  if (config_.fail_rate > 0.0 && draw() < config_.fail_rate) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    return Unavailable("chaos: resource '" + name() + "' unavailable for '" +
                       command + "'");
  }
  passed_.fetch_add(1, std::memory_order_relaxed);
  return inner_->execute(command, args);
}

ChaosStats ChaosAdapter::stats() const noexcept {
  ChaosStats out;
  out.executed = executed_.load(std::memory_order_relaxed);
  out.failed = failed_.load(std::memory_order_relaxed);
  out.threw = threw_.load(std::memory_order_relaxed);
  out.delayed = delayed_.load(std::memory_order_relaxed);
  out.passed = passed_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace mdsm::broker
