// Resource Manager: "to interface with the underlying resources"
// (paper §V-A). Domains plug in ResourceAdapters over their simulated
// resources (communication services, microgrid controllers, smart
// objects, sensing devices); the manager routes commands, records the
// command trace, and forwards resource events onto the layer's bus.
//
// The manager is also the platform's fault boundary to the outside
// world: per-resource InvocationPolicies add bounded retries (with
// decorrelated-jitter backoff that consumes the request's deadline
// budget), circuit breakers, and fallback adapters for graceful
// degradation. Resources without a policy keep exact fire-once
// semantics.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "broker/broker_types.hpp"
#include "broker/invocation_policy.hpp"
#include "common/status.hpp"
#include "obs/metrics.hpp"
#include "obs/request_context.hpp"
#include "runtime/event_bus.hpp"
#include "runtime/event_loop.hpp"

namespace mdsm::broker {

/// SPI implemented per simulated resource (or family of resources).
class ResourceAdapter {
 public:
  using EventSink = std::function<void(const std::string& topic,
                                       model::Value payload)>;

  explicit ResourceAdapter(std::string name) : name_(std::move(name)) {}
  virtual ~ResourceAdapter() = default;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Execute an atomic command against the resource.
  virtual Result<model::Value> execute(const std::string& command,
                                       const Args& args) = 0;

  /// Completion of an asynchronous execute_async(); must be invoked
  /// exactly once, from any thread.
  using Completion = std::function<void(Result<model::Value>)>;

  /// Asynchronous variant used by the staged pipeline (PR 6). The
  /// default wraps the synchronous execute() — existing adapters work
  /// unchanged, at the cost of occupying the calling worker for the
  /// duration. Adapters over genuinely asynchronous resources override
  /// this to return immediately and invoke `done` later (e.g. off an
  /// event-loop timer), which is what lets a slow resource suspend the
  /// request instead of a thread.
  virtual void execute_async(const std::string& command, const Args& args,
                             Completion done) {
    done(execute(command, args));
  }

  /// The manager installs a sink so the adapter can raise asynchronous
  /// resource events ("controller states", link failures, readings).
  void set_event_sink(EventSink sink) { sink_ = std::move(sink); }

 protected:
  void raise_event(const std::string& topic, model::Value payload = {}) {
    if (sink_) sink_(topic, std::move(payload));
  }

 private:
  std::string name_;
  EventSink sink_;
};

class ResourceManager {
 public:
  /// Resource events are republished on `bus` as "resource.<topic>";
  /// breaker trips/recoveries surface as "resource.breaker.open" /
  /// "resource.breaker.close" and degraded fallbacks as
  /// "resource.degraded", so autonomic symptoms can react to them.
  explicit ResourceManager(runtime::EventBus& bus) : bus_(&bus) {}

  Status add_adapter(std::unique_ptr<ResourceAdapter> adapter);
  /// Unregisters immediately; in-flight invoke()s finish on the pinned
  /// adapter (shared ownership), new ones get NotFound.
  Status remove_adapter(const std::string& name);
  /// Borrowed pointer; may dangle across a concurrent remove_adapter().
  /// Steady-state invocation goes through invoke(), which pins the
  /// adapter for the duration of the call; presence checks should use
  /// has_adapter(), which never exposes the pointer.
  [[nodiscard]] ResourceAdapter* find_adapter(std::string_view name);
  [[nodiscard]] bool has_adapter(std::string_view name) const;
  [[nodiscard]] std::vector<std::string> adapter_names() const;

  /// Install (or replace) the invocation policy for `resource`. May be
  /// called before the adapter itself is registered (the assembler loads
  /// specs first). A breaker-enabled policy gets a fresh, closed breaker.
  Status set_policy(const std::string& resource, InvocationPolicy policy);
  /// The resource's policy, or the fire-once default when none is set.
  [[nodiscard]] InvocationPolicy policy(const std::string& resource) const;
  /// Breaker state for diagnostics/tests; kClosed when no breaker is set.
  [[nodiscard]] CircuitBreaker::State breaker_state(
      const std::string& resource) const;

  /// Replaces the real sleep used for retry backoff (simulated-clock
  /// tests advance their SimClock here instead of wall-blocking).
  /// Configure at assembly time, before steady-state traffic.
  void set_sleep_hook(std::function<void(Duration)> hook) {
    sleep_hook_ = std::move(hook);
  }

  /// Issue a command to a named resource under its invocation policy;
  /// each physical attempt records a trace entry *before* execution so
  /// failed commands still appear (they were issued), matching how a
  /// wire trace would look. Exceptions escaping the adapter are caught
  /// here and degraded to an ExecutionError status (counted in
  /// "broker.adapter_exceptions") — an adapter can never unwind the
  /// layers above it. Retries consume `context`'s deadline budget: the
  /// loop never issues an attempt (or sleeps a backoff) past the
  /// request deadline. The context-free overload runs under the shared
  /// noop context (no deadline, no spans).
  Result<model::Value> invoke(const std::string& resource,
                              const std::string& command, const Args& args,
                              obs::RequestContext& context);
  Result<model::Value> invoke(const std::string& resource,
                              const std::string& command, const Args& args) {
    return invoke(resource, command, args, obs::RequestContext::noop());
  }

  using InvokeCallback = std::function<void(Result<model::Value>)>;

  /// Wire the event-driven engine (PR 6): retry backoff and
  /// attempt-timeout timers go to `loop`; continuations hop back onto
  /// pipeline workers through `resume` (the platform submits them to its
  /// broker stage). Both must outlive steady-state traffic; configure at
  /// assembly time. Unwired, invoke_async() degrades to the synchronous
  /// invoke() on the calling thread.
  void set_async_engine(runtime::EventLoop* loop,
                        std::function<void(std::function<void()>)> resume);

  /// Asynchronous invoke with the same policy semantics as invoke() —
  /// bounded retries, breaker, fallback, per-attempt deadline gates —
  /// but no thread ever sleeps: backoff parks the invocation on an
  /// event-loop timer, and an attempt that overruns
  /// policy.attempt_timeout is *disowned* by a timer (counted in
  /// "broker.attempt_overruns", recorded as a breaker failure, retried
  /// or degraded immediately) instead of cooperatively reclassified
  /// after the adapter finally returns; the disowned attempt's late
  /// completion is discarded ("broker.late_completions"). `context` must
  /// outlive the invocation — the staged request state owns it. `done`
  /// is invoked exactly once, on whatever thread settles the final
  /// attempt (a pipeline worker, the event loop, or the caller inline).
  void invoke_async(const std::string& resource, const std::string& command,
                    const Args& args, obs::RequestContext& context,
                    InvokeCallback done);

  [[nodiscard]] const CommandTrace& trace() const noexcept { return trace_; }
  /// Reset the command trace (benchmarks between phases). The previous
  /// mutable trace() accessor is gone: concurrent invoke()s append under
  /// the trace's own lock, and handing out a mutable reference invited
  /// unsynchronized mutation around it.
  void clear_trace() { trace_.clear(); }

  /// Platform-wide metrics sink: every attempted resource command bumps
  /// "broker.commands"; contained adapter exceptions bump
  /// "broker.adapter_exceptions"; the fault-tolerance loop records
  /// "broker.retries" (attempts after the first), "broker.retry_exhausted"
  /// (policy-managed invokes that gave up — attempts or deadline budget
  /// spent), "broker.breaker_open" (fast-fail rejections while open),
  /// "broker.breaker_transitions" (state-machine edges) and
  /// "broker.fallbacks" (degraded invocations attempted).
  void set_metrics(obs::MetricsRegistry* metrics) noexcept;

 private:
  /// Per-resource fault-tolerance state; immutable policy after set,
  /// breaker internally synchronized, chain counter seeds backoff jitter.
  struct PolicyState {
    InvocationPolicy policy;
    std::shared_ptr<CircuitBreaker> breaker;
    std::atomic<std::uint64_t> chains{0};
  };

  /// One physical attempt: trace record, metrics, exception containment.
  Result<model::Value> invoke_attempt(ResourceAdapter& adapter,
                                      const std::string& resource,
                                      const std::string& command,
                                      const Args& args);
  /// Shared state of one logical invoke_async() (all attempts + fallback).
  struct AsyncInvocation;
  /// Issue attempt `call->attempt + 1`, gated by breaker and deadline.
  void start_attempt_async(std::shared_ptr<AsyncInvocation> call);
  /// Settle one attempt (exactly once: adapter completion or the overrun
  /// timer, whichever wins the per-attempt flag): breaker accounting,
  /// span close, then resolve / retry / degrade.
  void attempt_settled(const std::shared_ptr<AsyncInvocation>& call,
                       CircuitBreaker::Admission admission,
                       std::uint64_t span, Result<model::Value> outcome);
  /// Async twin of invoke_attempt: trace record, metrics, containment.
  void execute_attempt_async(ResourceAdapter& adapter,
                             const std::string& resource,
                             const std::string& command, const Args& args,
                             ResourceAdapter::Completion done);
  /// Async twin of invoke_fallback (fire-once on the fallback adapter).
  void invoke_fallback_async(const std::shared_ptr<AsyncInvocation>& call,
                             Status primary_status);
  /// Hand a continuation to a pipeline worker (resume_ hook, or the
  /// loop, or inline as a last resort).
  void resume_on_worker(std::function<void()> fn);
  Result<model::Value> invoke_with_policy(
      std::shared_ptr<ResourceAdapter> adapter,
      const std::shared_ptr<PolicyState>& state, const std::string& resource,
      const std::string& command, const Args& args,
      obs::RequestContext& context);
  /// Degraded path: fire-once on the fallback adapter; a success is
  /// tagged ["degraded", value] when the policy asks for it, a failure
  /// surfaces `primary_status` (the more informative fault).
  Result<model::Value> invoke_fallback(const InvocationPolicy& policy,
                                       const std::string& resource,
                                       const std::string& command,
                                       const Args& args,
                                       obs::RequestContext& context,
                                       Status primary_status);
  void publish_transition(const std::string& resource,
                          CircuitBreaker::Transition transition);
  void count(obs::Counter* counter) {
    if (counter != nullptr) counter->add();
  }

  runtime::EventBus* bus_;
  obs::Counter* commands_counter_ = nullptr;
  obs::Counter* exceptions_counter_ = nullptr;
  obs::Counter* retries_counter_ = nullptr;
  obs::Counter* exhausted_counter_ = nullptr;
  obs::Counter* breaker_open_counter_ = nullptr;
  obs::Counter* breaker_transitions_counter_ = nullptr;
  obs::Counter* fallbacks_counter_ = nullptr;
  obs::Counter* overruns_counter_ = nullptr;
  obs::Counter* late_completions_counter_ = nullptr;
  std::function<void(Duration)> sleep_hook_;  ///< null = real sleep
  runtime::EventLoop* loop_ = nullptr;        ///< timers for async invokes
  std::function<void(std::function<void()>)> resume_;  ///< worker hand-off
  /// Reader/writer lock over the adapter and policy maps only — never
  /// held across adapter execution (an adapter event can re-enter
  /// invoke() on the same thread via the bus and the autonomic manager,
  /// so holding the lock through execute() would self-deadlock).
  /// invoke() copies the shared_ptrs under the shared side and executes
  /// unlocked; concurrent commands to the same adapter overlap (adapters
  /// synchronize internally as needed).
  mutable std::shared_mutex mutex_;
  std::map<std::string, std::shared_ptr<ResourceAdapter>, std::less<>>
      adapters_;
  std::map<std::string, std::shared_ptr<PolicyState>, std::less<>> policies_;
  CommandTrace trace_;
};

}  // namespace mdsm::broker
