// Resource Manager: "to interface with the underlying resources"
// (paper §V-A). Domains plug in ResourceAdapters over their simulated
// resources (communication services, microgrid controllers, smart
// objects, sensing devices); the manager routes commands, records the
// command trace, and forwards resource events onto the layer's bus.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "broker/broker_types.hpp"
#include "common/status.hpp"
#include "obs/metrics.hpp"
#include "runtime/event_bus.hpp"

namespace mdsm::broker {

/// SPI implemented per simulated resource (or family of resources).
class ResourceAdapter {
 public:
  using EventSink = std::function<void(const std::string& topic,
                                       model::Value payload)>;

  explicit ResourceAdapter(std::string name) : name_(std::move(name)) {}
  virtual ~ResourceAdapter() = default;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Execute an atomic command against the resource.
  virtual Result<model::Value> execute(const std::string& command,
                                       const Args& args) = 0;

  /// The manager installs a sink so the adapter can raise asynchronous
  /// resource events ("controller states", link failures, readings).
  void set_event_sink(EventSink sink) { sink_ = std::move(sink); }

 protected:
  void raise_event(const std::string& topic, model::Value payload = {}) {
    if (sink_) sink_(topic, std::move(payload));
  }

 private:
  std::string name_;
  EventSink sink_;
};

class ResourceManager {
 public:
  /// Resource events are republished on `bus` as "resource.<topic>".
  explicit ResourceManager(runtime::EventBus& bus) : bus_(&bus) {}

  Status add_adapter(std::unique_ptr<ResourceAdapter> adapter);
  /// Unregisters immediately; in-flight invoke()s finish on the pinned
  /// adapter (shared ownership), new ones get NotFound.
  Status remove_adapter(const std::string& name);
  /// Borrowed pointer; may dangle across a concurrent remove_adapter().
  /// Steady-state invocation goes through invoke(), which pins the
  /// adapter for the duration of the call.
  [[nodiscard]] ResourceAdapter* find_adapter(std::string_view name);
  [[nodiscard]] std::vector<std::string> adapter_names() const;

  /// Issue a command to a named resource; records the trace entry
  /// *before* execution so failed commands still appear (they were
  /// issued), matching how a wire trace would look. Exceptions escaping
  /// the adapter are caught here and degraded to an ExecutionError
  /// status (counted in "broker.adapter_exceptions") — an adapter can
  /// never unwind the layers above it.
  Result<model::Value> invoke(const std::string& resource,
                              const std::string& command, const Args& args);

  [[nodiscard]] const CommandTrace& trace() const noexcept { return trace_; }
  [[nodiscard]] CommandTrace& trace() noexcept { return trace_; }

  /// Platform-wide metrics sink: every invoked resource command bumps
  /// "broker.commands"; every contained adapter exception bumps
  /// "broker.adapter_exceptions" (optional; wired via the broker layer).
  void set_metrics(obs::MetricsRegistry* metrics) noexcept {
    commands_counter_ =
        metrics == nullptr ? nullptr : &metrics->counter("broker.commands");
    exceptions_counter_ =
        metrics == nullptr
            ? nullptr
            : &metrics->counter("broker.adapter_exceptions");
  }

 private:
  runtime::EventBus* bus_;
  obs::Counter* commands_counter_ = nullptr;
  obs::Counter* exceptions_counter_ = nullptr;
  /// Reader/writer lock over the adapter map only — never held across
  /// adapter execution (an adapter event can re-enter invoke() on the
  /// same thread via the bus and the autonomic manager, so holding the
  /// lock through execute() would self-deadlock). invoke() copies the
  /// shared_ptr under the shared side and executes unlocked; concurrent
  /// commands to the same adapter overlap (adapters synchronize
  /// internally as needed).
  mutable std::shared_mutex mutex_;
  std::map<std::string, std::shared_ptr<ResourceAdapter>, std::less<>>
      adapters_;
  CommandTrace trace_;
};

}  // namespace mdsm::broker
