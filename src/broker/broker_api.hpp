// The interface the Broker layer exposes upward: "The APIs allow the
// Controller layer to execute the various domain-specific operations"
// (paper §V-B). Abstract so the Controller can also be tested against a
// recording stub, and so the handcrafted baseline broker (Exp-2) and the
// model-based broker are interchangeable behind the same port.
#pragma once

#include <functional>

#include "broker/broker_types.hpp"
#include "obs/request_context.hpp"

namespace mdsm::broker {

class BrokerApi {
 public:
  virtual ~BrokerApi() = default;

  /// Execute one broker operation on behalf of the layer above. The
  /// request context carries the caller's span tree; implementations
  /// open one "broker.call" span per crossing.
  virtual Result<model::Value> call(const Call& call,
                                    obs::RequestContext& context) = 0;

  /// Context-less convenience for callers outside a traced request.
  Result<model::Value> call(const Call& broker_call) {
    return call(broker_call, obs::RequestContext::noop());
  }

  /// Completion of call_async(); invoked exactly once, possibly inline
  /// on the calling thread (fast path) or later from another thread.
  using CallCallback = std::function<void(Result<model::Value>)>;

  /// Asynchronous variant used by the staged execution core (PR 6).
  /// The default wraps the synchronous call() and completes inline, so
  /// stub and handcrafted brokers participate in the staged pipeline
  /// unchanged; the model-based BrokerLayer overrides it to suspend the
  /// request across slow resource invocations instead of holding the
  /// worker. `context` must outlive the invocation.
  virtual void call_async(const Call& broker_call,
                          obs::RequestContext& context, CallCallback done) {
    done(call(broker_call, context));
  }

  /// The trace of resource commands issued so far (Exp-1 compares these).
  [[nodiscard]] virtual const CommandTrace& trace() const = 0;
};

}  // namespace mdsm::broker
