// The Broker layer: Main Manager facade plus the specialized managers of
// the paper's Fig. 6 metamodel (state, policy, autonomic, resource
// management), with Action/Handler-based dispatch of calls and events.
//
// Instances are normally produced by the platform assembler (src/core)
// from a middleware model; the programmatic API below is what the
// assembler targets and what tests drive directly.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "broker/action.hpp"
#include "broker/autonomic_manager.hpp"
#include "broker/broker_api.hpp"
#include "broker/resource_manager.hpp"
#include "broker/state_manager.hpp"
#include "policy/policy_engine.hpp"
#include "runtime/component.hpp"
#include "runtime/event_bus.hpp"

namespace mdsm::broker {

class BrokerLayer final : public runtime::Component, public BrokerApi {
 public:
  /// The bus and context are owned by the enclosing platform; a broker
  /// layer participates in them rather than owning them (so controller,
  /// broker and autonomic behavior observe one coherent context).
  BrokerLayer(std::string name, runtime::EventBus& bus,
              policy::ContextStore& context);

  // -- configuration (performed by the assembler or by domain DSK code)

  Status register_action(Action action);
  /// Bind a signal name to candidate actions; call repeatedly to extend.
  Status bind_handler(const std::string& signal,
                      std::vector<std::string> action_names);

  [[nodiscard]] ResourceManager& resources() noexcept { return resources_; }
  /// Convenience forwarder to ResourceManager::set_policy (the broker API
  /// surface the assembler and domain DSKs configure fault tolerance by).
  Status set_invocation_policy(const std::string& resource,
                               InvocationPolicy policy) {
    return resources_.set_policy(resource, std::move(policy));
  }
  [[nodiscard]] StateManager& state() noexcept { return state_; }
  [[nodiscard]] policy::PolicySet& policies() noexcept { return policies_; }
  [[nodiscard]] AutonomicManager& autonomic() noexcept { return *autonomic_; }
  [[nodiscard]] policy::ContextStore& context() noexcept { return *context_; }
  [[nodiscard]] runtime::EventBus& bus() noexcept { return *bus_; }

  [[nodiscard]] std::size_t action_count() const {
    std::shared_lock lock(config_mutex_);
    return actions_.size();
  }

  /// Platform-wide metrics sink; also forwarded to the resource and
  /// autonomic managers (optional; wired by the assembler).
  void set_metrics(obs::MetricsRegistry* metrics) noexcept;

  // -- BrokerApi (the upward-facing interface)

  using BrokerApi::call;

  /// Select (via the signal's handler + guards + priority) and execute an
  /// action for the call. Returns the action's result value (none if the
  /// action set none). Opens one "broker.call" span per crossing.
  Result<model::Value> call(const Call& call,
                            obs::RequestContext& context) override;

  /// Staged-core variant of call(): the action's steps run as a resumable
  /// state machine, so a kInvoke that parks in ResourceManager (retry
  /// backoff, attempt overrun) suspends this call instead of a thread;
  /// the surviving steps resume on whatever thread settles the resource
  /// invocation. `context` must outlive the call; `done` fires exactly
  /// once (inline when every step completes synchronously).
  void call_async(const Call& broker_call, obs::RequestContext& context,
                  CallCallback done) override;

  [[nodiscard]] const CommandTrace& trace() const override {
    return resources_.trace();
  }

  /// Event entry point: events are signals too (paper §VI treats calls
  /// and events uniformly); dispatches the bound handler if any.
  Status handle_event(const std::string& topic, model::Value payload,
                      obs::RequestContext& context);
  Status handle_event(const std::string& topic, model::Value payload = {}) {
    return handle_event(topic, std::move(payload),
                        obs::RequestContext::noop());
  }

  /// Execute a step sequence against this layer (shared by actions and
  /// autonomic change plans).
  Result<model::Value> execute_steps(const std::vector<ActionStep>& steps,
                                     const Args& call_args,
                                     obs::RequestContext& context);
  Result<model::Value> execute_steps(const std::vector<ActionStep>& steps,
                                     const Args& call_args) {
    return execute_steps(steps, call_args, obs::RequestContext::noop());
  }

  /// Resumable twin of execute_steps(). `steps` must outlive the run
  /// (action step lists are never removed once registered); `call_args`
  /// is copied into the run state. Synchronous steps (guards, state,
  /// context, emit, result) execute inline; only kInvoke can park.
  void execute_steps_async(const std::vector<ActionStep>& steps,
                           Args call_args, obs::RequestContext& context,
                           CallCallback done);

  // -- statistics

  [[nodiscard]] std::uint64_t calls_handled() const noexcept {
    return calls_handled_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t events_handled() const noexcept {
    return events_handled_.load(std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] Result<const Action*> select_action(
      const std::string& signal) const;

  /// Shared state of one execute_steps_async() run (step cursor, copied
  /// args, accumulated result, the pending invoke outcome in flight).
  struct StepRun;
  /// Drive steps from the run's cursor until done or a kInvoke parks.
  void drive_steps(std::shared_ptr<StepRun> run);
  /// Consume run->pending after a kInvoke settles; false means the run
  /// failed and `done` has already been invoked.
  bool consume_pending(StepRun& run);

  runtime::EventBus* bus_;
  policy::ContextStore* context_;
  obs::MetricsRegistry* metrics_ = nullptr;
  StateManager state_;
  policy::PolicySet policies_;
  ResourceManager resources_;
  std::unique_ptr<AutonomicManager> autonomic_;
  /// Reader/writer lock over the action/handler maps: calls select under
  /// the shared side, registration takes the exclusive side. Action
  /// nodes are never removed, so selected pointers outlive the lock.
  mutable std::shared_mutex config_mutex_;
  std::map<std::string, Action, std::less<>> actions_;
  std::map<std::string, Handler, std::less<>> handlers_;
  std::atomic<std::uint64_t> calls_handled_{0};
  std::atomic<std::uint64_t> events_handled_{0};
};

}  // namespace mdsm::broker
