// Context store: the named "context variables" that guide action
// selection, command classification and policy evaluation (paper §V-A:
// "the choice of action ... is based on policies and context variables
// defined in the middleware model").
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "model/value.hpp"

namespace mdsm::policy {

class ContextStore {
 public:
  /// Set (or overwrite) a variable. Bumps the store version.
  void set(const std::string& name, model::Value value);

  /// Value of `name`, or none if unset.
  [[nodiscard]] model::Value get(std::string_view name) const;

  [[nodiscard]] bool has(std::string_view name) const;

  void erase(const std::string& name);

  /// Monotone counter incremented on every mutation — lets caches (e.g.
  /// the controller's IM cache) detect context drift cheaply.
  [[nodiscard]] std::uint64_t version() const noexcept;

  /// Sorted names, for diagnostics.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Point-in-time copy of all variables.
  [[nodiscard]] std::map<std::string, model::Value> snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, model::Value, std::less<>> variables_;
  std::uint64_t version_ = 0;
};

}  // namespace mdsm::policy
