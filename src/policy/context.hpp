// Context store: the named "context variables" that guide action
// selection, command classification and policy evaluation (paper §V-A:
// "the choice of action ... is based on policies and context variables
// defined in the middleware model").
#pragma once

#include <atomic>
#include <map>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "model/value.hpp"

namespace mdsm::policy {

class ContextStore {
 public:
  /// Set (or overwrite) a variable. Bumps the store version.
  void set(const std::string& name, model::Value value);

  /// Value of `name`, or none if unset.
  [[nodiscard]] model::Value get(std::string_view name) const;

  [[nodiscard]] bool has(std::string_view name) const;

  void erase(const std::string& name);

  /// Monotone counter incremented on every mutation — lets caches (e.g.
  /// the controller's IM cache) detect context drift cheaply.
  [[nodiscard]] std::uint64_t version() const noexcept;

  /// Sorted names, for diagnostics.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Point-in-time copy of all variables.
  [[nodiscard]] std::map<std::string, model::Value> snapshot() const;

 private:
  // Reader/writer lock: policy evaluation (get/has) dominates and runs
  // concurrently on every request thread; mutation is rare. The version
  // is atomic so cache probes (every cached IM lookup reads it) skip the
  // lock entirely.
  mutable std::shared_mutex mutex_;
  std::map<std::string, model::Value, std::less<>> variables_;
  std::atomic<std::uint64_t> version_{0};
};

/// Read-only evaluation view: a ContextStore with transient per-request
/// bindings layered on top (checked first). Lets concurrent evaluations
/// see request-scoped variables — e.g. the controller's "command.name"
/// during classification — without mutating the shared store (which
/// would both race and spuriously invalidate version-stamped caches).
class ContextOverlay {
 public:
  explicit ContextOverlay(const ContextStore& base) : base_(&base) {}

  void bind(std::string name, model::Value value) {
    bindings_.emplace_back(std::move(name), std::move(value));
  }

  [[nodiscard]] model::Value get(std::string_view name) const {
    for (const auto& [key, value] : bindings_) {
      if (key == name) return value;
    }
    return base_->get(name);
  }

  [[nodiscard]] bool has(std::string_view name) const {
    for (const auto& [key, value] : bindings_) {
      if (key == name) return true;
    }
    return base_->has(name);
  }

 private:
  const ContextStore* base_;
  // Linear scan: overlays carry one or two bindings, never enough to
  // justify a map.
  std::vector<std::pair<std::string, model::Value>> bindings_;
};

}  // namespace mdsm::policy
