#include "policy/expression.hpp"

#include <cctype>
#include <charconv>
#include <vector>

namespace mdsm::policy {

namespace detail {

enum class Op {
  kLiteral,
  kIdent,
  kDefined,
  kOr,
  kAnd,
  kNot,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kNeg,
};

struct Node {
  Op op = Op::kLiteral;
  model::Value literal;
  std::string ident;
  std::shared_ptr<const Node> lhs;
  std::shared_ptr<const Node> rhs;
};

}  // namespace detail

namespace {

using detail::Node;
using detail::Op;
using model::Value;
using model::ValueKind;

// ----------------------------------------------------------------- lexer

enum class TokKind { kNumber, kString, kIdent, kOp, kEnd };

struct Tok {
  TokKind kind = TokKind::kEnd;
  std::string text;
};

Result<std::vector<Tok>> lex(std::string_view text) {
  std::vector<Tok> out;
  std::size_t i = 0;
  auto two = [&](char a, char b) {
    return i + 1 < text.size() && text[i] == a && text[i + 1] == b;
  };
  while (i < text.size()) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
    } else if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t start = i;
      while (i < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[i])) != 0 ||
              text[i] == '.')) {
        ++i;
      }
      out.push_back({TokKind::kNumber, std::string(text.substr(start, i - start))});
    } else if (c == '"') {
      ++i;
      std::string value;
      while (i < text.size() && text[i] != '"') {
        if (text[i] == '\\' && i + 1 < text.size()) {
          ++i;
        }
        value += text[i++];
      }
      if (i >= text.size()) return ParseError("unterminated string literal");
      ++i;
      out.push_back({TokKind::kString, std::move(value)});
    } else if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      std::size_t start = i;
      while (i < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[i])) != 0 ||
              text[i] == '_' || text[i] == '.')) {
        ++i;
      }
      out.push_back({TokKind::kIdent, std::string(text.substr(start, i - start))});
    } else if (two('&', '&') || two('|', '|') || two('=', '=') ||
               two('!', '=') || two('<', '=') || two('>', '=')) {
      out.push_back({TokKind::kOp, std::string(text.substr(i, 2))});
      i += 2;
    } else if (c == '!' || c == '<' || c == '>' || c == '+' || c == '-' ||
               c == '*' || c == '/' || c == '(' || c == ')') {
      out.push_back({TokKind::kOp, std::string(1, c)});
      ++i;
    } else {
      return ParseError(std::string("unexpected character '") + c +
                        "' in expression");
    }
  }
  out.push_back({TokKind::kEnd, ""});
  return out;
}

// ---------------------------------------------------------------- parser

class ExprParser {
 public:
  explicit ExprParser(std::vector<Tok> toks) : toks_(std::move(toks)) {}

  Result<std::shared_ptr<const Node>> run() {
    auto expr = parse_or();
    if (!expr.ok()) return expr;
    if (peek().kind != TokKind::kEnd) {
      return ParseError("trailing input in expression: '" + peek().text + "'");
    }
    return expr;
  }

 private:
  const Tok& peek() const { return toks_[i_]; }
  Tok take() { return toks_[i_++]; }
  bool eat_op(std::string_view op) {
    if (peek().kind == TokKind::kOp && peek().text == op) {
      ++i_;
      return true;
    }
    return false;
  }

  static std::shared_ptr<const Node> make(Op op,
                                          std::shared_ptr<const Node> lhs,
                                          std::shared_ptr<const Node> rhs) {
    auto node = std::make_shared<Node>();
    node->op = op;
    node->lhs = std::move(lhs);
    node->rhs = std::move(rhs);
    return node;
  }

  Result<std::shared_ptr<const Node>> parse_or() {
    auto lhs = parse_and();
    if (!lhs.ok()) return lhs;
    auto node = std::move(lhs.value());
    while (eat_op("||")) {
      auto rhs = parse_and();
      if (!rhs.ok()) return rhs;
      node = make(Op::kOr, std::move(node), std::move(rhs.value()));
    }
    return node;
  }

  Result<std::shared_ptr<const Node>> parse_and() {
    auto lhs = parse_cmp();
    if (!lhs.ok()) return lhs;
    auto node = std::move(lhs.value());
    while (eat_op("&&")) {
      auto rhs = parse_cmp();
      if (!rhs.ok()) return rhs;
      node = make(Op::kAnd, std::move(node), std::move(rhs.value()));
    }
    return node;
  }

  Result<std::shared_ptr<const Node>> parse_cmp() {
    auto lhs = parse_add();
    if (!lhs.ok()) return lhs;
    auto node = std::move(lhs.value());
    struct {
      const char* text;
      Op op;
    } const ops[] = {{"==", Op::kEq}, {"!=", Op::kNe}, {"<=", Op::kLe},
                     {">=", Op::kGe}, {"<", Op::kLt},  {">", Op::kGt}};
    for (const auto& candidate : ops) {
      if (eat_op(candidate.text)) {
        auto rhs = parse_add();
        if (!rhs.ok()) return rhs;
        return make(candidate.op, std::move(node), std::move(rhs.value()));
      }
    }
    return node;
  }

  Result<std::shared_ptr<const Node>> parse_add() {
    auto lhs = parse_mul();
    if (!lhs.ok()) return lhs;
    auto node = std::move(lhs.value());
    while (true) {
      if (eat_op("+")) {
        auto rhs = parse_mul();
        if (!rhs.ok()) return rhs;
        node = make(Op::kAdd, std::move(node), std::move(rhs.value()));
      } else if (eat_op("-")) {
        auto rhs = parse_mul();
        if (!rhs.ok()) return rhs;
        node = make(Op::kSub, std::move(node), std::move(rhs.value()));
      } else {
        return node;
      }
    }
  }

  Result<std::shared_ptr<const Node>> parse_mul() {
    auto lhs = parse_unary();
    if (!lhs.ok()) return lhs;
    auto node = std::move(lhs.value());
    while (true) {
      if (eat_op("*")) {
        auto rhs = parse_unary();
        if (!rhs.ok()) return rhs;
        node = make(Op::kMul, std::move(node), std::move(rhs.value()));
      } else if (eat_op("/")) {
        auto rhs = parse_unary();
        if (!rhs.ok()) return rhs;
        node = make(Op::kDiv, std::move(node), std::move(rhs.value()));
      } else {
        return node;
      }
    }
  }

  Result<std::shared_ptr<const Node>> parse_unary() {
    if (eat_op("!")) {
      auto operand = parse_unary();
      if (!operand.ok()) return operand;
      return make(Op::kNot, std::move(operand.value()), nullptr);
    }
    if (eat_op("-")) {
      auto operand = parse_unary();
      if (!operand.ok()) return operand;
      return make(Op::kNeg, std::move(operand.value()), nullptr);
    }
    return parse_primary();
  }

  Result<std::shared_ptr<const Node>> parse_primary() {
    const Tok& tok = peek();
    switch (tok.kind) {
      case TokKind::kNumber: {
        std::string text = take().text;
        auto node = std::make_shared<Node>();
        node->op = Op::kLiteral;
        if (text.find('.') != std::string::npos) {
          node->literal = Value(std::stod(text));
        } else {
          std::int64_t value = 0;
          auto [ptr, ec] =
              std::from_chars(text.data(), text.data() + text.size(), value);
          if (ec != std::errc{}) {
            return ParseError("bad number '" + text + "'");
          }
          node->literal = Value(value);
        }
        return std::shared_ptr<const Node>(node);
      }
      case TokKind::kString: {
        auto node = std::make_shared<Node>();
        node->op = Op::kLiteral;
        node->literal = Value(take().text);
        return std::shared_ptr<const Node>(node);
      }
      case TokKind::kIdent: {
        std::string name = take().text;
        auto node = std::make_shared<Node>();
        if (name == "true" || name == "false") {
          node->op = Op::kLiteral;
          node->literal = Value(name == "true");
          return std::shared_ptr<const Node>(node);
        }
        if (name == "defined") {
          if (!eat_op("(")) return ParseError("defined requires '(name)'");
          if (peek().kind != TokKind::kIdent) {
            return ParseError("defined requires an identifier argument");
          }
          node->op = Op::kDefined;
          node->ident = take().text;
          if (!eat_op(")")) return ParseError("missing ')' after defined");
          return std::shared_ptr<const Node>(node);
        }
        node->op = Op::kIdent;
        node->ident = std::move(name);
        return std::shared_ptr<const Node>(node);
      }
      case TokKind::kOp:
        if (tok.text == "(") {
          take();
          auto inner = parse_or();
          if (!inner.ok()) return inner;
          if (!eat_op(")")) return ParseError("missing ')'");
          return inner;
        }
        [[fallthrough]];
      default:
        return ParseError("expected value, got '" + tok.text + "'");
    }
  }

  std::vector<Tok> toks_;
  std::size_t i_ = 0;
};

// ------------------------------------------------------------- evaluator
//
// Templated over the context type: any type with get(name)/has(name)
// (ContextStore, ContextOverlay) evaluates through the same tree walk.

template <typename Ctx>
Result<Value> eval(const Node& node, const Ctx& context);

template <typename Ctx>
Result<bool> eval_bool(const Node& node, const Ctx& context) {
  Result<Value> value = eval(node, context);
  if (!value.ok()) return value.status();
  if (value->is_bool()) return value->as_bool();
  if (value->is_none()) return false;  // undefined guard → false
  return InvalidArgument("expression expects a boolean, got " +
                         std::string(to_string(value->kind())));
}

Result<Value> eval_compare(Op op, const Value& lhs, const Value& rhs) {
  // Mixed-number comparisons widen to double; otherwise kinds must match.
  if (lhs.is_number() && rhs.is_number()) {
    double a = lhs.as_number();
    double b = rhs.as_number();
    switch (op) {
      case Op::kEq: return Value(a == b);
      case Op::kNe: return Value(a != b);
      case Op::kLt: return Value(a < b);
      case Op::kLe: return Value(a <= b);
      case Op::kGt: return Value(a > b);
      case Op::kGe: return Value(a >= b);
      default: break;
    }
  }
  if (op == Op::kEq) return Value(lhs == rhs);
  if (op == Op::kNe) return Value(!(lhs == rhs));
  if (lhs.is_string() && rhs.is_string()) {
    int cmp = lhs.as_string().compare(rhs.as_string());
    switch (op) {
      case Op::kLt: return Value(cmp < 0);
      case Op::kLe: return Value(cmp <= 0);
      case Op::kGt: return Value(cmp > 0);
      case Op::kGe: return Value(cmp >= 0);
      default: break;
    }
  }
  // Ordering against none (undefined context var) is simply false.
  if (lhs.is_none() || rhs.is_none()) return Value(false);
  return InvalidArgument("cannot order " + std::string(to_string(lhs.kind())) +
                         " against " + std::string(to_string(rhs.kind())));
}

Result<Value> eval_arith(Op op, const Value& lhs, const Value& rhs) {
  if (op == Op::kAdd && lhs.is_string() && rhs.is_string()) {
    return Value(lhs.as_string() + rhs.as_string());
  }
  if (!lhs.is_number() || !rhs.is_number()) {
    return InvalidArgument("arithmetic requires numbers");
  }
  if (lhs.is_int() && rhs.is_int()) {
    std::int64_t a = lhs.as_int();
    std::int64_t b = rhs.as_int();
    switch (op) {
      case Op::kAdd: return Value(a + b);
      case Op::kSub: return Value(a - b);
      case Op::kMul: return Value(a * b);
      case Op::kDiv:
        if (b == 0) return InvalidArgument("division by zero");
        return Value(a / b);
      default: break;
    }
  }
  double a = lhs.as_number();
  double b = rhs.as_number();
  switch (op) {
    case Op::kAdd: return Value(a + b);
    case Op::kSub: return Value(a - b);
    case Op::kMul: return Value(a * b);
    case Op::kDiv:
      if (b == 0.0) return InvalidArgument("division by zero");
      return Value(a / b);
    default: break;
  }
  return Internal("bad arithmetic op");
}

template <typename Ctx>
Result<Value> eval(const Node& node, const Ctx& context) {
  switch (node.op) {
    case Op::kLiteral: return node.literal;
    case Op::kIdent: return context.get(node.ident);
    case Op::kDefined: return Value(context.has(node.ident));
    case Op::kOr: {
      Result<bool> lhs = eval_bool(*node.lhs, context);
      if (!lhs.ok()) return lhs.status();
      if (*lhs) return Value(true);  // short-circuit
      Result<bool> rhs = eval_bool(*node.rhs, context);
      if (!rhs.ok()) return rhs.status();
      return Value(*rhs);
    }
    case Op::kAnd: {
      Result<bool> lhs = eval_bool(*node.lhs, context);
      if (!lhs.ok()) return lhs.status();
      if (!*lhs) return Value(false);  // short-circuit
      Result<bool> rhs = eval_bool(*node.rhs, context);
      if (!rhs.ok()) return rhs.status();
      return Value(*rhs);
    }
    case Op::kNot: {
      Result<bool> operand = eval_bool(*node.lhs, context);
      if (!operand.ok()) return operand.status();
      return Value(!*operand);
    }
    case Op::kNeg: {
      Result<Value> operand = eval(*node.lhs, context);
      if (!operand.ok()) return operand;
      if (operand->is_int()) return Value(-operand->as_int());
      if (operand->is_real()) return Value(-operand->as_real());
      return InvalidArgument("negation requires a number");
    }
    case Op::kEq:
    case Op::kNe:
    case Op::kLt:
    case Op::kLe:
    case Op::kGt:
    case Op::kGe: {
      Result<Value> lhs = eval(*node.lhs, context);
      if (!lhs.ok()) return lhs;
      Result<Value> rhs = eval(*node.rhs, context);
      if (!rhs.ok()) return rhs;
      return eval_compare(node.op, *lhs, *rhs);
    }
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv: {
      Result<Value> lhs = eval(*node.lhs, context);
      if (!lhs.ok()) return lhs;
      Result<Value> rhs = eval(*node.rhs, context);
      if (!rhs.ok()) return rhs;
      return eval_arith(node.op, *lhs, *rhs);
    }
  }
  return Internal("bad expression node");
}

}  // namespace

Result<Expression> Expression::parse(std::string_view text) {
  std::string_view trimmed = text;
  while (!trimmed.empty() &&
         std::isspace(static_cast<unsigned char>(trimmed.front())) != 0) {
    trimmed.remove_prefix(1);
  }
  if (trimmed.empty()) return Expression{};  // empty → constant true
  Result<std::vector<Tok>> toks = lex(text);
  if (!toks.ok()) return toks.status();
  ExprParser parser(std::move(toks.value()));
  Result<std::shared_ptr<const Node>> root = parser.run();
  if (!root.ok()) return root.status();
  Expression expression;
  expression.text_ = std::string(text);
  expression.root_ = std::move(root.value());
  return expression;
}

Result<model::Value> Expression::evaluate(const ContextStore& context) const {
  if (root_ == nullptr) return model::Value(true);
  return eval(*root_, context);
}

Result<model::Value> Expression::evaluate(const ContextOverlay& context) const {
  if (root_ == nullptr) return model::Value(true);
  return eval(*root_, context);
}

Result<bool> Expression::evaluate_bool(const ContextStore& context) const {
  if (root_ == nullptr) return true;
  return eval_bool(*root_, context);
}

Result<bool> Expression::evaluate_bool(const ContextOverlay& context) const {
  if (root_ == nullptr) return true;
  return eval_bool(*root_, context);
}

}  // namespace mdsm::policy
