// Policy expression language.
//
// Guard conditions in middleware models ("which action applies", "when is
// autonomic behavior triggered", "is this command Case 1 or Case 2") are
// written as small boolean expressions over context variables:
//
//   bandwidth >= 1.5 && mode == "eco" || !defined(override)
//
// Grammar (precedence low→high):  or:  a || b
//                                 and: a && b
//                                 not: !a
//                                 cmp: == != < <= > >=
//                                 add: + -        mul: * /
//                                 primary: literal | ident | defined(ident)
//                                          | ( expr )
//
// Identifiers (dotted names allowed) are looked up in the ContextStore at
// evaluation time; an undefined identifier evaluates to none, which makes
// comparisons false rather than erroring (models guard against absence
// with defined()).
#pragma once

#include <memory>
#include <string>

#include "common/status.hpp"
#include "model/value.hpp"
#include "policy/context.hpp"

namespace mdsm::policy {

namespace detail {
struct Node;
}

/// A parsed, reusable expression. Compile once, evaluate per command.
class Expression {
 public:
  Expression() = default;  ///< empty expression; evaluates to true

  /// Evaluate to an arbitrary Value. The ContextOverlay overloads look
  /// identifiers up in the overlay's transient bindings first, then in
  /// the underlying store — the concurrency-safe replacement for
  /// temporarily set()ing a request-scoped variable.
  [[nodiscard]] Result<model::Value> evaluate(
      const ContextStore& context) const;
  [[nodiscard]] Result<model::Value> evaluate(
      const ContextOverlay& context) const;

  /// Evaluate and require a boolean result (none → false; anything else
  /// non-bool is an error — guards must be explicit).
  [[nodiscard]] Result<bool> evaluate_bool(const ContextStore& context) const;
  [[nodiscard]] Result<bool> evaluate_bool(const ContextOverlay& context) const;

  [[nodiscard]] const std::string& text() const noexcept { return text_; }
  [[nodiscard]] bool empty() const noexcept { return root_ == nullptr; }

  static Result<Expression> parse(std::string_view text);

 private:
  std::string text_;
  std::shared_ptr<const detail::Node> root_;  ///< shared: expressions copy cheaply
};

}  // namespace mdsm::policy
