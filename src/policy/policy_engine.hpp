// Policies: named, prioritized guard→decision rules evaluated against the
// context store. The broker's PolicyManager, the controller's command
// classifier and the IM selector all run on this engine.
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "policy/expression.hpp"

namespace mdsm::policy {

struct Policy {
  std::string name;
  Expression condition;    ///< empty condition ⇒ always applies
  int priority = 0;        ///< higher wins
  std::string decision;    ///< opaque verdict the caller interprets
  std::map<std::string, model::Value> parameters;  ///< extra knobs
};

/// Result of evaluating a PolicySet: which policy fired.
struct PolicyDecision {
  std::string policy_name;
  std::string decision;
  std::map<std::string, model::Value> parameters;
};

class PolicySet {
 public:
  /// Add a policy; `condition_text` is compiled here. Names are unique.
  Status add(const std::string& name, std::string_view condition_text,
             std::string decision, int priority = 0,
             std::map<std::string, model::Value> parameters = {});

  Status remove(const std::string& name);

  /// Highest-priority policy whose condition holds (ties: insertion
  /// order). nullopt when none matches. Condition evaluation errors
  /// count as non-matching but are surfaced via last_error(). Safe to
  /// call concurrently (evaluation is read-only over the policies;
  /// add()/remove() are configuration-time).
  [[nodiscard]] std::optional<PolicyDecision> evaluate(
      const ContextStore& context) const;
  /// Overlay variant: conditions see the overlay's transient bindings
  /// first (per-request variables such as "command.name").
  [[nodiscard]] std::optional<PolicyDecision> evaluate(
      const ContextOverlay& context) const;

  /// Every matching policy, priority-descending.
  [[nodiscard]] std::vector<PolicyDecision> evaluate_all(
      const ContextStore& context) const;

  [[nodiscard]] std::size_t size() const noexcept { return policies_.size(); }
  [[nodiscard]] bool empty() const noexcept { return policies_.empty(); }
  /// Most recent condition-evaluation error (diagnostic; under
  /// concurrent evaluation this is a last-writer-wins snapshot).
  [[nodiscard]] Status last_error() const {
    std::lock_guard lock(error_mutex_);
    return last_error_;
  }

 private:
  template <typename Ctx>
  std::optional<PolicyDecision> evaluate_impl(const Ctx& context) const;

  std::vector<Policy> policies_;  ///< kept priority-descending, stable
  mutable std::mutex error_mutex_;  ///< guards last_error_ only
  mutable Status last_error_;
};

}  // namespace mdsm::policy
