#include "policy/policy_engine.hpp"

#include <algorithm>

namespace mdsm::policy {

Status PolicySet::add(const std::string& name, std::string_view condition_text,
                      std::string decision, int priority,
                      std::map<std::string, model::Value> parameters) {
  for (const Policy& policy : policies_) {
    if (policy.name == name) {
      return AlreadyExists("policy '" + name + "' already in set");
    }
  }
  Result<Expression> condition = Expression::parse(condition_text);
  if (!condition.ok()) {
    return ParseError("policy '" + name +
                      "' condition: " + condition.status().message());
  }
  Policy policy;
  policy.name = name;
  policy.condition = std::move(condition.value());
  policy.priority = priority;
  policy.decision = std::move(decision);
  policy.parameters = std::move(parameters);
  // Insert keeping priority-descending order, stable for equal priority.
  auto pos = std::find_if(policies_.begin(), policies_.end(),
                          [&](const Policy& existing) {
                            return existing.priority < policy.priority;
                          });
  policies_.insert(pos, std::move(policy));
  return Status::Ok();
}

Status PolicySet::remove(const std::string& name) {
  auto pos = std::find_if(
      policies_.begin(), policies_.end(),
      [&](const Policy& policy) { return policy.name == name; });
  if (pos == policies_.end()) {
    return NotFound("policy '" + name + "' not in set");
  }
  policies_.erase(pos);
  return Status::Ok();
}

template <typename Ctx>
std::optional<PolicyDecision> PolicySet::evaluate_impl(
    const Ctx& context) const {
  for (const Policy& policy : policies_) {
    Result<bool> holds = policy.condition.evaluate_bool(context);
    if (!holds.ok()) {
      std::lock_guard lock(error_mutex_);
      last_error_ = holds.status();
      continue;
    }
    if (*holds) {
      return PolicyDecision{policy.name, policy.decision, policy.parameters};
    }
  }
  return std::nullopt;
}

std::optional<PolicyDecision> PolicySet::evaluate(
    const ContextStore& context) const {
  return evaluate_impl(context);
}

std::optional<PolicyDecision> PolicySet::evaluate(
    const ContextOverlay& context) const {
  return evaluate_impl(context);
}

std::vector<PolicyDecision> PolicySet::evaluate_all(
    const ContextStore& context) const {
  std::vector<PolicyDecision> out;
  for (const Policy& policy : policies_) {
    Result<bool> holds = policy.condition.evaluate_bool(context);
    if (!holds.ok()) {
      std::lock_guard lock(error_mutex_);
      last_error_ = holds.status();
      continue;
    }
    if (*holds) {
      out.push_back({policy.name, policy.decision, policy.parameters});
    }
  }
  return out;
}

}  // namespace mdsm::policy
