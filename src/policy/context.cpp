#include "policy/context.hpp"

#include <mutex>

namespace mdsm::policy {

void ContextStore::set(const std::string& name, model::Value value) {
  std::unique_lock lock(mutex_);
  variables_[name] = std::move(value);
  version_.fetch_add(1, std::memory_order_release);
}

model::Value ContextStore::get(std::string_view name) const {
  std::shared_lock lock(mutex_);
  auto it = variables_.find(name);
  return it == variables_.end() ? model::Value{} : it->second;
}

bool ContextStore::has(std::string_view name) const {
  std::shared_lock lock(mutex_);
  return variables_.contains(name);
}

void ContextStore::erase(const std::string& name) {
  std::unique_lock lock(mutex_);
  if (variables_.erase(name) > 0) {
    version_.fetch_add(1, std::memory_order_release);
  }
}

std::uint64_t ContextStore::version() const noexcept {
  return version_.load(std::memory_order_acquire);
}

std::vector<std::string> ContextStore::names() const {
  std::shared_lock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(variables_.size());
  for (const auto& [name, value] : variables_) out.push_back(name);
  return out;
}

std::map<std::string, model::Value> ContextStore::snapshot() const {
  std::shared_lock lock(mutex_);
  return {variables_.begin(), variables_.end()};
}

}  // namespace mdsm::policy
