#include "policy/context.hpp"

namespace mdsm::policy {

void ContextStore::set(const std::string& name, model::Value value) {
  std::lock_guard lock(mutex_);
  variables_[name] = std::move(value);
  ++version_;
}

model::Value ContextStore::get(std::string_view name) const {
  std::lock_guard lock(mutex_);
  auto it = variables_.find(name);
  return it == variables_.end() ? model::Value{} : it->second;
}

bool ContextStore::has(std::string_view name) const {
  std::lock_guard lock(mutex_);
  return variables_.contains(name);
}

void ContextStore::erase(const std::string& name) {
  std::lock_guard lock(mutex_);
  if (variables_.erase(name) > 0) ++version_;
}

std::uint64_t ContextStore::version() const noexcept {
  std::lock_guard lock(mutex_);
  return version_;
}

std::vector<std::string> ContextStore::names() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> out;
  out.reserve(variables_.size());
  for (const auto& [name, value] : variables_) out.push_back(name);
  return out;
}

std::map<std::string, model::Value> ContextStore::snapshot() const {
  std::lock_guard lock(mutex_);
  return {variables_.begin(), variables_.end()};
}

}  // namespace mdsm::policy
