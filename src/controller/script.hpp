// Control scripts: the currency between the Synthesis layer (producer)
// and the Controller layer (consumer). A script is an ordered sequence of
// commands conveying "the intent of the user's model in a procedural
// way" (paper §VI).
#pragma once

#include <string>
#include <vector>

#include "broker/broker_types.hpp"

namespace mdsm::controller {

/// One procedural command, e.g. {name:"session.open", args:{id:"s1"}}.
struct Command {
  std::string name;
  broker::Args args;

  [[nodiscard]] std::string to_text() const {
    return broker::format_invocation(name, args);
  }
};

struct ControlScript {
  std::string id;  ///< trace id, usually derived from the model change set
  std::vector<Command> commands;

  [[nodiscard]] bool empty() const noexcept { return commands.empty(); }
};

}  // namespace mdsm::controller
