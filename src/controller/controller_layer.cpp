#include "controller/controller_layer.hpp"

#include "common/log.hpp"

namespace mdsm::controller {

ControllerLayer::ControllerLayer(std::string name, broker::BrokerApi& broker,
                                 runtime::EventBus& bus,
                                 policy::ContextStore& context,
                                 GeneratorConfig generator_config)
    : Component(std::move(name)),
      broker_(&broker),
      bus_(&bus),
      context_(&context),
      generator_(dscs_, repository_, context, generator_config),
      engine_(broker, bus, context) {}

Status ControllerLayer::add_procedure(Procedure procedure) {
  if (!dscs_.contains(procedure.classifier)) {
    return NotFound("procedure '" + procedure.name +
                    "' classified by unknown DSC '" + procedure.classifier +
                    "'");
  }
  for (const std::string& dependency : procedure.dependencies) {
    if (!dscs_.contains(dependency)) {
      return NotFound("procedure '" + procedure.name +
                      "' depends on unknown DSC '" + dependency + "'");
    }
  }
  return repository_.add(std::move(procedure));
}

Status ControllerLayer::register_action(ControllerAction action) {
  const std::string name = action.name;
  std::unique_lock lock(config_mutex_);
  auto [it, inserted] = actions_.emplace(name, std::move(action));
  if (!inserted) {
    return AlreadyExists("controller action '" + name +
                         "' already registered");
  }
  return Status::Ok();
}

Status ControllerLayer::bind_action(const std::string& command,
                                    std::vector<std::string> action_names) {
  std::unique_lock lock(config_mutex_);
  for (const std::string& action_name : action_names) {
    if (!actions_.contains(action_name)) {
      return NotFound("binding for '" + command + "' names unknown action '" +
                      action_name + "'");
    }
  }
  auto& bound = bindings_[command];
  for (std::string& action_name : action_names) {
    bound.push_back(std::move(action_name));
  }
  return Status::Ok();
}

Status ControllerLayer::map_command(const std::string& command,
                                    const std::string& dsc) {
  if (!dscs_.contains(dsc)) {
    return NotFound("command '" + command + "' mapped to unknown DSC '" +
                    dsc + "'");
  }
  std::unique_lock lock(config_mutex_);
  command_dsc_[command] = dsc;
  return Status::Ok();
}

void ControllerLayer::attach_event_topic(const std::string& topic) {
  subscriptions_.push_back(
      bus_->subscribe(topic, [this](const runtime::Event& event) {
        Signal signal;
        signal.kind = SignalKind::kEvent;
        signal.name = event.topic;
        signal.args["event.payload"] = event.payload;
        signal.args["event.source"] = model::Value(event.source);
        {
          std::lock_guard lock(queue_mutex_);
          queue_.push_back(std::move(signal));
        }
        stats_.signals_received.fetch_add(1, std::memory_order_relaxed);
      }));
}

Status ControllerLayer::submit_script(const ControlScript& script,
                                      obs::RequestContext& context) {
  MDSM_RETURN_IF_ERROR(context.check_deadline("controller"));
  for (const Command& command : script.commands) {
    Signal signal;
    signal.kind = SignalKind::kCall;
    signal.name = command.name;
    signal.args = command.args;
    {
      std::lock_guard lock(queue_mutex_);
      queue_.push_back(std::move(signal));
    }
    stats_.signals_received.fetch_add(1, std::memory_order_relaxed);
    if (metrics_ != nullptr) metrics_->counter("controller.signals").add();
  }
  return Status::Ok();
}

Status ControllerLayer::submit_command(Command command) {
  Signal signal;
  signal.kind = SignalKind::kCall;
  signal.name = std::move(command.name);
  signal.args = std::move(command.args);
  {
    std::lock_guard lock(queue_mutex_);
    queue_.push_back(std::move(signal));
  }
  stats_.signals_received.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status ControllerLayer::execute_script(const ControlScript& script,
                                       obs::RequestContext& context) {
  obs::ContextScope ambient(context);
  obs::ScopedSpan span(context, "controller.script",
                       std::to_string(script.commands.size()) + " commands");
  MDSM_RETURN_IF_ERROR(context.check_deadline("controller"));
  for (const Command& command : script.commands) {
    stats_.signals_received.fetch_add(1, std::memory_order_relaxed);
    if (metrics_ != nullptr) metrics_->counter("controller.signals").add();
    obs::ScopedSpan signal_span(context, "controller.signal", command.name);
    Result<model::Value> outcome = execute_command(command, context);
    if (!outcome.ok()) {
      stats_.errors.fetch_add(1, std::memory_order_relaxed);
      if (metrics_ != nullptr) metrics_->counter("controller.errors").add();
      bus_->publish("controller.error", name(),
                    model::Value(command.to_text() + ": " +
                                 outcome.status().to_string()));
    }
  }
  // Drain event signals the executions raised (kEmit → subscribed topic).
  process_pending(context);
  return Status::Ok();
}

std::size_t ControllerLayer::process_pending(obs::RequestContext& context) {
  obs::ContextScope ambient(context);
  std::size_t processed = 0;
  // Signals enqueued during processing (events raised by executions) are
  // drained too, up to a sanity bound. Pop one signal per lock hold:
  // executions themselves run unlocked, so concurrent drainers interleave
  // instead of serializing on the queue.
  constexpr std::size_t kMaxBatch = 100000;
  while (processed < kMaxBatch) {
    Signal signal;
    {
      std::lock_guard lock(queue_mutex_);
      if (queue_.empty()) break;
      signal = std::move(queue_.front());
      queue_.pop_front();
    }
    ++processed;
    obs::ScopedSpan span(context, "controller.signal", signal.name);
    if (signal.kind == SignalKind::kCall) {
      Command command{signal.name, std::move(signal.args)};
      Result<model::Value> outcome = execute_command(command, context);
      if (!outcome.ok()) {
        stats_.errors.fetch_add(1, std::memory_order_relaxed);
        if (metrics_ != nullptr) metrics_->counter("controller.errors").add();
        bus_->publish("controller.error", name(),
                      model::Value(command.to_text() + ": " +
                                   outcome.status().to_string()));
      }
    } else {
      stats_.events_handled.fetch_add(1, std::memory_order_relaxed);
      // Events are handled by Case-1 actions bound to the topic; an
      // unbound event is simply observed (layers subscribe selectively).
      bool bound;
      {
        std::shared_lock lock(config_mutex_);
        bound = bindings_.contains(signal.name);
      }
      if (bound) {
        Command command{signal.name, std::move(signal.args)};
        Result<model::Value> outcome = execute_case1(command, context);
        if (!outcome.ok()) {
          stats_.errors.fetch_add(1, std::memory_order_relaxed);
          if (metrics_ != nullptr) {
            metrics_->counter("controller.errors").add();
          }
          bus_->publish("controller.error", name(),
                        model::Value(signal.name + ": " +
                                     outcome.status().to_string()));
        }
      }
    }
  }
  return processed;
}

Result<ControllerLayer::Case> ControllerLayer::classify(
    const Command& command) const {
  // Domain policies see the command name as a transient *overlay* binding
  // — the shared context store itself is untouched, so concurrent
  // classifications neither race each other nor churn the context
  // version the IM cache keys on.
  policy::ContextOverlay view(*context_);
  view.bind("command.name", model::Value(command.name));
  auto decision = classification_policies_.evaluate(view);
  if (decision.has_value()) {
    if (decision->decision == "case1") return Case::kCase1;
    if (decision->decision == "case2") return Case::kCase2;
    return Internal("classification policy '" + decision->policy_name +
                    "' yielded unknown case '" + decision->decision + "'");
  }
  // Defaults: a bound action wins; otherwise a DSC mapping (or a DSC
  // named like the command) selects dynamic generation.
  {
    std::shared_lock lock(config_mutex_);
    if (bindings_.contains(command.name)) return Case::kCase1;
    if (command_dsc_.contains(command.name)) return Case::kCase2;
  }
  if (dscs_.contains(command.name)) return Case::kCase2;
  return NotFound("command '" + command.name +
                  "' has neither a bound action nor a DSC mapping");
}

SelectionStrategy ControllerLayer::selection_strategy() const {
  auto decision = selection_policies_.evaluate(*context_);
  if (!decision.has_value()) return SelectionStrategy::kMinCost;
  if (decision->decision == "max-quality") {
    return SelectionStrategy::kMaxQuality;
  }
  if (decision->decision == "first-valid") {
    return SelectionStrategy::kFirstValid;
  }
  return SelectionStrategy::kMinCost;
}

Result<model::Value> ControllerLayer::execute_case1(
    const Command& command, obs::RequestContext& context) {
  // Select under the shared lock, execute outside it (action nodes are
  // never removed, so `best` stays valid after release).
  const ControllerAction* best = nullptr;
  {
    std::shared_lock lock(config_mutex_);
    auto it = bindings_.find(command.name);
    if (it == bindings_.end()) {
      return NotFound("no action bound to command '" + command.name + "'");
    }
    for (const std::string& action_name : it->second) {
      auto action_it = actions_.find(action_name);
      if (action_it == actions_.end()) continue;
      const ControllerAction& action = action_it->second;
      Result<bool> applicable = action.guard.evaluate_bool(*context_);
      if (!applicable.ok() || !*applicable) continue;
      if (best == nullptr || action.priority > best->priority) best = &action;
    }
  }
  if (best == nullptr) {
    return FailedPrecondition("no applicable action for command '" +
                              command.name + "' in current context");
  }
  stats_.case1_executions.fetch_add(1, std::memory_order_relaxed);
  stats_.commands_executed.fetch_add(1, std::memory_order_relaxed);
  if (metrics_ != nullptr) {
    metrics_->counter("controller.case1").add();
    metrics_->counter("controller.commands").add();
  }
  return engine_.execute_flat(best->body, command.args, context);
}

Result<model::Value> ControllerLayer::execute_case2(
    const Command& command, obs::RequestContext& context) {
  std::string dsc;
  {
    std::shared_lock lock(config_mutex_);
    auto it = command_dsc_.find(command.name);
    dsc = it != command_dsc_.end() ? it->second : command.name;
  }
  if (!dscs_.contains(dsc)) {
    return NotFound("command '" + command.name + "' resolves to unknown DSC '" +
                    dsc + "'");
  }
  Result<IntentModelPtr> intent_model =
      generator_.generate_cached(dsc, selection_strategy());
  if (!intent_model.ok()) return intent_model.status();
  stats_.case2_executions.fetch_add(1, std::memory_order_relaxed);
  stats_.commands_executed.fetch_add(1, std::memory_order_relaxed);
  if (metrics_ != nullptr) {
    metrics_->counter("controller.case2").add();
    metrics_->counter("controller.commands").add();
  }
  return engine_.execute(**intent_model, command.args, context);
}

Result<model::Value> ControllerLayer::execute_command(
    const Command& command, obs::RequestContext& context) {
  obs::ContextScope ambient(context);
  MDSM_RETURN_IF_ERROR(context.check_deadline("controller"));
  Result<Case> which = classify(command);
  if (!which.ok()) return which.status();
  log_debug("controller") << name() << " " << command.to_text() << " -> "
                          << (*which == Case::kCase1 ? "case1" : "case2");
  return *which == Case::kCase1 ? execute_case1(command, context)
                                : execute_case2(command, context);
}

// ---- staged execution (PR 6) -----------------------------------------

struct ControllerLayer::ScriptRun {
  ControlScript script;
  obs::RequestContext* context = nullptr;
  ScriptCallback done;
  std::uint64_t script_span = 0;  ///< "controller.script", closed at end
  std::size_t index = 0;
};

void ControllerLayer::execute_command_async(const Command& command,
                                            obs::RequestContext& context,
                                            CommandCallback done) {
  obs::ContextScope ambient(context);
  if (Status deadline = context.check_deadline("controller");
      !deadline.ok()) {
    done(deadline);
    return;
  }
  Result<Case> which = classify(command);
  if (!which.ok()) {
    done(which.status());
    return;
  }
  log_debug("controller") << name() << " " << command.to_text() << " -> "
                          << (*which == Case::kCase1 ? "case1" : "case2");
  if (*which == Case::kCase1) {
    execute_case1_async(command, context, std::move(done));
  } else {
    execute_case2_async(command, context, std::move(done));
  }
}

void ControllerLayer::execute_case1_async(const Command& command,
                                          obs::RequestContext& context,
                                          CommandCallback done) {
  const ControllerAction* best = nullptr;
  {
    std::shared_lock lock(config_mutex_);
    auto it = bindings_.find(command.name);
    if (it == bindings_.end()) {
      lock.unlock();
      done(NotFound("no action bound to command '" + command.name + "'"));
      return;
    }
    for (const std::string& action_name : it->second) {
      auto action_it = actions_.find(action_name);
      if (action_it == actions_.end()) continue;
      const ControllerAction& action = action_it->second;
      Result<bool> applicable = action.guard.evaluate_bool(*context_);
      if (!applicable.ok() || !*applicable) continue;
      if (best == nullptr || action.priority > best->priority) best = &action;
    }
  }
  if (best == nullptr) {
    done(FailedPrecondition("no applicable action for command '" +
                            command.name + "' in current context"));
    return;
  }
  stats_.case1_executions.fetch_add(1, std::memory_order_relaxed);
  stats_.commands_executed.fetch_add(1, std::memory_order_relaxed);
  if (metrics_ != nullptr) {
    metrics_->counter("controller.case1").add();
    metrics_->counter("controller.commands").add();
  }
  // Action bodies are never removed, so `best->body` outlives the run.
  engine_.execute_flat_async(best->body, command.args, context,
                             std::move(done));
}

void ControllerLayer::execute_case2_async(const Command& command,
                                          obs::RequestContext& context,
                                          CommandCallback done) {
  std::string dsc;
  {
    std::shared_lock lock(config_mutex_);
    auto it = command_dsc_.find(command.name);
    dsc = it != command_dsc_.end() ? it->second : command.name;
  }
  if (!dscs_.contains(dsc)) {
    done(NotFound("command '" + command.name +
                  "' resolves to unknown DSC '" + dsc + "'"));
    return;
  }
  Result<IntentModelPtr> intent_model =
      generator_.generate_cached(dsc, selection_strategy());
  if (!intent_model.ok()) {
    done(intent_model.status());
    return;
  }
  stats_.case2_executions.fetch_add(1, std::memory_order_relaxed);
  stats_.commands_executed.fetch_add(1, std::memory_order_relaxed);
  if (metrics_ != nullptr) {
    metrics_->counter("controller.case2").add();
    metrics_->counter("controller.commands").add();
  }
  // The completion capture keeps the IM alive for the whole run (the
  // cache may evict it while the request is parked mid-execution).
  IntentModelPtr pinned = std::move(intent_model.value());
  const IntentModel& model_ref = *pinned;
  engine_.execute_async(
      model_ref, command.args, context,
      [pinned = std::move(pinned),
       done = std::move(done)](Result<model::Value> outcome) {
        done(std::move(outcome));
      });
}

void ControllerLayer::execute_script_async(ControlScript script,
                                           obs::RequestContext& context,
                                           ScriptCallback done) {
  obs::ContextScope ambient(context);
  auto run = std::make_shared<ScriptRun>();
  run->script = std::move(script);
  run->context = &context;
  run->done = std::move(done);
  run->script_span = context.open_span(
      "controller.script",
      std::to_string(run->script.commands.size()) + " commands");
  if (Status deadline = context.check_deadline("controller");
      !deadline.ok()) {
    context.close_span(run->script_span);
    run->done(deadline);
    return;
  }
  drive_script(std::move(run));
}

void ControllerLayer::drive_script(std::shared_ptr<ScriptRun> run) {
  obs::ContextScope ambient(*run->context);
  while (run->index < run->script.commands.size()) {
    const std::size_t cmd_index = run->index++;
    const Command& command = run->script.commands[cmd_index];
    stats_.signals_received.fetch_add(1, std::memory_order_relaxed);
    if (metrics_ != nullptr) metrics_->counter("controller.signals").add();
    const std::uint64_t span =
        run->context->open_span("controller.signal", command.name);
    // Trampoline: inline completions continue this loop; a parked
    // command's completion re-enters drive_script on the settling thread.
    auto turn = std::make_shared<std::atomic<int>>(0);
    execute_command_async(
        command, *run->context,
        [this, run, turn, span, cmd_index](Result<model::Value> outcome) {
          if (!outcome.ok()) {
            stats_.errors.fetch_add(1, std::memory_order_relaxed);
            if (metrics_ != nullptr) {
              metrics_->counter("controller.errors").add();
            }
            bus_->publish("controller.error", name(),
                          model::Value(
                              run->script.commands[cmd_index].to_text() +
                              ": " + outcome.status().to_string()));
          }
          run->context->close_span(span);
          if (turn->exchange(2, std::memory_order_acq_rel) == 1) {
            drive_script(run);
          }
        });
    if (turn->exchange(1, std::memory_order_acq_rel) == 0) {
      return;  // parked: the command's completion resumes the script
    }
  }
  // Drain event signals the executions raised (kEmit → subscribed topic).
  process_pending(*run->context);
  run->context->close_span(run->script_span);
  run->done(Status::Ok());
}

ControllerStats ControllerLayer::stats() const {
  ControllerStats out;
  out.signals_received =
      stats_.signals_received.load(std::memory_order_relaxed);
  out.commands_executed =
      stats_.commands_executed.load(std::memory_order_relaxed);
  out.case1_executions =
      stats_.case1_executions.load(std::memory_order_relaxed);
  out.case2_executions =
      stats_.case2_executions.load(std::memory_order_relaxed);
  out.errors = stats_.errors.load(std::memory_order_relaxed);
  out.events_handled = stats_.events_handled.load(std::memory_order_relaxed);
  return out;
}

std::size_t ControllerLayer::queued() const {
  std::lock_guard lock(queue_mutex_);
  return queue_.size();
}

}  // namespace mdsm::controller
