#include "controller/intent_model.hpp"

#include <algorithm>
#include <sstream>

namespace mdsm::controller {

namespace {

std::unique_ptr<IntentModelNode> clone_node(const IntentModelNode& node) {
  auto copy = std::make_unique<IntentModelNode>();
  copy->procedure = node.procedure;
  copy->children.reserve(node.children.size());
  for (const auto& child : node.children) {
    copy->children.push_back(clone_node(*child));
  }
  return copy;
}

void accumulate_metrics(const IntentModelNode& node, double& cost,
                        double& quality, int& count) {
  cost += node.procedure->cost;
  // Quality of a configuration is its weakest component's quality: a
  // high-quality root cannot compensate for a degraded dependency.
  quality = std::min(quality, node.procedure->quality);
  ++count;
  for (const auto& child : node.children) {
    accumulate_metrics(*child, cost, quality, count);
  }
}

void print_node(const IntentModelNode& node, int indent,
                std::ostringstream& out) {
  out << std::string(static_cast<std::size_t>(indent) * 2, ' ')
      << node.procedure->name << " [" << node.procedure->classifier
      << ", cost=" << node.procedure->cost << "]\n";
  for (const auto& child : node.children) {
    print_node(*child, indent + 1, out);
  }
}

}  // namespace

std::string IntentModel::to_text() const {
  std::ostringstream out;
  out << "IM(" << root_dsc << ") cost=" << total_cost
      << " quality=" << total_quality << " nodes=" << node_count << "\n";
  if (root != nullptr) print_node(*root, 1, out);
  return out.str();
}

IntentModelGenerator::IntentModelGenerator(
    const DscRegistry& dscs, const ProcedureRepository& repository,
    const policy::ContextStore& context, GeneratorConfig config)
    : dscs_(&dscs),
      repository_(&repository),
      context_(&context),
      config_(config) {}

void IntentModelGenerator::enumerate(
    std::string_view dsc, std::vector<std::string_view>& path,
    std::vector<std::unique_ptr<IntentModelNode>>& out,
    std::vector<ProcedurePtr>& pins, std::size_t bound) {
  if (out.size() >= bound) return;
  if (path.size() >= config_.max_depth) return;
  if (std::find(path.begin(), path.end(), dsc) != path.end()) {
    stats_.cycle_rejections.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  path.push_back(dsc);
  // Snapshot (not visit-in-place): the shared lock is released before
  // the recursion below, and the pins keep every candidate alive for the
  // lifetime of the IM even if remove() races with generation.
  std::vector<ProcedurePtr> candidates = repository_->classified_by_pinned(dsc);
  for (const ProcedurePtr& candidate : candidates) {
    if (out.size() >= bound) break;
    Result<bool> applicable = candidate->guard.evaluate_bool(*context_);
    if (!applicable.ok() || !*applicable) {
      stats_.guard_rejections.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (candidate->dependencies.empty()) {
      auto leaf = std::make_unique<IntentModelNode>();
      leaf->procedure = candidate.get();
      out.push_back(std::move(leaf));
      continue;
    }
    // Enumerate subtree options per declared dependency.
    std::vector<std::vector<std::unique_ptr<IntentModelNode>>> options;
    options.reserve(candidate->dependencies.size());
    bool feasible = true;
    for (const std::string& dependency : candidate->dependencies) {
      std::vector<std::unique_ptr<IntentModelNode>> dep_options;
      enumerate(dependency, path, dep_options, pins, bound);
      if (dep_options.empty()) {
        feasible = false;
        break;
      }
      options.push_back(std::move(dep_options));
    }
    if (!feasible) continue;
    // Cross product over per-dependency options, odometer style, bounded
    // by the remaining configuration budget.
    std::vector<std::size_t> indices(options.size(), 0);
    while (out.size() < bound) {
      auto node = std::make_unique<IntentModelNode>();
      node->procedure = candidate.get();
      node->children.reserve(options.size());
      for (std::size_t i = 0; i < options.size(); ++i) {
        node->children.push_back(clone_node(*options[i][indices[i]]));
      }
      out.push_back(std::move(node));
      // Advance the odometer.
      std::size_t position = 0;
      while (position < indices.size()) {
        if (++indices[position] < options[position].size()) break;
        indices[position] = 0;
        ++position;
      }
      if (position == indices.size()) break;  // odometer wrapped: done
    }
  }
  pins.insert(pins.end(), std::make_move_iterator(candidates.begin()),
              std::make_move_iterator(candidates.end()));
  path.pop_back();
}

Status IntentModelGenerator::validate_node(
    const IntentModelNode& node, std::vector<std::string_view>& path) const {
  if (node.procedure == nullptr) return Internal("IM node without procedure");
  const Procedure& procedure = *node.procedure;
  if (!dscs_->contains(procedure.classifier)) {
    return ConformanceError("IM uses unknown DSC '" + procedure.classifier +
                            "'");
  }
  if (std::find(path.begin(), path.end(), procedure.classifier) !=
      path.end()) {
    return ConformanceError("IM has a classifier cycle through '" +
                            procedure.classifier + "'");
  }
  Result<bool> applicable = procedure.guard.evaluate_bool(*context_);
  if (!applicable.ok()) return applicable.status();
  if (!*applicable) {
    return FailedPrecondition("procedure '" + procedure.name +
                              "' no longer applicable in context");
  }
  if (node.children.size() != procedure.dependencies.size()) {
    return ConformanceError("procedure '" + procedure.name + "' expects " +
                            std::to_string(procedure.dependencies.size()) +
                            " dependencies, IM has " +
                            std::to_string(node.children.size()));
  }
  path.push_back(procedure.classifier);
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    const IntentModelNode& child = *node.children[i];
    if (child.procedure->classifier != procedure.dependencies[i]) {
      path.pop_back();
      return ConformanceError(
          "dependency " + std::to_string(i) + " of '" + procedure.name +
          "' must be classified by '" + procedure.dependencies[i] +
          "', got '" + child.procedure->classifier + "'");
    }
    Status status = validate_node(child, path);
    if (!status.ok()) {
      path.pop_back();
      return status;
    }
  }
  path.pop_back();
  return Status::Ok();
}

Status IntentModelGenerator::validate(const IntentModel& intent_model) const {
  if (intent_model.root == nullptr) return Internal("IM without root");
  if (intent_model.root->procedure->classifier != intent_model.root_dsc) {
    return ConformanceError("IM root classified by '" +
                            intent_model.root->procedure->classifier +
                            "' but IM claims '" + intent_model.root_dsc +
                            "'");
  }
  std::vector<std::string_view> path;
  return validate_node(*intent_model.root, path);
}

Result<IntentModelPtr> IntentModelGenerator::generate(
    std::string_view root_dsc, SelectionStrategy strategy) {
  if (!dscs_->contains(root_dsc)) {
    return NotFound("unknown DSC '" + std::string(root_dsc) + "'");
  }
  // Generation.
  std::vector<std::unique_ptr<IntentModelNode>> configurations;
  std::vector<std::string_view> path;
  std::vector<ProcedurePtr> pins;
  enumerate(root_dsc, path, configurations, pins, config_.max_configurations);
  stats_.generated.fetch_add(configurations.size(),
                             std::memory_order_relaxed);
  if (configurations.empty()) {
    return FailedPrecondition("no valid configuration for DSC '" +
                              std::string(root_dsc) + "' in current context");
  }
  // Validation + metric computation. The probe shell is hoisted out of
  // the loop; only its root changes per configuration.
  struct Scored {
    std::unique_ptr<IntentModelNode> root;
    double cost;
    double quality;
    int count;
  };
  std::vector<Scored> valid;
  valid.reserve(configurations.size());
  IntentModel probe;
  probe.root_dsc.assign(root_dsc);
  for (auto& configuration : configurations) {
    probe.root = std::move(configuration);
    if (validate(probe).ok()) {
      stats_.validated.fetch_add(1, std::memory_order_relaxed);
      double cost = 0.0;
      double quality = 1e300;
      int count = 0;
      accumulate_metrics(*probe.root, cost, quality, count);
      valid.push_back({std::move(probe.root), cost, quality, count});
      if (strategy == SelectionStrategy::kFirstValid) break;
    }
  }
  if (valid.empty()) {
    return FailedPrecondition("no configuration for DSC '" +
                              std::string(root_dsc) +
                              "' survived validation");
  }
  // Selection.
  std::size_t best = 0;
  for (std::size_t i = 1; i < valid.size(); ++i) {
    switch (strategy) {
      case SelectionStrategy::kMinCost:
        if (valid[i].cost < valid[best].cost) best = i;
        break;
      case SelectionStrategy::kMaxQuality:
        if (valid[i].quality > valid[best].quality ||
            (valid[i].quality == valid[best].quality &&
             valid[i].cost < valid[best].cost)) {
          best = i;
        }
        break;
      case SelectionStrategy::kFirstValid:
        break;
    }
  }
  stats_.selected.fetch_add(1, std::memory_order_relaxed);
  auto intent_model = std::make_shared<IntentModel>();
  intent_model->root_dsc = std::move(probe.root_dsc);
  intent_model->root = std::move(valid[best].root);
  intent_model->total_cost = valid[best].cost;
  intent_model->total_quality = valid[best].quality;
  intent_model->node_count = valid[best].count;
  intent_model->pinned = std::move(pins);
  return IntentModelPtr(intent_model);
}

Result<IntentModelPtr> IntentModelGenerator::generate_cached(
    std::string_view root_dsc, SelectionStrategy strategy) {
  // Capture versions *before* the lookup/generation: a concurrent
  // mutation during generation then makes the stored entry stale (a
  // spurious re-generate next time), never a stale serve.
  const std::uint64_t context_version = context_->version();
  const std::uint64_t repository_version = repository_->version();
  const std::uint64_t dsc_version = dscs_->version();
  CacheShard& shard = shard_for(root_dsc);
  {
    std::lock_guard lock(shard.mutex);
    auto it = shard.entries.find(root_dsc);
    if (it != shard.entries.end() &&
        it->second.context_version == context_version &&
        it->second.repository_version == repository_version &&
        it->second.dsc_version == dsc_version &&
        it->second.strategy == strategy) {
      stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
      return it->second.intent_model;
    }
  }
  stats_.cache_misses.fetch_add(1, std::memory_order_relaxed);
  // Generate outside the shard lock: concurrent misses on the same DSC
  // duplicate work instead of serializing the whole pipeline.
  Result<IntentModelPtr> generated = generate(root_dsc, strategy);
  if (!generated.ok()) return generated;
  {
    std::lock_guard lock(shard.mutex);
    auto it = shard.entries.find(root_dsc);
    if (it == shard.entries.end()) {
      it = shard.entries.emplace(std::string(root_dsc), CacheEntry{}).first;
    }
    it->second = CacheEntry{context_version, repository_version, dsc_version,
                            strategy, generated.value()};
  }
  return generated;
}

void IntentModelGenerator::invalidate_cache() {
  for (CacheShard& shard : cache_) {
    std::lock_guard lock(shard.mutex);
    shard.entries.clear();
  }
}

GeneratorStats IntentModelGenerator::stats() const {
  GeneratorStats out;
  out.generated = stats_.generated.load(std::memory_order_relaxed);
  out.validated = stats_.validated.load(std::memory_order_relaxed);
  out.selected = stats_.selected.load(std::memory_order_relaxed);
  out.cache_hits = stats_.cache_hits.load(std::memory_order_relaxed);
  out.cache_misses = stats_.cache_misses.load(std::memory_order_relaxed);
  out.guard_rejections =
      stats_.guard_rejections.load(std::memory_order_relaxed);
  out.cycle_rejections =
      stats_.cycle_rejections.load(std::memory_order_relaxed);
  return out;
}

void IntentModelGenerator::reset_stats() {
  stats_.generated.store(0, std::memory_order_relaxed);
  stats_.validated.store(0, std::memory_order_relaxed);
  stats_.selected.store(0, std::memory_order_relaxed);
  stats_.cache_hits.store(0, std::memory_order_relaxed);
  stats_.cache_misses.store(0, std::memory_order_relaxed);
  stats_.guard_rejections.store(0, std::memory_order_relaxed);
  stats_.cycle_rejections.store(0, std::memory_order_relaxed);
}

}  // namespace mdsm::controller
