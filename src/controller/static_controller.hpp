// Non-adaptive Controller baseline (paper §VII-B): "the response time of
// our Controller layer architecture was measurably slower than a previous
// non-adaptive Controller undertaking the same task, [but] scenarios
// where adaptability was beneficial ... would result in as much as an
// order of magnitude improvement in response time for our adaptive
// Controller layer (approx. 800 ms for our architecture, compared to
// approx. 4000 ms for the older non-adaptable architecture)."
//
// This baseline dispatches commands through a fixed table — no guards,
// no classification, no IM generation — which is why its static-path
// latency is lower. The price: changing behavior requires a full
// stop → reload → restart cycle (reload_fn rebuilds the whole dispatch
// configuration from scratch, the way the original platforms reloaded
// their handcrafted middleware).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "broker/broker_api.hpp"
#include "controller/execution_engine.hpp"
#include "controller/script.hpp"

namespace mdsm::controller {

class StaticController {
 public:
  /// The fixed command → instruction-list dispatch table.
  using DispatchTable =
      std::map<std::string, std::vector<Instruction>, std::less<>>;

  /// A reload rebuilds the table from external configuration. The
  /// function performs whatever (expensive) reconstruction the platform
  /// needs — re-parsing models, re-instantiating components — and
  /// returns the new table.
  using ReloadFn = std::function<Result<DispatchTable>()>;

  StaticController(broker::BrokerApi& broker, runtime::EventBus& bus,
                   policy::ContextStore& context);

  void set_table(DispatchTable table) { table_ = std::move(table); }
  [[nodiscard]] std::size_t table_size() const noexcept {
    return table_.size();
  }

  /// Direct table dispatch; unknown commands fail.
  Result<model::Value> execute(const Command& command);

  /// The only way this controller adapts: stop, rebuild everything via
  /// `reload`, restart. Counts reloads for the benches.
  Status reload(const ReloadFn& reload);

  [[nodiscard]] std::uint64_t commands_executed() const noexcept {
    return executed_;
  }
  [[nodiscard]] std::uint64_t reloads() const noexcept { return reloads_; }
  [[nodiscard]] ExecutionEngine& engine() noexcept { return engine_; }

 private:
  ExecutionEngine engine_;
  DispatchTable table_;
  std::uint64_t executed_ = 0;
  std::uint64_t reloads_ = 0;
  bool running_ = true;
};

}  // namespace mdsm::controller
