#include "controller/static_controller.hpp"

namespace mdsm::controller {

StaticController::StaticController(broker::BrokerApi& broker,
                                   runtime::EventBus& bus,
                                   policy::ContextStore& context)
    : engine_(broker, bus, context) {}

Result<model::Value> StaticController::execute(const Command& command) {
  if (!running_) {
    return FailedPrecondition("static controller is stopped (reloading)");
  }
  auto it = table_.find(command.name);
  if (it == table_.end()) {
    return NotFound("static controller has no entry for command '" +
                    command.name + "'");
  }
  ++executed_;
  return engine_.execute_flat(it->second, command.args);
}

Status StaticController::reload(const ReloadFn& reload) {
  running_ = false;  // stop
  Result<DispatchTable> table = reload();  // rebuild (the expensive part)
  if (!table.ok()) {
    return table.status();  // stays stopped: a failed reload is fatal
  }
  table_ = std::move(table.value());
  engine_.clear_memory();
  running_ = true;  // restart
  ++reloads_;
  return Status::Ok();
}

}  // namespace mdsm::controller
