#include "controller/execution_engine.hpp"

#include <algorithm>
#include <optional>

#include "common/log.hpp"
#include "common/strings.hpp"

namespace mdsm::controller {

ExecutionEngine::ExecutionEngine(broker::BrokerApi& broker,
                                 runtime::EventBus& bus,
                                 policy::ContextStore& context,
                                 EngineConfig config)
    : broker_(&broker), bus_(&bus), context_(&context), config_(config) {}

model::Value ExecutionEngine::resolve(const model::Value& value,
                                      const broker::Args& command_args) const {
  if (value.is_list()) {
    // Templates may be nested inside structured payloads (e.g. the
    // smart-space wire encoding); resolve element-wise.
    model::ValueList resolved;
    resolved.reserve(value.as_list().size());
    for (const model::Value& item : value.as_list()) {
      resolved.push_back(resolve(item, command_args));
    }
    return model::Value(std::move(resolved));
  }
  if (!value.is_string()) return value;
  const std::string& text = value.as_string();
  if (starts_with(text, "$ctx:")) return context_->get(text.substr(5));
  if (starts_with(text, "$mem:")) return memory(text.substr(5));
  if (starts_with(text, "$$")) return model::Value(text.substr(1));
  if (starts_with(text, "$")) {
    auto it = command_args.find(text.substr(1));
    return it == command_args.end() ? model::Value{} : it->second;
  }
  return value;
}

broker::Args ExecutionEngine::resolve_all(
    const broker::Args& args, const broker::Args& command_args) const {
  broker::Args out;
  for (const auto& [key, value] : args) {
    out[key] = resolve(value, command_args);
  }
  return out;
}

model::Value ExecutionEngine::memory(std::string_view key) const {
  std::lock_guard lock(memory_mutex_);
  auto it = memory_.find(key);
  return it == memory_.end() ? model::Value{} : it->second;
}

void ExecutionEngine::set_memory(const std::string& key, model::Value value) {
  std::lock_guard lock(memory_mutex_);
  memory_[key] = std::move(value);
}

Result<model::Value> ExecutionEngine::execute(
    const IntentModel& intent_model, const broker::Args& command_args,
    obs::RequestContext& context) {
  if (intent_model.root == nullptr) {
    return InvalidArgument("intent model has no root procedure");
  }
  Frame initial{};
  initial.node = intent_model.root.get();
  initial.flat = nullptr;
  return run(initial, command_args, context);
}

Result<model::Value> ExecutionEngine::execute_flat(
    const std::vector<Instruction>& body, const broker::Args& command_args,
    obs::RequestContext& context) {
  Frame initial{};
  initial.node = nullptr;
  initial.flat = &body;
  return run(initial, command_args, context);
}

const Instruction* ExecutionEngine::fetch(std::vector<Frame>& stack,
                                          obs::RequestContext& context) {
  // Fetch the next instruction of the top frame; an exhausted frame
  // "signals that it has completed its operation" and is popped.
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.flat != nullptr) {
      if (frame.pc < frame.flat->size()) return &(*frame.flat)[frame.pc++];
    } else {
      const auto& units = frame.node->procedure->units;
      while (frame.unit < units.size() &&
             frame.pc >= units[frame.unit].size()) {
        ++frame.unit;
        frame.pc = 0;
      }
      if (frame.unit < units.size()) return &units[frame.unit][frame.pc++];
    }
    context.close_span(frame.span);
    stack.pop_back();
  }
  return nullptr;
}

Status ExecutionEngine::exec_instruction(const Instruction& instruction,
                                         const IntentModelNode* node,
                                         std::vector<Frame>& stack,
                                         model::Value& result,
                                         const broker::Args& command_args,
                                         obs::RequestContext& context) {
  switch (instruction.op) {
    case OpCode::kNoop:
      break;
    case OpCode::kGuard: {
      Result<bool> holds = instruction.guard.evaluate_bool(*context_);
      if (!holds.ok()) return holds.status();
      if (!*holds) {
        return ExecutionError("EU guard '" + instruction.guard.text() +
                              "' failed");
      }
      break;
    }
    case OpCode::kBrokerCall:
      // The sync and async drivers dispatch this op themselves (it is
      // the only instruction that can suspend an async run).
      return Internal("kBrokerCall reached exec_instruction");
    case OpCode::kCallDep: {
      if (node == nullptr) {
        return ExecutionError(
            "call-dep is illegal in a predefined action (no matched "
            "dependencies)");
      }
      const Procedure& procedure = *node->procedure;
      auto it = std::find(procedure.dependencies.begin(),
                          procedure.dependencies.end(), instruction.a);
      if (it == procedure.dependencies.end()) {
        return ExecutionError("procedure '" + procedure.name +
                              "' calls undeclared dependency '" +
                              instruction.a + "'");
      }
      std::size_t index = static_cast<std::size_t>(
          std::distance(procedure.dependencies.begin(), it));
      if (index >= node->children.size()) {
        return Internal("IM missing matched child " + std::to_string(index));
      }
      if (stack.size() >= config_.max_stack_depth) {
        return ExecutionError("procedure stack overflow");
      }
      stats_.procedure_pushes.fetch_add(1, std::memory_order_relaxed);
      Frame child{};
      child.node = node->children[index].get();
      child.span = context.open_span("controller.eu",
                                     child.node->procedure->name);
      stack.push_back(child);  // invalidates callers' top-frame refs
      break;
    }
    case OpCode::kSetMem: {
      broker::Args resolved = resolve_all(instruction.args, command_args);
      Result<model::Value> value =
          broker::require_arg(resolved, "value", "set-mem");
      if (!value.ok()) return value.status();
      set_memory(instruction.a, std::move(value.value()));
      break;
    }
    case OpCode::kEraseMem: {
      std::lock_guard lock(memory_mutex_);
      memory_.erase(instruction.a);
      break;
    }
    case OpCode::kEmit: {
      broker::Args resolved = resolve_all(instruction.args, command_args);
      Result<model::Value> payload =
          broker::require_arg(resolved, "payload", "emit");
      if (!payload.ok()) return payload.status();
      bus_->publish(instruction.a, "controller",
                    std::move(payload.value()));
      break;
    }
    case OpCode::kSend: {
      if (sender_ == nullptr) {
        return ExecutionError(
            "send instruction but no message sender installed");
      }
      broker::Args resolved = resolve_all(instruction.args, command_args);
      Result<model::Value> payload =
          broker::require_arg(resolved, "payload", "send");
      if (!payload.ok()) return payload.status();
      model::Value destination = resolve(model::Value(instruction.a),
                                         command_args);
      std::string to = destination.is_string() ? destination.as_string()
                                               : instruction.a;
      Status sent = sender_(to, instruction.b, std::move(payload.value()));
      if (!sent.ok()) return sent;
      break;
    }
    case OpCode::kSetContext: {
      broker::Args resolved = resolve_all(instruction.args, command_args);
      Result<model::Value> value =
          broker::require_arg(resolved, "value", "set-context");
      if (!value.ok()) return value.status();
      context_->set(instruction.a, std::move(value.value()));
      break;
    }
    case OpCode::kResult: {
      broker::Args resolved = resolve_all(instruction.args, command_args);
      Result<model::Value> value =
          broker::require_arg(resolved, "value", "result");
      if (!value.ok()) return value.status();
      result = std::move(value.value());
      break;
    }
  }
  return Status::Ok();
}

Result<model::Value> ExecutionEngine::run(Frame initial,
                                          const broker::Args& command_args,
                                          obs::RequestContext& context) {
  stats_.executions.fetch_add(1, std::memory_order_relaxed);
  if (metrics_ != nullptr) metrics_->counter("controller.eu_executions").add();
  // One "controller.eu" span per procedure frame. The root frame's span is
  // scoped to the whole run so error returns close-through any spans left
  // open by frames still on the stack.
  obs::ScopedSpan root_span(
      context, "controller.eu",
      initial.node != nullptr ? initial.node->procedure->name : "action");
  std::vector<Frame> stack;
  stack.push_back(initial);
  model::Value result;
  std::size_t steps = 0;
  while (true) {
    // Atomic running-max: CAS loop so concurrent runs never regress it.
    std::size_t depth = stack.size();
    std::size_t seen = stats_.max_stack_depth.load(std::memory_order_relaxed);
    while (depth > seen &&
           !stats_.max_stack_depth.compare_exchange_weak(
               seen, depth, std::memory_order_relaxed)) {
    }
    const Instruction* instruction = fetch(stack, context);
    if (instruction == nullptr) break;
    if (++steps > config_.max_steps) {
      return ExecutionError("execution exceeded " +
                            std::to_string(config_.max_steps) + " steps");
    }
    // The EU loop is the controller's steady-state: checking here (not
    // just at the layer crossing) stops a long instruction stream as soon
    // as the budget runs out instead of at the next broker call.
    if (Status budget = context.check_deadline("controller.engine");
        !budget.ok()) {
      return budget;
    }
    stats_.instructions.fetch_add(1, std::memory_order_relaxed);
    if (instruction->op == OpCode::kBrokerCall) {
      stats_.broker_calls.fetch_add(1, std::memory_order_relaxed);
      if (metrics_ != nullptr) {
        metrics_->counter("controller.broker_calls").add();
      }
      broker::Call call;
      call.name = instruction->a;
      call.args = resolve_all(instruction->args, command_args);
      Result<model::Value> value = broker_->call(call, context);
      if (!value.ok()) return value.status();
      result = value.value();
      set_memory("last.result", std::move(value.value()));
      continue;
    }
    Status status = exec_instruction(*instruction, stack.back().node, stack,
                                     result, command_args, context);
    if (!status.ok()) return status;
  }
  return result;
}

// ---- staged execution (PR 6) -----------------------------------------

struct ExecutionEngine::RunState {
  broker::Args command_args;
  obs::RequestContext* context = nullptr;
  ExecuteCallback done;
  std::uint64_t root_span = 0;
  std::vector<Frame> stack;
  model::Value result;
  std::size_t steps = 0;
  std::optional<Result<model::Value>> pending;  ///< settled broker call
};

void ExecutionEngine::execute_async(const IntentModel& intent_model,
                                    broker::Args command_args,
                                    obs::RequestContext& context,
                                    ExecuteCallback done) {
  if (intent_model.root == nullptr) {
    done(InvalidArgument("intent model has no root procedure"));
    return;
  }
  Frame initial{};
  initial.node = intent_model.root.get();
  start_async(initial, intent_model.root->procedure->name,
              std::move(command_args), context, std::move(done));
}

void ExecutionEngine::execute_flat_async(const std::vector<Instruction>& body,
                                         broker::Args command_args,
                                         obs::RequestContext& context,
                                         ExecuteCallback done) {
  Frame initial{};
  initial.flat = &body;
  start_async(initial, "action", std::move(command_args), context,
              std::move(done));
}

void ExecutionEngine::start_async(Frame initial, std::string root_name,
                                  broker::Args command_args,
                                  obs::RequestContext& context,
                                  ExecuteCallback done) {
  stats_.executions.fetch_add(1, std::memory_order_relaxed);
  if (metrics_ != nullptr) metrics_->counter("controller.eu_executions").add();
  auto run = std::make_shared<RunState>();
  run->command_args = std::move(command_args);
  run->context = &context;
  run->done = std::move(done);
  // The root span is closed by finish() (closing through any frames the
  // run abandoned), mirroring run()'s ScopedSpan — but it must live on
  // the heap state because the run can outlive this frame.
  run->root_span = context.open_span("controller.eu", root_name);
  run->stack.push_back(initial);
  drive(std::move(run));
}

void ExecutionEngine::finish(const std::shared_ptr<RunState>& run,
                             Result<model::Value> outcome) {
  run->context->close_span(run->root_span);
  run->done(std::move(outcome));
}

bool ExecutionEngine::consume_call(const std::shared_ptr<RunState>& run) {
  Result<model::Value> value = std::move(*run->pending);
  run->pending.reset();
  if (!value.ok()) {
    finish(run, value.status());
    return false;
  }
  run->result = value.value();
  set_memory("last.result", std::move(value.value()));
  return true;
}

void ExecutionEngine::drive(std::shared_ptr<RunState> run) {
  obs::ContextScope ambient(*run->context);
  while (true) {
    std::size_t depth = run->stack.size();
    std::size_t seen = stats_.max_stack_depth.load(std::memory_order_relaxed);
    while (depth > seen &&
           !stats_.max_stack_depth.compare_exchange_weak(
               seen, depth, std::memory_order_relaxed)) {
    }
    const Instruction* instruction = fetch(run->stack, *run->context);
    if (instruction == nullptr) break;
    if (++run->steps > config_.max_steps) {
      finish(run, ExecutionError("execution exceeded " +
                                 std::to_string(config_.max_steps) +
                                 " steps"));
      return;
    }
    if (Status budget = run->context->check_deadline("controller.engine");
        !budget.ok()) {
      finish(run, budget);
      return;
    }
    stats_.instructions.fetch_add(1, std::memory_order_relaxed);
    if (instruction->op == OpCode::kBrokerCall) {
      stats_.broker_calls.fetch_add(1, std::memory_order_relaxed);
      if (metrics_ != nullptr) {
        metrics_->counter("controller.broker_calls").add();
      }
      broker::Call call;
      call.name = instruction->a;
      call.args = resolve_all(instruction->args, run->command_args);
      // Trampoline (same discipline as BrokerLayer::drive_steps): the
      // second arrival at the turnstile owns the continuation, so inline
      // completions keep looping here instead of recursing.
      auto turn = std::make_shared<std::atomic<int>>(0);
      broker_->call_async(
          call, *run->context,
          [this, run, turn](Result<model::Value> value) {
            run->pending.emplace(std::move(value));
            if (turn->exchange(2, std::memory_order_acq_rel) == 1) {
              if (consume_call(run)) drive(run);
            }
          });
      if (turn->exchange(1, std::memory_order_acq_rel) == 0) {
        return;  // parked: the broker completion resumes the run
      }
      if (!consume_call(run)) return;
      continue;
    }
    Status status =
        exec_instruction(*instruction, run->stack.back().node, run->stack,
                         run->result, run->command_args, *run->context);
    if (!status.ok()) {
      finish(run, status);
      return;
    }
  }
  finish(run, std::move(run->result));
}

EngineStats ExecutionEngine::stats() const {
  EngineStats out;
  out.instructions = stats_.instructions.load(std::memory_order_relaxed);
  out.broker_calls = stats_.broker_calls.load(std::memory_order_relaxed);
  out.procedure_pushes =
      stats_.procedure_pushes.load(std::memory_order_relaxed);
  out.max_stack_depth =
      stats_.max_stack_depth.load(std::memory_order_relaxed);
  out.executions = stats_.executions.load(std::memory_order_relaxed);
  return out;
}

void ExecutionEngine::reset_stats() {
  stats_.instructions.store(0, std::memory_order_relaxed);
  stats_.broker_calls.store(0, std::memory_order_relaxed);
  stats_.procedure_pushes.store(0, std::memory_order_relaxed);
  stats_.max_stack_depth.store(0, std::memory_order_relaxed);
  stats_.executions.store(0, std::memory_order_relaxed);
}

}  // namespace mdsm::controller
