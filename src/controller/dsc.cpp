#include <mutex>

#include "controller/dsc.hpp"

#include "common/strings.hpp"

namespace mdsm::controller {

std::string_view to_string(DscKind kind) noexcept {
  switch (kind) {
    case DscKind::kOperation: return "operation";
    case DscKind::kData: return "data";
  }
  return "?";
}

Status DscRegistry::add(Dsc dsc) {
  if (!is_identifier(dsc.name)) {
    return InvalidArgument("'" + dsc.name + "' is not a valid DSC name");
  }
  std::unique_lock lock(mutex_);
  auto [it, inserted] = dscs_.emplace(dsc.name, std::move(dsc));
  if (!inserted) {
    return AlreadyExists("DSC '" + it->first + "' already registered");
  }
  version_.fetch_add(1, std::memory_order_release);
  return Status::Ok();
}

Status DscRegistry::remove(std::string_view name) {
  std::unique_lock lock(mutex_);
  auto it = dscs_.find(name);
  if (it == dscs_.end()) {
    return NotFound("DSC '" + std::string(name) + "' is not registered");
  }
  dscs_.erase(it);
  version_.fetch_add(1, std::memory_order_release);
  return Status::Ok();
}

const Dsc* DscRegistry::find(std::string_view name) const {
  std::shared_lock lock(mutex_);
  auto it = dscs_.find(name);
  return it == dscs_.end() ? nullptr : &it->second;
}

std::size_t DscRegistry::size() const {
  std::shared_lock lock(mutex_);
  return dscs_.size();
}

std::vector<std::string> DscRegistry::in_category(
    std::string_view category) const {
  std::vector<std::string> out;
  std::shared_lock lock(mutex_);
  for (const auto& [name, dsc] : dscs_) {
    if (dsc.category == category) out.push_back(name);
  }
  return out;
}

std::vector<std::string> DscRegistry::names() const {
  std::shared_lock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(dscs_.size());
  for (const auto& [name, dsc] : dscs_) out.push_back(name);
  return out;
}

}  // namespace mdsm::controller
