// The Controller's execution engine (paper §V-B): "a stack machine that
// operates by executing the EUs of the procedure currently on top of the
// stack ... a procedure X, through its EUs, can call procedures that were
// matched to its declared dependencies, which results in the called
// procedure being pushed onto the stack, or it can signal that it has
// completed its operation, resulting in the procedure being popped from
// the stack."
//
// The engine is domain-independent: all domain knowledge lives in the
// DSCs/procedures it executes. Its instruction set covers the paper's
// "memory management, event handling, message passing and remote calls"
// plus kBrokerCall, the downward API into the Broker layer.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "broker/broker_api.hpp"
#include "controller/intent_model.hpp"
#include "controller/procedure.hpp"
#include "obs/request_context.hpp"
#include "policy/context.hpp"
#include "runtime/event_bus.hpp"

namespace mdsm::controller {

struct EngineStats {
  std::uint64_t instructions = 0;
  std::uint64_t broker_calls = 0;
  std::uint64_t procedure_pushes = 0;
  std::size_t max_stack_depth = 0;
  std::uint64_t executions = 0;
};

struct EngineConfig {
  std::size_t max_steps = 1'000'000;   ///< runaway-EU backstop
  std::size_t max_stack_depth = 256;
};

class ExecutionEngine {
 public:
  /// `sender` is the platform's message-passing hook (kSend); null means
  /// kSend is an execution error — split deployments install one wired
  /// to their network endpoint.
  using Sender = std::function<Status(const std::string& destination,
                                      const std::string& topic,
                                      model::Value payload)>;

  ExecutionEngine(broker::BrokerApi& broker, runtime::EventBus& bus,
                  policy::ContextStore& context, EngineConfig config = {});

  void set_sender(Sender sender) { sender_ = std::move(sender); }

  /// Case 2: execute a generated intent model. Dependencies are resolved
  /// through the IM's matched children, never looked up dynamically.
  /// Every procedure frame (root and kCallDep pushes) runs under its own
  /// "controller.eu" span of `context`.
  Result<model::Value> execute(const IntentModel& intent_model,
                               const broker::Args& command_args,
                               obs::RequestContext& context);
  Result<model::Value> execute(const IntentModel& intent_model,
                               const broker::Args& command_args) {
    return execute(intent_model, command_args, obs::RequestContext::noop());
  }

  /// Case 1: execute a flat instruction sequence (a predefined action).
  /// kCallDep is illegal here (actions have no matched dependencies).
  Result<model::Value> execute_flat(const std::vector<Instruction>& body,
                                    const broker::Args& command_args,
                                    obs::RequestContext& context);
  Result<model::Value> execute_flat(const std::vector<Instruction>& body,
                                    const broker::Args& command_args) {
    return execute_flat(body, command_args, obs::RequestContext::noop());
  }

  /// Completion of the *_async variants; invoked exactly once (inline
  /// when no broker call parks).
  using ExecuteCallback = std::function<void(Result<model::Value>)>;

  /// Staged-core twins of execute()/execute_flat() (PR 6): the stack
  /// machine's state lives on the heap, and a kBrokerCall that parks in
  /// the Broker layer suspends the run — the surviving instructions
  /// resume on whatever thread completes the call. `intent_model` /
  /// `body` and `context` must outlive the run (callers keep the IM
  /// alive by capturing its shared_ptr in `done`; action bodies are
  /// never removed); `command_args` is copied into the run state.
  void execute_async(const IntentModel& intent_model,
                     broker::Args command_args, obs::RequestContext& context,
                     ExecuteCallback done);
  void execute_flat_async(const std::vector<Instruction>& body,
                          broker::Args command_args,
                          obs::RequestContext& context, ExecuteCallback done);

  /// Platform-wide metrics sink (optional; wired via the controller).
  void set_metrics(obs::MetricsRegistry* metrics) noexcept {
    metrics_ = metrics;
  }

  /// Engine memory ("memory management" ops). Shared across executions —
  /// procedures use it to pass data between calls, tests inspect it.
  /// Internally synchronized: concurrent executions (or monitors reading
  /// while an execution runs) see consistent values.
  [[nodiscard]] model::Value memory(std::string_view key) const;
  void set_memory(const std::string& key, model::Value value);
  void clear_memory() {
    std::lock_guard lock(memory_mutex_);
    memory_.clear();
  }
  /// Full copy of engine memory — the controller half of a session
  /// checkpoint (Platform::export_session_state).
  [[nodiscard]] std::map<std::string, model::Value, std::less<>>
  memory_snapshot() const {
    std::lock_guard lock(memory_mutex_);
    return memory_;
  }

  /// Snapshot of the counters (each exact; cross-counter sums may tear
  /// momentarily under concurrent executions).
  [[nodiscard]] EngineStats stats() const;
  void reset_stats();

 private:
  struct Frame {
    const IntentModelNode* node;  ///< null for flat (Case 1) execution
    const std::vector<Instruction>* flat;  ///< non-null for Case 1
    std::size_t unit = 0;
    std::size_t pc = 0;
    std::uint64_t span = 0;  ///< "controller.eu" span id (0 = root frame,
                             ///< whose span is scoped to the whole run)
  };

  Result<model::Value> run(Frame initial, const broker::Args& command_args,
                           obs::RequestContext& context);

  /// Advance past exhausted frames (closing their spans, popping);
  /// returns the next instruction of the top frame, or null when the
  /// stack has drained. Shared by the sync and async drivers.
  const Instruction* fetch(std::vector<Frame>& stack,
                           obs::RequestContext& context);
  /// Execute one non-broker instruction (kBrokerCall is the only op the
  /// sync and async drivers dispatch differently). `node` is the current
  /// frame's IM node (null in flat runs); kCallDep pushes onto `stack`.
  Status exec_instruction(const Instruction& instruction,
                          const IntentModelNode* node,
                          std::vector<Frame>& stack, model::Value& result,
                          const broker::Args& command_args,
                          obs::RequestContext& context);

  /// Heap-allocated stack-machine state of one *_async run.
  struct RunState;
  /// Start an async run from `initial` (opens the root "controller.eu"
  /// span, then drives).
  void start_async(Frame initial, std::string root_name,
                   broker::Args command_args, obs::RequestContext& context,
                   ExecuteCallback done);
  /// Drive the stack machine until the run completes or a broker call
  /// parks it.
  void drive(std::shared_ptr<RunState> run);
  /// Consume the settled broker-call outcome; false = run failed and
  /// finished.
  bool consume_call(const std::shared_ptr<RunState>& run);
  /// Close the root span (closing through any frames still open) and
  /// resolve the run.
  void finish(const std::shared_ptr<RunState>& run,
              Result<model::Value> outcome);

  model::Value resolve(const model::Value& value,
                       const broker::Args& command_args) const;
  broker::Args resolve_all(const broker::Args& args,
                           const broker::Args& command_args) const;

  broker::BrokerApi* broker_;
  runtime::EventBus* bus_;
  policy::ContextStore* context_;
  obs::MetricsRegistry* metrics_ = nullptr;
  Sender sender_;
  EngineConfig config_;
  mutable std::mutex memory_mutex_;  ///< guards memory_ only
  std::map<std::string, model::Value, std::less<>> memory_;
  struct AtomicStats {
    std::atomic<std::uint64_t> instructions{0};
    std::atomic<std::uint64_t> broker_calls{0};
    std::atomic<std::uint64_t> procedure_pushes{0};
    std::atomic<std::size_t> max_stack_depth{0};
    std::atomic<std::uint64_t> executions{0};
  };
  AtomicStats stats_;
};

}  // namespace mdsm::controller
