// Procedures and Execution Units (paper §V-B): "Procedures, and their
// accompanying execution units (EUs), undertake the domain specific
// operations of the controller. They are classified by DSCs ... allowing
// them to be considered as candidates to realize the abstract operation
// that matches their classifying DSC."
//
// An EU is a list of instructions for the Controller's stack machine.
// The instruction set is the Controller's *model of execution* — the
// domain-independent operations covering "memory management, event
// handling, message passing and remote calls" plus calls down into the
// Broker layer.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "broker/broker_types.hpp"
#include "common/status.hpp"
#include "policy/expression.hpp"

namespace mdsm::controller {

enum class OpCode {
  kBrokerCall,  ///< a=broker operation name; args templated
  kCallDep,     ///< a=dependency DSC: push the matched procedure
  kSetMem,      ///< a=memory key; args["value"] (memory management)
  kEraseMem,    ///< a=memory key
  kEmit,        ///< a=topic; args["payload"] (event handling)
  kSend,        ///< a=destination, b=topic; args["payload"] (message passing
                ///< / remote calls via the platform's network endpoint)
  kGuard,       ///< `guard` must hold or execution aborts
  kSetContext,  ///< a=context variable; args["value"]
  kResult,      ///< args["value"] becomes the execution result
  kNoop,        ///< measurable no-op (used by ablation benches)
};

std::string_view to_string(OpCode op) noexcept;

/// Value templates inside args:  "$name" → command argument,
/// "$ctx:name" → context variable, "$mem:key" → engine memory,
/// "$$literal" → escaped "$literal".
struct Instruction {
  OpCode op{};
  std::string a;
  std::string b;
  broker::Args args;
  policy::Expression guard;  ///< only for kGuard
};

using ExecutionUnit = std::vector<Instruction>;

/// A domain-specific procedure. Current paper constraint: classified by
/// a single DSC.
struct Procedure {
  std::string name;
  std::string classifier;                 ///< the classifying DSC
  std::vector<std::string> dependencies;  ///< DSCs this procedure calls
  policy::Expression guard;  ///< context applicability (environmental)
  double cost = 1.0;         ///< selection metadata: execution cost
  double quality = 1.0;      ///< selection metadata: result quality
  std::vector<ExecutionUnit> units;  ///< executed in order
};

/// Shared ownership of an immutable procedure: intent models pin the
/// procedures they reference so a concurrent remove() cannot free a
/// procedure out from under an in-flight or cached model.
using ProcedurePtr = std::shared_ptr<const Procedure>;

/// The Controller's procedure repository: "the Controller's repository
/// was populated with metadata of 100 curated procedures" (paper §VII-B).
///
/// Concurrency: procedures are immutable once added; the repository maps
/// are guarded by a reader/writer lock so IM generation on many request
/// threads proceeds in parallel with each other and blocks only on the
/// rare add()/remove().
class ProcedureRepository {
 public:
  /// Register a procedure; the classifier and all dependency names are
  /// validated against `known_dscs` if non-null at add time by the layer.
  Status add(Procedure procedure);
  Status remove(const std::string& name);

  /// Borrowed pointer. Stable only while the procedure stays registered;
  /// prefer find_shared() on paths that may race with remove().
  [[nodiscard]] const Procedure* find(std::string_view name) const;

  /// Owning lookup: keeps the procedure alive past a concurrent remove().
  [[nodiscard]] ProcedurePtr find_shared(std::string_view name) const;

  /// All procedures classified by `dsc`, in registration order —
  /// the candidate set for intent-model generation. Borrowed pointers;
  /// see find() for the lifetime caveat.
  [[nodiscard]] std::vector<const Procedure*> classified_by(
      std::string_view dsc) const;

  /// Owning snapshot of the candidate set for `dsc`. The shared lock is
  /// released before returning, so callers may recurse back into the
  /// repository (IM enumeration does) without re-entrant locking.
  [[nodiscard]] std::vector<ProcedurePtr> classified_by_pinned(
      std::string_view dsc) const;

  /// Visit each candidate for `dsc` in registration order without
  /// materializing a vector. Runs under the shared lock: the visitor
  /// must not mutate the repository and must not recurse into locked
  /// repository methods.
  template <typename Visitor>
  void for_each_classified_by(std::string_view dsc, Visitor&& visit) const {
    std::shared_lock lock(mutex_);
    auto it = by_classifier_.find(dsc);
    if (it == by_classifier_.end()) return;
    for (const ProcedurePtr& procedure : it->second) visit(*procedure);
  }

  [[nodiscard]] std::size_t size() const;

  /// Monotone version bumped on every mutation (IM cache invalidation).
  [[nodiscard]] std::uint64_t version() const noexcept {
    return version_.load(std::memory_order_acquire);
  }

  void clear();

 private:
  mutable std::shared_mutex mutex_;
  std::map<std::string, ProcedurePtr, std::less<>> procedures_;
  std::vector<std::string> order_;
  /// Candidates per classifier, registration order (shared with
  /// procedures_ — cheap pointer copies on snapshot).
  std::map<std::string, std::vector<ProcedurePtr>, std::less<>> by_classifier_;
  std::atomic<std::uint64_t> version_{0};
};

/// Builders mirroring broker/action.hpp, for terse domain DSK code.
Instruction broker_call(std::string operation, broker::Args args = {});
Instruction call_dep(std::string dsc);
Instruction set_mem(std::string key, model::Value value);
Instruction erase_mem(std::string key);
Instruction emit(std::string topic, model::Value payload = {});
Instruction send(std::string destination, std::string topic,
                 model::Value payload = {});
Instruction guard(std::string_view condition);
Instruction set_context(std::string key, model::Value value);
Instruction result(model::Value value);
Instruction noop();

}  // namespace mdsm::controller
