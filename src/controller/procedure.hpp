// Procedures and Execution Units (paper §V-B): "Procedures, and their
// accompanying execution units (EUs), undertake the domain specific
// operations of the controller. They are classified by DSCs ... allowing
// them to be considered as candidates to realize the abstract operation
// that matches their classifying DSC."
//
// An EU is a list of instructions for the Controller's stack machine.
// The instruction set is the Controller's *model of execution* — the
// domain-independent operations covering "memory management, event
// handling, message passing and remote calls" plus calls down into the
// Broker layer.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "broker/broker_types.hpp"
#include "common/status.hpp"
#include "policy/expression.hpp"

namespace mdsm::controller {

enum class OpCode {
  kBrokerCall,  ///< a=broker operation name; args templated
  kCallDep,     ///< a=dependency DSC: push the matched procedure
  kSetMem,      ///< a=memory key; args["value"] (memory management)
  kEraseMem,    ///< a=memory key
  kEmit,        ///< a=topic; args["payload"] (event handling)
  kSend,        ///< a=destination, b=topic; args["payload"] (message passing
                ///< / remote calls via the platform's network endpoint)
  kGuard,       ///< `guard` must hold or execution aborts
  kSetContext,  ///< a=context variable; args["value"]
  kResult,      ///< args["value"] becomes the execution result
  kNoop,        ///< measurable no-op (used by ablation benches)
};

std::string_view to_string(OpCode op) noexcept;

/// Value templates inside args:  "$name" → command argument,
/// "$ctx:name" → context variable, "$mem:key" → engine memory,
/// "$$literal" → escaped "$literal".
struct Instruction {
  OpCode op{};
  std::string a;
  std::string b;
  broker::Args args;
  policy::Expression guard;  ///< only for kGuard
};

using ExecutionUnit = std::vector<Instruction>;

/// A domain-specific procedure. Current paper constraint: classified by
/// a single DSC.
struct Procedure {
  std::string name;
  std::string classifier;                 ///< the classifying DSC
  std::vector<std::string> dependencies;  ///< DSCs this procedure calls
  policy::Expression guard;  ///< context applicability (environmental)
  double cost = 1.0;         ///< selection metadata: execution cost
  double quality = 1.0;      ///< selection metadata: result quality
  std::vector<ExecutionUnit> units;  ///< executed in order
};

/// The Controller's procedure repository: "the Controller's repository
/// was populated with metadata of 100 curated procedures" (paper §VII-B).
class ProcedureRepository {
 public:
  /// Register a procedure; the classifier and all dependency names are
  /// validated against `known_dscs` if non-null at add time by the layer.
  Status add(Procedure procedure);
  Status remove(const std::string& name);

  [[nodiscard]] const Procedure* find(std::string_view name) const noexcept;

  /// All procedures classified by `dsc`, in registration order —
  /// the candidate set for intent-model generation.
  [[nodiscard]] std::vector<const Procedure*> classified_by(
      std::string_view dsc) const;

  [[nodiscard]] std::size_t size() const noexcept { return order_.size(); }

  /// Monotone version bumped on every mutation (IM cache invalidation).
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

  void clear();

 private:
  std::map<std::string, Procedure, std::less<>> procedures_;
  std::vector<std::string> order_;
  std::map<std::string, std::vector<std::string>, std::less<>> by_classifier_;
  std::uint64_t version_ = 0;
};

/// Builders mirroring broker/action.hpp, for terse domain DSK code.
Instruction broker_call(std::string operation, broker::Args args = {});
Instruction call_dep(std::string dsc);
Instruction set_mem(std::string key, model::Value value);
Instruction erase_mem(std::string key);
Instruction emit(std::string topic, model::Value payload = {});
Instruction send(std::string destination, std::string topic,
                 model::Value payload = {});
Instruction guard(std::string_view condition);
Instruction set_context(std::string key, model::Value value);
Instruction result(model::Value value);
Instruction noop();

}  // namespace mdsm::controller
