// Domain-Specific Classifiers (paper §V-B): "DSCs categorize operations
// and data based on the business rules of a domain ... Once generated,
// the DSCs serve as a mechanism to describe interfaces with implicit
// domain-specific constraints."
//
// A DSC names an abstract operation (kOperation) or a datum (kData); the
// registry is the domain's classifier vocabulary, shared by procedures
// (which are classified by exactly one DSC) and by the intent-model
// generator (which matches dependencies to classifiers).
//
// Concurrency: lookups take a shared lock so any number of request
// threads can classify/generate in parallel; add()/remove() take the
// exclusive lock and bump the version stamp caches key on.
#pragma once

#include <atomic>
#include <map>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace mdsm::controller {

enum class DscKind { kOperation, kData };

std::string_view to_string(DscKind kind) noexcept;

struct Dsc {
  std::string name;
  DscKind kind = DscKind::kOperation;
  std::string category;     ///< coarse goal grouping, e.g. "media-control"
  std::string description;
};

class DscRegistry {
 public:
  Status add(Dsc dsc);
  /// Withdraw a classifier from the vocabulary. Procedures classified by
  /// it stay in the repository but fail IM validation from then on.
  Status remove(std::string_view name);
  /// Pointer into the registry; stable while the DSC stays registered
  /// (node-based map). Callers that may race with remove() should copy
  /// what they need instead of holding the pointer.
  [[nodiscard]] const Dsc* find(std::string_view name) const;
  [[nodiscard]] bool contains(std::string_view name) const {
    return find(name) != nullptr;
  }
  [[nodiscard]] std::size_t size() const;

  /// Monotone counter bumped on every successful add()/remove() — lets
  /// the IM cache detect vocabulary drift the same way it tracks context
  /// and repository versions.
  [[nodiscard]] std::uint64_t version() const noexcept {
    return version_.load(std::memory_order_acquire);
  }

  /// Visit every DSC in name order without materializing a copy. Runs
  /// under the registry's shared lock: the visitor must not call
  /// mutating registry methods (self-deadlock) and should be cheap.
  template <typename Visitor>
  void for_each(Visitor&& visit) const {
    std::shared_lock lock(mutex_);
    for (const auto& [name, dsc] : dscs_) visit(dsc);
  }

  /// All classifier names in a category, sorted.
  [[nodiscard]] std::vector<std::string> in_category(
      std::string_view category) const;

  /// All names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  mutable std::shared_mutex mutex_;
  std::map<std::string, Dsc, std::less<>> dscs_;
  std::atomic<std::uint64_t> version_{0};
};

}  // namespace mdsm::controller
