// The Controller layer (paper §VI, Fig. 8): signals received through the
// facade are queued, parsed into commands, classified, and executed via
// one of two coexisting mechanisms:
//
//   Case 1 — selection of predefined actions (Action Handlers), guided
//            by guards and priorities;
//   Case 2 — dynamic generation of intent models (Intent Model Handler),
//            guided by DSCs, the procedure repository, and policies.
//
// "the choice of which approach to use for each received command is
// determined by a command classification step that precedes actual
// command execution. Command classification takes into account domain
// policies and context information."
#pragma once

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "broker/broker_api.hpp"
#include "controller/dsc.hpp"
#include "controller/execution_engine.hpp"
#include "controller/intent_model.hpp"
#include "controller/procedure.hpp"
#include "controller/script.hpp"
#include "obs/request_context.hpp"
#include "policy/policy_engine.hpp"
#include "runtime/component.hpp"
#include "runtime/event_bus.hpp"

namespace mdsm::controller {

/// A predefined (Case 1) action: guarded, prioritized instruction list.
struct ControllerAction {
  std::string name;
  policy::Expression guard;
  int priority = 0;
  std::vector<Instruction> body;
};

enum class SignalKind { kCall, kEvent };

/// "Both calls and events are treated in the same way and thus are
/// indistinctly called signals."
struct Signal {
  SignalKind kind{};
  std::string name;   ///< command name (calls) or topic (events)
  broker::Args args;
};

struct ControllerStats {
  std::uint64_t signals_received = 0;
  std::uint64_t commands_executed = 0;
  std::uint64_t case1_executions = 0;
  std::uint64_t case2_executions = 0;
  std::uint64_t errors = 0;
  std::uint64_t events_handled = 0;
};

class ControllerLayer final : public runtime::Component {
 public:
  ControllerLayer(std::string name, broker::BrokerApi& broker,
                  runtime::EventBus& bus, policy::ContextStore& context,
                  GeneratorConfig generator_config = {});

  // ---- configuration (domain DSK + middleware model loading)

  [[nodiscard]] DscRegistry& dscs() noexcept { return dscs_; }

  /// Add a procedure, validating that its classifier and dependency DSCs
  /// are registered (the repository itself is classifier-agnostic).
  Status add_procedure(Procedure procedure);
  [[nodiscard]] ProcedureRepository& repository() noexcept {
    return repository_;
  }

  Status register_action(ControllerAction action);
  /// Bind a command (or event topic) to candidate Case-1 actions.
  Status bind_action(const std::string& command,
                     std::vector<std::string> action_names);
  /// Map a command to the root DSC used for Case-2 IM generation. When a
  /// command has no mapping but its name is itself a registered DSC, the
  /// name is used directly.
  Status map_command(const std::string& command, const std::string& dsc);

  /// Policies whose decision ("case1"/"case2") classifies commands.
  [[nodiscard]] policy::PolicySet& classification_policies() noexcept {
    return classification_policies_;
  }
  /// Policies whose decision ("min-cost"/"max-quality"/"first-valid")
  /// picks the IM selection strategy.
  [[nodiscard]] policy::PolicySet& selection_policies() noexcept {
    return selection_policies_;
  }

  [[nodiscard]] ExecutionEngine& engine() noexcept { return engine_; }
  [[nodiscard]] IntentModelGenerator& generator() noexcept {
    return generator_;
  }
  [[nodiscard]] policy::ContextStore& context() noexcept { return *context_; }

  /// Subscribe this controller to a bus topic; matching events enter the
  /// signal queue as event signals (processed by process_pending()).
  void attach_event_topic(const std::string& topic);

  /// Platform-wide metrics sink; also forwarded to the execution engine
  /// (optional; wired by the assembler).
  void set_metrics(obs::MetricsRegistry* metrics) noexcept {
    metrics_ = metrics;
    engine_.set_metrics(metrics);
  }

  // ---- operation

  /// Enqueue every command of a script as a call signal.
  Status submit_script(const ControlScript& script,
                       obs::RequestContext& context);
  Status submit_script(const ControlScript& script) {
    return submit_script(script, obs::RequestContext::noop());
  }
  Status submit_command(Command command);

  /// Execute every command of a script inline on the calling thread —
  /// the parallel phase of the request pipeline. Each command runs under
  /// its own "controller.signal" span with the same error containment as
  /// process_pending() (errors are counted and published, not returned),
  /// then any event signals raised by the executions are drained.
  /// Safe to call concurrently from many request threads.
  Status execute_script(const ControlScript& script,
                        obs::RequestContext& context);
  Status execute_script(const ControlScript& script) {
    return execute_script(script, obs::RequestContext::noop());
  }

  /// Drain the signal queue; returns the number of signals processed.
  /// Errors are counted and published as "controller.error" events, not
  /// thrown — one bad command must not wedge the queue. Each drained
  /// signal runs under its own "controller.signal" span of `context`.
  std::size_t process_pending(obs::RequestContext& context);
  std::size_t process_pending() {
    return process_pending(obs::RequestContext::noop());
  }

  /// Synchronous single-command path (classification + execution).
  Result<model::Value> execute_command(const Command& command,
                                       obs::RequestContext& context);
  Result<model::Value> execute_command(const Command& command) {
    return execute_command(command, obs::RequestContext::noop());
  }

  using CommandCallback = ExecutionEngine::ExecuteCallback;
  using ScriptCallback = std::function<void(Status)>;

  /// Staged-core twin of execute_script() (PR 6): commands run in order
  /// as a resumable chain — a command whose broker call parks suspends
  /// the script, and the remaining commands resume on the settling
  /// thread. Error containment is identical to the sync path (counted
  /// and published, never returned); `done` fires exactly once after the
  /// final command and the pending-event drain. The script is copied
  /// into the run state; `context` must outlive the run.
  void execute_script_async(ControlScript script,
                            obs::RequestContext& context, ScriptCallback done);

  /// Staged-core twin of execute_command(): classification is
  /// synchronous, execution may park. `command` is only read before the
  /// first suspension point (the engine copies its args); `context` must
  /// outlive the run.
  void execute_command_async(const Command& command,
                             obs::RequestContext& context,
                             CommandCallback done);

  /// Snapshot of the counters (each exact; cross-counter sums may tear
  /// momentarily while requests are in flight).
  [[nodiscard]] ControllerStats stats() const;
  [[nodiscard]] std::size_t queued() const;

 private:
  enum class Case { kCase1, kCase2 };

  Result<Case> classify(const Command& command) const;
  [[nodiscard]] SelectionStrategy selection_strategy() const;
  Result<model::Value> execute_case1(const Command& command,
                                     obs::RequestContext& context);
  Result<model::Value> execute_case2(const Command& command,
                                     obs::RequestContext& context);

  /// Shared state of one execute_script_async() run.
  struct ScriptRun;
  /// Drive script commands from the run's cursor until done or a command
  /// parks.
  void drive_script(std::shared_ptr<ScriptRun> run);
  void execute_case1_async(const Command& command,
                           obs::RequestContext& context,
                           CommandCallback done);
  void execute_case2_async(const Command& command,
                           obs::RequestContext& context,
                           CommandCallback done);

  broker::BrokerApi* broker_;
  runtime::EventBus* bus_;
  policy::ContextStore* context_;
  obs::MetricsRegistry* metrics_ = nullptr;
  DscRegistry dscs_;
  ProcedureRepository repository_;
  IntentModelGenerator generator_;
  ExecutionEngine engine_;
  policy::PolicySet classification_policies_;
  policy::PolicySet selection_policies_;
  /// Guards the configuration maps below. Configuration happens at
  /// assembly/model-load time but may race steady-state classification;
  /// lookups take the shared side. ControllerAction nodes are never
  /// removed, so pointers into actions_ stay valid outside the lock.
  mutable std::shared_mutex config_mutex_;
  std::map<std::string, ControllerAction, std::less<>> actions_;
  std::map<std::string, std::vector<std::string>, std::less<>> bindings_;
  std::map<std::string, std::string, std::less<>> command_dsc_;
  mutable std::mutex queue_mutex_;  ///< guards queue_ only
  std::deque<Signal> queue_;
  std::vector<std::uint64_t> subscriptions_;
  struct AtomicStats {
    std::atomic<std::uint64_t> signals_received{0};
    std::atomic<std::uint64_t> commands_executed{0};
    std::atomic<std::uint64_t> case1_executions{0};
    std::atomic<std::uint64_t> case2_executions{0};
    std::atomic<std::uint64_t> errors{0};
    std::atomic<std::uint64_t> events_handled{0};
  };
  mutable AtomicStats stats_;
};

}  // namespace mdsm::controller
