#include <mutex>

#include "controller/procedure.hpp"

#include <algorithm>
#include <stdexcept>

namespace mdsm::controller {

std::string_view to_string(OpCode op) noexcept {
  switch (op) {
    case OpCode::kBrokerCall: return "broker-call";
    case OpCode::kCallDep: return "call-dep";
    case OpCode::kSetMem: return "set-mem";
    case OpCode::kEraseMem: return "erase-mem";
    case OpCode::kEmit: return "emit";
    case OpCode::kSend: return "send";
    case OpCode::kGuard: return "guard";
    case OpCode::kSetContext: return "set-context";
    case OpCode::kResult: return "result";
    case OpCode::kNoop: return "noop";
  }
  return "?";
}

Status ProcedureRepository::add(Procedure procedure) {
  if (procedure.name.empty() || procedure.classifier.empty()) {
    return InvalidArgument("procedure needs a name and a classifier");
  }
  // Paper constraint: a procedure must not depend on its own classifier
  // (the generator also guards against indirect cycles).
  for (const std::string& dependency : procedure.dependencies) {
    if (dependency == procedure.classifier) {
      return InvalidArgument("procedure '" + procedure.name +
                             "' depends on its own classifier '" +
                             dependency + "'");
    }
  }
  const std::string name = procedure.name;
  const std::string classifier = procedure.classifier;
  auto shared = std::make_shared<const Procedure>(std::move(procedure));
  std::unique_lock lock(mutex_);
  auto [it, inserted] = procedures_.emplace(name, std::move(shared));
  if (!inserted) {
    return AlreadyExists("procedure '" + name + "' already in repository");
  }
  order_.push_back(name);
  by_classifier_[classifier].push_back(it->second);
  version_.fetch_add(1, std::memory_order_release);
  return Status::Ok();
}

Status ProcedureRepository::remove(const std::string& name) {
  std::unique_lock lock(mutex_);
  auto it = procedures_.find(name);
  if (it == procedures_.end()) {
    return NotFound("procedure '" + name + "' not in repository");
  }
  auto& bucket = by_classifier_[it->second->classifier];
  bucket.erase(std::remove_if(bucket.begin(), bucket.end(),
                              [&](const ProcedurePtr& procedure) {
                                return procedure->name == name;
                              }),
               bucket.end());
  procedures_.erase(it);
  order_.erase(std::remove(order_.begin(), order_.end(), name), order_.end());
  version_.fetch_add(1, std::memory_order_release);
  return Status::Ok();
}

const Procedure* ProcedureRepository::find(std::string_view name) const {
  std::shared_lock lock(mutex_);
  auto it = procedures_.find(name);
  return it == procedures_.end() ? nullptr : it->second.get();
}

ProcedurePtr ProcedureRepository::find_shared(std::string_view name) const {
  std::shared_lock lock(mutex_);
  auto it = procedures_.find(name);
  return it == procedures_.end() ? nullptr : it->second;
}

std::vector<const Procedure*> ProcedureRepository::classified_by(
    std::string_view dsc) const {
  std::vector<const Procedure*> out;
  std::shared_lock lock(mutex_);
  auto it = by_classifier_.find(dsc);
  if (it == by_classifier_.end()) return out;
  out.reserve(it->second.size());
  for (const ProcedurePtr& procedure : it->second) {
    out.push_back(procedure.get());
  }
  return out;
}

std::vector<ProcedurePtr> ProcedureRepository::classified_by_pinned(
    std::string_view dsc) const {
  std::shared_lock lock(mutex_);
  auto it = by_classifier_.find(dsc);
  if (it == by_classifier_.end()) return {};
  return it->second;
}

std::size_t ProcedureRepository::size() const {
  std::shared_lock lock(mutex_);
  return order_.size();
}

void ProcedureRepository::clear() {
  std::unique_lock lock(mutex_);
  procedures_.clear();
  order_.clear();
  by_classifier_.clear();
  version_.fetch_add(1, std::memory_order_release);
}

namespace {
policy::Expression parse_or_throw(std::string_view condition) {
  auto parsed = policy::Expression::parse(condition);
  if (!parsed.ok()) {
    throw std::invalid_argument("bad guard expression: " +
                                parsed.status().to_string());
  }
  return std::move(parsed.value());
}
}  // namespace

Instruction broker_call(std::string operation, broker::Args args) {
  Instruction i;
  i.op = OpCode::kBrokerCall;
  i.a = std::move(operation);
  i.args = std::move(args);
  return i;
}

Instruction call_dep(std::string dsc) {
  Instruction i;
  i.op = OpCode::kCallDep;
  i.a = std::move(dsc);
  return i;
}

Instruction set_mem(std::string key, model::Value value) {
  Instruction i;
  i.op = OpCode::kSetMem;
  i.a = std::move(key);
  i.args["value"] = std::move(value);
  return i;
}

Instruction erase_mem(std::string key) {
  Instruction i;
  i.op = OpCode::kEraseMem;
  i.a = std::move(key);
  return i;
}

Instruction emit(std::string topic, model::Value payload) {
  Instruction i;
  i.op = OpCode::kEmit;
  i.a = std::move(topic);
  i.args["payload"] = std::move(payload);
  return i;
}

Instruction send(std::string destination, std::string topic,
                 model::Value payload) {
  Instruction i;
  i.op = OpCode::kSend;
  i.a = std::move(destination);
  i.b = std::move(topic);
  i.args["payload"] = std::move(payload);
  return i;
}

Instruction guard(std::string_view condition) {
  Instruction i;
  i.op = OpCode::kGuard;
  i.guard = parse_or_throw(condition);
  return i;
}

Instruction set_context(std::string key, model::Value value) {
  Instruction i;
  i.op = OpCode::kSetContext;
  i.a = std::move(key);
  i.args["value"] = std::move(value);
  return i;
}

Instruction result(model::Value value) {
  Instruction i;
  i.op = OpCode::kResult;
  i.args["value"] = std::move(value);
  return i;
}

Instruction noop() {
  Instruction i;
  i.op = OpCode::kNoop;
  return i;
}

}  // namespace mdsm::controller
