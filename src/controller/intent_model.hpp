// Intent Models (paper §V-B, Fig. 7): "The generation of an execution
// model operates on procedure metadata to determine the optimal
// configuration of a set of procedures to carry out a requested operation
// based on active policies. It determines valid configurations by
// examining the DSC-described dependencies of a procedure X, and matches
// them with other procedures that are classified by the DSCs on which X
// depends. This step is repeated recursively while ensuring that unwanted
// configurations such as cycles are avoided, until a procedure dependency
// tree is generated."
//
// The full generation cycle is generation → validation → selection
// (Exp-3 times exactly this cycle); a context/repository-versioned cache
// provides the warm path whose amortized cost the paper reports
// approaching ~1 ms. The cache is sharded by root-DSC hash so concurrent
// requests for different operations never contend on one lock.
#pragma once

#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "controller/dsc.hpp"
#include "controller/procedure.hpp"
#include "policy/context.hpp"
#include "policy/policy_engine.hpp"

namespace mdsm::controller {

/// One node of the dependency tree: a concrete procedure plus the matched
/// procedure for each of its declared dependency DSCs (index-aligned).
struct IntentModelNode {
  const Procedure* procedure = nullptr;
  std::vector<std::unique_ptr<IntentModelNode>> children;
};

struct IntentModel {
  std::string root_dsc;  ///< "whose operation is classified by the
                         ///< classifying DSC of the root procedure"
  std::unique_ptr<IntentModelNode> root;
  double total_cost = 0.0;
  double total_quality = 0.0;
  int node_count = 0;
  /// Ownership anchors for every procedure the tree's raw pointers may
  /// reference: a concurrent ProcedureRepository::remove() cannot free a
  /// procedure out from under a cached or in-flight IM.
  std::vector<ProcedurePtr> pinned;

  [[nodiscard]] std::string to_text() const;  ///< indented tree, for logs
};

using IntentModelPtr = std::shared_ptr<const IntentModel>;

/// Selection strategies (the "active policies" of generation). The
/// selection PolicySet's decision string picks one.
enum class SelectionStrategy { kMinCost, kMaxQuality, kFirstValid };

struct GeneratorConfig {
  std::size_t max_configurations = 256;  ///< enumeration bound
  std::size_t max_depth = 32;            ///< dependency chain bound
};

struct GeneratorStats {
  std::uint64_t generated = 0;     ///< complete candidate configurations
  std::uint64_t validated = 0;
  std::uint64_t selected = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t guard_rejections = 0;
  std::uint64_t cycle_rejections = 0;
};

/// Thread-safe for concurrent generate()/generate_cached() calls; cache
/// shards serialize only same-shard bookkeeping, never generation itself
/// (two threads missing on the same DSC both generate — wasted work, not
/// corruption — and last-writer-wins on the entry).
class IntentModelGenerator {
 public:
  IntentModelGenerator(const DscRegistry& dscs,
                       const ProcedureRepository& repository,
                       const policy::ContextStore& context,
                       GeneratorConfig config = {});

  /// Full cycle: enumerate valid configurations for `root_dsc`, validate
  /// each, select per `strategy`. Does not consult the cache.
  Result<IntentModelPtr> generate(std::string_view root_dsc,
                                  SelectionStrategy strategy);

  /// Cached cycle: reuse the previous IM for `root_dsc` when none of the
  /// context, the repository, or the DSC vocabulary changed since it was
  /// generated (a stale-vocabulary IM would fail validate()). Versions
  /// are captured *before* generation, so a mutation racing a miss can
  /// only make the stored entry look stale — never serve a stale IM.
  Result<IntentModelPtr> generate_cached(std::string_view root_dsc,
                                         SelectionStrategy strategy);

  /// Structural re-validation of an IM against the current context:
  /// guards hold, dependencies complete, no DSC repeats along any path.
  Status validate(const IntentModel& intent_model) const;

  void invalidate_cache();

  /// Consistent-enough snapshot of the counters (each counter is exact;
  /// cross-counter sums may be momentarily torn under concurrency).
  [[nodiscard]] GeneratorStats stats() const;
  void reset_stats();

 private:
  struct CacheEntry {
    std::uint64_t context_version;
    std::uint64_t repository_version;
    std::uint64_t dsc_version;
    SelectionStrategy strategy;
    IntentModelPtr intent_model;
  };

  static constexpr std::size_t kCacheShards = 16;

  struct CacheShard {
    std::mutex mutex;
    std::map<std::string, CacheEntry, std::less<>> entries;
  };

  [[nodiscard]] CacheShard& shard_for(std::string_view root_dsc) {
    return cache_[std::hash<std::string_view>{}(root_dsc) % kCacheShards];
  }

  /// Recursively enumerate configurations rooted at candidates of `dsc`.
  /// `path` carries the DSCs on the current root-to-leaf chain for cycle
  /// avoidance (views into strings owned by `pins`/the caller). Appends
  /// complete subtrees to `out` (bounded) and the candidate snapshots to
  /// `pins` so node pointers stay valid past concurrent removes.
  void enumerate(std::string_view dsc, std::vector<std::string_view>& path,
                 std::vector<std::unique_ptr<IntentModelNode>>& out,
                 std::vector<ProcedurePtr>& pins, std::size_t bound);

  Status validate_node(const IntentModelNode& node,
                       std::vector<std::string_view>& path) const;

  const DscRegistry* dscs_;
  const ProcedureRepository* repository_;
  const policy::ContextStore* context_;
  GeneratorConfig config_;
  struct AtomicStats {
    std::atomic<std::uint64_t> generated{0};
    std::atomic<std::uint64_t> validated{0};
    std::atomic<std::uint64_t> selected{0};
    std::atomic<std::uint64_t> cache_hits{0};
    std::atomic<std::uint64_t> cache_misses{0};
    std::atomic<std::uint64_t> guard_rejections{0};
    std::atomic<std::uint64_t> cycle_rejections{0};
  };
  mutable AtomicStats stats_;
  std::array<CacheShard, kCacheShards> cache_;
};

}  // namespace mdsm::controller
