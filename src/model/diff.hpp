// Model comparison — the Synthesis layer's "model comparator".
//
// diff(old, new) yields the ChangeList the change interpreter walks to
// produce control scripts: which objects appeared/disappeared, which
// attribute slots changed, which cross-references were added/removed.
#pragma once

#include <string>
#include <vector>

#include "model/model.hpp"

namespace mdsm::model {

enum class ChangeKind {
  kAddObject,
  kRemoveObject,
  kSetAttribute,
  kAddReference,
  kRemoveReference,
};

std::string_view to_string(ChangeKind kind) noexcept;

/// One atomic difference between two models.
struct Change {
  ChangeKind kind{};
  std::string object_id;
  std::string class_name;      ///< metaclass of object_id
  std::string feature;         ///< attribute/reference name (when relevant)
  Value old_value;             ///< kSetAttribute: previous value (none if unset)
  Value new_value;             ///< kSetAttribute: new value (none if unset)
  std::string target_id;       ///< kAdd/RemoveReference: the target
  std::string parent_id;       ///< kAddObject: containment parent ("" = root)
  std::string containment;     ///< kAddObject: containment reference name

  [[nodiscard]] std::string to_text() const;

  friend bool operator==(const Change& a, const Change& b) = default;
};

using ChangeList = std::vector<Change>;

/// Compute the ordered change list turning `old_model` into `new_model`.
/// Both must conform to the same metamodel. Ordering is deterministic:
/// removals first (children before parents), then additions (parents
/// before children) with the added objects' attribute/reference state,
/// then attribute and reference changes on surviving objects.
ChangeList diff(const Model& old_model, const Model& new_model);

/// "3 changes: +obj a, -obj b, ~attr c.x" — for logs and tests.
std::string summarize(const ChangeList& changes);

/// Apply a change list to `target` in order. With `changes =
/// diff(a, b)` and `target` a clone of a, the result is
/// change-equivalent to b (diff(target, b) is empty) — the inverse
/// operation the synthesis layer relies on conceptually, and the basis
/// for replicating models across nodes by shipping deltas.
Status apply(const ChangeList& changes, Model& target);

/// Wire form of a ChangeList (PR 8): each Change becomes a fixed
/// 9-slot positional value list
///   [kind, object_id, class_name, feature, old_value, new_value,
///    target_id, parent_id, containment]
/// and the ChangeList a list of those — the payload the cluster ships
/// to replicate the authoritative runtime model to shards by delta
/// instead of re-sending full model text. decode_changes(encode_changes
/// (c)) == c for every well-formed list.
[[nodiscard]] Value encode_changes(const ChangeList& changes);
[[nodiscard]] Result<ChangeList> decode_changes(const Value& payload);

}  // namespace mdsm::model
