// Textual concrete syntax for models — the substitute for the paper's
// EMF/Xtext editing environment. The UI layer of each domain platform
// parses user-authored model text into a Model and serializes runtime
// models back out (round-trip engineering).
//
// Grammar (line comments start with '#'):
//
//   model <name> conforms <metamodel-name>
//
//   object <Class> <id> {
//     <attribute> = <value>            # value: none|true|false|int|real|
//     <reference> -> <id>, <id>        #        "string"|bare-word|[v, ...]
//     child <containment> <Class> <id> { ... }
//   }
#pragma once

#include <string>

#include "common/status.hpp"
#include "model/model.hpp"

namespace mdsm::model {

/// Parse model text. The metamodel named in the header must equal
/// `metamodel->name()`. Cross-references may point forward; they are
/// resolved after all objects are created.
Result<Model> parse_model(std::string_view text, MetamodelPtr metamodel);

/// Serialize deterministically (creation order for objects, sorted slot
/// names). parse_model(serialize_model(m)) reproduces m.
std::string serialize_model(const Model& model);

/// Parse a single standalone Value in the same concrete syntax the
/// model grammar uses for attribute values (string/number/bool/none/
/// nested lists). parse_value(v.to_text()) reproduces v — the codec the
/// session-checkpoint wire format and Platform::snapshot() ride on.
Result<Value> parse_value(std::string_view text);

}  // namespace mdsm::model
