// The metamodeling facility: metaclasses with typed attributes and
// (containment or cross) references, single inheritance, and structural
// self-validation.
//
// This substitutes for the Eclipse Modeling Framework used by the paper:
// a Metamodel plays the role of an Ecore package, a MetaClass of an
// EClass. Both the MD-DSM middleware metamodel (src/core) and every
// application-level DSML (src/domains/*) are expressed with it.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "model/value.hpp"

namespace mdsm::model {

/// Static type of a MetaAttribute.
enum class AttrType { kBool, kInt, kReal, kString, kEnum };

std::string_view to_string(AttrType type) noexcept;

/// Declaration of one attribute slot on a metaclass.
struct MetaAttribute {
  std::string name;
  AttrType type = AttrType::kString;
  bool required = false;   ///< conformance fails if unset
  bool many = false;       ///< value is a list of `type`
  std::vector<std::string> enum_literals;  ///< legal values when kEnum
  Value default_value;     ///< applied at object creation when non-none
};

/// Declaration of one reference slot (a typed link to other objects).
struct MetaReference {
  std::string name;
  std::string target_class;  ///< metaclass (or subclass) of legal targets
  bool containment = false;  ///< true: parent owns the target objects
  bool many = false;
  bool required = false;     ///< at least one target must be present
};

/// A class in a metamodel. Built via Metamodel::add_class then populated;
/// effective (inheritance-flattened) feature tables are computed by
/// Metamodel::finalize().
class MetaClass {
 public:
  MetaClass(std::string name, std::string parent, bool is_abstract)
      : name_(std::move(name)),
        parent_(std::move(parent)),
        abstract_(is_abstract) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::string& parent() const noexcept { return parent_; }
  [[nodiscard]] bool is_abstract() const noexcept { return abstract_; }

  MetaClass& add_attribute(MetaAttribute attribute) {
    own_attributes_.push_back(std::move(attribute));
    return *this;
  }
  MetaClass& add_reference(MetaReference reference) {
    own_references_.push_back(std::move(reference));
    return *this;
  }

  [[nodiscard]] const std::vector<MetaAttribute>& own_attributes() const {
    return own_attributes_;
  }
  [[nodiscard]] const std::vector<MetaReference>& own_references() const {
    return own_references_;
  }

  /// Inheritance-flattened features (valid only after finalize()).
  [[nodiscard]] const std::vector<MetaAttribute>& attributes() const {
    return effective_attributes_;
  }
  [[nodiscard]] const std::vector<MetaReference>& references() const {
    return effective_references_;
  }

  [[nodiscard]] const MetaAttribute* find_attribute(
      std::string_view name) const noexcept;
  [[nodiscard]] const MetaReference* find_reference(
      std::string_view name) const noexcept;

 private:
  friend class Metamodel;

  std::string name_;
  std::string parent_;  ///< empty when root
  bool abstract_ = false;
  std::vector<MetaAttribute> own_attributes_;
  std::vector<MetaReference> own_references_;
  std::vector<MetaAttribute> effective_attributes_;
  std::vector<MetaReference> effective_references_;
};

/// A named set of metaclasses. Immutable after finalize(); models hold a
/// shared_ptr<const Metamodel> so metamodels outlive every conforming
/// model (Core Guidelines R.20/R.21 on shared ownership intent).
class Metamodel {
 public:
  explicit Metamodel(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Add a class; `parent` may name a class added before or after this
  /// call (resolved by finalize()). Returns the class for chaining.
  MetaClass& add_class(const std::string& name, const std::string& parent = "",
                       bool is_abstract = false);

  /// Validate structure (parents exist, no inheritance cycles, unique
  /// feature names, enum attrs have literals, reference targets exist)
  /// and compute inheritance-flattened feature tables.
  [[nodiscard]] Status finalize();

  [[nodiscard]] bool finalized() const noexcept { return finalized_; }

  [[nodiscard]] const MetaClass* find_class(
      std::string_view name) const noexcept;

  /// True if `cls` equals `ancestor` or inherits from it (transitively).
  [[nodiscard]] bool is_kind_of(std::string_view cls,
                                std::string_view ancestor) const noexcept;

  /// All classes in insertion order.
  [[nodiscard]] std::vector<const MetaClass*> classes() const;

 private:
  std::string name_;
  std::vector<std::unique_ptr<MetaClass>> classes_;
  std::map<std::string, MetaClass*, std::less<>> by_name_;
  bool finalized_ = false;
};

using MetamodelPtr = std::shared_ptr<const Metamodel>;

/// Convenience: finalize and wrap; throws std::invalid_argument on a
/// malformed metamodel (metamodels are authored in code, so structural
/// errors are programming errors).
MetamodelPtr finalize_metamodel(Metamodel metamodel);

}  // namespace mdsm::model
