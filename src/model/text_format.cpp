#include "model/text_format.hpp"

#include <cctype>
#include <charconv>
#include <sstream>
#include <vector>

#include "common/strings.hpp"

namespace mdsm::model {

namespace {

enum class TokenKind {
  kWord,     // identifier or bare literal
  kString,   // quoted, unescaped
  kNumber,   // raw text of an int/real literal
  kPunct,    // one of { } = , [ ] or the two-char ->
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> run() {
    std::vector<Token> out;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (c == '"') {
        Result<Token> tok = lex_string();
        if (!tok.ok()) return tok.status();
        out.push_back(std::move(tok.value()));
      } else if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
                 ((c == '-' || c == '+') && pos_ + 1 < text_.size() &&
                  std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])) !=
                      0)) {
        out.push_back(lex_number());
      } else if (c == '-' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '>') {
        out.push_back({TokenKind::kPunct, "->", line_});
        pos_ += 2;
      } else if (c == '{' || c == '}' || c == '=' || c == ',' || c == '[' ||
                 c == ']') {
        out.push_back({TokenKind::kPunct, std::string(1, c), line_});
        ++pos_;
      } else if (std::isalpha(static_cast<unsigned char>(c)) != 0 ||
                 c == '_') {
        out.push_back(lex_word());
      } else {
        return ParseError("line " + std::to_string(line_) +
                          ": unexpected character '" + std::string(1, c) +
                          "'");
      }
    }
    out.push_back({TokenKind::kEnd, "", line_});
    return out;
  }

 private:
  Result<Token> lex_string() {
    int line = line_;
    ++pos_;  // opening quote
    std::string value;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        char esc = text_[pos_++];
        switch (esc) {
          case 'n': value += '\n'; break;
          case 't': value += '\t'; break;
          case '"': value += '"'; break;
          case '\\': value += '\\'; break;
          default: value += esc;
        }
      } else if (c == '\n') {
        return ParseError("line " + std::to_string(line) +
                          ": unterminated string");
      } else {
        value += c;
      }
    }
    if (pos_ >= text_.size()) {
      return ParseError("line " + std::to_string(line) +
                        ": unterminated string");
    }
    ++pos_;  // closing quote
    return Token{TokenKind::kString, std::move(value), line};
  }

  Token lex_number() {
    int line = line_;
    std::size_t start = pos_;
    if (text_[pos_] == '-' || text_[pos_] == '+') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            ((text_[pos_] == '-' || text_[pos_] == '+') &&
             (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
      ++pos_;
    }
    return {TokenKind::kNumber, std::string(text_.substr(start, pos_ - start)),
            line};
  }

  Token lex_word() {
    int line = line_;
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '_' || text_[pos_] == '.' || text_[pos_] == '-')) {
      ++pos_;
    }
    return {TokenKind::kWord, std::string(text_.substr(start, pos_ - start)),
            line};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

struct PendingReference {
  std::string object_id;
  std::string reference;
  std::string target_id;
  int line;
};

// Bind the next identifier token to `var`, or propagate the parse error.
// Works in functions returning Status or Result<T> (both accept a Status).
#define MDSM_WORD(var)                                     \
  std::string var;                                         \
  {                                                        \
    auto mdsm_word_result_ = expect_word();                \
    if (!mdsm_word_result_.ok()) return mdsm_word_result_.status(); \
    var = std::move(mdsm_word_result_.value());            \
  }

class Parser {
 public:
  Parser(std::vector<Token> tokens, MetamodelPtr metamodel)
      : tokens_(std::move(tokens)), metamodel_(std::move(metamodel)) {}

  Result<Model> run() {
    // Header: model <name> conforms <metamodel>
    MDSM_WORD(kw);
    if (kw != "model") return error("expected 'model'");
    MDSM_WORD(name);
    MDSM_WORD(conforms);
    if (conforms != "conforms") return error("expected 'conforms'");
    MDSM_WORD(mm_name);
    if (mm_name != metamodel_->name()) {
      return error("model conforms to '" + mm_name + "' but metamodel is '" +
                   metamodel_->name() + "'");
    }
    Model model(name, metamodel_);
    while (peek().kind != TokenKind::kEnd) {
      MDSM_WORD(word);
      if (word != "object") return error("expected 'object'");
      Status status = parse_object(model, /*parent_id=*/"", /*ref=*/"");
      if (!status.ok()) return status;
    }
    for (const auto& pending : pending_refs_) {
      Status status = model.add_reference(pending.object_id, pending.reference,
                                          pending.target_id);
      if (!status.ok()) {
        return ParseError("line " + std::to_string(pending.line) + ": " +
                          status.message());
      }
    }
    return model;
  }

  /// Parse exactly one standalone value (no model header, no metamodel
  /// involvement) and require the input to end there.
  Result<Value> run_value() {
    Result<Value> value = parse_value();
    if (!value.ok()) return value.status();
    if (peek().kind != TokenKind::kEnd) {
      return error("trailing input after value, got '" + peek().text + "'");
    }
    return value;
  }

 private:
  const Token& peek() const { return tokens_[index_]; }
  Token take() { return tokens_[index_++]; }

  Status error(const std::string& message) const {
    return ParseError("line " + std::to_string(peek().line) + ": " + message);
  }

  Result<std::string> expect_word() {
    if (peek().kind != TokenKind::kWord) {
      return ParseError("line " + std::to_string(peek().line) +
                        ": expected identifier, got '" + peek().text + "'");
    }
    return take().text;
  }

  Status expect_punct(std::string_view punct) {
    if (peek().kind != TokenKind::kPunct || peek().text != punct) {
      return error("expected '" + std::string(punct) + "', got '" +
                   peek().text + "'");
    }
    take();
    return Status::Ok();
  }

  Status parse_object(Model& model, const std::string& parent_id,
                      const std::string& containment) {
    MDSM_WORD(class_name);
    MDSM_WORD(id);
    Result<ModelObject*> created =
        parent_id.empty()
            ? model.create(class_name, id)
            : model.create_child(parent_id, containment, class_name, id);
    if (!created.ok()) {
      return ParseError("line " + std::to_string(peek().line) + ": " +
                        created.status().message());
    }
    MDSM_RETURN_IF_ERROR(expect_punct("{"));
    while (!(peek().kind == TokenKind::kPunct && peek().text == "}")) {
      if (peek().kind == TokenKind::kEnd) return error("unexpected EOF");
      MDSM_WORD(slot);
      if (slot == "child") {
        MDSM_WORD(ref_name);
        MDSM_RETURN_IF_ERROR(parse_object(model, id, ref_name));
        continue;
      }
      if (peek().kind == TokenKind::kPunct && peek().text == "=") {
        take();
        Result<Value> value = parse_value();
        if (!value.ok()) return value.status();
        Status status = model.set_attribute(id, slot, std::move(value.value()));
        if (!status.ok()) {
          return ParseError("line " + std::to_string(peek().line) + ": " +
                            status.message());
        }
      } else if (peek().kind == TokenKind::kPunct && peek().text == "->") {
        take();
        while (true) {
          MDSM_WORD(target);
          pending_refs_.push_back({id, slot, target, peek().line});
          if (peek().kind == TokenKind::kPunct && peek().text == ",") {
            take();
            continue;
          }
          break;
        }
      } else {
        return error("expected '=' or '->' after '" + slot + "'");
      }
    }
    take();  // '}'
    return Status::Ok();
  }

  Result<Value> parse_value() {
    const Token& tok = peek();
    switch (tok.kind) {
      case TokenKind::kString:
        return Value(take().text);
      case TokenKind::kNumber: {
        std::string text = take().text;
        if (text.find('.') != std::string::npos ||
            text.find('e') != std::string::npos ||
            text.find('E') != std::string::npos) {
          return Value(std::stod(text));
        }
        std::int64_t i = 0;
        auto [ptr, ec] =
            std::from_chars(text.data(), text.data() + text.size(), i);
        if (ec != std::errc{} || ptr != text.data() + text.size()) {
          return ParseError("line " + std::to_string(tok.line) +
                            ": bad number '" + text + "'");
        }
        return Value(i);
      }
      case TokenKind::kWord: {
        std::string word = take().text;
        if (word == "true") return Value(true);
        if (word == "false") return Value(false);
        if (word == "none") return Value();
        return Value(word);  // bare word: enum literal / short string
      }
      case TokenKind::kPunct:
        if (tok.text == "[") {
          take();
          ValueList items;
          if (peek().kind == TokenKind::kPunct && peek().text == "]") {
            take();
            return Value(std::move(items));
          }
          while (true) {
            Result<Value> item = parse_value();
            if (!item.ok()) return item.status();
            items.push_back(std::move(item.value()));
            if (peek().kind == TokenKind::kPunct && peek().text == ",") {
              take();
              continue;
            }
            break;
          }
          MDSM_RETURN_IF_ERROR(expect_punct("]"));
          return Value(std::move(items));
        }
        [[fallthrough]];
      default:
        return ParseError("line " + std::to_string(tok.line) +
                          ": expected value, got '" + tok.text + "'");
    }
  }

  std::vector<Token> tokens_;
  std::size_t index_ = 0;
  MetamodelPtr metamodel_;
  std::vector<PendingReference> pending_refs_;
};

void serialize_object(const Model& model, const ModelObject& object,
                      int indent, std::ostringstream& out) {
  std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  out << pad;
  if (object.parent_id().empty()) {
    out << "object ";
  } else {
    out << "child " << object.containing_reference() << ' ';
  }
  out << object.class_name() << ' ' << object.id() << " {\n";
  std::string inner(static_cast<std::size_t>(indent + 1) * 2, ' ');
  for (const auto& [name, value] : object.attributes()) {
    out << inner << name << " = " << value.to_text() << '\n';
  }
  for (const auto& [name, targets] : object.references()) {
    const MetaReference* ref = object.meta().find_reference(name);
    if (ref != nullptr && ref->containment) continue;  // emitted as children
    out << inner << name << " ->";
    for (std::size_t i = 0; i < targets.size(); ++i) {
      out << (i == 0 ? " " : ", ") << targets[i];
    }
    out << '\n';
  }
  for (const auto& [name, targets] : object.references()) {
    const MetaReference* ref = object.meta().find_reference(name);
    if (ref == nullptr || !ref->containment) continue;
    for (const auto& child_id : targets) {
      if (const ModelObject* child = model.find(child_id)) {
        serialize_object(model, *child, indent + 1, out);
      }
    }
  }
  out << pad << "}\n";
}

#undef MDSM_WORD

}  // namespace

Result<Model> parse_model(std::string_view text, MetamodelPtr metamodel) {
  if (metamodel == nullptr || !metamodel->finalized()) {
    return InvalidArgument("parse_model requires a finalized metamodel");
  }
  Lexer lexer(text);
  Result<std::vector<Token>> tokens = lexer.run();
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens.value()), std::move(metamodel));
  return parser.run();
}

Result<Value> parse_value(std::string_view text) {
  Lexer lexer(text);
  Result<std::vector<Token>> tokens = lexer.run();
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens.value()), /*metamodel=*/nullptr);
  return parser.run_value();
}

std::string serialize_model(const Model& model) {
  std::ostringstream out;
  out << "model " << model.name() << " conforms " << model.metamodel().name()
      << "\n\n";
  for (const ModelObject* root : model.roots()) {
    serialize_object(model, *root, 0, out);
  }
  return out.str();
}

}  // namespace mdsm::model
