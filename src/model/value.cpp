#include "model/value.hpp"

#include <iomanip>
#include <limits>
#include <sstream>

namespace mdsm::model {

std::string_view to_string(ValueKind kind) noexcept {
  switch (kind) {
    case ValueKind::kNone: return "none";
    case ValueKind::kBool: return "bool";
    case ValueKind::kInt: return "int";
    case ValueKind::kReal: return "real";
    case ValueKind::kString: return "string";
    case ValueKind::kList: return "list";
  }
  return "?";
}

std::string quote(std::string_view raw) {
  std::string out = "\"";
  for (char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
  return out;
}

std::string Value::to_text() const {
  switch (kind()) {
    case ValueKind::kNone: return "none";
    case ValueKind::kBool: return as_bool() ? "true" : "false";
    case ValueKind::kInt: return std::to_string(as_int());
    case ValueKind::kReal: {
      std::ostringstream out;
      // max_digits10 guarantees parse(to_text(v)) == v for doubles.
      out << std::setprecision(std::numeric_limits<double>::max_digits10)
          << as_real();
      std::string text = out.str();
      // Guarantee a real-number marker so the parser round-trips the kind.
      if (text.find('.') == std::string::npos &&
          text.find('e') == std::string::npos &&
          text.find("inf") == std::string::npos &&
          text.find("nan") == std::string::npos) {
        text += ".0";
      }
      return text;
    }
    case ValueKind::kString: return quote(as_string());
    case ValueKind::kList: {
      std::string out = "[";
      const auto& items = as_list();
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i > 0) out += ", ";
        out += items[i].to_text();
      }
      out += ']';
      return out;
    }
  }
  return "none";
}

}  // namespace mdsm::model
